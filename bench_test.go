package wiban

// Benchmark harness: one benchmark per figure/table of the paper (see
// DESIGN.md's per-experiment index), plus microbenchmarks of the
// substrates those figures exercise. Run:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks both regenerate the artifact (so -bench doubles as
// a reproduction run) and report its headline numbers as benchmark
// metrics.

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/compress"
	"wiban/internal/desim"
	"wiban/internal/energy"
	"wiban/internal/figures"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// benchTable runs a figure/table generator inside the benchmark loop.
func benchTable(b *testing.B, gen func() (*figures.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1NodePowerBreakdown regenerates Fig. 1 (FIG1).
func BenchmarkFig1NodePowerBreakdown(b *testing.B) { benchTable(b, figures.Fig1) }

// BenchmarkFig2WearableBatteryLife regenerates Fig. 2 (FIG2).
func BenchmarkFig2WearableBatteryLife(b *testing.B) { benchTable(b, figures.Fig2) }

// BenchmarkFig3BatteryLifeVsRate regenerates Fig. 3 (FIG3) and reports the
// perpetual-region boundary as a metric.
func BenchmarkFig3BatteryLifeVsRate(b *testing.B) {
	var boundary units.DataRate
	for i := 0; i < b.N; i++ {
		res, _, err := figures.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		boundary = res.PerpetualBoundary
	}
	b.ReportMetric(float64(boundary), "perpetual-bps")
}

// BenchmarkTableWiRvsBLE regenerates the headline claims table (TAB-A).
func BenchmarkTableWiRvsBLE(b *testing.B) { benchTable(b, figures.TableWiRvsBLE) }

// BenchmarkTableTransceiverSurvey regenerates the §IV-B survey (TAB-B).
func BenchmarkTableTransceiverSurvey(b *testing.B) { benchTable(b, figures.TableTransceivers) }

// BenchmarkTableSecurityBubble regenerates the security table (TAB-C).
func BenchmarkTableSecurityBubble(b *testing.B) { benchTable(b, figures.TableSecurity) }

// BenchmarkTableOffloadSplit regenerates the split-computing table (TAB-D).
func BenchmarkTableOffloadSplit(b *testing.B) { benchTable(b, figures.TableOffload) }

// BenchmarkTablePerpetualHarvest regenerates the harvesting table (TAB-E).
func BenchmarkTablePerpetualHarvest(b *testing.B) { benchTable(b, figures.TableHarvest) }

// BenchmarkTableLatency regenerates the end-to-end AI latency table
// (TAB-F), including the discrete-event cross-check.
func BenchmarkTableLatency(b *testing.B) { benchTable(b, figures.TableLatency) }

// BenchmarkAblationTermination regenerates ABL-1.
func BenchmarkAblationTermination(b *testing.B) { benchTable(b, figures.AblationTermination) }

// BenchmarkAblationCompression regenerates ABL-2 (runs the real codecs).
func BenchmarkAblationCompression(b *testing.B) { benchTable(b, figures.AblationCompression) }

// BenchmarkAblationMAC regenerates ABL-3 (arbitration baselines).
func BenchmarkAblationMAC(b *testing.B) { benchTable(b, figures.AblationMAC) }

// --- Substrate microbenchmarks ----------------------------------------------

// BenchmarkKWSInference measures one forward pass of the keyword spotter —
// the work the hub absorbs per offloaded inference.
func BenchmarkKWSInference(b *testing.B) {
	m, err := nn.KWSNet(1)
	if err != nil {
		b.Fatal(err)
	}
	x := nn.NewTensor(49, 10, 1)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.TotalMACs()), "MACs/op")
}

// BenchmarkPartitionSweep measures evaluating every cut of the vision
// model over Wi-R.
func BenchmarkPartitionSweep(b *testing.B) {
	m, err := nn.VisionNet(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := partition.Config{
		Model: m, Leaf: partition.LeafMCU(), Hub: partition.HubSoC(),
		Link: partition.FromTransceiver(radio.WiR()), BitsPerElement: 8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cuts, err := partition.Evaluate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := partition.Best(cuts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMJPEGEncodeQVGA measures in-sensor MJPEG on one synthetic QVGA
// frame (the video node's ISA workload).
func BenchmarkMJPEGEncodeQVGA(b *testing.B) {
	g := sensors.NewVideoSynth(320, 240, 1)
	frame := g.NextFrame()
	codec, err := compress.NewFrameCodec(320, 240, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	var encoded int
	for i := 0; i < b.N; i++ {
		enc, err := codec.Encode(frame)
		if err != nil {
			b.Fatal(err)
		}
		encoded = len(enc)
	}
	b.ReportMetric(compress.Ratio(len(frame), encoded), "ratio")
}

// BenchmarkECGDeltaRice measures the biopotential lossless path on one
// minute of ECG.
func BenchmarkECGDeltaRice(b *testing.B) {
	g := sensors.NewECGSynth(250*units.Hertz, 72, 1)
	raw := sensors.QuantizeBits(g.Samples(250*60), 2.0, 12)
	b.SetBytes(int64(len(raw) * 2))
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		enc := compress.RiceEncodeAuto(compress.DeltaInt32(raw))
		size = len(enc)
	}
	b.ReportMetric(compress.Ratio(len(raw)*2, size), "ratio")
}

// BenchmarkRPeakDetector measures the ISA R-peak pipeline on one minute of
// ECG.
func BenchmarkRPeakDetector(b *testing.B) {
	g := sensors.NewECGSynth(250*units.Hertz, 72, 2)
	sig := g.Samples(250 * 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := isa.NewRPeakDetector(250 * units.Hertz)
		for _, s := range sig {
			d.Process(s)
		}
		if len(d.Peaks()) == 0 {
			b.Fatal("no peaks")
		}
	}
}

// BenchmarkDESKernel measures raw event throughput of the simulation
// kernel.
func BenchmarkDESKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := desim.New(1)
		count := 0
		s.Every(0, desim.Millisecond, func() {
			count++
			if count >= 10000 {
				s.Halt()
			}
		})
		s.Run()
	}
	b.ReportMetric(10000, "events/op")
}

// BenchmarkBANHour simulates one hour of the two-node ECG comparison —
// the integration workload behind the Fig. 3 cross-check.
func BenchmarkBANHour(b *testing.B) {
	mkNode := func(id int, name string, tr *radio.Transceiver) bannet.NodeConfig {
		return bannet.NodeConfig{
			ID: id, Name: name, Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: tr, Battery: energy.Fig3Battery(), PacketBits: 1024, PER: 0.01, MaxRetries: 5,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := bannet.Run(bannet.Config{Seed: 1, Nodes: []bannet.NodeConfig{
			mkNode(1, "wir", radio.WiR()),
			mkNode(2, "ble", radio.BLE42()),
		}}, units.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if rep.NodeByName("wir").PacketsDelivered == 0 {
			b.Fatal("no traffic")
		}
	}
}
