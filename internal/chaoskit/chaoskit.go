// Package chaoskit is the seeded fault-injection toolkit behind the
// daemon's sustained chaos tests. It deliberately contains no fault
// machinery of its own — killing processes, draining daemons and
// cancelling sweeps belong to the harness that owns them — only the
// reproducibility substrate: a seeded schedule source (which event,
// when), a journal that records every decision so a failure's exact
// chaos sequence can be replayed from its seed, and a settle probe for
// the quiescence assertions (gauges at zero, goroutines back to
// baseline) that conclude a run.
//
// Determinism contract: for a fixed seed, the sequence of Intn /
// Between / Pick results is fixed. The wall-clock moments those picks
// get APPLIED still float with scheduling, so a chaos run is
// reproducible in distribution, not cycle-exact — which is what the
// byte-identity assertions need: the same seed re-explores the same
// decision sequence while the system under test must produce identical
// stores under any interleaving.
package chaoskit

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Action is one weighted entry in a chaos schedule: a named fault with
// a relative likelihood. Weights are relative integers, not
// probabilities; {kill:3, restart:1} makes kills three times as likely.
type Action struct {
	Name   string
	Weight int
}

// Chaos is a seeded schedule source plus its decision journal. Not safe
// for concurrent use: a chaos schedule is a single timeline, and
// driving it from one goroutine is what keeps a seed replayable.
type Chaos struct {
	seed    int64
	rng     *rand.Rand
	journal []string
}

// New returns a schedule source for the given seed. Same seed, same
// decision sequence.
func New(seed int64) *Chaos {
	return &Chaos{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this schedule was built from — stamp it into
// test logs so a failure names its replay.
func (c *Chaos) Seed() int64 { return c.seed }

// Intn draws from [0, n) and journals the result.
func (c *Chaos) Intn(n int) int {
	v := c.rng.Intn(n)
	c.Log("intn(%d)=%d", n, v)
	return v
}

// Between draws a duration uniformly from [lo, hi) — the spacing
// between injected faults. lo==hi returns lo.
func (c *Chaos) Between(lo, hi time.Duration) time.Duration {
	d := lo
	if hi > lo {
		d = lo + time.Duration(c.rng.Int63n(int64(hi-lo)))
	}
	c.Log("between(%v,%v)=%v", lo, hi, d)
	return d
}

// Pick draws one action by weight. Zero- and negative-weight actions
// are never picked; an empty or all-unpickable schedule panics — that
// is a harness bug, not a chaos outcome.
func (c *Chaos) Pick(actions []Action) Action {
	total := 0
	for _, a := range actions {
		if a.Weight > 0 {
			total += a.Weight
		}
	}
	if total == 0 {
		panic("chaoskit: no pickable action")
	}
	v := c.rng.Intn(total)
	for _, a := range actions {
		if a.Weight <= 0 {
			continue
		}
		if v -= a.Weight; v < 0 {
			c.Log("pick=%s", a.Name)
			return a
		}
	}
	panic("unreachable")
}

// Log appends a formatted line to the journal; harnesses also use it
// to record what each pick was applied to (which process was killed,
// which sweep cancelled).
func (c *Chaos) Log(format string, args ...any) {
	c.journal = append(c.journal, fmt.Sprintf(format, args...))
}

// Journal renders the full decision history, one line per entry — the
// reproduction script a failing run prints next to its seed.
func (c *Chaos) Journal() string {
	return strings.Join(c.journal, "\n")
}

// Settle polls cond every poll until it holds or timeout elapses,
// reporting whether it settled. The quiescence assertions (queue
// gauges at zero, goroutine counts back to baseline) are eventually
// true after chaos stops, never instantly.
func Settle(timeout, poll time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(poll)
	}
}
