package chaoskit

import (
	"strings"
	"testing"
	"time"
)

var schedule = []Action{
	{Name: "kill", Weight: 3},
	{Name: "restart", Weight: 2},
	{Name: "cancel", Weight: 1},
	{Name: "never", Weight: 0},
}

// Same seed, same decision sequence — the property every chaos replay
// rests on.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]string, string) {
		c := New(42)
		var got []string
		for i := 0; i < 200; i++ {
			got = append(got, c.Pick(schedule).Name)
			got = append(got, c.Between(10*time.Millisecond, 50*time.Millisecond).String())
			got = append(got, string(rune('0'+c.Intn(10))))
		}
		return got, c.Journal()
	}
	a, ja := run()
	b, jb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across replays: %q vs %q", i, a[i], b[i])
		}
	}
	if ja != jb {
		t.Fatalf("journals diverged:\n%s\n--\n%s", ja, jb)
	}
	if c := New(43); c.Pick(schedule).Name == a[0] && c.Pick(schedule).Name == a[3] && c.Pick(schedule).Name == a[6] {
		t.Log("seed 43 happens to open like seed 42; fine, but suspicious if every seed does")
	}
}

func TestPickWeights(t *testing.T) {
	c := New(7)
	counts := map[string]int{}
	const draws = 6000
	for i := 0; i < draws; i++ {
		counts[c.Pick(schedule).Name]++
	}
	if counts["never"] != 0 {
		t.Fatalf("zero-weight action picked %d times", counts["never"])
	}
	if counts["kill"]+counts["restart"]+counts["cancel"] != draws {
		t.Fatalf("draws leaked: %v", counts)
	}
	// kill:restart:cancel = 3:2:1; allow generous slack, this is a seeded
	// RNG so the counts are fixed for seed 7 anyway.
	if counts["kill"] <= counts["restart"] || counts["restart"] <= counts["cancel"] {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestBetweenBounds(t *testing.T) {
	c := New(1)
	lo, hi := 5*time.Millisecond, 20*time.Millisecond
	for i := 0; i < 1000; i++ {
		if d := c.Between(lo, hi); d < lo || d >= hi {
			t.Fatalf("draw %d: %v outside [%v, %v)", i, d, lo, hi)
		}
	}
	if d := c.Between(lo, lo); d != lo {
		t.Fatalf("degenerate range: got %v, want %v", d, lo)
	}
}

func TestJournalRecordsHarnessNotes(t *testing.T) {
	c := New(3)
	c.Pick(schedule)
	c.Log("applied to pid %d", 1234)
	j := c.Journal()
	if !strings.Contains(j, "pick=") || !strings.Contains(j, "applied to pid 1234") {
		t.Fatalf("journal missing entries:\n%s", j)
	}
}

func TestSettle(t *testing.T) {
	n := 0
	if !Settle(time.Second, time.Millisecond, func() bool { n++; return n >= 3 }) {
		t.Fatal("condition that becomes true did not settle")
	}
	if Settle(10*time.Millisecond, time.Millisecond, func() bool { return false }) {
		t.Fatal("false condition settled")
	}
}
