package partition

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wiban/internal/nn"
	"wiban/internal/radio"
	"wiban/internal/units"
)

func kws(t *testing.T) *nn.Sequential {
	t.Helper()
	m, err := nn.KWSNet(1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cfgFor(t *testing.T, m *nn.Sequential, tr *radio.Transceiver) Config {
	t.Helper()
	return Config{
		Model: m, Leaf: LeafMCU(), Hub: HubSoC(),
		Link: FromTransceiver(tr), BitsPerElement: 8,
	}
}

func TestCutAccountingInvariants(t *testing.T) {
	m := kws(t)
	cuts, err := Evaluate(cfgFor(t, m, radio.WiR()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != m.NumLayers()+1 {
		t.Fatalf("cut count %d, want %d", len(cuts), m.NumLayers()+1)
	}
	total := m.TotalMACs()
	for _, c := range cuts {
		if c.LeafMACs+c.HubMACs != total {
			t.Errorf("cut %d: MACs don't sum (%d + %d ≠ %d)", c.Index, c.LeafMACs, c.HubMACs, total)
		}
		if c.TxBits <= 0 {
			t.Errorf("cut %d: non-positive TxBits", c.Index)
		}
		if c.LeafEnergy < c.TxEnergy || c.LeafEnergy < c.LeafComputeEnergy {
			t.Errorf("cut %d: energy accounting inconsistent", c.Index)
		}
		if c.Latency <= 0 {
			t.Errorf("cut %d: non-positive latency", c.Index)
		}
	}
	// Cut 0 must have zero compute; cut N must carry all MACs.
	if cuts[0].LeafMACs != 0 || cuts[0].LeafComputeEnergy != 0 {
		t.Error("cut 0 should have no leaf compute")
	}
	if cuts[len(cuts)-1].LeafMACs != total {
		t.Error("final cut should carry all MACs on the leaf")
	}
}

func TestPaperClaimWiRFlipsTheArchitecture(t *testing.T) {
	// The paper's central architectural claim, quantified: with a
	// BLE-class link the optimal leaf keeps the whole network local (it
	// needs a CPU); with Wi-R the optimal leaf transmits raw input (it
	// needs no CPU at all).
	for _, mk := range []func(int64) (*nn.Sequential, error){nn.KWSNet, nn.ECGNet, nn.VisionNet} {
		m, err := mk(3)
		if err != nil {
			t.Fatal(err)
		}
		bleCuts, err := Evaluate(cfgFor(t, m, radio.BLE42()))
		if err != nil {
			t.Fatal(err)
		}
		wirCuts, err := Evaluate(cfgFor(t, m, radio.WiR()))
		if err != nil {
			t.Fatal(err)
		}
		bleBest, _ := Best(bleCuts)
		wirBest, _ := Best(wirCuts)

		if wirBest.Index != 0 {
			t.Errorf("%s: Wi-R optimal cut = %d, want 0 (sensor-only leaf)", m.Name, wirBest.Index)
		}
		if bleBest.Index <= wirBest.Index {
			t.Errorf("%s: BLE optimal cut %d should be later than Wi-R's %d",
				m.Name, bleBest.Index, wirBest.Index)
		}
		// And the Wi-R leaf is at least 20× cheaper per inference.
		if ratio := float64(bleBest.LeafEnergy) / float64(wirBest.LeafEnergy); ratio < 20 {
			t.Errorf("%s: leaf energy ratio BLE/WiR = %.1f, want ≥ 20", m.Name, ratio)
		}
	}
}

func TestBLEForcesLocalCompute(t *testing.T) {
	// With BLE, streaming raw input must be strictly worse than computing
	// locally — the "no alternative but on-board computing" sentence.
	m := kws(t)
	cuts, _ := Evaluate(cfgFor(t, m, radio.BLE42()))
	allOffload := cuts[0]
	allLocal := cuts[len(cuts)-1]
	if allOffload.LeafEnergy <= allLocal.LeafEnergy {
		t.Errorf("BLE: raw streaming (%v) should cost more than local compute (%v)",
			allOffload.LeafEnergy, allLocal.LeafEnergy)
	}
}

func TestWiROffloadAlsoWinsLatency(t *testing.T) {
	// Offloading over Wi-R beats local MCU inference on latency too
	// (hub NPU is ~200× faster than the MCU).
	m := kws(t)
	cuts, _ := Evaluate(cfgFor(t, m, radio.WiR()))
	offload := cuts[0]
	local := cuts[len(cuts)-1]
	if offload.Latency >= local.Latency {
		t.Errorf("Wi-R offload latency %v should beat local %v", offload.Latency, local.Latency)
	}
	if offload.Latency > 50*units.Millisecond {
		t.Errorf("Wi-R offload latency %v implausibly high for a 3.9 Mbps link", offload.Latency)
	}
}

func TestBestUnderLatency(t *testing.T) {
	m := kws(t)
	cuts, _ := Evaluate(cfgFor(t, m, radio.SubUWrComm()))
	// The 10 kbps authentication link cannot move KWS features quickly:
	// under a tight deadline the best feasible cut keeps compute local.
	best, err := Best(cuts)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := BestUnderLatency(cuts, 150*units.Millisecond)
	if err == nil {
		if tight.LeafEnergy < best.LeafEnergy {
			t.Error("constrained optimum cannot beat unconstrained optimum")
		}
		if tight.Latency > 150*units.Millisecond {
			t.Error("deadline violated")
		}
	}
	// An impossible deadline must error.
	if _, err := BestUnderLatency(cuts, units.Microsecond); err == nil {
		t.Error("impossible deadline should fail")
	}
}

func TestParetoFrontProperties(t *testing.T) {
	m := kws(t)
	for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42(), radio.BodyWire()} {
		cuts, _ := Evaluate(cfgFor(t, m, tr))
		front := Pareto(cuts)
		if len(front) == 0 {
			t.Fatalf("%s: empty Pareto front", tr.Name)
		}
		// Front must be sorted by energy with strictly decreasing latency.
		for i := 1; i < len(front); i++ {
			if front[i].LeafEnergy < front[i-1].LeafEnergy {
				t.Errorf("%s: front not energy-sorted", tr.Name)
			}
			if front[i].Latency >= front[i-1].Latency {
				t.Errorf("%s: front latency not strictly improving", tr.Name)
			}
		}
		// No cut may dominate a front member.
		for _, f := range front {
			for _, c := range cuts {
				if c.LeafEnergy < f.LeafEnergy && c.Latency < f.Latency {
					t.Errorf("%s: cut %d dominates front member %d", tr.Name, c.Index, f.Index)
				}
			}
		}
	}
}

func TestLeafPowerAt(t *testing.T) {
	m := kws(t)
	cuts, _ := Evaluate(cfgFor(t, m, radio.WiR()))
	offload := cuts[0]
	local := cuts[len(cuts)-1]
	leaf := LeafMCU()
	// A sensor-only leaf (cut 0) at 2 inferences/s should stay in the
	// µW-class (no idle MCU floor); a local-compute leaf pays the floor.
	pOff := offload.LeafPowerAt(2, leaf)
	pLoc := local.LeafPowerAt(2, leaf)
	if pOff >= pLoc {
		t.Errorf("offload power %v should be below local %v", pOff, pLoc)
	}
	if pOff > 100*units.Microwatt {
		t.Errorf("Wi-R offload leaf power = %v, want µW class", pOff)
	}
	if pLoc < 100*units.Microwatt {
		t.Errorf("local-compute leaf power = %v, want ≳ 100 µW", pLoc)
	}
}

func TestAcceleratorShiftsCrossover(t *testing.T) {
	// A 4 pJ/MAC accelerator makes local compute cheaper, so the BLE
	// configuration's local option improves while Wi-R still prefers
	// offload at 100 pJ/b.
	m := kws(t)
	mcuCfg := cfgFor(t, m, radio.BLE42())
	accCfg := mcuCfg
	accCfg.Leaf = LeafAccelerator()
	mcuCuts, _ := Evaluate(mcuCfg)
	accCuts, _ := Evaluate(accCfg)
	mcuLocal := mcuCuts[len(mcuCuts)-1]
	accLocal := accCuts[len(accCuts)-1]
	if accLocal.LeafEnergy >= mcuLocal.LeafEnergy {
		t.Error("accelerator should cut local-compute energy")
	}
	wirAcc := accCfg
	wirAcc.Link = FromTransceiver(radio.WiR())
	wirCuts, _ := Evaluate(wirAcc)
	best, _ := Best(wirCuts)
	if best.Index != 0 {
		t.Errorf("even with an accelerator, Wi-R optimal cut = %d, want 0", best.Index)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	m := kws(t)
	bad := Config{Model: m, Leaf: LeafMCU(), Hub: HubSoC(), Link: Link{Rate: 0}}
	if _, err := Evaluate(bad); err == nil {
		t.Error("zero-rate link should fail")
	}
	if _, err := Best(nil); err == nil {
		t.Error("Best of no cuts should fail")
	}
}

func TestResultBitsOverride(t *testing.T) {
	m := kws(t)
	cfg := cfgFor(t, m, radio.WiR())
	cfg.ResultBits = 32 // a class index
	cuts, _ := Evaluate(cfg)
	final := cuts[len(cuts)-1]
	if final.TxBits != 32 {
		t.Errorf("final cut TxBits = %d, want 32", final.TxBits)
	}
}

func TestEnergyMonotoneInLinkCost(t *testing.T) {
	// Property: scaling the link's energy/bit up cannot lower any cut's
	// leaf energy, and can only push the best cut later.
	m := kws(t)
	f := func(mult uint8) bool {
		k := float64(mult%50) + 1
		base := cfgFor(t, m, radio.WiR())
		exp := base
		exp.Link.EnergyPerBit = base.Link.EnergyPerBit * units.EnergyPerBit(k)
		baseCuts, err1 := Evaluate(base)
		expCuts, err2 := Evaluate(exp)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range baseCuts {
			if expCuts[i].LeafEnergy < baseCuts[i].LeafEnergy {
				return false
			}
		}
		b1, _ := Best(baseCuts)
		b2, _ := Best(expCuts)
		return b2.Index >= b1.Index
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	m := kws(t)
	cuts, _ := Evaluate(cfgFor(t, m, radio.WiR()))
	if !strings.Contains(cuts[0].Describe(), "cut@0") {
		t.Error("Describe missing cut index")
	}
}

func TestLatencyComponentsFinite(t *testing.T) {
	m := kws(t)
	cuts, _ := Evaluate(cfgFor(t, m, radio.BLE42()))
	for _, c := range cuts {
		if math.IsInf(float64(c.Latency), 0) || math.IsNaN(float64(c.Latency)) {
			t.Fatalf("cut %d latency not finite", c.Index)
		}
	}
}
