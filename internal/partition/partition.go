// Package partition implements split computing for wearable DNNs: given a
// network, a leaf-node compute platform, an on-body hub, and a link, it
// decides how much of the network (possibly none) should run on the leaf
// before the activations cross the link.
//
// This is the quantitative heart of the paper's architecture question:
// "why can't wearable networks mimic the centralized CPU architecture
// found in humans?" The answer it gives — radio energy per bit dwarfs
// compute energy per operation, so BLE-era nodes are forced to compute
// locally, while a 100 pJ/bit artificial nervous system lets the leaf
// transmit early and shed its CPU — falls directly out of the per-cut
// energy accounting below.
package partition

import (
	"fmt"
	"math"
	"sort"

	"wiban/internal/nn"
	"wiban/internal/radio"
	"wiban/internal/units"
)

// Platform is a compute platform's marginal energy and throughput.
type Platform struct {
	Name string
	// EnergyPerMAC is the marginal energy per multiply-accumulate.
	EnergyPerMAC units.Energy
	// MACRate is the sustained throughput in MACs per second.
	MACRate float64
	// IdlePower is the floor the platform burns while powered but idle.
	IdlePower units.Power
}

// LeafMCU returns a Cortex-M-class microcontroller: ≈ 30 pJ/MAC at
// 50 MMAC/s — the CPU today's wearables embed.
func LeafMCU() *Platform {
	return &Platform{Name: "leaf MCU", EnergyPerMAC: 30 * units.Picojoule,
		MACRate: 50e6, IdlePower: 30 * units.Microwatt}
}

// LeafAccelerator returns a dedicated in-sensor inference accelerator:
// ≈ 4 pJ/MAC at 200 MMAC/s (the "ISA" block of the human-inspired node).
func LeafAccelerator() *Platform {
	return &Platform{Name: "leaf accelerator", EnergyPerMAC: 4 * units.Picojoule,
		MACRate: 200e6, IdlePower: 5 * units.Microwatt}
}

// HubSoC returns the on-body hub ("wearable brain"): an application-class
// NPU at 8 pJ/MAC sustaining 10 GMAC/s. Its energy is charged to the hub's
// daily-charged battery, not the leaf's.
func HubSoC() *Platform {
	return &Platform{Name: "hub SoC", EnergyPerMAC: 8 * units.Picojoule,
		MACRate: 10e9, IdlePower: 50 * units.Milliwatt}
}

// Link is the communication side of a cut.
type Link struct {
	Name         string
	EnergyPerBit units.EnergyPerBit
	Rate         units.DataRate
	// PerTransferOverhead is paid once per inference (radio wake,
	// framing).
	PerTransferOverhead units.Energy
}

// FromTransceiver derives a Link from a radio transceiver model.
func FromTransceiver(tr *radio.Transceiver) Link {
	return Link{
		Name:                tr.Name,
		EnergyPerBit:        tr.EnergyPerGoodBit(),
		Rate:                tr.Goodput,
		PerTransferOverhead: tr.WakeEnergy,
	}
}

// Cut is the evaluation of splitting the model before layer Index: the
// leaf computes layers [0, Index), transmits that activation, and the hub
// computes [Index, N). Index 0 streams the raw input (the sensor-only
// node); Index N runs everything locally and transmits only the result.
type Cut struct {
	Index    int
	LeafMACs int64
	HubMACs  int64
	// TxBits is the activation (or input/result) volume crossing the link.
	TxBits int64
	// LeafComputeEnergy, TxEnergy and LeafEnergy are per-inference leaf
	// costs (LeafEnergy = compute + transmit + overhead).
	LeafComputeEnergy units.Energy
	TxEnergy          units.Energy
	LeafEnergy        units.Energy
	// HubEnergy is the per-inference hub-side cost (for completeness; the
	// hub charges daily).
	HubEnergy units.Energy
	// Latency is leaf compute + transfer + hub compute for one inference.
	Latency units.Duration
}

// Config describes a split-computing problem.
type Config struct {
	Model *nn.Sequential
	Leaf  *Platform
	Hub   *Platform
	Link  Link
	// BitsPerElement is the activation wire format (8 for int8).
	BitsPerElement int
	// ResultBits is the size of the final result returned when the model
	// runs fully on the leaf (defaults to output elems × BitsPerElement).
	ResultBits int64
}

// validate fills defaults and checks the configuration.
func (c *Config) validate() error {
	if c.Model == nil || c.Leaf == nil || c.Hub == nil {
		return fmt.Errorf("partition: model, leaf and hub are required")
	}
	if c.BitsPerElement <= 0 {
		c.BitsPerElement = 8
	}
	if c.Link.Rate <= 0 {
		return fmt.Errorf("partition: link rate must be positive")
	}
	return nil
}

// elemsAt returns the activation element count entering layer i.
func elemsAt(m *nn.Sequential, i int) int64 {
	n := int64(1)
	for _, d := range m.ShapeAt(i) {
		n *= int64(d)
	}
	return n
}

// Evaluate computes every cut 0..N for the configuration.
func Evaluate(cfg Config) ([]Cut, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	profiles := m.Profiles()
	n := m.NumLayers()

	// Prefix MAC sums.
	prefix := make([]int64, n+1)
	for i, p := range profiles {
		prefix[i+1] = prefix[i] + p.MACs
	}
	total := prefix[n]

	resultBits := cfg.ResultBits
	if resultBits <= 0 {
		resultBits = elemsAt(m, n) * int64(cfg.BitsPerElement)
	}

	cuts := make([]Cut, 0, n+1)
	for k := 0; k <= n; k++ {
		var txBits int64
		if k == n {
			txBits = resultBits
		} else {
			txBits = elemsAt(m, k) * int64(cfg.BitsPerElement)
		}
		leafMACs := prefix[k]
		hubMACs := total - leafMACs

		compute := units.Energy(float64(cfg.Leaf.EnergyPerMAC) * float64(leafMACs))
		tx := cfg.Link.EnergyPerBit.EnergyFor(float64(txBits))
		leaf := compute + tx + cfg.Link.PerTransferOverhead

		latency := units.Duration(float64(leafMACs)/cfg.Leaf.MACRate) +
			cfg.Link.Rate.TimeFor(float64(txBits)) +
			units.Duration(float64(hubMACs)/cfg.Hub.MACRate)

		cuts = append(cuts, Cut{
			Index:             k,
			LeafMACs:          leafMACs,
			HubMACs:           hubMACs,
			TxBits:            txBits,
			LeafComputeEnergy: compute,
			TxEnergy:          tx,
			LeafEnergy:        leaf,
			HubEnergy:         units.Energy(float64(cfg.Hub.EnergyPerMAC) * float64(hubMACs)),
			Latency:           latency,
		})
	}
	return cuts, nil
}

// Best returns the cut minimizing leaf energy (ties break toward the
// earlier cut — less leaf silicon).
func Best(cuts []Cut) (Cut, error) {
	if len(cuts) == 0 {
		return Cut{}, fmt.Errorf("partition: no cuts")
	}
	best := cuts[0]
	for _, c := range cuts[1:] {
		if c.LeafEnergy < best.LeafEnergy {
			best = c
		}
	}
	return best, nil
}

// BestUnderLatency returns the minimum-leaf-energy cut whose latency is
// within the deadline. It returns an error if no cut qualifies.
func BestUnderLatency(cuts []Cut, deadline units.Duration) (Cut, error) {
	found := false
	var best Cut
	for _, c := range cuts {
		if c.Latency > deadline {
			continue
		}
		if !found || c.LeafEnergy < best.LeafEnergy {
			best = c
			found = true
		}
	}
	if !found {
		return Cut{}, fmt.Errorf("partition: no cut meets %v deadline", deadline)
	}
	return best, nil
}

// Pareto returns the non-dominated cuts in (leaf energy, latency),
// sorted by leaf energy.
func Pareto(cuts []Cut) []Cut {
	sorted := append([]Cut(nil), cuts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].LeafEnergy != sorted[j].LeafEnergy {
			return sorted[i].LeafEnergy < sorted[j].LeafEnergy
		}
		return sorted[i].Latency < sorted[j].Latency
	})
	var front []Cut
	bestLat := units.Duration(math.Inf(1))
	for _, c := range sorted {
		if c.Latency < bestLat {
			front = append(front, c)
			bestLat = c.Latency
		}
	}
	return front
}

// LeafPowerAt returns the leaf's average power running the cut at a given
// inference rate, including the platform idle floor when any local compute
// is deployed.
func (c Cut) LeafPowerAt(perSecond float64, leaf *Platform) units.Power {
	p := units.Power(float64(c.LeafEnergy) * perSecond)
	if c.LeafMACs > 0 {
		p += leaf.IdlePower
	}
	return p
}

// Describe renders a one-line summary of the cut.
func (c Cut) Describe() string {
	return fmt.Sprintf("cut@%d: leaf %d MACs + %d bits → %v/inf, %v latency",
		c.Index, c.LeafMACs, c.TxBits, c.LeafEnergy, c.Latency)
}
