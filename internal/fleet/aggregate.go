package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"wiban/internal/bannet"
	"wiban/internal/units"
)

// Dist summarizes a population sample: count, range, mean and the
// percentiles the paper's figures care about. Percentile indexing matches
// bannet's per-node convention (index ⌊n·p/100⌋ of the sorted sample).
type Dist struct {
	N                  int
	Min, Max, Mean     float64
	P10, P50, P90, P99 float64
}

// NewDist summarizes samples. The slice is sorted in place; an empty
// sample yields the zero Dist.
func NewDist(samples []float64) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	// Sum before sorting so the mean reflects the caller's (wearer-index)
	// order — a fixed order is what makes the aggregate bit-reproducible.
	var sum float64
	for _, s := range samples {
		sum += s
	}
	sort.Float64s(samples)
	n := len(samples)
	return Dist{
		N:    n,
		Min:  samples[0],
		Max:  samples[n-1],
		Mean: sum / float64(n),
		P10:  samples[(n*10)/100],
		P50:  samples[n/2],
		P90:  samples[(n*90)/100],
		P99:  samples[(n*99)/100],
	}
}

func (d Dist) String() string {
	if d.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("p10 %.3g / p50 %.3g / p90 %.3g / p99 %.3g (mean %.3g, range %.3g–%.3g, n=%d)",
		d.P10, d.P50, d.P90, d.P99, d.Mean, d.Min, d.Max, d.N)
}

// Report is the fleet-level aggregate of a population sweep. Every field
// is a pure function of the per-wearer reports taken in wearer-index
// order, so two runs of the same fleet seed produce byte-identical
// reports regardless of worker count — Fingerprint pins that.
type Report struct {
	Wearers int
	// Nodes is the total leaf-node count across the fleet (node-count mix
	// makes it a non-trivial multiple of Wearers).
	Nodes int
	Span  units.Duration
	// Events is the total discrete-event count across all shards.
	Events uint64

	// Fleet-wide traffic totals.
	PacketsGenerated int64
	PacketsDelivered int64
	PacketsDropped   int64
	Transmissions    int64
	BitsDelivered    int64
	HubRxBits        int64

	// Per-node population distributions.
	DeliveryRate     Dist // delivered/generated per node
	BatteryLifeHours Dist // projected battery life per node, in hours
	LatencyP50ms     Dist // per-node p50 delivery latency, in milliseconds
	LatencyP99ms     Dist // per-node p99 delivery latency, in milliseconds

	// Per-wearer hub utilization distribution.
	HubUtilization Dist

	// PerpetualFraction is the fraction of nodes meeting the paper's
	// perpetual-operation criterion; DiedFraction the fraction whose
	// battery died mid-run (DrainBattery scenarios).
	PerpetualFraction float64
	DiedFraction      float64

	// Cells are the per-cell statistics of a spectrum-coupled sweep,
	// sorted by cell index; empty (and omitted from the fingerprint
	// JSON) on uncoupled sweeps, so every pre-coupling fingerprint
	// replays unchanged. Only the streaming path populates them — the
	// batch Aggregate has no placement information.
	Cells []CellStat `json:",omitempty"`
}

// CellStat summarizes one spatial cell of a coupled sweep: how crowded
// the shared band was and what that did to its members. Populated cells
// only — a cell no wearer hashed into is not listed.
type CellStat struct {
	// Cell is the cell index in [0, Coupling.Cells).
	Cell int
	// Wearers and Nodes count the cell's members.
	Wearers int
	Nodes   int
	// MeanForeignLoad is the mean foreign co-channel offered load a
	// member saw, in erlangs — the cell's congestion level.
	MeanForeignLoad float64
	// MeanDelivery is the mean per-node delivery rate across the cell's
	// nodes (RF and body-channel alike).
	MeanDelivery float64
	// Died counts member nodes whose battery died mid-run.
	Died int
	// MeanEqForeignLoad is the mean *equilibrium* (collision-retry-
	// inflated) foreign load a member saw, in erlangs. Zero — and omitted
	// from the fingerprint JSON, so first-order fingerprints replay
	// unchanged — unless the sweep closed the feedback loop.
	MeanEqForeignLoad float64 `json:",omitempty"`
	// FeedbackIters is how many damped fixed-point rounds the cell's
	// equilibrium took (0 = already at equilibrium, e.g. a lone wearer;
	// a value equal to the coupling's MaxIters may mean the cap cut the
	// iteration short). Zero and omitted on first-order sweeps.
	FeedbackIters int `json:",omitempty"`
}

// Aggregate merges per-wearer reports (indexed by wearer) into the fleet
// report. It iterates in slice order, which callers must keep equal to
// wearer-index order for reproducibility.
func Aggregate(span units.Duration, reports []*bannet.Report) *Report {
	rep := &Report{Wearers: len(reports), Span: span}
	var (
		delivery  []float64
		lifeHours []float64
		latP50    []float64
		latP99    []float64
		hubUtil   []float64
		perpetual int
		died      int
	)
	for _, r := range reports {
		rep.Events += r.Events
		rep.HubRxBits += r.HubRxBits
		hubUtil = append(hubUtil, r.HubUtilization)
		for i := range r.Nodes {
			n := &r.Nodes[i]
			rep.Nodes++
			rep.PacketsGenerated += n.PacketsGenerated
			rep.PacketsDelivered += n.PacketsDelivered
			rep.PacketsDropped += n.PacketsDropped
			rep.Transmissions += n.Transmissions
			rep.BitsDelivered += n.BitsDelivered
			delivery = append(delivery, n.DeliveryRate())
			lifeHours = append(lifeHours, float64(n.ProjectedLife)/float64(units.Hour))
			if n.PacketsDelivered > 0 {
				latP50 = append(latP50, float64(n.LatencyP50)*1e3)
				latP99 = append(latP99, float64(n.LatencyP99)*1e3)
			}
			if n.Perpetual {
				perpetual++
			}
			if n.Died {
				died++
			}
		}
	}
	rep.DeliveryRate = NewDist(delivery)
	rep.BatteryLifeHours = NewDist(lifeHours)
	rep.LatencyP50ms = NewDist(latP50)
	rep.LatencyP99ms = NewDist(latP99)
	rep.HubUtilization = NewDist(hubUtil)
	if rep.Nodes > 0 {
		rep.PerpetualFraction = float64(perpetual) / float64(rep.Nodes)
		rep.DiedFraction = float64(died) / float64(rep.Nodes)
	}
	return rep
}

// Fingerprint returns a stable hex digest of the whole report. Two fleet
// runs agree byte-for-byte iff their fingerprints match; the determinism
// and parallelism-invariance tests compare these.
func (r *Report) Fingerprint() string {
	blob, err := json.Marshal(r)
	if err != nil {
		// Report is a plain value type; Marshal cannot fail on it.
		panic(fmt.Sprintf("fleet: fingerprint: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// String renders a multi-line summary for CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d wearers, %d nodes, %v simulated each (%d events total)\n",
		r.Wearers, r.Nodes, r.Span, r.Events)
	fmt.Fprintf(&b, "  traffic:   %d generated, %d delivered, %d dropped (%d tx attempts)\n",
		r.PacketsGenerated, r.PacketsDelivered, r.PacketsDropped, r.Transmissions)
	fmt.Fprintf(&b, "  delivered: %.2f MB to hubs (%.2f MB payload)\n",
		float64(r.HubRxBits)/8e6, float64(r.BitsDelivered)/8e6)
	fmt.Fprintf(&b, "  delivery rate:    %v\n", r.DeliveryRate)
	fmt.Fprintf(&b, "  battery life [h]: %v\n", r.BatteryLifeHours)
	fmt.Fprintf(&b, "  p50 latency [ms]: %v\n", r.LatencyP50ms)
	fmt.Fprintf(&b, "  p99 latency [ms]: %v\n", r.LatencyP99ms)
	fmt.Fprintf(&b, "  hub utilization:  %v\n", r.HubUtilization)
	fmt.Fprintf(&b, "  perpetual nodes:  %.1f%%   died mid-run: %.1f%%",
		r.PerpetualFraction*100, r.DiedFraction*100)
	if len(r.Cells) > 0 {
		minD, maxD := r.Cells[0].MeanDelivery, r.Cells[0].MeanDelivery
		var load, eqLoad float64
		maxIters := 0
		for _, c := range r.Cells {
			load += c.MeanForeignLoad * float64(c.Wearers)
			eqLoad += c.MeanEqForeignLoad * float64(c.Wearers)
			if c.FeedbackIters > maxIters {
				maxIters = c.FeedbackIters
			}
			if c.MeanDelivery < minD {
				minD = c.MeanDelivery
			}
			if c.MeanDelivery > maxD {
				maxD = c.MeanDelivery
			}
		}
		fmt.Fprintf(&b, "\n  spectrum:  %d cells, mean foreign load %.3f erlangs, cell delivery %.3f–%.3f",
			len(r.Cells), load/float64(r.Wearers), minD, maxD)
		if eqLoad > 0 || maxIters > 0 {
			fmt.Fprintf(&b, "\n  feedback:  equilibrium foreign load %.3f erlangs (fixed point ≤%d rounds)",
				eqLoad/float64(r.Wearers), maxIters)
		}
	}
	return b.String()
}
