package fleet

// Tests for the two-phase spectrum-coupled engine: the determinism and
// resume contracts must survive the coupling, and the physics must show
// the paper's density story — RF links degrade with wearers-per-cell
// while body-channel (EQS) links do not.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// coupledBase is a two-node wearer built for clean interference
// attribution: node 0 streams an IMU over a BLE radio (RF — exposed to
// cell contention), node 1 streams ECG over Wi-R (EQS — immune). Both
// links are error-free in isolation (PER 0), so any delivery loss on
// node 0 is collision loss and node 1's delivery is density-invariant by
// construction.
func coupledBase() bannet.Config {
	return bannet.Config{Nodes: []bannet.NodeConfig{
		{
			ID: 1, Name: "ble-imu", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.BLE42(), Battery: energy.CR2032(),
			PacketBits: 1024, PER: 0, MaxRetries: 1,
		},
		{
			ID: 2, Name: "wir-ecg", Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0, MaxRetries: 1,
		},
	}}
}

// coupledFleet is a spectrum-coupled sweep over identical wearers.
func coupledFleet(wearers, workers int, seed int64, cells int) *Fleet {
	return &Fleet{
		Wearers: wearers,
		Seed:    seed,
		Scenario: func(int, *rand.Rand) (bannet.Config, error) {
			return coupledBase(), nil
		},
		Span:     30 * units.Second,
		Workers:  workers,
		Coupling: &Coupling{Cells: cells},
	}
}

// TestCoupledParallelismInvariance is the two-phase determinism
// criterion: the coupled sweep's aggregate report — including the
// per-cell stats — is byte-identical across worker counts.
func TestCoupledParallelismInvariance(t *testing.T) {
	serial, _, err := coupledFleet(120, 1, 99, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(serial)
	if len(serial.Cells) == 0 {
		t.Fatal("coupled sweep produced no cell stats")
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		par, perf, err := coupledFleet(120, workers, 99, 8).Run()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(par)
		if string(got) != string(want) {
			t.Fatalf("workers=%d diverged from workers=1 (%v)", workers, perf)
		}
	}
	// A perturbation check: the coupling must actually be part of the
	// fingerprint, not ignored.
	dense, _, err := coupledFleet(120, 4, 99, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if dense.Fingerprint() == serial.Fingerprint() {
		t.Fatal("cell count does not affect the coupled fingerprint")
	}
}

// TestCoupledResumeGolden extends the resume acceptance scenario to the
// two-phase engine: kill a coupled sweep at and inside a block boundary,
// resume from the checkpoint, and demand the exact uninterrupted
// fingerprint — then re-derive it from the store alone (which requires
// the v1 cell columns to replay).
func TestCoupledResumeGolden(t *testing.T) {
	const wearers, cells, blockSize = 90, 6, 16
	mk := func() *Fleet { return coupledFleet(wearers, 4, 77, cells) }

	want, _, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	meta := telemetry.Meta{
		FleetSeed:   77,
		Wearers:     wearers,
		SpanSeconds: float64(30 * units.Second),
		Scenario:    "coupledTestFleet;" + mk().Coupling.Tag(),
		BlockSize:   blockSize,
		Version:     telemetry.CurrentFormat,
		Cells:       cells,
	}

	for _, kill := range []struct {
		name  string
		after int
	}{
		{"at block boundary", 32},
		{"mid-block", 41},
	} {
		t.Run(kill.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "coupled.wtl")
			store, err := telemetry.Create(path, meta)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			killer := SinkFunc(func(rec telemetry.Record) error {
				if seen == kill.after {
					return errKilled
				}
				seen++
				return store.Consume(rec)
			})
			if _, err := mk().Stream(killer); err == nil {
				t.Fatal("kill-sink did not abort the sweep")
			}
			if err := store.Abort(); err != nil {
				t.Fatal(err)
			}

			resumed, err := telemetry.Resume(path)
			if err != nil {
				t.Fatal(err)
			}
			if wantNext := (kill.after / blockSize) * blockSize; resumed.NextWearer() != wantNext {
				t.Fatalf("resume at wearer %d, want %d", resumed.NextWearer(), wantNext)
			}
			agg := NewStreamAggregator(30 * units.Second)
			reader, err := telemetry.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := Replay(reader, agg)
			reader.Close()
			if err != nil {
				t.Fatal(err)
			}
			if replayed != resumed.NextWearer() {
				t.Fatalf("replayed %d records, checkpoint says %d", replayed, resumed.NextWearer())
			}
			f2 := mk()
			f2.Start = resumed.NextWearer()
			if _, err := f2.Stream(Tee(resumed, agg)); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Close(); err != nil {
				t.Fatal(err)
			}
			if got := agg.Report(); got.Fingerprint() != want.Fingerprint() {
				t.Fatal("resumed coupled sweep diverged from uninterrupted run")
			}
			if got := reaggregate(t, path, 30*units.Second); got.Fingerprint() != want.Fingerprint() {
				t.Fatal("re-aggregation from the coupled store diverged")
			}
		})
	}
}

// nodeTotals sums per-node-index delivery and transmission counters
// across a sweep via a sink (node order is fixed by coupledBase).
type nodeTotals struct {
	gen, del, tx [2]int64
	life         [2]float64
}

func runDensity(t *testing.T, cells int) (*Report, nodeTotals) {
	t.Helper()
	var tot nodeTotals
	f := coupledFleet(96, 4, 7, cells)
	agg := NewStreamAggregator(f.Span)
	sink := Tee(agg, SinkFunc(func(rec telemetry.Record) error {
		if len(rec.Nodes) != 2 {
			return fmt.Errorf("wearer %d has %d nodes", rec.Wearer, len(rec.Nodes))
		}
		for i := range rec.Nodes {
			tot.gen[i] += rec.Nodes[i].PacketsGenerated
			tot.del[i] += rec.Nodes[i].PacketsDelivered
			tot.tx[i] += rec.Nodes[i].Transmissions
			tot.life[i] += rec.Nodes[i].ProjectedLife
		}
		return nil
	}))
	if _, err := f.Stream(sink); err != nil {
		t.Fatal(err)
	}
	return agg.Report(), tot
}

// TestDensitySweepDegradesRFOnly is the tentpole acceptance criterion:
// as wearers-per-cell rises (cells shrink over a fixed population), the
// RF node's delivery rate degrades monotonically and its radio works
// harder, while the EQS node's delivery is bit-identical at every
// density — the paper's shared-spectrum collapse, reproduced at fleet
// scale.
func TestDensitySweepDegradesRFOnly(t *testing.T) {
	densities := []int{96, 12, 3, 1} // cells: mean density 1 → 96 wearers/cell
	var (
		rfRate  []float64
		rfTx    []int64
		rfLife  []float64
		eqsDel  []int64
		reports []*Report
	)
	for _, cells := range densities {
		rep, tot := runDensity(t, cells)
		reports = append(reports, rep)
		rfRate = append(rfRate, float64(tot.del[0])/float64(tot.gen[0]))
		rfTx = append(rfTx, tot.tx[0])
		rfLife = append(rfLife, tot.life[0])
		eqsDel = append(eqsDel, tot.del[1])
	}
	for i := 1; i < len(densities); i++ {
		if rfRate[i] > rfRate[i-1] {
			t.Errorf("RF delivery rose with density: %.4f at %d cells vs %.4f at %d cells",
				rfRate[i], densities[i], rfRate[i-1], densities[i-1])
		}
		if rfTx[i] < rfTx[i-1] {
			t.Errorf("RF transmissions fell with density: %d at %d cells vs %d at %d cells",
				rfTx[i], densities[i], rfTx[i-1], densities[i-1])
		}
		if rfLife[i] > rfLife[i-1]+1e-6 {
			t.Errorf("RF battery life rose with density: %.1f at %d cells vs %.1f at %d cells",
				rfLife[i], densities[i], rfLife[i-1], densities[i-1])
		}
		if eqsDel[i] != eqsDel[0] {
			t.Errorf("EQS delivery moved with density: %d at %d cells vs %d at %d cells",
				eqsDel[i], densities[i], eqsDel[0], densities[0])
		}
	}
	if rfRate[len(rfRate)-1] > 0.5*rfRate[0] {
		t.Errorf("single-cell sweep barely degraded RF delivery: %.4f vs %.4f sparse",
			rfRate[len(rfRate)-1], rfRate[0])
	}

	// Per-cell stats: every wearer lands in exactly one cell, and the
	// congestion level rises as cells shrink.
	var prevLoad float64
	for i, rep := range reports {
		wearers := 0
		var load float64
		for _, c := range rep.Cells {
			wearers += c.Wearers
			load += c.MeanForeignLoad * float64(c.Wearers)
		}
		if wearers != 96 {
			t.Errorf("%d cells: cell stats cover %d wearers, want 96", densities[i], wearers)
		}
		if i > 0 && load <= prevLoad {
			t.Errorf("%d cells: mean foreign load %.4f did not rise above %.4f",
				densities[i], load/96, prevLoad/96)
		}
		prevLoad = load
	}
}

// TestCoupledPhase1ErrorIsLowestIndex: a failing scenario surfaces as
// the lowest failing wearer in phase 1, independent of worker count.
func TestCoupledPhase1ErrorIsLowestIndex(t *testing.T) {
	scen := func(wearer int, rng *rand.Rand) (bannet.Config, error) {
		if wearer == 5 || wearer == 60 {
			return bannet.Config{}, fmt.Errorf("boom %d", wearer)
		}
		return coupledBase(), nil
	}
	for _, workers := range []int{1, 8} {
		f := &Fleet{Wearers: 80, Seed: 1, Scenario: scen, Span: units.Second,
			Workers: workers, Coupling: &Coupling{Cells: 4}}
		_, _, err := f.Run()
		if err == nil || !strings.Contains(err.Error(), "wearer 5") {
			t.Fatalf("workers=%d: error = %v, want phase-1 failure at wearer 5", workers, err)
		}
	}
}

// TestCouplingValidation covers degenerate coupling parameters.
func TestCouplingValidation(t *testing.T) {
	f := coupledFleet(10, 2, 1, 0)
	if _, _, err := f.Run(); err == nil {
		t.Error("zero cells accepted")
	}
	f = coupledFleet(10, 2, 1, 4)
	f.Coupling.Model = &spectrum.Model{Beta: -1, MaxCollision: 0.9}
	if _, _, err := f.Run(); err == nil {
		t.Error("invalid collision model accepted")
	}
}

// TestCoupledIsolatedMatchesUncoupledPhysics: with every wearer alone in
// its cell there is no foreign load, so the coupled engine must
// reproduce the uncoupled sweep's physics exactly — the coupling is pure
// interference, not a perturbation of the population.
func TestCoupledIsolatedMatchesUncoupledPhysics(t *testing.T) {
	const wearers = 24
	f := coupledFleet(wearers, 4, 3, 1<<20)
	// Guard the premise: the hash must have scattered all wearers into
	// distinct cells for this seed.
	seen := map[int]bool{}
	for w := 0; w < wearers; w++ {
		c := f.cellOf(w)
		if seen[c] {
			t.Fatalf("wearers collide in cell %d; pick another seed for this test", c)
		}
		seen[c] = true
	}
	coupled, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	un := coupledFleet(wearers, 4, 3, 1)
	un.Coupling = nil
	uncoupled, _, err := un.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The coupled report additionally carries cell stats, so compare the
	// physics fields, not the whole fingerprint.
	if coupled.PacketsDelivered != uncoupled.PacketsDelivered ||
		coupled.PacketsDropped != uncoupled.PacketsDropped ||
		coupled.Events != uncoupled.Events ||
		coupled.DeliveryRate != uncoupled.DeliveryRate ||
		coupled.BatteryLifeHours != uncoupled.BatteryLifeHours {
		t.Fatalf("isolated coupled sweep diverged from uncoupled physics:\n%+v\n%+v", coupled, uncoupled)
	}
	for _, c := range coupled.Cells {
		if c.MeanForeignLoad != 0 {
			t.Fatalf("isolated wearer saw foreign load %g", c.MeanForeignLoad)
		}
	}
}
