package fleet

// Tests for the shard half of the distributed two-round protocol:
// range-bounded gathers must merge bit-exactly into the full-population
// phase 1, and shards simulating phase 2 against shipped (presolved)
// results must concatenate into the exact single-process sweep.

import (
	"reflect"
	"strings"
	"testing"

	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// shardTiling is the 3-way uneven split the shard tests run against —
// deliberately not aligned to any block or chunk size.
var shardTiling = [][2]int{{0, 41}, {41, 83}, {83, 120}}

// rangeFleet bounds a fleet to one shard's wearer range.
func rangeFleet(f *Fleet, lo, hi int) *Fleet {
	g := *f
	g.Start = lo
	if hi != g.Wearers {
		g.End = hi
	} else {
		g.End = 0
	}
	return &g
}

// TestGatherLoadsRangeMerge: merging every shard's partial table — and
// concatenating the member windows in range order — reproduces the
// full-population gather bit-exactly, including the equilibrium solved
// from the concatenation.
func TestGatherLoadsRangeMerge(t *testing.T) {
	const wearers, cells = 120, 8
	full := feedbackFleet(wearers, 4, 99, cells)
	fullLoads, fullMembers, err := full.GatherLoads()
	if err != nil {
		t.Fatal(err)
	}
	if len(fullMembers) != wearers {
		t.Fatalf("full gather returned %d members, want %d", len(fullMembers), wearers)
	}

	merged, err := spectrum.NewLoadTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]spectrum.Member, wearers)
	for _, rng := range shardTiling {
		part, partMembers, err := rangeFleet(feedbackFleet(wearers, 4, 99, cells), rng[0], rng[1]).GatherLoads()
		if err != nil {
			t.Fatal(err)
		}
		if len(partMembers) != rng[1]-rng[0] {
			t.Fatalf("range [%d,%d) returned %d members", rng[0], rng[1], len(partMembers))
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
		copy(members[rng[0]:rng[1]], partMembers)
	}

	if !reflect.DeepEqual(merged.Export(), fullLoads.Export()) {
		t.Error("merged shard tables differ from the full-population gather")
	}
	if !reflect.DeepEqual(members, fullMembers) {
		t.Error("concatenated shard members differ from the full-population gather")
	}

	// The one deterministic solve over either member set must agree.
	eq := spectrum.Equilibrium{}
	fullRes, err := eq.Solve(cells, fullMembers)
	if err != nil {
		t.Fatal(err)
	}
	mergedRes, err := eq.Solve(cells, members)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mergedRes.Table().Export(), fullRes.Table().Export()) {
		t.Error("equilibrium tables diverge between merged and full member sets")
	}
	if !reflect.DeepEqual(mergedRes.ExportOwn(0, wearers), fullRes.ExportOwn(0, wearers)) {
		t.Error("equilibrium own loads diverge between merged and full member sets")
	}
}

// TestPresolvedShardRunBitIdentical is the protocol's phase-2 contract:
// shards simulating their ranges against the shipped phase-1 results —
// round-tripped through the wire form, exactly as a coordinator ships
// them — concatenate into the fingerprint of an uninterrupted
// single-process run. Both coupling modes, because feedback adds the
// windowed equilibrium to the shipment.
func TestPresolvedShardRunBitIdentical(t *testing.T) {
	const wearers, cells = 120, 8
	for _, feedback := range []bool{false, true} {
		name := "first-order"
		if feedback {
			name = "feedback"
		}
		t.Run(name, func(t *testing.T) {
			build := func() *Fleet {
				if feedback {
					return feedbackFleet(wearers, 4, 99, cells)
				}
				return coupledFleet(wearers, 4, 99, cells)
			}
			want, _, err := build().Run()
			if err != nil {
				t.Fatal(err)
			}

			loads, members, err := build().GatherLoads()
			if err != nil {
				t.Fatal(err)
			}
			var res *spectrum.Result
			if feedback {
				eq := spectrum.Equilibrium{}
				if res, err = eq.Solve(cells, members); err != nil {
					t.Fatal(err)
				}
			}

			agg := NewStreamAggregator(30 * units.Second)
			for _, rng := range shardTiling {
				// Round-trip the shipment through its exported wire form: the
				// shard side reconstructs from []CellLoad and a windowed own
				// slice, never from shared pointers.
				shipped, err := spectrum.ImportTable(cells, loads.Export())
				if err != nil {
					t.Fatal(err)
				}
				pre := &Presolved{Loads: shipped}
				if feedback {
					win, err := spectrum.NewResult(cells, res.Table().Export(), res.ExportIters(),
						rng[0], res.ExportOwn(rng[0], rng[1]))
					if err != nil {
						t.Fatal(err)
					}
					pre.Eq = win
				}
				shard := rangeFleet(build(), rng[0], rng[1])
				shard.Coupling.Presolved = pre
				if _, err := shard.Stream(agg); err != nil {
					t.Fatal(err)
				}
			}
			if got := agg.Report(); got.Fingerprint() != want.Fingerprint() {
				t.Errorf("presolved shard concatenation fingerprint %q != single-process %q",
					got.Fingerprint(), want.Fingerprint())
			}
		})
	}
}

// TestStreamEndBounded: End stops the stream exactly at the bound, so a
// shard emits its range and nothing more; End validation mirrors Start.
func TestStreamEndBounded(t *testing.T) {
	var got []int
	sink := SinkFunc(func(rec telemetry.Record) error {
		got = append(got, rec.Wearer)
		return nil
	})
	f := testFleet(80, 4, 21)
	f.Start, f.End = 33, 61
	if _, err := f.Stream(sink); err != nil {
		t.Fatal(err)
	}
	if len(got) != 61-33 {
		t.Fatalf("range stream emitted %d records, want %d", len(got), 61-33)
	}
	for i, w := range got {
		if w != 33+i {
			t.Fatalf("record %d has wearer %d, want %d", i, w, 33+i)
		}
	}

	bad := testFleet(80, 4, 21)
	bad.End = 81
	if _, _, err := bad.Run(); err == nil {
		t.Error("End beyond the population accepted")
	}
	inverted := testFleet(80, 4, 21)
	inverted.Start, inverted.End = 50, 40
	if _, _, err := inverted.Run(); err == nil {
		t.Error("Start past End accepted")
	}
}

// TestGatherLoadsUncoupled: the shard gather is a coupled-protocol
// operation and refuses a fleet with no spectrum topology.
func TestGatherLoadsUncoupled(t *testing.T) {
	f := testFleet(40, 2, 7)
	if _, _, err := f.GatherLoads(); err == nil || !strings.Contains(err.Error(), "uncoupled") {
		t.Fatalf("GatherLoads on an uncoupled fleet: %v, want uncoupled error", err)
	}
}

// TestGatherLoadsRejects pins the gather's validation surface — the same
// envelope Run enforces, checked before any work is dispatched.
func TestGatherLoadsRejects(t *testing.T) {
	mustFail := func(name string, mutate func(*Fleet)) {
		t.Helper()
		f := coupledFleet(40, 2, 7, 4)
		mutate(f)
		if _, _, err := f.GatherLoads(); err == nil {
			t.Errorf("%s: GatherLoads succeeded, want error", name)
		}
	}
	mustFail("bad coupling", func(f *Fleet) { f.Coupling.Cells = -1 })
	mustFail("non-positive population", func(f *Fleet) { f.Wearers = 0 })
	mustFail("nil scenario", func(f *Fleet) { f.Scenario, f.Loads = nil, nil })
	mustFail("end beyond population", func(f *Fleet) { f.End = 41 })
	mustFail("start past end", func(f *Fleet) { f.Start, f.End = 30, 20 })
}

// TestStreamAggregatorWearers: the fold count is what a resumed sweep
// restarts from, so it must track exactly the records consumed.
func TestStreamAggregatorWearers(t *testing.T) {
	agg := NewStreamAggregator(30 * units.Second)
	if agg.Wearers() != 0 {
		t.Fatalf("fresh aggregator reports %d wearers", agg.Wearers())
	}
	f := testFleet(24, 2, 7)
	if _, err := f.Stream(agg); err != nil {
		t.Fatal(err)
	}
	if agg.Wearers() != 24 {
		t.Errorf("aggregator reports %d wearers, want 24", agg.Wearers())
	}
}
