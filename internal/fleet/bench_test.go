package fleet

// Fleet-engine benchmarks: population sweeps at 1, 4 and NumCPU workers.
// The headline metrics are runs/s (wearer simulations per second) and
// events/s (discrete events per second across all shards); BENCH_fleet.json
// at the repo root records a baseline.

import (
	"runtime"
	"testing"

	"wiban/internal/units"
)

// benchFleet sweeps 200 wearers × 60 simulated seconds. Every fleet
// benchmark reports allocs (the zero-allocation kernel contract is a
// headline number here) and phase1-ms (0 when uncoupled) so the
// BENCH_fleet.json schema is uniform across engines.
func benchFleet(b *testing.B, workers int, fresh bool) {
	b.Helper()
	f := testFleet(200, workers, 42)
	f.Span = 60 * units.Second
	f.freshKernels = fresh
	b.ReportAllocs()
	var last Perf
	for i := 0; i < b.N; i++ {
		_, perf, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = perf
	}
	b.ReportMetric(last.RunsPerSec, "runs/s")
	b.ReportMetric(last.EventsPerSec, "events/s")
	b.ReportMetric(last.Phase1.Seconds()*1e3, "phase1-ms")
}

func BenchmarkFleetWorkers1(b *testing.B) { benchFleet(b, 1, false) }
func BenchmarkFleetWorkers4(b *testing.B) { benchFleet(b, 4, false) }
func BenchmarkFleetWorkersNumCPU(b *testing.B) {
	b.Logf("NumCPU = %d", runtime.NumCPU())
	benchFleet(b, runtime.NumCPU(), false)
}

// BenchmarkFleetReuse / BenchmarkFleetFresh record the kernel-arena win
// as a first-class pair: identical workload and worker count, with Fresh
// forcing the pre-arena lifecycle (a new Sim, RNG and report per wearer)
// and Reuse running the recycled per-worker arenas. Results are
// bit-identical (TestFreshKernelsMatchesReuse); only allocation lifetime
// — and therefore allocs/op, B/op and GC pressure — differs.
func BenchmarkFleetReuse(b *testing.B) { benchFleet(b, 4, false) }
func BenchmarkFleetFresh(b *testing.B) { benchFleet(b, 4, true) }

// BenchmarkFleetInstrumented is the daemon-path benchmark: the identical
// workload to BenchmarkFleetWorkers4 with a Stats hook attached, the way
// iobfleetd runs every sweep. The delta vs Workers4 is the whole cost of
// live instrumentation — a few atomic adds per wearer — and the
// allocation-budget gate holds it to the same ceilings as the
// uninstrumented engine: instrumentation must not break the zero-alloc
// hot path.
func BenchmarkFleetInstrumented(b *testing.B) {
	f := testFleet(200, 4, 42)
	f.Span = 60 * units.Second
	f.Stats = &Stats{}
	b.ReportAllocs()
	var last Perf
	for i := 0; i < b.N; i++ {
		_, perf, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = perf
	}
	b.ReportMetric(last.RunsPerSec, "runs/s")
	b.ReportMetric(last.EventsPerSec, "events/s")
	b.ReportMetric(last.Phase1.Seconds()*1e3, "phase1-ms")
}

// TestFleetParallelSpeedup asserts the acceptance criterion on machines
// with enough cores: the NumCPU-worker sweep of 1,000 wearers runs >2×
// faster than the serial sweep. Below 4 cores there is nothing to
// measure, so the test skips.
func TestFleetParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 cores for a speedup claim, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test in -short mode")
	}
	mk := func(workers int) *Fleet {
		f := testFleet(1000, workers, 42)
		f.Span = 60 * units.Second
		return f
	}
	// Warm up once so first-touch allocation noise lands outside the
	// measured runs.
	if _, _, err := mk(1).Run(); err != nil {
		t.Fatal(err)
	}
	_, serial, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	_, parallel, err := mk(runtime.NumCPU()).Run()
	if err != nil {
		t.Fatal(err)
	}
	speedup := serial.Elapsed.Seconds() / parallel.Elapsed.Seconds()
	t.Logf("serial %v, parallel %v on %d workers → %.2fx", serial.Elapsed, parallel.Elapsed, parallel.Workers, speedup)
	if speedup <= 2 {
		t.Errorf("speedup %.2fx on %d cores, want > 2x", speedup, runtime.NumCPU())
	}
}

// benchCoupledFleet mirrors benchFleet with the two-phase engine.
// cells ≫ wearers keeps every wearer effectively alone (zero foreign
// load), so the physics — and the per-wearer event count — match the
// uncoupled benchmark and the delta is pure engine overhead: phase 1
// plus coupling bookkeeping. The acceptance budget is ≤10% vs the
// uncoupled workers-matched baseline in BENCH_fleet.json. Phase 1 runs
// the Generator's load pass, matching how cmd/iobfleet wires a sweep.
func benchCoupledFleet(b *testing.B, workers, cells int, feedback bool) {
	b.Helper()
	f := testFleet(200, workers, 42)
	f.Loads = testGenerator().LoadScenario()
	f.Span = 60 * units.Second
	f.Coupling = &Coupling{Cells: cells, Feedback: feedback}
	b.ReportAllocs()
	var last Perf
	for i := 0; i < b.N; i++ {
		_, perf, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = perf
	}
	b.ReportMetric(last.RunsPerSec, "runs/s")
	b.ReportMetric(last.EventsPerSec, "events/s")
	b.ReportMetric(last.Phase1.Seconds()*1e3, "phase1-ms")
}

// BenchmarkFleetCoupledSparse is the engine-overhead benchmark (density
// ≈ 0: identical physics to BenchmarkFleetWorkers4, so the runs/s gap is
// the two-phase cost).
func BenchmarkFleetCoupledSparse(b *testing.B) { benchCoupledFleet(b, 4, 1<<20, false) }

// BenchmarkFleetCoupledDense is the physics-inclusive benchmark: ~12
// wearers per cell of contending BLE traffic, the shape of a real
// density sweep (collision retries add events, so runs/s is expected to
// move with the workload, not the engine).
func BenchmarkFleetCoupledDense(b *testing.B) { benchCoupledFleet(b, 4, 16, false) }

// BenchmarkFleetFeedbackSparse is the equilibrium-overhead benchmark:
// every wearer is alone in its cell, so every fixed point is trivial
// (zero rounds) and the physics match CoupledSparse exactly — the
// runs/s gap vs CoupledSparse is the cost of the feedback machinery
// itself (member gathering plus the solve walk). The acceptance budget
// is ≤10% over the two-phase baseline, matching PR 3's discipline.
func BenchmarkFleetFeedbackSparse(b *testing.B) { benchCoupledFleet(b, 4, 1<<20, true) }

// BenchmarkFleetFeedbackDense iterates real fixed points (~12 wearers
// per cell of contending BLE traffic). Like CoupledDense it moves with
// the workload — equilibrium collisions add retries and events — so
// phase1-ms, not runs/s, is the engine-cost signal.
func BenchmarkFleetFeedbackDense(b *testing.B) { benchCoupledFleet(b, 4, 16, true) }
