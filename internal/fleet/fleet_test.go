package fleet

// Determinism and parallelism-invariance suite. The contract under test:
// a fleet's aggregate report is a pure function of (population, fleet
// seed, scenario, span) — worker count, goroutine scheduling and rerun
// number must not move a single byte of it.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/units"
)

// testGenerator is the stock perturbed population the fleet tests and
// benchmarks sweep.
func testGenerator() *Generator {
	return &Generator{
		Base:          DefaultBase(),
		PERSpread:     0.5,
		BatterySpread: 0.3,
		HarvesterProb: 0.3,
		DropNodeProb:  0.25,
		BLEFraction:   0.25,
	}
}

// testFleet is a population sweep sized to finish in well under a second.
func testFleet(wearers, workers int, seed int64) *Fleet {
	return &Fleet{
		Wearers:  wearers,
		Seed:     seed,
		Scenario: testGenerator().Scenario(),
		Span:     30 * units.Second,
		Workers:  workers,
	}
}

// TestFleetDeterminism reruns the same fleet and demands byte-identical
// aggregate reports (not just equal fingerprints: the JSON itself).
func TestFleetDeterminism(t *testing.T) {
	a, _, err := testFleet(100, 4, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := testFleet(100, 4, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same fleet seed produced different aggregate reports:\n%s\n%s", ja, jb)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints diverge on identical reports")
	}
}

// TestFleetParallelismInvariance is the acceptance criterion: 1,000
// wearers, workers=1 versus workers=NumCPU (and a fixed 8 for machines
// where NumCPU is 1), byte-identical aggregate output.
func TestFleetParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-wearer sweep in -short mode")
	}
	serial, _, err := testFleet(1000, 1, 42).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(serial)
	for _, workers := range []int{8, runtime.NumCPU()} {
		par, perf, err := testFleet(1000, workers, 42).Run()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(par)
		if string(got) != string(want) {
			t.Fatalf("workers=%d diverged from workers=1 (%v)", workers, perf)
		}
	}
}

// TestFleetSeedSensitivity checks distinct fleet seeds actually explore
// distinct populations.
func TestFleetSeedSensitivity(t *testing.T) {
	a, _, err := testFleet(50, 4, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := testFleet(50, 4, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different fleet seeds produced identical populations")
	}
}

// TestFleetWorkerCountIrrelevantToError checks a failing wearer surfaces
// as the lowest failing index regardless of scheduling.
func TestFleetWorkerCountIrrelevantToError(t *testing.T) {
	scen := func(wearer int, rng *rand.Rand) (bannet.Config, error) {
		if wearer == 3 || wearer == 17 {
			return bannet.Config{}, fmt.Errorf("boom %d", wearer)
		}
		return DefaultBase(), nil
	}
	for _, workers := range []int{1, 8} {
		f := &Fleet{Wearers: 20, Seed: 1, Scenario: scen, Span: units.Second, Workers: workers}
		_, _, err := f.Run()
		if err == nil || !strings.Contains(err.Error(), "wearer 3") {
			t.Fatalf("workers=%d: error = %v, want failure at wearer 3", workers, err)
		}
	}
}

// TestFleetRejectsDegenerateInputs covers the engine's own validation.
func TestFleetRejectsDegenerateInputs(t *testing.T) {
	ok := func(wearer int, rng *rand.Rand) (bannet.Config, error) { return DefaultBase(), nil }
	for name, f := range map[string]*Fleet{
		"no wearers": {Wearers: 0, Scenario: ok, Span: units.Second},
		"nil scen":   {Wearers: 1, Scenario: nil, Span: units.Second},
		"no span":    {Wearers: 1, Scenario: ok, Span: 0},
	} {
		if _, _, err := f.Run(); err == nil {
			t.Errorf("%s: Run accepted a degenerate fleet", name)
		}
	}
}

// TestFleetOverriddenSeed checks the engine stamps each wearer's
// simulation seed: a scenario-set seed must not leak through, or two
// fleets with different fleet seeds would replay identical noise.
func TestFleetOverriddenSeed(t *testing.T) {
	scen := func(wearer int, rng *rand.Rand) (bannet.Config, error) {
		cfg := DefaultBase()
		cfg.Seed = 999 // engine must overwrite this
		for i := range cfg.Nodes {
			cfg.Nodes[i].PER = 0.3 // high PER so the RNG shows in retransmissions
		}
		return cfg, nil
	}
	run := func(seed int64) *Report {
		f := &Fleet{Wearers: 8, Seed: seed, Scenario: scen, Span: 30 * units.Second, Workers: 2}
		rep, _, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if run(5).Fingerprint() == run(6).Fingerprint() {
		t.Fatal("scenario-set Config.Seed leaked through; per-wearer derived seeds not applied")
	}
}
