package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wiban/internal/bannet"
	"wiban/internal/desim"
	"wiban/internal/radio"
	"wiban/internal/spectrum"
)

// Coupling switches the engine to its two-phase spectrum-coupled mode:
// wearers stop being independent and instead contend for shared RF
// spectrum inside spatial cells (see wiban/internal/spectrum).
//
// Phase 1 computes every cell's offered RF load from the scenarios alone:
// each wearer's cell is a pure function of its scenario seed
// (spectrum.CellOf) and its offered load an integer-PPM function of its
// generated config, so the per-cell sums are an exact, order-independent
// reduction — any worker count produces bit-identical loads. Phase 2 then
// runs the ordinary per-wearer kernels with each RF node's CollisionPER
// set from its cell's foreign load; EQS/MQS body-channel nodes are left
// untouched, reproducing the paper's density contrast. Because both
// phases are pure functions of (fleetSeed, population), the engine's
// determinism, parallelism-invariance and resume contracts carry over
// unchanged: a resumed sweep recomputes phase 1 over the full population
// [0, Wearers) regardless of Start and lands on the same loads.
type Coupling struct {
	// Cells is the spatial cell count wearers hash into (> 0). More
	// wearers per cell means more co-channel contention; Wearers/Cells is
	// the sweep's density axis.
	Cells int
	// Model maps a cell's foreign offered load to a collision
	// probability. Nil means spectrum.Default().
	Model *spectrum.Model
	// Feedback closes the collision→retry→offered-load loop: phase 1
	// additionally solves, per cell, the damped fixed point of
	// spectrum.Equilibrium — collisions inflate retransmissions, which
	// inflate airtime, which inflate collisions — and phase 2 stamps each
	// RF node's collision probability from its cell's *equilibrium*
	// foreign load instead of the first-order one. The solve is a pure,
	// single-threaded function of the gathered first-order loads, so
	// every determinism contract (worker invariance, kill/resume) carries
	// over; the cost is O(population) phase-1 memory for the per-wearer
	// node loads the iteration needs. Off (false), the engine is
	// bit-identical to the first-order two-phase engine.
	Feedback bool
	// MaxIters caps the fixed-point rounds per cell (0 =
	// spectrum.DefaultMaxIters). Only meaningful with Feedback.
	MaxIters int
	// TolPPM is the fixed-point convergence tolerance in integer PPM
	// (0 = spectrum.DefaultTolPPM). Only meaningful with Feedback.
	TolPPM int64
	// Presolved, when non-nil, supplies phase 1's results instead of
	// gathering and solving them in-process — the shard half of the
	// distributed two-round protocol: each shard gathers only its own
	// wearer range (GatherLoads), the coordinator merges the partial
	// tables (and, in feedback mode, runs the one deterministic solve
	// over the concatenated members), and the shards simulate phase 2
	// against the shipped full-population results. Because the shipped
	// quantities are exactly what the in-process phase 1 would have
	// computed — integer tables merge commutatively and the solve is a
	// pure function — a presolved shard run is bit-identical to its slice
	// of a single-process sweep.
	Presolved *Presolved
}

// Presolved is a coupled sweep's phase-1 results computed elsewhere (see
// Coupling.Presolved).
type Presolved struct {
	// Loads is the FULL population's first-order per-cell offered-load
	// table; its cell count must match Coupling.Cells.
	Loads *spectrum.LoadTable
	// Eq is the solved equilibrium, windowed to cover at least the
	// fleet's own wearer range (spectrum.NewResult). Required in feedback
	// mode, forbidden otherwise.
	Eq *spectrum.Result
}

// model returns the effective collision model.
func (c *Coupling) model() *spectrum.Model {
	if c.Model == nil {
		return spectrum.Default()
	}
	return c.Model
}

// validate rejects degenerate couplings.
func (c *Coupling) validate() error {
	if c.Cells <= 0 {
		return fmt.Errorf("fleet: coupling needs a positive cell count, got %d", c.Cells)
	}
	if err := c.model().Validate(); err != nil {
		return err
	}
	if p := c.Presolved; p != nil {
		if p.Loads == nil {
			return fmt.Errorf("fleet: presolved coupling without a load table")
		}
		if p.Loads.Cells() != c.Cells {
			return fmt.Errorf("fleet: presolved table covers %d cells, coupling has %d", p.Loads.Cells(), c.Cells)
		}
		if (p.Eq != nil) != c.Feedback {
			return fmt.Errorf("fleet: presolved equilibrium present=%v but feedback=%v", p.Eq != nil, c.Feedback)
		}
	}
	eq := c.equilibrium()
	return eq.Validate()
}

// equilibrium is the effective fixed-point solver of a feedback coupling.
// It is returned by value — the solver is a parameter bundle, built once
// per sweep, never per wearer.
func (c *Coupling) equilibrium() spectrum.Equilibrium {
	return spectrum.Equilibrium{Model: c.Model, MaxIters: c.MaxIters, TolPPM: c.TolPPM}
}

// effIters and effTol render the solver knobs with defaults applied.
func (c *Coupling) effIters() int {
	if c.MaxIters == 0 {
		return spectrum.DefaultMaxIters
	}
	return c.MaxIters
}

func (c *Coupling) effTol() int64 {
	if c.TolPPM == 0 {
		return spectrum.DefaultTolPPM
	}
	return c.TolPPM
}

// Tag renders the coupling parameters as a stable string for telemetry
// metadata, so a resumed sweep refuses flags describing a different
// spectrum topology. A first-order coupling's tag is byte-identical to
// the pre-feedback one, so existing v1 stores resume unchanged.
func (c *Coupling) Tag() string {
	tag := fmt.Sprintf("cells=%d;%s", c.Cells, c.model().Tag())
	if c.Feedback {
		tag += fmt.Sprintf(";feedback:iters=%d,tol=%d", c.effIters(), c.effTol())
	}
	return tag
}

// cellOf is the wearer→cell assignment: a pure function of the wearer's
// scenario-stream seed, so it is identical on every rerun, resume and
// worker schedule.
func (f *Fleet) cellOf(w int) int {
	return spectrum.CellOf(desim.DeriveSeed(f.Seed, 2*uint64(w)), f.Coupling.Cells)
}

// nodeOfferedPPM is one node's first-order offered airtime —
// application rate over link goodput, in integer PPM, capped at 100%
// duty — or ok = false for nodes that radiate nothing into the shared
// band: body-channel (EQS/MQS) nodes' immunity is the model, not a
// special case downstream. Retransmission expansion is deliberately
// excluded here: offered load is first-order input traffic, and the
// feedback engine inflates it with the retry budget at equilibrium
// (spectrum.Equilibrium).
func nodeOfferedPPM(n *bannet.NodeConfig) (ppm int64, ok bool) {
	return offeredPPMWith(n, n.Radio)
}

// offeredPPMWith is nodeOfferedPPM with the effective radio made
// explicit, so the Generator's load pass can apply the BLE-fallback rule
// without materializing a perturbed NodeConfig.
func offeredPPMWith(n *bannet.NodeConfig, r *radio.Transceiver) (ppm int64, ok bool) {
	if r == nil || r.Tech != radio.TechRF || n.Sensor == nil || n.Policy == nil {
		return 0, false
	}
	if r.Goodput <= 0 {
		return 0, false
	}
	duty := float64(n.Policy.OutputRate(n.Sensor.DataRate())) / float64(r.Goodput)
	if duty > 1 {
		duty = 1
	}
	return spectrum.ToPPM(duty), true
}

// appendNodeLoads appends each radiative node's first-order offered
// load and retransmission budget to dst — the per-member input of the
// feedback fixed point.
func appendNodeLoads(dst []spectrum.NodeLoad, cfg *bannet.Config) []spectrum.NodeLoad {
	for i := range cfg.Nodes {
		if ppm, ok := nodeOfferedPPM(&cfg.Nodes[i]); ok {
			dst = append(dst, spectrum.NodeLoad{BasePPM: ppm, Retries: cfg.Nodes[i].MaxRetries})
		}
	}
	return dst
}

// offeredLoadPPM is a wearer's total first-order offered RF airtime in
// integer PPM. It sums in place — no allocation on the per-wearer hot
// paths of both engine phases.
func offeredLoadPPM(cfg *bannet.Config) int64 {
	var total int64
	for i := range cfg.Nodes {
		if ppm, ok := nodeOfferedPPM(&cfg.Nodes[i]); ok {
			total += ppm
		}
	}
	return total
}

// phase1 carries the offered-load reduction's results into phase 2: the
// first-order per-cell table always, the collision model (resolved once
// per sweep, so the default model is not re-allocated per wearer), plus
// the per-wearer equilibrium solution when the coupling closes the
// feedback loop.
type phase1 struct {
	loads *spectrum.LoadTable
	model *spectrum.Model
	eq    *spectrum.Result // nil unless Coupling.Feedback
}

// wearerLoads is the phase-1 per-wearer load pass: it reseeds the
// worker's scratch RNG to the wearer's scenario stream and appends the
// wearer's radiative node loads to dst — via the allocation-free
// LoadScenario fast path when the fleet provides one, else by generating
// the full scenario and reducing it.
func (f *Fleet) wearerLoads(w int, sc *workerScratch, dst []spectrum.NodeLoad) ([]spectrum.NodeLoad, error) {
	sc.rng.Seed(desim.DeriveSeed(f.Seed, 2*uint64(w)))
	if f.Loads != nil {
		return f.Loads(w, sc.rng, dst)
	}
	cfg, err := f.Scenario(w, sc.rng)
	if err != nil {
		return dst, err
	}
	return appendNodeLoads(dst, &cfg), nil
}

// offeredLoads is phase 1: the deterministic per-cell load reduction over
// the full population [0, Wearers) — including wearers below Start, so a
// resumed sweep sees the loads the interrupted one did. Workers
// accumulate into private tables over contiguous chunks and the integer
// merges commute, so the result is bit-identical for any worker count.
// In feedback mode the workers additionally record each wearer's
// per-node loads into a wearer-indexed slice (disjoint writes, so no
// ordering can matter) and a single-threaded fixed-point solve follows —
// equally worker-count invariant. A failing scenario surfaces as the
// lowest failing wearer index, matching the phase-2 error contract.
//
// The pass is allocation-free per wearer: each worker owns a scratch
// (pooled RNG plus a reusable load buffer) and, in feedback mode,
// appends node loads into a per-worker arena whose sub-slices the
// members keep — a grown arena strands its old backing array, but the
// values stored there are final, so stored members stay valid.
func (f *Fleet) offeredLoads(workers int) (*phase1, error) {
	if p := f.Coupling.Presolved; p != nil {
		// The distributed two-round protocol already ran phase 1; a shard
		// simulates phase 2 straight against the shipped results.
		return &phase1{loads: p.Loads, model: f.Coupling.model(), eq: p.Eq}, nil
	}
	cells := f.Coupling.Cells
	total, members, err := f.gatherLoads(0, f.Wearers, workers)
	if err != nil {
		return nil, err
	}
	p1 := &phase1{loads: total, model: f.Coupling.model()}
	if members != nil {
		solveStart := time.Now()
		eq := f.Coupling.equilibrium()
		res, err := eq.Solve(cells, members)
		if err != nil {
			return nil, fmt.Errorf("fleet: equilibrium phase: %w", err)
		}
		p1.eq = res
		if f.Stats != nil {
			f.Stats.Phase1SolveNS.Add(time.Since(solveStart).Nanoseconds())
			var iters int64
			for c := 0; c < cells; c++ {
				iters += int64(res.Iters(c))
			}
			f.Stats.EquilibriumIters.Add(iters)
			f.Stats.EquilibriumCells.Add(int64(cells))
		}
	}
	return p1, nil
}

// GatherLoads runs only the phase-1 gather, and only over the fleet's own
// wearer range [Start, End): the shard half of the distributed two-round
// protocol. It returns the range's partial per-cell load table and, in
// feedback mode, its members indexed w − Start (nil otherwise). Because
// the per-wearer loads are pure functions of absolute wearer indices and
// the table sums are commutative integers, merging every shard's partial
// table — and concatenating the member windows in range order —
// reproduces the full-population gather bit-exactly.
func (f *Fleet) GatherLoads() (*spectrum.LoadTable, []spectrum.Member, error) {
	if f.Coupling == nil {
		return nil, nil, fmt.Errorf("fleet: GatherLoads on an uncoupled fleet")
	}
	if err := f.Coupling.validate(); err != nil {
		return nil, nil, err
	}
	if f.Wearers <= 0 {
		return nil, nil, fmt.Errorf("fleet: non-positive population %d", f.Wearers)
	}
	if f.Scenario == nil && f.Loads == nil {
		return nil, nil, fmt.Errorf("fleet: nil scenario")
	}
	if f.End < 0 || f.End > f.Wearers {
		return nil, nil, fmt.Errorf("fleet: end index %d outside population [0, %d]", f.End, f.Wearers)
	}
	end := f.end()
	if f.Start < 0 || f.Start > end {
		return nil, nil, fmt.Errorf("fleet: start index %d outside range [0, %d]", f.Start, end)
	}
	return f.gatherLoads(f.Start, end, f.effectiveWorkers())
}

// gatherLoads is the parallel offered-load gather over wearers [lo, hi):
// a partial per-cell table plus, in feedback mode, the range's members
// indexed w − lo. Workers accumulate into private tables over contiguous
// chunks and the integer merges commute, so the result is bit-identical
// for any worker count; a failing scenario surfaces as the lowest failing
// wearer index, matching the phase-2 error contract.
func (f *Fleet) gatherLoads(lo, hi, workers int) (*spectrum.LoadTable, []spectrum.Member, error) {
	gatherStart := time.Now()
	cells := f.Coupling.Cells
	total, err := spectrum.NewLoadTable(cells)
	if err != nil {
		return nil, nil, err
	}
	var members []spectrum.Member
	if f.Coupling.Feedback {
		members = make([]spectrum.Member, hi-lo)
	}
	const chunk = 256
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		failIdx = -1
		failErr error
	)
	next.Store(int64(lo))
	if workers > hi-lo {
		workers = hi - lo
	}
	if workers < 1 {
		workers = 1
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newWorkerScratch()
			var arena []spectrum.NodeLoad // feedback mode: member loads, append-only
			local, _ := spectrum.NewLoadTable(cells)
			localFail, localErr := -1, error(nil)
			for {
				c0 := int(next.Add(chunk) - chunk)
				if c0 >= hi {
					break
				}
				c1 := c0 + chunk
				if c1 > hi {
					c1 = hi
				}
				for w := c0; w < c1; w++ {
					cell := f.cellOf(w)
					var own int64
					if members != nil {
						start := len(arena)
						var err error
						if arena, err = f.wearerLoads(w, sc, arena); err != nil {
							if localFail == -1 || w < localFail {
								localFail, localErr = w, err
							}
							arena = arena[:start]
							continue
						}
						m := spectrum.Member{Cell: cell, Nodes: arena[start:len(arena):len(arena)]}
						for _, nl := range m.Nodes {
							own += nl.BasePPM
						}
						members[w-lo] = m
					} else {
						var err error
						if sc.loads, err = f.wearerLoads(w, sc, sc.loads[:0]); err != nil {
							if localFail == -1 || w < localFail {
								localFail, localErr = w, err
							}
							continue
						}
						for _, nl := range sc.loads {
							own += nl.BasePPM
						}
					}
					if err := local.Add(cell, own); err != nil {
						if localFail == -1 || w < localFail {
							localFail, localErr = w, err
						}
					}
				}
			}
			mu.Lock()
			if err := total.Merge(local); err != nil && localFail == -1 {
				localFail, localErr = 0, err // table-shape bug: lowest possible index
			}
			if localFail != -1 && (failIdx == -1 || localFail < failIdx) {
				failIdx, failErr = localFail, localErr
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if failIdx != -1 {
		return nil, nil, fmt.Errorf("fleet: offered-load phase: wearer %d: %w", failIdx, failErr)
	}
	if f.Stats != nil {
		f.Stats.Phase1GatherNS.Add(time.Since(gatherStart).Nanoseconds())
	}
	return total, members, nil
}

// applyInterference stamps the cell's collision probability onto the
// config's RF nodes (copying the node slice into the worker's scratch
// buffer first: the scenario may hand out shared backing arrays, and the
// kernel copies node configs out before the buffer's next reuse) and
// returns the wearer's spectrum placement for telemetry: its cell,
// first-order foreign load, and — in feedback mode — the equilibrium
// foreign load the collision probability actually came from plus the
// cell's fixed-point round count.
func (f *Fleet) applyInterference(w int, cfg *bannet.Config, p1 *phase1, sc *workerScratch) (cell int, foreignPPM, eqForeignPPM int64, iters int) {
	cell = f.cellOf(w)
	foreignPPM = p1.loads.ForeignPPM(cell, offeredLoadPPM(cfg))
	effPPM := foreignPPM
	if p1.eq != nil {
		eqForeignPPM = p1.eq.ForeignPPM(w, cell)
		iters = p1.eq.Iters(cell)
		effPPM = eqForeignPPM
	}
	p := p1.model.CollisionProb(spectrum.Erlangs(effPPM))
	if p > 0 {
		sc.nodes = append(sc.nodes[:0], cfg.Nodes...)
		cfg.Nodes = sc.nodes
		for i := range cfg.Nodes {
			if r := cfg.Nodes[i].Radio; r != nil && r.Tech == radio.TechRF {
				cfg.Nodes[i].CollisionPER = p
			}
		}
	}
	return cell, foreignPPM, eqForeignPPM, iters
}

// effectiveWorkers mirrors the phase-2 worker sizing for phase 1.
func (f *Fleet) effectiveWorkers() int {
	if f.Workers > 0 {
		return f.Workers
	}
	return runtime.NumCPU()
}
