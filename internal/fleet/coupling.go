package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"wiban/internal/bannet"
	"wiban/internal/desim"
	"wiban/internal/radio"
	"wiban/internal/spectrum"
)

// Coupling switches the engine to its two-phase spectrum-coupled mode:
// wearers stop being independent and instead contend for shared RF
// spectrum inside spatial cells (see wiban/internal/spectrum).
//
// Phase 1 computes every cell's offered RF load from the scenarios alone:
// each wearer's cell is a pure function of its scenario seed
// (spectrum.CellOf) and its offered load an integer-PPM function of its
// generated config, so the per-cell sums are an exact, order-independent
// reduction — any worker count produces bit-identical loads. Phase 2 then
// runs the ordinary per-wearer kernels with each RF node's CollisionPER
// set from its cell's foreign load; EQS/MQS body-channel nodes are left
// untouched, reproducing the paper's density contrast. Because both
// phases are pure functions of (fleetSeed, population), the engine's
// determinism, parallelism-invariance and resume contracts carry over
// unchanged: a resumed sweep recomputes phase 1 over the full population
// [0, Wearers) regardless of Start and lands on the same loads.
type Coupling struct {
	// Cells is the spatial cell count wearers hash into (> 0). More
	// wearers per cell means more co-channel contention; Wearers/Cells is
	// the sweep's density axis.
	Cells int
	// Model maps a cell's foreign offered load to a collision
	// probability. Nil means spectrum.Default().
	Model *spectrum.Model
}

// model returns the effective collision model.
func (c *Coupling) model() *spectrum.Model {
	if c.Model == nil {
		return spectrum.Default()
	}
	return c.Model
}

// validate rejects degenerate couplings.
func (c *Coupling) validate() error {
	if c.Cells <= 0 {
		return fmt.Errorf("fleet: coupling needs a positive cell count, got %d", c.Cells)
	}
	return c.model().Validate()
}

// Tag renders the coupling parameters as a stable string for telemetry
// metadata, so a resumed sweep refuses flags describing a different
// spectrum topology.
func (c *Coupling) Tag() string {
	return fmt.Sprintf("cells=%d;%s", c.Cells, c.model().Tag())
}

// cellOf is the wearer→cell assignment: a pure function of the wearer's
// scenario-stream seed, so it is identical on every rerun, resume and
// worker schedule.
func (f *Fleet) cellOf(w int) int {
	return spectrum.CellOf(desim.DeriveSeed(f.Seed, 2*uint64(w)), f.Coupling.Cells)
}

// offeredLoadPPM is a wearer's offered RF airtime in integer PPM: the
// sum over its radiative (TechRF) nodes of application rate over link
// goodput. Body-channel (EQS/MQS) nodes radiate nothing into the shared
// band and contribute zero — their immunity is the model, not a special
// case downstream. Retransmission expansion is deliberately excluded:
// offered load is first-order input traffic, and closing the
// collision→retry→load feedback loop is a fixed-point refinement left
// for a future PR.
func offeredLoadPPM(cfg *bannet.Config) int64 {
	var ppm int64
	for i := range cfg.Nodes {
		n := &cfg.Nodes[i]
		if n.Radio == nil || n.Radio.Tech != radio.TechRF || n.Sensor == nil || n.Policy == nil {
			continue
		}
		if n.Radio.Goodput <= 0 {
			continue
		}
		duty := float64(n.Policy.OutputRate(n.Sensor.DataRate())) / float64(n.Radio.Goodput)
		if duty > 1 {
			duty = 1
		}
		ppm += spectrum.ToPPM(duty)
	}
	return ppm
}

// offeredLoads is phase 1: the deterministic per-cell load reduction over
// the full population [0, Wearers) — including wearers below Start, so a
// resumed sweep sees the loads the interrupted one did. Workers
// accumulate into private tables over contiguous chunks and the integer
// merges commute, so the result is bit-identical for any worker count.
// A failing scenario surfaces as the lowest failing wearer index,
// matching the phase-2 error contract.
func (f *Fleet) offeredLoads(workers int) (*spectrum.LoadTable, error) {
	cells := f.Coupling.Cells
	total, err := spectrum.NewLoadTable(cells)
	if err != nil {
		return nil, err
	}
	const chunk = 256
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		failIdx = -1
		failErr error
	)
	if workers > f.Wearers {
		workers = f.Wearers
	}
	if workers < 1 {
		workers = 1
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local, _ := spectrum.NewLoadTable(cells)
			localFail, localErr := -1, error(nil)
			for {
				lo := int(next.Add(chunk) - chunk)
				if lo >= f.Wearers {
					break
				}
				hi := lo + chunk
				if hi > f.Wearers {
					hi = f.Wearers
				}
				for w := lo; w < hi; w++ {
					rng := rand.New(rand.NewSource(desim.DeriveSeed(f.Seed, 2*uint64(w))))
					cfg, err := f.Scenario(w, rng)
					if err != nil {
						if localFail == -1 || w < localFail {
							localFail, localErr = w, err
						}
						continue
					}
					if err := local.Add(f.cellOf(w), offeredLoadPPM(&cfg)); err != nil {
						if localFail == -1 || w < localFail {
							localFail, localErr = w, err
						}
					}
				}
			}
			mu.Lock()
			if err := total.Merge(local); err != nil && localFail == -1 {
				localFail, localErr = 0, err // table-shape bug: lowest possible index
			}
			if localFail != -1 && (failIdx == -1 || localFail < failIdx) {
				failIdx, failErr = localFail, localErr
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if failIdx != -1 {
		return nil, fmt.Errorf("fleet: offered-load phase: wearer %d: %w", failIdx, failErr)
	}
	return total, nil
}

// applyInterference stamps the cell's collision probability onto the
// config's RF nodes (copying the node slice first: the scenario may hand
// out shared backing arrays) and returns the wearer's cell and foreign
// load for telemetry.
func (f *Fleet) applyInterference(w int, cfg *bannet.Config, loads *spectrum.LoadTable) (cell int, foreignPPM int64) {
	cell = f.cellOf(w)
	foreignPPM = loads.ForeignPPM(cell, offeredLoadPPM(cfg))
	p := f.Coupling.model().CollisionProb(spectrum.Erlangs(foreignPPM))
	if p > 0 {
		nodes := make([]bannet.NodeConfig, len(cfg.Nodes))
		copy(nodes, cfg.Nodes)
		cfg.Nodes = nodes
		for i := range cfg.Nodes {
			if r := cfg.Nodes[i].Radio; r != nil && r.Tech == radio.TechRF {
				cfg.Nodes[i].CollisionPER = p
			}
		}
	}
	return cell, foreignPPM
}

// effectiveWorkers mirrors the phase-2 worker sizing for phase 1.
func (f *Fleet) effectiveWorkers() int {
	if f.Workers > 0 {
		return f.Workers
	}
	return runtime.NumCPU()
}
