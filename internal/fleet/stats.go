package fleet

import "sync/atomic"

// Stats is an optional live instrumentation hook: attach one to
// Fleet.Stats and the engine updates its counters with atomic operations
// on the existing zero-allocation hot path — no locks, no allocations,
// no change to any simulated outcome (fingerprints are pinned identical
// with Stats on or off by TestStatsInert). A metrics exporter (the
// iobfleetd daemon's /metrics endpoint) reads the counters concurrently
// while a sweep is in flight; rates like wearers/s and events/s fall out
// of scraping the monotone totals.
//
// One Stats may be shared by several concurrent Fleet runs — every
// update is an atomic add, so shared counters accumulate fleet-wide
// totals and WindowDepth sums the live reorder-window occupancy across
// sweeps. Counters are never reset by the engine; they are
// process-lifetime monotone (the Prometheus counter contract), except
// WindowDepth which is a gauge returning to its pre-sweep value when a
// sweep finishes.
type Stats struct {
	// Wearers counts completed wearer simulations, incremented as each
	// report is emitted to the sink in wearer-index order.
	Wearers atomic.Int64
	// Events counts discrete kernel events across completed wearers.
	Events atomic.Uint64
	// Phase1GatherNS accumulates wall-clock nanoseconds spent in the
	// coupled engine's phase-1 offered-load gather (the parallel
	// per-wearer load reduction), per sweep.
	Phase1GatherNS atomic.Int64
	// Phase1SolveNS accumulates wall-clock nanoseconds spent in the
	// equilibrium fixed-point solve (zero for first-order couplings).
	Phase1SolveNS atomic.Int64
	// EquilibriumIters counts fixed-point rounds summed over all cells of
	// every feedback solve.
	EquilibriumIters atomic.Int64
	// EquilibriumCells counts cells solved across feedback sweeps (the
	// divisor turning EquilibriumIters into a mean rounds-per-cell).
	EquilibriumCells atomic.Int64
	// WindowDepth is the current reorder-window occupancy: completed
	// wearer reports held for in-order emission, summed across running
	// sweeps. It is a gauge — incremented when a report parks in the
	// window, decremented when the in-order consumer emits it.
	WindowDepth atomic.Int64
}

// wearerDone records one emitted wearer report; nil-safe so the engine
// can call it unconditionally.
func (s *Stats) wearerDone(events uint64) {
	if s == nil {
		return
	}
	s.Wearers.Add(1)
	s.Events.Add(events)
}

// windowAdd moves the reorder-window gauge; nil-safe.
func (s *Stats) windowAdd(delta int64) {
	if s == nil {
		return
	}
	s.WindowDepth.Add(delta)
}
