// Package fleet is the population-scale simulation engine: it runs N
// body-area-network simulations (one simulated wearer each) in parallel
// across a worker pool and merges the per-wearer reports into fleet-level
// statistics. Wearers are fully independent by default; with a Coupling
// they contend for shared RF spectrum through the two-phase engine below.
//
// # Two-phase spectrum coupling
//
// A Coupling makes the sweep density-aware without surrendering any
// determinism contract. Phase 1 computes each spatial cell's offered RF
// load from the scenarios alone: cell assignment is a pure function of
// the wearer's scenario seed and loads accumulate in exact integer PPM
// (wiban/internal/spectrum), so the reduction is order-independent and
// bit-identical for any worker count. Phase 2 is the ordinary per-wearer
// worker pool, with each RF node's CollisionPER stamped from its cell's
// foreign load before the kernel runs; EQS/MQS nodes are untouched.
// Resume recomputes phase 1 over the full population regardless of
// Start, so a resumed coupled sweep reproduces the interrupted one
// exactly (the telemetry store's v1 format persists each wearer's cell
// and foreign load for replay). With Coupling.Feedback phase 1
// additionally solves each cell's collision→retry→offered-load fixed
// point (spectrum.Equilibrium) — a pure single-threaded function of the
// gathered loads, so every contract above carries over and the v2
// telemetry format persists the equilibrium columns.
//
// # Determinism and the seed-derivation contract
//
// A fleet run is reproducible from a single fleet seed, independent of the
// worker count. Each wearer w gets two decorrelated child seeds via
// splitmix64 (desim.DeriveSeed):
//
//	scenario seed   = desim.DeriveSeed(fleetSeed, 2*w)     — drives the
//	    scenario generator's perturbations (PER spread, battery spread,
//	    harvester assignment, node mix, radio choice);
//	simulation seed = desim.DeriveSeed(fleetSeed, 2*w+1)   — overrides
//	    Config.Seed and drives the discrete-event kernel's randomness.
//
// Each wearer runs on its own desim kernel with its own RNG, so runs
// share no mutable state and the schedule of workers cannot influence any
// outcome. Completed reports are handed to the run's Sink in wearer-index
// order through a bounded reorder window, so floating-point accumulation
// order is fixed too. The invariant — same fleet seed ⇒ byte-identical
// aggregate report for any worker count — is pinned by the
// parallelism-invariance tests and must be preserved by future changes;
// in particular the stream-index assignment above is part of the replay
// contract and must never be renumbered.
//
// # Streaming aggregation and memory
//
// The default path (Run, Stream) never holds more than the reorder
// window (a small multiple of the worker count) of per-wearer reports:
// each report is flattened to a telemetry.Record, folded into the
// StreamAggregator and/or appended to a telemetry store, then dropped —
// a million-wearer sweep aggregates in O(workers) memory. The batch
// path that materializes every report for exact percentiles is the
// opt-in RunReports. Setting Start resumes an interrupted sweep: wearers
// below Start are skipped (their records replay from the telemetry
// store via Replay), and because per-wearer seeds derive from absolute
// wearer indices the resumed sweep is bit-identical to an uninterrupted
// one.
//
// # Zero-allocation steady state
//
// The per-wearer hot path allocates nothing once warm. Each worker owns
// a scratch — a pooled rand.Rand reseeded per wearer (bit-identical
// stream to a fresh one), a long-lived bannet.Sim kernel arena recycled
// with Reset/RunInto, and a node buffer interference stamping copies
// into — and the reorder window circulates a fixed pool of output
// buffers between workers and the in-order consumer. Sinks receive
// records on a borrow-until-return contract (see Sink), so one record
// buffer serves the whole sweep. The coupled engine's phase 1 runs the
// same scratch through a load pass (Fleet.Loads, Generator.LoadScenario)
// instead of regenerating full scenarios. What remains is scenario
// generation itself — a node slice and battery clones per wearer,
// pinned by TestFleetSteadyStateAllocBudget — plus O(workers) per-sweep
// setup; allocation budgets are recorded in BENCH_fleet.json and
// enforced by CI's allocation-budget gate. None of this moves a byte of
// output: seeding and emit order are unchanged, and
// TestFreshKernelsMatchesReuse pins the recycled engine to the
// rebuild-everything formulation.
package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wiban/internal/bannet"
	"wiban/internal/desim"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// Scenario produces the simulation configuration for one wearer. The rng
// is private to the wearer and deterministically seeded from the fleet
// seed; all perturbation randomness must come from it. Config.Seed is
// overwritten by the engine with the wearer's simulation seed, so a
// Scenario need not set it. Scenarios are called concurrently from worker
// goroutines and must not mutate shared state. The engine consumes the
// returned config — including cfg.Nodes — before the same worker's next
// call, and never mutates it in place (interference stamping copies the
// node slice first), so a scenario may hand out slices backed by shared
// read-only storage.
type Scenario func(wearer int, rng *rand.Rand) (bannet.Config, error)

// LoadScenario is the coupled engine's optional phase-1 fast path: it
// appends the wearer's radiative node loads (first-order offered airtime
// plus retry budget, see spectrum.NodeLoad) to dst and returns the
// extended slice, without building the full bannet.Config. It must be
// behaviorally identical to the fleet's Scenario — same RNG consumption,
// same surviving nodes, same effective radios — or phase 1 and phase 2
// would silently explore different populations; Generator.LoadScenario
// derives both from one draw block, and the equivalence is pinned by
// test. A LoadScenario is called concurrently from worker goroutines and
// must not mutate shared state.
type LoadScenario func(wearer int, rng *rand.Rand, dst []spectrum.NodeLoad) ([]spectrum.NodeLoad, error)

// Fleet describes a population sweep.
type Fleet struct {
	// Wearers is the population size (one independent simulation each).
	Wearers int
	// Seed is the fleet seed every per-wearer seed derives from.
	Seed int64
	// Scenario builds each wearer's network.
	Scenario Scenario
	// Span is the simulated span per wearer.
	Span units.Duration
	// Workers bounds parallelism; <= 0 means runtime.NumCPU().
	Workers int
	// Start is the first wearer to simulate (wearers [Start, End) run,
	// where End 0 means Wearers). Non-zero when resuming an interrupted
	// sweep whose earlier records replay from a telemetry store, or when
	// running a shard of a distributed sweep; seeds still derive from
	// absolute wearer indices, so a resumed or sharded sweep reproduces
	// the corresponding slice of an uninterrupted full run exactly.
	Start int
	// End is the exclusive upper bound of the wearer range; 0 means
	// Wearers. A shard of a distributed sweep sets Start/End to its
	// contiguous sub-range — everything else (seeding, emit order, the
	// coupled engine) is unchanged, which is what keeps shard boundaries
	// invisible in the merged output.
	End int
	// Coupling, when non-nil, runs the two-phase spectrum-coupled
	// engine: wearers share RF spectrum inside spatial cells and each RF
	// node's loss is inflated by its cell's offered load (see Coupling).
	// Nil preserves the original fully-independent sweep.
	Coupling *Coupling
	// Loads, when non-nil, replaces full scenario generation in the
	// coupled engine's phase 1 with an allocation-free load pass (see
	// LoadScenario). Optional: phase 1 falls back to Scenario when nil.
	// It MUST be load-equivalent to Scenario; the engine trusts it.
	Loads LoadScenario
	// Series, when positive, samples every node's in-run state (battery
	// charge, queue depth, per-window link PER and collision rate) at
	// this cadence and attaches the samples to each wearer's telemetry
	// record (Record.Series). Sampling rides the kernel's existing
	// superframe tick — no extra events, no RNG draws — so enabling it
	// changes nothing about the simulated outcomes: Report fields and
	// fleet fingerprints are identical with Series on or off. Zero (the
	// default) disables sampling. Sinks persisting series need a
	// telemetry store with Meta.Series() enabled (format v3).
	Series units.Duration

	// Stats, when non-nil, receives live atomic instrumentation updates
	// from the hot path: completed wearers, kernel events, phase-1
	// gather/solve time, equilibrium iterations and the reorder-window
	// depth (see Stats). Nil costs nothing; non-nil costs a few atomic
	// adds per wearer and changes no simulated outcome.
	Stats *Stats

	// freshKernels disables the per-worker kernel arena, rebuilding a
	// Sim (and a scenario RNG) for every wearer the way the engine did
	// before kernels became reusable. It exists solely so the
	// BenchmarkFleetFresh/BenchmarkFleetReuse pair can record the arena
	// win as a first-class number; results are bit-identical either way.
	freshKernels bool
}

// Perf captures wall-clock throughput of a fleet run. It is reported
// separately from the aggregate Report because elapsed time varies run to
// run while the Report is bit-reproducible.
type Perf struct {
	Workers      int
	Elapsed      time.Duration
	RunsPerSec   float64
	EventsPerSec float64
	// MaxPending is the peak occupancy of the reorder window — the most
	// completed-but-not-yet-consumed reports held at once. It is bounded
	// by the window size (a small multiple of Workers), never by fleet
	// size; the streaming-memory tests assert exactly that.
	MaxPending int
	// Phase1 is the wall-clock cost of the offered-load reduction of a
	// spectrum-coupled sweep (zero when uncoupled). It is included in
	// Elapsed; the two-phase overhead budget in BENCH_fleet.json tracks
	// it staying a small fraction of the simulation phase.
	Phase1 time.Duration
}

func (p Perf) String() string {
	s := fmt.Sprintf("%d workers, %v elapsed, %.1f runs/s, %.3g events/s, window peak %d",
		p.Workers, p.Elapsed.Round(time.Millisecond), p.RunsPerSec, p.EventsPerSec, p.MaxPending)
	if p.Phase1 > 0 {
		s += fmt.Sprintf(", load phase %v", p.Phase1.Round(time.Millisecond))
	}
	return s
}

// Run executes the sweep through the default bounded-memory path: each
// completed report streams into a StreamAggregator and is dropped, so
// memory is O(workers) regardless of population. It returns the
// deterministic aggregate report plus wall-clock performance counters.
// If any wearer's scenario or simulation fails, Run reports the failure
// at the lowest wearer index (independent of worker scheduling) and no
// report. For exact (non-histogram) percentiles over every per-wearer
// report, use the opt-in RunReports.
func (f *Fleet) Run() (*Report, Perf, error) {
	agg := NewStreamAggregator(f.Span)
	perf, err := f.Stream(agg)
	if err != nil {
		return nil, Perf{}, err
	}
	return agg.Report(), perf, nil
}

// RunReports is the opt-in full-report path: it materializes every
// per-wearer report (O(fleet) memory) and aggregates them with the exact
// sorted-sample percentiles of Aggregate. The materialized reports carry
// no Schedule — the schedule is per-kernel arena state (see
// bannet.Sim.Schedule). Resume (Start > 0) is not supported here —
// partial sweeps only make sense streamed.
func (f *Fleet) RunReports() ([]*bannet.Report, *Report, Perf, error) {
	if f.Start != 0 || f.End != 0 {
		return nil, nil, Perf{}, fmt.Errorf("fleet: RunReports does not support a sub-range [%d,%d); stream it instead", f.Start, f.End)
	}
	if f.Wearers <= 0 {
		return nil, nil, Perf{}, fmt.Errorf("fleet: non-positive population %d", f.Wearers)
	}
	reports := make([]*bannet.Report, 0, f.Wearers)
	perf, err := f.stream(func(w int, out *wearerOut) error {
		// The emit callback borrows out until it returns (the buffer goes
		// back to the window pool), so materializing means copying.
		rep := out.rep
		rep.Nodes = append([]bannet.NodeStats(nil), out.rep.Nodes...)
		rep.Schedule = nil
		reports = append(reports, &rep)
		return nil
	})
	if err != nil {
		return nil, nil, Perf{}, err
	}
	return reports, Aggregate(f.Span, reports), perf, nil
}

// Stream executes wearers [Start, End) and feeds each one's
// telemetry record to sink in strict wearer-index order. Tee the
// telemetry store's Writer with a StreamAggregator to persist and
// aggregate in one pass. A sink error aborts the sweep (records already
// consumed form a valid committed prefix).
//
// Records are borrowed: the engine reuses one record buffer (including
// its Nodes slice) across Consume calls, so a sink must copy whatever it
// keeps past the call — see the Sink contract.
func (f *Fleet) Stream(sink Sink) (Perf, error) {
	var rec telemetry.Record
	return f.stream(func(w int, out *wearerOut) error {
		recordInto(&rec, w, &out.rep)
		rec.Cell = out.cell
		rec.ForeignLoadPPM = out.foreignPPM
		rec.EqForeignLoadPPM = out.eqForeignPPM
		rec.FeedbackIters = out.iters
		rec.Series = out.series
		return sink.Consume(rec)
	})
}

// end is the exclusive upper bound of the fleet's wearer range: End,
// with 0 meaning the whole population.
func (f *Fleet) end() int {
	if f.End > 0 {
		return f.End
	}
	return f.Wearers
}

// wearerOut is one completed wearer simulation plus its spectrum
// placement (cell −1 / load 0 on uncoupled sweeps; the equilibrium
// fields stay 0 unless the coupling closes the feedback loop). The
// structs are pooled: the engine circulates exactly `window` of them
// between workers and the in-order consumer, so the per-wearer report
// storage is reused instead of reallocated — the pool doubles as the
// reorder window's backpressure tokens.
type wearerOut struct {
	rep          bannet.Report
	cell         int
	foreignPPM   int64
	eqForeignPPM int64
	iters        int
	// series holds the wearer's sampled time series when Fleet.Series is
	// set; like rep.Nodes it is pooled storage, truncated and refilled
	// each time the buffer carries a new wearer.
	series []telemetry.SeriesPoint
}

// workerScratch is one worker goroutine's private reusable state: the
// per-wearer scenario RNG (reseeded instead of reallocated — a fresh
// rand.Rand is a ~5 KB table), the long-lived simulation kernel arena,
// and the node-slice buffer interference stamping copies into. Nothing
// in it survives a wearer except capacity.
type workerScratch struct {
	rng   *rand.Rand
	sim   *bannet.Sim
	nodes []bannet.NodeConfig
	loads []spectrum.NodeLoad
	// out is the output buffer of the wearer currently running; sink (one
	// closure per worker, so the per-wearer hot path allocates none)
	// converts the kernel's borrowed sample batches into telemetry points
	// appended to out.series.
	out  *wearerOut
	sink bannet.SeriesSink
}

func newWorkerScratch() *workerScratch {
	sc := &workerScratch{rng: rand.New(rand.NewSource(0))}
	sc.sink = func(samples []bannet.SeriesSample) {
		for i := range samples {
			s := &samples[i]
			sc.out.series = append(sc.out.series, telemetry.SeriesPoint{
				Node:          s.Node,
				TimeMS:        s.TimeMS,
				Charge:        s.Charge,
				QueueDepth:    s.QueueDepth,
				LinkPER:       s.LinkPER,
				CollisionRate: s.CollisionRate,
			})
		}
	}
	return sc
}

// stream is the engine. In coupled mode it first runs phase 1 — the
// deterministic per-cell offered-load reduction over the whole population
// — then phase 2 below; uncoupled sweeps skip straight to phase 2.
// Phase 2 is a worker pool over wearer indices with a bounded reorder
// window. Workers acquire a pooled output buffer (the window slot) before
// taking an index, and buffers recirculate only when the in-order
// consumer emits the report, so at most `window` completed reports exist
// at any instant — backpressure, not buffering, absorbs stragglers — and
// the same `window` buffers carry every report of the sweep. The emit
// callback borrows its wearerOut until it returns.
func (f *Fleet) stream(emit func(w int, out *wearerOut) error) (Perf, error) {
	if f.Wearers <= 0 {
		return Perf{}, fmt.Errorf("fleet: non-positive population %d", f.Wearers)
	}
	if f.Scenario == nil {
		return Perf{}, fmt.Errorf("fleet: nil scenario")
	}
	if f.Span <= 0 {
		return Perf{}, fmt.Errorf("fleet: non-positive span")
	}
	if f.End < 0 || f.End > f.Wearers {
		return Perf{}, fmt.Errorf("fleet: end index %d outside population [0, %d]", f.End, f.Wearers)
	}
	end := f.end()
	if f.Start < 0 || f.Start > end {
		return Perf{}, fmt.Errorf("fleet: start index %d outside range [0, %d]", f.Start, end)
	}
	if f.Coupling != nil {
		if err := f.Coupling.validate(); err != nil {
			return Perf{}, err
		}
	}
	count := end - f.Start
	if count == 0 {
		// Nothing to simulate (a resume of a complete sweep): skip the
		// load phase too — interference only matters to running kernels.
		return Perf{}, nil
	}
	start := time.Now()
	var loads *phase1
	var phase1Cost time.Duration
	if f.Coupling != nil {
		var err error
		if loads, err = f.offeredLoads(f.effectiveWorkers()); err != nil {
			return Perf{}, err
		}
		phase1Cost = time.Since(start)
	}
	workers := f.effectiveWorkers()
	if workers > count {
		workers = count
	}
	window := 4 * workers

	var (
		bufs = make(chan *wearerOut, window)
		done = make(chan struct{})
		next atomic.Int64
		wg   sync.WaitGroup

		mu         sync.Mutex
		pending    = make(map[int]*wearerOut, window)
		nextEmit   = f.Start
		maxPending int
		events     uint64
		failIdx    = -1
		failErr    error
	)
	for k := 0; k < window; k++ {
		bufs <- &wearerOut{}
	}
	next.Store(int64(f.Start))
	// fail records the lowest-index failure and halts dispatch. The
	// lowest recorded index is scheduling-independent: indices are
	// dispatched in order, and every index below the first failure was
	// dispatched — and runs to completion — before workers observe done.
	fail := func(i int, err error) {
		mu.Lock()
		if failIdx == -1 || i < failIdx {
			failIdx, failErr = i, err
		}
		select {
		case <-done:
		default:
			close(done) // under mu, so exactly one closer
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newWorkerScratch()
			for {
				var out *wearerOut
				select {
				case out = <-bufs:
				case <-done:
					return
				}
				i := int(next.Add(1) - 1)
				if i >= end {
					bufs <- out // hand the buffer back: nothing will be emitted for it
					return
				}
				if err := f.runWearer(i, loads, scratch, out); err != nil {
					fail(i, fmt.Errorf("fleet: wearer %d: %w", i, err))
					return
				}
				mu.Lock()
				pending[i] = out
				f.Stats.windowAdd(1)
				if len(pending) > maxPending {
					maxPending = len(pending)
				}
				for {
					r, ok := pending[nextEmit]
					if !ok {
						break
					}
					delete(pending, nextEmit)
					f.Stats.windowAdd(-1)
					if err := emit(nextEmit, r); err != nil {
						idx := nextEmit
						mu.Unlock()
						fail(idx, fmt.Errorf("fleet: sink at wearer %d: %w", idx, err))
						return
					}
					events += r.rep.Events
					f.Stats.wearerDone(r.rep.Events)
					nextEmit++
					bufs <- r // the emitted report's buffer frees a waiting worker
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// A failed or aborted sweep strands its parked reports: release them
	// from the gauge so WindowDepth returns to its pre-sweep value.
	f.Stats.windowAdd(-int64(len(pending)))

	if failIdx != -1 {
		return Perf{}, failErr
	}
	perf := Perf{Workers: workers, Elapsed: elapsed, MaxPending: maxPending, Phase1: phase1Cost}
	if s := elapsed.Seconds(); s > 0 {
		perf.RunsPerSec = float64(count) / s
		perf.EventsPerSec = float64(events) / s
	}
	return perf, nil
}

// runWearer builds and runs one wearer's simulation shard into the
// pooled output buffer. In coupled mode (loads non-nil) the scenario's
// RF nodes first get their cell's collision probability stamped on; the
// scenario's own RNG discipline is untouched, so a coupled and an
// uncoupled sweep of the same fleet seed explore the identical
// population and differ only in interference.
//
// The hot path is allocation-free in steady state: the scratch RNG is
// reseeded (identical stream to a freshly constructed one), the
// interference stamp reuses the scratch node buffer, and the kernel
// arena is Reset instead of rebuilt. Seeding is unchanged from the
// fresh-everything formulation, so fingerprints are bit-identical.
func (f *Fleet) runWearer(w int, loads *phase1, sc *workerScratch, out *wearerOut) error {
	rng := sc.rng
	if f.freshKernels {
		rng = rand.New(rand.NewSource(desim.DeriveSeed(f.Seed, 2*uint64(w))))
	} else {
		rng.Seed(desim.DeriveSeed(f.Seed, 2*uint64(w)))
	}
	cfg, err := f.Scenario(w, rng)
	if err != nil {
		return err
	}
	out.cell, out.foreignPPM, out.eqForeignPPM, out.iters = -1, 0, 0, 0
	if loads != nil {
		out.cell, out.foreignPPM, out.eqForeignPPM, out.iters = f.applyInterference(w, &cfg, loads, sc)
	}
	cfg.Seed = desim.DeriveSeed(f.Seed, 2*uint64(w)+1)
	out.series = out.series[:0]
	sc.out = out
	if f.freshKernels {
		sim, err := bannet.NewSim(cfg)
		if err != nil {
			return err
		}
		if f.Series > 0 {
			sim.SetSeries(f.Series, sc.sink)
		}
		rep, err := sim.Run(f.Span)
		if err != nil {
			return err
		}
		out.rep = *rep
		out.rep.Schedule = nil // pool buffers must not pin kernel arenas
		return nil
	}
	if sc.sim == nil {
		if sc.sim, err = bannet.NewSim(cfg); err != nil {
			return err
		}
	} else if err = sc.sim.Reset(cfg); err != nil {
		return err
	}
	if f.Series > 0 {
		sc.sim.SetSeries(f.Series, sc.sink)
	}
	return sc.sim.RunInto(f.Span, &out.rep)
}
