// Package fleet is the population-scale simulation engine: it runs N
// independent body-area-network simulations (one simulated wearer each) in
// parallel across a worker pool and merges the per-wearer reports into
// fleet-level statistics.
//
// # Determinism and the seed-derivation contract
//
// A fleet run is reproducible from a single fleet seed, independent of the
// worker count. Each wearer w gets two decorrelated child seeds via
// splitmix64 (desim.DeriveSeed):
//
//	scenario seed   = desim.DeriveSeed(fleetSeed, 2*w)     — drives the
//	    scenario generator's perturbations (PER spread, battery spread,
//	    harvester assignment, node mix, radio choice);
//	simulation seed = desim.DeriveSeed(fleetSeed, 2*w+1)   — overrides
//	    Config.Seed and drives the discrete-event kernel's randomness.
//
// Each wearer runs on its own desim kernel with its own RNG, so runs
// share no mutable state and the schedule of workers cannot influence any
// outcome. Completed reports are handed to the run's Sink in wearer-index
// order through a bounded reorder window, so floating-point accumulation
// order is fixed too. The invariant — same fleet seed ⇒ byte-identical
// aggregate report for any worker count — is pinned by the
// parallelism-invariance tests and must be preserved by future changes;
// in particular the stream-index assignment above is part of the replay
// contract and must never be renumbered.
//
// # Streaming aggregation and memory
//
// The default path (Run, Stream) never holds more than the reorder
// window (a small multiple of the worker count) of per-wearer reports:
// each report is flattened to a telemetry.Record, folded into the
// StreamAggregator and/or appended to a telemetry store, then dropped —
// a million-wearer sweep aggregates in O(workers) memory. The batch
// path that materializes every report for exact percentiles is the
// opt-in RunReports. Setting Start resumes an interrupted sweep: wearers
// below Start are skipped (their records replay from the telemetry
// store via Replay), and because per-wearer seeds derive from absolute
// wearer indices the resumed sweep is bit-identical to an uninterrupted
// one.
package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wiban/internal/bannet"
	"wiban/internal/desim"
	"wiban/internal/units"
)

// Scenario produces the simulation configuration for one wearer. The rng
// is private to the wearer and deterministically seeded from the fleet
// seed; all perturbation randomness must come from it. Config.Seed is
// overwritten by the engine with the wearer's simulation seed, so a
// Scenario need not set it. Scenarios are called concurrently from worker
// goroutines and must not mutate shared state.
type Scenario func(wearer int, rng *rand.Rand) (bannet.Config, error)

// Fleet describes a population sweep.
type Fleet struct {
	// Wearers is the population size (one independent simulation each).
	Wearers int
	// Seed is the fleet seed every per-wearer seed derives from.
	Seed int64
	// Scenario builds each wearer's network.
	Scenario Scenario
	// Span is the simulated span per wearer.
	Span units.Duration
	// Workers bounds parallelism; <= 0 means runtime.NumCPU().
	Workers int
	// Start is the first wearer to simulate (wearers [Start, Wearers)
	// run). Non-zero only when resuming an interrupted sweep whose
	// earlier records replay from a telemetry store; seeds still derive
	// from absolute wearer indices, so a resumed sweep reproduces an
	// uninterrupted one exactly.
	Start int
}

// Perf captures wall-clock throughput of a fleet run. It is reported
// separately from the aggregate Report because elapsed time varies run to
// run while the Report is bit-reproducible.
type Perf struct {
	Workers      int
	Elapsed      time.Duration
	RunsPerSec   float64
	EventsPerSec float64
	// MaxPending is the peak occupancy of the reorder window — the most
	// completed-but-not-yet-consumed reports held at once. It is bounded
	// by the window size (a small multiple of Workers), never by fleet
	// size; the streaming-memory tests assert exactly that.
	MaxPending int
}

func (p Perf) String() string {
	return fmt.Sprintf("%d workers, %v elapsed, %.1f runs/s, %.3g events/s, window peak %d",
		p.Workers, p.Elapsed.Round(time.Millisecond), p.RunsPerSec, p.EventsPerSec, p.MaxPending)
}

// Run executes the sweep through the default bounded-memory path: each
// completed report streams into a StreamAggregator and is dropped, so
// memory is O(workers) regardless of population. It returns the
// deterministic aggregate report plus wall-clock performance counters.
// If any wearer's scenario or simulation fails, Run reports the failure
// at the lowest wearer index (independent of worker scheduling) and no
// report. For exact (non-histogram) percentiles over every per-wearer
// report, use the opt-in RunReports.
func (f *Fleet) Run() (*Report, Perf, error) {
	agg := NewStreamAggregator(f.Span)
	perf, err := f.Stream(agg)
	if err != nil {
		return nil, Perf{}, err
	}
	return agg.Report(), perf, nil
}

// RunReports is the opt-in full-report path: it materializes every
// per-wearer report (O(fleet) memory) and aggregates them with the exact
// sorted-sample percentiles of Aggregate. Resume (Start > 0) is not
// supported here — partial sweeps only make sense streamed.
func (f *Fleet) RunReports() ([]*bannet.Report, *Report, Perf, error) {
	if f.Start != 0 {
		return nil, nil, Perf{}, fmt.Errorf("fleet: RunReports does not support Start=%d; stream a resumed sweep instead", f.Start)
	}
	if f.Wearers <= 0 {
		return nil, nil, Perf{}, fmt.Errorf("fleet: non-positive population %d", f.Wearers)
	}
	reports := make([]*bannet.Report, 0, f.Wearers)
	perf, err := f.stream(func(w int, r *bannet.Report) error {
		reports = append(reports, r)
		return nil
	})
	if err != nil {
		return nil, nil, Perf{}, err
	}
	return reports, Aggregate(f.Span, reports), perf, nil
}

// Stream executes wearers [Start, Wearers) and feeds each one's
// telemetry record to sink in strict wearer-index order. Tee the
// telemetry store's Writer with a StreamAggregator to persist and
// aggregate in one pass. A sink error aborts the sweep (records already
// consumed form a valid committed prefix).
func (f *Fleet) Stream(sink Sink) (Perf, error) {
	return f.stream(func(w int, r *bannet.Report) error {
		return sink.Consume(RecordOf(w, r))
	})
}

// stream is the engine: a worker pool over wearer indices with a bounded
// reorder window. Workers acquire a window slot before taking an index,
// and slots free only when the in-order consumer emits the report, so at
// most `window` completed reports exist at any instant — backpressure,
// not buffering, absorbs stragglers.
func (f *Fleet) stream(emit func(w int, r *bannet.Report) error) (Perf, error) {
	if f.Wearers <= 0 {
		return Perf{}, fmt.Errorf("fleet: non-positive population %d", f.Wearers)
	}
	if f.Scenario == nil {
		return Perf{}, fmt.Errorf("fleet: nil scenario")
	}
	if f.Span <= 0 {
		return Perf{}, fmt.Errorf("fleet: non-positive span")
	}
	if f.Start < 0 || f.Start > f.Wearers {
		return Perf{}, fmt.Errorf("fleet: start index %d outside population [0, %d]", f.Start, f.Wearers)
	}
	count := f.Wearers - f.Start
	if count == 0 {
		return Perf{}, nil
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > count {
		workers = count
	}
	window := 4 * workers

	var (
		slots = make(chan struct{}, window)
		done  = make(chan struct{})
		next  atomic.Int64
		wg    sync.WaitGroup

		mu         sync.Mutex
		pending    = make(map[int]*bannet.Report, window)
		nextEmit   = f.Start
		maxPending int
		events     uint64
		failIdx    = -1
		failErr    error
	)
	next.Store(int64(f.Start))
	// fail records the lowest-index failure and halts dispatch. The
	// lowest recorded index is scheduling-independent: indices are
	// dispatched in order, and every index below the first failure was
	// dispatched — and runs to completion — before workers observe done.
	fail := func(i int, err error) {
		mu.Lock()
		if failIdx == -1 || i < failIdx {
			failIdx, failErr = i, err
		}
		select {
		case <-done:
		default:
			close(done) // under mu, so exactly one closer
		}
		mu.Unlock()
	}

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case slots <- struct{}{}:
				case <-done:
					return
				}
				i := int(next.Add(1) - 1)
				if i >= f.Wearers {
					<-slots // hand the slot back: nothing will be emitted for it
					return
				}
				rep, err := f.runWearer(i)
				if err != nil {
					fail(i, fmt.Errorf("fleet: wearer %d: %w", i, err))
					return
				}
				mu.Lock()
				pending[i] = rep
				if len(pending) > maxPending {
					maxPending = len(pending)
				}
				for {
					r, ok := pending[nextEmit]
					if !ok {
						break
					}
					delete(pending, nextEmit)
					if err := emit(nextEmit, r); err != nil {
						idx := nextEmit
						mu.Unlock()
						fail(idx, fmt.Errorf("fleet: sink at wearer %d: %w", idx, err))
						return
					}
					events += r.Events
					nextEmit++
					<-slots // the emitted report's slot frees a waiting worker
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if failIdx != -1 {
		return Perf{}, failErr
	}
	perf := Perf{Workers: workers, Elapsed: elapsed, MaxPending: maxPending}
	if s := elapsed.Seconds(); s > 0 {
		perf.RunsPerSec = float64(count) / s
		perf.EventsPerSec = float64(events) / s
	}
	return perf, nil
}

// runWearer builds and runs one wearer's simulation shard.
func (f *Fleet) runWearer(w int) (*bannet.Report, error) {
	rng := rand.New(rand.NewSource(desim.DeriveSeed(f.Seed, 2*uint64(w))))
	cfg, err := f.Scenario(w, rng)
	if err != nil {
		return nil, err
	}
	cfg.Seed = desim.DeriveSeed(f.Seed, 2*uint64(w)+1)
	sim, err := bannet.NewSim(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(f.Span)
}
