// Package fleet is the population-scale simulation engine: it runs N
// independent body-area-network simulations (one simulated wearer each) in
// parallel across a worker pool and merges the per-wearer reports into
// fleet-level statistics.
//
// # Determinism and the seed-derivation contract
//
// A fleet run is reproducible from a single fleet seed, independent of the
// worker count. Each wearer w gets two decorrelated child seeds via
// splitmix64 (desim.DeriveSeed):
//
//	scenario seed   = desim.DeriveSeed(fleetSeed, 2*w)     — drives the
//	    scenario generator's perturbations (PER spread, battery spread,
//	    harvester assignment, node mix, radio choice);
//	simulation seed = desim.DeriveSeed(fleetSeed, 2*w+1)   — overrides
//	    Config.Seed and drives the discrete-event kernel's randomness.
//
// Each wearer runs on its own desim kernel with its own RNG, so runs
// share no mutable state and the schedule of workers cannot influence any
// outcome. Aggregation happens after all runs complete, in wearer-index
// order, so floating-point summation order is fixed too. The invariant —
// same fleet seed ⇒ byte-identical aggregate report for any worker count
// — is pinned by the parallelism-invariance tests and must be preserved
// by future changes; in particular the stream-index assignment above is
// part of the replay contract and must never be renumbered.
package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wiban/internal/bannet"
	"wiban/internal/desim"
	"wiban/internal/units"
)

// Scenario produces the simulation configuration for one wearer. The rng
// is private to the wearer and deterministically seeded from the fleet
// seed; all perturbation randomness must come from it. Config.Seed is
// overwritten by the engine with the wearer's simulation seed, so a
// Scenario need not set it. Scenarios are called concurrently from worker
// goroutines and must not mutate shared state.
type Scenario func(wearer int, rng *rand.Rand) (bannet.Config, error)

// Fleet describes a population sweep.
type Fleet struct {
	// Wearers is the population size (one independent simulation each).
	Wearers int
	// Seed is the fleet seed every per-wearer seed derives from.
	Seed int64
	// Scenario builds each wearer's network.
	Scenario Scenario
	// Span is the simulated span per wearer.
	Span units.Duration
	// Workers bounds parallelism; <= 0 means runtime.NumCPU().
	Workers int
}

// Perf captures wall-clock throughput of a fleet run. It is reported
// separately from the aggregate Report because elapsed time varies run to
// run while the Report is bit-reproducible.
type Perf struct {
	Workers      int
	Elapsed      time.Duration
	RunsPerSec   float64
	EventsPerSec float64
}

func (p Perf) String() string {
	return fmt.Sprintf("%d workers, %v elapsed, %.1f runs/s, %.3g events/s",
		p.Workers, p.Elapsed.Round(time.Millisecond), p.RunsPerSec, p.EventsPerSec)
}

// Run executes the sweep and returns the deterministic aggregate report
// plus wall-clock performance counters. If any wearer's scenario or
// simulation fails, Run reports the failure at the lowest wearer index
// (again independent of worker scheduling) and no report.
func (f *Fleet) Run() (*Report, Perf, error) {
	if f.Wearers <= 0 {
		return nil, Perf{}, fmt.Errorf("fleet: non-positive population %d", f.Wearers)
	}
	if f.Scenario == nil {
		return nil, Perf{}, fmt.Errorf("fleet: nil scenario")
	}
	if f.Span <= 0 {
		return nil, Perf{}, fmt.Errorf("fleet: non-positive span")
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > f.Wearers {
		workers = f.Wearers
	}

	reports := make([]*bannet.Report, f.Wearers)
	errs := make([]error, f.Wearers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1) - 1)
				if i >= f.Wearers {
					return
				}
				reports[i], errs[i] = f.runWearer(i)
				if errs[i] != nil {
					// Stop dispatching further wearers: a misconfigured
					// million-wearer sweep should die on the first failure,
					// not after the full sweep. The error report below still
					// picks the lowest failing index, which is deterministic
					// because every wearer before the first recorded failure
					// was dispatched before workers observed the flag.
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, err := range errs {
		if err != nil {
			return nil, Perf{}, fmt.Errorf("fleet: wearer %d: %w", i, err)
		}
	}
	rep := Aggregate(f.Span, reports)
	perf := Perf{Workers: workers, Elapsed: elapsed}
	if s := elapsed.Seconds(); s > 0 {
		perf.RunsPerSec = float64(f.Wearers) / s
		perf.EventsPerSec = float64(rep.Events) / s
	}
	return rep, perf, nil
}

// runWearer builds and runs one wearer's simulation shard.
func (f *Fleet) runWearer(w int) (*bannet.Report, error) {
	rng := rand.New(rand.NewSource(desim.DeriveSeed(f.Seed, 2*uint64(w))))
	cfg, err := f.Scenario(w, rng)
	if err != nil {
		return nil, err
	}
	cfg.Seed = desim.DeriveSeed(f.Seed, 2*uint64(w)+1)
	sim, err := bannet.NewSim(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(f.Span)
}
