package fleet

import (
	"math"
	"sort"
)

// DefaultMaxBins is the centroid budget of a StreamDist. Five
// distributions at this budget cost a few tens of kilobytes — constant in
// fleet size.
const DefaultMaxBins = 256

// StreamDist is the bounded-memory counterpart of NewDist: it summarizes
// an unbounded sample stream with exact count, min, max and mean (the
// mean is summed in insertion order, matching the batch path's
// wearer-index-order summation) and percentile estimates from a streaming
// histogram in the style of Ben-Haim & Tom-Tov (JMLR 2010).
//
// The histogram keeps at most maxBins weighted centroids. A new value
// lands on its exact centroid if one exists, otherwise it opens a new
// centroid and, over budget, the two closest-together adjacent centroids
// merge (ties break on the lower index). Every step is a pure function of
// the insertion sequence, so fleet runs stay byte-reproducible across
// worker counts. While fewer than maxBins distinct values have been seen
// no merge ever happens and Quantile reproduces the batch sorted-sample
// convention (index ⌊n·p/100⌋) exactly; beyond that, a percentile is the
// centroid covering the target rank, with error bounded by the local
// centroid spacing.
//
// NaN samples are counted separately and excluded from every statistic
// (see Add): series gaps surface as NaN and must not poison the sum/mean
// or break the sorted-centroid invariant sort.Search relies on.
type StreamDist struct {
	n        int64
	nans     int64
	sum      float64
	min, max float64
	bins     []centroid
	maxBins  int
}

// centroid is a weighted cluster of nearby samples.
type centroid struct {
	c float64 // weighted center
	w int64   // samples absorbed
}

// NewStreamDist returns an accumulator keeping at most maxBins centroids
// (0 means DefaultMaxBins).
func NewStreamDist(maxBins int) *StreamDist {
	if maxBins <= 0 {
		maxBins = DefaultMaxBins
	}
	return &StreamDist{maxBins: maxBins, bins: make([]centroid, 0, maxBins+1)}
}

// Add absorbs one sample. NaN is a gap marker, not a value: it bumps
// NaNs() and leaves n, sum, min/max and the centroids untouched. (A NaN
// admitted here would make the mean NaN forever and, because every
// comparison against NaN is false, land at an arbitrary sort.Search
// index — silently breaking the sorted-centroid invariant.)
func (d *StreamDist) Add(x float64) {
	if math.IsNaN(x) {
		d.nans++
		return
	}
	if d.n == 0 || x < d.min {
		d.min = x
	}
	if d.n == 0 || x > d.max {
		d.max = x
	}
	d.n++
	d.sum += x

	i := sort.Search(len(d.bins), func(i int) bool { return d.bins[i].c >= x })
	if i < len(d.bins) && d.bins[i].c == x {
		d.bins[i].w++
		return
	}
	d.bins = append(d.bins, centroid{})
	copy(d.bins[i+1:], d.bins[i:])
	d.bins[i] = centroid{c: x, w: 1}
	if len(d.bins) <= d.maxBins {
		return
	}
	// Merge the closest adjacent pair; ties break on the lower index so
	// the result depends only on the insertion sequence.
	best, bestGap := 0, d.bins[1].c-d.bins[0].c
	for j := 1; j < len(d.bins)-1; j++ {
		if gap := d.bins[j+1].c - d.bins[j].c; gap < bestGap {
			best, bestGap = j, gap
		}
	}
	a, b := d.bins[best], d.bins[best+1]
	w := a.w + b.w
	d.bins[best] = centroid{c: (a.c*float64(a.w) + b.c*float64(b.w)) / float64(w), w: w}
	d.bins = append(d.bins[:best+1], d.bins[best+2:]...)
}

// N reports the samples absorbed so far (NaN gaps excluded).
func (d *StreamDist) N() int64 { return d.n }

// NaNs reports how many NaN samples were offered and skipped.
func (d *StreamDist) NaNs() int64 { return d.nans }

// Quantile returns the estimated pct-th percentile under the batch
// convention: the value at rank ⌊n·pct/100⌋ of the sorted sample,
// answered with the centroid whose weight span covers that rank.
func (d *StreamDist) Quantile(pct int) float64 {
	if d.n == 0 {
		return 0
	}
	rank := d.n * int64(pct) / 100
	var cum int64
	for _, b := range d.bins {
		cum += b.w
		if rank < cum {
			return b.c
		}
	}
	return d.bins[len(d.bins)-1].c
}

// Dist renders the accumulated stream as the Report's summary type.
func (d *StreamDist) Dist() Dist {
	if d.n == 0 {
		return Dist{}
	}
	return Dist{
		N:    int(d.n),
		Min:  d.min,
		Max:  d.max,
		Mean: d.sum / float64(d.n),
		P10:  d.Quantile(10),
		P50:  d.Quantile(50),
		P90:  d.Quantile(90),
		P99:  d.Quantile(99),
	}
}
