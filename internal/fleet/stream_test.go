package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// TestStreamDistExactBelowBudget: while distinct values fit the centroid
// budget, StreamDist must reproduce the batch NewDist bit-for-bit —
// including the ⌊n·p/100⌋ percentile convention and insertion-order
// summation of the mean.
func TestStreamDistExactBelowBudget(t *testing.T) {
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = float64((i*37)%100) / 7 // 100 distinct values, shuffled order
	}
	sd := NewStreamDist(0)
	for _, s := range samples {
		sd.Add(s)
	}
	got := sd.Dist()
	want := NewDist(append([]float64(nil), samples...))
	if got != want {
		t.Fatalf("stream dist diverged below budget:\n got %+v\nwant %+v", got, want)
	}
}

// TestStreamDistMergedApproximation: far over budget, percentiles must
// stay within a few percent of the exact ones on a smooth distribution.
func TestStreamDistMergedApproximation(t *testing.T) {
	const n = 50000
	sd := NewStreamDist(64)
	exact := make([]float64, n)
	state := uint64(1)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407 // deterministic LCG
		x := float64(state>>11) / float64(1<<53)                // uniform [0,1)
		sd.Add(x)
		exact[i] = x
	}
	want := NewDist(exact)
	got := sd.Dist()
	if got.N != n || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("exact fields diverged: %+v vs %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-9 {
		t.Errorf("mean %v, want %v", got.Mean, want.Mean)
	}
	for _, q := range []struct{ got, want float64 }{
		{got.P10, want.P10}, {got.P50, want.P50}, {got.P90, want.P90}, {got.P99, want.P99},
	} {
		if math.Abs(q.got-q.want) > 0.05 {
			t.Errorf("quantile %v, want %v (±0.05 of unit range)", q.got, q.want)
		}
	}
}

// TestStreamDistDeterminism: identical insertion sequences produce
// identical summaries even deep in merge territory.
func TestStreamDistDeterminism(t *testing.T) {
	run := func() Dist {
		sd := NewStreamDist(32)
		state := uint64(99)
		for i := 0; i < 10000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			sd.Add(float64(state >> 40))
		}
		return sd.Dist()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("merge path nondeterministic:\n%+v\n%+v", a, b)
	}
}

// TestStreamDistNaNPolicy pins the gap-sample contract: NaN never enters
// a statistic. Interleaving NaNs anywhere in the stream — first sample,
// mid-stream, deep in merge territory — must leave every summary field
// identical to the NaN-free stream, with the skips visible via NaNs().
func TestStreamDistNaNPolicy(t *testing.T) {
	state := uint64(7)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	clean := NewStreamDist(64)
	dirty := NewStreamDist(64)
	dirty.Add(math.NaN()) // NaN as the very first sample
	nans := int64(1)
	for i := 0; i < 5000; i++ {
		x := next()
		clean.Add(x)
		dirty.Add(x)
		if i%17 == 0 {
			dirty.Add(math.NaN())
			nans++
		}
	}
	if got, want := dirty.Dist(), clean.Dist(); got != want {
		t.Fatalf("NaN samples leaked into the summary:\n got %+v\nwant %+v", got, want)
	}
	if dirty.N() != clean.N() {
		t.Errorf("N counts NaNs: %d vs %d", dirty.N(), clean.N())
	}
	if dirty.NaNs() != nans {
		t.Errorf("NaNs() = %d, want %d", dirty.NaNs(), nans)
	}
	if clean.NaNs() != 0 {
		t.Errorf("clean stream reports %d NaNs", clean.NaNs())
	}
	// Mean must stay finite — the pre-policy failure mode was a poisoned
	// sum turning every derived statistic into NaN.
	if m := dirty.Dist().Mean; math.IsNaN(m) {
		t.Error("mean poisoned by NaN sample")
	}
	// An all-NaN stream is an empty distribution, not a crash.
	empty := NewStreamDist(0)
	empty.Add(math.NaN())
	if got := empty.Dist(); got != (Dist{}) {
		t.Errorf("all-NaN stream: %+v, want zero Dist", got)
	}
	if empty.Quantile(50) != 0 {
		t.Errorf("all-NaN quantile = %v, want 0", empty.Quantile(50))
	}
}

// TestStreamMatchesBatchOnSmallFleet: on a fleet small enough that no
// centroid merges happen, the streaming Run and the exact RunReports
// paths must produce byte-identical reports.
func TestStreamMatchesBatchOnSmallFleet(t *testing.T) {
	stream, _, err := testFleet(40, 4, 11).Run()
	if err != nil {
		t.Fatal(err)
	}
	_, batch, _, err := testFleet(40, 4, 11).RunReports()
	if err != nil {
		t.Fatal(err)
	}
	js, _ := json.Marshal(stream)
	jb, _ := json.Marshal(batch)
	if string(js) != string(jb) {
		t.Fatalf("stream and batch aggregation diverged on a small fleet:\n%s\n%s", js, jb)
	}
}

// TestStreamSinkOrderAndTee checks records arrive in strict wearer order
// regardless of workers, and that Tee fans out in argument order.
func TestStreamSinkOrderAndTee(t *testing.T) {
	var order []int
	var copies []int
	first := SinkFunc(func(rec telemetry.Record) error {
		order = append(order, rec.Wearer)
		return nil
	})
	second := SinkFunc(func(rec telemetry.Record) error {
		copies = append(copies, rec.Wearer)
		return nil
	})
	f := testFleet(50, 8, 3)
	if _, err := f.Stream(Tee(first, second)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 50 || len(copies) != 50 {
		t.Fatalf("sinks saw %d/%d records, want 50/50", len(order), len(copies))
	}
	for i, w := range order {
		if w != i {
			t.Fatalf("record %d has wearer %d: out of order", i, w)
		}
	}
}

// TestStreamSinkErrorAborts: a sink failure aborts the sweep with a
// deterministic index, independent of worker count.
func TestStreamSinkErrorAborts(t *testing.T) {
	for _, workers := range []int{1, 8} {
		f := testFleet(60, workers, 5)
		boom := SinkFunc(func(rec telemetry.Record) error {
			if rec.Wearer == 23 {
				return fmt.Errorf("disk full")
			}
			return nil
		})
		_, err := f.Stream(boom)
		if err == nil || !strings.Contains(err.Error(), "wearer 23") {
			t.Fatalf("workers=%d: err = %v, want sink failure at wearer 23", workers, err)
		}
	}
}

// TestStreamWindowBoundsMemory: the reorder window, not the fleet size,
// bounds how many completed reports coexist.
func TestStreamWindowBoundsMemory(t *testing.T) {
	f := testFleet(400, 8, 9)
	f.Span = 5 * units.Second
	rep, perf, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wearers != 400 {
		t.Fatalf("wearers %d", rep.Wearers)
	}
	if perf.MaxPending > 4*8 {
		t.Fatalf("reorder window peaked at %d reports, bound is %d", perf.MaxPending, 4*8)
	}
}

// TestStreamStartResumesExactly: splitting a sweep at an arbitrary index
// and feeding both halves into one aggregator reproduces the one-shot
// sweep byte-for-byte (the telemetry-store version of this is the resume
// golden test).
func TestStreamStartResumesExactly(t *testing.T) {
	full, _, err := testFleet(80, 4, 21).Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := NewStreamAggregator(30 * units.Second)
	head := testFleet(80, 4, 21)
	head.Wearers = 33 // first leg: wearers [0, 33)
	if _, err := head.Stream(agg); err != nil {
		t.Fatal(err)
	}
	tail := testFleet(80, 4, 21)
	tail.Start = 33 // second leg: wearers [33, 80)
	if _, err := tail.Stream(agg); err != nil {
		t.Fatal(err)
	}
	if got := agg.Report(); got.Fingerprint() != full.Fingerprint() {
		t.Fatal("split sweep diverged from one-shot sweep")
	}
}

// TestStreamRejectsBadStart covers Start validation.
func TestStreamRejectsBadStart(t *testing.T) {
	for _, start := range []int{-1, 101} {
		f := testFleet(100, 2, 1)
		f.Start = start
		if _, _, err := f.Run(); err == nil {
			t.Errorf("Start=%d accepted", start)
		}
	}
	f := testFleet(100, 2, 1)
	f.Start = 100 // empty resume leg is legal: everything already stored
	if _, err := f.Stream(NewStreamAggregator(f.Span)); err != nil {
		t.Errorf("Start==Wearers: %v", err)
	}
	if f.Start != 0 {
		if _, _, _, err := f.RunReports(); err == nil {
			t.Error("RunReports accepted a resumed sweep")
		}
	}
}

// TestStreamDistPercentileProperty is the randomized pin of the
// StreamDist↔batch contract across the 256-centroid threshold: for any
// insertion sequence whose distinct-value count fits the centroid budget
// — regardless of total sample count — the streaming percentiles must
// equal the batch sorted-sample ones bit-for-bit; past the budget they
// must stay within a tight fraction of the sample range while N, min,
// max and (to rounding) the mean remain exact.
func TestStreamDistPercentileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	exactTrials, mergedTrials := 0, 0
	for trial := 0; trial < 120; trial++ {
		n := 128 + rng.Intn(384) // 128..511 straddles the 256 threshold
		bounded := trial%2 == 0
		samples := make([]float64, n)
		distinct := map[float64]bool{}
		for i := range samples {
			var v float64
			if bounded {
				// ≤ 200 distinct values: duplicates guarantee the
				// centroid budget holds even when n > 256.
				v = float64(rng.Intn(200)) / 7
			} else {
				v = rng.NormFloat64() * 10
			}
			samples[i] = v
			distinct[v] = true
		}
		sd := NewStreamDist(0)
		for _, v := range samples {
			sd.Add(v)
		}
		got := sd.Dist()
		want := NewDist(append([]float64(nil), samples...))
		if len(distinct) <= DefaultMaxBins {
			exactTrials++
			if got != want {
				t.Fatalf("trial %d (n=%d, %d distinct): stream diverged from batch\n got %+v\nwant %+v",
					trial, n, len(distinct), got, want)
			}
			continue
		}
		mergedTrials++
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("trial %d: exact fields diverged over budget: %+v vs %+v", trial, got, want)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Max(1, math.Abs(want.Mean)) {
			t.Fatalf("trial %d: mean %v, want %v", trial, got.Mean, want.Mean)
		}
		span := want.Max - want.Min
		for _, q := range []struct {
			name      string
			got, want float64
		}{
			{"p10", got.P10, want.P10}, {"p50", got.P50, want.P50},
			{"p90", got.P90, want.P90}, {"p99", got.P99, want.P99},
		} {
			if math.Abs(q.got-q.want) > 0.05*span {
				t.Fatalf("trial %d (n=%d, %d distinct): %s = %g, want %g (±5%% of range %g)",
					trial, n, len(distinct), q.name, q.got, q.want, span)
			}
		}
		if got.P10 > got.P50 || got.P50 > got.P90 || got.P90 > got.P99 {
			t.Fatalf("trial %d: percentiles not monotone: %+v", trial, got)
		}
	}
	// The trial mix must actually exercise both regimes.
	if exactTrials < 20 || mergedTrials < 20 {
		t.Fatalf("property test degenerate: %d exact / %d merged trials", exactTrials, mergedTrials)
	}
}
