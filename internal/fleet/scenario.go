package fleet

import (
	"fmt"
	"math/rand"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// Generator perturbs a base network configuration across a diverse wearer
// population: no two bodies have the same channel loss, battery wear,
// harvesting opportunity or device mix. All randomness comes from the
// per-wearer RNG the engine hands the scenario, so a population is a pure
// function of the fleet seed.
type Generator struct {
	// Base is the template network. Node slices are copied per wearer;
	// the shared pointers inside (sensors, policies, radios) are treated
	// as read-only.
	Base bannet.Config

	// PERSpread jitters each node's packet error rate by a uniform
	// multiplicative factor in [1-PERSpread, 1+PERSpread] (clamped to a
	// sane PER range). 0 disables; 0.5 models a 2x-ish body-channel
	// spread across postures and physiologies.
	PERSpread float64

	// BatterySpread scales each node's battery capacity by a uniform
	// factor in [1-BatterySpread, 1+BatterySpread], modeling cell aging
	// and size variants. 0 disables.
	BatterySpread float64

	// HarvesterProb is the probability that a node without a harvester
	// gains one (drawn uniformly from the energy harvester catalog).
	HarvesterProb float64

	// DropNodeProb thins the device mix: every node after the first is
	// independently absent with this probability (nobody wears every
	// device every day). The first node always remains so a wearer is
	// never empty.
	DropNodeProb float64

	// BLEFraction is the fraction of wearers using BLE 4.2 radios instead
	// of the base radios. Nodes whose stream exceeds the BLE goodput keep
	// their base radio (a camera cannot fall back to BLE).
	BLEFraction float64

	// DrainBattery switches every node to in-run battery accounting so
	// the fleet report's DiedFraction is meaningful.
	DrainBattery bool
}

// Validate rejects out-of-range spread parameters.
func (g *Generator) Validate() error {
	if len(g.Base.Nodes) == 0 {
		return fmt.Errorf("fleet: generator has no base nodes")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PERSpread", g.PERSpread},
		{"BatterySpread", g.BatterySpread},
		{"HarvesterProb", g.HarvesterProb},
		{"DropNodeProb", g.DropNodeProb},
		{"BLEFraction", g.BLEFraction},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fleet: generator %s %v outside [0,1]", p.name, p.v)
		}
	}
	if g.BatterySpread >= 1 {
		return fmt.Errorf("fleet: BatterySpread %v leaves no capacity at the low end", g.BatterySpread)
	}
	return nil
}

// Tag renders the generator's perturbation parameters as a stable string.
// It is stored in a telemetry store's metadata so a resumed sweep can
// refuse flags that describe a different population (the base config is
// assumed fixed per binary version).
func (g *Generator) Tag() string {
	return fmt.Sprintf("gen:per=%g,batt=%g,harv=%g,drop=%g,ble=%g,drain=%t",
		g.PERSpread, g.BatterySpread, g.HarvesterProb, g.DropNodeProb, g.BLEFraction, g.DrainBattery)
}

// spread returns a uniform multiplicative factor in [1-s, 1+s].
func spread(rng *rand.Rand, s float64) float64 {
	if s <= 0 {
		return 1
	}
	return 1 + s*(2*rng.Float64()-1)
}

// Scenario compiles the generator into the engine's scenario function.
// Validation happens once here, not per wearer; an invalid generator
// yields a scenario that fails on first use.
func (g *Generator) Scenario() Scenario {
	if err := g.Validate(); err != nil {
		return func(int, *rand.Rand) (bannet.Config, error) { return bannet.Config{}, err }
	}
	harvesters := energy.Harvesters()
	return func(wearer int, rng *rand.Rand) (bannet.Config, error) {
		cfg := g.Base // shallow copy; Nodes rebuilt below
		cfg.Nodes = nil
		useBLE := rng.Float64() < g.BLEFraction
		for i, base := range g.Base.Nodes {
			// Device mix: keep the first node, drop later ones at random.
			// The coin is flipped for every node so the RNG consumption —
			// and therefore everything downstream — does not depend on
			// which nodes happen to remain.
			drop := rng.Float64() < g.DropNodeProb
			per := units.Clamp(base.PER*spread(rng, g.PERSpread), 0, 0.5)
			battScale := spread(rng, g.BatterySpread)
			harvestRoll := rng.Float64()
			harvestPick := rng.Intn(len(harvesters))
			if i > 0 && drop {
				continue
			}

			nc := base // copy; the shared Sensor/Policy pointers stay read-only
			nc.PER = per
			if useBLE {
				ble := radio.BLE42()
				if nc.Policy.OutputRate(nc.Sensor.DataRate()) <= ble.Goodput {
					nc.Radio = ble
				}
			}
			if g.BatterySpread > 0 && nc.Battery != nil {
				batt := *nc.Battery // clone before scaling a shared cell
				batt.CapacityMAh *= battScale
				nc.Battery = &batt
			}
			if nc.Harvester == nil && harvestRoll < g.HarvesterProb {
				nc.Harvester = harvesters[harvestPick]
			}
			if g.DrainBattery {
				nc.DrainBattery = true
			}
			cfg.Nodes = append(cfg.Nodes, nc)
		}
		return cfg, nil
	}
}

// DefaultBase returns the stock heterogeneous BAN used by cmd/iobfleet
// and the fleet benchmarks: an ECG patch, an IMU band with indoor-PV
// harvesting, and an ADPCM voice mic, all on Wi-R. It mirrors the
// cmd/iobsim scenario minus the camera (whose 1.15 Mbps stream would bar
// the BLE arm of a population sweep).
func DefaultBase() bannet.Config {
	return bannet.Config{Nodes: []bannet.NodeConfig{
		{
			ID: 1, Name: "ecg-patch", Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.01, MaxRetries: 5,
		},
		{
			ID: 2, Name: "imu-band", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.CR2032(), Harvester: energy.IndoorPV(),
			PacketBits: 1024, PER: 0.02, MaxRetries: 5,
		},
		{
			ID: 3, Name: "voice-mic", Sensor: sensors.MicMono(),
			Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
			Radio:  radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 4096, PER: 0.02, MaxRetries: 4,
		},
	}}
}
