package fleet

import (
	"fmt"
	"math/rand"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/spectrum"
	"wiban/internal/units"
)

// Generator perturbs a base network configuration across a diverse wearer
// population: no two bodies have the same channel loss, battery wear,
// harvesting opportunity or device mix. All randomness comes from the
// per-wearer RNG the engine hands the scenario, so a population is a pure
// function of the fleet seed.
type Generator struct {
	// Base is the template network. Node slices are copied per wearer;
	// the shared pointers inside (sensors, policies, radios) are treated
	// as read-only.
	Base bannet.Config

	// PERSpread jitters each node's packet error rate by a uniform
	// multiplicative factor in [1-PERSpread, 1+PERSpread] (clamped to a
	// sane PER range). 0 disables; 0.5 models a 2x-ish body-channel
	// spread across postures and physiologies.
	PERSpread float64

	// BatterySpread scales each node's battery capacity by a uniform
	// factor in [1-BatterySpread, 1+BatterySpread], modeling cell aging
	// and size variants. 0 disables.
	BatterySpread float64

	// HarvesterProb is the probability that a node without a harvester
	// gains one (drawn uniformly from the energy harvester catalog).
	HarvesterProb float64

	// DropNodeProb thins the device mix: every node after the first is
	// independently absent with this probability (nobody wears every
	// device every day). The first node always remains so a wearer is
	// never empty.
	DropNodeProb float64

	// BLEFraction is the fraction of wearers using BLE 4.2 radios instead
	// of the base radios. Nodes whose stream exceeds the BLE goodput keep
	// their base radio (a camera cannot fall back to BLE).
	BLEFraction float64

	// DrainBattery switches every node to in-run battery accounting so
	// the fleet report's DiedFraction is meaningful.
	DrainBattery bool
}

// Validate rejects out-of-range spread parameters.
func (g *Generator) Validate() error {
	if len(g.Base.Nodes) == 0 {
		return fmt.Errorf("fleet: generator has no base nodes")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PERSpread", g.PERSpread},
		{"BatterySpread", g.BatterySpread},
		{"HarvesterProb", g.HarvesterProb},
		{"DropNodeProb", g.DropNodeProb},
		{"BLEFraction", g.BLEFraction},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fleet: generator %s %v outside [0,1]", p.name, p.v)
		}
	}
	if g.BatterySpread >= 1 {
		return fmt.Errorf("fleet: BatterySpread %v leaves no capacity at the low end", g.BatterySpread)
	}
	return nil
}

// Tag renders the generator's perturbation parameters as a stable string.
// It is stored in a telemetry store's metadata so a resumed sweep can
// refuse flags that describe a different population (the base config is
// assumed fixed per binary version).
func (g *Generator) Tag() string {
	return fmt.Sprintf("gen:per=%g,batt=%g,harv=%g,drop=%g,ble=%g,drain=%t",
		g.PERSpread, g.BatterySpread, g.HarvesterProb, g.DropNodeProb, g.BLEFraction, g.DrainBattery)
}

// spread returns a uniform multiplicative factor in [1-s, 1+s].
func spread(rng *rand.Rand, s float64) float64 {
	if s <= 0 {
		return 1
	}
	return 1 + s*(2*rng.Float64()-1)
}

// nodeDraw is the fixed per-node random draw block. Scenario and
// LoadScenario both consume it through drawNode, so the two paths drain
// the wearer's RNG stream identically by construction — the invariant
// that lets the coupled engine's phase 1 skip full config assembly. The
// block is drawn for every base node, dropped or not, so RNG consumption
// never depends on which nodes happen to remain.
type nodeDraw struct {
	drop        bool
	perScale    float64
	battScale   float64
	harvestRoll float64
	harvestPick int
}

// drawNode drains one node's draw block from the wearer RNG; harvestN is
// the harvester-catalog size.
func (g *Generator) drawNode(rng *rand.Rand, harvestN int) nodeDraw {
	var d nodeDraw
	d.drop = rng.Float64() < g.DropNodeProb
	d.perScale = spread(rng, g.PERSpread)
	d.battScale = spread(rng, g.BatterySpread)
	d.harvestRoll = rng.Float64()
	d.harvestPick = rng.Intn(harvestN)
	return d
}

// bleFor returns the BLE fallback radio if the node's stream fits it,
// else the node's base radio — the effective-radio rule both the full
// scenario and the load pass apply.
func bleFor(base *bannet.NodeConfig, ble *radio.Transceiver) *radio.Transceiver {
	if base.Policy.OutputRate(base.Sensor.DataRate()) <= ble.Goodput {
		return ble
	}
	return base.Radio
}

// Scenario compiles the generator into the engine's scenario function.
// Validation happens once here, not per wearer; an invalid generator
// yields a scenario that fails on first use.
func (g *Generator) Scenario() Scenario {
	if err := g.Validate(); err != nil {
		return func(int, *rand.Rand) (bannet.Config, error) { return bannet.Config{}, err }
	}
	harvesters := energy.Harvesters()
	ble := radio.BLE42() // one shared read-only transceiver, not one per node visit
	return func(wearer int, rng *rand.Rand) (bannet.Config, error) {
		cfg := g.Base // shallow copy; Nodes rebuilt below
		cfg.Nodes = make([]bannet.NodeConfig, 0, len(g.Base.Nodes))
		useBLE := rng.Float64() < g.BLEFraction
		for i := range g.Base.Nodes {
			base := &g.Base.Nodes[i]
			// Device mix: keep the first node, drop later ones at random.
			d := g.drawNode(rng, len(harvesters))
			if i > 0 && d.drop {
				continue
			}

			nc := *base // copy; the shared Sensor/Policy pointers stay read-only
			nc.PER = units.Clamp(base.PER*d.perScale, 0, 0.5)
			if useBLE {
				nc.Radio = bleFor(base, ble)
			}
			if g.BatterySpread > 0 && nc.Battery != nil {
				batt := *nc.Battery // clone before scaling a shared cell
				batt.CapacityMAh *= d.battScale
				nc.Battery = &batt
			}
			if nc.Harvester == nil && d.harvestRoll < g.HarvesterProb {
				nc.Harvester = harvesters[d.harvestPick]
			}
			if g.DrainBattery {
				nc.DrainBattery = true
			}
			cfg.Nodes = append(cfg.Nodes, nc)
		}
		return cfg, nil
	}
}

// LoadScenario compiles the generator into the coupled engine's phase-1
// fast path: the same RNG draws and node-survival decisions as Scenario,
// but only the radiative offered loads come out — no node structs, no
// battery clones, no allocation at all. Wire it to Fleet.Loads next to
// Scenario; TestLoadScenarioMatchesScenario pins the equivalence.
func (g *Generator) LoadScenario() LoadScenario {
	if err := g.Validate(); err != nil {
		return func(_ int, _ *rand.Rand, dst []spectrum.NodeLoad) ([]spectrum.NodeLoad, error) {
			return dst, err
		}
	}
	harvestN := len(energy.Harvesters())
	ble := radio.BLE42()
	return func(wearer int, rng *rand.Rand, dst []spectrum.NodeLoad) ([]spectrum.NodeLoad, error) {
		useBLE := rng.Float64() < g.BLEFraction
		for i := range g.Base.Nodes {
			base := &g.Base.Nodes[i]
			d := g.drawNode(rng, harvestN)
			if i > 0 && d.drop {
				continue
			}
			r := base.Radio
			if useBLE {
				r = bleFor(base, ble)
			}
			// PER, battery and harvester perturbations never move a
			// node's offered airtime, so the draws above are consumed
			// and discarded.
			if ppm, ok := offeredPPMWith(base, r); ok {
				dst = append(dst, spectrum.NodeLoad{BasePPM: ppm, Retries: base.MaxRetries})
			}
		}
		return dst, nil
	}
}

// DefaultBase returns the stock heterogeneous BAN used by cmd/iobfleet
// and the fleet benchmarks: an ECG patch, an IMU band with indoor-PV
// harvesting, and an ADPCM voice mic, all on Wi-R. It mirrors the
// cmd/iobsim scenario minus the camera (whose 1.15 Mbps stream would bar
// the BLE arm of a population sweep).
func DefaultBase() bannet.Config {
	return bannet.Config{Nodes: []bannet.NodeConfig{
		{
			ID: 1, Name: "ecg-patch", Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.01, MaxRetries: 5,
		},
		{
			ID: 2, Name: "imu-band", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.CR2032(), Harvester: energy.IndoorPV(),
			PacketBits: 1024, PER: 0.02, MaxRetries: 5,
		},
		{
			ID: 3, Name: "voice-mic", Sensor: sensors.MicMono(),
			Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
			Radio:  radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 4096, PER: 0.02, MaxRetries: 4,
		},
	}}
}
