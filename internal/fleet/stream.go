package fleet

import (
	"fmt"
	"io"
	"sort"

	"wiban/internal/bannet"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// Sink consumes per-wearer telemetry records. The engine guarantees
// strict wearer-index order with no gaps and serializes calls, so a Sink
// needs no locking; a Sink error aborts the sweep. Both the streaming
// aggregator and the telemetry store's Writer are Sinks, and Tee fans one
// stream into several.
//
// Records are borrowed until Consume returns: the engine reuses the
// record's storage — in particular rec.Nodes' backing array — for the
// next wearer, so a Sink that keeps any slice-typed field past the call
// must copy it. Scalar fields may be copied freely. StreamAggregator
// folds everything it needs during the call, and telemetry.Writer copies
// the node slice into its block arena; a custom Sink must follow the
// same discipline.
type Sink interface {
	Consume(rec telemetry.Record) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(rec telemetry.Record) error

// Consume calls f.
func (f SinkFunc) Consume(rec telemetry.Record) error { return f(rec) }

// Tee fans each record into every sink, in argument order, stopping at
// the first error.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(rec telemetry.Record) error {
		for _, s := range sinks {
			if err := s.Consume(rec); err != nil {
				return err
			}
		}
		return nil
	})
}

// RecordOf flattens one wearer's simulation report into its telemetry
// record — exactly the fields fleet aggregation consumes, with durations
// in seconds. The spectrum placement defaults to the uncoupled sentinel
// (cell −1); the engine's Stream overwrites it on coupled sweeps. The
// returned record owns its storage; the engine's hot path uses
// recordInto to reuse one buffer instead.
func RecordOf(wearer int, r *bannet.Report) telemetry.Record {
	var rec telemetry.Record
	recordInto(&rec, wearer, r)
	return rec
}

// recordInto is the allocation-free form of RecordOf: it overwrites
// every field of rec, reusing rec.Nodes' capacity. The engine calls it
// with one long-lived record per sweep — the Sink borrow-until-return
// contract exists exactly so this reuse is sound.
func recordInto(rec *telemetry.Record, wearer int, r *bannet.Report) {
	rec.Wearer = wearer
	rec.Events = r.Events
	rec.HubRxBits = r.HubRxBits
	rec.HubUtilization = r.HubUtilization
	rec.Cell = -1
	rec.ForeignLoadPPM = 0
	rec.EqForeignLoadPPM = 0
	rec.FeedbackIters = 0
	rec.Series = nil
	rec.Nodes = rec.Nodes[:0]
	for i := range r.Nodes {
		n := &r.Nodes[i]
		rec.Nodes = append(rec.Nodes, telemetry.NodeRecord{
			PacketsGenerated: n.PacketsGenerated,
			PacketsDelivered: n.PacketsDelivered,
			PacketsDropped:   n.PacketsDropped,
			Transmissions:    n.Transmissions,
			BitsDelivered:    n.BitsDelivered,
			ProjectedLife:    float64(n.ProjectedLife),
			LatencyP50:       float64(n.LatencyP50),
			LatencyP99:       float64(n.LatencyP99),
			Perpetual:        n.Perpetual,
			Died:             n.Died,
		})
	}
}

// StreamAggregator folds a stream of wearer records into a fleet Report
// in constant memory: totals and fractions are exact, the five population
// distributions keep exact count/min/max/mean and histogram-estimated
// percentiles (see StreamDist). It is the engine's default sink; the
// exact-percentile batch path remains available via RunReports and
// Aggregate.
type StreamAggregator struct {
	span    units.Duration
	wearers int
	nodes   int
	events  uint64

	pktGen, pktDel, pktDrop, tx, bits, hubRx int64
	perpetual, died                          int

	delivery, life, latP50, latP99, hubUtil *StreamDist

	// cells accumulates per-cell statistics of a coupled sweep, keyed by
	// cell index. Float sums run in record (wearer-index) order, which
	// the engine guarantees, so the rendered CellStats are deterministic.
	cells map[int]*cellAcc
}

// cellAcc is the running per-cell accumulator.
type cellAcc struct {
	wearers, nodes, died int
	foreignPPM           int64
	eqForeignPPM         int64
	iters                int
	deliverySum          float64
}

// NewStreamAggregator returns an empty aggregator for sweeps of the given
// per-wearer span.
func NewStreamAggregator(span units.Duration) *StreamAggregator {
	return &StreamAggregator{
		span:     span,
		delivery: NewStreamDist(0),
		life:     NewStreamDist(0),
		latP50:   NewStreamDist(0),
		latP99:   NewStreamDist(0),
		hubUtil:  NewStreamDist(0),
	}
}

// Consume folds one wearer record; it implements Sink. The derived
// figures mirror Aggregate exactly: delivery rate is 1 for idle nodes,
// latency distributions only include nodes that delivered traffic.
func (a *StreamAggregator) Consume(rec telemetry.Record) error {
	a.wearers++
	a.events += rec.Events
	a.hubRx += rec.HubRxBits
	a.hubUtil.Add(rec.HubUtilization)
	var cell *cellAcc
	if rec.Cell >= 0 {
		if a.cells == nil {
			a.cells = make(map[int]*cellAcc)
		}
		cell = a.cells[rec.Cell]
		if cell == nil {
			cell = &cellAcc{}
			a.cells[rec.Cell] = cell
		}
		cell.wearers++
		cell.foreignPPM += rec.ForeignLoadPPM
		cell.eqForeignPPM += rec.EqForeignLoadPPM
		if rec.FeedbackIters > cell.iters {
			cell.iters = rec.FeedbackIters
		}
	}
	for i := range rec.Nodes {
		n := &rec.Nodes[i]
		a.nodes++
		a.pktGen += n.PacketsGenerated
		a.pktDel += n.PacketsDelivered
		a.pktDrop += n.PacketsDropped
		a.tx += n.Transmissions
		a.bits += n.BitsDelivered
		rate := 1.0
		if n.PacketsGenerated > 0 {
			rate = float64(n.PacketsDelivered) / float64(n.PacketsGenerated)
		}
		a.delivery.Add(rate)
		a.life.Add(n.ProjectedLife / float64(units.Hour))
		if n.PacketsDelivered > 0 {
			a.latP50.Add(n.LatencyP50 * 1e3)
			a.latP99.Add(n.LatencyP99 * 1e3)
		}
		if n.Perpetual {
			a.perpetual++
		}
		if n.Died {
			a.died++
		}
		if cell != nil {
			cell.nodes++
			cell.deliverySum += rate
			if n.Died {
				cell.died++
			}
		}
	}
	return nil
}

// Wearers reports how many records have been folded in — after a replay,
// the index the interrupted sweep resumes from.
func (a *StreamAggregator) Wearers() int { return a.wearers }

// Report renders the aggregate. It may be called repeatedly; the
// aggregator keeps accepting records afterwards.
func (a *StreamAggregator) Report() *Report {
	rep := &Report{
		Wearers:          a.wearers,
		Nodes:            a.nodes,
		Span:             a.span,
		Events:           a.events,
		PacketsGenerated: a.pktGen,
		PacketsDelivered: a.pktDel,
		PacketsDropped:   a.pktDrop,
		Transmissions:    a.tx,
		BitsDelivered:    a.bits,
		HubRxBits:        a.hubRx,
		DeliveryRate:     a.delivery.Dist(),
		BatteryLifeHours: a.life.Dist(),
		LatencyP50ms:     a.latP50.Dist(),
		LatencyP99ms:     a.latP99.Dist(),
		HubUtilization:   a.hubUtil.Dist(),
	}
	if rep.Nodes > 0 {
		rep.PerpetualFraction = float64(a.perpetual) / float64(rep.Nodes)
		rep.DiedFraction = float64(a.died) / float64(rep.Nodes)
	}
	if len(a.cells) > 0 {
		ids := make([]int, 0, len(a.cells))
		for id := range a.cells {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		rep.Cells = make([]CellStat, 0, len(ids))
		for _, id := range ids {
			c := a.cells[id]
			cs := CellStat{Cell: id, Wearers: c.wearers, Nodes: c.nodes, Died: c.died, FeedbackIters: c.iters}
			cs.MeanForeignLoad = float64(c.foreignPPM) / float64(c.wearers) / 1e6
			cs.MeanEqForeignLoad = float64(c.eqForeignPPM) / float64(c.wearers) / 1e6
			if c.nodes > 0 {
				cs.MeanDelivery = c.deliverySum / float64(c.nodes)
			}
			rep.Cells = append(rep.Cells, cs)
		}
	}
	return rep
}

// Replay feeds every committed record of a store into sink, in order, and
// returns how many it fed — added to the store's first wearer, the index
// a resumed sweep starts at (a shard store's records begin at
// Meta.FirstWearer, not 0). Memory stays bounded by one telemetry block.
func Replay(r *telemetry.Reader, sink Sink) (int, error) {
	meta := r.Meta()
	first, _ := meta.Range()
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("fleet: replay: %w", err)
		}
		if rec.Wearer != first+n {
			return n, fmt.Errorf("fleet: replay: wearer %d at position %d", rec.Wearer, first+n)
		}
		if err := sink.Consume(rec); err != nil {
			return n, fmt.Errorf("fleet: replay: wearer %d: %w", n, err)
		}
		n++
	}
}
