package fleet

import (
	"fmt"
	"testing"

	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// TestStatsInert pins that attaching a Stats hook changes no simulated
// outcome: the aggregate report is byte-identical with the hook on or
// off, at any worker count.
func TestStatsInert(t *testing.T) {
	want, _, err := testFleet(60, 3, 17).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		f := testFleet(60, workers, 17)
		f.Stats = &Stats{}
		got, _, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("workers=%d: instrumented fingerprint diverged", workers)
		}
	}
}

// TestStatsCountsMatchReport pins the counters against the engine's own
// ground truth: completed wearers and kernel events must equal the
// aggregate report's, and the reorder-window gauge must return to zero
// once the sweep finishes.
func TestStatsCountsMatchReport(t *testing.T) {
	st := &Stats{}
	f := testFleet(80, 4, 5)
	f.Stats = st
	rep, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Wearers.Load(); got != int64(rep.Wearers) {
		t.Errorf("Wearers counter %d, report says %d", got, rep.Wearers)
	}
	if got := st.Events.Load(); got != rep.Events {
		t.Errorf("Events counter %d, report says %d", got, rep.Events)
	}
	if got := st.WindowDepth.Load(); got != 0 {
		t.Errorf("WindowDepth %d after sweep, want 0", got)
	}
	// Counters are monotone across sweeps: a second run on the same Stats
	// accumulates, never resets.
	if _, _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if got := st.Wearers.Load(); got != 2*int64(rep.Wearers) {
		t.Errorf("Wearers counter %d after two sweeps, want %d", got, 2*rep.Wearers)
	}
}

// TestStatsPhase1AndEquilibrium pins the coupled-engine counters: a
// feedback sweep records gather and solve time plus one equilibrium
// round count per cell, and the iteration total — a pure function of the
// gathered loads — is identical at any worker count.
func TestStatsPhase1AndEquilibrium(t *testing.T) {
	run := func(workers int) *Stats {
		st := &Stats{}
		f := testFleet(60, workers, 9)
		f.Loads = testGenerator().LoadScenario()
		f.Coupling = &Coupling{Cells: 4, Feedback: true}
		f.Stats = st
		if _, _, err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := run(1)
	if a.Phase1GatherNS.Load() <= 0 {
		t.Error("feedback sweep recorded no gather time")
	}
	if a.Phase1SolveNS.Load() <= 0 {
		t.Error("feedback sweep recorded no solve time")
	}
	if got := a.EquilibriumCells.Load(); got != 4 {
		t.Errorf("EquilibriumCells %d, want 4", got)
	}
	if a.EquilibriumIters.Load() <= 0 {
		t.Error("contending cells converged in zero recorded iterations")
	}
	b := run(4)
	if a.EquilibriumIters.Load() != b.EquilibriumIters.Load() {
		t.Errorf("equilibrium iterations depend on worker count: %d vs %d",
			a.EquilibriumIters.Load(), b.EquilibriumIters.Load())
	}

	// First-order couplings gather but never solve.
	st := &Stats{}
	f := testFleet(40, 2, 9)
	f.Loads = testGenerator().LoadScenario()
	f.Coupling = &Coupling{Cells: 4}
	f.Stats = st
	if _, _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Phase1GatherNS.Load() <= 0 {
		t.Error("first-order coupled sweep recorded no gather time")
	}
	if st.Phase1SolveNS.Load() != 0 || st.EquilibriumCells.Load() != 0 {
		t.Errorf("first-order sweep recorded a solve: solveNS=%d cells=%d",
			st.Phase1SolveNS.Load(), st.EquilibriumCells.Load())
	}
}

// TestStatsWindowDrainsOnAbort pins the gauge cleanup on the failure
// path: a sink that aborts mid-sweep strands parked reports, and the
// engine must release them from WindowDepth before returning.
func TestStatsWindowDrainsOnAbort(t *testing.T) {
	st := &Stats{}
	f := testFleet(60, 4, 3)
	f.Stats = st
	seen := 0
	killer := SinkFunc(func(rec telemetry.Record) error {
		if seen == 20 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return nil
	})
	if _, err := f.Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if got := st.WindowDepth.Load(); got != 0 {
		t.Errorf("WindowDepth %d after aborted sweep, want 0", got)
	}
}

// TestStatsNilSafe pins that the unexported helpers tolerate a nil
// receiver — the engine calls them unconditionally on the hot path.
func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.wearerDone(10)
	s.windowAdd(1)
	f := testFleet(10, 2, 1)
	f.Span = 5 * units.Second
	if _, _, err := f.Run(); err != nil { // Stats nil: the default path
		t.Fatal(err)
	}
}
