package fleet

// Fleet-level contracts of in-run series sampling (Fleet.Series): the
// sampler is inert — enabling it changes no simulated outcome — and the
// series-carrying store inherits every determinism guarantee the record
// store already had: byte-identical across worker counts and across
// kill/resume, with the series-off byte stream pinned to a pre-series
// golden hash.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// seriesStoreMeta lifts storeMeta to a series-enabled v3 store matching
// the fleet's cadence.
func seriesStoreMeta(f *Fleet, blockSize int) telemetry.Meta {
	m := storeMeta(f, blockSize)
	m.Version = telemetry.FormatV3
	m.SeriesCadenceSeconds = float64(f.Series)
	return m
}

// streamSeriesStore runs f into a fresh series store and returns the
// file bytes plus the live fingerprint.
func streamSeriesStore(t *testing.T, f *Fleet, blockSize int) ([]byte, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "series.wtl")
	store, err := telemetry.Create(path, seriesStoreMeta(f, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	agg := NewStreamAggregator(f.Span)
	if _, err := f.Stream(Tee(store, agg)); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, agg.Report().Fingerprint()
}

// TestFleetSeriesInert: turning sampling on must not move a single bit
// of the aggregate — it rides the existing superframe tick and draws no
// randomness.
func TestFleetSeriesInert(t *testing.T) {
	off, _, err := testFleet(40, 4, 9).Run()
	if err != nil {
		t.Fatal(err)
	}
	fs := testFleet(40, 4, 9)
	fs.Series = units.Second / 2
	on, _, err := fs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if off.Fingerprint() != on.Fingerprint() {
		t.Fatal("series sampling perturbed the aggregate report")
	}
}

// TestFleetSeriesWorkerInvariance: the series-carrying store — samples
// included — is byte-identical for any worker count, because samples are
// generated inside each wearer's own kernel and emitted through the same
// in-order reorder window as the records.
func TestFleetSeriesWorkerInvariance(t *testing.T) {
	const wearers, blockSize = 48, 16
	var want []byte
	var wantFP string
	for _, workers := range []int{1, 3, 8} {
		f := testFleet(wearers, workers, 21)
		f.Series = units.Second / 2
		data, fp := streamSeriesStore(t, f, blockSize)
		if want == nil {
			want, wantFP = data, fp
			continue
		}
		if fp != wantFP {
			t.Fatalf("workers=%d: fingerprint diverged", workers)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("workers=%d: series store differs from workers=1 (%d vs %d bytes)",
				workers, len(data), len(want))
		}
	}
}

// TestFleetSeriesResumeGolden kills a series sweep mid-block, resumes it
// from the checkpoint, and demands both the fingerprint and the stored
// bytes — series frames and regenerated index included — match an
// uninterrupted run exactly.
func TestFleetSeriesResumeGolden(t *testing.T) {
	const wearers, blockSize, killAfter = 90, 16, 40
	ref := testFleet(wearers, 4, 77)
	ref.Series = units.Second / 2
	want, wantFP := streamSeriesStore(t, ref, blockSize)

	path := filepath.Join(t.TempDir(), "killed.wtl")
	f := testFleet(wearers, 4, 77)
	f.Series = units.Second / 2
	store, err := telemetry.Create(path, seriesStoreMeta(f, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := SinkFunc(func(rec telemetry.Record) error {
		if seen == killAfter {
			return errKilled
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := f.Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort the sweep")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}

	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if wantNext := (killAfter / blockSize) * blockSize; resumed.NextWearer() != wantNext {
		t.Fatalf("resume at wearer %d, want %d", resumed.NextWearer(), wantNext)
	}
	agg := NewStreamAggregator(f.Span)
	reader, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(reader, agg)
	reader.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != resumed.NextWearer() {
		t.Fatalf("replayed %d records, checkpoint says %d", replayed, resumed.NextWearer())
	}
	f2 := testFleet(wearers, 4, 77)
	f2.Series = units.Second / 2
	f2.Start = resumed.NextWearer()
	if _, err := f2.Stream(Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != wantFP {
		t.Fatal("resumed series sweep fingerprint diverged")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed series store differs from uninterrupted one (%d vs %d bytes)", len(got), len(want))
	}
}

// TestFleetStoreByteGoldenV2 pins the end-to-end series-off byte stream
// — engine, record flattening, v2 encoder, checkpointing — to the hash
// recorded before series support existed. Every store written by
// earlier releases must keep resuming and replaying against this code.
func TestFleetStoreByteGoldenV2(t *testing.T) {
	const (
		goldenSHA = "6c75f5b211f4c243bfe04484f0404cd6bd58ba46ab8b9c11900553c8df072849"
		goldenLen = 8913
	)
	path := filepath.Join(t.TempDir(), "golden.wtl")
	f := testFleet(90, 4, 77)
	meta := storeMeta(f, 16)
	meta.Version = telemetry.FormatV2
	store, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stream(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if len(data) != goldenLen || hex.EncodeToString(sum[:]) != goldenSHA {
		t.Fatalf("series-off fleet store drifted: %d bytes, sha256 %s (want %d, %s)",
			len(data), hex.EncodeToString(sum[:]), goldenLen, goldenSHA)
	}
}

// TestFleetSeriesStoreRefusal: a fleet sampling series must be paired
// with a series-enabled store — the writer refuses rather than silently
// dropping the samples.
func TestFleetSeriesStoreRefusal(t *testing.T) {
	f := testFleet(8, 2, 3)
	f.Series = units.Second
	path := filepath.Join(t.TempDir(), "refuse.wtl")
	store, err := telemetry.Create(path, storeMeta(f, 4)) // v0: no series frames
	if err != nil {
		t.Fatal(err)
	}
	defer store.Abort()
	if _, err := f.Stream(store); err == nil {
		t.Fatal("series records accepted by a series-off store")
	}
}
