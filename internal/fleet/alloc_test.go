package fleet

// Zero-allocation hot-path regression suite for the reusable-kernel
// engine: the per-wearer steady state must stay allocation-lean (the
// kernel itself allocation-free), the fresh-kernel benchmark knob must be
// physics-identical to the arena path, and the Generator's phase-1 load
// pass must be draw-for-draw equivalent to full scenario generation.

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// TestFreshKernelsMatchesReuse pins that recycling kernels, RNGs and
// report buffers changed allocation lifetime only: the freshKernels knob
// rebuilds everything per wearer (the pre-arena engine) and must produce
// a byte-identical aggregate — including through the coupled two-phase
// path, whose interference stamping shares the worker scratch.
func TestFreshKernelsMatchesReuse(t *testing.T) {
	for name, coupled := range map[string]bool{"uncoupled": false, "coupled": true} {
		t.Run(name, func(t *testing.T) {
			mk := func(fresh bool) *Fleet {
				f := testFleet(120, 4, 13)
				if coupled {
					f.Coupling = &Coupling{Cells: 8}
				}
				f.freshKernels = fresh
				return f
			}
			reuse, _, err := mk(false).Run()
			if err != nil {
				t.Fatal(err)
			}
			fresh, _, err := mk(true).Run()
			if err != nil {
				t.Fatal(err)
			}
			jr, _ := json.Marshal(reuse)
			jf, _ := json.Marshal(fresh)
			if string(jr) != string(jf) {
				t.Fatalf("arena reuse diverged from fresh kernels:\n%s\n%s", jr, jf)
			}
		})
	}
}

// TestLoadScenarioMatchesScenario pins the Generator's two compiled
// forms to each other: for every wearer, the load pass must see the
// identical radiative node loads the full scenario would produce —
// across BLE mixes, node dropping and every spread knob — or the coupled
// engine's two phases would explore different populations.
func TestLoadScenarioMatchesScenario(t *testing.T) {
	gens := map[string]*Generator{
		"default": {Base: DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3,
			HarvesterProb: 0.3, DropNodeProb: 0.25, BLEFraction: 0.25},
		"all-ble":    {Base: DefaultBase(), BLEFraction: 1},
		"no-perturb": {Base: DefaultBase()},
		"heavy-drop": {Base: DefaultBase(), DropNodeProb: 0.9, BLEFraction: 0.5, DrainBattery: true},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			scen := gen.Scenario()
			loads := gen.LoadScenario()
			for w := 0; w < 300; w++ {
				seed := int64(w * 7)
				cfg, err := scen(w, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				want := appendNodeLoads(nil, &cfg)
				got, err := loads(w, rand.New(rand.NewSource(seed)), nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("wearer %d: load pass found %d radiative nodes, scenario %d", w, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("wearer %d node %d: load pass %+v, scenario %+v", w, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestCoupledLoadsFastPathFingerprint: wiring Fleet.Loads must not move
// a byte of the coupled (and feedback) aggregate — the fast path is an
// equivalent computation, not a different one.
func TestCoupledLoadsFastPathFingerprint(t *testing.T) {
	gen := &Generator{Base: DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3,
		HarvesterProb: 0.3, DropNodeProb: 0.25, BLEFraction: 0.5}
	for name, feedback := range map[string]bool{"first-order": false, "feedback": true} {
		t.Run(name, func(t *testing.T) {
			mk := func(fast bool) *Fleet {
				f := &Fleet{
					Wearers: 90, Seed: 23, Scenario: gen.Scenario(),
					Span: 10 * units.Second, Workers: 4,
					Coupling: &Coupling{Cells: 6, Feedback: feedback},
				}
				if fast {
					f.Loads = gen.LoadScenario()
				}
				return f
			}
			slow, _, err := mk(false).Run()
			if err != nil {
				t.Fatal(err)
			}
			fast, _, err := mk(true).Run()
			if err != nil {
				t.Fatal(err)
			}
			js, _ := json.Marshal(slow)
			jf, _ := json.Marshal(fast)
			if string(js) != string(jf) {
				t.Fatalf("Loads fast path diverged from scenario-generating phase 1:\n%s\n%s", js, jf)
			}
		})
	}
}

// TestLoadScenarioInvalidGenerator: an invalid generator's load pass
// fails on first use, mirroring Scenario.
func TestLoadScenarioInvalidGenerator(t *testing.T) {
	bad := &Generator{} // no base nodes
	if _, err := bad.LoadScenario()(0, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("invalid generator's load pass did not fail")
	}
}

// TestFleetSteadyStateAllocBudget pins the engine's marginal per-wearer
// allocation cost. The kernel path is allocation-free; what remains is
// scenario generation (the node slice and battery clones the Scenario
// API hands over by value) plus aggregation noise. The pre-arena engine
// spent ~2,000 allocations and ~145 KB per wearer; the budget here is
// two orders of magnitude below that, with slack so the test pins the
// architecture, not the runtime version.
func TestFleetSteadyStateAllocBudget(t *testing.T) {
	sweep := func(wearers int) func() {
		return func() {
			f := testFleet(wearers, 1, 42)
			f.Span = 2 * units.Second
			if _, _, err := f.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	sweep(140)() // warm any lazy runtime state
	small := testing.AllocsPerRun(3, sweep(40))
	large := testing.AllocsPerRun(3, sweep(140))
	perWearer := (large - small) / 100
	t.Logf("marginal allocations per wearer: %.1f (40-wearer sweep %.0f, 140-wearer sweep %.0f)", perWearer, small, large)
	const budget = 10
	if perWearer > budget {
		t.Errorf("steady-state engine allocates %.1f times per wearer, budget %d — per-wearer churn crept back in", perWearer, budget)
	}
}

// TestCoupledPhase1AllocBudget pins phase 1's marginal cost with the
// load-pass fast path wired: the offered-load reduction must not
// regenerate per-wearer garbage (it was two allocations and ~5 KB of
// fresh RNG per wearer before the scratch existed).
func TestCoupledPhase1AllocBudget(t *testing.T) {
	gen := &Generator{Base: DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3,
		HarvesterProb: 0.3, DropNodeProb: 0.25, BLEFraction: 0.5}
	phase1Only := func(wearers int) func() {
		return func() {
			f := &Fleet{
				Wearers: wearers, Seed: 5, Scenario: gen.Scenario(),
				Loads: gen.LoadScenario(), Span: units.Second, Workers: 1,
				Coupling: &Coupling{Cells: 16},
			}
			if err := f.Coupling.validate(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.offeredLoads(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	phase1Only(600)()
	small := testing.AllocsPerRun(5, phase1Only(100))
	large := testing.AllocsPerRun(5, phase1Only(600))
	perWearer := (large - small) / 500
	t.Logf("phase-1 marginal allocations per wearer: %.2f", perWearer)
	if perWearer > 1 {
		t.Errorf("phase 1 allocates %.2f times per wearer with the load fast path, want ≤ 1", perWearer)
	}
}

// TestRecordOfMatchesRecordInto pins the exported one-shot flattening to
// the engine's buffer-reusing form: same report, same record — including
// that recordInto fully overwrites a dirty reused buffer (stale nodes,
// stale spectrum placement) rather than merging into it.
func TestRecordOfMatchesRecordInto(t *testing.T) {
	cfg := DefaultBase()
	cfg.Seed = 9
	rep, err := bannet.Run(cfg, 5*units.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := RecordOf(3, rep)
	dirty := telemetry.Record{
		Wearer: 99, Cell: 7, ForeignLoadPPM: 1, EqForeignLoadPPM: 2, FeedbackIters: 3,
		Nodes: make([]telemetry.NodeRecord, 8),
	}
	recordInto(&dirty, 3, rep)
	if len(dirty.Nodes) != len(want.Nodes) {
		t.Fatalf("recordInto kept %d nodes, want %d", len(dirty.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		if dirty.Nodes[i] != want.Nodes[i] {
			t.Fatalf("node %d diverged: %+v vs %+v", i, dirty.Nodes[i], want.Nodes[i])
		}
	}
	dirty.Nodes, want.Nodes = nil, nil
	if !reflect.DeepEqual(dirty, want) {
		t.Fatalf("recordInto left stale scalar fields: %+v vs %+v", dirty, want)
	}
}
