package fleet

import (
	"math"
	"strings"
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/units"
)

// TestDist checks the summary statistics on a known sample.
func TestDist(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(99 - i) // reversed, so NewDist must sort
	}
	d := NewDist(samples)
	if d.N != 100 || d.Min != 0 || d.Max != 99 {
		t.Fatalf("N/Min/Max = %d/%v/%v", d.N, d.Min, d.Max)
	}
	if d.Mean != 49.5 {
		t.Errorf("Mean = %v, want 49.5", d.Mean)
	}
	if d.P10 != 10 || d.P50 != 50 || d.P90 != 90 || d.P99 != 99 {
		t.Errorf("percentiles = %v/%v/%v/%v, want 10/50/90/99", d.P10, d.P50, d.P90, d.P99)
	}
	if zero := NewDist(nil); zero.N != 0 || zero.String() != "n=0" {
		t.Errorf("empty Dist = %+v (%q)", zero, zero.String())
	}
}

// TestAggregate merges two hand-built reports and checks every derived
// figure.
func TestAggregate(t *testing.T) {
	r1 := &bannet.Report{
		Events: 100, HubRxBits: 8000, HubUtilization: 0.5,
		Nodes: []bannet.NodeStats{
			{Name: "a", PacketsGenerated: 10, PacketsDelivered: 9, PacketsDropped: 1,
				Transmissions: 12, BitsDelivered: 9000, ProjectedLife: 2 * units.Hour,
				LatencyP50: 10 * units.Millisecond, LatencyP99: 20 * units.Millisecond,
				Perpetual: true},
		},
	}
	r2 := &bannet.Report{
		Events: 50, HubRxBits: 4000, HubUtilization: 0.25,
		Nodes: []bannet.NodeStats{
			{Name: "b", PacketsGenerated: 4, PacketsDelivered: 2, PacketsDropped: 2,
				Transmissions: 6, BitsDelivered: 2000, ProjectedLife: 4 * units.Hour,
				LatencyP50: 30 * units.Millisecond, LatencyP99: 40 * units.Millisecond,
				Died: true},
			{Name: "idle", ProjectedLife: 6 * units.Hour}, // no traffic: excluded from latency dists
		},
	}
	rep := Aggregate(units.Minute, []*bannet.Report{r1, r2})
	if rep.Wearers != 2 || rep.Nodes != 3 || rep.Events != 150 || rep.HubRxBits != 12000 {
		t.Fatalf("headline: %+v", rep)
	}
	if rep.PacketsGenerated != 14 || rep.PacketsDelivered != 11 ||
		rep.PacketsDropped != 3 || rep.Transmissions != 18 || rep.BitsDelivered != 11000 {
		t.Fatalf("traffic totals: %+v", rep)
	}
	if rep.DeliveryRate.N != 3 || rep.DeliveryRate.Min != 0.5 || rep.DeliveryRate.Max != 1 {
		t.Errorf("delivery dist: %+v", rep.DeliveryRate)
	}
	if rep.LatencyP50ms.N != 2 || rep.LatencyP50ms.Min != 10 || rep.LatencyP50ms.Max != 30 {
		t.Errorf("latency p50 dist: %+v", rep.LatencyP50ms)
	}
	if rep.BatteryLifeHours.Min != 2 || rep.BatteryLifeHours.Max != 6 {
		t.Errorf("battery dist: %+v", rep.BatteryLifeHours)
	}
	if math.Abs(rep.PerpetualFraction-1.0/3) > 1e-12 || math.Abs(rep.DiedFraction-1.0/3) > 1e-12 {
		t.Errorf("fractions: perpetual %v died %v", rep.PerpetualFraction, rep.DiedFraction)
	}
	if rep.HubUtilization.Mean != 0.375 {
		t.Errorf("hub utilization mean = %v", rep.HubUtilization.Mean)
	}
	if s := rep.String(); !strings.Contains(s, "2 wearers, 3 nodes") {
		t.Errorf("String() = %q", s)
	}
	if len(rep.Fingerprint()) != 64 {
		t.Errorf("fingerprint length %d", len(rep.Fingerprint()))
	}
}
