package fleet

// Tests for the feedback-coupled (equilibrium) engine: closing the
// collision→retry→offered-load loop must not cost any determinism
// contract — worker invariance and kill/resume goldens mirror the
// first-order coupled suite — and switching feedback off must leave the
// engine bit-identical to the first-order two-phase engine, so every
// pre-feedback fingerprint and v1 store replays unchanged.

import (
	"encoding/json"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// feedbackFleet is coupledFleet with the feedback loop closed.
func feedbackFleet(wearers, workers int, seed int64, cells int) *Fleet {
	f := coupledFleet(wearers, workers, seed, cells)
	f.Coupling.Feedback = true
	return f
}

// TestFeedbackParallelismInvariance is the feedback determinism
// criterion: the equilibrium sweep's aggregate report — including the
// per-cell equilibrium loads and iteration counts — is byte-identical
// across worker counts.
func TestFeedbackParallelismInvariance(t *testing.T) {
	serial, _, err := feedbackFleet(120, 1, 99, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(serial)
	if len(serial.Cells) == 0 {
		t.Fatal("feedback sweep produced no cell stats")
	}
	var sawEq bool
	for _, c := range serial.Cells {
		if c.MeanEqForeignLoad < c.MeanForeignLoad {
			t.Fatalf("cell %d: equilibrium load %g below first-order %g",
				c.Cell, c.MeanEqForeignLoad, c.MeanForeignLoad)
		}
		if c.MeanEqForeignLoad > c.MeanForeignLoad {
			sawEq = true
		}
	}
	if !sawEq {
		t.Fatal("no cell's equilibrium load exceeded first-order — the feedback loop did nothing")
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		par, perf, err := feedbackFleet(120, workers, 99, 8).Run()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(par)
		if string(got) != string(want) {
			t.Fatalf("workers=%d diverged from workers=1 (%v)", workers, perf)
		}
	}
	// The feedback loop must be part of the fingerprint: the same sweep
	// first-order couples to a different report.
	firstOrder, _, err := coupledFleet(120, 4, 99, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if firstOrder.Fingerprint() == serial.Fingerprint() {
		t.Fatal("closing the feedback loop does not affect the fingerprint")
	}
}

// TestFeedbackResumeGolden extends the kill/resume golden to the
// equilibrium engine: kill a feedback sweep at and inside a block
// boundary, resume from the checkpoint, and demand the exact
// uninterrupted fingerprint — then re-derive it from the store alone,
// which requires the v2 equilibrium columns to replay.
func TestFeedbackResumeGolden(t *testing.T) {
	const wearers, cells, blockSize = 90, 6, 16
	mk := func() *Fleet { return feedbackFleet(wearers, 4, 77, cells) }

	want, _, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	meta := telemetry.Meta{
		FleetSeed:   77,
		Wearers:     wearers,
		SpanSeconds: float64(30 * units.Second),
		Scenario:    "feedbackTestFleet;" + mk().Coupling.Tag(),
		BlockSize:   blockSize,
		Version:     telemetry.CurrentFormat,
		Cells:       cells,
		Feedback:    true,
	}

	for _, kill := range []struct {
		name  string
		after int
	}{
		{"at block boundary", 32},
		{"mid-block", 41},
	} {
		t.Run(kill.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "feedback.wtl")
			store, err := telemetry.Create(path, meta)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			killer := SinkFunc(func(rec telemetry.Record) error {
				if seen == kill.after {
					return errKilled
				}
				seen++
				return store.Consume(rec)
			})
			if _, err := mk().Stream(killer); err == nil {
				t.Fatal("kill-sink did not abort the sweep")
			}
			if err := store.Abort(); err != nil {
				t.Fatal(err)
			}

			resumed, err := telemetry.Resume(path)
			if err != nil {
				t.Fatal(err)
			}
			if wantNext := (kill.after / blockSize) * blockSize; resumed.NextWearer() != wantNext {
				t.Fatalf("resume at wearer %d, want %d", resumed.NextWearer(), wantNext)
			}
			agg := NewStreamAggregator(30 * units.Second)
			reader, err := telemetry.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := Replay(reader, agg)
			reader.Close()
			if err != nil {
				t.Fatal(err)
			}
			if replayed != resumed.NextWearer() {
				t.Fatalf("replayed %d records, checkpoint says %d", replayed, resumed.NextWearer())
			}
			f2 := mk()
			f2.Start = resumed.NextWearer()
			if _, err := f2.Stream(Tee(resumed, agg)); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Close(); err != nil {
				t.Fatal(err)
			}
			if got := agg.Report(); got.Fingerprint() != want.Fingerprint() {
				t.Fatal("resumed feedback sweep diverged from uninterrupted run")
			}
			if got := reaggregate(t, path, 30*units.Second); got.Fingerprint() != want.Fingerprint() {
				t.Fatal("re-aggregation from the feedback store diverged")
			}
		})
	}
}

// TestFeedbackRecordsDominateFirstOrder checks the per-record
// monotonicity the property test asserts at the solver level, end to
// end through the engine: every record's equilibrium foreign load is at
// least its first-order one, and crowded cells report fixed-point
// rounds.
func TestFeedbackRecordsDominateFirstOrder(t *testing.T) {
	f := feedbackFleet(96, 4, 7, 3)
	sawIters := false
	sink := SinkFunc(func(rec telemetry.Record) error {
		if rec.EqForeignLoadPPM < rec.ForeignLoadPPM {
			t.Errorf("wearer %d: equilibrium foreign %d below first-order %d",
				rec.Wearer, rec.EqForeignLoadPPM, rec.ForeignLoadPPM)
		}
		if rec.FeedbackIters > 0 {
			sawIters = true
		}
		return nil
	})
	if _, err := f.Stream(sink); err != nil {
		t.Fatal(err)
	}
	if !sawIters {
		t.Fatal("no record reported fixed-point rounds in a 32-wearers-per-cell sweep")
	}
}

// TestFeedbackOffKeepsFirstOrderOutput pins the backward-compatibility
// acceptance criterion structurally: a first-order coupled report's
// fingerprint JSON carries no equilibrium fields at all (they are
// omitempty-zero), so every pre-feedback fingerprint replays unchanged,
// and its records carry zero equilibrium columns, so a v1 store layout
// still represents the sweep.
func TestFeedbackOffKeepsFirstOrderOutput(t *testing.T) {
	f := coupledFleet(60, 4, 5, 4)
	sink := SinkFunc(func(rec telemetry.Record) error {
		if rec.EqForeignLoadPPM != 0 || rec.FeedbackIters != 0 {
			t.Errorf("wearer %d: first-order sweep emitted equilibrium data (%d PPM, %d rounds)",
				rec.Wearer, rec.EqForeignLoadPPM, rec.FeedbackIters)
		}
		return nil
	})
	agg := NewStreamAggregator(f.Span)
	if _, err := f.Stream(Tee(agg, sink)); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"MeanEqForeignLoad", "FeedbackIters"} {
		if strings.Contains(string(blob), field) {
			t.Errorf("first-order report JSON carries %q — pre-feedback fingerprints would all change", field)
		}
	}
}

// TestFeedbackIsolatedMatchesUncoupledPhysics: with every wearer alone
// in its cell the fixed point is trivial (zero foreign load, zero
// rounds), so the feedback engine must reproduce uncoupled physics
// exactly — the equilibrium refinement is pure interference too.
func TestFeedbackIsolatedMatchesUncoupledPhysics(t *testing.T) {
	const wearers = 24
	f := feedbackFleet(wearers, 4, 3, 1<<20)
	seen := map[int]bool{}
	for w := 0; w < wearers; w++ {
		c := f.cellOf(w)
		if seen[c] {
			t.Fatalf("wearers collide in cell %d; pick another seed for this test", c)
		}
		seen[c] = true
	}
	coupled, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	un := coupledFleet(wearers, 4, 3, 1)
	un.Coupling = nil
	uncoupled, _, err := un.Run()
	if err != nil {
		t.Fatal(err)
	}
	if coupled.PacketsDelivered != uncoupled.PacketsDelivered ||
		coupled.PacketsDropped != uncoupled.PacketsDropped ||
		coupled.Events != uncoupled.Events ||
		coupled.DeliveryRate != uncoupled.DeliveryRate ||
		coupled.BatteryLifeHours != uncoupled.BatteryLifeHours {
		t.Fatalf("isolated feedback sweep diverged from uncoupled physics:\n%+v\n%+v", coupled, uncoupled)
	}
	for _, c := range coupled.Cells {
		if c.MeanForeignLoad != 0 || c.MeanEqForeignLoad != 0 || c.FeedbackIters != 0 {
			t.Fatalf("isolated cell %d reports interference %+v", c.Cell, c)
		}
	}
}

// TestFeedbackValidation covers the solver knobs' guard rails through
// the engine.
func TestFeedbackValidation(t *testing.T) {
	f := feedbackFleet(10, 2, 1, 4)
	f.Coupling.MaxIters = -1
	if _, _, err := f.Run(); err == nil {
		t.Error("negative iteration cap accepted")
	}
	f = feedbackFleet(10, 2, 1, 4)
	f.Coupling.TolPPM = -5
	if _, _, err := f.Run(); err == nil {
		t.Error("negative tolerance accepted")
	}
}

// TestFeedbackTagDistinguishesKnobs: the telemetry scenario tag must
// tell a feedback sweep (and its knobs) apart from a first-order one,
// or resume could splice different interference regimes into one store
// — while the first-order tag stays byte-identical to the pre-feedback
// one so v1 stores keep resuming.
func TestFeedbackTagDistinguishesKnobs(t *testing.T) {
	first := coupledFleet(10, 1, 1, 4).Coupling
	if got, want := first.Tag(), "cells=4;csma:beta=2,cap=0.95"; got != want {
		t.Fatalf("first-order tag %q, want the pre-feedback %q", got, want)
	}
	fb := feedbackFleet(10, 1, 1, 4).Coupling
	if fb.Tag() == first.Tag() {
		t.Fatal("feedback tag equals first-order tag")
	}
	loose := feedbackFleet(10, 1, 1, 4).Coupling
	loose.TolPPM = 1000
	if loose.Tag() == fb.Tag() {
		t.Fatal("tolerance knob missing from the tag")
	}
	capped := feedbackFleet(10, 1, 1, 4).Coupling
	capped.MaxIters = 3
	if capped.Tag() == fb.Tag() {
		t.Fatal("iteration-cap knob missing from the tag")
	}
}
