package fleet

// End-to-end golden test for the telemetry store: a sweep streamed to
// disk, killed mid-run, resumed from the checkpoint, must finish with the
// exact fingerprint of an uninterrupted sweep — and the stored file alone
// must re-derive that same report.

import (
	"fmt"
	"path/filepath"
	"testing"

	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// errKilled is the sentinel the kill-sink aborts the sweep with.
var errKilled = fmt.Errorf("simulated kill")

// storeMeta builds the telemetry meta for a test fleet.
func storeMeta(f *Fleet, blockSize int) telemetry.Meta {
	return telemetry.Meta{
		FleetSeed:   f.Seed,
		Wearers:     f.Wearers,
		SpanSeconds: float64(f.Span),
		Scenario:    "testFleet",
		BlockSize:   blockSize,
	}
}

// reaggregate replays the whole store into a fresh aggregator — the
// iobtrace `report` path — and returns the report.
func reaggregate(t *testing.T, path string, span units.Duration) *Report {
	t.Helper()
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	agg := NewStreamAggregator(span)
	if _, err := Replay(r, agg); err != nil {
		t.Fatal(err)
	}
	return agg.Report()
}

// TestResumeGolden is the acceptance scenario. For kills exactly on a
// block boundary and mid-block: run a sweep into a telemetry store,
// abort after K records (losing any unflushed tail, like a real kill),
// resume from the checkpoint, and demand the final fingerprint equal the
// uninterrupted run's — then re-derive the same report from the file
// alone.
func TestResumeGolden(t *testing.T) {
	const wearers, blockSize = 90, 16

	// Reference: uninterrupted streamed sweep.
	want, _, err := testFleet(wearers, 4, 77).Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, kill := range []struct {
		name  string
		after int // records consumed before the "kill"
	}{
		{"at block boundary", 32}, // 2 full blocks committed, buffer empty
		{"mid-block", 40},         // 8 buffered records lost with the kill
	} {
		t.Run(kill.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.wtl")
			f := testFleet(wearers, 4, 77)
			store, err := telemetry.Create(path, storeMeta(f, blockSize))
			if err != nil {
				t.Fatal(err)
			}
			// First leg: stream into the store, die after `after` records.
			seen := 0
			killer := SinkFunc(func(rec telemetry.Record) error {
				if seen == kill.after {
					return errKilled
				}
				seen++
				return store.Consume(rec)
			})
			if _, err := f.Stream(killer); err == nil {
				t.Fatal("kill-sink did not abort the sweep")
			}
			if err := store.Abort(); err != nil { // kill: no flush, no final checkpoint
				t.Fatal(err)
			}

			// Second leg: resume from the checkpoint and finish.
			resumed, err := telemetry.Resume(path)
			if err != nil {
				t.Fatal(err)
			}
			wantNext := (kill.after / blockSize) * blockSize // committed blocks only
			if resumed.NextWearer() != wantNext {
				t.Fatalf("resume at wearer %d, want %d", resumed.NextWearer(), wantNext)
			}
			agg := NewStreamAggregator(f.Span)
			reader, err := telemetry.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := Replay(reader, agg)
			reader.Close()
			if err != nil {
				t.Fatal(err)
			}
			if replayed != resumed.NextWearer() {
				t.Fatalf("replayed %d records, checkpoint says %d", replayed, resumed.NextWearer())
			}
			f2 := testFleet(wearers, 4, 77)
			f2.Start = resumed.NextWearer()
			if _, err := f2.Stream(Tee(resumed, agg)); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Close(); err != nil {
				t.Fatal(err)
			}

			if got := agg.Report(); got.Fingerprint() != want.Fingerprint() {
				t.Fatal("resumed sweep fingerprint diverged from uninterrupted run")
			}
			// The stored file alone re-derives the identical report.
			if got := reaggregate(t, path, f.Span); got.Fingerprint() != want.Fingerprint() {
				t.Fatal("re-aggregation from the telemetry store diverged")
			}
		})
	}
}

// TestStreamed100k is the scale criterion: a 100k-wearer sweep streamed
// through the telemetry sink, with the reorder window — not the fleet —
// bounding live reports, and the stored file re-deriving the exact
// fingerprint. ~2 simulated seconds per wearer keeps it a few wall-clock
// seconds per core.
func TestStreamed100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-wearer sweep in -short mode")
	}
	const wearers = 100_000
	f := testFleet(wearers, 0, 123)
	f.Span = 2 * units.Second
	path := filepath.Join(t.TempDir(), "100k.wtl")
	store, err := telemetry.Create(path, storeMeta(f, 0))
	if err != nil {
		t.Fatal(err)
	}
	agg := NewStreamAggregator(f.Span)
	perf, err := f.Stream(Tee(store, agg))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	rep := agg.Report()
	if rep.Wearers != wearers {
		t.Fatalf("aggregated %d wearers", rep.Wearers)
	}
	// O(1) in fleet size: live reports never exceeded the reorder
	// window, which depends only on the worker count.
	if bound := 4 * perf.Workers; perf.MaxPending > bound {
		t.Fatalf("window peaked at %d pending reports (bound %d) — streaming broke", perf.MaxPending, bound)
	}
	t.Logf("100k sweep: %v; store %d blocks", perf, store.Blocks())

	if got := reaggregate(t, path, f.Span); got.Fingerprint() != rep.Fingerprint() {
		t.Fatal("stored 100k run did not re-derive the live fingerprint")
	}
}
