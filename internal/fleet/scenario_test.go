package fleet

import (
	"math/rand"
	"testing"

	"wiban/internal/radio"
)

func wearerRNG(seed int64, wearer uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(wearer)*7919 + seed))
}

// TestGeneratorExtremes drives each perturbation axis at its limit, where
// behavior is exactly predictable.
func TestGeneratorExtremes(t *testing.T) {
	base := DefaultBase()

	t.Run("drop-all keeps primary node", func(t *testing.T) {
		g := &Generator{Base: base, DropNodeProb: 1}
		cfg, err := g.Scenario()(0, wearerRNG(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Nodes) != 1 || cfg.Nodes[0].Name != base.Nodes[0].Name {
			t.Fatalf("nodes = %d, want only the primary %q", len(cfg.Nodes), base.Nodes[0].Name)
		}
	})

	t.Run("full BLE fraction swaps fitting radios", func(t *testing.T) {
		g := &Generator{Base: base, BLEFraction: 1}
		cfg, err := g.Scenario()(0, wearerRNG(2, 0))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range cfg.Nodes {
			fits := n.Policy.OutputRate(n.Sensor.DataRate()) <= radio.BLE42().Goodput
			isBLE := n.Radio.Tech == radio.TechRF
			if fits != isBLE {
				t.Errorf("node %s: BLE fit=%v but got tech %v", n.Name, fits, n.Radio.Tech)
			}
		}
	})

	t.Run("harvester prob 1 equips every node", func(t *testing.T) {
		g := &Generator{Base: base, HarvesterProb: 1}
		cfg, err := g.Scenario()(0, wearerRNG(3, 0))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range cfg.Nodes {
			if n.Harvester == nil {
				t.Errorf("node %s left without a harvester", n.Name)
			}
		}
	})

	t.Run("zero spreads reproduce the base", func(t *testing.T) {
		g := &Generator{Base: base}
		cfg, err := g.Scenario()(0, wearerRNG(4, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Nodes) != len(base.Nodes) {
			t.Fatalf("nodes = %d, want %d", len(cfg.Nodes), len(base.Nodes))
		}
		for i, n := range cfg.Nodes {
			b := base.Nodes[i]
			if n.PER != b.PER || n.Battery != b.Battery || n.Radio != b.Radio {
				t.Errorf("node %s perturbed with all spreads zero", n.Name)
			}
		}
	})
}

// TestGeneratorSpreadsBounded samples many wearers and checks every
// perturbed parameter lands inside its documented envelope.
func TestGeneratorSpreadsBounded(t *testing.T) {
	base := DefaultBase()
	g := &Generator{Base: base, PERSpread: 0.5, BatterySpread: 0.3, DrainBattery: true}
	scen := g.Scenario()
	byName := map[string]int{}
	for i, n := range base.Nodes {
		byName[n.Name] = i
	}
	sawPERVariation := false
	for w := 0; w < 200; w++ {
		cfg, err := scen(w, wearerRNG(9, uint64(w)))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range cfg.Nodes {
			b := base.Nodes[byName[n.Name]]
			if n.PER < b.PER*0.5-1e-12 || n.PER > b.PER*1.5+1e-12 {
				t.Fatalf("wearer %d node %s PER %v outside ±50%% of %v", w, n.Name, n.PER, b.PER)
			}
			if n.PER != b.PER {
				sawPERVariation = true
			}
			lo, hi := b.Battery.CapacityMAh*0.7, b.Battery.CapacityMAh*1.3
			if n.Battery.CapacityMAh < lo-1e-9 || n.Battery.CapacityMAh > hi+1e-9 {
				t.Fatalf("wearer %d node %s capacity %v outside [%v,%v]",
					w, n.Name, n.Battery.CapacityMAh, lo, hi)
			}
			if n.Battery == b.Battery {
				t.Fatalf("wearer %d node %s shares the base battery despite scaling", w, n.Name)
			}
			if !n.DrainBattery {
				t.Fatalf("wearer %d node %s missing DrainBattery", w, n.Name)
			}
		}
	}
	if !sawPERVariation {
		t.Fatal("PER spread produced no variation over 200 wearers")
	}
}

// TestGeneratorValidate covers parameter-range rejection.
func TestGeneratorValidate(t *testing.T) {
	base := DefaultBase()
	bad := []Generator{
		{Base: base, PERSpread: -0.1},
		{Base: base, BLEFraction: 1.5},
		{Base: base, BatterySpread: 1},
		{},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
		if _, err := g.Scenario()(0, wearerRNG(1, 0)); err == nil {
			t.Errorf("case %d: Scenario accepted %+v", i, g)
		}
	}
	good := Generator{Base: base, PERSpread: 1, BatterySpread: 0.99, HarvesterProb: 1, DropNodeProb: 1, BLEFraction: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected boundary parameters: %v", err)
	}
}

// TestGeneratorRNGConsumptionStable checks dropping a node does not shift
// the randomness consumed for its successors: the generator burns a fixed
// number of draws per base node, so two generators that differ only in
// DropNodeProb agree on every parameter of the nodes both keep.
func TestGeneratorRNGConsumptionStable(t *testing.T) {
	base := DefaultBase()
	keepAll := (&Generator{Base: base, PERSpread: 0.5}).Scenario()
	dropAll := (&Generator{Base: base, PERSpread: 0.5, DropNodeProb: 1}).Scenario()
	for w := uint64(0); w < 64; w++ {
		a, err := keepAll(int(w), wearerRNG(11, w))
		if err != nil {
			t.Fatal(err)
		}
		b, err := dropAll(int(w), wearerRNG(11, w))
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Nodes) != 1 {
			t.Fatalf("wearer %d: drop-all kept %d nodes", w, len(b.Nodes))
		}
		// The surviving primary node must be parameterized identically:
		// the later nodes' presence or absence consumed the same draws.
		if a.Nodes[0].PER != b.Nodes[0].PER {
			t.Fatalf("wearer %d: node mix shifted the primary node's PER draw (%v vs %v)",
				w, a.Nodes[0].PER, b.Nodes[0].PER)
		}
	}
}
