package radio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"wiban/internal/units"
)

func TestEnergyPerGoodBitMatchesCitedSilicon(t *testing.T) {
	tests := []struct {
		tr       *Transceiver
		wantEPB  units.EnergyPerBit
		tolerant float64 // relative tolerance
	}{
		{WiR(), 100 * units.PicojoulePerBit, 0.05},
		{BodyWire(), 6.3 * units.PicojoulePerBit, 0.05},
		{SubUWrComm(), 41.5 * units.PicojoulePerBit, 0.05},
	}
	for _, tt := range tests {
		got := tt.tr.EnergyPerGoodBit()
		rel := math.Abs(float64(got)-float64(tt.wantEPB)) / float64(tt.wantEPB)
		if rel > tt.tolerant {
			t.Errorf("%s: energy/bit = %v, want ≈ %v", tt.tr.Name, got, tt.wantEPB)
		}
	}
}

func TestPaperClaimRateAndPowerRatios(t *testing.T) {
	wir, ble := WiR(), BLE42()
	// ">10× faster than BLE": goodput ratio.
	if ratio := float64(wir.Goodput) / float64(ble.Goodput); ratio < 10 {
		t.Errorf("Wi-R/BLE goodput ratio = %.1f, paper claims > 10", ratio)
	}
	// "<100× lower power": energy per delivered bit ratio.
	if ratio := float64(ble.EnergyPerGoodBit()) / float64(wir.EnergyPerGoodBit()); ratio < 100 {
		t.Errorf("BLE/Wi-R energy-per-bit ratio = %.0f, paper claims ≥ 100", ratio)
	}
	// Even the most favorable BLE (5 + DLE) stays ≥ 100× worse per bit.
	if ratio := float64(BLE5DLE().EnergyPerGoodBit()) / float64(wir.EnergyPerGoodBit()); ratio < 100 {
		t.Errorf("BLE5-DLE/Wi-R energy ratio = %.0f, want ≥ 100", ratio)
	}
}

func TestBLEActivePowerInPaperRange(t *testing.T) {
	// §III-B: RF-based communication burns 1–10 mW (and real BLE silicon
	// peaks higher). Our active model must sit in the mW class.
	for _, tr := range []*Transceiver{BLE42(), BLE5DLE()} {
		if tr.ActiveTX < 1*units.Milliwatt {
			t.Errorf("%s active power %v below the paper's 1–10 mW RF class", tr.Name, tr.ActiveTX)
		}
	}
	// While every EQS design is sub-mW ("≤ 100s of µW").
	for _, tr := range []*Transceiver{WiR(), BodyWire(), SubUWrComm()} {
		if tr.ActiveTX > 500*units.Microwatt {
			t.Errorf("%s active power %v above the EQS µW class", tr.Name, tr.ActiveTX)
		}
	}
}

func TestAveragePowerDutyCycling(t *testing.T) {
	wir := WiR()
	// Carrying 1 kbps on a 3.9 Mbps link is a ~2.6e-4 duty cycle: the
	// average should collapse toward the sleep floor plus ~100 pJ/b × rate.
	avg, err := wir.AveragePower(1*units.Kbps, 1)
	if err != nil {
		t.Fatal(err)
	}
	marginal := wir.EnergyPerGoodBit().PowerAt(1 * units.Kbps)
	floor := wir.Sleep
	if avg < floor || float64(avg) > 3*(float64(marginal)+float64(floor))+float64(wir.WakeEnergy) {
		t.Errorf("duty-cycled avg power %v implausible (marginal %v, floor %v)", avg, marginal, floor)
	}
	// Full utilization approaches active power.
	full, err := wir.AveragePower(wir.Goodput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(full)-float64(wir.ActiveTX)) > 1e-9 {
		t.Errorf("full-rate avg %v, want active %v", full, wir.ActiveTX)
	}
}

func TestAveragePowerMonotoneInRate(t *testing.T) {
	for _, tr := range Catalog() {
		f := func(a, b uint16) bool {
			ra := units.DataRate(a) * tr.Goodput / 65536
			rb := units.DataRate(b) * tr.Goodput / 65536
			if ra > rb {
				ra, rb = rb, ra
			}
			pa, erra := tr.AveragePower(ra, 1)
			pb, errb := tr.AveragePower(rb, 1)
			return erra == nil && errb == nil && pa <= pb+1e-15
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
}

func TestAveragePowerRejectsOverrate(t *testing.T) {
	wir := WiR()
	_, err := wir.AveragePower(10*units.Mbps, 0)
	if !errors.Is(err, ErrRateExceedsGoodput) {
		t.Errorf("expected ErrRateExceedsGoodput, got %v", err)
	}
}

func TestWakeOverheadCounts(t *testing.T) {
	ble := BLE42()
	lazy, _ := ble.AveragePower(1*units.Kbps, 1)    // one connection event/s
	eager, _ := ble.AveragePower(1*units.Kbps, 100) // 100 events/s
	wantDelta := units.Power(99 * float64(ble.WakeEnergy))
	if math.Abs(float64(eager-lazy)-float64(wantDelta)) > 1e-12 {
		t.Errorf("wake overhead delta = %v, want %v", eager-lazy, wantDelta)
	}
}

func TestTimeOnAirFragmentation(t *testing.T) {
	ble := BLE42()
	// 100 bytes over 27-byte PDUs = 4 frames, each +80 overhead bits.
	bits := 100 * 8
	toa := ble.TimeOnAir(bits)
	wantBits := float64(bits + 4*80)
	want := ble.LinkRate.TimeFor(wantBits)
	if math.Abs(float64(toa)-float64(want)) > 1e-12 {
		t.Errorf("TimeOnAir = %v, want %v", toa, want)
	}
	if ble.TimeOnAir(0) != 0 {
		t.Error("empty payload should take no air time")
	}
}

func TestTimeOnAirMonotone(t *testing.T) {
	for _, tr := range Catalog() {
		f := func(a, b uint16) bool {
			x, y := int(a), int(b)
			if x > y {
				x, y = y, x
			}
			return tr.TimeOnAir(x) <= tr.TimeOnAir(y)+1e-15
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
}

func TestEnergyPerPacket(t *testing.T) {
	wir := WiR()
	e := wir.EnergyPerPacket(1024 * 8)
	// Must exceed pure payload energy (overhead + wake) but stay same order.
	floor := wir.EnergyPerGoodBit().EnergyFor(1024 * 8)
	if e <= floor {
		t.Errorf("packet energy %v should exceed payload floor %v", e, floor)
	}
	if float64(e) > 2*float64(floor)+float64(wir.WakeEnergy)*2 {
		t.Errorf("packet energy %v implausibly above floor %v", e, floor)
	}
}

func TestCatalogOrderingAndTech(t *testing.T) {
	cat := Catalog()
	if len(cat) != 6 {
		t.Fatalf("catalog size %d, want 6", len(cat))
	}
	eqsCount := 0
	for _, tr := range cat {
		if tr.Tech == TechEQS {
			eqsCount++
			if tr.ActiveTX >= 1*units.Milliwatt {
				t.Errorf("%s: EQS design should be sub-mW", tr.Name)
			}
		}
	}
	if eqsCount != 3 {
		t.Errorf("EQS designs = %d, want 3", eqsCount)
	}
	if TechEQS.String() != "EQS-HBC" || TechRF.String() != "RF" || TechMQS.String() != "MQS-HBC" {
		t.Error("technology names wrong")
	}
	if Technology(9).String() != "Technology(9)" {
		t.Error("unknown technology string wrong")
	}
}

func TestGoodputNeverExceedsLinkRate(t *testing.T) {
	for _, tr := range Catalog() {
		if tr.Goodput > tr.LinkRate {
			t.Errorf("%s: goodput %v exceeds link rate %v", tr.Name, tr.Goodput, tr.LinkRate)
		}
	}
}

func TestDegenerateTransceiver(t *testing.T) {
	var tr Transceiver
	if !math.IsInf(float64(tr.EnergyPerGoodBit()), 1) {
		t.Error("zero-goodput transceiver should report infinite energy/bit")
	}
	if tr.DutyCycle(units.Kbps) != 1 {
		t.Error("zero-goodput duty cycle should clamp to 1")
	}
}
