// Package radio provides transceiver energy models for the link
// technologies the paper compares.
//
// A wearable radio's battery impact is set by four numbers: the power it
// burns while actually moving bits, the over-the-air rate it moves them at,
// the floor it burns while asleep, and the overhead it pays to wake up and
// to frame packets. This package captures those numbers for the EQS-HBC
// silicon the paper cites — BodyWire (JSSC'19, 6.3 pJ/bit @ 30 Mbps),
// Sub-µWrComm (JSSC'21, 415 nW @ 10 kbps), the commercial Wi-R transceiver
// (≈ 100 pJ/bit @ 4 Mbps) — and for BLE-class radios, whose ~10 mW active
// power and protocol overheads anchor the paper's ">10× faster, <100× the
// power" comparison.
package radio

import (
	"errors"
	"fmt"
	"math"

	"wiban/internal/units"
)

// ErrRateExceedsGoodput reports an application rate beyond what the
// transceiver can carry even at 100% duty cycle.
var ErrRateExceedsGoodput = errors.New("radio: application rate exceeds link goodput")

// Transceiver is a duty-cycled link transceiver energy model.
type Transceiver struct {
	// Name identifies the device in tables ("Wi-R", "BLE 4.2", ...).
	Name string
	// Tech is the link family, used to pick the matching channel model.
	Tech Technology
	// LinkRate is the instantaneous over-the-air signaling rate.
	LinkRate units.DataRate
	// Goodput is the maximum sustained application-level rate after
	// protocol overhead (headers, inter-frame spaces, acknowledgements).
	Goodput units.DataRate
	// ActiveTX and ActiveRX are the radio power draws while transmitting
	// and receiving.
	ActiveTX, ActiveRX units.Power
	// Sleep is the power floor with the radio idle but retaining state.
	Sleep units.Power
	// WakeEnergy is spent per sleep→active transition (PLL settling,
	// synchronization).
	WakeEnergy units.Energy
	// WakeTime is the sleep→active latency.
	WakeTime units.Duration
	// FrameOverheadBits and MaxPayloadBits describe framing: each frame
	// carries at most MaxPayloadBits and costs FrameOverheadBits extra on
	// the air (plus any acknowledgement time folded into Goodput).
	FrameOverheadBits int
	MaxPayloadBits    int
}

// Technology is the physical link family.
type Technology int

// Link families.
const (
	TechEQS Technology = iota // electro-quasistatic human body communication
	TechRF                    // 2.4 GHz radiative
	TechMQS                   // magneto-quasistatic (implant future work)
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case TechEQS:
		return "EQS-HBC"
	case TechRF:
		return "RF"
	case TechMQS:
		return "MQS-HBC"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// EnergyPerGoodBit is the marginal energy per delivered application bit at
// full utilization: active TX power divided by goodput. This is the number
// quoted on transceiver spec sheets (pJ/bit).
func (t *Transceiver) EnergyPerGoodBit() units.EnergyPerBit {
	if t.Goodput <= 0 {
		return units.EnergyPerBit(math.Inf(1))
	}
	return units.EnergyPerBit(float64(t.ActiveTX) / float64(t.Goodput))
}

// DutyCycle returns the fraction of time the radio must be active to carry
// appRate.
func (t *Transceiver) DutyCycle(appRate units.DataRate) float64 {
	if t.Goodput <= 0 {
		return 1
	}
	return float64(appRate) / float64(t.Goodput)
}

// AveragePower returns the long-run average radio power needed to carry a
// sustained application rate with wakesPerSecond sleep→active transitions.
// It returns ErrRateExceedsGoodput when the rate cannot be carried.
func (t *Transceiver) AveragePower(appRate units.DataRate, wakesPerSecond float64) (units.Power, error) {
	d := t.DutyCycle(appRate)
	if d > 1 {
		return 0, fmt.Errorf("%w: %v > %v on %s", ErrRateExceedsGoodput, appRate, t.Goodput, t.Name)
	}
	if d < 0 {
		d = 0
	}
	avg := units.Power(d*float64(t.ActiveTX)+(1-d)*float64(t.Sleep)) +
		units.Power(wakesPerSecond*float64(t.WakeEnergy))
	return avg, nil
}

// TimeOnAir returns the air time for a payload of payloadBits, including
// per-frame overhead and fragmentation into MaxPayloadBits frames.
func (t *Transceiver) TimeOnAir(payloadBits int) units.Duration {
	if payloadBits <= 0 {
		return 0
	}
	frames := 1
	if t.MaxPayloadBits > 0 {
		frames = (payloadBits + t.MaxPayloadBits - 1) / t.MaxPayloadBits
	}
	totalBits := payloadBits + frames*t.FrameOverheadBits
	return t.LinkRate.TimeFor(float64(totalBits))
}

// EnergyPerPacket returns the TX energy for one payload of payloadBits,
// including framing and one wake transition.
func (t *Transceiver) EnergyPerPacket(payloadBits int) units.Energy {
	return t.ActiveTX.Times(t.TimeOnAir(payloadBits)) + t.WakeEnergy
}

// --- Cited transceiver profiles ----------------------------------------

// WiR returns the commercial Wi-R transceiver profile from the paper and
// its white-paper citation: 4 Mbps at ≈ 100 pJ/bit, EQS-HBC.
//
// Active power is 100 pJ/b × 4 Mbps = 400 µW; protocol framing is light
// (no RF synthesizer, no inter-frame RF turnaround), so goodput stays near
// the link rate.
func WiR() *Transceiver {
	return &Transceiver{
		Name:              "Wi-R",
		Tech:              TechEQS,
		LinkRate:          4 * units.Mbps,
		Goodput:           3.9 * units.Mbps,
		ActiveTX:          390 * units.Microwatt,
		ActiveRX:          420 * units.Microwatt,
		Sleep:             100 * units.Nanowatt,
		WakeEnergy:        50 * units.Nanojoule,
		WakeTime:          10 * units.Microsecond,
		FrameOverheadBits: 64,
		MaxPayloadBits:    2048 * 8,
	}
}

// BodyWire returns the research EQS-HBC transceiver of Maity et al.
// (JSSC 2019): 30 Mb/s at 6.3 pJ/bit with time-domain interference
// rejection.
func BodyWire() *Transceiver {
	return &Transceiver{
		Name:              "BodyWire",
		Tech:              TechEQS,
		LinkRate:          30 * units.Mbps,
		Goodput:           29 * units.Mbps,
		ActiveTX:          183 * units.Microwatt, // 6.3 pJ/b × 29 Mbps
		ActiveRX:          210 * units.Microwatt,
		Sleep:             50 * units.Nanowatt,
		WakeEnergy:        20 * units.Nanojoule,
		WakeTime:          5 * units.Microsecond,
		FrameOverheadBits: 64,
		MaxPayloadBits:    2048 * 8,
	}
}

// SubUWrComm returns the authentication-class node of Maity et al.
// (JSSC 2021): 415 nW total at 1–10 kb/s.
func SubUWrComm() *Transceiver {
	return &Transceiver{
		Name:              "Sub-µWrComm",
		Tech:              TechEQS,
		LinkRate:          10 * units.Kbps,
		Goodput:           10 * units.Kbps,
		ActiveTX:          415 * units.Nanowatt,
		ActiveRX:          415 * units.Nanowatt,
		Sleep:             10 * units.Nanowatt,
		WakeEnergy:        1 * units.Nanojoule,
		WakeTime:          100 * units.Microsecond,
		FrameOverheadBits: 16,
		MaxPayloadBits:    256,
	}
}

// BLE42 returns a BLE 4.x radio without data-length extension: 1 Mbps PHY,
// 27-byte PDUs, 150 µs inter-frame spaces and per-packet acknowledgements
// cap the application goodput near 305 kbps, with ≈ 16 mW active power
// (nRF52-class at 0 dBm, 3 V supply) — an effective ≈ 52 nJ per delivered
// bit. This is the radio in virtually every pre-2024 wearable and the
// baseline for the paper's comparison.
func BLE42() *Transceiver {
	return &Transceiver{
		Name:     "BLE 4.2",
		Tech:     TechRF,
		LinkRate: 1 * units.Mbps,
		// Per 27-byte data packet: (10+27) bytes on air = 296 µs, plus
		// T_IFS + empty ACK + T_IFS ≈ 380 µs ⇒ 216 payload bits / 676 µs.
		Goodput:           319 * units.Kbps,
		ActiveTX:          16.5 * units.Milliwatt,
		ActiveRX:          16.5 * units.Milliwatt,
		Sleep:             3 * units.Microwatt,  // SoC sleep w/ RTC, ~1 µA @ 3 V
		WakeEnergy:        8 * units.Microjoule, // connection-event setup
		WakeTime:          400 * units.Microsecond,
		FrameOverheadBits: 80, // preamble + access address + header + CRC
		MaxPayloadBits:    27 * 8,
	}
}

// BLE5DLE returns a BLE 5 radio with data-length extension (251-byte
// PDUs), the most favorable realistic BLE configuration: ≈ 813 kbps
// goodput, ≈ 20 nJ/bit.
func BLE5DLE() *Transceiver {
	return &Transceiver{
		Name:     "BLE 5 (DLE)",
		Tech:     TechRF,
		LinkRate: 1 * units.Mbps,
		// Per 251-byte packet: 261 bytes on air = 2088 µs + 380 µs turnaround
		// ⇒ 2008 payload bits / 2468 µs ≈ 813 kbps.
		Goodput:           813 * units.Kbps,
		ActiveTX:          16.5 * units.Milliwatt,
		ActiveRX:          16.5 * units.Milliwatt,
		Sleep:             3 * units.Microwatt,
		WakeEnergy:        8 * units.Microjoule,
		WakeTime:          400 * units.Microsecond,
		FrameOverheadBits: 80,
		MaxPayloadBits:    251 * 8,
	}
}

// MQSImplant returns a magneto-quasistatic implant transceiver — the
// paper's §IV-B future-work direction ("body-assisted communication for
// implantable devices ... using Magneto-Quasistatic HBC"). No silicon is
// cited, so this profile is a synthetic projection: a 1 MHz coil link at
// 1 Mbps whose driver pays ~1 nJ/bit to overcome the weak deep-tissue
// coupling — an order worse than on-body EQS but two orders better than
// pushing 2.4 GHz RF through tissue.
func MQSImplant() *Transceiver {
	return &Transceiver{
		Name:              "MQS implant",
		Tech:              TechMQS,
		LinkRate:          1 * units.Mbps,
		Goodput:           950 * units.Kbps,
		ActiveTX:          950 * units.Microwatt, // 1 nJ/b × 950 kbps
		ActiveRX:          300 * units.Microwatt,
		Sleep:             50 * units.Nanowatt,
		WakeEnergy:        100 * units.Nanojoule,
		WakeTime:          50 * units.Microsecond,
		FrameOverheadBits: 64,
		MaxPayloadBits:    1024 * 8,
	}
}

// Catalog returns all modeled transceivers, EQS designs first — the rows of
// the §IV-B transceiver survey table (TAB-B).
func Catalog() []*Transceiver {
	return []*Transceiver{SubUWrComm(), BodyWire(), WiR(), MQSImplant(), BLE42(), BLE5DLE()}
}
