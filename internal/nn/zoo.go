package nn

// Reference model zoo: the three workload classes the paper's wearable-AI
// narrative names — voice (keyword spotting on AI pins and pendants),
// biopotential (ECG beat classification on patches), and first-person
// vision (smart-glasses scene classification). Topologies follow the
// standard TinyML designs (DS-CNN, 1-D CNN, MobileNet-style), and weights
// are deterministically seeded: the partitioner consumes only the layer
// profiles, while the forward pass exercises real arithmetic.

// KWSNet returns a DS-CNN-style keyword spotter over a 49×10 MFCC-like
// feature map: one standard conv followed by four depthwise-separable
// blocks and a softmax over 12 keywords (≈ 2.7 M MACs, ≈ 23 k params —
// the "DS-CNN-S" operating point).
func KWSNet(seed int64) (*Sequential, error) {
	r := newRNG(seed)
	ds := func(ch int) []Layer {
		return []Layer{
			NewDepthwiseConv2D(3, 3, ch, 1, true, r), ReLU{},
			NewConv2D(1, 1, ch, ch, 1, true, r), ReLU{},
		}
	}
	layers := []Layer{
		NewConv2D(10, 4, 1, 64, 2, true, r), ReLU{},
	}
	for i := 0; i < 4; i++ {
		layers = append(layers, ds(64)...)
	}
	layers = append(layers,
		GlobalAvgPool{},
		NewDense(64, 12, r),
		Softmax{},
	)
	return NewSequential("KWS DS-CNN", []int{49, 10, 1}, layers...)
}

// ECGNet returns a 1-D CNN beat classifier over 256-sample single-lead
// windows: three conv1d/pool stages and a 5-class softmax (normal + 4
// arrhythmia classes, the AAMI grouping; ≈ 0.9 M MACs).
func ECGNet(seed int64) (*Sequential, error) {
	r := newRNG(seed)
	layers := []Layer{
		NewConv1D(7, 1, 16, 2, true, r), ReLU{},
		NewConv1D(5, 16, 32, 2, true, r), ReLU{},
		NewConv1D(3, 32, 48, 2, true, r), ReLU{},
		Flatten{},
		NewDense(32*48, 64, r), ReLU{},
		NewDense(64, 5, r),
		Softmax{},
	}
	return NewSequential("ECG 1D-CNN", []int{256, 1}, layers...)
}

// VisionNet returns a MobileNet-style tiny scene classifier over 96×96
// grayscale frames: stem conv then six depthwise-separable stages with
// stride-2 downsampling, global pooling and a 10-class head
// (≈ 6 M MACs — a MobileNet-0.25 / visual-wake-words operating point).
func VisionNet(seed int64) (*Sequential, error) {
	r := newRNG(seed)
	sep := func(cin, cout, stride int) []Layer {
		return []Layer{
			NewDepthwiseConv2D(3, 3, cin, stride, true, r), ReLU{},
			NewConv2D(1, 1, cin, cout, 1, true, r), ReLU{},
		}
	}
	layers := []Layer{
		NewConv2D(3, 3, 1, 16, 2, true, r), ReLU{}, // 48×48×16
	}
	layers = append(layers, sep(16, 32, 2)...)   // 24×24×32
	layers = append(layers, sep(32, 64, 2)...)   // 12×12×64
	layers = append(layers, sep(64, 128, 1)...)  // 12×12×128
	layers = append(layers, sep(128, 128, 1)...) // 12×12×128
	layers = append(layers, sep(128, 256, 2)...) // 6×6×256
	layers = append(layers,
		GlobalAvgPool{},
		NewDense(256, 10, r),
		Softmax{},
	)
	return NewSequential("Vision MobileNet-tiny", []int{96, 96, 1}, layers...)
}

// Zoo returns all reference models, seeded deterministically.
func Zoo(seed int64) ([]*Sequential, error) {
	kws, err := KWSNet(seed)
	if err != nil {
		return nil, err
	}
	ecg, err := ECGNet(seed + 1)
	if err != nil {
		return nil, err
	}
	vis, err := VisionNet(seed + 2)
	if err != nil {
		return nil, err
	}
	return []*Sequential{kws, ecg, vis}, nil
}
