package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	if x.Elems() != 24 {
		t.Fatalf("elems = %d", x.Elems())
	}
	x.Set3(1, 2, 3, 5)
	if x.At3(1, 2, 3) != 5 {
		t.Error("At3/Set3 mismatch")
	}
	c := x.Clone()
	c.Data[0] = 9
	if x.Data[0] == 9 {
		t.Error("Clone shares data")
	}
	r, err := x.Reshape(24)
	if err != nil || r.Shape[0] != 24 {
		t.Errorf("reshape failed: %v", err)
	}
	if _, err := x.Reshape(7); err == nil {
		t.Error("bad reshape should fail")
	}
	if _, err := FromSlice([]float32{1, 2}, 3); err == nil {
		t.Error("FromSlice size mismatch should fail")
	}
}

func TestArgMaxAndMaxAbs(t *testing.T) {
	x, _ := FromSlice([]float32{1, -5, 3, 3}, 4)
	if x.ArgMax() != 2 {
		t.Errorf("argmax = %d, want 2 (first of ties)", x.ArgMax())
	}
	if x.MaxAbs() != 5 {
		t.Errorf("maxabs = %v, want 5", x.MaxAbs())
	}
	empty := &Tensor{}
	if empty.ArgMax() != -1 {
		t.Error("empty argmax should be -1")
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{In: 2, Out: 2, W: []float32{1, 2, 3, 4}, B: []float32{0.5, -0.5}, label: "d"}
	x, _ := FromSlice([]float32{1, 1}, 2)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 3.5 || y.Data[1] != 6.5 {
		t.Errorf("dense output %v, want [3.5 6.5]", y.Data)
	}
	p, _ := d.Profile([]int{2})
	if p.MACs != 4 || p.Params != 6 || p.OutElems != 2 {
		t.Errorf("profile %+v", p)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1×1 identity kernel must pass the input through.
	c := &Conv2D{KH: 1, KW: 1, CIn: 1, COut: 1, Stride: 1, SamePad: true,
		W: []float32{1}, B: []float32{0}, label: "id"}
	x := NewTensor(4, 4, 1)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv changed data at %d", i)
		}
	}
}

func TestConv2DSumKernel(t *testing.T) {
	// A 3×3 all-ones valid conv over an all-ones input sums to 9.
	r := newRNG(1)
	c := NewConv2D(3, 3, 1, 1, 1, false, r)
	for i := range c.W {
		c.W[i] = 1
	}
	c.B[0] = 0
	x := NewTensor(5, 5, 1)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(y.Shape, []int{3, 3, 1}) {
		t.Fatalf("out shape %v", y.Shape)
	}
	for _, v := range y.Data {
		if v != 9 {
			t.Fatalf("sum conv = %v, want 9", v)
		}
	}
}

func TestConv2DStrideAndPadShapes(t *testing.T) {
	r := newRNG(2)
	c := NewConv2D(3, 3, 2, 8, 2, true, r)
	os, err := c.OutShape([]int{49, 10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if os[0] != 25 || os[1] != 5 || os[2] != 8 {
		t.Errorf("same-pad stride-2 out %v, want [25 5 8]", os)
	}
	if _, err := c.OutShape([]int{49, 10, 3}); err == nil {
		t.Error("channel mismatch should fail")
	}
}

func TestDepthwiseIndependence(t *testing.T) {
	// Depthwise conv must not mix channels: zero one channel's kernel and
	// its output is exactly its bias.
	r := newRNG(3)
	d := NewDepthwiseConv2D(3, 3, 2, 1, true, r)
	for k := 0; k < 9; k++ {
		d.W[0*9+k] = 0 // channel 0 kernel zeroed
	}
	d.B[0] = 0.25
	x := NewTensor(6, 6, 2)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	y, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 36; i++ {
		if y.Data[i*2] != 0.25 {
			t.Fatalf("channel mixing detected at %d: %v", i, y.Data[i*2])
		}
	}
}

func TestConv1DKnown(t *testing.T) {
	// Moving-sum kernel of width 2, stride 1, valid: y[t] = x[t]+x[t+1].
	c := &Conv1D{K: 2, CIn: 1, COut: 1, Stride: 1, SamePad: false,
		W: []float32{1, 1}, B: []float32{0}, label: "sum2"}
	x, _ := FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	y, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3, 5, 7}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("conv1d[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestMaxPoolAndGAP(t *testing.T) {
	p := &MaxPool2D{Size: 2}
	x := NewTensor(4, 4, 1)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y, err := p.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 7, 13, 15}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("maxpool[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
	g := GlobalAvgPool{}
	z, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(z.Data[0]-7.5)) > 1e-6 {
		t.Errorf("GAP = %v, want 7.5", z.Data[0])
	}
}

func TestActivations(t *testing.T) {
	x, _ := FromSlice([]float32{-1, 0, 2}, 3)
	y, _ := ReLU{}.Forward(x)
	if y.Data[0] != 0 || y.Data[2] != 2 {
		t.Errorf("relu = %v", y.Data)
	}
	if x.Data[0] != -1 {
		t.Error("ReLU mutated its input")
	}
	s, _ := Softmax{}.Forward(x)
	var sum float32
	for _, v := range s.Data {
		if v < 0 {
			t.Error("negative softmax output")
		}
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-6 {
		t.Errorf("softmax sum = %v", sum)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x, _ := FromSlice([]float32{1000, 1001, 999}, 3)
	y, _ := Softmax{}.Forward(x)
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
	if y.ArgMax() != 1 {
		t.Error("softmax argmax wrong")
	}
}

func TestSequentialShapeValidation(t *testing.T) {
	r := newRNG(5)
	if _, err := NewSequential("bad", []int{10}, NewDense(11, 4, r)); err == nil {
		t.Error("shape mismatch at build should fail")
	}
	m, err := NewSequential("ok", []int{8}, NewDense(8, 4, r), ReLU{}, NewDense(4, 2, r), Softmax{})
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(m.OutShape(), []int{2}) {
		t.Errorf("out shape %v", m.OutShape())
	}
	if m.NumLayers() != 4 {
		t.Errorf("layers = %d", m.NumLayers())
	}
	x := NewTensor(8)
	y, err := m.Forward(x)
	if err != nil || y.Elems() != 2 {
		t.Fatalf("forward: %v", err)
	}
	if m.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestForwardRangeEquivalence(t *testing.T) {
	// Splitting the forward pass at any point must give the same output as
	// running it whole — the invariant split computing relies on.
	m, err := KWSNet(7)
	if err != nil {
		t.Fatal(err)
	}
	x := NewTensor(49, 10, 1)
	r := newRNG(99)
	for i := range x.Data {
		x.Data[i] = float32(r.norm())
	}
	whole, err := m.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, m.NumLayers() / 2, m.NumLayers() - 1} {
		head, err := m.ForwardRange(x.Clone(), 0, cut)
		if err != nil {
			t.Fatalf("cut %d head: %v", cut, err)
		}
		tail, err := m.ForwardRange(head, cut, m.NumLayers())
		if err != nil {
			t.Fatalf("cut %d tail: %v", cut, err)
		}
		for i := range whole.Data {
			if math.Abs(float64(whole.Data[i]-tail.Data[i])) > 1e-5 {
				t.Fatalf("cut %d diverged at %d: %v vs %v", cut, i, whole.Data[i], tail.Data[i])
			}
		}
	}
	if _, err := m.ForwardRange(x, 3, 1); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestZooProfiles(t *testing.T) {
	models, err := Zoo(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("zoo size %d", len(models))
	}
	// Operating points (MACs) should match the TinyML classes within 3×.
	wantMACs := map[string]int64{
		"KWS DS-CNN":            2_700_000,
		"ECG 1D-CNN":            900_000,
		"Vision MobileNet-tiny": 6_000_000,
	}
	for _, m := range models {
		got := m.TotalMACs()
		want := wantMACs[m.Name]
		if want == 0 {
			t.Fatalf("unexpected model %q", m.Name)
		}
		if got < want/3 || got > want*3 {
			t.Errorf("%s: %d MACs, want ≈ %d", m.Name, got, want)
		}
		// Forward pass must run and produce a distribution.
		x := NewTensor(m.InShape...)
		for i := range x.Data {
			x.Data[i] = float32(i%13)/13 - 0.5
		}
		y, err := m.Forward(x)
		if err != nil {
			t.Fatalf("%s forward: %v", m.Name, err)
		}
		var sum float32
		for _, v := range y.Data {
			sum += v
		}
		if math.Abs(float64(sum-1)) > 1e-4 {
			t.Errorf("%s: output not a distribution (sum %v)", m.Name, sum)
		}
	}
}

func TestZooDeterministic(t *testing.T) {
	a, _ := KWSNet(42)
	b, _ := KWSNet(42)
	la := a.Layers()[0].(*Conv2D)
	lb := b.Layers()[0].(*Conv2D)
	for i := range la.W {
		if la.W[i] != lb.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c, _ := KWSNet(43)
	lc := c.Layers()[0].(*Conv2D)
	same := true
	for i := range la.W {
		if la.W[i] != lc.W[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}

// synthClusters builds a K-class Gaussian-cluster classification task.
func synthClusters(seed int64, n, dim, k int) (xs [][]float32, ys []int) {
	r := newRNG(seed)
	centers := make([][]float32, k)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for d := range centers[c] {
			centers[c][d] = float32(r.norm()) * 2
		}
	}
	for i := 0; i < n; i++ {
		c := i % k
		x := make([]float32, dim)
		for d := range x {
			x[d] = centers[c][d] + float32(r.norm())*0.5
		}
		xs = append(xs, x)
		ys = append(ys, c)
	}
	return
}

func TestMLPTrainsToHighAccuracy(t *testing.T) {
	xs, ys := synthClusters(11, 600, 8, 4)
	train, trainY := xs[:400], ys[:400]
	test, testY := xs[400:], ys[400:]
	m, err := NewMLP(5, 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Accuracy(test, testY)
	loss, err := m.Fit(train, trainY, 30, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	after := m.Accuracy(test, testY)
	if after < 0.9 {
		t.Errorf("test accuracy %.2f after training (was %.2f, loss %.3f), want ≥ 0.9",
			after, before, loss)
	}
	if after <= before {
		t.Error("training did not improve accuracy")
	}
}

func TestMLPToSequentialAgrees(t *testing.T) {
	xs, ys := synthClusters(13, 200, 6, 3)
	m, _ := NewMLP(7, 6, 12, 3)
	if _, err := m.Fit(xs, ys, 10, 0.05); err != nil {
		t.Fatal(err)
	}
	seq, err := m.ToSequential("mlp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x, _ := FromSlice(append([]float32(nil), xs[i]...), 6)
		y, err := seq.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if y.ArgMax() != m.Classify(xs[i]) {
			t.Fatalf("sequential and MLP disagree on sample %d", i)
		}
	}
}

func TestMLPErrors(t *testing.T) {
	if _, err := NewMLP(1, 5); err == nil {
		t.Error("single-size MLP should fail")
	}
	m, _ := NewMLP(1, 2, 2)
	if _, err := m.TrainEpoch(nil, nil, 0.1); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := m.TrainEpoch([][]float32{{1, 2}}, []int{5}, 0.1); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestQuantTensorRoundTripProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(float64(raw[i])) || math.IsInf(float64(raw[i]), 0) {
				raw[i] = 0
			}
			// Keep magnitudes sane for a sensor-activation regime.
			raw[i] = float32(math.Mod(float64(raw[i]), 100))
		}
		tns, err := FromSlice(raw, len(raw))
		if err != nil {
			return false
		}
		q := QuantizeTensor(tns)
		deq := q.Dequantize()
		maxAbs := float64(tns.MaxAbs())
		tol := maxAbs/127 + 1e-6
		for i := range raw {
			if math.Abs(float64(deq.Data[i]-raw[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantMLPAccuracyParity(t *testing.T) {
	xs, ys := synthClusters(17, 600, 8, 4)
	train, trainY := xs[:400], ys[:400]
	test, testY := xs[400:], ys[400:]
	m, _ := NewMLP(9, 8, 16, 4)
	if _, err := m.Fit(train, trainY, 30, 0.05); err != nil {
		t.Fatal(err)
	}
	fp := m.Accuracy(test, testY)
	q := QuantizeMLP(m)
	i8 := q.Accuracy(test, testY)
	if fp-i8 > 0.05 {
		t.Errorf("int8 accuracy %.3f vs float %.3f: drop > 5%%", i8, fp)
	}
	// Weight storage should be ~4× smaller than float32.
	floatBytes := 0
	for l := range m.W {
		floatBytes += 4*len(m.W[l]) + 4*len(m.B[l])
	}
	if q.WeightBytes() >= floatBytes/2 {
		t.Errorf("quant weights %dB vs float %dB: want real shrink", q.WeightBytes(), floatBytes)
	}
}

func TestQuantDenseMatchesFloatClosely(t *testing.T) {
	r := newRNG(21)
	d := NewDense(32, 8, r)
	qd := QuantizeDense(d)
	x := NewTensor(32)
	for i := range x.Data {
		x.Data[i] = float32(r.norm())
	}
	fy, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	qy, err := qd.Forward(QuantizeTensor(x))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fy.Data {
		if math.Abs(float64(fy.Data[i]-qy[i])) > 0.25 {
			t.Errorf("quant dense output %d: %v vs %v", i, qy[i], fy.Data[i])
		}
	}
	if _, err := qd.Forward(&QuantTensor{Data: make([]int8, 3), Scale: 1}); err == nil {
		t.Error("wrong quant input size should fail")
	}
}
