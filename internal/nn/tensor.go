// Package nn is a from-scratch neural-network inference library sized for
// the paper's workloads: the keyword-spotting, biopotential-classification
// and small-vision networks that a wearable AI system runs either on the
// leaf node (in-sensor analytics), on the on-body hub (the "wearable
// brain"), or split between them.
//
// The library provides float32 inference with per-layer cost profiles
// (multiply-accumulates, parameters, activation sizes) — the quantities the
// split-computing partitioner optimizes — plus int8 post-training
// quantization and a small SGD trainer so tests exercise real, learned
// behaviour rather than random weights.
package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: invalid dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape (the slice is not
// copied). The element count must match.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("nn: %d elements cannot fill shape %v", len(data), shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Elems returns the element count.
func (t *Tensor) Elems() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("nn: cannot reshape %v to %v", t.Shape, shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// At3 indexes a [H,W,C] tensor.
func (t *Tensor) At3(y, x, c int) float32 {
	return t.Data[(y*t.Shape[1]+x)*t.Shape[2]+c]
}

// Set3 writes a [H,W,C] tensor element.
func (t *Tensor) Set3(y, x, c int, v float32) {
	t.Data[(y*t.Shape[1]+x)*t.Shape[2]+c] = v
}

// SameShape reports whether two shapes are identical.
func SameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ArgMax returns the index of the largest element (first on ties), or -1
// for an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		return -1
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

// MaxAbs returns the largest |v| in the tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// rng is a small deterministic PRNG (xorshift64*) used for weight init so
// the model zoo is reproducible without importing math/rand everywhere.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in [0,1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// norm returns a standard normal draw (Box-Muller).
func (r *rng) norm() float64 {
	u1 := r.float64()
	for u1 == 0 {
		u1 = r.float64()
	}
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// heInit fills w with He-normal values for fan-in n.
func heInit(w []float32, fanIn int, r *rng) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = float32(r.norm() * std)
	}
}
