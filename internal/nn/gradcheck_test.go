package nn

import (
	"math"
	"testing"
)

// TestTrainerGradientNumerically verifies the backpropagation in
// MLP.TrainEpoch against a central-difference numerical gradient on a
// tiny network: after one SGD step on one sample, every weight must have
// moved by -lr × ∂L/∂w within finite-difference tolerance.
func TestTrainerGradientNumerically(t *testing.T) {
	const lr = 1e-2
	const eps = 1e-3

	build := func() *MLP {
		m, err := NewMLP(31, 3, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	x := []float32{0.3, -0.7, 1.1}
	y := 1

	// loss computes the cross-entropy of the sample on a model.
	loss := func(m *MLP) float64 {
		p := m.Predict(x)
		v := float64(p[y])
		if v < 1e-12 {
			v = 1e-12
		}
		return -math.Log(v)
	}

	// Reference model for numerical gradients.
	ref := build()
	// Trained model: one SGD step on the sample.
	trained := build()
	if _, err := trained.TrainEpoch([][]float32{x}, []int{y}, lr); err != nil {
		t.Fatal(err)
	}

	maxRel := 0.0
	for l := range ref.W {
		for i := range ref.W[l] {
			// Central difference on the reference.
			probe := build()
			probe.W[l][i] += eps
			up := loss(probe)
			probe2 := build()
			probe2.W[l][i] -= eps
			down := loss(probe2)
			grad := (up - down) / (2 * eps)

			moved := float64(trained.W[l][i] - ref.W[l][i])
			want := -lr * grad
			diff := math.Abs(moved - want)
			scale := math.Max(math.Abs(want), 1e-6)
			if rel := diff / scale; rel > maxRel {
				maxRel = rel
			}
			// Absolute slack for near-zero gradients (float32 noise).
			if diff > 1e-4 && diff/scale > 0.08 {
				t.Fatalf("layer %d weight %d: moved %.3e, analytic step %.3e (rel err %.3f)",
					l, i, moved, want, diff/scale)
			}
		}
		for i := range ref.B[l] {
			probe := build()
			probe.B[l][i] += eps
			up := loss(probe)
			probe2 := build()
			probe2.B[l][i] -= eps
			down := loss(probe2)
			grad := (up - down) / (2 * eps)
			moved := float64(trained.B[l][i] - ref.B[l][i])
			want := -lr * grad
			if diff := math.Abs(moved - want); diff > 1e-4 &&
				diff/math.Max(math.Abs(want), 1e-6) > 0.08 {
				t.Fatalf("layer %d bias %d: moved %.3e, analytic step %.3e", l, i, moved, want)
			}
		}
	}
	t.Logf("max relative gradient mismatch: %.4f", maxRel)
}

// TestTrainingReducesLossMonotonically checks epoch-over-epoch loss on a
// fixed separable task: the trend must be downward (individual epochs may
// wobble with SGD, so compare first vs last).
func TestTrainingReducesLossMonotonically(t *testing.T) {
	xs, ys := synthClusters(41, 300, 6, 3)
	m, err := NewMLP(13, 6, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.TrainEpoch(xs, ys, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for e := 0; e < 20; e++ {
		last, err = m.TrainEpoch(xs, ys, 0.03)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first*0.7 {
		t.Errorf("loss barely moved: first %.4f, last %.4f", first, last)
	}
}
