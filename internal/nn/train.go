package nn

import (
	"fmt"
	"math"
)

// MLP is a small trainable multi-layer perceptron (Dense + ReLU hidden
// layers, softmax cross-entropy output). It exists so the in-sensor
// classifiers in the examples and tests are *learned* models with real
// accuracy numbers, not random weights; ToSequential exports the trained
// network into the inference/profiling representation the partitioner
// consumes.
type MLP struct {
	Sizes []int // [in, hidden..., out]
	W     [][]float32
	B     [][]float32
	rng   *rng
}

// NewMLP returns a He-initialized MLP with the given layer sizes.
func NewMLP(seed int64, sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs ≥ 2 sizes, got %v", sizes)
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), rng: newRNG(seed)}
	for l := 0; l+1 < len(sizes); l++ {
		w := make([]float32, sizes[l]*sizes[l+1])
		heInit(w, sizes[l], m.rng)
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float32, sizes[l+1]))
	}
	return m, nil
}

// forward runs all layers, returning every layer's post-activation output
// (index 0 is the input).
func (m *MLP) forward(x []float32) [][]float32 {
	acts := [][]float32{x}
	cur := x
	last := len(m.W) - 1
	for l := range m.W {
		in, out := m.Sizes[l], m.Sizes[l+1]
		next := make([]float32, out)
		for o := 0; o < out; o++ {
			sum := m.B[l][o]
			row := m.W[l][o*in : (o+1)*in]
			for i, v := range cur {
				sum += row[i] * v
			}
			next[o] = sum
		}
		if l < last {
			for i, v := range next {
				if v < 0 {
					next[i] = 0
				}
			}
		} else {
			softmaxInPlace(next)
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

// Predict returns the class probabilities for one input.
func (m *MLP) Predict(x []float32) []float32 {
	acts := m.forward(x)
	return acts[len(acts)-1]
}

// Classify returns the argmax class.
func (m *MLP) Classify(x []float32) int {
	p := m.Predict(x)
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best
}

// TrainEpoch runs one epoch of SGD with the given learning rate, visiting
// samples in a deterministic shuffled order, and returns the mean
// cross-entropy loss.
func (m *MLP) TrainEpoch(xs [][]float32, ys []int, lr float32) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, fmt.Errorf("nn: bad training set (%d xs, %d ys)", len(xs), len(ys))
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	// Fisher-Yates with the model's deterministic RNG.
	for i := len(order) - 1; i > 0; i-- {
		j := int(m.rng.next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}

	var loss float64
	last := len(m.W) - 1
	for _, idx := range order {
		x, y := xs[idx], ys[idx]
		if len(x) != m.Sizes[0] || y < 0 || y >= m.Sizes[len(m.Sizes)-1] {
			return 0, fmt.Errorf("nn: sample dims/label out of range")
		}
		acts := m.forward(x)
		probs := acts[len(acts)-1]
		p := float64(probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)

		// Output delta for softmax + cross-entropy: p - onehot.
		delta := make([]float32, len(probs))
		copy(delta, probs)
		delta[y] -= 1

		// Backpropagate through Dense/ReLU stack.
		for l := last; l >= 0; l-- {
			in, out := m.Sizes[l], m.Sizes[l+1]
			prev := acts[l]
			var prevDelta []float32
			if l > 0 {
				prevDelta = make([]float32, in)
			}
			for o := 0; o < out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				row := m.W[l][o*in : (o+1)*in]
				for i := 0; i < in; i++ {
					if prevDelta != nil {
						prevDelta[i] += row[i] * d
					}
					row[i] -= lr * d * prev[i]
				}
				m.B[l][o] -= lr * d
			}
			if l > 0 {
				// ReLU gate on the hidden activation.
				for i := range prevDelta {
					if acts[l][i] <= 0 {
						prevDelta[i] = 0
					}
				}
				delta = prevDelta
			}
		}
	}
	return loss / float64(len(xs)), nil
}

// Fit trains for epochs epochs and returns the final epoch loss.
func (m *MLP) Fit(xs [][]float32, ys []int, epochs int, lr float32) (float64, error) {
	var loss float64
	var err error
	for e := 0; e < epochs; e++ {
		loss, err = m.TrainEpoch(xs, ys, lr)
		if err != nil {
			return 0, err
		}
	}
	return loss, nil
}

// Accuracy reports the classification accuracy over a labeled set.
func (m *MLP) Accuracy(xs [][]float32, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if m.Classify(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// ToSequential exports the trained MLP as an inference model (Dense + ReLU
// … + Dense + Softmax) sharing the same weight slices.
func (m *MLP) ToSequential(name string) (*Sequential, error) {
	var layers []Layer
	last := len(m.W) - 1
	for l := range m.W {
		d := &Dense{In: m.Sizes[l], Out: m.Sizes[l+1], W: m.W[l], B: m.B[l],
			label: fmt.Sprintf("dense %d→%d", m.Sizes[l], m.Sizes[l+1])}
		layers = append(layers, d)
		if l < last {
			layers = append(layers, ReLU{})
		} else {
			layers = append(layers, Softmax{})
		}
	}
	return NewSequential(name, []int{m.Sizes[0]}, layers...)
}
