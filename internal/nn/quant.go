package nn

import (
	"fmt"
	"math"
)

// Post-training int8 quantization. The split deployments quantize the
// activation tensor crossing the link to 8 bits (that is the "×8 bits"
// the partitioner charges per transmitted element), and quantizing the
// leaf-side weights shrinks both the model download and the MCU's memory
// footprint. Symmetric per-tensor scales keep the arithmetic integer-only.

// QuantTensor is an int8 tensor with a symmetric per-tensor scale:
// real ≈ scale × q.
type QuantTensor struct {
	Shape []int
	Data  []int8
	Scale float32
}

// QuantizeTensor quantizes t to int8 with a symmetric scale chosen from
// its max magnitude.
func QuantizeTensor(t *Tensor) *QuantTensor {
	maxAbs := t.MaxAbs()
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	q := &QuantTensor{Shape: append([]int(nil), t.Shape...), Data: make([]int8, len(t.Data)), Scale: scale}
	for i, v := range t.Data {
		r := math.Round(float64(v / scale))
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize reconstructs the float tensor.
func (q *QuantTensor) Dequantize() *Tensor {
	t := &Tensor{Shape: append([]int(nil), q.Shape...), Data: make([]float32, len(q.Data))}
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// QuantDense is an int8-weight fully connected layer with float bias.
type QuantDense struct {
	In, Out int
	W8      []int8
	WScale  float32
	B       []float32
}

// QuantizeDense converts a float Dense layer.
func QuantizeDense(d *Dense) *QuantDense {
	var maxAbs float32
	for _, v := range d.W {
		a := float32(math.Abs(float64(v)))
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	q := &QuantDense{In: d.In, Out: d.Out, W8: make([]int8, len(d.W)), WScale: scale,
		B: append([]float32(nil), d.B...)}
	for i, v := range d.W {
		r := math.Round(float64(v / scale))
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q.W8[i] = int8(r)
	}
	return q
}

// Forward computes the layer on an int8-quantized input with int32
// accumulation, returning float outputs.
func (q *QuantDense) Forward(x *QuantTensor) ([]float32, error) {
	if len(x.Data) != q.In {
		return nil, fmt.Errorf("nn: quant dense input %d, want %d", len(x.Data), q.In)
	}
	out := make([]float32, q.Out)
	k := q.WScale * x.Scale
	for o := 0; o < q.Out; o++ {
		var acc int32
		row := q.W8[o*q.In : (o+1)*q.In]
		for i, v := range x.Data {
			acc += int32(row[i]) * int32(v)
		}
		out[o] = float32(acc)*k + q.B[o]
	}
	return out, nil
}

// QuantMLP is an int8 inference version of a trained MLP.
type QuantMLP struct {
	layers []*QuantDense
}

// QuantizeMLP converts a trained MLP to int8 weights.
func QuantizeMLP(m *MLP) *QuantMLP {
	q := &QuantMLP{}
	for l := range m.W {
		d := &Dense{In: m.Sizes[l], Out: m.Sizes[l+1], W: m.W[l], B: m.B[l]}
		q.layers = append(q.layers, QuantizeDense(d))
	}
	return q
}

// Classify runs int8 inference (activations re-quantized between layers)
// and returns the argmax class.
func (q *QuantMLP) Classify(x []float32) int {
	t, _ := FromSlice(append([]float32(nil), x...), len(x))
	cur := t
	for l, qd := range q.layers {
		out, err := qd.Forward(QuantizeTensor(cur))
		if err != nil {
			return -1
		}
		if l < len(q.layers)-1 {
			for i, v := range out {
				if v < 0 {
					out[i] = 0
				}
			}
		}
		cur, _ = FromSlice(out, len(out))
	}
	return cur.ArgMax()
}

// Accuracy reports int8 classification accuracy on a labeled set.
func (q *QuantMLP) Accuracy(xs [][]float32, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if q.Classify(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// WeightBytes returns the int8 weight storage size.
func (q *QuantMLP) WeightBytes() int {
	n := 0
	for _, l := range q.layers {
		n += len(l.W8) + 4*len(l.B)
	}
	return n
}
