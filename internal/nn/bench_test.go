package nn

import "testing"

func BenchmarkConv2DStem(b *testing.B) {
	// The KWS stem conv: 10×4×1→64 stride 2 over 49×10.
	r := newRNG(1)
	c := NewConv2D(10, 4, 1, 64, 2, true, r)
	x := NewTensor(49, 10, 1)
	for i := range x.Data {
		x.Data[i] = float32(i%11) - 5
	}
	p, _ := c.Profile(x.Shape)
	b.ReportMetric(float64(p.MACs), "MACs/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDense(b *testing.B) {
	r := newRNG(2)
	d := NewDense(1536, 64, r)
	x := NewTensor(1536)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantDense(b *testing.B) {
	r := newRNG(3)
	d := NewDense(1536, 64, r)
	qd := QuantizeDense(d)
	x := NewTensor(1536)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	qx := QuantizeTensor(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qd.Forward(qx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVisionForward(b *testing.B) {
	m, err := VisionNet(1)
	if err != nil {
		b.Fatal(err)
	}
	x := NewTensor(96, 96, 1)
	for i := range x.Data {
		x.Data[i] = float32(i%13)/13 - 0.5
	}
	b.ReportMetric(float64(m.TotalMACs()), "MACs/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPTrainEpoch(b *testing.B) {
	xs, ys := synthClusters(5, 200, 8, 4)
	m, err := NewMLP(7, 8, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainEpoch(xs, ys, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
