package nn

import (
	"fmt"
	"math"
)

// Profile is the static cost of one layer for a given input shape — the
// currency of the split-computing partitioner.
type Profile struct {
	// MACs is the multiply-accumulate count of one forward pass.
	MACs int64
	// Params is the weight count (transmitted once, stored on-device).
	Params int64
	// OutElems is the activation element count at the layer output — the
	// data volume a network split at this point must communicate.
	OutElems int64
}

// Layer is one feed-forward stage.
type Layer interface {
	// Name identifies the layer in profiles and tables.
	Name() string
	// OutShape returns the output shape for an input shape.
	OutShape(in []int) ([]int, error)
	// Forward computes the layer output.
	Forward(x *Tensor) (*Tensor, error)
	// Profile returns the layer cost for an input shape.
	Profile(in []int) (Profile, error)
}

// --- Dense -------------------------------------------------------------------

// Dense is a fully connected layer y = Wx + b.
type Dense struct {
	In, Out int
	W       []float32 // [Out][In] row-major
	B       []float32 // [Out]
	label   string
}

// NewDense returns a He-initialized fully connected layer.
func NewDense(in, out int, r *rng) *Dense {
	d := &Dense{In: in, Out: out, W: make([]float32, in*out), B: make([]float32, out)}
	heInit(d.W, in, r)
	d.label = fmt.Sprintf("dense %d→%d", in, out)
	return d
}

// Name identifies the layer.
func (d *Dense) Name() string { return d.label }

// OutShape validates the flat input size.
func (d *Dense) OutShape(in []int) ([]int, error) {
	n := 1
	for _, v := range in {
		n *= v
	}
	if n != d.In {
		return nil, fmt.Errorf("nn: dense expects %d inputs, got shape %v", d.In, in)
	}
	return []int{d.Out}, nil
}

// Forward computes Wx + b over the flattened input.
func (d *Dense) Forward(x *Tensor) (*Tensor, error) {
	if x.Elems() != d.In {
		return nil, fmt.Errorf("nn: dense input %d, want %d", x.Elems(), d.In)
	}
	out := NewTensor(d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, v := range x.Data {
			sum += row[i] * v
		}
		out.Data[o] = sum
	}
	return out, nil
}

// Profile counts In×Out MACs.
func (d *Dense) Profile(in []int) (Profile, error) {
	if _, err := d.OutShape(in); err != nil {
		return Profile{}, err
	}
	return Profile{
		MACs:     int64(d.In) * int64(d.Out),
		Params:   int64(d.In)*int64(d.Out) + int64(d.Out),
		OutElems: int64(d.Out),
	}, nil
}

// --- Conv2D -------------------------------------------------------------------

// Conv2D is a standard 2-D convolution over [H,W,C] inputs with "same" or
// "valid" padding.
type Conv2D struct {
	KH, KW, CIn, COut int
	Stride            int
	SamePad           bool
	W                 []float32 // [COut][KH][KW][CIn]
	B                 []float32
	label             string
}

// NewConv2D returns a He-initialized convolution.
func NewConv2D(kh, kw, cin, cout, stride int, samePad bool, r *rng) *Conv2D {
	c := &Conv2D{
		KH: kh, KW: kw, CIn: cin, COut: cout, Stride: stride, SamePad: samePad,
		W: make([]float32, cout*kh*kw*cin), B: make([]float32, cout),
	}
	heInit(c.W, kh*kw*cin, r)
	c.label = fmt.Sprintf("conv %dx%dx%d→%d s%d", kh, kw, cin, cout, stride)
	return c
}

// Name identifies the layer.
func (c *Conv2D) Name() string { return c.label }

// pads returns top/left padding.
func (c *Conv2D) pads() (int, int) {
	if !c.SamePad {
		return 0, 0
	}
	return (c.KH - 1) / 2, (c.KW - 1) / 2
}

// OutShape computes the output spatial dims.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[2] != c.CIn {
		return nil, fmt.Errorf("nn: conv expects [H,W,%d], got %v", c.CIn, in)
	}
	ph, pw := c.pads()
	oh := (in[0]+2*ph-c.KH)/c.Stride + 1
	ow := (in[1]+2*pw-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv output empty for input %v", in)
	}
	return []int{oh, ow, c.COut}, nil
}

// Forward computes the convolution directly.
func (c *Conv2D) Forward(x *Tensor) (*Tensor, error) {
	os, err := c.OutShape(x.Shape)
	if err != nil {
		return nil, err
	}
	h, w := x.Shape[0], x.Shape[1]
	ph, pw := c.pads()
	out := NewTensor(os...)
	for oy := 0; oy < os[0]; oy++ {
		for ox := 0; ox < os[1]; ox++ {
			for oc := 0; oc < c.COut; oc++ {
				sum := c.B[oc]
				wBase := oc * c.KH * c.KW * c.CIn
				for ky := 0; ky < c.KH; ky++ {
					sy := oy*c.Stride + ky - ph
					if sy < 0 || sy >= h {
						continue
					}
					for kx := 0; kx < c.KW; kx++ {
						sx := ox*c.Stride + kx - pw
						if sx < 0 || sx >= w {
							continue
						}
						xBase := (sy*w + sx) * c.CIn
						wOff := wBase + (ky*c.KW+kx)*c.CIn
						for ci := 0; ci < c.CIn; ci++ {
							sum += c.W[wOff+ci] * x.Data[xBase+ci]
						}
					}
				}
				out.Set3(oy, ox, oc, sum)
			}
		}
	}
	return out, nil
}

// Profile counts OH·OW·COut·KH·KW·CIn MACs.
func (c *Conv2D) Profile(in []int) (Profile, error) {
	os, err := c.OutShape(in)
	if err != nil {
		return Profile{}, err
	}
	macs := int64(os[0]) * int64(os[1]) * int64(c.COut) * int64(c.KH) * int64(c.KW) * int64(c.CIn)
	return Profile{
		MACs:     macs,
		Params:   int64(len(c.W)) + int64(len(c.B)),
		OutElems: int64(os[0]) * int64(os[1]) * int64(os[2]),
	}, nil
}

// --- DepthwiseConv2D -----------------------------------------------------------

// DepthwiseConv2D convolves each channel independently (the MobileNet /
// DS-CNN building block).
type DepthwiseConv2D struct {
	KH, KW, C int
	Stride    int
	SamePad   bool
	W         []float32 // [C][KH][KW]
	B         []float32
	label     string
}

// NewDepthwiseConv2D returns a He-initialized depthwise convolution.
func NewDepthwiseConv2D(kh, kw, ch, stride int, samePad bool, r *rng) *DepthwiseConv2D {
	d := &DepthwiseConv2D{
		KH: kh, KW: kw, C: ch, Stride: stride, SamePad: samePad,
		W: make([]float32, ch*kh*kw), B: make([]float32, ch),
	}
	heInit(d.W, kh*kw, r)
	d.label = fmt.Sprintf("dwconv %dx%d c%d s%d", kh, kw, ch, stride)
	return d
}

// Name identifies the layer.
func (d *DepthwiseConv2D) Name() string { return d.label }

func (d *DepthwiseConv2D) pads() (int, int) {
	if !d.SamePad {
		return 0, 0
	}
	return (d.KH - 1) / 2, (d.KW - 1) / 2
}

// OutShape computes output dims.
func (d *DepthwiseConv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[2] != d.C {
		return nil, fmt.Errorf("nn: dwconv expects [H,W,%d], got %v", d.C, in)
	}
	ph, pw := d.pads()
	oh := (in[0]+2*ph-d.KH)/d.Stride + 1
	ow := (in[1]+2*pw-d.KW)/d.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: dwconv output empty for input %v", in)
	}
	return []int{oh, ow, d.C}, nil
}

// Forward computes the depthwise convolution.
func (d *DepthwiseConv2D) Forward(x *Tensor) (*Tensor, error) {
	os, err := d.OutShape(x.Shape)
	if err != nil {
		return nil, err
	}
	h, w := x.Shape[0], x.Shape[1]
	ph, pw := d.pads()
	out := NewTensor(os...)
	for oy := 0; oy < os[0]; oy++ {
		for ox := 0; ox < os[1]; ox++ {
			for ch := 0; ch < d.C; ch++ {
				sum := d.B[ch]
				for ky := 0; ky < d.KH; ky++ {
					sy := oy*d.Stride + ky - ph
					if sy < 0 || sy >= h {
						continue
					}
					for kx := 0; kx < d.KW; kx++ {
						sx := ox*d.Stride + kx - pw
						if sx < 0 || sx >= w {
							continue
						}
						sum += d.W[(ch*d.KH+ky)*d.KW+kx] * x.At3(sy, sx, ch)
					}
				}
				out.Set3(oy, ox, ch, sum)
			}
		}
	}
	return out, nil
}

// Profile counts OH·OW·C·KH·KW MACs.
func (d *DepthwiseConv2D) Profile(in []int) (Profile, error) {
	os, err := d.OutShape(in)
	if err != nil {
		return Profile{}, err
	}
	macs := int64(os[0]) * int64(os[1]) * int64(d.C) * int64(d.KH) * int64(d.KW)
	return Profile{
		MACs:     macs,
		Params:   int64(len(d.W)) + int64(len(d.B)),
		OutElems: int64(os[0]) * int64(os[1]) * int64(os[2]),
	}, nil
}

// --- Conv1D -------------------------------------------------------------------

// Conv1D convolves [T,C] sequences (biopotential models).
type Conv1D struct {
	K, CIn, COut int
	Stride       int
	SamePad      bool
	W            []float32 // [COut][K][CIn]
	B            []float32
	label        string
}

// NewConv1D returns a He-initialized 1-D convolution.
func NewConv1D(k, cin, cout, stride int, samePad bool, r *rng) *Conv1D {
	c := &Conv1D{
		K: k, CIn: cin, COut: cout, Stride: stride, SamePad: samePad,
		W: make([]float32, cout*k*cin), B: make([]float32, cout),
	}
	heInit(c.W, k*cin, r)
	c.label = fmt.Sprintf("conv1d %dx%d→%d s%d", k, cin, cout, stride)
	return c
}

// Name identifies the layer.
func (c *Conv1D) Name() string { return c.label }

func (c *Conv1D) pad() int {
	if !c.SamePad {
		return 0
	}
	return (c.K - 1) / 2
}

// OutShape computes the output length.
func (c *Conv1D) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[1] != c.CIn {
		return nil, fmt.Errorf("nn: conv1d expects [T,%d], got %v", c.CIn, in)
	}
	p := c.pad()
	ot := (in[0]+2*p-c.K)/c.Stride + 1
	if ot <= 0 {
		return nil, fmt.Errorf("nn: conv1d output empty for input %v", in)
	}
	return []int{ot, c.COut}, nil
}

// Forward computes the 1-D convolution.
func (c *Conv1D) Forward(x *Tensor) (*Tensor, error) {
	os, err := c.OutShape(x.Shape)
	if err != nil {
		return nil, err
	}
	tLen := x.Shape[0]
	p := c.pad()
	out := NewTensor(os...)
	for ot := 0; ot < os[0]; ot++ {
		for oc := 0; oc < c.COut; oc++ {
			sum := c.B[oc]
			for k := 0; k < c.K; k++ {
				st := ot*c.Stride + k - p
				if st < 0 || st >= tLen {
					continue
				}
				for ci := 0; ci < c.CIn; ci++ {
					sum += c.W[(oc*c.K+k)*c.CIn+ci] * x.Data[st*c.CIn+ci]
				}
			}
			out.Data[ot*c.COut+oc] = sum
		}
	}
	return out, nil
}

// Profile counts OT·COut·K·CIn MACs.
func (c *Conv1D) Profile(in []int) (Profile, error) {
	os, err := c.OutShape(in)
	if err != nil {
		return Profile{}, err
	}
	macs := int64(os[0]) * int64(c.COut) * int64(c.K) * int64(c.CIn)
	return Profile{
		MACs:     macs,
		Params:   int64(len(c.W)) + int64(len(c.B)),
		OutElems: int64(os[0]) * int64(os[1]),
	}, nil
}

// --- Pooling and pointwise ------------------------------------------------------

// MaxPool2D pools [H,W,C] by non-overlapping windows.
type MaxPool2D struct{ Size int }

// Name identifies the layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool %d", p.Size) }

// OutShape divides spatial dims by the pool size.
func (p *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: maxpool expects [H,W,C], got %v", in)
	}
	if p.Size <= 0 || in[0] < p.Size || in[1] < p.Size {
		return nil, fmt.Errorf("nn: maxpool %d too large for %v", p.Size, in)
	}
	return []int{in[0] / p.Size, in[1] / p.Size, in[2]}, nil
}

// Forward computes the max over each window.
func (p *MaxPool2D) Forward(x *Tensor) (*Tensor, error) {
	os, err := p.OutShape(x.Shape)
	if err != nil {
		return nil, err
	}
	out := NewTensor(os...)
	for oy := 0; oy < os[0]; oy++ {
		for ox := 0; ox < os[1]; ox++ {
			for c := 0; c < os[2]; c++ {
				m := float32(math.Inf(-1))
				for ky := 0; ky < p.Size; ky++ {
					for kx := 0; kx < p.Size; kx++ {
						v := x.At3(oy*p.Size+ky, ox*p.Size+kx, c)
						if v > m {
							m = v
						}
					}
				}
				out.Set3(oy, ox, c, m)
			}
		}
	}
	return out, nil
}

// Profile: pooling has comparisons, not MACs.
func (p *MaxPool2D) Profile(in []int) (Profile, error) {
	os, err := p.OutShape(in)
	if err != nil {
		return Profile{}, err
	}
	return Profile{OutElems: int64(os[0]) * int64(os[1]) * int64(os[2])}, nil
}

// GlobalAvgPool averages each channel over all spatial positions.
type GlobalAvgPool struct{}

// Name identifies the layer.
func (GlobalAvgPool) Name() string { return "global-avgpool" }

// OutShape returns [C].
func (GlobalAvgPool) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: gap expects [H,W,C], got %v", in)
	}
	return []int{in[2]}, nil
}

// Forward averages spatially.
func (g GlobalAvgPool) Forward(x *Tensor) (*Tensor, error) {
	os, err := g.OutShape(x.Shape)
	if err != nil {
		return nil, err
	}
	out := NewTensor(os...)
	hw := x.Shape[0] * x.Shape[1]
	for c := 0; c < os[0]; c++ {
		var sum float32
		for i := 0; i < hw; i++ {
			sum += x.Data[i*os[0]+c]
		}
		out.Data[c] = sum / float32(hw)
	}
	return out, nil
}

// Profile: adds only.
func (g GlobalAvgPool) Profile(in []int) (Profile, error) {
	os, err := g.OutShape(in)
	if err != nil {
		return Profile{}, err
	}
	return Profile{OutElems: int64(os[0])}, nil
}

// ReLU is the rectifier activation.
type ReLU struct{}

// Name identifies the layer.
func (ReLU) Name() string { return "relu" }

// OutShape is identity.
func (ReLU) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Forward clamps negatives to zero.
func (ReLU) Forward(x *Tensor) (*Tensor, error) {
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Profile: no MACs.
func (ReLU) Profile(in []int) (Profile, error) {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return Profile{OutElems: n}, nil
}

// Softmax normalizes a flat vector to a probability distribution.
type Softmax struct{}

// Name identifies the layer.
func (Softmax) Name() string { return "softmax" }

// OutShape is identity.
func (Softmax) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Forward computes a numerically stable softmax.
func (Softmax) Forward(x *Tensor) (*Tensor, error) {
	out := x.Clone()
	softmaxInPlace(out.Data)
	return out, nil
}

// Profile: exp/normalize only.
func (Softmax) Profile(in []int) (Profile, error) {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return Profile{OutElems: n}, nil
}

// softmaxInPlace applies a stable softmax to v.
func softmaxInPlace(v []float32) {
	if len(v) == 0 {
		return
	}
	max := v[0]
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - max)))
		v[i] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// Flatten reshapes any input to a vector.
type Flatten struct{}

// Name identifies the layer.
func (Flatten) Name() string { return "flatten" }

// OutShape returns the flat element count.
func (Flatten) OutShape(in []int) ([]int, error) {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}, nil
}

// Forward reshapes without copying.
func (Flatten) Forward(x *Tensor) (*Tensor, error) { return x.Reshape(x.Elems()) }

// Profile: free.
func (Flatten) Profile(in []int) (Profile, error) {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return Profile{OutElems: n}, nil
}
