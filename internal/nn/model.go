package nn

import (
	"fmt"
	"strings"
)

// Sequential is a feed-forward chain of layers with a fixed input shape,
// validated at construction so profiling and inference cannot diverge.
type Sequential struct {
	Name     string
	InShape  []int
	layers   []Layer
	shapes   [][]int // shapes[i] is the input shape of layer i; shapes[len] is the output
	profiles []Profile
}

// NewSequential builds and validates a model. It returns an error if any
// layer rejects its input shape.
func NewSequential(name string, inShape []int, layers ...Layer) (*Sequential, error) {
	m := &Sequential{Name: name, InShape: append([]int(nil), inShape...), layers: layers}
	shape := m.InShape
	m.shapes = append(m.shapes, shape)
	for i, l := range layers {
		p, err := l.Profile(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: %s layer %d (%s): %w", name, i, l.Name(), err)
		}
		m.profiles = append(m.profiles, p)
		shape, err = l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: %s layer %d (%s): %w", name, i, l.Name(), err)
		}
		m.shapes = append(m.shapes, shape)
	}
	return m, nil
}

// Layers returns the layer list.
func (m *Sequential) Layers() []Layer { return m.layers }

// NumLayers returns the layer count.
func (m *Sequential) NumLayers() int { return len(m.layers) }

// OutShape returns the model output shape.
func (m *Sequential) OutShape() []int { return m.shapes[len(m.shapes)-1] }

// ShapeAt returns the activation shape entering layer i (i = NumLayers
// yields the output shape).
func (m *Sequential) ShapeAt(i int) []int { return m.shapes[i] }

// Profiles returns per-layer cost profiles.
func (m *Sequential) Profiles() []Profile { return m.profiles }

// TotalMACs sums MACs over all layers.
func (m *Sequential) TotalMACs() int64 {
	var t int64
	for _, p := range m.profiles {
		t += p.MACs
	}
	return t
}

// TotalParams sums parameters over all layers.
func (m *Sequential) TotalParams() int64 {
	var t int64
	for _, p := range m.profiles {
		t += p.Params
	}
	return t
}

// InElems returns the input element count.
func (m *Sequential) InElems() int64 {
	n := int64(1)
	for _, d := range m.InShape {
		n *= int64(d)
	}
	return n
}

// Forward runs the whole model.
func (m *Sequential) Forward(x *Tensor) (*Tensor, error) {
	return m.ForwardRange(x, 0, len(m.layers))
}

// ForwardRange runs layers [from, to) — the primitive a split deployment
// uses: the leaf runs [0, cut), transmits, and the hub runs [cut, end).
func (m *Sequential) ForwardRange(x *Tensor, from, to int) (*Tensor, error) {
	if from < 0 || to > len(m.layers) || from > to {
		return nil, fmt.Errorf("nn: invalid layer range [%d,%d)", from, to)
	}
	if !SameShape(x.Shape, m.shapes[from]) {
		return nil, fmt.Errorf("nn: input shape %v, want %v at layer %d", x.Shape, m.shapes[from], from)
	}
	var err error
	for i := from; i < to; i++ {
		x, err = m.layers[i].Forward(x)
		if err != nil {
			return nil, fmt.Errorf("nn: %s layer %d (%s): %w", m.Name, i, m.layers[i].Name(), err)
		}
	}
	return x, nil
}

// Summary renders a per-layer table (name, output shape, MACs, params,
// activation elements).
func (m *Sequential) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: input %v\n", m.Name, m.InShape)
	fmt.Fprintf(&b, "%-3s %-22s %-14s %12s %10s %10s\n", "#", "layer", "out shape", "MACs", "params", "out elems")
	for i, l := range m.layers {
		p := m.profiles[i]
		fmt.Fprintf(&b, "%-3d %-22s %-14v %12d %10d %10d\n",
			i, l.Name(), m.shapes[i+1], p.MACs, p.Params, p.OutElems)
	}
	fmt.Fprintf(&b, "total MACs %d, params %d\n", m.TotalMACs(), m.TotalParams())
	return b.String()
}
