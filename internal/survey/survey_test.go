package survey

import (
	"math"
	"testing"
	"testing/quick"

	"wiban/internal/units"
)

func TestEveryFig2DeviceConsistent(t *testing.T) {
	// The Fig. 2 reproduction: for every device class, battery capacity
	// divided by platform power must land in the battery-life band the
	// market (and the paper) reports.
	for _, d := range Fig2Devices() {
		life := d.ProjectedLife()
		if !d.Consistent() {
			min, max := d.Claimed.Bounds()
			t.Errorf("%s: projected %v not in claimed %q [%v, %v)",
				d.Name, life, d.Claimed, min, max)
		}
	}
}

func TestFig2CoversBothErasAndAllBands(t *testing.T) {
	devices := Fig2Devices()
	if len(devices) != 11 {
		t.Fatalf("device count = %d, want 11 (6 pre-2024 + 5 AI boom)", len(devices))
	}
	eras := map[Era]int{}
	bands := map[LifeBand]bool{}
	for _, d := range devices {
		eras[d.Era]++
		bands[d.Claimed] = true
	}
	if eras[Pre2024] != 6 || eras[AIBoom2024] != 5 {
		t.Errorf("era split = %v, want 6/5", eras)
	}
	for _, b := range []LifeBand{BandHours3to5, BandSub10h, BandAllDay, BandAllWeek} {
		if !bands[b] {
			t.Errorf("band %v unrepresented", b)
		}
	}
}

func TestFig2ShapeClaims(t *testing.T) {
	devices := Fig2Devices()
	byName := map[string]*Device{}
	for i := range devices {
		byName[devices[i].Name] = &devices[i]
	}
	// Paper shape: rings/trackers outlast watches; the AI-vision devices
	// (glasses, MR headsets) have the shortest life of all.
	if byName["Smart ring"].ProjectedLife() <= byName["Smartwatch"].ProjectedLife() {
		t.Error("ring should outlast smartwatch")
	}
	if byName["Smart glasses"].ProjectedLife() >= byName["AI pin"].ProjectedLife() {
		t.Error("camera glasses should die before audio-first AI pin")
	}
	if byName["MR headset"].ProjectedLife() >= byName["Smartphone"].ProjectedLife() {
		t.Error("MR headset should have shorter life than smartphone")
	}
}

func TestBandBoundsOrdered(t *testing.T) {
	bands := []LifeBand{BandHours3to5, BandSub10h, BandAllDay, BandAllWeek}
	for i := 1; i < len(bands); i++ {
		_, prevMax := bands[i-1].Bounds()
		min, _ := bands[i].Bounds()
		if min < prevMax {
			// Bands may touch but not invert.
			t.Errorf("band %v starts (%v) before %v ends (%v)",
				bands[i], min, bands[i-1], prevMax)
		}
	}
	if LifeBand(99).String() != "LifeBand(99)" {
		t.Error("unknown band string")
	}
	if mn, mx := LifeBand(99).Bounds(); mn != 0 || mx != 0 {
		t.Error("unknown band bounds should be zero")
	}
}

func TestEraString(t *testing.T) {
	if Pre2024.String() != "Pre-2024 Wearables" || AIBoom2024.String() != "2024 Wearable-AI Boom" {
		t.Error("era strings wrong")
	}
	if Era(7).String() != "Era(7)" {
		t.Error("unknown era string wrong")
	}
}

func TestSensingSurveyMonotoneTrend(t *testing.T) {
	// The survey itself need not be monotone (PPG's LED sits above trend)
	// but rate must be strictly increasing as listed.
	pts := SensingSurvey()
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate <= pts[i-1].Rate {
			t.Errorf("survey not rate-ordered at %q", pts[i].Label)
		}
	}
	if len(pts) < 10 {
		t.Errorf("survey has %d points, want a real survey (≥ 10)", len(pts))
	}
}

func TestFitSensingPowerExactRecovery(t *testing.T) {
	// Fitting synthetic data drawn from a known power law must recover it.
	truth := PowerLaw{A: 2e-9, B: 0.9}
	var pts []Point
	for r := 10.0; r < 1e8; r *= 10 {
		pts = append(pts, Point{units.DataRate(r), truth.At(units.DataRate(r)), "synthetic"})
	}
	got := FitSensingPower(pts)
	if math.Abs(got.B-truth.B) > 1e-9 || math.Abs(got.A-truth.A)/truth.A > 1e-6 {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
}

func TestDefaultSensingTrendShape(t *testing.T) {
	trend := DefaultSensingTrend()
	// The exponent should be near-linear (0.7–1.2): sensing power grows
	// roughly proportionally with rate across five decades.
	if trend.B < 0.7 || trend.B > 1.2 {
		t.Errorf("trend exponent = %.2f, want 0.7–1.2", trend.B)
	}
	// Anchor checks (within ~4× of the class values, i.e. survey scatter):
	checks := []struct {
		r    units.DataRate
		want units.Power
	}{
		{3 * units.Kbps, 20 * units.Microwatt},
		{256 * units.Kbps, 1.2 * units.Milliwatt},
		{5 * units.Mbps, 25 * units.Milliwatt},
	}
	for _, c := range checks {
		got := trend.At(c.r)
		ratio := float64(got) / float64(c.want)
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("trend at %v = %v, want within 4× of %v", c.r, got, c.want)
		}
	}
}

func TestTrendFitQuality(t *testing.T) {
	trend := DefaultSensingTrend()
	rms := trend.RMSLogError(SensingSurvey())
	// Survey scatter should be within ~one half-decade RMS.
	if rms > 0.55 {
		t.Errorf("RMS log error = %.2f decades, want ≤ 0.55", rms)
	}
	if rms == 0 {
		t.Error("zero RMS error is implausible for a real survey")
	}
}

func TestPowerLawMonotone(t *testing.T) {
	trend := DefaultSensingTrend()
	f := func(a, b uint32) bool {
		ra := units.DataRate(a%100000000) + 1
		rb := units.DataRate(b%100000000) + 1
		if ra > rb {
			ra, rb = rb, ra
		}
		return trend.At(ra) <= trend.At(rb)+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	if (PowerLaw{A: 1, B: 1}).At(0) != 0 {
		t.Error("power law at rate 0 should be 0")
	}
	if got := FitSensingPower(nil); got.A != 0 || got.B != 0 {
		t.Error("fit of empty survey should be zero")
	}
	if got := FitSensingPower([]Point{{0, 0, "bad"}}); got.A != 0 {
		t.Error("fit of degenerate survey should be zero")
	}
	if (PowerLaw{}).RMSLogError(nil) != 0 {
		t.Error("RMS of empty survey should be 0")
	}
}
