// Package survey holds the two literature/market surveys the paper's
// figures are built from:
//
//   - Fig. 2's catalog of commercial wearables (pre-2024 and the 2024
//     wearable-AI boom) with battery capacity, platform power and the
//     battery-life band the market reports;
//   - Fig. 3's survey of sensing (AFE + ADC) power versus output data
//     rate, cited from Datta et al. (BioCAS 2023), which we reconstruct
//     from public AFE classes and fit with a log-log power law.
//
// Substitution note (DESIGN.md §2): the original surveys aggregate
// proprietary teardown and datasheet numbers. The catalog here is rebuilt
// from the battery-life bands the paper itself states, with capacities and
// platform powers chosen from public specs so that capacity/power lands in
// the stated band — which is exactly the self-consistency Fig. 2 displays.
package survey

import (
	"fmt"
	"math"

	"wiban/internal/energy"
	"wiban/internal/units"
)

// Era distinguishes the two columns of Fig. 2.
type Era int

// Device eras.
const (
	Pre2024 Era = iota
	AIBoom2024
)

// String names the era as in Fig. 2's headers.
func (e Era) String() string {
	switch e {
	case Pre2024:
		return "Pre-2024 Wearables"
	case AIBoom2024:
		return "2024 Wearable-AI Boom"
	default:
		return fmt.Sprintf("Era(%d)", int(e))
	}
}

// LifeBand is a qualitative battery-life class as labeled in Fig. 2.
type LifeBand int

// Battery-life bands from Fig. 2, shortest first.
const (
	BandHours3to5 LifeBand = iota
	BandSub10h
	BandAllDay
	BandAllWeek
)

// String names the band with the figure's wording.
func (b LifeBand) String() string {
	switch b {
	case BandHours3to5:
		return "3-5 hr battery life"
	case BandSub10h:
		return "<10 hr battery life"
	case BandAllDay:
		return "All-day battery life"
	case BandAllWeek:
		return "All-week battery life"
	default:
		return fmt.Sprintf("LifeBand(%d)", int(b))
	}
}

// Bounds returns the duration range [min, max) the band covers. The bands
// are generous on the high side: "all-day" devices commonly stretch to two
// days, "all-week" rings to two weeks.
func (b LifeBand) Bounds() (min, max units.Duration) {
	switch b {
	case BandHours3to5:
		return 2.5 * units.Hour, 6 * units.Hour
	case BandSub10h:
		return 6 * units.Hour, 12 * units.Hour
	case BandAllDay:
		return 12 * units.Hour, 3 * units.Day
	case BandAllWeek:
		return 4 * units.Day, 15 * units.Day
	default:
		return 0, 0
	}
}

// Contains reports whether a projected life falls in the band.
func (b LifeBand) Contains(d units.Duration) bool {
	min, max := b.Bounds()
	return d >= min && d < max
}

// Device is one row of the Fig. 2 catalog.
type Device struct {
	Name           string
	Era            Era
	BatteryMAh     float64
	BatteryVoltage units.Voltage
	// PlatformPower is the average whole-device power under the typical
	// mixed-use profile that the marketed battery life reflects.
	PlatformPower units.Power
	// Claimed is the battery-life band from Fig. 2.
	Claimed LifeBand
}

// Battery returns the device's cell as an energy.Battery (rechargeable
// profile).
func (d *Device) Battery() *energy.Battery {
	return &energy.Battery{
		Name:                 d.Name + " cell",
		CapacityMAh:          d.BatteryMAh,
		Voltage:              d.BatteryVoltage,
		UsableFraction:       0.9,
		SelfDischargePerYear: 0.2,
		ShelfLife:            10 * units.Year,
	}
}

// ProjectedLife returns the battery life our energy model projects for the
// device.
func (d *Device) ProjectedLife() units.Duration {
	return d.Battery().Lifetime(d.PlatformPower)
}

// Consistent reports whether the projection lands in the claimed band —
// the Fig. 2 reproduction check.
func (d *Device) Consistent() bool {
	return d.Claimed.Contains(d.ProjectedLife())
}

// Fig2Devices returns the eleven device classes of Fig. 2.
func Fig2Devices() []Device {
	v := 3.7 * units.Volt
	return []Device{
		// Pre-2024 column.
		{"Smart ring", Pre2024, 20, v, 0.35 * units.Milliwatt, BandAllWeek},
		{"Fitness tracker", Pre2024, 160, v, 3 * units.Milliwatt, BandAllWeek},
		{"Earbuds", Pre2024, 60, v, 5.5 * units.Milliwatt, BandAllDay},
		{"Smartwatch", Pre2024, 310, v, 22 * units.Milliwatt, BandAllDay},
		{"Headphones", Pre2024, 600, v, 36 * units.Milliwatt, BandAllDay},
		{"Smartphone", Pre2024, 4500, 3.85 * units.Volt, 1.8 * units.Watt, BandSub10h},
		// 2024 wearable-AI boom column.
		{"AI pin", AIBoom2024, 320, v, 48 * units.Milliwatt, BandAllDay},
		{"AI pocket assistant", AIBoom2024, 1000, v, 150 * units.Milliwatt, BandAllDay},
		{"AI necklace", AIBoom2024, 210, v, 30 * units.Milliwatt, BandAllDay},
		{"Smart glasses", AIBoom2024, 155, v, 120 * units.Milliwatt, BandHours3to5},
		{"MR headset", AIBoom2024, 5100, 3.85 * units.Volt, 4.9 * units.Watt, BandHours3to5},
	}
}

// --- Fig. 3 sensing-power survey -----------------------------------------

// Point is one surveyed (data rate, sensing power) observation.
type Point struct {
	Rate  units.DataRate
	Power units.Power
	Label string
}

// SensingSurvey returns the reconstructed AFE survey behind Fig. 3: power
// to acquire (not communicate) a signal as a function of the output data
// rate, from temperature sensors through biopotential AFEs, IMUs,
// microphones, up to image sensors at compressed-video rates.
func SensingSurvey() []Point {
	return []Point{
		{16 * units.BitPerSecond, 0.5 * units.Microwatt, "temperature"},
		{32 * units.BitPerSecond, 1 * units.Microwatt, "humidity"},
		{200 * units.BitPerSecond, 2 * units.Microwatt, "pedometer"},
		{3 * units.Kbps, 10 * units.Microwatt, "ECG 1-lead"},
		{3.2 * units.Kbps, 250 * units.Microwatt, "PPG (LED)"},
		{9.6 * units.Kbps, 30 * units.Microwatt, "IMU 6-axis"},
		{12 * units.Kbps, 25 * units.Microwatt, "EMG"},
		{32 * units.Kbps, 80 * units.Microwatt, "EEG 8-ch"},
		{128 * units.Kbps, 300 * units.Microwatt, "audio LQ"},
		{256 * units.Kbps, 600 * units.Microwatt, "voice mic"},
		{768 * units.Kbps, 1.5 * units.Milliwatt, "audio HQ"},
		{1 * units.Mbps, 10 * units.Milliwatt, "camera (QQVGA stream)"},
		{5 * units.Mbps, 35 * units.Milliwatt, "camera (QVGA stream)"},
		{10 * units.Mbps, 80 * units.Milliwatt, "camera (720p stream)"},
	}
}

// PowerLaw is a fitted sensing-power trend P = A·R^B (P in watts, R in
// bits per second).
type PowerLaw struct {
	A float64 // prefactor, watts at 1 bps
	B float64 // exponent
}

// FitSensingPower fits a power law through the survey by least squares in
// log-log space. Points with non-positive rate or power are skipped.
func FitSensingPower(pts []Point) PowerLaw {
	var n float64
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		if p.Rate <= 0 || p.Power <= 0 {
			continue
		}
		x := math.Log10(float64(p.Rate))
		y := math.Log10(float64(p.Power))
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if n < 2 {
		return PowerLaw{}
	}
	b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a := (sy - b*sx) / n
	return PowerLaw{A: math.Pow(10, a), B: b}
}

// At evaluates the trend at rate r.
func (p PowerLaw) At(r units.DataRate) units.Power {
	if r <= 0 {
		return 0
	}
	return units.Power(p.A * math.Pow(float64(r), p.B))
}

// DefaultSensingTrend returns the power law fitted to the full survey —
// the P_sense(R) curve used in the Fig. 3 battery-life projection.
func DefaultSensingTrend() PowerLaw {
	return FitSensingPower(SensingSurvey())
}

// RMSLogError reports the fit quality: root-mean-square error of
// log10(P_fit/P_observed) over the survey. A value near 0.3 means the
// trend is typically within 2× of observations — the scatter Fig. 3's
// survey shows.
func (p PowerLaw) RMSLogError(pts []Point) float64 {
	var n, s float64
	for _, pt := range pts {
		if pt.Rate <= 0 || pt.Power <= 0 {
			continue
		}
		d := math.Log10(float64(p.At(pt.Rate))) - math.Log10(float64(pt.Power))
		s += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / n)
}
