package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestPowerTimesDuration(t *testing.T) {
	tests := []struct {
		name string
		p    Power
		d    Duration
		want Energy
	}{
		{"100pJ/bit at 1bit/s for 1s style", 100 * Microwatt, Second, 100 * Microjoule},
		{"1W for 1h", Watt, Hour, 3600 * Joule},
		{"415nW for 1 day", 415 * Nanowatt, Day, Energy(415e-9 * 86400)},
		{"zero power", 0, Year, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.Times(tt.d)
			if !almostEqual(float64(got), float64(tt.want), 1e-12) {
				t.Errorf("Times() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEnergyOverPower(t *testing.T) {
	// A 1000 mAh / 3 V battery holds 10.8 kJ; at 342.4 µW it lasts ~1 year.
	e := MilliampHour.Energy(3*Volt) * 1000
	if !almostEqual(float64(e), 10800, 1e-9) {
		t.Fatalf("1000 mAh @ 3 V = %v J, want 10800 J", float64(e))
	}
	life := e.Over(342.2 * Microwatt)
	if life.Years() < 0.99 || life.Years() > 1.01 {
		t.Errorf("lifetime at ~342 µW = %v years, want ≈1", life.Years())
	}
	if !math.IsInf(float64(e.Over(0)), 1) {
		t.Errorf("lifetime at 0 power should be +Inf")
	}
}

func TestEnergyPerBit(t *testing.T) {
	// Wi-R headline: 100 pJ/bit at 4 Mbps is 400 µW of comm power.
	p := (100 * PicojoulePerBit).PowerAt(4 * Mbps)
	if !almostEqual(float64(p), 400e-6, 1e-12) {
		t.Errorf("100 pJ/b @ 4 Mbps = %v, want 400 µW", p)
	}
	// BLE-class: 10 nJ/bit at 1 Mbps is 10 mW.
	p = (10 * NanojoulePerBit).PowerAt(1 * Mbps)
	if !almostEqual(float64(p), 10e-3, 1e-12) {
		t.Errorf("10 nJ/b @ 1 Mbps = %v, want 10 mW", p)
	}
	e := (100 * PicojoulePerBit).EnergyFor(8e6)
	if !almostEqual(float64(e), 800e-6, 1e-12) {
		t.Errorf("100 pJ/b for 1 MB = %v, want 800 µJ", e)
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200) // keep within float range
		return almostEqual(DB(FromDB(db)), db, 1e-9) &&
			almostEqual(DBV(FromDBV(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmKnownPoints(t *testing.T) {
	if !almostEqual(DBm(Milliwatt), 0, 1e-9) {
		t.Errorf("1 mW = %v dBm, want 0", DBm(Milliwatt))
	}
	if !almostEqual(DBm(Watt), 30, 1e-9) {
		t.Errorf("1 W = %v dBm, want 30", DBm(Watt))
	}
	if !almostEqual(float64(FromDBm(-90)), 1e-12, 1e-9) {
		t.Errorf("-90 dBm = %v, want 1 pW", FromDBm(-90))
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{2 * Year, "2 yr"},
		{3 * Day, "3 d"},
		{5 * Hour, "5 h"},
		{90 * Second, "1.5 min"},
		{2 * Second, "2 s"},
		{1500 * Microsecond, "1.5 ms"},
		{Duration(math.Inf(1)), "∞"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Duration(%g).String() = %q, want %q", float64(tt.d), got, tt.want)
		}
	}
}

func TestSIFormatStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{(415 * Nanowatt).String(), "415 nW"},
		{(100 * Microwatt).String(), "100 µW"},
		{(6300 * Picojoule).String(), "6.3 nJ"},
		{(4 * Mbps).String(), "4 Mbps"},
		{(30 * Megahertz).String(), "30 MHz"},
		{(150 * Picofarad).String(), "150 pF"},
		{(100 * PicojoulePerBit).String(), "100 pJ/b"},
		{Power(0).String(), "0 W"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("formatted %q, want %q", tt.got, tt.want)
		}
	}
}

func TestSIFormatNegative(t *testing.T) {
	if got := Power(-2.5e-3).String(); !strings.HasPrefix(got, "-2.5 m") {
		t.Errorf("negative power formatted %q", got)
	}
}

func TestRateHelpers(t *testing.T) {
	if bt := (1 * Mbps).BitTime(); !almostEqual(float64(bt), 1e-6, 1e-12) {
		t.Errorf("bit time at 1 Mbps = %v, want 1 µs", bt)
	}
	if tf := (4 * Mbps).TimeFor(4e6); !almostEqual(float64(tf), 1, 1e-12) {
		t.Errorf("4 Mb at 4 Mbps = %v, want 1 s", tf)
	}
	if !math.IsInf(float64(DataRate(0).BitTime()), 1) {
		t.Errorf("bit time at 0 rate should be +Inf")
	}
}

func TestEnergyAt(t *testing.T) {
	if p := (10800 * Joule).At(Year); !almostEqual(float64(p), 10800/31557600.0, 1e-12) {
		t.Errorf("10.8 kJ over a year = %v", p)
	}
	if !math.IsInf(float64((1 * Joule).At(0)), 1) {
		t.Errorf("energy over zero time should be +Inf power")
	}
}

func TestClamp(t *testing.T) {
	f := func(v float64) bool {
		got := Clamp(v, -1, 1)
		return got >= -1 && got <= 1 && (got == v || v < -1 || v > 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerDurationInverse(t *testing.T) {
	// Property: for positive p and d, (p·d)/p == d.
	f := func(pw, dw uint32) bool {
		p := Power(float64(pw%1e6)+1) * Microwatt
		d := Duration(float64(dw%1e6) + 1)
		e := p.Times(d)
		return almostEqual(float64(e.Over(p)), float64(d), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
