// Package units provides typed physical quantities used throughout the
// wiban models: power, energy, data rate, frequency, capacitance, voltage,
// distance and simulated time.
//
// Every quantity is a named float64 in coherent SI units (watts, joules,
// bits per second, hertz, farads, volts, meters, seconds). Keeping the
// quantities typed prevents the classic dimensional mistakes that plague
// energy modeling (joules where watts were meant, pJ/bit where nJ/bit was
// meant), and the String methods render engineering notation so tables read
// like the paper's figures (µW, pJ/bit, Mbps, days of battery life).
package units

import (
	"fmt"
	"math"
)

// Power is an electrical power in watts.
type Power float64

// Common power scales.
const (
	Nanowatt  Power = 1e-9
	Microwatt Power = 1e-6
	Milliwatt Power = 1e-3
	Watt      Power = 1
)

// Energy is an amount of energy in joules.
type Energy float64

// Common energy scales.
const (
	Picojoule  Energy = 1e-12
	Nanojoule  Energy = 1e-9
	Microjoule Energy = 1e-6
	Millijoule Energy = 1e-3
	Joule      Energy = 1
)

// DataRate is an information rate in bits per second.
type DataRate float64

// Common data-rate scales.
const (
	BitPerSecond DataRate = 1
	Kbps         DataRate = 1e3
	Mbps         DataRate = 1e6
	Gbps         DataRate = 1e9
)

// Frequency is a frequency in hertz.
type Frequency float64

// Common frequency scales.
const (
	Hertz     Frequency = 1
	Kilohertz Frequency = 1e3
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
)

// Capacitance is an electrical capacitance in farads.
type Capacitance float64

// Common capacitance scales.
const (
	Picofarad  Capacitance = 1e-12
	Nanofarad  Capacitance = 1e-9
	Microfarad Capacitance = 1e-6
)

// Resistance is an electrical resistance in ohms.
type Resistance float64

// Common resistance scales.
const (
	Ohm     Resistance = 1
	Kiloohm Resistance = 1e3
	Megaohm Resistance = 1e6
)

// Voltage is an electrical potential in volts.
type Voltage float64

// Common voltage scales.
const (
	Microvolt Voltage = 1e-6
	Millivolt Voltage = 1e-3
	Volt      Voltage = 1
)

// Distance is a length in meters.
type Distance float64

// Common distance scales.
const (
	Millimeter Distance = 1e-3
	Centimeter Distance = 1e-2
	Meter      Distance = 1
)

// Duration is a span of simulated or projected wall-clock time in seconds.
// It is distinct from time.Duration because battery-life projections span
// years, beyond what int64 nanoseconds express comfortably, and because the
// models are continuous-time.
type Duration float64

// Common duration scales.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
	Day         Duration = 86400
	Week        Duration = 7 * 86400
	// Year is the Julian year used for "perpetual" (> 1 year) thresholds.
	Year Duration = 365.25 * 86400
)

// EnergyPerBit is a communication or computation efficiency in joules/bit.
type EnergyPerBit float64

// Common energy-efficiency scales.
const (
	PicojoulePerBit EnergyPerBit = 1e-12
	NanojoulePerBit EnergyPerBit = 1e-9
)

// Charge is an electrical charge in coulombs.
type Charge float64

// MilliampHour is the charge of one mAh.
const MilliampHour Charge = 3.6

// --- Arithmetic helpers -----------------------------------------------

// Times returns the energy spent at power p over duration d.
func (p Power) Times(d Duration) Energy { return Energy(float64(p) * float64(d)) }

// Over returns the duration for which energy e sustains power p.
// It returns +Inf for non-positive power.
func (e Energy) Over(p Power) Duration {
	if p <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(float64(e) / float64(p))
}

// At returns the average power of spending energy e over duration d.
func (e Energy) At(d Duration) Power {
	if d <= 0 {
		return Power(math.Inf(1))
	}
	return Power(float64(e) / float64(d))
}

// PowerAt returns the power drawn when transporting rate r at efficiency eb.
func (eb EnergyPerBit) PowerAt(r DataRate) Power {
	return Power(float64(eb) * float64(r))
}

// EnergyFor returns the energy to move n bits at efficiency eb.
func (eb EnergyPerBit) EnergyFor(bits float64) Energy {
	return Energy(float64(eb) * bits)
}

// Energy returns the stored energy of charge q at voltage v.
func (q Charge) Energy(v Voltage) Energy { return Energy(float64(q) * float64(v)) }

// Period returns the period of frequency f.
func (f Frequency) Period() Duration {
	if f <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(1 / float64(f))
}

// BitTime returns the duration of a single bit at rate r.
func (r DataRate) BitTime() Duration {
	if r <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(1 / float64(r))
}

// TimeFor returns the time to move n bits at rate r.
func (r DataRate) TimeFor(bits float64) Duration {
	if r <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(bits / float64(r))
}

// --- Decibel helpers ---------------------------------------------------

// DB converts a power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// DBV converts a voltage (amplitude) ratio to decibels.
func DBV(ratio float64) float64 { return 20 * math.Log10(ratio) }

// FromDBV converts decibels to a voltage (amplitude) ratio.
func FromDBV(db float64) float64 { return math.Pow(10, db/20) }

// DBm converts a power to dBm (decibels relative to one milliwatt).
func DBm(p Power) float64 { return 10 * math.Log10(float64(p)/1e-3) }

// FromDBm converts dBm to a power.
func FromDBm(dbm float64) Power { return Power(1e-3 * math.Pow(10, dbm/10)) }

// --- Formatting --------------------------------------------------------

// siFormat renders v with an SI prefix chosen so the mantissa is in [1,1000).
func siFormat(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	type prefix struct {
		scale float64
		sym   string
	}
	prefixes := []prefix{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	for _, p := range prefixes {
		if v >= p.scale {
			return fmt.Sprintf("%s%.3g %s%s", neg, v/p.scale, p.sym, unit)
		}
	}
	return fmt.Sprintf("%s%.3g %s", neg, v, unit)
}

// String renders the power with an SI prefix (e.g. "415 nW", "2.5 mW").
func (p Power) String() string { return siFormat(float64(p), "W") }

// String renders the energy with an SI prefix (e.g. "6.3 pJ").
func (e Energy) String() string { return siFormat(float64(e), "J") }

// String renders the data rate with an SI prefix (e.g. "4 Mbps").
func (r DataRate) String() string { return siFormat(float64(r), "bps") }

// String renders the frequency with an SI prefix (e.g. "21 MHz").
func (f Frequency) String() string { return siFormat(float64(f), "Hz") }

// String renders the capacitance with an SI prefix (e.g. "150 pF").
func (c Capacitance) String() string { return siFormat(float64(c), "F") }

// String renders the resistance with an SI prefix (e.g. "10 MΩ").
func (r Resistance) String() string { return siFormat(float64(r), "Ω") }

// String renders the voltage with an SI prefix (e.g. "1.2 V").
func (v Voltage) String() string { return siFormat(float64(v), "V") }

// String renders the distance with an SI prefix (e.g. "15 cm" as "150 mm").
func (d Distance) String() string { return siFormat(float64(d), "m") }

// String renders the efficiency with an SI prefix (e.g. "100 pJ/b").
func (eb EnergyPerBit) String() string { return siFormat(float64(eb), "J/b") }

// String renders a duration in the most natural human unit for battery-life
// tables: years, days, hours, minutes, seconds or engineering sub-seconds.
func (d Duration) String() string {
	v := float64(d)
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case v < 0:
		return "-" + (-d).String()
	case v >= float64(Year):
		return fmt.Sprintf("%.3g yr", v/float64(Year))
	case v >= float64(Day):
		return fmt.Sprintf("%.3g d", v/float64(Day))
	case v >= float64(Hour):
		return fmt.Sprintf("%.3g h", v/float64(Hour))
	case v >= float64(Minute):
		return fmt.Sprintf("%.3g min", v/float64(Minute))
	case v >= 1:
		return fmt.Sprintf("%.3g s", v)
	default:
		return siFormat(v, "s")
	}
}

// Days reports the duration in days (the y-axis unit of the paper's Fig. 3).
func (d Duration) Days() float64 { return float64(d) / float64(Day) }

// Years reports the duration in Julian years.
func (d Duration) Years() float64 { return float64(d) / float64(Year) }

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
