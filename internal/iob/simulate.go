package iob

import (
	"fmt"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/phy"
	"wiban/internal/radio"
	"wiban/internal/units"
)

// Simulation bridge: lower a composed Network into the discrete-event
// simulator, deriving each node's packet error rate from the physical
// link budget instead of asking the caller for it.

// SimOptions tunes the lowering.
type SimOptions struct {
	// Seed drives the simulation randomness.
	Seed int64
	// BodyPath is the assumed node-to-hub body path for the link budget
	// (1.5 m default).
	BodyPath units.Distance
	// PacketBits is the framing quantum (8192 default).
	PacketBits int
	// MaxRetries bounds ARQ (5 default).
	MaxRetries int
	// Battery powers every node (the Fig. 3 cell by default).
	Battery *energy.Battery
	// DrainBattery enables in-run battery accounting and node death.
	DrainBattery bool
}

// fill applies defaults.
func (o *SimOptions) fill() {
	if o.BodyPath <= 0 {
		o.BodyPath = 1.5 * units.Meter
	}
	if o.PacketBits <= 0 {
		o.PacketBits = 8192
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.Battery == nil {
		o.Battery = energy.Fig3Battery()
	}
}

// linkPER derives the packet error rate for a node's radio over the body
// path from the PHY link budget.
func linkPER(tr *radio.Transceiver, bodyPath units.Distance, packetBits int) (float64, error) {
	var link *phy.Link
	switch tr.Tech {
	case radio.TechEQS:
		link = phy.WiRLink(bodyPath)
	case radio.TechRF:
		link = phy.BLELink(bodyPath)
	case radio.TechMQS:
		link = phy.MQSLink(bodyPath)
	default:
		return 0, fmt.Errorf("iob: no channel model for %v", tr.Tech)
	}
	per := link.PER(packetBits)
	if per >= 1 {
		return 0, fmt.Errorf("iob: %s link does not close over %v", tr.Name, bodyPath)
	}
	return per, nil
}

// ToSimConfig lowers the network to a bannet configuration.
func (n *Network) ToSimConfig(opts SimOptions) (bannet.Config, error) {
	opts.fill()
	cfg := bannet.Config{Seed: opts.Seed}
	if n.Hub.Compute != nil {
		cfg.HubCompute = n.Hub.Compute
	}
	for i, d := range n.Nodes {
		if d.Sensor == nil || d.Policy == nil || d.Radio == nil {
			return bannet.Config{}, fmt.Errorf("iob: node %q incompletely specified", d.Name)
		}
		per, err := linkPER(d.Radio, opts.BodyPath, opts.PacketBits)
		if err != nil {
			return bannet.Config{}, err
		}
		nc := bannet.NodeConfig{
			ID: i + 1, Name: d.Name,
			Sensor: d.Sensor, Policy: d.Policy, Radio: d.Radio,
			Battery:    opts.Battery,
			PacketBits: opts.PacketBits, PER: per, MaxRetries: opts.MaxRetries,
			DrainBattery: opts.DrainBattery,
		}
		// Offloaded workloads become hub inference specs.
		if d.Workload != nil && d.Arch == HumanInspired {
			nc.Inference = &bannet.InferenceSpec{
				Name:      d.Workload.Model.Name,
				MACs:      d.Workload.Model.TotalMACs(),
				InputBits: d.Workload.Model.InElems() * 8,
			}
		}
		cfg.Nodes = append(cfg.Nodes, nc)
	}
	return cfg, nil
}

// Simulate lowers the network and runs it for the given span.
func (n *Network) Simulate(opts SimOptions, span units.Duration) (*bannet.Report, error) {
	cfg, err := n.ToSimConfig(opts)
	if err != nil {
		return nil, err
	}
	return bannet.Run(cfg, span)
}
