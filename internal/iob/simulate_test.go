package iob

import (
	"testing"

	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

func demoNetwork(t *testing.T) *Network {
	t.Helper()
	kws, err := nn.KWSNet(2)
	if err != nil {
		t.Fatal(err)
	}
	return &Network{
		Name: "sim bridge BAN",
		Hub:  DefaultHub(),
		Nodes: []*NodeDesign{
			HumanInspiredNode("ecg", sensors.ECGPatch(), nil, nil),
			HumanInspiredNode("mic", sensors.MicMono(),
				isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
				&Workload{Model: kws, PerSecond: 2}),
		},
	}
}

func TestNetworkSimulateEndToEnd(t *testing.T) {
	net := demoNetwork(t)
	rep, err := net.Simulate(SimOptions{Seed: 3}, 10*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("nodes in report: %d", len(rep.Nodes))
	}
	ecg := rep.NodeByName("ecg")
	mic := rep.NodeByName("mic")
	if ecg.DeliveryRate() < 0.99 || mic.DeliveryRate() < 0.99 {
		t.Error("physical-PER links should deliver ≈ 100% with ARQ")
	}
	if !ecg.Perpetual {
		t.Errorf("ECG node should be perpetual (life %v)", ecg.ProjectedLife)
	}
	// The mic's workload became a hub inference stream.
	if mic.Inferences == 0 {
		t.Error("offloaded workload produced no inferences")
	}
	if rep.HubComputeEnergy <= 0 {
		t.Error("hub compute energy missing")
	}
}

func TestToSimConfigDerivesPER(t *testing.T) {
	net := demoNetwork(t)
	cfg, err := net.ToSimConfig(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range cfg.Nodes {
		if nc.PER <= 0 || nc.PER >= 0.05 {
			t.Errorf("%s: derived PER %g outside the plausible (0, 0.05) window", nc.Name, nc.PER)
		}
	}
	// A longer body path worsens PER monotonically.
	far, err := net.ToSimConfig(SimOptions{BodyPath: 2 * units.Meter})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Nodes {
		if far.Nodes[i].PER < cfg.Nodes[i].PER {
			t.Errorf("%s: PER improved with distance", cfg.Nodes[i].Name)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := &Network{Name: "bad", Nodes: []*NodeDesign{{Name: "x"}}}
	if _, err := bad.ToSimConfig(SimOptions{}); err == nil {
		t.Error("incomplete node should fail lowering")
	}
}

func TestSimulateAgreesWithBreakdown(t *testing.T) {
	// The simulator's measured average power must agree with the analytic
	// breakdown within 3× (the sim resolves framing overheads and beacon
	// costs the closed form folds into its wake-rate estimate).
	net := demoNetwork(t)
	rep, err := net.Simulate(SimOptions{Seed: 5}, 10*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range net.Nodes {
		b, err := d.AverageBreakdown()
		if err != nil {
			t.Fatal(err)
		}
		sim := rep.NodeByName(d.Name)
		ratio := float64(sim.AvgPower) / float64(b.Total())
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: sim %v vs analytic %v (ratio %.2f)", d.Name, sim.AvgPower, b.Total(), ratio)
		}
	}
}
