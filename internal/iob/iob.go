// Package iob is the core library of this repository: the paper's
// "Human-Inspired Distributed Wearable AI" architecture as a composable
// API.
//
// It models IoB leaf nodes under the two competing architectures —
// the conventional node (sensor + local CPU + radiative radio) and the
// human-inspired node (sensor + optional in-sensor analytics + Wi-R, with
// heavy compute centralized on the on-body hub) — and provides the
// quantitative projections the paper's figures are built from: per-
// component power breakdowns (Fig. 1), battery-life-versus-data-rate
// projection with a perpetual region (Fig. 3), and whole-network
// composition checked against the shared medium's TDMA capacity.
package iob

import (
	"fmt"
	"strings"

	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/mac"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// Architecture selects between the paper's two node organizations.
type Architecture int

// Node architectures (Fig. 1 left vs right).
const (
	// Conventional is today's IoB node: every node carries a CPU and a
	// radiative radio.
	Conventional Architecture = iota
	// HumanInspired is the paper's proposal: leaf nodes are sensors (plus
	// optional ISA) wired to the hub brain over the EQS artificial
	// nervous system.
	HumanInspired
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case Conventional:
		return "conventional"
	case HumanInspired:
		return "human-inspired"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Workload is an AI task associated with a node's stream.
type Workload struct {
	// Model is the network to run per inference.
	Model *nn.Sequential
	// PerSecond is the inference rate.
	PerSecond float64
}

// NodeDesign is a leaf-node composition.
type NodeDesign struct {
	Name string
	Arch Architecture
	// Sensor is the node's front-end.
	Sensor *sensors.Sensor
	// Policy reduces the stream before the link.
	Policy isa.Policy
	// Radio is the node's transceiver.
	Radio *radio.Transceiver
	// Compute is the node's local compute platform (the CPU of a
	// conventional node, or the ISA accelerator); nil for a pure sensor.
	Compute *partition.Platform
	// Workload, if non-nil, is the AI task. A Conventional node runs it
	// on Compute; a HumanInspired node offloads it to the hub.
	Workload *Workload
	// SyncWakesPerSecond is the radio's synchronization wake rate
	// (beacons or connection events); defaults to 10/s.
	SyncWakesPerSecond float64
}

// PowerBreakdown is the Fig. 1 quantity: per-component node power.
type PowerBreakdown struct {
	Sense   units.Power
	Compute units.Power
	Comm    units.Power
}

// Total sums the components.
func (b PowerBreakdown) Total() units.Power { return b.Sense + b.Compute + b.Comm }

// String renders the breakdown.
func (b PowerBreakdown) String() string {
	return fmt.Sprintf("sense %v + compute %v + comm %v = %v",
		b.Sense, b.Compute, b.Comm, b.Total())
}

// LinkRate returns the node's average transmitted rate.
func (d *NodeDesign) LinkRate() units.DataRate {
	return d.Policy.OutputRate(d.Sensor.DataRate())
}

// wakes returns the sync wake rate with its default.
func (d *NodeDesign) wakes() float64 {
	if d.SyncWakesPerSecond > 0 {
		return d.SyncWakesPerSecond
	}
	return 10
}

// AverageBreakdown returns the long-run average per-component power.
func (d *NodeDesign) AverageBreakdown() (PowerBreakdown, error) {
	if d.Sensor == nil || d.Policy == nil || d.Radio == nil {
		return PowerBreakdown{}, fmt.Errorf("iob: node %q incompletely specified", d.Name)
	}
	var b PowerBreakdown
	b.Sense = d.Sensor.AFEPower

	b.Compute = d.Policy.ComputePower()
	if d.Workload != nil && d.Arch == Conventional {
		if d.Compute == nil {
			return PowerBreakdown{}, fmt.Errorf("iob: conventional node %q has a workload but no compute", d.Name)
		}
		perInf := units.Energy(float64(d.Compute.EnergyPerMAC) * float64(d.Workload.Model.TotalMACs()))
		b.Compute += units.Power(float64(perInf)*d.Workload.PerSecond) + d.Compute.IdlePower
	}

	comm, err := d.Radio.AveragePower(d.LinkRate(), d.wakes())
	if err != nil {
		return PowerBreakdown{}, fmt.Errorf("iob: node %q: %w", d.Name, err)
	}
	b.Comm = comm
	return b, nil
}

// ActiveBreakdown returns the component powers while each block is running
// flat out — the classes annotated on Fig. 1 (sensors ~100s µW, CPU ~mW,
// radio ~10s mW for conventional; 10–50 µW / ~100 µW / ~100 µW for
// human-inspired).
func (d *NodeDesign) ActiveBreakdown() PowerBreakdown {
	var b PowerBreakdown
	if d.Sensor != nil {
		b.Sense = d.Sensor.AFEPower
	}
	if d.Compute != nil {
		b.Compute = units.Power(float64(d.Compute.EnergyPerMAC)*d.Compute.MACRate) + d.Compute.IdlePower
	} else if d.Policy != nil {
		b.Compute = d.Policy.ComputePower()
	}
	if d.Radio != nil {
		b.Comm = d.Radio.ActiveTX
	}
	return b
}

// ConventionalNode builds the canonical today's-architecture node for a
// sensor: local MCU runs the workload, BLE ships the results.
func ConventionalNode(name string, s *sensors.Sensor, w *Workload) *NodeDesign {
	resultRate := 2 * units.Kbps // classification results / sync traffic
	return &NodeDesign{
		Name: name, Arch: Conventional,
		Sensor: s,
		Policy: isa.FeatureOnly{Label: "local results", EventsPerSecond: 25,
			BitsPerEvent: int(float64(resultRate) / 25), Power: 0},
		Radio:    radio.BLE42(),
		Compute:  partition.LeafMCU(),
		Workload: w,
	}
}

// HumanInspiredNode builds the paper's node for a sensor: stream (or
// ISA-reduce) over Wi-R, offload the workload to the hub.
func HumanInspiredNode(name string, s *sensors.Sensor, policy isa.Policy, w *Workload) *NodeDesign {
	if policy == nil {
		policy = isa.StreamAll{}
	}
	return &NodeDesign{
		Name: name, Arch: HumanInspired,
		Sensor:   s,
		Policy:   policy,
		Radio:    radio.WiR(),
		Workload: w, // runs on the hub; costs the leaf nothing
	}
}

// --- Network composition ---------------------------------------------------

// HubDesign is the on-body hub ("wearable brain").
type HubDesign struct {
	Name    string
	Radio   *radio.Transceiver
	Battery *energy.Battery
	Compute *partition.Platform
}

// DefaultHub returns a smartwatch-class hub: Wi-R radio, 300 mAh pack,
// NPU-class compute.
func DefaultHub() HubDesign {
	return HubDesign{
		Name:    "wearable brain",
		Radio:   radio.WiR(),
		Battery: energy.LiPo(300),
		Compute: partition.HubSoC(),
	}
}

// Network is a composed body-area network.
type Network struct {
	Name  string
	Hub   HubDesign
	Nodes []*NodeDesign
}

// Demands returns the TDMA demand set of the network (1 kB packets).
func (n *Network) Demands() []mac.Demand {
	var out []mac.Demand
	for i, d := range n.Nodes {
		out = append(out, mac.Demand{NodeID: i, Rate: d.LinkRate(), PacketBits: 8192})
	}
	return out
}

// TotalLinkRate sums all nodes' average rates.
func (n *Network) TotalLinkRate() units.DataRate {
	var t units.DataRate
	for _, d := range n.Nodes {
		t += d.LinkRate()
	}
	return t
}

// Schedulable checks the network against a TDMA configuration (the
// default Wi-R superframe if nil).
func (n *Network) Schedulable(t *mac.TDMA) error {
	if t == nil {
		t = mac.DefaultTDMA()
	}
	s, err := t.Build(n.Demands())
	if err != nil {
		return err
	}
	return s.Validate()
}

// HubComputeLoad returns the hub-side MAC/s from all offloaded workloads.
func (n *Network) HubComputeLoad() float64 {
	var macs float64
	for _, d := range n.Nodes {
		if d.Workload != nil && d.Arch == HumanInspired {
			macs += float64(d.Workload.Model.TotalMACs()) * d.Workload.PerSecond
		}
	}
	return macs
}

// HubPower estimates the hub's average power: receive side of all node
// traffic plus offloaded compute plus its idle floor.
func (n *Network) HubPower() units.Power {
	rx := units.Power(0)
	if n.Hub.Radio != nil {
		duty := float64(n.TotalLinkRate()) / float64(n.Hub.Radio.Goodput)
		if duty > 1 {
			duty = 1
		}
		rx = units.Power(duty * float64(n.Hub.Radio.ActiveRX))
	}
	comp := units.Power(0)
	if n.Hub.Compute != nil {
		comp = units.Power(float64(n.Hub.Compute.EnergyPerMAC)*n.HubComputeLoad()) +
			n.Hub.Compute.IdlePower
	}
	return rx + comp
}

// Summary renders the network as a table of node breakdowns plus hub load.
func (n *Network) Summary() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d nodes, hub %s)\n", n.Name, len(n.Nodes), n.Hub.Name)
	fmt.Fprintf(&b, "%-18s %-15s %-12s %-12s %-12s %-12s %s\n",
		"node", "arch", "link rate", "sense", "compute", "comm", "total")
	for _, d := range n.Nodes {
		br, err := d.AverageBreakdown()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-18s %-15s %-12v %-12v %-12v %-12v %v\n",
			d.Name, d.Arch, d.LinkRate(), br.Sense, br.Compute, br.Comm, br.Total())
	}
	fmt.Fprintf(&b, "aggregate link rate %v; hub power %v (compute %.1f MMAC/s)\n",
		n.TotalLinkRate(), n.HubPower(), n.HubComputeLoad()/1e6)
	return b.String(), nil
}
