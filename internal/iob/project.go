package iob

import (
	"fmt"
	"math"

	"wiban/internal/energy"
	"wiban/internal/radio"
	"wiban/internal/survey"
	"wiban/internal/units"
)

// Projector reproduces Fig. 3: battery life of a wearable node as a
// function of its data rate, with total power = sensing (survey trend) +
// communication (transceiver model), on a stated battery. Computation is
// taken as negligible, matching the figure's first-order assumption.
type Projector struct {
	Battery *energy.Battery
	Radio   *radio.Transceiver
	Trend   survey.PowerLaw
	// SyncWakesPerSecond charges the radio's synchronization overhead.
	SyncWakesPerSecond float64
}

// NewFig3Projector returns the paper's configuration: 1000 mAh battery,
// Wi-R at 100 pJ/bit, sensing power from the BioCAS'23 survey fit.
func NewFig3Projector() *Projector {
	return &Projector{
		Battery:            energy.Fig3Battery(),
		Radio:              radio.WiR(),
		Trend:              survey.DefaultSensingTrend(),
		SyncWakesPerSecond: 10,
	}
}

// Projection is one point of the Fig. 3 curve.
type Projection struct {
	Rate      units.DataRate
	Sense     units.Power
	Comm      units.Power
	Total     units.Power
	Life      units.Duration
	Perpetual bool
}

// At projects one data rate using the survey trend for sensing power.
func (p *Projector) At(rate units.DataRate) (Projection, error) {
	return p.at(rate, p.Trend.At(rate))
}

// at projects with an explicit sensing power.
func (p *Projector) at(rate units.DataRate, sense units.Power) (Projection, error) {
	comm, err := p.Radio.AveragePower(rate, p.SyncWakesPerSecond)
	if err != nil {
		return Projection{}, fmt.Errorf("iob: projecting %v: %w", rate, err)
	}
	pr := Projection{Rate: rate, Sense: sense, Comm: comm, Total: sense + comm}
	pr.Life = p.Battery.Lifetime(pr.Total)
	pr.Perpetual = pr.Life >= energy.PerpetualLife
	return pr, nil
}

// Sweep projects a log-spaced rate sweep with pointsPerDecade points from
// lo to hi inclusive.
func (p *Projector) Sweep(lo, hi units.DataRate, pointsPerDecade int) ([]Projection, error) {
	if lo <= 0 || hi <= lo || pointsPerDecade < 1 {
		return nil, fmt.Errorf("iob: invalid sweep [%v, %v] @ %d/decade", lo, hi, pointsPerDecade)
	}
	var out []Projection
	step := math.Pow(10, 1/float64(pointsPerDecade))
	for r := float64(lo); r <= float64(hi)*1.0000001; r *= step {
		pr, err := p.At(units.DataRate(r))
		if err != nil {
			// Beyond the radio's goodput the curve simply ends.
			break
		}
		out = append(out, pr)
	}
	return out, nil
}

// PerpetualBoundary returns the highest data rate that still projects more
// than a year of battery life — the right edge of Fig. 3's "perpetually
// operable region". It returns 0 if no rate qualifies.
func (p *Projector) PerpetualBoundary() units.DataRate {
	lo, hi := units.DataRate(1), p.Radio.Goodput
	at := func(r units.DataRate) bool {
		pr, err := p.At(r)
		return err == nil && pr.Perpetual
	}
	if !at(lo) {
		return 0
	}
	if at(hi) {
		return hi
	}
	for i := 0; i < 80; i++ {
		mid := units.DataRate(float64(lo+hi) / 2)
		if at(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// DeviceMarker is a concrete device class placed on the Fig. 3 axes with
// its own (not trend-fitted) sensing power.
type DeviceMarker struct {
	Name  string
	Rate  units.DataRate
	Sense units.Power
}

// Fig3Markers returns the device classes the paper annotates on Fig. 3.
func Fig3Markers() []DeviceMarker {
	return []DeviceMarker{
		{"biopotential patch", 3 * units.Kbps, 10 * units.Microwatt},
		{"smart ring", 3.2 * units.Kbps, 250 * units.Microwatt},
		{"fitness tracker", 12.8 * units.Kbps, 280 * units.Microwatt},
		{"audio AI wearable", 256 * units.Kbps, 600 * units.Microwatt},
		{"video AI node (MJPEG)", 1.4 * units.Mbps, 35 * units.Milliwatt},
	}
}

// Mark projects a device marker with its own sensing power.
func (p *Projector) Mark(m DeviceMarker) (Projection, error) {
	return p.at(m.Rate, m.Sense)
}
