package iob

import (
	"math"
	"strings"
	"testing"

	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// radioBLE aliases the BLE baseline for the projector comparison test.
func radioBLE() *radio.Transceiver { return radio.BLE42() }

func ecgWorkload(t *testing.T) *Workload {
	t.Helper()
	m, err := nn.ECGNet(1)
	if err != nil {
		t.Fatal(err)
	}
	return &Workload{Model: m, PerSecond: 1.2} // one beat classification per beat
}

func TestFig1ActiveBreakdownClasses(t *testing.T) {
	// Fig. 1's annotated classes. Conventional: sensors ~100s µW (class
	// range spans 10 µW bio to mW video — we use the ECG node), CPU ~mW,
	// radio ~10s mW. Human-inspired: sensor 10–50 µW, ISA ~100 µW class,
	// Wi-R ~100 µW class.
	conv := ConventionalNode("ecg-conv", sensors.ECGPatch(), ecgWorkload(t))
	b := conv.ActiveBreakdown()
	if b.Compute < 1*units.Milliwatt || b.Compute > 5*units.Milliwatt {
		t.Errorf("conventional CPU active = %v, want ~mW class", b.Compute)
	}
	if b.Comm < 10*units.Milliwatt || b.Comm > 50*units.Milliwatt {
		t.Errorf("conventional radio active = %v, want ~10s mW class", b.Comm)
	}

	hi := HumanInspiredNode("ecg-hi", sensors.ECGPatch(), nil, ecgWorkload(t))
	h := hi.ActiveBreakdown()
	if h.Sense > 50*units.Microwatt {
		t.Errorf("human-inspired sensor = %v, want 10–50 µW", h.Sense)
	}
	if h.Comm > 500*units.Microwatt {
		t.Errorf("Wi-R active = %v, want ~100s µW at most", h.Comm)
	}
	// The architectural punchline: total active power drops by ≥ 20×.
	if ratio := float64(b.Total()) / float64(h.Total()); ratio < 20 {
		t.Errorf("active power ratio conv/hi = %.0f, want ≥ 20", ratio)
	}
}

func TestFig1AverageBreakdown(t *testing.T) {
	conv := ConventionalNode("ecg-conv", sensors.ECGPatch(), ecgWorkload(t))
	hi := HumanInspiredNode("ecg-hi", sensors.ECGPatch(), nil, ecgWorkload(t))
	cb, err := conv.AverageBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := hi.AverageBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	// Conventional node: BLE sync overhead + local CPU pins it well above
	// the human-inspired node even on average.
	if ratio := float64(cb.Total()) / float64(hb.Total()); ratio < 5 {
		t.Errorf("average power ratio conv/hi = %.1f, want ≥ 5 (conv %v, hi %v)",
			ratio, cb.Total(), hb.Total())
	}
	// Human-inspired node with the workload offloaded spends nothing on
	// compute.
	if hb.Compute != 0 {
		t.Errorf("offloaded workload should cost the leaf 0 compute, got %v", hb.Compute)
	}
	if s := cb.String(); !strings.Contains(s, "sense") {
		t.Error("breakdown String malformed")
	}
}

func TestBreakdownValidation(t *testing.T) {
	var d NodeDesign
	if _, err := d.AverageBreakdown(); err == nil {
		t.Error("empty design should fail")
	}
	bad := HumanInspiredNode("x", sensors.ECGPatch(), nil, nil)
	bad.Arch = Conventional
	bad.Workload = ecgWorkload(t)
	bad.Compute = nil
	if _, err := bad.AverageBreakdown(); err == nil {
		t.Error("conventional workload without compute should fail")
	}
	if Architecture(9).String() != "Architecture(9)" {
		t.Error("unknown architecture string")
	}
	if Conventional.String() != "conventional" || HumanInspired.String() != "human-inspired" {
		t.Error("architecture names wrong")
	}
}

func TestFig3SweepShape(t *testing.T) {
	p := NewFig3Projector()
	sweep, err := p.Sweep(1, 3.9*units.Mbps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) < 20 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	// Life must be monotone non-increasing in rate.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Life > sweep[i-1].Life {
			t.Errorf("life not monotone at %v", sweep[i].Rate)
		}
	}
	// Low-rate end: perpetual. High-rate end: not.
	if !sweep[0].Perpetual {
		t.Error("1 bps node should be perpetual")
	}
	if sweep[len(sweep)-1].Perpetual {
		t.Error("multi-Mbps node should not be perpetual")
	}
}

func TestFig3PerpetualBoundary(t *testing.T) {
	p := NewFig3Projector()
	b := p.PerpetualBoundary()
	// The boundary should sit in the tens-of-kbps decade: biopotential
	// nodes (kbps) are comfortably inside, audio (256 kbps) is outside.
	if b < 3*units.Kbps || b > 300*units.Kbps {
		t.Errorf("perpetual boundary = %v, want within ~10–300 kbps", b)
	}
	inside, _ := p.At(b * 0.9)
	outside, _ := p.At(b * 1.1)
	if !inside.Perpetual || outside.Perpetual {
		t.Error("boundary is not a boundary")
	}
}

func TestFig3MarkersMatchPaperRegions(t *testing.T) {
	// The paper's annotations: biopotential patches, smart rings and
	// fitness trackers are perpetually operable; audio-input AI wearables
	// reach all-week; AI video nodes reach all-day.
	p := NewFig3Projector()
	for _, m := range Fig3Markers() {
		pr, err := p.Mark(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		switch m.Name {
		case "biopotential patch":
			if !pr.Perpetual {
				t.Errorf("%s: life %v, want perpetual", m.Name, pr.Life)
			}
		case "smart ring", "fitness tracker":
			if !pr.Perpetual {
				t.Errorf("%s: life %v, want perpetual", m.Name, pr.Life)
			}
		case "audio AI wearable":
			if pr.Life < units.Week {
				t.Errorf("%s: life %v, want ≥ all-week", m.Name, pr.Life)
			}
			if pr.Perpetual {
				t.Errorf("%s: should not be perpetual", m.Name)
			}
		case "video AI node (MJPEG)":
			if pr.Life < units.Day || pr.Life > 2*units.Week {
				t.Errorf("%s: life %v, want ≥ all-day (and below audio)", m.Name, pr.Life)
			}
		}
	}
}

func TestFig3CommVsSenseStructure(t *testing.T) {
	// On Wi-R the communication power is a minority of the budget across
	// the whole sweep — the structural reason the node no longer needs a
	// high-power radio. At 1 Mbps, comm = 100 pJ/b × 1 Mbps = 100 µW while
	// trend sensing is mWs.
	p := NewFig3Projector()
	pr, err := p.At(1 * units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Comm >= pr.Sense {
		t.Errorf("at 1 Mbps: comm %v should be below sensing %v on Wi-R", pr.Comm, pr.Sense)
	}
}

func TestFig3WiRVersusBLELifetimes(t *testing.T) {
	// Replacing the radio with BLE shifts the whole curve down; at EEG
	// rates (32 kbps) the Wi-R node is perpetual and the BLE node is not.
	wir := NewFig3Projector()
	ble := NewFig3Projector()
	ble.Radio = radioBLE()
	rate := 32 * units.Kbps
	pw, err := wir.At(rate)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ble.At(rate)
	if err != nil {
		t.Fatal(err)
	}
	if !pw.Perpetual {
		t.Errorf("Wi-R EEG node life %v, want perpetual", pw.Life)
	}
	if pb.Perpetual {
		t.Errorf("BLE EEG node life %v, should not be perpetual", pb.Life)
	}
	if pb.Life >= pw.Life {
		t.Error("BLE life should be shorter")
	}
}

func TestSweepValidation(t *testing.T) {
	p := NewFig3Projector()
	if _, err := p.Sweep(0, units.Kbps, 4); err == nil {
		t.Error("zero lo should fail")
	}
	if _, err := p.Sweep(units.Kbps, units.Kbps/2, 4); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := p.Sweep(1, units.Kbps, 0); err == nil {
		t.Error("zero density should fail")
	}
	if _, err := p.At(100 * units.Mbps); err == nil {
		t.Error("rate beyond goodput should fail")
	}
}

func TestNetworkComposition(t *testing.T) {
	kws, err := nn.KWSNet(2)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{
		Name: "demo BAN",
		Hub:  DefaultHub(),
		Nodes: []*NodeDesign{
			HumanInspiredNode("ecg", sensors.ECGPatch(), nil, ecgWorkload(t)),
			HumanInspiredNode("imu", sensors.IMU6Axis(), nil, nil),
			HumanInspiredNode("mic", sensors.MicMono(),
				isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
				&Workload{Model: kws, PerSecond: 2}),
			HumanInspiredNode("cam", sensors.CameraQVGA(),
				isa.Compress{Label: "MJPEG q50", MeasuredRatio: 8, Power: 500 * units.Microwatt}, nil),
		},
	}
	if err := net.Schedulable(nil); err != nil {
		t.Fatalf("network should be schedulable: %v", err)
	}
	if net.TotalLinkRate() >= net.Hub.Radio.Goodput {
		t.Errorf("aggregate rate %v exceeds medium goodput", net.TotalLinkRate())
	}
	// The hub absorbs all AI compute.
	if net.HubComputeLoad() <= 0 {
		t.Error("hub compute load missing")
	}
	if hp := net.HubPower(); hp < 50*units.Milliwatt || hp > units.Watt {
		t.Errorf("hub power %v implausible for a smartwatch-class hub", hp)
	}
	sum, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ecg", "cam", "aggregate"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestNetworkOverloadDetected(t *testing.T) {
	net := &Network{
		Name: "overloaded",
		Hub:  DefaultHub(),
		Nodes: []*NodeDesign{
			HumanInspiredNode("cam1", sensors.CameraQVGA(), nil, nil), // 9.2 Mbps raw
		},
	}
	if err := net.Schedulable(nil); err == nil {
		t.Error("raw QVGA stream cannot fit a 4 Mbps medium")
	}
}

func TestLinkRateUsesPolicy(t *testing.T) {
	raw := HumanInspiredNode("mic", sensors.MicMono(), nil, nil)
	comp := HumanInspiredNode("mic", sensors.MicMono(),
		isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 0}, nil)
	if got := raw.LinkRate(); math.Abs(float64(got-256*units.Kbps)) > 1 {
		t.Errorf("raw link rate %v", got)
	}
	if got := comp.LinkRate(); math.Abs(float64(got-64*units.Kbps)) > 1 {
		t.Errorf("compressed link rate %v", got)
	}
}
