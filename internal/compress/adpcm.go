package compress

// IMA ADPCM (DVI4) audio codec: 4 bits per 16-bit sample, the classic
// ultra-cheap 4:1 speech compressor — light enough for a microwatt-class
// leaf node, which is why the audio pipelines use it before the link.

// imaIndexTable adjusts the step index from each 4-bit code.
var imaIndexTable = [16]int{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

// imaStepTable is the standard 89-entry step size table.
var imaStepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// adpcmState is the codec predictor state.
type adpcmState struct {
	predictor int // int16 range
	index     int // 0..88
}

// encodeSample codes one sample and updates the state.
func (st *adpcmState) encodeSample(s int16) byte {
	step := imaStepTable[st.index]
	diff := int(s) - st.predictor

	var code byte
	if diff < 0 {
		code = 8
		diff = -diff
	}
	// Quantize diff against step: bits 2,1,0 correspond to step, step/2,
	// step/4.
	if diff >= step {
		code |= 4
		diff -= step
	}
	if diff >= step/2 {
		code |= 2
		diff -= step / 2
	}
	if diff >= step/4 {
		code |= 1
	}
	st.decodeSample(code) // keep encoder/decoder predictors in lockstep
	return code
}

// decodeSample reconstructs one sample from a code and updates the state.
func (st *adpcmState) decodeSample(code byte) int16 {
	step := imaStepTable[st.index]
	diff := step >> 3
	if code&4 != 0 {
		diff += step
	}
	if code&2 != 0 {
		diff += step >> 1
	}
	if code&1 != 0 {
		diff += step >> 2
	}
	if code&8 != 0 {
		st.predictor -= diff
	} else {
		st.predictor += diff
	}
	if st.predictor > 32767 {
		st.predictor = 32767
	} else if st.predictor < -32768 {
		st.predictor = -32768
	}
	st.index += imaIndexTable[code]
	if st.index < 0 {
		st.index = 0
	} else if st.index > 88 {
		st.index = 88
	}
	return int16(st.predictor)
}

// ADPCMEncode compresses 16-bit samples to 4 bits each. Format:
// uvarint(count), int16 initial predictor, byte index, packed nibbles
// (high nibble first).
func ADPCMEncode(samples []int16) []byte {
	out := appendUvarint(nil, uint64(len(samples)))
	var st adpcmState
	if len(samples) > 0 {
		st.predictor = int(samples[0])
	}
	out = append(out, byte(uint16(st.predictor)>>8), byte(uint16(st.predictor)))
	out = append(out, byte(st.index))
	var cur byte
	for i, s := range samples {
		code := st.encodeSample(s)
		if i%2 == 0 {
			cur = code << 4
		} else {
			out = append(out, cur|code)
		}
	}
	if len(samples)%2 == 1 {
		out = append(out, cur)
	}
	return out
}

// ADPCMDecode reverses ADPCMEncode. The reconstruction is lossy; the
// decoder output tracks the encoder's internal prediction exactly.
func ADPCMDecode(src []byte) ([]int16, error) {
	n, k := uvarint(src)
	if k == 0 || n > 1<<30 {
		return nil, ErrCorrupt
	}
	src = src[k:]
	if len(src) < 3 {
		return nil, ErrCorrupt
	}
	var st adpcmState
	st.predictor = int(int16(uint16(src[0])<<8 | uint16(src[1])))
	st.index = int(src[2])
	if st.index > 88 {
		return nil, ErrCorrupt
	}
	src = src[3:]
	need := (int(n) + 1) / 2
	if len(src) < need {
		return nil, ErrCorrupt
	}
	out := make([]int16, 0, n)
	for i := uint64(0); i < n; i++ {
		b := src[i/2]
		var code byte
		if i%2 == 0 {
			code = b >> 4
		} else {
			code = b & 0x0f
		}
		out = append(out, st.decodeSample(code))
	}
	return out, nil
}
