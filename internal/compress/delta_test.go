package compress

import (
	"bytes"
	"math"
	"testing"
)

// TestBitWriterReaderBoundaries round-trips bit runs chosen to land on
// every alignment: single bits, exact byte multiples, 7/9-bit straddles
// and full 64-bit words, through the exported BitWriter/BitReader.
func TestBitWriterReaderBoundaries(t *testing.T) {
	widths := []uint{1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64}
	var w BitWriter
	var want []uint64
	for i, n := range widths {
		// A value pattern exercising both all-ones and sparse bits at
		// each width.
		v := (uint64(0xdeadbeefcafef00d) >> uint(i)) & (math.MaxUint64 >> (64 - n))
		w.WriteBits(v, n)
		want = append(want, v)
	}
	buf := w.Bytes()
	r := NewBitReader(buf)
	for i, n := range widths {
		got, err := r.ReadBits(n)
		if err != nil {
			t.Fatalf("ReadBits(%d) at %d: %v", n, i, err)
		}
		if got != want[i] {
			t.Fatalf("width %d: got %#x want %#x", n, got, want[i])
		}
	}
	// Reading past the zero-padded tail must fail rather than invent bits.
	if _, err := r.ReadBits(8); err == nil {
		t.Error("ReadBits past end-of-stream succeeded")
	}
}

// TestBitRoundTripAtBlockEdges writes exactly 8·k bits so the buffer ends
// on a byte boundary with no padding, then one extra bit to force a
// padded final byte — both must round-trip.
func TestBitRoundTripAtBlockEdges(t *testing.T) {
	for _, extra := range []uint{0, 1} {
		var w BitWriter
		for i := 0; i < 16; i++ {
			w.WriteBits(uint64(i), 8)
		}
		if extra > 0 {
			w.WriteBits(1, extra)
		}
		buf := w.Bytes()
		wantLen := 16 + int(extra+7)/8
		if len(buf) != wantLen {
			t.Fatalf("extra=%d: len=%d want %d", extra, len(buf), wantLen)
		}
		r := NewBitReader(buf)
		for i := 0; i < 16; i++ {
			v, err := r.ReadBits(8)
			if err != nil || v != uint64(i) {
				t.Fatalf("extra=%d byte %d: %d, %v", extra, i, v, err)
			}
		}
		if extra > 0 {
			if v, err := r.ReadBits(1); err != nil || v != 1 {
				t.Fatalf("extra bit: %d, %v", v, err)
			}
		}
	}
}

// TestDeltaIntsRoundTrip covers monotone, alternating-sign and extreme
// columns, including the int64 limits where the delta itself overflows
// (two's-complement wraparound must still round-trip).
func TestDeltaIntsRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0, -1, -2},
		{0, math.MaxInt64, math.MinInt64, -1, 1},
		{1 << 40, 1<<40 + 1, 1<<40 - 7},
	}
	for i, vals := range cases {
		enc := AppendDeltaInts(nil, vals)
		dec := make([]int64, len(vals))
		n, err := DecodeDeltaInts(enc, dec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(enc) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		for j := range vals {
			if dec[j] != vals[j] {
				t.Fatalf("case %d[%d]: got %d want %d", i, j, dec[j], vals[j])
			}
		}
	}
	// A sorted small-delta column must actually compress.
	ramp := make([]int64, 1000)
	for i := range ramp {
		ramp[i] = int64(1e9) + int64(i)
	}
	if enc := AppendDeltaInts(nil, ramp); len(enc) > 1010 {
		t.Errorf("ramp column: %d bytes for 1000 values, want ≈1 byte/value", len(enc))
	}
}

// TestDelta2IntsRoundTrip covers the delta-of-delta codec across the same
// adversarial shapes as the first-order codec, plus the workload it
// exists for: perfectly periodic timestamp columns.
func TestDelta2IntsRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{7},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0, -1, -2},
		{0, math.MaxInt64, math.MinInt64, -1, 1},
		{1 << 40, 1<<40 + 1, 1<<40 - 7},
		{1000, 2000, 3000, 3000, 5000, 4999},
	}
	for i, vals := range cases {
		enc := AppendDelta2Ints(nil, vals)
		dec := make([]int64, len(vals))
		n, err := DecodeDelta2Ints(enc, dec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(enc) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		for j := range vals {
			if dec[j] != vals[j] {
				t.Fatalf("case %d[%d]: got %d want %d", i, j, dec[j], vals[j])
			}
		}
	}
	// The point of second-order deltas: a fixed-cadence timestamp column
	// costs one byte per element after the ramp is established, even when
	// the cadence itself needs a wide varint every sample under
	// first-order deltas.
	stamps := make([]int64, 1000)
	for i := range stamps {
		stamps[i] = int64(i+1) * 30_000 // 30 s cadence in ms
	}
	d2 := AppendDelta2Ints(nil, stamps)
	d1 := AppendDeltaInts(nil, stamps)
	if len(d2) > 1010 {
		t.Errorf("periodic column: %d bytes for 1000 stamps, want ≈1 byte/stamp", len(d2))
	}
	if len(d2) >= len(d1) {
		t.Errorf("delta-of-delta (%d bytes) did not beat first-order (%d bytes) on its own workload", len(d2), len(d1))
	}
}

// TestDelta2Truncated checks the second-order decoder reports ErrCorrupt
// on every mid-element cut.
func TestDelta2Truncated(t *testing.T) {
	enc := AppendDelta2Ints(nil, []int64{1 << 50, -(1 << 50), 3})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeDelta2Ints(enc[:cut], make([]int64, 3)); err == nil {
			t.Fatalf("cut=%d decoded", cut)
		}
	}
}

// TestXorFloatsRoundTrip checks exact bit-level reproduction including
// negative zero, NaN payloads and infinities.
func TestXorFloatsRoundTrip(t *testing.T) {
	vals := []float64{0, 1, 1, 1.0000000001, -3.5, math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), math.NaN(), 2.5e-300, 1e300}
	enc := AppendXorFloats(nil, vals)
	dec := make([]float64, len(vals))
	n, err := DecodeXorFloats(enc, dec)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i, v := range vals {
		if math.Float64bits(dec[i]) != math.Float64bits(v) {
			t.Errorf("[%d]: got %x want %x", i, math.Float64bits(dec[i]), math.Float64bits(v))
		}
	}
	// A repeated value costs one byte after the first occurrence.
	flat := AppendXorFloats(nil, []float64{42.125, 42.125, 42.125, 42.125})
	if want := len(AppendXorFloats(nil, []float64{42.125})) + 3; len(flat) != want {
		t.Errorf("constant column: %d bytes, want %d", len(flat), want)
	}
}

// TestPackBools round-trips lengths straddling the byte boundary.
func TestPackBools(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = i%3 == 0
		}
		enc := PackBools(nil, vals)
		if len(enc) != PackedBoolLen(n) {
			t.Fatalf("n=%d: %d bytes, want %d", n, len(enc), PackedBoolLen(n))
		}
		dec := make([]bool, n)
		if err := UnpackBools(enc, dec); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("n=%d[%d]: got %v", n, i, dec[i])
			}
		}
	}
	if err := UnpackBools(nil, make([]bool, 1)); err == nil {
		t.Error("UnpackBools on short input succeeded")
	}
}

// TestDecodeTruncated checks every decoder reports ErrCorrupt, not
// garbage, when the stream is cut mid-element.
func TestDecodeTruncated(t *testing.T) {
	enc := AppendDeltaInts(nil, []int64{1 << 50, -(1 << 50)})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeDeltaInts(enc[:cut], make([]int64, 2)); err == nil {
			t.Fatalf("ints: cut=%d decoded", cut)
		}
	}
	fenc := AppendXorFloats(nil, []float64{1e300, -1e-300})
	for cut := 0; cut < len(fenc); cut++ {
		if _, err := DecodeXorFloats(fenc[:cut], make([]float64, 2)); err == nil {
			t.Fatalf("floats: cut=%d decoded", cut)
		}
	}
	// Overlong varint (11 continuation bytes) must be rejected.
	over := bytes.Repeat([]byte{0x80}, 11)
	if _, n := DecodeUvarint(over); n != 0 {
		t.Error("overlong varint accepted")
	}
}
