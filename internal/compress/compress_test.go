package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wiban/internal/sensors"
	"wiban/internal/units"
)

// --- bit I/O ---------------------------------------------------------------

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0b101, 3)
	w.writeBits(0xABCD, 16)
	w.writeBits(1, 1)
	w.writeBits(0x3FFFFFFFF, 34)
	buf := w.bytes()
	r := &bitReader{buf: buf}
	for _, tt := range []struct {
		n    uint
		want uint64
	}{{3, 0b101}, {16, 0xABCD}, {1, 1}, {34, 0x3FFFFFFFF}} {
		got, err := r.readBits(tt.n)
		if err != nil || got != tt.want {
			t.Fatalf("readBits(%d) = %x, %v; want %x", tt.n, got, err, tt.want)
		}
	}
}

func TestBitIOProperty(t *testing.T) {
	f := func(vals []uint32, widths []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		w := &bitWriter{}
		var seq []struct {
			v uint64
			n uint
		}
		for i, v := range vals {
			n := uint(1)
			if i < len(widths) {
				n = uint(widths[i]%32) + 1
			}
			mv := uint64(v) & ((1 << n) - 1)
			seq = append(seq, struct {
				v uint64
				n uint
			}{mv, n})
			w.writeBits(mv, n)
		}
		r := &bitReader{buf: w.bytes()}
		for _, s := range seq {
			got, err := r.readBits(s.n)
			if err != nil || got != s.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := &bitWriter{}
	qs := []uint32{0, 1, 7, 31, 32, 33, 100, 1000}
	for _, q := range qs {
		w.writeUnary(q)
	}
	r := &bitReader{buf: w.bytes()}
	for _, q := range qs {
		got, err := r.readUnary()
		if err != nil || got != q {
			t.Fatalf("readUnary = %d, %v; want %d", got, err, q)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := &bitReader{buf: []byte{0xFF}}
	if _, err := r.readBits(9); err == nil {
		t.Error("reading past end should fail")
	}
}

func TestVarintZigzagProperty(t *testing.T) {
	f := func(v int64) bool {
		buf := appendUvarint(nil, zigzag(v))
		u, k := uvarint(buf)
		return k == len(buf) && unzigzag(u) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintCorrupt(t *testing.T) {
	if _, k := uvarint(nil); k != 0 {
		t.Error("empty uvarint should fail")
	}
	if _, k := uvarint(bytes.Repeat([]byte{0x80}, 11)); k != 0 {
		t.Error("overlong uvarint should fail")
	}
}

// --- Delta varint ----------------------------------------------------------

func TestDeltaVarintRoundTripProperty(t *testing.T) {
	f := func(samples []int16) bool {
		enc := EncodeDeltaVarint(samples)
		dec, err := DecodeDeltaVarint(enc)
		if err != nil || len(dec) != len(samples) {
			return false
		}
		for i := range samples {
			if dec[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaVarintCompressesECG(t *testing.T) {
	// 12-bit quantization matches the ECG patch AFE resolution.
	g := sensors.NewECGSynth(250*units.Hertz, 70, 1)
	raw := sensors.QuantizeBits(g.Samples(2500), 2.0, 12) // 10 s ECG
	enc := EncodeDeltaVarint(raw)
	ratio := Ratio(len(raw)*2, len(enc))
	if ratio < 1.7 {
		t.Errorf("ECG delta-varint ratio = %.2f, want ≥ 1.7", ratio)
	}
}

func TestDeltaVarintCorrupt(t *testing.T) {
	if _, err := DecodeDeltaVarint(nil); err == nil {
		t.Error("nil stream should fail")
	}
	enc := EncodeDeltaVarint([]int16{1, 2, 3})
	if _, err := DecodeDeltaVarint(enc[:len(enc)-1]); err == nil {
		t.Error("truncated stream should fail")
	}
}

// --- Rice ------------------------------------------------------------------

func TestRiceRoundTripProperty(t *testing.T) {
	f := func(vals []int32, kseed uint8) bool {
		k := uint(kseed % 20)
		enc := RiceEncode(vals, k)
		dec, err := RiceDecode(enc)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRiceAutoBeatsRawOnECG(t *testing.T) {
	g := sensors.NewECGSynth(250*units.Hertz, 70, 2)
	raw := sensors.QuantizeBits(g.Samples(2500), 2.0, 12)
	deltas := DeltaInt32(raw)
	enc := RiceEncodeAuto(deltas)
	ratio := Ratio(len(raw)*2, len(enc))
	if ratio < 1.9 {
		t.Errorf("ECG Rice ratio = %.2f, want ≥ 1.9", ratio)
	}
	dec, err := RiceDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UndeltaInt16(dec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if back[i] != raw[i] {
			t.Fatal("Rice+delta round trip mismatch")
		}
	}
}

func TestChooseRiceK(t *testing.T) {
	if k := ChooseRiceK(nil); k != 0 {
		t.Errorf("empty ChooseRiceK = %d, want 0", k)
	}
	small := []int32{0, 1, -1, 0, 1}
	large := []int32{10000, -20000, 15000}
	if ChooseRiceK(small) >= ChooseRiceK(large) {
		t.Error("larger values should choose larger k")
	}
}

func TestRiceOutlierEscape(t *testing.T) {
	vals := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 2}
	enc := RiceEncode(vals, 0) // k=0 forces the escape path
	dec, err := RiceDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("outlier round trip: got %d want %d", dec[i], vals[i])
		}
	}
}

func TestUndeltaOverflow(t *testing.T) {
	if _, err := UndeltaInt16([]int32{32767, 1}); err == nil {
		t.Error("overflowing reconstruction should fail")
	}
}

// --- RLE ---------------------------------------------------------------------

func TestRLERoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := RLEDecode(RLEEncode(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRLECompressesRuns(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 10000)
	enc := RLEEncode(src)
	if Ratio(len(src), len(enc)) < 1000 {
		t.Errorf("constant run ratio = %.0f, want ≥ 1000", Ratio(len(src), len(enc)))
	}
}

func TestRLECorrupt(t *testing.T) {
	for _, bad := range [][]byte{nil, {5}, {2, 1}} {
		if _, err := RLEDecode(bad); err == nil {
			t.Errorf("RLEDecode(%v) should fail", bad)
		}
	}
}

// --- Huffman -----------------------------------------------------------------

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := HuffmanDecode(HuffmanEncode(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanSkewedInput(t *testing.T) {
	// 95% zeros should compress well below 8 bits/symbol.
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 50000)
	for i := range src {
		if rng.Float64() > 0.95 {
			src[i] = byte(rng.Intn(8) + 1)
		}
	}
	enc := HuffmanEncode(src)
	if r := Ratio(len(src), len(enc)); r < 3 {
		t.Errorf("skewed Huffman ratio = %.2f, want ≥ 3", r)
	}
	dec, err := HuffmanDecode(enc)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("skewed round trip failed")
	}
}

func TestHuffmanEdgeCases(t *testing.T) {
	for _, src := range [][]byte{{}, {42}, bytes.Repeat([]byte{9}, 1000)} {
		dec, err := HuffmanDecode(HuffmanEncode(src))
		if err != nil || !bytes.Equal(dec, src) {
			t.Errorf("edge case %v failed: %v", src[:min(len(src), 3)], err)
		}
	}
	if _, err := HuffmanDecode([]byte{5}); err == nil {
		t.Error("truncated header should fail")
	}
}

// --- ADPCM --------------------------------------------------------------------

func TestADPCMRatioAndFidelity(t *testing.T) {
	g := sensors.NewAudioSynth(16*units.Kilohertz, 4)
	raw := sensors.Quantize(g.Samples(16000), 1.0)
	enc := ADPCMEncode(raw)
	// 4 bits/sample plus small header → ratio just under 4.
	if r := Ratio(len(raw)*2, len(enc)); r < 3.5 || r > 4.1 {
		t.Errorf("ADPCM ratio = %.2f, want ≈ 4", r)
	}
	dec, err := ADPCMDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(raw) {
		t.Fatalf("length %d, want %d", len(dec), len(raw))
	}
	// SNR of reconstruction should exceed 15 dB on speech-like audio.
	var sig, noise float64
	for i := range raw {
		s := float64(raw[i])
		n := float64(raw[i]) - float64(dec[i])
		sig += s * s
		noise += n * n
	}
	if noise == 0 {
		return
	}
	snr := 10 * math.Log10(sig/noise)
	if snr < 15 {
		t.Errorf("ADPCM SNR = %.1f dB, want ≥ 15 dB", snr)
	}
}

func TestADPCMOddLengthAndEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17} {
		raw := make([]int16, n)
		for i := range raw {
			raw[i] = int16(i * 100)
		}
		dec, err := ADPCMDecode(ADPCMEncode(raw))
		if err != nil || len(dec) != n {
			t.Errorf("n=%d: err=%v len=%d", n, err, len(dec))
		}
	}
}

func TestADPCMCorrupt(t *testing.T) {
	for _, bad := range [][]byte{nil, {1}, {4, 0, 0, 89}} {
		if _, err := ADPCMDecode(bad); err == nil {
			t.Errorf("ADPCMDecode(%v) should fail", bad)
		}
	}
}

// --- Frame codec -----------------------------------------------------------------

func TestFrameCodecRoundTripQuality(t *testing.T) {
	g := sensors.NewVideoSynth(64, 48, 5)
	frame := g.NextFrame()
	for _, q := range []int{30, 60, 90} {
		c, err := NewFrameCodec(64, 48, q)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := c.Encode(frame)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		psnr := PSNR(frame, dec)
		minPSNR := map[int]float64{30: 26, 60: 29, 90: 33}[q]
		if psnr < minPSNR {
			t.Errorf("q=%d: PSNR = %.1f dB, want ≥ %.1f", q, psnr, minPSNR)
		}
	}
}

func TestFrameCodecQualityMonotone(t *testing.T) {
	g := sensors.NewVideoSynth(64, 48, 6)
	frame := g.NextFrame()
	var prevSize int
	var prevPSNR float64
	for _, q := range []int{20, 50, 80} {
		c, _ := NewFrameCodec(64, 48, q)
		enc, _ := c.Encode(frame)
		dec, _ := c.Decode(enc)
		psnr := PSNR(frame, dec)
		if prevSize > 0 {
			if len(enc) < prevSize {
				t.Errorf("q=%d: size %d smaller than lower quality %d", q, len(enc), prevSize)
			}
			if psnr < prevPSNR-0.5 {
				t.Errorf("q=%d: PSNR %.1f below lower quality %.1f", q, psnr, prevPSNR)
			}
		}
		prevSize, prevPSNR = len(enc), psnr
	}
}

func TestFrameCodecCompressionRatio(t *testing.T) {
	// The MJPEG claim that matters for the video-node projection: a
	// realistic frame compresses ≥ 5× at mid quality.
	g := sensors.NewVideoSynth(160, 120, 7)
	frame := g.NextFrame()
	c, _ := NewFrameCodec(160, 120, 50)
	enc, err := c.Encode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if r := Ratio(len(frame), len(enc)); r < 5 {
		t.Errorf("MJPEG ratio at q50 = %.1f, want ≥ 5", r)
	}
}

func TestFrameCodecNonMultipleOf8(t *testing.T) {
	// 30×22 exercises edge replication padding.
	g := sensors.NewVideoSynth(30, 22, 8)
	frame := g.NextFrame()
	c, err := NewFrameCodec(30, 22, 70)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode(frame)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 30*22 {
		t.Fatalf("decoded size %d, want %d", len(dec), 30*22)
	}
	if PSNR(frame, dec) < 26 {
		t.Errorf("padded frame PSNR = %.1f, want ≥ 26", PSNR(frame, dec))
	}
}

func TestFrameCodecFlatFrame(t *testing.T) {
	frame := bytes.Repeat([]byte{128}, 64*64)
	c, _ := NewFrameCodec(64, 64, 50)
	enc, _ := c.Encode(frame)
	if r := Ratio(len(frame), len(enc)); r < 10 {
		t.Errorf("flat frame ratio = %.1f, want ≥ 10", r)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dec {
		if p < 126 || p > 130 {
			t.Fatalf("flat frame pixel %d drifted", p)
		}
	}
}

func TestFrameCodecErrors(t *testing.T) {
	if _, err := NewFrameCodec(0, 10, 50); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewFrameCodec(10, 10, 0); err == nil {
		t.Error("quality 0 should fail")
	}
	if _, err := NewFrameCodec(10, 10, 101); err == nil {
		t.Error("quality 101 should fail")
	}
	c, _ := NewFrameCodec(16, 16, 50)
	if _, err := c.Encode(make([]byte, 10)); err == nil {
		t.Error("wrong frame size should fail")
	}
	if _, err := c.Decode(nil); err == nil {
		t.Error("nil stream should fail")
	}
	other, _ := NewFrameCodec(8, 8, 50)
	g := sensors.NewVideoSynth(16, 16, 1)
	enc, _ := c.Encode(g.NextFrame())
	if _, err := other.Decode(enc); err == nil {
		t.Error("mismatched codec dims should fail")
	}
}

func TestDCTInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b, orig [64]float64
		for i := range b {
			b[i] = rng.Float64()*255 - 128
			orig[i] = b[i]
		}
		fdct8(&b)
		idct8(&b)
		for i := range b {
			if math.Abs(b[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDCTEnergyCompaction(t *testing.T) {
	// A smooth gradient block should concentrate > 90% of energy in the
	// first 10 zigzag coefficients — the property MJPEG exploits.
	var b [64]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			b[y*8+x] = float64(x+y) * 8
		}
	}
	fdct8(&b)
	var total, head float64
	for i := 0; i < 64; i++ {
		e := b[zigzagOrder[i]] * b[zigzagOrder[i]]
		total += e
		if i < 10 {
			head += e
		}
	}
	if head/total < 0.9 {
		t.Errorf("energy compaction = %.2f, want ≥ 0.9", head/total)
	}
}

func TestPSNRBehaviour(t *testing.T) {
	a := []byte{1, 2, 3}
	if !math.IsInf(PSNR(a, a), 1) {
		t.Error("identical frames should have infinite PSNR")
	}
	if PSNR(a, []byte{1, 2}) != 0 {
		t.Error("mismatched lengths should return 0")
	}
	if PSNR(nil, nil) != 0 {
		t.Error("empty frames should return 0")
	}
}

func TestRatioDegenerate(t *testing.T) {
	if Ratio(100, 0) != 0 {
		t.Error("zero compressed size should return 0")
	}
	if Ratio(100, 50) != 2 {
		t.Error("basic ratio wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
