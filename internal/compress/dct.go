package compress

import (
	"fmt"
	"math"
)

// MJPEG-style intraframe video codec: 8×8 DCT-II, JPEG-scaled quantization,
// zigzag scan, DC prediction across blocks, run-length coding of AC zeros,
// and a canonical-Huffman entropy back-end. The paper (§V) names MJPEG
// compression as the in-sensor data reduction for video leaf nodes; this
// codec supplies the measured rate/quality points for those projections.

// jpegLumaQuant is the reference JPEG luminance quantization matrix.
var jpegLumaQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzagOrder maps scan position → block index for the 8×8 zigzag.
var zigzagOrder = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// dctCos[u][x] = cos((2x+1)uπ/16), precomputed at init.
var dctCos [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			dctCos[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

// dctAlpha is the DCT normalization C(u).
func dctAlpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// fdct8 computes the 2-D DCT-II of an 8×8 block (separable: rows then
// columns).
func fdct8(block *[64]float64) {
	var tmp [64]float64
	for y := 0; y < 8; y++ { // row transform
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += block[y*8+x] * dctCos[u][x]
			}
			tmp[y*8+u] = s * dctAlpha(u) / 2
		}
	}
	for u := 0; u < 8; u++ { // column transform
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * dctCos[v][y]
			}
			block[v*8+u] = s * dctAlpha(v) / 2
		}
	}
}

// idct8 inverts fdct8.
func idct8(block *[64]float64) {
	var tmp [64]float64
	for u := 0; u < 8; u++ { // column inverse
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += dctAlpha(v) * block[v*8+u] * dctCos[v][y]
			}
			tmp[y*8+u] = s / 2
		}
	}
	for y := 0; y < 8; y++ { // row inverse
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += dctAlpha(u) * tmp[y*8+u] * dctCos[u][x]
			}
			block[y*8+x] = s / 2
		}
	}
}

// FrameCodec encodes fixed-size grayscale frames.
type FrameCodec struct {
	W, H    int
	Quality int // 1..100, JPEG-style
	quant   [64]int
}

// NewFrameCodec returns a codec for w×h 8-bit frames at the given quality.
func NewFrameCodec(w, h, quality int) (*FrameCodec, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("compress: invalid frame size %dx%d", w, h)
	}
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("compress: quality %d outside 1..100", quality)
	}
	c := &FrameCodec{W: w, H: h, Quality: quality}
	// JPEG quality scaling.
	scale := 200 - 2*quality
	if quality < 50 {
		scale = 5000 / quality
	}
	for i, q := range jpegLumaQuant {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		c.quant[i] = v
	}
	return c, nil
}

// blocksAcross returns the padded block grid dimensions.
func (c *FrameCodec) blocksAcross() (bw, bh int) {
	return (c.W + 7) / 8, (c.H + 7) / 8
}

// loadBlock copies the 8×8 block at (bx, by) with edge replication padding
// and level shift to [-128, 127].
func (c *FrameCodec) loadBlock(frame []byte, bx, by int, block *[64]float64) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= c.H {
			sy = c.H - 1
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= c.W {
				sx = c.W - 1
			}
			block[y*8+x] = float64(frame[sy*c.W+sx]) - 128
		}
	}
}

// storeBlock writes the 8×8 block back, clamping to [0,255] and dropping
// padded pixels.
func (c *FrameCodec) storeBlock(frame []byte, bx, by int, block *[64]float64) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= c.H {
			continue
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= c.W {
				continue
			}
			v := block[y*8+x] + 128
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			frame[sy*c.W+sx] = byte(v + 0.5)
		}
	}
}

// eobRun is the run-length sentinel marking end-of-block (valid AC runs
// are ≤ 62).
const eobRun = 63

// Encode compresses one frame. The payload (after a small header) is a
// varint stream of DC deltas and (run, level) AC pairs, entropy-coded with
// canonical Huffman.
func (c *FrameCodec) Encode(frame []byte) ([]byte, error) {
	if len(frame) != c.W*c.H {
		return nil, fmt.Errorf("compress: frame size %d, want %d", len(frame), c.W*c.H)
	}
	bw, bh := c.blocksAcross()
	payload := make([]byte, 0, c.W*c.H/4)
	var block [64]float64
	prevDC := 0
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			c.loadBlock(frame, bx, by, &block)
			fdct8(&block)
			// Quantize into zigzag order.
			var q [64]int
			for i := 0; i < 64; i++ {
				q[i] = int(math.Round(block[zigzagOrder[i]] / float64(c.quant[zigzagOrder[i]])))
			}
			// DC predicted from previous block.
			payload = appendUvarint(payload, zigzag(int64(q[0]-prevDC)))
			prevDC = q[0]
			// AC run-length coding.
			run := 0
			for i := 1; i < 64; i++ {
				if q[i] == 0 {
					run++
					continue
				}
				payload = appendUvarint(payload, uint64(run))
				payload = appendUvarint(payload, zigzag(int64(q[i])))
				run = 0
			}
			payload = appendUvarint(payload, eobRun)
		}
	}
	hdr := appendUvarint(nil, uint64(c.W))
	hdr = appendUvarint(hdr, uint64(c.H))
	hdr = appendUvarint(hdr, uint64(c.Quality))
	return append(hdr, HuffmanEncode(payload)...), nil
}

// Decode reverses Encode. The header dimensions and quality must match the
// codec's configuration.
func (c *FrameCodec) Decode(data []byte) ([]byte, error) {
	w64, k1 := uvarint(data)
	if k1 == 0 {
		return nil, ErrCorrupt
	}
	data = data[k1:]
	h64, k2 := uvarint(data)
	if k2 == 0 {
		return nil, ErrCorrupt
	}
	data = data[k2:]
	q64, k3 := uvarint(data)
	if k3 == 0 {
		return nil, ErrCorrupt
	}
	data = data[k3:]
	if int(w64) != c.W || int(h64) != c.H || int(q64) != c.Quality {
		return nil, fmt.Errorf("compress: stream is %dx%d q%d, codec is %dx%d q%d",
			w64, h64, q64, c.W, c.H, c.Quality)
	}
	payload, err := HuffmanDecode(data)
	if err != nil {
		return nil, err
	}

	frame := make([]byte, c.W*c.H)
	bw, bh := c.blocksAcross()
	pos := 0
	next := func() (uint64, error) {
		v, k := uvarint(payload[pos:])
		if k == 0 {
			return 0, ErrCorrupt
		}
		pos += k
		return v, nil
	}
	prevDC := 0
	var block [64]float64
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			var q [64]int
			dcd, err := next()
			if err != nil {
				return nil, err
			}
			prevDC += int(unzigzag(dcd))
			q[0] = prevDC
			i := 1
			for {
				run, err := next()
				if err != nil {
					return nil, err
				}
				if run == eobRun {
					break
				}
				i += int(run)
				if i >= 64 {
					return nil, ErrCorrupt
				}
				lev, err := next()
				if err != nil {
					return nil, err
				}
				q[i] = int(unzigzag(lev))
				i++
				if i > 64 {
					return nil, ErrCorrupt
				}
			}
			// Dequantize out of zigzag order.
			for j := 0; j < 64; j++ {
				block[zigzagOrder[j]] = float64(q[j] * c.quant[zigzagOrder[j]])
			}
			idct8(&block)
			c.storeBlock(frame, bx, by, &block)
		}
	}
	return frame, nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two equal-size
// 8-bit frames (+Inf for identical frames).
func PSNR(a, b []byte) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var mse float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}
