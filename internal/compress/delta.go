package compress

// Exported column codecs for the telemetry store (internal/telemetry):
// zigzag-delta varint for integer columns, XOR-prev varint for float
// columns, and a bit-packed boolean column, plus thin exported wrappers
// around the MSB-first bit packer the in-package codecs already use. The
// encoders are self-delimiting only in combination with a caller-kept
// element count: telemetry blocks store the count once per block rather
// than once per column.

import "math"

// BitWriter packs bits MSB-first into a growing byte buffer. It is the
// exported face of the packer Golomb-Rice and Huffman use internally.
type BitWriter struct{ w bitWriter }

// WriteBits appends the low n bits of v, MSB of those n first. n must be
// ≤ 64.
func (w *BitWriter) WriteBits(v uint64, n uint) { w.w.writeBits(v, n) }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte { return w.w.bytes() }

// BitReader reads bits MSB-first from a byte slice.
type BitReader struct{ r bitReader }

// NewBitReader reads from buf; the caller keeps ownership of buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{bitReader{buf: buf}} }

// ReadBits reads n ≤ 64 bits; it returns ErrCorrupt past end-of-stream.
func (r *BitReader) ReadBits(n uint) (uint64, error) { return r.r.readBits(n) }

// AppendUvarint appends v in LEB128 (7 bits per byte, low group first).
func AppendUvarint(dst []byte, v uint64) []byte { return appendUvarint(dst, v) }

// DecodeUvarint decodes one LEB128 value, returning the value and the
// bytes consumed; consumed is 0 on a truncated or overlong encoding.
func DecodeUvarint(src []byte) (uint64, int) { return uvarint(src) }

// Zigzag maps signed to unsigned so small-magnitude values of either sign
// get short varints: 0,-1,1,-2,2 → 0,1,2,3,4.
func Zigzag(v int64) uint64 { return zigzag(v) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return unzigzag(u) }

// AppendDeltaInts appends vals as zigzag varints of consecutive
// differences (first value differenced against zero). Sorted or
// slowly-varying columns collapse to one or two bytes per element.
func AppendDeltaInts(dst []byte, vals []int64) []byte {
	var prev int64
	for _, v := range vals {
		dst = appendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

// DecodeDeltaInts fills dst with len(dst) delta-decoded values from src
// and returns the bytes consumed, or ErrCorrupt on a truncated stream.
func DecodeDeltaInts(src []byte, dst []int64) (int, error) {
	var prev int64
	pos := 0
	for i := range dst {
		u, n := uvarint(src[pos:])
		if n == 0 {
			return 0, ErrCorrupt
		}
		pos += n
		prev += unzigzag(u)
		dst[i] = prev
	}
	return pos, nil
}

// AppendDelta2Ints appends vals as zigzag varints of second-order
// differences — each element is encoded as (vᵢ−vᵢ₋₁)−(vᵢ₋₁−vᵢ₋₂), the
// Gorilla-style delta-of-delta used for timestamps. A perfectly periodic
// column (sampling instants at a fixed cadence) collapses to one byte
// per element after the first two, regardless of the cadence magnitude;
// AppendDeltaInts would pay the varint width of the cadence every time.
func AppendDelta2Ints(dst []byte, vals []int64) []byte {
	var prev, prevDelta int64
	for _, v := range vals {
		delta := v - prev
		dst = appendUvarint(dst, zigzag(delta-prevDelta))
		prev, prevDelta = v, delta
	}
	return dst
}

// DecodeDelta2Ints fills dst with len(dst) delta-of-delta-decoded values
// from src and returns the bytes consumed, or ErrCorrupt on a truncated
// stream.
func DecodeDelta2Ints(src []byte, dst []int64) (int, error) {
	var prev, prevDelta int64
	pos := 0
	for i := range dst {
		u, n := uvarint(src[pos:])
		if n == 0 {
			return 0, ErrCorrupt
		}
		pos += n
		prevDelta += unzigzag(u)
		prev += prevDelta
		dst[i] = prev
	}
	return pos, nil
}

// AppendXorFloats appends vals as varints of each value's IEEE-754 bits
// XORed with the previous value's bits (Gorilla-style predecessor
// prediction, varint instead of leading/trailing-zero headers). Repeated
// values cost one byte; values sharing sign/exponent shed their high
// bytes.
func AppendXorFloats(dst []byte, vals []float64) []byte {
	var prev uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		dst = appendUvarint(dst, bits^prev)
		prev = bits
	}
	return dst
}

// DecodeXorFloats fills dst with len(dst) XOR-decoded floats from src and
// returns the bytes consumed, or ErrCorrupt on a truncated stream.
func DecodeXorFloats(src []byte, dst []float64) (int, error) {
	var prev uint64
	pos := 0
	for i := range dst {
		u, n := uvarint(src[pos:])
		if n == 0 {
			return 0, ErrCorrupt
		}
		pos += n
		prev ^= u
		dst[i] = math.Float64frombits(prev)
	}
	return pos, nil
}

// PackBools appends vals bit-packed MSB-first, ⌈n/8⌉ bytes for n values.
func PackBools(dst []byte, vals []bool) []byte {
	var w bitWriter
	w.buf = dst
	for _, v := range vals {
		var bit uint64
		if v {
			bit = 1
		}
		w.writeBits(bit, 1)
	}
	return w.bytes()
}

// PackedBoolLen is the encoded size of n bit-packed booleans.
func PackedBoolLen(n int) int { return (n + 7) / 8 }

// UnpackBools fills dst with len(dst) bits from src (MSB-first), or
// returns ErrCorrupt when src is shorter than PackedBoolLen(len(dst)).
func UnpackBools(src []byte, dst []bool) error {
	r := bitReader{buf: src}
	for i := range dst {
		b, err := r.readBits(1)
		if err != nil {
			return err
		}
		dst[i] = b == 1
	}
	return nil
}
