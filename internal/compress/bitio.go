// Package compress implements the source-coding toolbox the IoB leaf nodes
// use to shrink sensor streams before they reach the link: lossless delta/
// varint and Golomb-Rice coding for biopotential and IMU samples, RLE and
// canonical Huffman as entropy back-ends, IMA-ADPCM for audio, and an
// 8×8-DCT MJPEG-style intraframe codec for video (the paper names MJPEG
// explicitly as the leaf-node video reduction).
//
// Compression trades leaf-node compute for link bits; the partition and
// iob packages consume the measured ratios to decide when that trade wins.
package compress

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports an undecodable bitstream.
var ErrCorrupt = errors.New("compress: corrupt stream")

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint // bits held in cur
}

// writeBits appends the low n bits of v (MSB of those n first).
func (w *bitWriter) writeBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("compress: writeBits(%d bits)", n))
	}
	for n > 0 {
		take := 8 - w.nCur%8
		if take > n {
			take = n
		}
		bits := (v >> (n - take)) & ((1 << take) - 1)
		w.cur = w.cur<<take | bits
		w.nCur += take
		n -= take
		if w.nCur%8 == 0 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur = 0
		}
	}
}

// writeUnary emits q one-bits followed by a zero bit.
func (w *bitWriter) writeUnary(q uint32) {
	for q >= 32 {
		w.writeBits((1<<32)-1, 32)
		q -= 32
	}
	// q ones then a terminating zero.
	w.writeBits((uint64(1)<<(q+1))-2, uint(q)+1)
}

// bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *bitWriter) bytes() []byte {
	if rem := w.nCur % 8; rem != 0 {
		w.cur <<= 8 - rem
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.nCur += 8 - rem
	}
	return w.buf
}

// bitReader reads bits MSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos uint // bit position
}

// readBits reads n bits; it returns an error past end-of-stream.
func (r *bitReader) readBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("compress: readBits(%d bits)", n))
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos / 8
		if int(byteIdx) >= len(r.buf) {
			return 0, ErrCorrupt
		}
		bitOff := r.pos % 8
		take := 8 - bitOff
		if take > n {
			take = n
		}
		b := r.buf[byteIdx]
		bits := uint64(b>>(8-bitOff-take)) & ((1 << take) - 1)
		v = v<<take | bits
		r.pos += take
		n -= take
	}
	return v, nil
}

// readUnary counts one-bits up to the terminating zero.
func (r *bitReader) readUnary() (uint32, error) {
	var q uint32
	for {
		b, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return q, nil
		}
		q++
		if q > 1<<24 {
			return 0, ErrCorrupt
		}
	}
}

// --- Varint (LEB128) and zigzag ------------------------------------------

// appendUvarint appends v in LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarint decodes a LEB128 value, returning the value and bytes consumed
// (0 on corruption).
func uvarint(src []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range src {
		if i >= 10 {
			return 0, 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// zigzag maps signed to unsigned: 0,-1,1,-2,2 → 0,1,2,3,4.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Ratio returns the compression ratio original/compressed (higher is
// better); it returns 0 for an empty compressed size.
func Ratio(originalBytes, compressedBytes int) float64 {
	if compressedBytes <= 0 {
		return 0
	}
	return float64(originalBytes) / float64(compressedBytes)
}
