package compress

import (
	"math"
	"math/rand"
	"testing"
)

// entropyBits returns the zeroth-order Shannon entropy of src in bits.
func entropyBits(src []byte) float64 {
	if len(src) == 0 {
		return 0
	}
	var freq [256]float64
	for _, b := range src {
		freq[b]++
	}
	n := float64(len(src))
	var h float64
	for _, f := range freq {
		if f == 0 {
			continue
		}
		p := f / n
		h -= f * math.Log2(p)
	}
	return h
}

// TestHuffmanWithinEntropyBound checks the fundamental coding bounds on a
// range of source distributions: the payload may not beat the Shannon
// entropy, and canonical Huffman must stay within one bit per symbol of
// it (plus the fixed 256-byte header).
func TestHuffmanWithinEntropyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sources := map[string]func(n int) []byte{
		"uniform8": func(n int) []byte {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte(rng.Intn(256))
			}
			return s
		},
		"skewed": func(n int) []byte {
			s := make([]byte, n)
			for i := range s {
				if rng.Float64() < 0.9 {
					s[i] = 0
				} else {
					s[i] = byte(rng.Intn(16))
				}
			}
			return s
		},
		"geometric": func(n int) []byte {
			s := make([]byte, n)
			for i := range s {
				v := 0
				for rng.Float64() < 0.5 && v < 255 {
					v++
				}
				s[i] = byte(v)
			}
			return s
		},
	}
	const n = 20000
	const headerBytes = 256
	for name, gen := range sources {
		src := gen(n)
		enc := HuffmanEncode(src)
		h := entropyBits(src)
		payloadBits := float64(len(enc)-headerBytes-2) * 8 // minus header & length varint
		if payloadBits < h-8 {
			t.Errorf("%s: coded payload %.0f bits beats entropy %.0f bits — impossible",
				name, payloadBits, h)
		}
		if payloadBits > h+float64(n)+64 {
			t.Errorf("%s: coded payload %.0f bits exceeds entropy+1b/sym bound %.0f",
				name, payloadBits, h+float64(n))
		}
		dec, err := HuffmanDecode(enc)
		if err != nil || len(dec) != n {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
	}
}

// TestRiceNearOptimalOnGeometric checks Rice coding's design point: on a
// two-sided geometric source the auto-chosen parameter must land within
// 15% of the source entropy.
func TestRiceNearOptimalOnGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 20000
	vals := make([]int32, n)
	for i := range vals {
		v := int32(0)
		for rng.Float64() < 0.8 {
			v++
		}
		if rng.Intn(2) == 0 {
			v = -v
		}
		vals[i] = v
	}
	enc := RiceEncodeAuto(vals)

	// Entropy of the zigzagged byte-equivalent source.
	bs := make([]byte, n)
	for i, v := range vals {
		u := zigzag(int64(v))
		if u > 255 {
			u = 255
		}
		bs[i] = byte(u)
	}
	h := entropyBits(bs)
	codedBits := float64(len(enc) * 8)
	if codedBits > 1.15*h+128 {
		t.Errorf("Rice coded %.0f bits vs source entropy %.0f bits (>15%% overhead)",
			codedBits, h)
	}
}
