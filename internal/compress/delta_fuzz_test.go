package compress

import (
	"encoding/binary"
	"testing"
)

// FuzzDeltaVarint drives the delta/varint codec two ways from one input:
// the bytes reinterpreted as an int64 column must round-trip exactly, and
// the bytes treated as an already-encoded stream must decode without
// panicking (errors are fine — fuzz inputs are mostly corrupt streams).
func FuzzDeltaVarint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xdeadbeef))
	f.Add(AppendDeltaInts(nil, []int64{-1, 1, -2, 2, 1 << 62}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data → column → encode → decode → column.
		vals := make([]int64, len(data)/8)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		enc := AppendDeltaInts(nil, vals)
		dec := make([]int64, len(vals))
		n, err := DecodeDeltaInts(enc, dec)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("[%d]: got %d want %d", i, dec[i], vals[i])
			}
		}
		enc2 := AppendDelta2Ints(nil, vals)
		dec2 := make([]int64, len(vals))
		n2, err := DecodeDelta2Ints(enc2, dec2)
		if err != nil {
			t.Fatalf("delta2 round-trip decode failed: %v", err)
		}
		if n2 != len(enc2) {
			t.Fatalf("delta2 consumed %d of %d bytes", n2, len(enc2))
		}
		for i := range vals {
			if dec2[i] != vals[i] {
				t.Fatalf("delta2 [%d]: got %d want %d", i, dec2[i], vals[i])
			}
		}

		// Direction 2: data as a hostile encoded stream; the element
		// count is attacker-controlled too (first byte, capped).
		count := 1
		if len(data) > 0 {
			count = int(data[0]%64) + 1
		}
		out := make([]int64, count)
		if n, err := DecodeDeltaInts(data, out); err == nil && n > len(data) {
			t.Fatalf("decoder claimed %d bytes of a %d-byte stream", n, len(data))
		}
		out2 := make([]int64, count)
		if n, err := DecodeDelta2Ints(data, out2); err == nil && n > len(data) {
			t.Fatalf("delta2 decoder claimed %d bytes of a %d-byte stream", n, len(data))
		}
		fout := make([]float64, count)
		if n, err := DecodeXorFloats(data, fout); err == nil && n > len(data) {
			t.Fatalf("float decoder claimed %d bytes of a %d-byte stream", n, len(data))
		}
	})
}
