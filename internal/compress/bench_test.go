package compress

import (
	"testing"

	"wiban/internal/sensors"
	"wiban/internal/units"
)

func benchECG(n int) []int16 {
	g := sensors.NewECGSynth(250*units.Hertz, 72, 1)
	return sensors.QuantizeBits(g.Samples(n), 2.0, 12)
}

func BenchmarkDeltaVarintEncode(b *testing.B) {
	raw := benchECG(2500)
	b.SetBytes(int64(len(raw) * 2))
	for i := 0; i < b.N; i++ {
		EncodeDeltaVarint(raw)
	}
}

func BenchmarkRiceEncodeAuto(b *testing.B) {
	deltas := DeltaInt32(benchECG(2500))
	b.SetBytes(int64(len(deltas) * 2))
	for i := 0; i < b.N; i++ {
		RiceEncodeAuto(deltas)
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	g := sensors.NewVideoSynth(160, 120, 2)
	src := g.NextFrame()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		HuffmanEncode(src)
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	g := sensors.NewVideoSynth(160, 120, 2)
	enc := HuffmanEncode(g.NextFrame())
	b.SetBytes(int64(160 * 120))
	for i := 0; i < b.N; i++ {
		if _, err := HuffmanDecode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkADPCMEncode(b *testing.B) {
	g := sensors.NewAudioSynth(16*units.Kilohertz, 3)
	raw := sensors.Quantize(g.Samples(16000), 1.0)
	b.SetBytes(int64(len(raw) * 2))
	for i := 0; i < b.N; i++ {
		ADPCMEncode(raw)
	}
}

func BenchmarkDCTBlock(b *testing.B) {
	var block [64]float64
	for i := range block {
		block[i] = float64(i%16) * 8
	}
	for i := 0; i < b.N; i++ {
		blk := block
		fdct8(&blk)
		idct8(&blk)
	}
}

func BenchmarkFrameDecodeQVGA(b *testing.B) {
	g := sensors.NewVideoSynth(320, 240, 4)
	c, err := NewFrameCodec(320, 240, 50)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := c.Encode(g.NextFrame())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(320 * 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
