package compress

// Lossless coders for sampled sensor data. Biopotential and inertial
// signals are strongly low-pass: consecutive-sample deltas are small, so
// delta + zigzag + LEB128 varint routinely achieves 2–4× on ECG, and
// Golomb-Rice coding of the same residuals does slightly better with a
// well-chosen parameter.

// EncodeDeltaVarint losslessly compresses 16-bit samples by first-order
// delta followed by zigzag LEB128 varints.
func EncodeDeltaVarint(samples []int16) []byte {
	out := appendUvarint(nil, uint64(len(samples)))
	prev := int16(0)
	for _, s := range samples {
		d := int64(s) - int64(prev)
		out = appendUvarint(out, zigzag(d))
		prev = s
	}
	return out
}

// DecodeDeltaVarint reverses EncodeDeltaVarint.
func DecodeDeltaVarint(src []byte) ([]int16, error) {
	n, k := uvarint(src)
	if k == 0 {
		return nil, ErrCorrupt
	}
	src = src[k:]
	if n > 1<<30 {
		return nil, ErrCorrupt
	}
	out := make([]int16, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		u, k := uvarint(src)
		if k == 0 {
			return nil, ErrCorrupt
		}
		src = src[k:]
		prev += unzigzag(u)
		if prev < -32768 || prev > 32767 {
			return nil, ErrCorrupt
		}
		out = append(out, int16(prev))
	}
	return out, nil
}

// --- Golomb-Rice -----------------------------------------------------------

// ChooseRiceK picks the Rice parameter minimizing expected code length for
// the zigzagged values: k ≈ log2(mean).
func ChooseRiceK(vals []int32) uint {
	if len(vals) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range vals {
		sum += zigzag(int64(v))
	}
	mean := sum / uint64(len(vals))
	k := uint(0)
	for mean >= 1<<(k+1) && k < 30 {
		k++
	}
	return k
}

// RiceEncode codes signed values with Rice parameter k (quotient unary,
// remainder k bits) after zigzag mapping. The header stores k and the
// count.
func RiceEncode(vals []int32, k uint) []byte {
	if k > 30 {
		k = 30
	}
	hdr := appendUvarint(nil, uint64(k))
	hdr = appendUvarint(hdr, uint64(len(vals)))
	w := &bitWriter{buf: hdr}
	for _, v := range vals {
		u := zigzag(int64(v))
		q := u >> k
		if q > 1<<12 {
			// Escape pathological outliers: unary overflow marker
			// (2^12 ones) then the raw value in 64 bits.
			w.writeUnary(1 << 12)
			w.writeBits(u, 64)
			continue
		}
		w.writeUnary(uint32(q))
		if k > 0 {
			w.writeBits(u&((1<<k)-1), k)
		}
	}
	return w.bytes()
}

// RiceDecode reverses RiceEncode.
func RiceDecode(src []byte) ([]int32, error) {
	k64, n1 := uvarint(src)
	if n1 == 0 || k64 > 30 {
		return nil, ErrCorrupt
	}
	src = src[n1:]
	count, n2 := uvarint(src)
	if n2 == 0 || count > 1<<30 {
		return nil, ErrCorrupt
	}
	src = src[n2:]
	k := uint(k64)
	r := &bitReader{buf: src}
	out := make([]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		q, err := r.readUnary()
		if err != nil {
			return nil, err
		}
		var u uint64
		if q == 1<<12 {
			u, err = r.readBits(64)
			if err != nil {
				return nil, err
			}
		} else {
			u = uint64(q) << k
			if k > 0 {
				rem, err := r.readBits(k)
				if err != nil {
					return nil, err
				}
				u |= rem
			}
		}
		v := unzigzag(u)
		if v < -(1<<31) || v > (1<<31)-1 {
			return nil, ErrCorrupt
		}
		out = append(out, int32(v))
	}
	return out, nil
}

// RiceEncodeAuto encodes with the self-chosen parameter.
func RiceEncodeAuto(vals []int32) []byte {
	return RiceEncode(vals, ChooseRiceK(vals))
}

// DeltaInt32 returns first-order deltas of 16-bit samples widened to int32
// (for Rice coding).
func DeltaInt32(samples []int16) []int32 {
	out := make([]int32, len(samples))
	prev := int16(0)
	for i, s := range samples {
		out[i] = int32(s) - int32(prev)
		prev = s
	}
	return out
}

// UndeltaInt16 inverts DeltaInt32; it reports corruption if any
// reconstructed sample overflows int16.
func UndeltaInt16(deltas []int32) ([]int16, error) {
	out := make([]int16, len(deltas))
	acc := int64(0)
	for i, d := range deltas {
		acc += int64(d)
		if acc < -32768 || acc > 32767 {
			return nil, ErrCorrupt
		}
		out[i] = int16(acc)
	}
	return out, nil
}

// --- Run-length encoding ---------------------------------------------------

// RLEEncode byte-wise run-length encodes src as (count, value) pairs with
// LEB128 counts — effective on event-stream and mask data.
func RLEEncode(src []byte) []byte {
	out := appendUvarint(nil, uint64(len(src)))
	for i := 0; i < len(src); {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		out = appendUvarint(out, uint64(j-i))
		out = append(out, src[i])
		i = j
	}
	return out
}

// RLEDecode reverses RLEEncode.
func RLEDecode(src []byte) ([]byte, error) {
	total, k := uvarint(src)
	if k == 0 || total > 1<<30 {
		return nil, ErrCorrupt
	}
	src = src[k:]
	out := make([]byte, 0, total)
	for uint64(len(out)) < total {
		run, k := uvarint(src)
		if k == 0 || run == 0 || uint64(len(out))+run > total {
			return nil, ErrCorrupt
		}
		src = src[k:]
		if len(src) < 1 {
			return nil, ErrCorrupt
		}
		v := src[0]
		src = src[1:]
		for j := uint64(0); j < run; j++ {
			out = append(out, v)
		}
	}
	return out, nil
}
