package compress

import (
	"container/heap"
	"sort"
)

// Canonical Huffman coding over bytes: the entropy back-end for the frame
// codec and a standalone general-purpose compressor. The header carries
// only the 256 code lengths; codes are reconstructed canonically on both
// sides.

// huffNode is a node in the code-construction tree.
type huffNode struct {
	weight      uint64
	symbol      int // -1 for internal
	left, right *huffNode
	order       int // tie-breaker for determinism
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths builds Huffman code lengths from byte frequencies.
func codeLengths(freq *[256]uint64) [256]uint8 {
	var lengths [256]uint8
	var hp huffHeap
	order := 0
	for s, f := range freq {
		if f > 0 {
			hp = append(hp, &huffNode{weight: f, symbol: s, order: order})
			order++
		}
	}
	switch len(hp) {
	case 0:
		return lengths
	case 1:
		lengths[hp[0].symbol] = 1
		return lengths
	}
	heap.Init(&hp)
	for hp.Len() > 1 {
		a := heap.Pop(&hp).(*huffNode)
		b := heap.Pop(&hp).(*huffNode)
		heap.Push(&hp, &huffNode{
			weight: a.weight + b.weight, symbol: -1,
			left: a, right: b, order: order,
		})
		order++
	}
	root := hp[0]
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes from lengths: symbols sorted by
// (length, symbol) receive consecutive codes.
func canonicalCodes(lengths *[256]uint8) (codes [256]uint64, ok bool) {
	type sym struct {
		s int
		l uint8
	}
	var syms []sym
	for s, l := range lengths {
		if l > 0 {
			if l > 57 {
				return codes, false // would overflow the bit accumulator
			}
			syms = append(syms, sym{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	var code uint64
	var prevLen uint8
	for _, sm := range syms {
		code <<= sm.l - prevLen
		prevLen = sm.l
		codes[sm.s] = code
		code++
	}
	return codes, true
}

// HuffmanEncode compresses src with a canonical Huffman code. The format
// is: uvarint(len(src)), 256 raw code-length bytes, then the bitstream.
// For src whose coded form would exceed the raw size the caller should
// fall back; this function always encodes.
func HuffmanEncode(src []byte) []byte {
	out := appendUvarint(nil, uint64(len(src)))
	var freq [256]uint64
	for _, b := range src {
		freq[b]++
	}
	lengths := codeLengths(&freq)
	codes, ok := canonicalCodes(&lengths)
	if !ok {
		// Pathological depth: flatten to 8-bit fixed codes.
		for i := range lengths {
			lengths[i] = 8
		}
		codes, _ = canonicalCodes(&lengths)
	}
	out = append(out, lengths[:]...)
	w := &bitWriter{buf: out}
	for _, b := range src {
		w.writeBits(codes[b], uint(lengths[b]))
	}
	return w.bytes()
}

// HuffmanDecode reverses HuffmanEncode.
func HuffmanDecode(src []byte) ([]byte, error) {
	n, k := uvarint(src)
	if k == 0 || n > 1<<30 {
		return nil, ErrCorrupt
	}
	src = src[k:]
	if len(src) < 256 {
		return nil, ErrCorrupt
	}
	var lengths [256]uint8
	copy(lengths[:], src[:256])
	src = src[256:]
	codes, ok := canonicalCodes(&lengths)
	if !ok {
		return nil, ErrCorrupt
	}

	// Build a decode table: (length, code) → symbol.
	type key struct {
		l uint8
		c uint64
	}
	table := make(map[key]byte)
	maxLen := uint8(0)
	for s, l := range lengths {
		if l > 0 {
			table[key{l, codes[s]}] = byte(s)
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if n > 0 && maxLen == 0 {
		return nil, ErrCorrupt
	}

	r := &bitReader{buf: src}
	out := make([]byte, 0, n)
	for uint64(len(out)) < n {
		var code uint64
		var l uint8
		found := false
		for l < maxLen {
			b, err := r.readBits(1)
			if err != nil {
				return nil, err
			}
			code = code<<1 | b
			l++
			if s, ok := table[key{l, code}]; ok {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}
