package desim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30*Millisecond {
		t.Errorf("final time %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events ran out of submission order at %d: %v", i, order[:i+1])
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	s := New(1)
	var times []Time
	s.After(Second, func() {
		times = append(times, s.Now())
		s.After(2*Second, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != Second || times[1] != 3*Second {
		t.Errorf("times = %v, want [1s 3s]", times)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	id := s.At(Second, func() { ran = true })
	s.Cancel(id)
	s.Run()
	if ran {
		t.Error("canceled event ran")
	}
	// Canceling twice is a no-op.
	s.Cancel(id)
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	var stop func()
	stop = s.Every(0, 10*Millisecond, func() {
		count++
		if count == 5 {
			stop()
		}
	})
	s.Run()
	if count != 5 {
		t.Errorf("periodic ran %d times, want 5", count)
	}
	if s.Now() != 40*Millisecond {
		t.Errorf("final time %v, want 40ms", s.Now())
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	s.Every(0, 0, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var ran []Time
	for _, at := range []Time{Second, 2 * Second, 3 * Second} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(2 * Second)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if s.Now() != 2*Second {
		t.Errorf("clock %v, want 2s", s.Now())
	}
	// Resume to completion.
	s.Run()
	if len(ran) != 3 || s.Now() != 3*Second {
		t.Errorf("after resume ran=%d now=%v", len(ran), s.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunUntil(Minute)
	if s.Now() != Minute {
		t.Errorf("idle RunUntil left clock at %v, want 1min", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	ran2 := false
	s.At(Second, func() { s.Halt() })
	s.At(2*Second, func() { ran2 = true })
	s.Run()
	if ran2 {
		t.Error("event after Halt ran")
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if !ran2 {
		t.Error("resume after Halt did not run pending event")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var draws []int64
		s.Every(0, Millisecond, func() {
			draws = append(draws, s.Rand().Int63n(1000))
			if len(draws) >= 50 {
				s.Halt()
			}
		})
		s.Run()
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws")
	}
}

// Property: random schedules always execute in nondecreasing time order.
func TestRandomScheduleOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(seed)
		var executed []Time
		n := 200
		times := make([]Time, n)
		for i := range times {
			times[i] = Time(rng.Int63n(int64(Second)))
			at := times[i]
			s.At(at, func() { executed = append(executed, at) })
		}
		s.Run()
		if len(executed) != n {
			return false
		}
		if !sort.SliceIsSorted(executed, func(i, j int) bool { return executed[i] < executed[j] }) {
			return false
		}
		return s.Executed() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := FromSeconds(0.25e-6); got != 250*Nanosecond {
		t.Errorf("FromSeconds(0.25µs) = %v", got)
	}
	if Day != 24*Hour || Hour != 60*Minute {
		t.Error("time constants inconsistent")
	}
}

// TestPeriodicMatchesCallbackRescheduling pins the arena's re-arm
// discipline against the classic self-rescheduling-callback formulation:
// both must interleave multiple sources (and a one-shot event scheduled
// mid-run) in the identical order, because the fleet fingerprints were
// recorded under the callback formulation.
func TestPeriodicMatchesCallbackRescheduling(t *testing.T) {
	run := func(periodic bool) []string {
		s := New(9)
		var order []string
		mark := func(tag string) func() {
			return func() { order = append(order, fmt.Sprintf("%s@%v#%d", tag, s.Now(), s.Rand().Intn(100))) }
		}
		sources := []struct {
			tag           string
			first, period Time
		}{
			{"a", 10 * Millisecond, 10 * Millisecond},
			{"b", 10 * Millisecond, 15 * Millisecond},
			{"c", 5 * Millisecond, 25 * Millisecond},
		}
		for _, src := range sources {
			fn := mark(src.tag)
			if periodic {
				s.Periodic(src.first, src.period, fn)
			} else {
				period := src.period
				var tick Handler
				tick = func() {
					fn()
					if !s.halted {
						s.After(period, tick)
					}
				}
				s.After(src.first, tick)
			}
		}
		s.At(20*Millisecond, mark("one-shot"))
		s.RunUntil(100 * Millisecond)
		return order
	}
	want := run(false)
	got := run(true)
	if len(got) == 0 || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("periodic order diverged from callback rescheduling:\n got %v\nwant %v", got, want)
	}
}

// TestResetReplaysIdentically: a Reset simulator must replay the run of a
// freshly constructed one bit-for-bit — same RNG stream, same event
// count — and stale EventIDs from before the Reset must be inert.
func TestResetReplaysIdentically(t *testing.T) {
	run := func(s *Simulator) ([]int64, uint64) {
		var draws []int64
		s.Periodic(Millisecond, Millisecond, func() {
			draws = append(draws, s.Rand().Int63n(1000))
		})
		s.RunUntil(50 * Millisecond)
		return draws, s.Executed()
	}
	fresh := New(77)
	wantDraws, wantEvents := run(fresh)

	s := New(1)
	stale := s.Periodic(Second, Second, func() { t.Error("event from before Reset ran") })
	run(s) // dirty the clock, queue and RNG
	s.Reset(77)
	if s.Now() != 0 || s.Executed() != 0 || s.Pending() != 0 {
		t.Fatalf("Reset left state: now=%v executed=%d pending=%d", s.Now(), s.Executed(), s.Pending())
	}
	gotDraws, gotEvents := run(s)
	s.Cancel(stale) // must not touch whatever now occupies the arena slot
	s.RunUntil(60 * Millisecond)
	if gotEvents != wantEvents {
		t.Fatalf("Reset replay executed %d events, fresh executed %d", gotEvents, wantEvents)
	}
	for i := range wantDraws {
		if gotDraws[i] != wantDraws[i] {
			t.Fatalf("Reset replay RNG diverged at draw %d: %d vs %d", i, gotDraws[i], wantDraws[i])
		}
	}
}

// TestCancelAfterRecycleIsInert: an EventID whose event already ran (and
// whose storage was recycled into a new event) must not cancel the new
// occupant.
func TestCancelAfterRecycleIsInert(t *testing.T) {
	s := New(1)
	first := s.At(Millisecond, func() {})
	s.Run()
	ran := false
	s.At(2*Millisecond, func() { ran = true }) // reuses the recycled storage
	s.Cancel(first)                            // stale generation: must be a no-op
	s.Run()
	if !ran {
		t.Fatal("stale EventID canceled a recycled event")
	}
}

// TestKernelSteadyStateZeroAlloc pins the arena contract the fleet
// engine's zero-allocation hot path is built on: once warm, a
// Reset-schedule-run cycle allocates nothing.
func TestKernelSteadyStateZeroAlloc(t *testing.T) {
	s := New(1)
	var sink int64
	// Handlers are hoisted out of the cycle, the way a reusable driver
	// caches its tick closures: a fresh closure per cycle would itself be
	// the per-run allocation the arena exists to avoid.
	fast := func() { sink += s.Rand().Int63n(3) }
	slow := func() { sink++ }
	cycle := func() {
		s.Reset(42)
		s.Periodic(Millisecond, Millisecond, fast)
		s.Periodic(Millisecond, 7*Millisecond, slow)
		s.RunUntil(100 * Millisecond)
	}
	cycle() // warm the arena
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Fatalf("steady-state kernel cycle allocates %.1f times per run, want 0", avg)
	}
}
