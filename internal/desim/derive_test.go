package desim

import "testing"

// TestDeriveSeedPinned pins the splitmix64 mapping. These constants are
// the replayability contract for every recorded fleet fingerprint: if
// they change, all previously recorded population sweeps replay
// differently.
func TestDeriveSeedPinned(t *testing.T) {
	cases := []struct {
		base   int64
		stream uint64
		want   int64
	}{
		{0, 0, -2152535657050944081},
		{42, 0, -4767286540954276203},
		{42, 1, 2949826092126892291},
		{42, 2, 5139283748462763858},
		{43, 0, -5014216602933006456},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.stream); got != c.want {
			t.Errorf("DeriveSeed(%d, %d) = %d, want %d", c.base, c.stream, got, c.want)
		}
	}
}

// TestDeriveSeedDecorrelates checks the child seeds of nearby bases and
// streams are all distinct — sequential seeds are exactly the failure
// mode splitmix exists to avoid.
func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := make(map[int64][2]uint64)
	for base := int64(0); base < 64; base++ {
		for stream := uint64(0); stream < 256; stream++ {
			s := DeriveSeed(base, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both derive %d",
					base, stream, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{uint64(base), stream}
		}
	}
}

// TestDeriveSeedStreamsDiffer checks consecutive streams of one base (the
// fleet's per-wearer seeds) land far apart bit-wise on average.
func TestDeriveSeedStreamsDiffer(t *testing.T) {
	base := int64(12345)
	var totalBits int
	const n = 1000
	for stream := uint64(0); stream < n; stream++ {
		x := uint64(DeriveSeed(base, stream)) ^ uint64(DeriveSeed(base, stream+1))
		for ; x != 0; x &= x - 1 {
			totalBits++
		}
	}
	avg := float64(totalBits) / n
	if avg < 24 || avg > 40 {
		t.Fatalf("average hamming distance between consecutive streams = %.1f, want ≈32", avg)
	}
}
