// Package desim is a deterministic discrete-event simulation kernel.
//
// It drives the body-area-network simulator (internal/bannet): virtual time
// advances from event to event, never by wall-clock sleeping, so a month of
// simulated wearable operation costs only as many events as actually occur.
//
// Determinism is a design requirement: the same seed and the same scenario
// must replay the identical event order, because the benchmark harness
// compares energy and latency figures across runs. To that end the kernel is
// single-threaded, ties in the event heap break on a monotone sequence
// number, and all randomness flows through the seeded RNG the simulator
// owns.
package desim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual simulation time in integer nanoseconds. Integer time
// makes event ordering exact (no float tie ambiguity) while one-nanosecond
// resolution comfortably resolves a 30 Mbps bit (33 ns).
type Time int64

// Time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
	Day         Time = 24 * Hour
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// String renders the time as seconds with full sub-second precision.
func (t Time) String() string { return fmt.Sprintf("%gs", t.Seconds()) }

// Handler is a scheduled callback. It runs when virtual time reaches the
// event's timestamp.
type Handler func()

// event is a pending callback in the priority queue. Events are recycled
// through the simulator's freelist: after a one-shot event runs (or a
// canceled event is reaped) its storage goes back to the arena, so a
// steady-state simulation — millions of events — allocates a bounded
// handful of event structs. gen counts recycles so a stale EventID held
// across a recycle can never cancel the event that now occupies the slot.
type event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among same-time events
	fn      Handler
	period  Time // > 0: self-rearming periodic event (see Periodic)
	gen     uint32
	stopped bool
	index   int // heap index, -1 once popped
}

// EventID identifies a scheduled event so it can be canceled. It pins the
// event's recycle generation: an ID that outlives its event (the event
// ran, or the simulator was Reset) becomes an inert no-op for Cancel.
type EventID struct {
	ev  *event
	gen uint32
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns a virtual clock, an event queue and a deterministic RNG.
// The zero value is not usable; construct with New.
//
// A Simulator is a reusable arena: Reset rewinds it to the freshly
// constructed state (new seed, empty queue, zero clock) while keeping the
// event freelist and queue capacity, so a driver that replays many
// scenarios on one kernel — the fleet engine's per-worker shards — runs
// allocation-free in steady state.
type Simulator struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	events uint64 // executed event count, for stats
	halted bool
	free   []*event // recycled event storage
}

// New returns a simulator whose RNG is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Reset rewinds the simulator to the state New(seed) constructs —
// identical RNG stream, empty queue, zero clock and counters — while
// retaining the event arena and queue capacity for reuse. Any EventID
// from before the Reset is inert.
func (s *Simulator) Reset(seed int64) {
	for _, ev := range s.queue {
		s.recycle(ev)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.events = 0
	s.halted = false
	s.rng.Seed(seed)
}

// alloc takes an event from the freelist (or the heap allocator on a
// cold arena) and stamps it with the next sequence number.
func (s *Simulator) alloc(at Time, fn Handler, period Time) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.period, ev.stopped = at, s.seq, fn, period, false
	s.seq++
	return ev
}

// recycle returns an event's storage to the arena. Bumping gen makes
// every outstanding EventID for this storage inert.
func (s *Simulator) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// DeriveSeed expands one base seed into a family of decorrelated child
// seeds, one per stream index, using the splitmix64 finalizer. A fleet of
// independent simulations derives each member's seed as
// DeriveSeed(fleetSeed, member), which keeps every member reproducible
// from the single fleet seed while nearby indices (0, 1, 2, …) land on
// statistically unrelated RNG streams — sequential seeds fed straight to
// math/rand would correlate.
//
// The mapping is pure and stable: it is part of the replayability contract
// (recorded fleet fingerprints depend on it), so it must never change.
func DeriveSeed(base int64, stream uint64) int64 {
	// splitmix64: golden-gamma increment then the finalizer.
	return int64(Mix64(uint64(base) + 0x9e3779b97f4a7c15*(stream+1)))
}

// Mix64 is the splitmix64 finalizer (Steele, Lea & Flood, OOPSLA 2014):
// two xor-multiply rounds plus a closing xor-shift. It is the shared
// bit-mixing primitive behind DeriveSeed and every other pinned
// deterministic mapping in the repo (e.g. spectrum cell assignment);
// like DeriveSeed itself, its output must never change.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the simulator's deterministic random source. All model
// randomness (packet errors, jitter, harvester variation) must come from
// here so a run is reproducible from its seed.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.events }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a model bug, and silently clamping would
// corrupt causality.
func (s *Simulator) At(at Time, fn Handler) EventID {
	if at < s.now {
		panic(fmt.Sprintf("desim: scheduling at %v before now %v", at, s.now))
	}
	ev := s.alloc(at, fn, 0)
	heap.Push(&s.queue, ev)
	return EventID{ev, ev.gen}
}

// After schedules fn to run delay after the current time.
func (s *Simulator) After(delay Time, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("desim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel prevents a scheduled event from running. Canceling an event that
// already ran (or was already canceled, or predates a Reset) is a
// harmless no-op: the EventID's generation no longer matches the recycled
// storage, so nothing is touched.
func (s *Simulator) Cancel(id EventID) {
	if id.ev != nil && id.ev.gen == id.gen {
		id.ev.stopped = true
	}
}

// Periodic schedules fn to run at now+first and then every period
// thereafter, until the returned ID is canceled. Unlike Every it carries
// no closure machinery: the kernel re-arms the same event storage after
// each firing (taking the next sequence number exactly where the
// callback-rescheduling pattern would), so a periodic source costs one
// arena event for the whole run. Halt stops the re-arm like it stops a
// self-rescheduling callback. A periodic event never drains on its own;
// drive the simulation with RunUntil or Cancel it before Run.
func (s *Simulator) Periodic(first, period Time, fn Handler) EventID {
	if period <= 0 {
		panic("desim: Periodic requires a positive period")
	}
	if first < 0 {
		panic(fmt.Sprintf("desim: negative delay %v", first))
	}
	ev := s.alloc(s.now+first, fn, period)
	heap.Push(&s.queue, ev)
	return EventID{ev, ev.gen}
}

// Every schedules fn to run now+first, then every period thereafter, until
// the returned stop function is called. fn observes the simulator clock; a
// period must be positive. It is Periodic with a closure-shaped handle.
func (s *Simulator) Every(first, period Time, fn Handler) (stop func()) {
	id := s.Periodic(first, period, fn)
	return func() { s.Cancel(id) }
}

// Halt stops the run loop after the current event returns. Pending events
// stay queued (Run/RunUntil can be called again to resume).
func (s *Simulator) Halt() { s.halted = true }

// step executes the earliest pending event. It reports false if the queue
// is empty. One-shot events are recycled after running; periodic events
// re-arm in place, taking the next sequence number at exactly the point a
// self-rescheduling callback would have (after its handler returned), so
// the event order is bit-identical to the closure formulation.
func (s *Simulator) step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped {
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		s.events++
		ev.fn()
		if ev.period > 0 && !ev.stopped && !s.halted {
			ev.at += ev.period
			ev.seq = s.seq
			s.seq++
			heap.Push(&s.queue, ev)
		} else {
			s.recycle(ev)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called, and
// returns the final virtual time.
func (s *Simulator) Run() Time {
	s.halted = false
	for !s.halted && s.step() {
	}
	return s.now
}

// RunUntil executes events with timestamps ≤ end, then sets the clock to
// end (if it has not already passed) and returns. Events after end remain
// queued.
func (s *Simulator) RunUntil(end Time) Time {
	s.halted = false
	for !s.halted {
		if s.queue.Len() == 0 {
			break
		}
		// Peek at the head without popping.
		next := s.queue[0]
		if next.stopped {
			s.recycle(heap.Pop(&s.queue).(*event))
			continue
		}
		if next.at > end {
			break
		}
		s.step()
	}
	if s.now < end && !s.halted {
		s.now = end
	}
	return s.now
}

// Pending reports how many events are queued (including canceled events not
// yet reaped).
func (s *Simulator) Pending() int { return s.queue.Len() }
