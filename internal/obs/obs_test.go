package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text a scraper sees: family order
// (sorted by name), HELP/TYPE lines, label rendering (sorted keys,
// escaped values), float formatting, and the histogram expansion to
// cumulative buckets plus _sum/_count. The Prometheus text format is a
// wire contract — a byte-level change here is a breaking change for
// every scraper, so this test is deliberately a full golden string.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_wearers_total", "Wearer simulations completed.", nil)
	c.Add(12345)
	r.NewCounter("test_sweeps_total", "Sweeps by terminal state.", Labels{"state": "completed"}).Add(3)
	r.NewCounter("test_sweeps_total", "Sweeps by terminal state.", Labels{"state": "failed"})
	g := r.NewGauge("test_window_depth", "Reorder-window occupancy.", nil)
	g.Set(7)
	g.Add(-2)
	r.NewGaugeFunc("test_alloc_bytes", "Heap bytes with \"quotes\" and\nnewline.", Labels{"kind": `va"l\ue`}, func() float64 { return 1.5e6 })
	h := r.NewHistogram("test_phase1_seconds", "Phase-1 latency.", nil, []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_alloc_bytes Heap bytes with "quotes" and\nnewline.
# TYPE test_alloc_bytes gauge
test_alloc_bytes{kind="va\"l\\ue"} 1.5e+06
# HELP test_phase1_seconds Phase-1 latency.
# TYPE test_phase1_seconds histogram
test_phase1_seconds_bucket{le="0.01"} 2
test_phase1_seconds_bucket{le="0.1"} 2
test_phase1_seconds_bucket{le="1"} 3
test_phase1_seconds_bucket{le="+Inf"} 4
test_phase1_seconds_sum 30.51
test_phase1_seconds_count 4
# HELP test_sweeps_total Sweeps by terminal state.
# TYPE test_sweeps_total counter
test_sweeps_total{state="completed"} 3
test_sweeps_total{state="failed"} 0
# HELP test_wearers_total Wearer simulations completed.
# TYPE test_wearers_total counter
test_wearers_total 12345
# HELP test_window_depth Reorder-window occupancy.
# TYPE test_window_depth gauge
test_window_depth 5
`
	if got := b.String(); got != want {
		t.Errorf("exposition diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabeledHistogram pins the histogram expansion with a constant
// label set: the le label composes after the constant labels on every
// bucket, and _sum/_count carry the labels too.
func TestLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "h", Labels{"phase": "gather"}, []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_seconds h
# TYPE test_seconds histogram
test_seconds_bucket{phase="gather",le="1"} 1
test_seconds_bucket{phase="gather",le="+Inf"} 1
test_seconds_sum{phase="gather"} 0.5
test_seconds_count{phase="gather"} 1
`
	if got := b.String(); got != want {
		t.Errorf("labeled histogram:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationConflictsPanic pins the fail-fast contract: conflicting
// or malformed registrations die at wiring time.
func TestRegistrationConflictsPanic(t *testing.T) {
	for name, reg := range map[string]func(r *Registry){
		"bad metric name":       func(r *Registry) { r.NewCounter("7up", "h", nil) },
		"bad label name":        func(r *Registry) { r.NewCounter("ok_total", "h", Labels{"0bad": "v"}) },
		"reserved le label":     func(r *Registry) { r.NewHistogram("ok_h", "h", Labels{"le": "x"}, []float64{1}) },
		"type conflict":         func(r *Registry) { r.NewCounter("ok_total", "h", nil); r.NewGauge("ok_total", "h", nil) },
		"help conflict":         func(r *Registry) { r.NewCounter("ok_total", "a", nil); r.NewCounter("ok_total", "b", Labels{"x": "y"}) },
		"duplicate series":      func(r *Registry) { r.NewCounter("ok_total", "h", nil); r.NewCounter("ok_total", "h", nil) },
		"empty buckets":         func(r *Registry) { r.NewHistogram("ok_h", "h", nil, nil) },
		"non-increasing bounds": func(r *Registry) { r.NewHistogram("ok_h", "h", nil, []float64{1, 1}) },
		"negative counter add":  func(r *Registry) { r.NewCounter("ok_total", "h", nil).Add(-1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			reg(NewRegistry())
		})
	}
}

// TestConcurrentUpdates hammers every metric type from racing goroutines
// while a scraper renders, then checks exact totals — the lock-free
// update paths must not lose increments (run under -race in CI).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "h", nil)
	g := r.NewGauge("g", "h", nil)
	h := r.NewHistogram("h", "h", nil, []float64{10, 100})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(2)
				g.Add(-1)
				h.Observe(float64(j % 200))
				if j%100 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter %v, want %d", got, goroutines*per)
	}
	if got := g.Value(); got != goroutines*per {
		t.Errorf("gauge %v, want %d", got, goroutines*per)
	}
	if got := h.Count(); got != goroutines*per {
		t.Errorf("histogram count %d, want %d", got, goroutines*per)
	}
	wantSum := float64(goroutines) * float64(per/200) * (199.0 * 200.0 / 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum %v, want %v", got, wantSum)
	}
}

// TestHandler pins the scrape endpoint: content type and a rendered
// body, including the +Inf/NaN spellings the text format requires.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("inf_gauge", "h", nil, func() float64 { return math.Inf(1) })
	r.NewGaugeFunc("nan_gauge", "h", nil, func() float64 { return math.NaN() })
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inf_gauge +Inf\n", "nan_gauge NaN\n"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape body missing %q:\n%s", want, body)
		}
	}
}
