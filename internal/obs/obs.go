// Package obs is a dependency-free metrics registry with Prometheus
// text-format exposition (version 0.0.4, the format every Prometheus
// scraper speaks). It exists so the iobfleetd daemon can export live
// fleet-engine counters without pulling a client library into a
// repository whose only dependency is the standard library.
//
// The model is deliberately small: a metric is registered once with a
// constant label set and then updated through atomic operations —
// Counter (monotone float), Gauge (settable float), Histogram
// (fixed-bucket cumulative distribution), and the func-backed
// CounterFunc/GaugeFunc that sample an external source (an atomic
// counter the fleet engine updates, a runtime.MemStats field) at scrape
// time. Several series may share one metric name with different label
// sets; the registry renders them under a single HELP/TYPE header, in
// registration order, with metric families sorted by name.
//
// All update paths are lock-free and allocation-free, safe for
// concurrent use from the engine's hot path; registration and exposition
// take the registry lock. Registration panics on a malformed or
// conflicting definition — metrics are wired at process start, and a
// typo'd name should kill the daemon in development, not corrupt a
// scrape in production.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a constant label set attached to one series at registration.
// Keys are rendered in sorted order.
type Labels map[string]string

// Counter is a monotonically increasing metric. Updates are atomic;
// negative increments panic (use a Gauge for values that go down).
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter by v (v >= 0).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("obs: counter increment %v is not >= 0", v))
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative distribution: Observe counts
// each sample into the first bucket whose upper bound admits it and
// accumulates the exact sum, matching the Prometheus histogram contract
// (_bucket series are cumulative, le="+Inf" equals _count).
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports total observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum reports the exact sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricType is the TYPE line vocabulary.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instance under a family.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	read   func() float64
	hist   *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []series
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, labels, series{read: c.Value})
	return c
}

// NewCounterFunc registers a counter whose value is sampled from fn at
// scrape time — the bridge from an external monotone source (an atomic
// the fleet engine updates) to the exposition. fn must be monotone and
// safe for concurrent calls.
func (r *Registry) NewCounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, typeCounter, labels, series{read: fn})
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, labels, series{read: g.Value})
	return g
}

// NewGaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, typeGauge, labels, series{read: fn})
}

// NewHistogram registers and returns a histogram series with the given
// bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %v", name, bounds[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds))}
	r.register(name, help, typeHistogram, labels, series{hist: h})
	return h
}

// register validates and stores one series, panicking on conflicts: a
// name reused with a different type or help, a duplicate label set under
// one name, or an invalid metric/label name.
func (r *Registry) register(name, help string, typ metricType, labels Labels, s series) {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for k := range labels {
		if !validName(k) || k == "le" {
			panic("obs: invalid label name " + strconv.Quote(k) + " on metric " + name)
		}
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		r.families[name] = &family{name: name, help: help, typ: typ, series: []series{s}}
		return
	}
	if f.typ != typ || f.help != help {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (%q), was %s (%q)", name, typ, help, f.typ, f.help))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: metric %s{%s} registered twice", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// validName is the Prometheus metric/label name charset:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels renders a constant label set as k="v" pairs, sorted by
// key, with Prometheus escaping in the values.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeValue applies label-value escaping: backslash, double-quote and
// newline.
func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp applies HELP-line escaping: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format 0.0.4:
// families sorted by name, one HELP and TYPE line each, series in
// registration order, histograms expanded to cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if f.typ == typeHistogram {
				writeHistogram(&b, f.name, s)
				continue
			}
			if s.labels == "" {
				fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(s.read()))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, s.labels, formatValue(s.read()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram series. Bucket counts are read
// low-to-high and accumulated, so a concurrent Observe can only make a
// rendered bucket momentarily under-count relative to _count — never
// violate cumulativity within the rendered buckets.
func writeHistogram(b *strings.Builder, name string, s series) {
	h := s.hist
	sep := ""
	if s.labels != "" {
		sep = s.labels + ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, sep, formatValue(bound), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum)
	if s.labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, s.labels, formatValue(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, s.labels, cum)
	}
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing useful to send.
			return
		}
	})
}
