// Package phy models the physical layer of both link families: modulation,
// thermal noise, bit-error rate, packet error rate and link budgets.
//
// Wi-R-class EQS-HBC transceivers use simple wideband signaling (OOK or
// BPSK-like voltage-mode signaling without a power amplifier), while BLE
// uses GFSK at 2.4 GHz. Both reduce, for our purposes, to a BER-vs-SNR
// curve and a link budget; the packet error rate then drives the MAC and
// network simulation retransmission behaviour.
package phy

import (
	"fmt"
	"math"

	"wiban/internal/units"
)

// BoltzmannK is the Boltzmann constant in J/K.
const BoltzmannK = 1.380649e-23

// RoomTempK is the reference temperature for noise calculations.
const RoomTempK = 290.0

// Modulation is a digital modulation scheme with an analytic BER curve.
type Modulation int

// Supported modulations.
const (
	// OOK is on-off keying with non-coherent envelope detection — the
	// workhorse of ultra-low-power EQS-HBC transmitters (BodyWire-class).
	OOK Modulation = iota
	// BPSK is coherent binary phase-shift keying, the best-case binary
	// curve, used by higher-end HBC designs.
	BPSK
	// FSK2 is non-coherent binary FSK.
	FSK2
	// GFSK is the Gaussian-filtered FSK BLE uses; modeled as non-coherent
	// FSK with a 1 dB filtering penalty.
	GFSK
)

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case OOK:
		return "OOK"
	case BPSK:
		return "BPSK"
	case FSK2:
		return "2-FSK"
	case GFSK:
		return "GFSK"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BER returns the bit error probability at the given Eb/N0 (linear, not
// dB). All curves are the standard textbook results.
func (m Modulation) BER(ebn0 float64) float64 {
	if ebn0 <= 0 {
		return 0.5
	}
	switch m {
	case BPSK:
		return qfunc(math.Sqrt(2 * ebn0))
	case OOK:
		// Non-coherent OOK with optimal threshold: ½·exp(-Eb/2N0).
		return 0.5 * math.Exp(-ebn0/2)
	case FSK2:
		return 0.5 * math.Exp(-ebn0/2)
	case GFSK:
		// Gaussian filtering costs ≈ 1 dB against ideal non-coherent FSK.
		return 0.5 * math.Exp(-ebn0/(2*units.FromDB(1)))
	default:
		return 0.5
	}
}

// RequiredEbN0 returns the linear Eb/N0 needed to reach a target BER,
// found by bisection on the (monotone) BER curve.
func (m Modulation) RequiredEbN0(targetBER float64) float64 {
	if targetBER >= 0.5 {
		return 0
	}
	lo, hi := 1e-3, 1e6
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if m.BER(mid) > targetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// NoiseFloor returns the thermal noise power kTB scaled by a receiver noise
// figure (dB) over bandwidth bw.
func NoiseFloor(bw units.Frequency, noiseFigureDB float64) units.Power {
	return units.Power(BoltzmannK * RoomTempK * float64(bw) * units.FromDB(noiseFigureDB))
}

// Link is a fully specified point-to-point physical link.
type Link struct {
	Name       string
	Mod        Modulation
	TXPower    units.Power     // power delivered to the channel input
	GainDB     float64         // channel gain (negative = loss)
	Rate       units.DataRate  // signaling bit rate
	Bandwidth  units.Frequency // receiver noise bandwidth
	NoiseFigDB float64         // receiver noise figure
}

// RXPower returns the received signal power.
func (l *Link) RXPower() units.Power {
	return units.Power(float64(l.TXPower) * units.FromDB(l.GainDB))
}

// SNR returns the received signal-to-noise ratio (linear) in the receiver
// bandwidth.
func (l *Link) SNR() float64 {
	n := NoiseFloor(l.Bandwidth, l.NoiseFigDB)
	if n <= 0 {
		return math.Inf(1)
	}
	return float64(l.RXPower()) / float64(n)
}

// EbN0 returns the energy-per-bit to noise-density ratio (linear):
// SNR scaled by bandwidth-to-bitrate.
func (l *Link) EbN0() float64 {
	if l.Rate <= 0 {
		return math.Inf(1)
	}
	return l.SNR() * float64(l.Bandwidth) / float64(l.Rate)
}

// BER returns the link's bit error rate.
func (l *Link) BER() float64 { return l.Mod.BER(l.EbN0()) }

// PER returns the packet error rate for an n-bit packet assuming
// independent bit errors: 1 - (1-BER)^n, computed stably via expm1/log1p.
func (l *Link) PER(bits int) float64 {
	ber := l.BER()
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return -math.Expm1(float64(bits) * math.Log1p(-ber))
}

// MarginDB returns the link margin in dB relative to the Eb/N0 needed for
// targetBER. Positive margin means the link closes.
func (l *Link) MarginDB(targetBER float64) float64 {
	need := l.Mod.RequiredEbN0(targetBER)
	have := l.EbN0()
	if need <= 0 {
		return math.Inf(1)
	}
	return units.DB(have / need)
}

// Closes reports whether the link supports targetBER.
func (l *Link) Closes(targetBER float64) bool {
	return l.BER() <= targetBER
}

// ShannonCapacity returns the channel capacity B·log2(1+SNR) — a sanity
// ceiling no rate claim may exceed.
func (l *Link) ShannonCapacity() units.DataRate {
	return units.DataRate(float64(l.Bandwidth) * math.Log2(1+l.SNR()))
}

// MaxRateForBER returns the highest bit rate (≤ the signaling bandwidth)
// at which the link still meets targetBER, by bisection: lowering the rate
// raises Eb/N0.
func (l *Link) MaxRateForBER(targetBER float64) units.DataRate {
	need := l.Mod.RequiredEbN0(targetBER)
	if need <= 0 {
		return l.Rate
	}
	// Eb/N0 = SNR·B/R ≥ need  ⇒  R ≤ SNR·B/need.
	r := l.SNR() * float64(l.Bandwidth) / need
	if r < 0 {
		return 0
	}
	cap := float64(l.ShannonCapacity())
	if r > cap {
		r = cap
	}
	return units.DataRate(r)
}

// Sensitivity returns the minimum received power to meet targetBER at the
// link's rate, in dBm — the spec-sheet number used in bubble-radius
// calculations.
func (l *Link) Sensitivity(targetBER float64) float64 {
	need := l.Mod.RequiredEbN0(targetBER)
	n := NoiseFloor(l.Bandwidth, l.NoiseFigDB)
	// P_rx,min = need · N · R / B.
	pmin := need * float64(n) * float64(l.Rate) / float64(l.Bandwidth)
	return units.DBm(units.Power(pmin))
}
