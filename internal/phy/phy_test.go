package phy

import (
	"math"
	"testing"
	"testing/quick"

	"wiban/internal/channel"
	"wiban/internal/units"
)

func TestBERKnownPoints(t *testing.T) {
	// BPSK at Eb/N0 = 9.6 dB gives BER ≈ 1e-5 (textbook point).
	ber := BPSK.BER(units.FromDB(9.6))
	if ber < 0.5e-5 || ber > 2e-5 {
		t.Errorf("BPSK BER at 9.6 dB = %g, want ≈ 1e-5", ber)
	}
	// OOK needs more Eb/N0 than BPSK at the same BER.
	if OOK.BER(units.FromDB(9.6)) <= ber {
		t.Error("OOK should be worse than BPSK at equal Eb/N0")
	}
	// GFSK is ≈1 dB worse than plain 2-FSK.
	if GFSK.BER(10) <= FSK2.BER(10) {
		t.Error("GFSK should be worse than 2-FSK at equal Eb/N0")
	}
}

func TestBERMonotoneDecreasing(t *testing.T) {
	for _, m := range []Modulation{OOK, BPSK, FSK2, GFSK} {
		f := func(a, b uint16) bool {
			x := float64(a)/100 + 0.01
			y := float64(b)/100 + 0.01
			if x > y {
				x, y = y, x
			}
			return m.BER(x) >= m.BER(y)-1e-15
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestBERBounds(t *testing.T) {
	for _, m := range []Modulation{OOK, BPSK, FSK2, GFSK} {
		if got := m.BER(0); got != 0.5 {
			t.Errorf("%v BER at zero SNR = %v, want 0.5", m, got)
		}
		if got := m.BER(-3); got != 0.5 {
			t.Errorf("%v BER at negative SNR = %v, want 0.5", m, got)
		}
		if got := m.BER(1e4); got > 1e-30 {
			t.Errorf("%v BER at huge SNR = %v, want ≈ 0", m, got)
		}
	}
}

func TestRequiredEbN0RoundTrip(t *testing.T) {
	for _, m := range []Modulation{OOK, BPSK, FSK2, GFSK} {
		for _, target := range []float64{1e-3, 1e-5, 1e-7} {
			need := m.RequiredEbN0(target)
			got := m.BER(need)
			if got > target*1.01 {
				t.Errorf("%v: BER(RequiredEbN0(%g)) = %g, exceeds target", m, target, got)
			}
			// And barely: 1 dB less must miss the target.
			if m.BER(need/units.FromDB(1)) < target {
				t.Errorf("%v: RequiredEbN0(%g) not tight", m, target)
			}
		}
	}
	if BPSK.RequiredEbN0(0.5) != 0 {
		t.Error("RequiredEbN0(0.5) should be 0")
	}
}

func TestNoiseFloorKnownPoint(t *testing.T) {
	// kTB at 290 K over 1 MHz = -114 dBm; with 10 dB NF, -104 dBm.
	n := NoiseFloor(1*units.Megahertz, 10)
	if got := units.DBm(n); math.Abs(got-(-104)) > 0.2 {
		t.Errorf("noise floor = %.1f dBm, want ≈ -104 dBm", got)
	}
}

// wirLink builds a representative Wi-R EQS link: 1 V-class TX driving the
// body channel (modeled as the EQS gain at 21 MHz), OOK, 4 Mbps in 8 MHz.
func wirLink() *Link {
	eqs := channel.DefaultEQSBody()
	return &Link{
		Name:       "Wi-R 4 Mbps",
		Mod:        OOK,
		TXPower:    100 * units.Microwatt, // voltage-mode driver output
		GainDB:     eqs.GainAtDB(21*units.Megahertz, 1.5*units.Meter),
		Rate:       4 * units.Mbps,
		Bandwidth:  8 * units.Megahertz,
		NoiseFigDB: 15,
	}
}

// bleLink builds a representative BLE 1M link across the body.
func bleLink() *Link {
	rf := channel.DefaultBLEPath()
	return &Link{
		Name:       "BLE 1M",
		Mod:        GFSK,
		TXPower:    units.FromDBm(0),
		GainDB:     rf.GainDB(1.5 * units.Meter),
		Rate:       1 * units.Mbps,
		Bandwidth:  1 * units.Megahertz,
		NoiseFigDB: 12,
	}
}

func TestWiRLinkCloses(t *testing.T) {
	l := wirLink()
	if !l.Closes(1e-6) {
		t.Errorf("Wi-R link should close at BER 1e-6; BER = %g, margin %.1f dB",
			l.BER(), l.MarginDB(1e-6))
	}
	// The whole-body EQS link must support > 4 Mbps — the Wi-R headline.
	if max := l.MaxRateForBER(1e-6); max < 4*units.Mbps {
		t.Errorf("max rate at BER 1e-6 = %v, want ≥ 4 Mbps", max)
	}
}

func TestBLELinkCloses(t *testing.T) {
	l := bleLink()
	if !l.Closes(1e-3) { // BLE spec BER target is 1e-3
		t.Errorf("BLE link should close at BER 1e-3; BER = %g", l.BER())
	}
}

func TestShannonCeiling(t *testing.T) {
	for _, l := range []*Link{wirLink(), bleLink()} {
		if max := l.MaxRateForBER(1e-6); float64(max) > float64(l.ShannonCapacity()) {
			t.Errorf("%s: practical rate %v exceeds Shannon capacity %v",
				l.Name, max, l.ShannonCapacity())
		}
	}
}

func TestPERProperties(t *testing.T) {
	l := wirLink()
	// PER grows with packet size and is within [0,1].
	per256 := l.PER(256 * 8)
	per4k := l.PER(4096 * 8)
	if per256 < 0 || per4k > 1 || per4k < per256 {
		t.Errorf("PER(256B)=%g PER(4kB)=%g: want monotone in [0,1]", per256, per4k)
	}
	// Tiny-BER stability: with BER ~1e-9, PER(1000 bits) ≈ 1e-6, not 0.
	weak := *l
	weak.TXPower = l.TXPower / 4
	ber := weak.BER()
	if ber > 0 {
		per := weak.PER(1000)
		approx := 1 - math.Pow(1-ber, 1000)
		if per <= 0 || math.Abs(per-approx) > 1e-3*approx+1e-18 {
			t.Errorf("PER numerics: got %g, direct %g (BER %g)", per, approx, ber)
		}
	}
}

func TestPERDegenerate(t *testing.T) {
	l := &Link{Mod: BPSK, TXPower: 1, GainDB: 0, Rate: 1, Bandwidth: 1, NoiseFigDB: 0}
	if l.PER(0) != 0 {
		t.Error("PER of empty packet should be 0")
	}
	dead := &Link{Mod: BPSK, TXPower: 0, GainDB: -300, Rate: units.Kbps, Bandwidth: units.Kilohertz}
	if p := dead.PER(100); p < 0.99 {
		t.Errorf("dead link PER = %g, want ≈ 1", p)
	}
}

func TestSensitivityOrdering(t *testing.T) {
	// BLE 1M receiver sensitivity at BER 1e-3 should land in the -90s dBm —
	// matching real BLE silicon (-90..-100 dBm).
	l := bleLink()
	s := l.Sensitivity(1e-3)
	if s > -85 || s < -105 {
		t.Errorf("BLE sensitivity = %.1f dBm, want ≈ -95 dBm", s)
	}
	// Slower links are more sensitive.
	slow := *l
	slow.Rate = 125 * units.Kbps
	if slow.Sensitivity(1e-3) >= s {
		t.Error("coded/slower PHY should have better (lower) sensitivity")
	}
}

func TestMarginConsistency(t *testing.T) {
	l := wirLink()
	m := l.MarginDB(1e-6)
	if !l.Closes(1e-6) || m <= 0 {
		t.Fatalf("expected positive margin, got %.1f dB", m)
	}
	// Shrink TX power by the margin: the link should sit right at target.
	shrunk := *l
	shrunk.TXPower = units.Power(float64(l.TXPower) / units.FromDB(m))
	if got := shrunk.BER(); got > 1.2e-6 {
		t.Errorf("after removing margin, BER = %g, want ≈ 1e-6", got)
	}
}

func TestModulationString(t *testing.T) {
	names := map[Modulation]string{OOK: "OOK", BPSK: "BPSK", FSK2: "2-FSK", GFSK: "GFSK"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("String() = %q, want %q", m.String(), want)
		}
	}
	if Modulation(99).String() != "Modulation(99)" {
		t.Errorf("unknown modulation string = %q", Modulation(99).String())
	}
}
