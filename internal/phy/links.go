package phy

import (
	"wiban/internal/channel"
	"wiban/internal/units"
)

// Canonical link constructors: the two physical layers the paper
// compares, parameterized only by body-path length. These connect the
// channel models to the PER the MAC and network simulator consume.

// WiRLink returns the Wi-R physical link over the default EQS body
// channel: a 100 µW-class voltage-mode transmitter at 21 MHz carrying
// 4 Mbps OOK in 8 MHz.
func WiRLink(bodyPath units.Distance) *Link {
	eqs := channel.DefaultEQSBody()
	return &Link{
		Name:       "Wi-R 4 Mbps",
		Mod:        OOK,
		TXPower:    100 * units.Microwatt,
		GainDB:     eqs.GainAtDB(21*units.Megahertz, bodyPath),
		Rate:       4 * units.Mbps,
		Bandwidth:  8 * units.Megahertz,
		NoiseFigDB: 15,
	}
}

// BLELink returns the BLE 1M physical link over the default shadowed
// 2.4 GHz body path at 0 dBm.
func BLELink(bodyPath units.Distance) *Link {
	rf := channel.DefaultBLEPath()
	return &Link{
		Name:       "BLE 1M",
		Mod:        GFSK,
		TXPower:    units.FromDBm(0),
		GainDB:     rf.GainDB(bodyPath),
		Rate:       1 * units.Mbps,
		Bandwidth:  1 * units.Megahertz,
		NoiseFigDB: 12,
	}
}

// MQSLink returns the implant magneto-quasistatic link at the given
// tissue depth: 1 Mbps OOK at 1 MHz carrier from a 10 µW coil driver.
func MQSLink(depth units.Distance) *Link {
	coil := channel.DefaultMQSImplant()
	return &Link{
		Name:       "MQS implant 1 Mbps",
		Mod:        OOK,
		TXPower:    10 * units.Microwatt,
		GainDB:     coil.GainDB(depth),
		Rate:       1 * units.Mbps,
		Bandwidth:  2 * units.Megahertz,
		NoiseFigDB: 10,
	}
}
