package phy

import (
	"testing"

	"wiban/internal/units"
)

func TestCanonicalLinksClose(t *testing.T) {
	// Both on-body links must close across the whole body (2 m path).
	if l := WiRLink(2 * units.Meter); !l.Closes(1e-6) {
		t.Errorf("Wi-R link at 2 m: BER %g, should close at 1e-6", l.BER())
	}
	if l := BLELink(2 * units.Meter); !l.Closes(1e-3) {
		t.Errorf("BLE link at 2 m: BER %g, should close at 1e-3", l.BER())
	}
	// The implant link closes at 5 cm depth; by 50 cm (well outside the
	// body) the 1/d³ coupling collapse has killed it — MQS shares the
	// EQS personal-bubble property.
	if l := MQSLink(5 * units.Centimeter); !l.Closes(1e-6) {
		t.Errorf("MQS link at 5 cm: BER %g, should close", l.BER())
	}
	if l := MQSLink(50 * units.Centimeter); l.Closes(1e-6) {
		t.Errorf("MQS link at 50 cm closes (BER %g) — coupling should have collapsed", l.BER())
	}
}

func TestCanonicalLinkPERIsUsable(t *testing.T) {
	// PER of a 1 kB packet on the nominal links must be small enough for
	// the simulator's retry budget (< 5%) — this is where bannet's PER
	// values come from.
	for _, l := range []*Link{WiRLink(1.5 * units.Meter), BLELink(1.5 * units.Meter)} {
		per := l.PER(1024 * 8)
		if per > 0.05 {
			t.Errorf("%s: PER %g too high for ARQ budget", l.Name, per)
		}
	}
}

func TestLinkDegradesWithPath(t *testing.T) {
	near := WiRLink(0.5 * units.Meter)
	far := WiRLink(2 * units.Meter)
	if near.BER() > far.BER() {
		t.Error("longer body path should not improve BER")
	}
	if nb, fb := BLELink(0.5*units.Meter).BER(), BLELink(5*units.Meter).BER(); nb > fb {
		t.Error("longer RF path should not improve BER")
	}
}
