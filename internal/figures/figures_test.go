package figures

import (
	"strings"
	"testing"

	"wiban/internal/units"
)

func TestAllGeneratorsProduceTables(t *testing.T) {
	for _, g := range All() {
		tab, err := g.Gen()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", g.Name)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row width %d ≠ header %d", g.Name, len(row), len(tab.Header))
			}
		}
		r := tab.Render()
		if !strings.Contains(r, tab.ID) || !strings.Contains(r, tab.Header[0]) {
			t.Errorf("%s: render missing ID/header", g.Name)
		}
		csv := tab.CSV()
		if lines := strings.Count(csv, "\n"); lines != len(tab.Rows)+1 {
			t.Errorf("%s: CSV has %d lines, want %d", g.Name, lines, len(tab.Rows)+1)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tab, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// 4 node classes × 2 architectures.
	if len(tab.Rows) != 8 {
		t.Fatalf("Fig1 rows = %d, want 8", len(tab.Rows))
	}
	// Rows alternate conventional / human-inspired.
	for i := 0; i < len(tab.Rows); i += 2 {
		if tab.Rows[i][1] != "conventional" || tab.Rows[i+1][1] != "human-inspired" {
			t.Fatalf("row pair %d not conv/hi ordered", i)
		}
	}
}

func TestFig2AllConsistent(t *testing.T) {
	tab, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("Fig2 rows = %d, want 11", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("%s: projection inconsistent with claimed band", row[0])
		}
	}
}

func TestFig3ResultShape(t *testing.T) {
	res, tab, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) != len(tab.Rows) || len(res.BLELife) != len(res.Sweep) {
		t.Fatal("sweep/table/BLE lengths disagree")
	}
	if len(res.Markers) != 5 {
		t.Fatalf("markers = %d, want 5", len(res.Markers))
	}
	// Paper regions: first three markers perpetual, audio ≥ week,
	// video ≥ day.
	for i, name := range res.MarkerNames {
		pr := res.Markers[i]
		switch name {
		case "biopotential patch", "smart ring", "fitness tracker":
			if !pr.Perpetual {
				t.Errorf("%s not perpetual", name)
			}
		case "audio AI wearable":
			if pr.Life < units.Week {
				t.Errorf("audio life %v < week", pr.Life)
			}
		case "video AI node (MJPEG)":
			if pr.Life < units.Day {
				t.Errorf("video life %v < day", pr.Life)
			}
		}
	}
	if res.PerpetualBoundary <= 0 {
		t.Error("no perpetual boundary found")
	}
	// Wi-R life ≥ BLE life at every feasible point.
	for i, pr := range res.Sweep {
		if res.BLELife[i] >= 0 && res.BLELife[i] > pr.Life {
			t.Errorf("BLE outlived Wi-R at %v", pr.Rate)
		}
	}
	// BLE must become infeasible before the sweep ends (>319 kbps).
	if res.BLELife[len(res.BLELife)-1] >= 0 {
		t.Error("BLE should be infeasible at 3.9 Mbps")
	}
}

func TestOffloadTableShape(t *testing.T) {
	tab, err := TableOffload()
	if err != nil {
		t.Fatal(err)
	}
	// 3 models × 3 links.
	if len(tab.Rows) != 9 {
		t.Fatalf("offload rows = %d, want 9", len(tab.Rows))
	}
	// Every Wi-R row must have cut 0 (sensor-only leaf).
	for _, row := range tab.Rows {
		if row[1] == "Wi-R" && !strings.HasPrefix(row[2], "0/") {
			t.Errorf("%s over Wi-R: cut %s, want 0/N", row[0], row[2])
		}
		if row[1] == "BLE 4.2" && strings.HasPrefix(row[2], "0/") {
			t.Errorf("%s over BLE: cut 0 should not be optimal", row[0])
		}
	}
}

func TestAblationCompressionShape(t *testing.T) {
	tab, err := AblationCompression()
	if err != nil {
		t.Fatal(err)
	}
	// 3 MJPEG qualities + 4 ECG policies.
	if len(tab.Rows) != 7 {
		t.Fatalf("ablation rows = %d, want 7", len(tab.Rows))
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Header: []string{"a", "b"},
		Rows: [][]string{{`has,comma`, `has"quote`}}}
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
}
