package figures

import (
	"fmt"

	"wiban/internal/channel"
	"wiban/internal/compress"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/security"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// radioBLE returns the BLE baseline used across comparisons.
func radioBLE() *radio.Transceiver { return radio.BLE42() }

// TableWiRvsBLE regenerates the paper's headline comparison (TAB-A):
// ">10× faster than BLE, <100× the power", plus the channel-geometry
// argument (1–2 m body channel vs 5–10 m+ radiation).
func TableWiRvsBLE() (*Table, error) {
	wir, ble := radio.WiR(), radioBLE()
	eqs := channel.DefaultEQSBody()
	rf := channel.DefaultBLEPath()
	assess := security.Assess()

	row := func(metric, w, b, note string) []string { return []string{metric, w, b, note} }
	t := &Table{
		ID:     "TAB-A",
		Title:  "Wi-R vs BLE (paper §I, §III-B claims)",
		Header: []string{"metric", "Wi-R (EQS-HBC)", "BLE 4.2", "paper claim"},
	}
	rateRatio := float64(wir.Goodput) / float64(ble.Goodput)
	energyRatio := float64(ble.EnergyPerGoodBit()) / float64(wir.EnergyPerGoodBit())
	t.Rows = append(t.Rows,
		row("application goodput", wir.Goodput.String(), ble.Goodput.String(),
			fmt.Sprintf(">10x faster (measured %.1fx)", rateRatio)),
		row("energy per delivered bit", wir.EnergyPerGoodBit().String(), ble.EnergyPerGoodBit().String(),
			fmt.Sprintf("<100x lower power (measured %.0fx)", energyRatio)),
		row("active radio power", wir.ActiveTX.String(), ble.ActiveTX.String(),
			"RF burns 1-10 mW+; EQS stays in uW class"),
		row("on-body channel gain @1.5 m",
			fmt.Sprintf("%.1f dB", eqs.GainAtDB(21*units.Megahertz, 1.5*units.Meter)),
			fmt.Sprintf("%.1f dB", rf.GainDB(1.5*units.Meter)),
			"body absorbs RF; EQS rides it"),
		row("signal containment (intercept range)",
			assess.EQSRange.String(), assess.RFRange.String(),
			"personal bubble vs room-scale radiation"),
	)
	if rateRatio < 10 || energyRatio < 100 {
		return nil, fmt.Errorf("figures: headline claim violated (rate %.1fx, energy %.0fx)",
			rateRatio, energyRatio)
	}
	return t, nil
}

// TableTransceivers regenerates the §IV-B HBC transceiver survey (TAB-B).
func TableTransceivers() (*Table, error) {
	t := &Table{
		ID:    "TAB-B",
		Title: "Transceiver survey (paper §IV-B cited silicon + BLE baselines)",
		Header: []string{"design", "technology", "goodput", "energy/bit",
			"active power", "sleep power"},
	}
	for _, tr := range radio.Catalog() {
		t.Rows = append(t.Rows, []string{
			tr.Name, tr.Tech.String(), tr.Goodput.String(),
			tr.EnergyPerGoodBit().String(), tr.ActiveTX.String(), tr.Sleep.String(),
		})
	}
	t.Notes = append(t.Notes,
		"cited: BodyWire 6.3 pJ/b @ 30 Mb/s (JSSC'19); Sub-µWrComm 415 nW @ 1-10 kb/s (JSSC'21); Wi-R ~100 pJ/b @ 4 Mb/s (white paper)")
	return t, nil
}

// TableSecurity regenerates the physical-security comparison (TAB-C).
func TableSecurity() (*Table, error) {
	a := security.Assess()
	eqs := channel.DefaultEQSBody()
	t := &Table{
		ID:     "TAB-C",
		Title:  "Physical security: personal bubble vs room-scale radiation",
		Header: []string{"quantity", "EQS-HBC (Wi-R)", "RF (BLE)"},
	}
	t.Rows = append(t.Rows,
		[]string{"intercept range (capable sniffer)", a.EQSRange.String(), a.RFRange.String()},
		[]string{"attack surface area ratio", "1x", fmt.Sprintf("%.0fx", a.BubbleAreaRatio())},
	)
	for _, d := range []units.Distance{5 * units.Centimeter, 15 * units.Centimeter, 1 * units.Meter, 5 * units.Meter} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("leakage vs on-body @ %v", d),
			fmt.Sprintf("%.1f dB", eqs.LeakageGainDB(21*units.Megahertz, d)-eqs.GainDB(21*units.Megahertz)),
			"0 dB (no containment)",
		})
	}
	t.Notes = append(t.Notes, "Das et al. Sci.Rep.'19 measured EQS-HBC interception collapsing within ~0.15 m")
	return t, nil
}

// TableOffload regenerates the split-computing comparison (TAB-D): for
// each workload, the optimal partition under BLE vs Wi-R and the leaf-side
// consequences.
func TableOffload() (*Table, error) {
	models, err := nn.Zoo(1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "TAB-D",
		Title: "DNN split computing: optimal cut and leaf energy per inference",
		Header: []string{"model", "link", "best cut", "leaf MACs", "tx bits",
			"leaf energy/inf", "latency", "vs all-local"},
	}
	for _, m := range models {
		local := int64(0)
		for _, tr := range []*radio.Transceiver{radioBLE(), radio.WiR(), radio.BodyWire()} {
			cuts, err := partition.Evaluate(partition.Config{
				Model: m, Leaf: partition.LeafMCU(), Hub: partition.HubSoC(),
				Link: partition.FromTransceiver(tr), BitsPerElement: 8,
			})
			if err != nil {
				return nil, err
			}
			best, err := partition.Best(cuts)
			if err != nil {
				return nil, err
			}
			allLocal := cuts[len(cuts)-1]
			local = allLocal.LeafMACs
			t.Rows = append(t.Rows, []string{
				m.Name, tr.Name,
				fmt.Sprintf("%d/%d", best.Index, m.NumLayers()),
				fmt.Sprintf("%d", best.LeafMACs),
				fmt.Sprintf("%d", best.TxBits),
				best.LeafEnergy.String(),
				best.Latency.String(),
				fmt.Sprintf("%.2fx cheaper", float64(allLocal.LeafEnergy)/float64(best.LeafEnergy)),
			})
		}
		_ = local
	}
	t.Notes = append(t.Notes,
		"cut 0 = leaf transmits raw input (no leaf CPU needed) — the human-inspired architecture",
		"with BLE the optimum stays local (the paper: 'no alternative but on-board computing')")
	return t, nil
}

// TableHarvest regenerates the perpetual-with-harvesting feasibility table
// (TAB-E): node classes against the §V 10–200 µW indoor envelope.
func TableHarvest() (*Table, error) {
	type nodeCase struct {
		name   string
		sensor *sensors.Sensor
		policy isa.Policy
	}
	cases := []nodeCase{
		{"temperature", sensors.TempSensor(), isa.StreamAll{}},
		{"ECG patch", sensors.ECGPatch(), isa.StreamAll{}},
		{"ECG patch + R-peak gating", sensors.ECGPatch(),
			isa.EventGated{Label: "R-peak", EventsPerSecond: 1.2,
				Window: 300 * units.Millisecond, Heartbeat: 100, Power: 15 * units.Microwatt}},
		{"IMU", sensors.IMU6Axis(), isa.StreamAll{}},
		{"EEG headband", sensors.EEGHeadband(), isa.StreamAll{}},
		{"voice mic (ADPCM)", sensors.MicMono(),
			isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt}},
	}
	wir := radio.WiR()
	batt := energy.Fig3Battery()
	t := &Table{
		ID:    "TAB-E",
		Title: "Perpetual operation vs indoor harvesting (10-200 µW, paper §V)",
		Header: []string{"node", "link rate", "avg power", "battery life",
			"indoor PV (typ 50 µW)", "worst-case PV (10 µW)"},
	}
	for _, c := range cases {
		rate := c.policy.OutputRate(c.sensor.DataRate())
		comm, err := wir.AveragePower(rate, 10)
		if err != nil {
			return nil, err
		}
		total := c.sensor.AFEPower + c.policy.ComputePower() + comm
		pv := energy.IndoorPV()
		t.Rows = append(t.Rows, []string{
			c.name, rate.String(), total.String(), batt.Lifetime(total).String(),
			sustainStr(pv.Sustains(total)), sustainStr(pv.WorstCaseSustains(total)),
		})
	}
	return t, nil
}

// sustainStr renders a feasibility cell.
func sustainStr(ok bool) string {
	if ok {
		return "energy-neutral"
	}
	return "needs battery"
}

// AblationTermination regenerates ABL-1: the same body channel terminated
// in high impedance (voltage mode) versus 50 Ω, across frequency — the
// quantitative version of "is RF the right technology?".
func AblationTermination() (*Table, error) {
	freqs := []units.Frequency{100 * units.Kilohertz, 1 * units.Megahertz,
		10 * units.Megahertz, 30 * units.Megahertz}
	terms := []units.Resistance{50 * units.Ohm, 1 * units.Kiloohm,
		100 * units.Kiloohm, 10 * units.Megaohm}
	t := &Table{
		ID:     "ABL-1",
		Title:  "EQS channel gain vs receiver termination (voltage mode vs RF-style 50 Ω)",
		Header: []string{"termination", "HP corner", "gain @100 kHz", "gain @1 MHz", "gain @10 MHz", "gain @30 MHz"},
	}
	for _, rl := range terms {
		m := channel.DefaultEQSBody()
		m.RLoad = rl
		row := []string{rl.String(), m.HighPassCorner().String()}
		for _, f := range freqs {
			row = append(row, fmt.Sprintf("%.1f dB", m.GainDB(f)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "high-impedance termination flattens the whole EQS band; 50 Ω throws it away")
	return t, nil
}

// AblationCompression regenerates ABL-2: what in-sensor MJPEG (video) and
// delta/Rice or event gating (ECG) do to node power and battery life,
// using the real codecs on synthetic signals.
func AblationCompression() (*Table, error) {
	batt := energy.Fig3Battery()
	wir := radio.WiR()
	t := &Table{
		ID:    "ABL-2",
		Title: "In-sensor data reduction vs node power (real codecs on synthetic signals)",
		Header: []string{"node / policy", "link rate", "measured ratio",
			"quality", "node power", "battery life"},
	}

	// Video: MJPEG at three qualities on the synthetic camera.
	cam := sensors.CameraQVGA()
	for _, q := range []int{30, 50, 80} {
		g := sensors.NewVideoSynth(320, 240, 42)
		codec, err := compress.NewFrameCodec(320, 240, q)
		if err != nil {
			return nil, err
		}
		var rawBits, encBits int
		var psnr float64
		const frames = 3
		for i := 0; i < frames; i++ {
			f := g.NextFrame()
			enc, err := codec.Encode(f)
			if err != nil {
				return nil, err
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				return nil, err
			}
			rawBits += len(f) * 8
			encBits += len(enc) * 8
			psnr += compress.PSNR(f, dec)
		}
		psnr /= frames
		ratio := float64(rawBits) / float64(encBits)
		rate := units.DataRate(float64(cam.DataRate()) / ratio)
		comm, err := wir.AveragePower(rate, 10)
		if err != nil {
			return nil, err
		}
		total := cam.AFEPower + 500*units.Microwatt + comm // codec ISA power
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("QVGA camera / MJPEG q%d", q), rate.String(),
			fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%.1f dB PSNR", psnr),
			total.String(), batt.Lifetime(total).String(),
		})
	}
	// Raw video exceeds the Wi-R goodput — the note Fig. 3 implies.
	t.Notes = append(t.Notes, fmt.Sprintf(
		"raw QVGA (%v) exceeds the 3.9 Mbps Wi-R goodput: compression is mandatory, not optional",
		cam.DataRate()))

	// ECG: raw stream vs lossless delta/Rice vs R-peak event gating.
	ecg := sensors.ECGPatch()
	g := sensors.NewECGSynth(250*units.Hertz, 72, 7)
	rawSamples := sensors.QuantizeBits(g.Samples(250*60), 2.0, 12)
	deltaEnc := compress.EncodeDeltaVarint(rawSamples)
	riceEnc := compress.RiceEncodeAuto(compress.DeltaInt32(rawSamples))
	type ecgCase struct {
		name   string
		policy isa.Policy
		note   string
	}
	cases := []ecgCase{
		{"ECG / raw stream", isa.StreamAll{}, "lossless"},
		{"ECG / delta+varint", isa.Compress{Label: "delta",
			MeasuredRatio: compress.Ratio(len(rawSamples)*2, len(deltaEnc)),
			Power:         5 * units.Microwatt}, "lossless"},
		{"ECG / delta+Rice", isa.Compress{Label: "rice",
			MeasuredRatio: compress.Ratio(len(rawSamples)*2, len(riceEnc)),
			Power:         8 * units.Microwatt}, "lossless"},
		{"ECG / R-peak gating", isa.EventGated{Label: "R-peak", EventsPerSecond: 1.2,
			Window: 300 * units.Millisecond, Heartbeat: 100, Power: 15 * units.Microwatt},
			"beat windows only"},
	}
	for _, c := range cases {
		rate := c.policy.OutputRate(ecg.DataRate())
		comm, err := wir.AveragePower(rate, 10)
		if err != nil {
			return nil, err
		}
		total := ecg.AFEPower + c.policy.ComputePower() + comm
		t.Rows = append(t.Rows, []string{
			c.name, rate.String(),
			fmt.Sprintf("%.1fx", isa.ReductionFactor(c.policy, ecg.DataRate())),
			c.note, total.String(), batt.Lifetime(total).String(),
		})
	}
	return t, nil
}

// All returns every generator keyed by its CLI name, in presentation
// order.
func All() []struct {
	Name string
	Gen  func() (*Table, error)
} {
	return []struct {
		Name string
		Gen  func() (*Table, error)
	}{
		{"fig1", Fig1},
		{"fig2", Fig2},
		{"fig3", func() (*Table, error) { _, t, err := Fig3(); return t, err }},
		{"wir-vs-ble", TableWiRvsBLE},
		{"transceivers", TableTransceivers},
		{"security", TableSecurity},
		{"offload", TableOffload},
		{"harvest", TableHarvest},
		{"latency", TableLatency},
		{"ablation-termination", AblationTermination},
		{"ablation-compression", AblationCompression},
		{"ablation-mac", AblationMAC},
	}
}
