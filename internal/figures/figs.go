package figures

import (
	"fmt"

	"wiban/internal/energy"
	"wiban/internal/iob"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/sensors"
	"wiban/internal/survey"
	"wiban/internal/units"
)

// fig1Designs builds the node pairs Fig. 1 contrasts, one per workload
// class.
func fig1Designs() ([]*iob.NodeDesign, error) {
	ecgModel, err := nn.ECGNet(1)
	if err != nil {
		return nil, err
	}
	kws, err := nn.KWSNet(2)
	if err != nil {
		return nil, err
	}
	vision, err := nn.VisionNet(3)
	if err != nil {
		return nil, err
	}
	ecgW := &iob.Workload{Model: ecgModel, PerSecond: 1.2}
	kwsW := &iob.Workload{Model: kws, PerSecond: 2}
	visW := &iob.Workload{Model: vision, PerSecond: 1}

	adpcm := isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt}
	mjpeg := isa.Compress{Label: "MJPEG q50", MeasuredRatio: 8, Power: 500 * units.Microwatt}

	return []*iob.NodeDesign{
		iob.ConventionalNode("ECG node", sensors.ECGPatch(), ecgW),
		iob.HumanInspiredNode("ECG node", sensors.ECGPatch(), nil, ecgW),
		iob.ConventionalNode("IMU node", sensors.IMU6Axis(), nil),
		iob.HumanInspiredNode("IMU node", sensors.IMU6Axis(), nil, nil),
		iob.ConventionalNode("audio KWS node", sensors.MicMono(), kwsW),
		iob.HumanInspiredNode("audio KWS node", sensors.MicMono(), adpcm, kwsW),
		iob.ConventionalNode("video node", sensors.CameraQVGA(), visW),
		iob.HumanInspiredNode("video node", sensors.CameraQVGA(), mjpeg, visW),
	}, nil
}

// Fig1 regenerates the paper's Fig. 1 power comparison: per-component
// power of conventional vs human-inspired nodes, with projected battery
// life on the Fig. 3 cell.
func Fig1() (*Table, error) {
	designs, err := fig1Designs()
	if err != nil {
		return nil, err
	}
	batt := energy.Fig3Battery()
	t := &Table{
		ID:    "FIG1",
		Title: "IoB node power: conventional (sensor+CPU+BLE) vs human-inspired (sensor+ISA+Wi-R)",
		Header: []string{"node", "architecture", "sense", "compute", "comm(avg)",
			"total(avg)", "radio(active)", "battery life"},
	}
	for _, d := range designs {
		b, err := d.AverageBreakdown()
		if err != nil {
			return nil, err
		}
		act := d.ActiveBreakdown()
		life := batt.Lifetime(b.Total())
		t.Rows = append(t.Rows, []string{
			d.Name, d.Arch.String(),
			b.Sense.String(), b.Compute.String(), b.Comm.String(),
			b.Total().String(), act.Comm.String(), life.String(),
		})
	}
	t.Notes = append(t.Notes,
		"paper classes — conventional: sensors ~100s µW, CPU ~mW, radio ~10s mW;",
		"human-inspired: sensors 10-50 µW, ISA ~100 µW, Wi-R ~100 µW; battery 1000 mAh @ 3 V",
	)
	return t, nil
}

// Fig2 regenerates the wearable battery-life survey: our energy model's
// projection against the market-reported band for each device class.
func Fig2() (*Table, error) {
	t := &Table{
		ID:    "FIG2",
		Title: "Battery life of commercial wearables (pre-2024 vs 2024 AI boom)",
		Header: []string{"device", "era", "battery", "platform power",
			"projected life", "claimed band", "consistent"},
	}
	for _, d := range survey.Fig2Devices() {
		t.Rows = append(t.Rows, []string{
			d.Name, d.Era.String(),
			fmt.Sprintf("%.0f mAh", d.BatteryMAh),
			d.PlatformPower.String(),
			d.ProjectedLife().String(),
			d.Claimed.String(),
			fmt.Sprintf("%v", d.Consistent()),
		})
	}
	return t, nil
}

// Fig3Result carries the projection sweep plus annotations.
type Fig3Result struct {
	Sweep             []iob.Projection
	Markers           []iob.Projection
	MarkerNames       []string
	PerpetualBoundary units.DataRate
	// BLELife holds the same-rate BLE comparison for each sweep point
	// (negative when BLE cannot carry the rate).
	BLELife []units.Duration
}

// Fig3 regenerates the battery-life-vs-data-rate projection with the
// paper's device markers and the perpetual region boundary, plus a BLE
// comparison column.
func Fig3() (*Fig3Result, *Table, error) {
	p := iob.NewFig3Projector()
	sweep, err := p.Sweep(1, 3.9*units.Mbps, 3)
	if err != nil {
		return nil, nil, err
	}
	ble := iob.NewFig3Projector()
	ble.Radio = radioBLE()

	res := &Fig3Result{Sweep: sweep, PerpetualBoundary: p.PerpetualBoundary()}
	t := &Table{
		ID:    "FIG3",
		Title: "Projected battery life vs data rate (1000 mAh, Wi-R @ 100 pJ/bit, survey sensing power)",
		Header: []string{"data rate", "P_sense", "P_comm", "P_total",
			"life (Wi-R)", "life (BLE)", "perpetual"},
	}
	for _, pr := range sweep {
		bleLife := units.Duration(-1)
		if bp, err := ble.At(pr.Rate); err == nil {
			bleLife = bp.Life
		}
		res.BLELife = append(res.BLELife, bleLife)
		bleStr := "n/a (rate > BLE goodput)"
		if bleLife >= 0 {
			bleStr = bleLife.String()
		}
		t.Rows = append(t.Rows, []string{
			pr.Rate.String(), pr.Sense.String(), pr.Comm.String(), pr.Total.String(),
			pr.Life.String(), bleStr, fmt.Sprintf("%v", pr.Perpetual),
		})
	}
	for _, m := range iob.Fig3Markers() {
		pr, err := p.Mark(m)
		if err != nil {
			return nil, nil, err
		}
		res.Markers = append(res.Markers, pr)
		res.MarkerNames = append(res.MarkerNames, m.Name)
		t.Notes = append(t.Notes, fmt.Sprintf("marker %-22s @ %v: life %v (perpetual=%v)",
			m.Name, m.Rate, pr.Life, pr.Perpetual))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("perpetual region (>1 yr) extends to %v", res.PerpetualBoundary))
	return res, t, nil
}
