package figures

import (
	"fmt"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/mac"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// TableLatency regenerates TAB-F: end-to-end AI latency of the two
// architectures — local inference on the leaf MCU versus offload to the
// hub NPU over each link — analytically (partition model) and
// cross-checked by the discrete-event simulator for the Wi-R keyword-
// spotting pipeline.
func TableLatency() (*Table, error) {
	models, err := nn.Zoo(1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "TAB-F",
		Title: "End-to-end AI latency: local leaf inference vs hub offload",
		Header: []string{"model", "configuration", "compute latency", "transfer",
			"total", "leaf energy/inf"},
	}
	for _, m := range models {
		for _, tr := range []*radio.Transceiver{radio.WiR(), radioBLE()} {
			cuts, err := partition.Evaluate(partition.Config{
				Model: m, Leaf: partition.LeafMCU(), Hub: partition.HubSoC(),
				Link: partition.FromTransceiver(tr), BitsPerElement: 8,
			})
			if err != nil {
				return nil, err
			}
			offload := cuts[0]
			local := cuts[len(cuts)-1]
			t.Rows = append(t.Rows, []string{
				m.Name, "offload via " + tr.Name,
				units.Duration(float64(offload.HubMACs) / partition.HubSoC().MACRate).String(),
				tr.Goodput.TimeFor(float64(offload.TxBits)).String(),
				offload.Latency.String(), offload.LeafEnergy.String(),
			})
			if tr.Name == radio.WiR().Name {
				t.Rows = append(t.Rows, []string{
					m.Name, "local on leaf MCU",
					units.Duration(float64(local.LeafMACs) / partition.LeafMCU().MACRate).String(),
					tr.Goodput.TimeFor(float64(local.TxBits)).String(),
					local.Latency.String(), local.LeafEnergy.String(),
				})
			}
		}
	}

	// Simulator cross-check: the full KWS pipeline (packetization, TDMA
	// slot wait, ARQ, hub queue) for the Wi-R audio node.
	kws, err := nn.KWSNet(1)
	if err != nil {
		return nil, err
	}
	rep, err := bannet.Run(bannet.Config{Seed: 5, Nodes: []bannet.NodeConfig{{
		ID: 1, Name: "kws-mic", Sensor: sensors.MicMono(),
		Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
		Radio:  radio.WiR(), Battery: energy.Fig3Battery(),
		PacketBits: 1960, PER: 0.01, MaxRetries: 5,
		Inference: &bannet.InferenceSpec{Name: "KWS", MACs: kws.TotalMACs(), InputBits: 49 * 10 * 8},
	}}}, 5*units.Minute)
	if err != nil {
		return nil, err
	}
	n := rep.NodeByName("kws-mic")
	t.Notes = append(t.Notes, fmt.Sprintf(
		"DES cross-check (KWS over Wi-R, %v superframe TDMA): %d inferences, e2e p50 %v / p99 %v, hub util %.2f%%",
		mac.DefaultTDMA().Superframe, n.Inferences, n.InferenceP50, n.InferenceP99,
		rep.HubUtilization*100))
	t.Notes = append(t.Notes,
		"analytic rows exclude input-assembly and MAC slot wait; the DES row includes both")
	return t, nil
}

// AblationMAC regenerates ABL-3: the arbitration ablation on the shared
// body medium — TDMA (the design point) against polling and slotted CSMA
// for a growing node count.
func AblationMAC() (*Table, error) {
	t := &Table{
		ID:    "ABL-3",
		Title: "Medium arbitration on the shared Wi-R bus: TDMA vs polling vs slotted CSMA",
		Header: []string{"nodes", "TDMA utilization", "TDMA sync cost/node",
			"polling efficiency", "CSMA throughput (opt p)", "CSMA energy penalty"},
	}
	csma := mac.SlottedCSMA{}
	poll := &mac.Polling{PollBits: 64, Turnaround: 50 * units.Microsecond, LinkRate: 4 * units.Mbps}
	for _, n := range []int{2, 4, 8, 16} {
		var demands []mac.Demand
		for i := 0; i < n; i++ {
			demands = append(demands, mac.Demand{NodeID: i, Rate: 64 * units.Kbps, PacketBits: 8192})
		}
		sched, err := mac.DefaultTDMA().Build(demands)
		if err != nil {
			return nil, err
		}
		wir := radio.WiR()
		syncPower := units.Power(sched.SyncOverheadRate() *
			(float64(wir.WakeEnergy) + float64(wir.ActiveRX.Times(sched.BeaconTime))))
		p := csma.OptimalP(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f%%", sched.Utilization()*100),
			syncPower.String(),
			fmt.Sprintf("%.1f%%", poll.Efficiency(8192)*100),
			fmt.Sprintf("%.1f%%", csma.SuccessProbability(n, p)*100),
			fmt.Sprintf("%.2fx tx", csma.EnergyPenalty(n, p)),
		})
	}
	t.Notes = append(t.Notes,
		"TDMA pays a fixed µW-class beacon cost and keeps 100% of transmissions useful;",
		"contention converges to 1/e throughput and burns >1 transmission per delivery — fatal at 100 pJ/bit budgets")
	return t, nil
}
