// Package figures regenerates every figure and quantitative table of the
// paper as structured rows with text/CSV rendering. Each generator is
// deterministic and is wrapped one-to-one by a benchmark in the repository
// root and a subcommand of cmd/iobfig (see DESIGN.md's per-experiment
// index).
package figures

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id from DESIGN.md (FIG1, TAB-A, ...)
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render returns an aligned plain-text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV (quotes around cells with
// commas).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
