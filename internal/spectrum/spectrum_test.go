package spectrum

import (
	"math"
	"testing"
)

// TestCellOfDeterministicAndInRange: the assignment is a pure function
// and always lands inside [0, cells).
func TestCellOfDeterministicAndInRange(t *testing.T) {
	for _, cells := range []int{1, 2, 7, 64} {
		for seed := int64(-500); seed < 500; seed += 13 {
			a := CellOf(seed, cells)
			if a != CellOf(seed, cells) {
				t.Fatalf("cells=%d seed=%d: assignment not deterministic", cells, seed)
			}
			if a < 0 || a >= cells {
				t.Fatalf("cells=%d seed=%d: cell %d out of range", cells, seed, a)
			}
		}
	}
	if CellOf(12345, 1) != 0 || CellOf(12345, 0) != 0 {
		t.Fatal("degenerate cell counts must map to cell 0")
	}
}

// TestCellOfSpreads: the hash must not collapse consecutive seeds into a
// few cells — every cell of a small table gets populated by a modest
// seed range.
func TestCellOfSpreads(t *testing.T) {
	const cells = 16
	seen := make([]int, cells)
	for seed := int64(0); seed < 512; seed++ {
		seen[CellOf(seed, cells)]++
	}
	for c, n := range seen {
		if n == 0 {
			t.Fatalf("cell %d never assigned over 512 consecutive seeds", c)
		}
	}
}

// TestLoadTableForeignExcludesSelf: a lone wearer sees zero foreign
// load; a cohabited cell sees exactly the others' load.
func TestLoadTableForeignExcludesSelf(t *testing.T) {
	tab, err := NewLoadTable(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, add := range []struct {
		cell int
		ppm  int64
	}{{0, 1000}, {1, 2000}, {1, 3000}, {1, 500}} {
		if err := tab.Add(add.cell, add.ppm); err != nil {
			t.Fatal(err)
		}
	}
	if got := tab.ForeignPPM(0, 1000); got != 0 {
		t.Fatalf("lone wearer sees foreign load %d", got)
	}
	if got := tab.ForeignPPM(1, 2000); got != 3500 {
		t.Fatalf("cohabited cell foreign load %d, want 3500", got)
	}
	if got := tab.ForeignPPM(2, 0); got != 0 {
		t.Fatalf("empty cell foreign load %d", got)
	}
	if got := tab.ForeignPPM(3, 100); got != 0 {
		t.Fatal("foreign load must clamp at zero when own share exceeds the total")
	}
	if err := tab.Add(4, 1); err == nil {
		t.Fatal("Add accepted an out-of-range cell")
	}
	if _, err := NewLoadTable(0); err == nil {
		t.Fatal("NewLoadTable accepted zero cells")
	}
}

// TestLoadTableMergeCommutes: merging per-worker partials in any order
// yields identical totals (the phase-1 order-independence contract).
func TestLoadTableMergeCommutes(t *testing.T) {
	mk := func(vals ...int64) *LoadTable {
		tab, _ := NewLoadTable(3)
		for c, v := range vals {
			tab.Add(c%3, v)
		}
		return tab
	}
	a := mk(5, 7, 11, 13)
	b := mk(2, 3)
	ab, _ := NewLoadTable(3)
	ab.Merge(a)
	ab.Merge(b)
	ba, _ := NewLoadTable(3)
	ba.Merge(b)
	ba.Merge(a)
	for c := 0; c < 3; c++ {
		if ab.TotalPPM(c) != ba.TotalPPM(c) {
			t.Fatalf("cell %d: merge order changed the total (%d vs %d)",
				c, ab.TotalPPM(c), ba.TotalPPM(c))
		}
	}
	if err := ab.Merge(mustTable(t, 2)); err == nil {
		t.Fatal("Merge accepted a mismatched cell count")
	}
}

func mustTable(t *testing.T, cells int) *LoadTable {
	t.Helper()
	tab, err := NewLoadTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestModelCollisionCurve: zero at zero load, strictly increasing, and
// capped.
func TestModelCollisionCurve(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	if p := m.CollisionProb(0); p != 0 {
		t.Fatalf("collision prob %g at zero load", p)
	}
	prev := 0.0
	for g := 0.05; g < 1.2; g += 0.05 {
		p := m.CollisionProb(g)
		if p <= prev && p < m.MaxCollision {
			t.Fatalf("collision prob not increasing at G=%g (%g after %g)", g, p, prev)
		}
		prev = p
	}
	if p := m.CollisionProb(1e9); p != m.MaxCollision {
		t.Fatalf("saturated collision prob %g, want cap %g", p, m.MaxCollision)
	}
	// The analytic point: β=2, G=0.5 → 1−e^(−1).
	if p, want := m.CollisionProb(0.5), 1-math.Exp(-1); math.Abs(p-want) > 1e-12 {
		t.Fatalf("CollisionProb(0.5) = %g, want %g", p, want)
	}
}

// TestModelValidate covers parameter rejection.
func TestModelValidate(t *testing.T) {
	for _, m := range []Model{
		{Beta: 0, MaxCollision: 0.9},
		{Beta: -1, MaxCollision: 0.9},
		{Beta: 2, MaxCollision: 1},
		{Beta: 2, MaxCollision: -0.1},
		{Beta: math.NaN(), MaxCollision: 0.9},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
}

// TestPPMConversions pins the integer airtime scale.
func TestPPMConversions(t *testing.T) {
	if ToPPM(0.25) != 250_000 {
		t.Fatalf("ToPPM(0.25) = %d", ToPPM(0.25))
	}
	if ToPPM(-1) != 0 {
		t.Fatal("negative duty must clamp to 0")
	}
	if Erlangs(500_000) != 0.5 {
		t.Fatalf("Erlangs(500000) = %g", Erlangs(500_000))
	}
}
