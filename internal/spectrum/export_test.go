package spectrum

// Tests for the shard protocol's wire forms: Export/ImportTable and the
// Result export/NewResult round-trip must be exact — every quantity is
// an integer, so a table or solution shipped between processes loses
// nothing.

import (
	"reflect"
	"testing"
)

// TestLoadTableExportRoundTrip: ImportTable(t.Cells(), t.Export())
// reproduces the table exactly, and importing a partition's partial
// exports merges to the same totals as the one-shot reduction.
func TestLoadTableExportRoundTrip(t *testing.T) {
	const cells = 8
	full, err := NewLoadTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	partA, _ := NewLoadTable(cells)
	partB, _ := NewLoadTable(cells)
	for w := 0; w < 100; w++ {
		cell := (w * 7) % cells
		ppm := int64(1000 + 13*w)
		if err := full.Add(cell, ppm); err != nil {
			t.Fatal(err)
		}
		half := partA
		if w >= 50 {
			half = partB
		}
		if err := half.Add(cell, ppm); err != nil {
			t.Fatal(err)
		}
	}

	back, err := ImportTable(cells, full.Export())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Export(), full.Export()) {
		t.Error("Export/ImportTable round trip changed the table")
	}
	for c := 0; c < cells; c++ {
		if back.TotalPPM(c) != full.TotalPPM(c) {
			t.Errorf("cell %d: round-tripped total %d, want %d", c, back.TotalPPM(c), full.TotalPPM(c))
		}
	}

	merged, err := ImportTable(cells, partA.Export())
	if err != nil {
		t.Fatal(err)
	}
	fromB, err := ImportTable(cells, partB.Export())
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(fromB); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Export(), full.Export()) {
		t.Error("partition exports merged to a different table than the one-shot reduction")
	}
}

// TestImportTableRejects: out-of-range cells fail rather than silently
// truncating a shipped table.
func TestImportTableRejects(t *testing.T) {
	if _, err := ImportTable(4, []CellLoad{{Cell: 4, PPM: 1}}); err == nil {
		t.Error("cell beyond the table accepted")
	}
	if _, err := ImportTable(4, []CellLoad{{Cell: -1, PPM: 1}}); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := ImportTable(0, nil); err == nil {
		t.Error("zero-cell table accepted")
	}
}

// TestResultExportRoundTrip: a windowed NewResult rebuilt from a full
// solve's exports observes bit-identical OwnPPM / ForeignPPM / Iters
// for every wearer in its window — the guarantee that lets a shard
// backend replay phase 2 against the coordinator's solution.
func TestResultExportRoundTrip(t *testing.T) {
	const cells = 5
	members := make([]Member, 60)
	for w := range members {
		members[w] = Member{
			Cell: (w * 3) % cells,
			Nodes: []NodeLoad{
				{BasePPM: int64(20_000 + 500*w), Retries: 2},
				{BasePPM: int64(5_000 * (w % 3)), Retries: 1},
			},
		}
	}
	eq := Equilibrium{}
	full, err := eq.Solve(cells, members)
	if err != nil {
		t.Fatal(err)
	}

	const lo, hi = 23, 47
	win, err := NewResult(cells, full.Table().Export(), full.ExportIters(), lo, full.ExportOwn(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	for w := lo; w < hi; w++ {
		if win.OwnPPM(w) != full.OwnPPM(w) {
			t.Errorf("wearer %d: windowed OwnPPM %d, want %d", w, win.OwnPPM(w), full.OwnPPM(w))
		}
		cell := members[w].Cell
		if win.ForeignPPM(w, cell) != full.ForeignPPM(w, cell) {
			t.Errorf("wearer %d: windowed ForeignPPM %d, want %d", w, win.ForeignPPM(w, cell), full.ForeignPPM(w, cell))
		}
	}
	for c := 0; c < cells; c++ {
		if win.Iters(c) != full.Iters(c) {
			t.Errorf("cell %d: windowed Iters %d, want %d", c, win.Iters(c), full.Iters(c))
		}
	}

	if _, err := NewResult(cells, full.Table().Export(), full.ExportIters(), -1, nil); err == nil {
		t.Error("negative result base accepted")
	}
	if _, err := NewResult(cells, full.Table().Export(), []CellIters{{Cell: cells, Iters: 1}}, 0, nil); err == nil {
		t.Error("iteration count beyond the table accepted")
	}
}

// TestModelTagStable: the tag is persisted in telemetry metadata and
// compared on resume, so its rendering must never drift.
func TestModelTagStable(t *testing.T) {
	m := Model{Beta: 2.5, MaxCollision: 0.95}
	if got, want := m.Tag(), "csma:beta=2.5,cap=0.95"; got != want {
		t.Errorf("Tag() = %q, want %q", got, want)
	}
}

// TestLoadTableCells: the accessor shards use to size their shipments.
func TestLoadTableCells(t *testing.T) {
	tbl, err := NewLoadTable(7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cells() != 7 {
		t.Errorf("Cells() = %d, want 7", tbl.Cells())
	}
}
