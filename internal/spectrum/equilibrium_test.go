package spectrum

import (
	"math"
	"math/rand"
	"testing"
)

// TestRetryMultiplier pins the truncated geometric series against direct
// summation and its boundary behavior.
func TestRetryMultiplier(t *testing.T) {
	if got := RetryMultiplier(0, 5); got != 1 {
		t.Errorf("p=0: multiplier %v, want 1", got)
	}
	if got := RetryMultiplier(0.7, 0); got != 1 {
		t.Errorf("retries=0: multiplier %v, want 1", got)
	}
	if got := RetryMultiplier(1, 3); got != 4 {
		t.Errorf("p=1 retries=3: multiplier %v, want 4 attempts", got)
	}
	for _, p := range []float64{0.1, 0.5, 0.95} {
		for retries := 1; retries <= 7; retries++ {
			want := 0.0
			for k := 0; k <= retries; k++ {
				want += math.Pow(p, float64(k))
			}
			if got := RetryMultiplier(p, retries); math.Abs(got-want) > 1e-12 {
				t.Errorf("p=%g retries=%d: multiplier %v, want %v", p, retries, got, want)
			}
		}
	}
	// Monotone in both arguments.
	if RetryMultiplier(0.6, 3) <= RetryMultiplier(0.3, 3) {
		t.Error("multiplier not increasing in p")
	}
	if RetryMultiplier(0.6, 5) <= RetryMultiplier(0.6, 3) {
		t.Error("multiplier not increasing in retries")
	}
}

// TestInflatePPM pins the integer inflation: never below the base, never
// above 100% duty, and exactly the base at zero collisions.
func TestInflatePPM(t *testing.T) {
	for _, c := range []struct {
		base    int64
		p       float64
		retries int
		want    int64
	}{
		{0, 0.9, 7, 0},
		{100_000, 0, 7, 100_000},
		{100_000, 0.5, 1, 150_000}, // 1 + 0.5
		{400_000, 0.95, 7, PPM},    // saturates at 100% duty
		{1, 0.5, 1, 2},             // rounds half up
		{PPM, 0.9, 7, PPM},         // full duty stays capped
	} {
		if got := InflatePPM(c.base, c.p, c.retries); got != c.want {
			t.Errorf("InflatePPM(%d, %g, %d) = %d, want %d", c.base, c.p, c.retries, got, c.want)
		}
	}
	// Inflation never shrinks a load.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		base := int64(rng.Intn(PPM + 1))
		p := rng.Float64() * 0.95
		retries := rng.Intn(8)
		if got := InflatePPM(base, p, retries); got < base {
			t.Fatalf("InflatePPM(%d, %g, %d) = %d < base", base, p, retries, got)
		}
	}
}

// randomMembers builds one cell's worth of randomized contenders.
func randomMembers(rng *rand.Rand, cell, maxMembers int) []Member {
	n := 1 + rng.Intn(maxMembers)
	members := make([]Member, n)
	for i := range members {
		nodes := make([]NodeLoad, 1+rng.Intn(4))
		for j := range nodes {
			nodes[j] = NodeLoad{BasePPM: int64(rng.Intn(PPM + 1)), Retries: rng.Intn(8)}
		}
		members[i] = Member{Cell: cell, Nodes: nodes}
	}
	return members
}

// TestEquilibriumConvergesOnRandomCells is the fixed-point property test:
// for the default β > 0 model the damped iteration must converge within
// the default iteration cap across a randomized sweep of cell loads —
// i.e. the reported round count is strictly below DefaultMaxIters, so
// the cap never truncated — and the equilibrium must dominate the
// first-order loads (retransmissions only add airtime).
func TestEquilibriumConvergesOnRandomCells(t *testing.T) {
	e := &Equilibrium{}
	worst := 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		members := randomMembers(rng, 0, 30)
		res, err := e.Solve(1, members)
		if err != nil {
			t.Fatal(err)
		}
		if it := res.Iters(0); it >= DefaultMaxIters {
			t.Fatalf("seed %d: cell hit the %d-round cap without converging", seed, DefaultMaxIters)
		} else if it > worst {
			worst = it
		}
		var firstTotal int64
		for i, m := range members {
			var base int64
			for _, n := range m.Nodes {
				base += n.BasePPM
			}
			firstTotal += base
			if own := res.OwnPPM(i); own < base {
				t.Fatalf("seed %d member %d: equilibrium own load %d < first-order %d", seed, i, own, base)
			}
			// Equilibrium foreign load dominates first-order foreign load.
			if int64(len(m.Nodes))*PPM < base {
				t.Fatalf("impossible: base above aggregate duty cap")
			}
		}
		if eqTotal := res.Table().TotalPPM(0); eqTotal < firstTotal {
			t.Fatalf("seed %d: equilibrium cell total %d < first-order total %d", seed, eqTotal, firstTotal)
		}
		// Per-member foreign monotonicity: Σ_{j≠i} eq_j ≥ Σ_{j≠i} base_j.
		for i, m := range members {
			var base int64
			for _, n := range m.Nodes {
				base += n.BasePPM
			}
			firstForeign := firstTotal - base
			if eqForeign := res.ForeignPPM(i, 0); eqForeign < firstForeign {
				t.Fatalf("seed %d member %d: equilibrium foreign %d < first-order foreign %d",
					seed, i, eqForeign, firstForeign)
			}
		}
	}
	t.Logf("worst convergence over the sweep: %d rounds (cap %d)", worst, DefaultMaxIters)
	if worst == 0 {
		t.Fatal("sweep never exercised a non-trivial fixed point")
	}
}

// TestEquilibriumLoneWearerExact pins the density-1 boundary: a member
// alone in its cell sees zero foreign load, so its equilibrium is its
// first-order load exactly and the fixed point takes zero rounds.
func TestEquilibriumLoneWearerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const cells = 64
	members := make([]Member, cells)
	var bases [cells]int64
	for c := 0; c < cells; c++ {
		m := randomMembers(rng, c, 1)[0]
		members[c] = m
		for _, n := range m.Nodes {
			bases[c] += n.BasePPM
		}
	}
	res, err := (&Equilibrium{}).Solve(cells, members)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cells; c++ {
		if got := res.OwnPPM(c); got != bases[c] {
			t.Errorf("cell %d: lone wearer equilibrium %d != first-order %d", c, got, bases[c])
		}
		if got := res.ForeignPPM(c, c); got != 0 {
			t.Errorf("cell %d: lone wearer sees foreign load %d", c, got)
		}
		if got := res.Iters(c); got != 0 {
			t.Errorf("cell %d: lone wearer took %d fixed-point rounds", c, got)
		}
	}
}

// TestEquilibriumDeterministic: two solves of identical inputs are
// bit-identical — the engine's worker-invariance rests on this.
func TestEquilibriumDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var members []Member
	for c := 0; c < 8; c++ {
		members = append(members, randomMembers(rng, c, 12)...)
	}
	e := &Equilibrium{MaxIters: 500, TolPPM: 1}
	a, err := e.Solve(8, members)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Solve(8, members)
	if err != nil {
		t.Fatal(err)
	}
	for i := range members {
		if a.OwnPPM(i) != b.OwnPPM(i) {
			t.Fatalf("member %d: %d vs %d across identical solves", i, a.OwnPPM(i), b.OwnPPM(i))
		}
	}
	for c := 0; c < 8; c++ {
		if a.Iters(c) != b.Iters(c) || a.Table().TotalPPM(c) != b.Table().TotalPPM(c) {
			t.Fatalf("cell %d diverged across identical solves", c)
		}
	}
}

// TestEquilibriumTighterToleranceDominates: shrinking the tolerance can
// only move loads up (the iterate is monotone), and a looser tolerance
// stops earlier.
func TestEquilibriumTighterToleranceDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	members := randomMembers(rng, 0, 10)
	loose, err := (&Equilibrium{TolPPM: 10_000}).Solve(1, members)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := (&Equilibrium{TolPPM: 1}).Solve(1, members)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Iters(0) > tight.Iters(0) {
		t.Errorf("loose tolerance took %d rounds, tight %d", loose.Iters(0), tight.Iters(0))
	}
	for i := range members {
		if tight.OwnPPM(i) < loose.OwnPPM(i) {
			t.Errorf("member %d: tight-tolerance load %d below loose %d", i, tight.OwnPPM(i), loose.OwnPPM(i))
		}
	}
}

// TestEquilibriumMaxItersCaps: a one-round cap must stop the iteration
// of a cell that genuinely needs more rounds and report exactly the cap.
func TestEquilibriumMaxItersCaps(t *testing.T) {
	members := []Member{
		{Cell: 0, Nodes: []NodeLoad{{BasePPM: 400_000, Retries: 7}}},
		{Cell: 0, Nodes: []NodeLoad{{BasePPM: 400_000, Retries: 7}}},
	}
	full, err := (&Equilibrium{}).Solve(1, members)
	if err != nil {
		t.Fatal(err)
	}
	if full.Iters(0) < 2 {
		t.Fatalf("reference cell converged in %d rounds; pick heavier loads", full.Iters(0))
	}
	res, err := (&Equilibrium{MaxIters: 1}).Solve(1, members)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Iters(0); got != 1 {
		t.Fatalf("capped solve reports %d rounds, want 1", got)
	}
	// The capped solve stopped early, so its loads sit at or below the
	// converged ones.
	for i := range members {
		if res.OwnPPM(i) > full.OwnPPM(i) {
			t.Errorf("member %d: capped load %d above converged %d", i, res.OwnPPM(i), full.OwnPPM(i))
		}
	}
}

// TestEquilibriumValidation covers solver- and member-level input guards.
func TestEquilibriumValidation(t *testing.T) {
	ok := []Member{{Cell: 0, Nodes: []NodeLoad{{BasePPM: 1000, Retries: 3}}}}
	if _, err := (&Equilibrium{}).Solve(0, ok); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := (&Equilibrium{MaxIters: -1}).Solve(1, ok); err == nil {
		t.Error("negative iteration cap accepted")
	}
	if _, err := (&Equilibrium{TolPPM: -1}).Solve(1, ok); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := (&Equilibrium{Model: &Model{Beta: -1, MaxCollision: 0.9}}).Solve(1, ok); err == nil {
		t.Error("invalid model accepted")
	}
	for name, bad := range map[string][]Member{
		"cell out of range": {{Cell: 5, Nodes: []NodeLoad{{BasePPM: 1}}}},
		"negative cell":     {{Cell: -1}},
		"negative load":     {{Cell: 0, Nodes: []NodeLoad{{BasePPM: -1}}}},
		"load above duty":   {{Cell: 0, Nodes: []NodeLoad{{BasePPM: PPM + 1}}}},
		"negative retries":  {{Cell: 0, Nodes: []NodeLoad{{BasePPM: 1, Retries: -1}}}},
	} {
		if _, err := (&Equilibrium{}).Solve(4, bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestEquilibriumEmptyMembers: a body-channel-only population has no
// radiative load anywhere — every equilibrium is zero, instantly.
func TestEquilibriumEmptyMembers(t *testing.T) {
	members := []Member{{Cell: 0}, {Cell: 0}, {Cell: 1}}
	res, err := (&Equilibrium{}).Solve(2, members)
	if err != nil {
		t.Fatal(err)
	}
	for i := range members {
		if res.OwnPPM(i) != 0 {
			t.Errorf("member %d: empty member carries load %d", i, res.OwnPPM(i))
		}
	}
	if res.Iters(0) != 0 || res.Iters(1) != 0 {
		t.Error("zero-load cells took fixed-point rounds")
	}
}
