package spectrum

import (
	"fmt"
	"math"
	"sort"
)

// This file closes the collision→retry→offered-load feedback loop. The
// first-order model (LoadTable + Model) maps *offered* input traffic to a
// collision probability, but collisions trigger retransmissions, which
// inflate the airtime actually on the channel, which inflates collisions
// again. Equilibrium solves that loop per cell with a damped fixed-point
// iteration: collision probability → expected retransmission multiplier
// (geometric in each node's retry budget) → retry-inflated airtime in
// exact integer PPM → new collision probability, repeated until the loads
// move less than a PPM tolerance or an iteration cap is hit.
//
// Determinism contract: Solve is a pure function of its inputs. Cells are
// solved independently, in ascending cell order, and members update in
// ascending member order from a per-round snapshot (Jacobi, not
// Gauss-Seidel), so no schedule or map-iteration order can influence the
// result. Loads live in integer PPM throughout; the only float math is
// the collision curve and the retry multiplier, both fixed functions of
// integer-PPM inputs, so repeated runs are bit-identical.
//
// Convergence: every per-node load starts at its first-order value and
// the update target is monotone in the other members' loads with a
// multiplier ≥ 1, so the iterate sequence is non-decreasing and bounded
// by the per-node airtime cap (a node cannot transmit more than 100%
// duty) — it converges to the least fixed point of the capped map. The
// half-step damping keeps each round's movement at most half the
// remaining residual, and the residual shrinks geometrically once the
// collision curve saturates.

const (
	// DefaultMaxIters caps the damped fixed-point rounds per cell. Most
	// cells converge within a few dozen rounds (the iterate closes half
	// its remaining gap per round once the collision curve saturates),
	// but a small cell whose map slope sits near 1 can creep through the
	// marginal band ~1 PPM at a time — randomized sweeps top out around
	// 150 rounds at TolPPM = 1, so 256 leaves the cap a genuine
	// backstop, not a truncation.
	DefaultMaxIters = 256
	// DefaultTolPPM is the convergence tolerance: iteration stops once no
	// member's retry-inflated load is more than this many PPM from its
	// fixed-point target.
	DefaultTolPPM = 1
)

// NodeLoad is one radiative node's contribution to the feedback loop: its
// first-order offered airtime and the retransmission budget that bounds
// how far collisions can inflate it.
type NodeLoad struct {
	// BasePPM is the node's first-order offered airtime in [0, PPM].
	BasePPM int64 `json:"base_ppm"`
	// Retries is the node's retransmission budget (bannet MaxRetries): a
	// packet is attempted at most Retries+1 times.
	Retries int `json:"retries,omitempty"`
}

// Member is one contender in the feedback iteration — a wearer's
// radiative nodes and the cell they share spectrum in. Body-channel
// nodes radiate nothing and are simply absent from Nodes. The JSON tags
// are the shard protocol's wire form: a shard backend gathers its wearer
// range's members and ships them to the coordinator, which concatenates
// the ranges and runs the one deterministic Solve.
type Member struct {
	Cell  int        `json:"cell"`
	Nodes []NodeLoad `json:"nodes,omitempty"`
}

// RetryMultiplier is the expected transmission attempts per packet when
// every attempt independently collides with probability p and the budget
// allows retries retransmissions: Σ_{k=0..retries} p^k, the truncated
// geometric series (1−p^(retries+1))/(1−p). It is 1 at p = 0 and
// monotone increasing in both arguments.
func RetryMultiplier(p float64, retries int) float64 {
	if p <= 0 || retries <= 0 {
		return 1
	}
	if p >= 1 {
		return float64(retries + 1)
	}
	return (1 - math.Pow(p, float64(retries+1))) / (1 - p)
}

// InflatePPM maps a node's first-order offered airtime to its
// retry-inflated equilibrium airtime under collision probability p,
// rounding half up and capping at 100% duty (PPM). The result is never
// below basePPM — retransmissions only add airtime.
func InflatePPM(basePPM int64, p float64, retries int) int64 {
	if basePPM <= 0 {
		return 0
	}
	inflated := int64(float64(basePPM)*RetryMultiplier(p, retries) + 0.5)
	if inflated > PPM {
		return PPM
	}
	return inflated
}

// Equilibrium is the damped fixed-point solver for the
// collision→retry→offered-load loop. The zero value of every field
// selects a default (Default model, DefaultMaxIters, DefaultTolPPM).
type Equilibrium struct {
	// Model maps a member's foreign equilibrium load to its collision
	// probability. Nil means Default().
	Model *Model
	// MaxIters caps the update rounds per cell (0 = DefaultMaxIters). A
	// cell reporting exactly MaxIters rounds may have been cut off before
	// reaching the tolerance.
	MaxIters int
	// TolPPM is the convergence tolerance in integer PPM (0 =
	// DefaultTolPPM): a cell converges once no member's load is further
	// than this from its fixed-point target.
	TolPPM int64
}

func (e *Equilibrium) model() *Model {
	if e.Model == nil {
		return Default()
	}
	return e.Model
}

// Validate rejects out-of-range solver parameters. Zero values are
// defaults, not errors.
func (e *Equilibrium) Validate() error {
	if e.MaxIters < 0 {
		return fmt.Errorf("spectrum: negative iteration cap %d", e.MaxIters)
	}
	if e.TolPPM < 0 {
		return fmt.Errorf("spectrum: negative tolerance %d PPM", e.TolPPM)
	}
	return e.model().Validate()
}

// Result is a solved equilibrium: per-member retry-inflated loads, the
// per-cell equilibrium totals, and per-cell convergence diagnostics.
// Solve returns a Result over the full member slice (first = 0);
// NewResult rebuilds one covering an arbitrary member window, so a shard
// backend can index the coordinator's solution by absolute wearer.
type Result struct {
	table *LoadTable
	own   []int64
	iters map[int]int
	// first is the member index own[0] corresponds to: OwnPPM(i) reads
	// own[i-first]. Zero for a Solve result over the full population.
	first int
}

// CellIters is one cell's fixed-point round count — the wire form of the
// Result's convergence diagnostics.
type CellIters struct {
	Cell  int `json:"cell"`
	Iters int `json:"iters"`
}

// Table is the per-cell equilibrium load table — the retry-inflated
// counterpart of the first-order phase-1 reduction.
func (r *Result) Table() *LoadTable { return r.table }

// OwnPPM is member i's equilibrium own load: its first-order offered
// airtime inflated by the collision retries its cell settled at. The
// index is absolute; a windowed Result (NewResult) holds only members
// [first, first+len(own)).
func (r *Result) OwnPPM(i int) int64 { return r.own[i-r.first] }

// ForeignPPM is the equilibrium foreign load member i sees: its cell's
// equilibrium total minus its own equilibrium share.
func (r *Result) ForeignPPM(i int, cell int) int64 {
	return r.table.ForeignPPM(cell, r.OwnPPM(i))
}

// Iters reports how many damped update rounds the cell's fixed point
// took (0 for a cell already at equilibrium, e.g. a lone wearer;
// MaxIters may mean the cap cut iteration short). Unpopulated cells
// report 0.
func (r *Result) Iters(cell int) int { return r.iters[cell] }

// ExportIters renders the per-cell round counts in ascending cell order.
func (r *Result) ExportIters() []CellIters {
	out := make([]CellIters, 0, len(r.iters))
	for c, n := range r.iters {
		out = append(out, CellIters{Cell: c, Iters: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// ExportOwn copies the per-member equilibrium loads of members
// [lo, hi) — the window a shard backend needs to replay phase 2 against
// the coordinator's solve.
func (r *Result) ExportOwn(lo, hi int) []int64 {
	return append([]int64(nil), r.own[lo-r.first:hi-r.first]...)
}

// NewResult reassembles a solved equilibrium from its exported pieces:
// the per-cell table and iteration counts of the full solve plus the
// own-load window covering members [first, first+len(own)). A shard
// backend holding NewResult(...) observes bit-identical OwnPPM /
// ForeignPPM / Iters for its wearers as the coordinator's full Result —
// the merge/export round-trip is exact because every quantity is an
// integer.
func NewResult(cells int, table []CellLoad, iters []CellIters, first int, own []int64) (*Result, error) {
	if first < 0 {
		return nil, fmt.Errorf("spectrum: negative result base %d", first)
	}
	t, err := ImportTable(cells, table)
	if err != nil {
		return nil, err
	}
	res := &Result{table: t, own: own, iters: make(map[int]int, len(iters)), first: first}
	for _, ci := range iters {
		if ci.Cell < 0 || ci.Cell >= cells {
			return nil, fmt.Errorf("spectrum: iteration count for cell %d outside [0,%d)", ci.Cell, cells)
		}
		res.iters[ci.Cell] = ci.Iters
	}
	return res, nil
}

// Solve computes the per-cell equilibrium of members over a cells-sized
// spectrum. It is single-threaded and deterministic; the fleet engine
// calls it once after its parallel first-order gathering pass.
func (e *Equilibrium) Solve(cells int, members []Member) (*Result, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("spectrum: non-positive cell count %d", cells)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	model := e.model()
	maxIters := e.MaxIters
	if maxIters == 0 {
		maxIters = DefaultMaxIters
	}
	tol := e.TolPPM
	if tol == 0 {
		tol = DefaultTolPPM
	}

	res := &Result{own: make([]int64, len(members)), iters: make(map[int]int)}
	byCell := make(map[int][]int)
	for i := range members {
		m := &members[i]
		if m.Cell < 0 || m.Cell >= cells {
			return nil, fmt.Errorf("spectrum: member %d cell %d outside [0,%d)", i, m.Cell, cells)
		}
		var base int64
		for _, n := range m.Nodes {
			if n.BasePPM < 0 || n.BasePPM > PPM {
				return nil, fmt.Errorf("spectrum: member %d base load %d outside [0,%d] PPM", i, n.BasePPM, PPM)
			}
			if n.Retries < 0 {
				return nil, fmt.Errorf("spectrum: member %d negative retry budget %d", i, n.Retries)
			}
			base += n.BasePPM
		}
		res.own[i] = base
		// Appending in member order keeps each cell's member list in
		// ascending member index — a fixed, schedule-free order.
		byCell[m.Cell] = append(byCell[m.Cell], i)
	}

	ids := make([]int, 0, len(byCell))
	for c := range byCell {
		ids = append(ids, c)
	}
	sort.Ints(ids)

	var targets []int64
	for _, c := range ids {
		ms := byCell[c]
		if cap(targets) < len(ms) {
			targets = make([]int64, len(ms))
		}
		targets = targets[:len(ms)]
		var total int64
		for _, id := range ms {
			total += res.own[id]
		}
		rounds := 0
		for ; rounds <= maxIters; rounds++ {
			// Jacobi round: every target comes from the same snapshot of
			// the cell's loads, so member order cannot matter.
			var resid int64
			for k, id := range ms {
				foreign := total - res.own[id]
				if foreign < 0 {
					foreign = 0
				}
				p := model.CollisionProb(Erlangs(foreign))
				var t int64
				for _, n := range members[id].Nodes {
					t += InflatePPM(n.BasePPM, p, n.Retries)
				}
				targets[k] = t
				if d := t - res.own[id]; d > resid {
					resid = d
				} else if -d > resid {
					resid = -d
				}
			}
			if resid <= tol || rounds == maxIters {
				break
			}
			// Damped half-step toward the target, rounded away from zero
			// so every unconverged round moves at least 1 PPM.
			for k, id := range ms {
				d := targets[k] - res.own[id]
				var step int64
				if d > 0 {
					step = (d + 1) / 2
				} else {
					step = (d - 1) / 2
				}
				res.own[id] += step
				total += step
			}
		}
		if rounds > 0 {
			res.iters[c] = rounds
		}
	}

	table, err := NewLoadTable(cells)
	if err != nil {
		return nil, err
	}
	for i := range members {
		if res.own[i] != 0 {
			if err := table.Add(members[i].Cell, res.own[i]); err != nil {
				return nil, err
			}
		}
	}
	res.table = table
	return res, nil
}
