// Package spectrum models cross-wearer co-channel interference: the
// density-dependent loss a fleet of co-located wearers inflicts on each
// other's radiative (RF) links, which body-coupled EQS/MQS links escape.
//
// The paper's argument against RF for body-area networks is not only the
// per-link energy geometry (see internal/channel): a 2.4 GHz radio
// radiates into a room-scale bubble, so every co-located wearer's traffic
// lands in every other wearer's receiver. The unlicensed band is a shared
// resource, and as wearers-per-room grows the CSMA/ALOHA collision
// probability — and therefore retransmissions, energy and packet loss —
// grows with it. EQS/MQS body-channel links confine the signal to the
// wearer's own body, so their loss is independent of fleet density; the
// fleet-scale contrast between the two is the paper's headline story.
//
// The model is deliberately cell-granular, not geometric: wearers hash
// into spatial cells (rooms, train cars, gym floors), each cell carries
// the sum of its members' offered RF airtime (the cell's offered load G
// in erlangs), and a member's collision probability follows the classic
// unslotted-contention approximation p = 1 − e^(−β·G_foreign), where
// G_foreign excludes the member's own load (a wearer alone in a cell
// sees no interference) and β is the vulnerability-window scale (2 for
// pure ALOHA, smaller with effective carrier sensing).
//
// Determinism contract: cell assignment is a pure integer function of the
// wearer's scenario seed (CellOf), and offered load accumulates in
// integer parts-per-million (LoadTable), so per-cell totals are exact and
// order-independent — any parallel schedule of the fleet engine's
// phase-1 reduction produces bit-identical loads.
package spectrum

import (
	"fmt"
	"math"
	"sort"

	"wiban/internal/desim"
)

// PPM is the integer airtime unit: one part-per-million of a band's
// capacity. Offered loads are accumulated in PPM so that per-cell sums
// are exact integer arithmetic, associative and commutative — the
// foundation of the fleet engine's order-independent phase-1 reduction.
const PPM = 1_000_000

// Erlangs converts an integer PPM airtime load to erlangs.
func Erlangs(ppm int64) float64 { return float64(ppm) / PPM }

// ToPPM converts a fractional airtime duty (erlangs) to integer PPM,
// rounding half up and clamping negatives to zero.
func ToPPM(duty float64) int64 {
	if duty <= 0 {
		return 0
	}
	return int64(duty*PPM + 0.5)
}

// CellOf deterministically assigns the wearer with the given scenario
// seed to one of cells spatial cells. It is a pure function (the shared
// splitmix64 finalizer desim.Mix64, uniform modulo the cell count), so
// the assignment is identical on every rerun and resume regardless of
// worker scheduling.
func CellOf(scenarioSeed int64, cells int) int {
	if cells <= 1 {
		return 0
	}
	return int(desim.Mix64(uint64(scenarioSeed)) % uint64(cells))
}

// LoadTable is the per-cell offered-load accumulator of the fleet
// engine's phase 1: integer PPM airtime sums per cell. Integer addition
// commutes, so any order of Add calls — and any merge order of
// per-worker partial tables — yields identical totals. Storage is
// sparse: memory scales with populated cells (at most the wearer
// count), never with the nominal cell count, so a near-isolated sweep
// (cells ≫ wearers) costs nothing.
type LoadTable struct {
	cells int
	ppm   map[int]int64
}

// NewLoadTable returns an empty table over the given cell count.
func NewLoadTable(cells int) (*LoadTable, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("spectrum: non-positive cell count %d", cells)
	}
	return &LoadTable{cells: cells, ppm: make(map[int]int64)}, nil
}

// Cells reports the table's cell count.
func (t *LoadTable) Cells() int { return t.cells }

// Add accumulates ppm airtime into cell.
func (t *LoadTable) Add(cell int, ppm int64) error {
	if cell < 0 || cell >= t.cells {
		return fmt.Errorf("spectrum: cell %d outside [0,%d)", cell, t.cells)
	}
	t.ppm[cell] += ppm
	return nil
}

// Merge folds another table (a worker's partial sums) into t.
func (t *LoadTable) Merge(o *LoadTable) error {
	if o.cells != t.cells {
		return fmt.Errorf("spectrum: merging table of %d cells into %d", o.cells, t.cells)
	}
	for c, v := range o.ppm {
		t.ppm[c] += v
	}
	return nil
}

// TotalPPM reports a cell's total offered load in PPM (0 for an
// out-of-range or unpopulated cell).
func (t *LoadTable) TotalPPM(cell int) int64 { return t.ppm[cell] }

// ForeignPPM reports the co-channel load a member contributing ownPPM to
// cell sees from everyone else: the cell total minus its own share,
// clamped at zero. A wearer alone in its cell sees no interference.
func (t *LoadTable) ForeignPPM(cell int, ownPPM int64) int64 {
	f := t.TotalPPM(cell) - ownPPM
	if f < 0 {
		return 0
	}
	return f
}

// CellLoad is one populated cell's integer-PPM load — the wire form of a
// LoadTable entry. The fleet coordinator's shard protocol ships partial
// per-cell tables between processes as sorted CellLoad lists; because the
// underlying sums are exact integers, a table reassembled from any
// partition of the population merges to bit-identical totals.
type CellLoad struct {
	Cell int   `json:"cell"`
	PPM  int64 `json:"ppm"`
}

// Export renders the table's populated cells in ascending cell order — a
// deterministic, order-independent serialization of the sparse map.
func (t *LoadTable) Export() []CellLoad {
	out := make([]CellLoad, 0, len(t.ppm))
	for c, v := range t.ppm {
		out = append(out, CellLoad{Cell: c, PPM: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// ImportTable rebuilds a LoadTable from an exported cell list. It is the
// inverse of Export: ImportTable(t.Cells(), t.Export()) reproduces t
// exactly, and importing several shards' partial exports into one table
// (via Merge) reproduces the full-population reduction.
func ImportTable(cells int, loads []CellLoad) (*LoadTable, error) {
	t, err := NewLoadTable(cells)
	if err != nil {
		return nil, err
	}
	for _, l := range loads {
		if err := t.Add(l.Cell, l.PPM); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Model is the co-channel collision approximation: it maps a cell's
// foreign offered load (erlangs) to the probability that a given
// transmission overlaps a colliding one. The curve is the classic
// unslotted-contention form p = 1 − e^(−β·G), saturating at MaxCollision
// so a pathological cell still delivers an occasional packet (capture
// effect) and effective PERs stay inside the simulator's [0,1) domain.
type Model struct {
	// Beta is the vulnerability-window scale: 2 reproduces pure ALOHA
	// (a packet is vulnerable for twice its own airtime), values below 1
	// model CSMA with effective carrier sensing.
	Beta float64
	// MaxCollision caps the collision probability in saturation.
	MaxCollision float64
}

// Default returns the stock BLE-in-a-crowded-room model: ALOHA-grade
// vulnerability (hidden bodies defeat carrier sensing between wearers)
// capped at 95% collisions.
func Default() *Model {
	return &Model{Beta: 2, MaxCollision: 0.95}
}

// Validate rejects out-of-range model parameters.
func (m *Model) Validate() error {
	if m.Beta <= 0 || math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0) {
		return fmt.Errorf("spectrum: non-positive vulnerability scale beta %v", m.Beta)
	}
	if m.MaxCollision < 0 || m.MaxCollision >= 1 {
		return fmt.Errorf("spectrum: collision cap %v outside [0,1)", m.MaxCollision)
	}
	return nil
}

// CollisionProb maps a foreign offered load (erlangs) to the collision
// probability a member's transmissions suffer. It is 0 at zero load,
// strictly increasing, and capped at MaxCollision.
func (m *Model) CollisionProb(foreignErlangs float64) float64 {
	if foreignErlangs <= 0 {
		return 0
	}
	p := 1 - math.Exp(-m.Beta*foreignErlangs)
	if p > m.MaxCollision {
		p = m.MaxCollision
	}
	return p
}

// Tag renders the model parameters as a stable string for telemetry
// metadata, so a resumed sweep can refuse a store coupled under a
// different interference model.
func (m *Model) Tag() string {
	return fmt.Sprintf("csma:beta=%g,cap=%g", m.Beta, m.MaxCollision)
}
