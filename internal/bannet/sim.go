package bannet

import (
	"fmt"
	"slices"

	"wiban/internal/desim"
	"wiban/internal/energy"
	"wiban/internal/mac"
	"wiban/internal/partition"
	"wiban/internal/units"
)

// packet is one queued transfer unit.
type packet struct {
	created desim.Time
	retries int
}

// packetQueue is a growable ring buffer of packets. The hot loop pushes one
// packet per generation event and pops one per transmission attempt; the
// ring keeps both O(1) without the slice-shift churn of a naive queue and
// retains its capacity across runs of a reused Sim.
type packetQueue struct {
	buf  []packet
	head int
	n    int
}

func (q *packetQueue) len() int { return q.n }

func (q *packetQueue) push(p packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *packetQueue) pop() packet {
	p := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

func (q *packetQueue) grow() {
	nb := make([]packet, max(8, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = nb, 0
}

func (q *packetQueue) reset() { q.head, q.n = 0, 0 }

// nodeState is the runtime state of one node. States live in the Sim's
// arena: init rebinds one to a (possibly different) node configuration
// while keeping every grown buffer — packet ring, latency slices,
// battery state — so a Sim recycled across scenarios stops allocating
// once the arena has warmed to the population's high-water shape.
type nodeState struct {
	cfg       NodeConfig
	effPER    float64 // 1−(1−PER)·(1−CollisionPER), drawn per attempt
	outRate   units.DataRate
	queue     packetQueue
	stats     NodeStats
	latencies []units.Duration
	airTime   units.Duration // cumulative transmit air time
	// Inference window assembly.
	windowBits  int64
	windowStart desim.Time
	infLat      []units.Duration
	// Battery drain (DrainBattery mode).
	battState *energy.State
	dead      bool
	diedAt    desim.Time
	// Series sampling window: attempts since the last sample, how many
	// failed, and how many of those failures were collision-attributed.
	winAttempts   int64
	winFails      int64
	winCollisions int64
}

// init rebinds the state to a node configuration and resets it. Every
// configuration-derived field is overwritten; only buffer capacity
// survives from the previous occupant.
func (st *nodeState) init(nc NodeConfig, out units.DataRate) {
	st.cfg = nc
	st.effPER = 1 - (1-nc.PER)*(1-nc.CollisionPER)
	st.outRate = out
	if nc.DrainBattery {
		if st.battState == nil {
			st.battState = energy.NewState(nc.Battery)
		} else {
			st.battState.Reinit(nc.Battery)
		}
	} else {
		st.battState = nil
	}
	st.reset()
}

// reset returns the node to its pre-run state, keeping allocated buffers.
func (st *nodeState) reset() {
	st.queue.reset()
	st.stats = NodeStats{Name: st.cfg.Name}
	st.latencies = st.latencies[:0]
	st.airTime = 0
	st.windowBits = 0
	st.windowStart = 0
	st.infLat = st.infLat[:0]
	if st.battState != nil {
		st.battState.Reset()
	}
	st.dead = false
	st.diedAt = 0
	st.winAttempts = 0
	st.winFails = 0
	st.winCollisions = 0
}

// continuousPower is the node's always-on draw: sensing, ISA compute and
// the radio sleep floor.
func (st *nodeState) continuousPower() units.Power {
	return st.cfg.Sensor.AFEPower + st.cfg.Policy.ComputePower() + st.cfg.Radio.Sleep
}

// drain debits the battery in DrainBattery mode and reports whether the
// node is still alive.
func (st *nodeState) drain(e units.Energy, now desim.Time) bool {
	if st.battState == nil || st.dead {
		return !st.dead
	}
	if !st.battState.Draw(e) || st.battState.Depleted() {
		st.dead = true
		st.diedAt = now
	}
	return !st.dead
}

// hubServer is a single-queue deterministic-service inference server.
type hubServer struct {
	platform  *partition.Platform
	busyUntil desim.Time
	busyTotal desim.Time
	energy    units.Energy
}

func (h *hubServer) reset() {
	h.busyUntil = 0
	h.busyTotal = 0
	h.energy = 0
}

// enqueue admits a job created at start and returns its completion time.
func (h *hubServer) enqueue(now, start desim.Time, macs int64) desim.Time {
	service := desim.FromSeconds(float64(macs) / h.platform.MACRate)
	begin := now
	if h.busyUntil > begin {
		begin = h.busyUntil
	}
	done := begin + service
	h.busyUntil = done
	h.busyTotal += service
	h.energy += units.Energy(float64(h.platform.EnergyPerMAC) * float64(macs))
	return done
}

// defaultTDMA and defaultHub are the shared read-only defaults for
// configs that leave TDMA or HubCompute nil, so a recycled Sim does not
// rebuild them per Reset.
var (
	defaultTDMA = mac.DefaultTDMA()
	defaultHub  = partition.HubSoC()
)

// Sim is a reusable simulation kernel arena. NewSim validates the
// configuration, builds the TDMA schedule and allocates runtime state;
// each Run replays the scenario from a clean state, reusing the packet
// rings, latency buffers and the discrete-event kernel's event arena.
// Reset rebinds the same arena to a different configuration — node
// states, demand slices, the schedule's slot table and the event queue
// are all recycled — so a fleet worker that sweeps many scenarios on one
// Sim is allocation-free once the arena has warmed to the population's
// high-water node count.
//
// A Sim is not safe for concurrent use; run one Sim per goroutine.
// Reports produced by Run borrow the Sim's schedule: they stay valid
// until the next Reset.
type Sim struct {
	seed     int64
	tdma     *mac.TDMA
	schedule mac.Schedule
	demands  []mac.Demand
	hub      hubServer
	states   []nodeState
	kern     *desim.Simulator

	// superframe is the cached event-time form of the TDMA period.
	superframe desim.Time

	// rep is the report under construction during a run; the cached tick
	// closures below reach it (and the states) through the Sim receiver,
	// so scheduling a run allocates no per-run closures.
	rep     *Report
	genFns  []func()
	harvFns []func()
	frameFn func()

	// Series sampling (SetSeries). The configuration survives Reset; the
	// cursors are rearmed per run and seriesBuf is the reused sample arena
	// handed to the sink, keeping the steady state allocation-free.
	seriesEvery units.Duration
	seriesSink  SeriesSink
	seriesStep  desim.Time
	seriesNext  desim.Time
	seriesLast  desim.Time
	seriesBuf   []SeriesSample
}

// NewSim validates the configuration, builds the TDMA schedule and
// allocates runtime state. The returned Sim can be Run any number of
// times; each run is independent and deterministic in cfg.Seed.
func NewSim(cfg Config) (*Sim, error) {
	s := &Sim{kern: desim.New(0)}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rebinds the Sim to a new configuration, revalidating it and
// rebuilding the TDMA schedule while recycling every arena buffer. It is
// equivalent to NewSim except that nothing is reallocated once the arena
// has seen an equal-or-larger configuration. On error the Sim must be
// Reset successfully before it is run again.
func (s *Sim) Reset(cfg Config) error {
	if len(cfg.Nodes) == 0 {
		return fmt.Errorf("bannet: no nodes")
	}
	tdma := cfg.TDMA
	if tdma == nil {
		tdma = defaultTDMA
	}

	// Validate every node before touching the arena, in the order NewSim
	// always has (the first offending node wins).
	for _, nc := range cfg.Nodes {
		if nc.Sensor == nil || nc.Policy == nil || nc.Radio == nil || nc.Battery == nil {
			return fmt.Errorf("bannet: node %q incompletely specified", nc.Name)
		}
		if nc.PacketBits <= 0 {
			return fmt.Errorf("bannet: node %q has no packet size", nc.Name)
		}
		if nc.PER < 0 || nc.PER >= 1 {
			return fmt.Errorf("bannet: node %q PER %v outside [0,1)", nc.Name, nc.PER)
		}
		if nc.CollisionPER < 0 || nc.CollisionPER >= 1 {
			return fmt.Errorf("bannet: node %q collision PER %v outside [0,1)", nc.Name, nc.CollisionPER)
		}
		if nc.Inference != nil && (nc.Inference.MACs <= 0 || nc.Inference.InputBits <= 0) {
			return fmt.Errorf("bannet: node %q has a degenerate inference spec", nc.Name)
		}
		out := nc.Policy.OutputRate(nc.Sensor.DataRate())
		if out > nc.Radio.Goodput {
			return fmt.Errorf("bannet: node %q rate %v exceeds radio goodput %v",
				nc.Name, out, nc.Radio.Goodput)
		}
	}

	// Rebind node states and TDMA demands into the reused buffers.
	if n := len(cfg.Nodes); n <= cap(s.states) {
		s.states = s.states[:n]
	} else {
		s.states = append(s.states[:cap(s.states)], make([]nodeState, n-cap(s.states))...)
	}
	s.demands = s.demands[:0]
	for i, nc := range cfg.Nodes {
		out := nc.Policy.OutputRate(nc.Sensor.DataRate())
		s.states[i].init(nc, out)
		// Slot sizing includes retransmission headroom: a link with packet
		// error rate p needs ≈ 1/(1−p) attempts per delivered packet, plus
		// 20% margin against burstiness. Deliberately sized from the link
		// PER alone, not CollisionPER: the TDMA scheduler can provision for
		// its own channel but not for other wearers' interference.
		demand := units.DataRate(float64(out) / (1 - nc.PER) * 1.2)
		s.demands = append(s.demands, mac.Demand{NodeID: nc.ID, Rate: demand, PacketBits: nc.PacketBits})
	}
	if err := tdma.BuildInto(s.demands, &s.schedule); err != nil {
		return err
	}
	s.tdma = tdma
	s.superframe = desim.FromSeconds(float64(tdma.Superframe))
	s.seed = cfg.Seed

	hubPlatform := cfg.HubCompute
	if hubPlatform == nil {
		hubPlatform = defaultHub
	}
	s.hub = hubServer{platform: hubPlatform}
	return nil
}

// Schedule returns the TDMA schedule built for the configuration. The
// returned pointer aliases the Sim's arena: its contents change on the
// next Reset.
func (s *Sim) Schedule() *mac.Schedule { return &s.schedule }

// SetSeed changes the seed subsequent Runs replay from.
func (s *Sim) SetSeed(seed int64) { s.seed = seed }

// genFn returns the cached packet-generation tick for node i.
func (s *Sim) genFn(i int) func() {
	for len(s.genFns) <= i {
		j := len(s.genFns)
		s.genFns = append(s.genFns, func() { s.genTick(j) })
	}
	return s.genFns[i]
}

// genTick queues one packet at node i's output rate.
func (s *Sim) genTick(i int) {
	st := &s.states[i]
	if st.dead {
		return
	}
	st.queue.push(packet{created: s.kern.Now()})
	st.stats.PacketsGenerated++
}

// harvFn returns the cached harvest-sampling tick for node i.
func (s *Sim) harvFn(i int) func() {
	for len(s.harvFns) <= i {
		j := len(s.harvFns)
		s.harvFns = append(s.harvFns, func() { s.harvTick(j) })
	}
	return s.harvFns[i]
}

// harvTick samples node i's harvester over one simulated second.
func (s *Sim) harvTick(i int) {
	st := &s.states[i]
	e := st.cfg.Harvester.Sample(s.kern.Rand()).Times(units.Second)
	st.stats.Harvested += e
	if st.battState != nil && !st.dead {
		st.battState.Recharge(e)
	}
}

// frameTick is the superframe body: at each node's slot, drain up to the
// slot capacity with PER-driven retries.
func (s *Sim) frameTick() {
	kern, report := s.kern, s.rep
	// Series sampling rides the superframe event rather than its own
	// kernel event: the sample reflects the state left by the previous
	// frame, and the event count the Report fingerprints stays identical
	// with sampling on or off.
	if s.seriesSink != nil && kern.Now() >= s.seriesNext {
		s.emitSeries(kern.Now())
		s.seriesNext += s.seriesStep
	}
	beaconTime := float64(s.schedule.BeaconTime)
	for i := range s.states {
		st := &s.states[i]
		if st.dead {
			continue
		}
		// Continuous drain (sensing + ISA + sleep floor) plus the
		// beacon cost debits the battery in DrainBattery mode.
		syncE := st.cfg.Radio.ActiveRX.Times(units.Duration(beaconTime)) +
			st.cfg.Radio.WakeEnergy
		cont := st.continuousPower().Times(units.Duration(s.superframe.Seconds()))
		if !st.drain(cont+syncE, kern.Now()) {
			continue
		}
		// Beacon listen: every node wakes and receives the beacon.
		st.stats.SyncEnergy += syncE
		slot := s.schedule.SlotFor(st.cfg.ID)
		if slot == nil {
			continue
		}
		budget := slot.CapacityBits
		for st.queue.len() > 0 && budget >= int64(st.cfg.PacketBits) {
			p := st.queue.pop()
			budget -= int64(st.cfg.PacketBits)
			air := st.cfg.Radio.TimeOnAir(st.cfg.PacketBits)
			txE := st.cfg.Radio.ActiveTX.Times(air)
			if !st.drain(txE, kern.Now()) {
				break
			}
			st.stats.TxEnergy += txE
			st.airTime += air
			st.stats.Transmissions++
			st.winAttempts++
			// One uniform draw decides delivery AND attributes the failure
			// cause, keeping the RNG stream identical to the pre-series
			// kernel: u < CollisionPER is a collision (probability cPER),
			// CollisionPER ≤ u < effPER is link loss (probability
			// PER·(1−cPER), exactly the residual), u ≥ effPER delivers.
			u := kern.Rand().Float64()
			if u >= st.effPER {
				// Delivered.
				lat := units.Duration((kern.Now() - p.created).Seconds())
				st.latencies = append(st.latencies, lat)
				st.stats.PacketsDelivered++
				st.stats.BitsDelivered += int64(st.cfg.PacketBits)
				report.HubRxBits += int64(st.cfg.PacketBits)
				report.HubRxEnergy += st.cfg.Radio.ActiveRX.Times(air)
				// Assemble inference input windows and dispatch to
				// the hub NPU queue.
				if spec := st.cfg.Inference; spec != nil {
					if st.windowBits == 0 {
						st.windowStart = p.created
					}
					st.windowBits += int64(st.cfg.PacketBits)
					for st.windowBits >= spec.InputBits {
						st.windowBits -= spec.InputBits
						done := s.hub.enqueue(kern.Now(), st.windowStart, spec.MACs)
						e2e := units.Duration((done - st.windowStart).Seconds())
						st.infLat = append(st.infLat, e2e)
						st.stats.Inferences++
						st.windowStart = kern.Now()
					}
				}
				continue
			}
			// Failed: selective-repeat ARQ — requeue at the back (or
			// drop past the retry budget) and keep draining the slot.
			st.winFails++
			if u < st.cfg.CollisionPER {
				st.winCollisions++
			}
			p.retries++
			if p.retries > st.cfg.MaxRetries {
				st.stats.PacketsDropped++
				continue
			}
			st.queue.push(p)
		}
	}
}

// Run simulates the network for the given span from a clean state and
// returns a freshly allocated report. Runs are independent: the same Sim
// run twice with the same seed and span produces identical reports. The
// report's Schedule aliases the Sim's arena (valid until the next Reset);
// callers on the zero-allocation path use RunInto instead.
func (s *Sim) Run(span units.Duration) (*Report, error) {
	rep := &Report{}
	if err := s.RunInto(span, rep); err != nil {
		return nil, err
	}
	rep.Schedule = &s.schedule
	return rep, nil
}

// RunInto simulates the network for the given span from a clean state
// into rep, reusing rep's node-stats buffer. It is the allocation-free
// form of Run: once the Sim's arena and rep's buffers have warmed, a
// Reset–RunInto cycle performs no heap allocation (pinned by the
// steady-state regression test). rep.Schedule is left nil — the schedule
// is per-kernel arena state, available via Schedule.
func (s *Sim) RunInto(span units.Duration, rep *Report) error {
	if span <= 0 {
		return fmt.Errorf("bannet: non-positive span")
	}
	for i := range s.states {
		s.states[i].reset()
	}
	s.hub.reset()
	s.kern.Reset(s.seed)
	*rep = Report{Nodes: rep.Nodes[:0]}
	s.rep = rep

	// Packet generation: one event per packet at the node's output rate.
	for i := range s.states {
		st := &s.states[i]
		if st.outRate <= 0 {
			continue
		}
		interval := desim.FromSeconds(float64(st.cfg.PacketBits) / float64(st.outRate))
		if interval < desim.Microsecond {
			interval = desim.Microsecond
		}
		s.kern.Periodic(interval, interval, s.genFn(i))
	}

	// Superframe processing.
	if s.frameFn == nil {
		s.frameFn = s.frameTick
	}
	s.kern.Periodic(s.superframe, s.superframe, s.frameFn)

	// Harvesting: sample each harvester once per simulated second.
	for i := range s.states {
		if s.states[i].cfg.Harvester == nil {
			continue
		}
		s.kern.Periodic(desim.Second, desim.Second, s.harvFn(i))
	}

	// Arm the series cursors: first sample at the cadence (quantized up
	// to the next superframe boundary by frameTick), last sample rearmed
	// so the tail emission below fires at most once.
	if s.seriesSink != nil {
		s.seriesStep = desim.FromSeconds(float64(s.seriesEvery))
		if s.seriesStep < s.superframe {
			s.seriesStep = s.superframe
		}
		s.seriesNext = s.seriesStep
		s.seriesLast = 0
	}

	end := desim.FromSeconds(float64(span))
	s.kern.RunUntil(end)
	rep.Duration = span
	rep.Events = s.kern.Executed()

	// Tail sample: close the final window at the end of the span unless a
	// cadence sample already landed exactly there, so every run yields at
	// least one sample per node and the books balance for short spans.
	if s.seriesSink != nil && s.seriesLast < end {
		s.emitSeries(end)
	}

	// Close the books: continuous power components over each node's
	// lifespan (the full span, or until battery death).
	for i := range s.states {
		st := &s.states[i]
		stats := &st.stats
		life := span
		if st.dead {
			stats.Died = true
			stats.DiedAt = units.Duration(st.diedAt.Seconds())
			life = stats.DiedAt
		}
		stats.SenseEnergy = st.cfg.Sensor.AFEPower.Times(life)
		stats.ISAEnergy = st.cfg.Policy.ComputePower().Times(life)
		sleepSpan := life - st.airTime
		if sleepSpan < 0 {
			sleepSpan = 0
		}
		stats.SleepEnergy = st.cfg.Radio.Sleep.Times(sleepSpan)

		stats.AvgPower = stats.TotalEnergy().At(life)
		stats.ProjectedLife = st.cfg.Battery.Lifetime(stats.AvgPower)
		if st.dead && stats.DiedAt < stats.ProjectedLife {
			stats.ProjectedLife = stats.DiedAt
		}
		harvestPower := stats.Harvested.At(life)
		stats.Perpetual = stats.ProjectedLife >= energy.PerpetualLife || harvestPower >= stats.AvgPower

		// Latency percentiles. Sorting a multiset of floats yields the
		// same sequence under any algorithm, so the percentile picks are
		// unchanged from the previous sort.Slice formulation.
		if len(st.latencies) > 0 {
			slices.Sort(st.latencies)
			stats.LatencyP50 = st.latencies[len(st.latencies)/2]
			stats.LatencyP99 = st.latencies[(len(st.latencies)*99)/100]
		}
		if len(st.infLat) > 0 {
			slices.Sort(st.infLat)
			stats.InferenceP50 = st.infLat[len(st.infLat)/2]
			stats.InferenceP99 = st.infLat[(len(st.infLat)*99)/100]
		}
		rep.Nodes = append(rep.Nodes, *stats)
	}
	rep.HubComputeEnergy = s.hub.energy
	rep.HubUtilization = units.Clamp(s.hub.busyTotal.Seconds()/float64(span), 0, 1)
	s.rep = nil
	return nil
}
