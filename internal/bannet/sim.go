package bannet

import (
	"fmt"
	"sort"

	"wiban/internal/desim"
	"wiban/internal/energy"
	"wiban/internal/mac"
	"wiban/internal/partition"
	"wiban/internal/units"
)

// packet is one queued transfer unit.
type packet struct {
	created desim.Time
	retries int
}

// packetQueue is a growable ring buffer of packets. The hot loop pushes one
// packet per generation event and pops one per transmission attempt; the
// ring keeps both O(1) without the slice-shift churn of a naive queue and
// retains its capacity across runs of a reused Sim.
type packetQueue struct {
	buf  []packet
	head int
	n    int
}

func (q *packetQueue) len() int { return q.n }

func (q *packetQueue) push(p packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *packetQueue) pop() packet {
	p := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

func (q *packetQueue) grow() {
	nb := make([]packet, max(8, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = nb, 0
}

func (q *packetQueue) reset() { q.head, q.n = 0, 0 }

// nodeState is the runtime state of one node.
type nodeState struct {
	cfg       NodeConfig
	effPER    float64 // 1−(1−PER)·(1−CollisionPER), drawn per attempt
	outRate   units.DataRate
	queue     packetQueue
	stats     NodeStats
	latencies []units.Duration
	airTime   units.Duration // cumulative transmit air time
	// Inference window assembly.
	windowBits  int64
	windowStart desim.Time
	infLat      []units.Duration
	// Battery drain (DrainBattery mode).
	battState *energy.State
	dead      bool
	diedAt    desim.Time
}

// reset returns the node to its pre-run state, keeping allocated buffers.
func (st *nodeState) reset() {
	st.queue.reset()
	st.stats = NodeStats{Name: st.cfg.Name}
	st.latencies = st.latencies[:0]
	st.airTime = 0
	st.windowBits = 0
	st.windowStart = 0
	st.infLat = st.infLat[:0]
	if st.battState != nil {
		st.battState.Reset()
	}
	st.dead = false
	st.diedAt = 0
}

// continuousPower is the node's always-on draw: sensing, ISA compute and
// the radio sleep floor.
func (st *nodeState) continuousPower() units.Power {
	return st.cfg.Sensor.AFEPower + st.cfg.Policy.ComputePower() + st.cfg.Radio.Sleep
}

// drain debits the battery in DrainBattery mode and reports whether the
// node is still alive.
func (st *nodeState) drain(e units.Energy, now desim.Time) bool {
	if st.battState == nil || st.dead {
		return !st.dead
	}
	if !st.battState.Draw(e) || st.battState.Depleted() {
		st.dead = true
		st.diedAt = now
	}
	return !st.dead
}

// hubServer is a single-queue deterministic-service inference server.
type hubServer struct {
	platform  *partition.Platform
	busyUntil desim.Time
	busyTotal desim.Time
	energy    units.Energy
}

func (h *hubServer) reset() {
	h.busyUntil = 0
	h.busyTotal = 0
	h.energy = 0
}

// enqueue admits a job created at start and returns its completion time.
func (h *hubServer) enqueue(now, start desim.Time, macs int64) desim.Time {
	service := desim.FromSeconds(float64(macs) / h.platform.MACRate)
	begin := now
	if h.busyUntil > begin {
		begin = h.busyUntil
	}
	done := begin + service
	h.busyUntil = done
	h.busyTotal += service
	h.energy += units.Energy(float64(h.platform.EnergyPerMAC) * float64(macs))
	return done
}

// Sim is a reusable simulation instance: configuration validation, TDMA
// schedule construction and node-state allocation happen once in NewSim,
// and each Run replays the scenario from a clean state. A fleet engine
// that sweeps seeds or spans over the same scenario, and any benchmark
// that runs the same network repeatedly, reuses the queues and latency
// buffers instead of reallocating them per run.
//
// A Sim is not safe for concurrent use; run one Sim per goroutine.
type Sim struct {
	cfg      Config
	tdma     *mac.TDMA
	schedule *mac.Schedule
	hub      hubServer
	states   []*nodeState
}

// NewSim validates the configuration, builds the TDMA schedule and
// allocates runtime state. The returned Sim can be Run any number of
// times; each run is independent and deterministic in cfg.Seed.
func NewSim(cfg Config) (*Sim, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("bannet: no nodes")
	}
	tdma := cfg.TDMA
	if tdma == nil {
		tdma = mac.DefaultTDMA()
	}

	// Build node states and TDMA demands.
	states := make([]*nodeState, 0, len(cfg.Nodes))
	demands := make([]mac.Demand, 0, len(cfg.Nodes))
	for _, nc := range cfg.Nodes {
		if nc.Sensor == nil || nc.Policy == nil || nc.Radio == nil || nc.Battery == nil {
			return nil, fmt.Errorf("bannet: node %q incompletely specified", nc.Name)
		}
		if nc.PacketBits <= 0 {
			return nil, fmt.Errorf("bannet: node %q has no packet size", nc.Name)
		}
		if nc.PER < 0 || nc.PER >= 1 {
			return nil, fmt.Errorf("bannet: node %q PER %v outside [0,1)", nc.Name, nc.PER)
		}
		if nc.CollisionPER < 0 || nc.CollisionPER >= 1 {
			return nil, fmt.Errorf("bannet: node %q collision PER %v outside [0,1)", nc.Name, nc.CollisionPER)
		}
		if nc.Inference != nil && (nc.Inference.MACs <= 0 || nc.Inference.InputBits <= 0) {
			return nil, fmt.Errorf("bannet: node %q has a degenerate inference spec", nc.Name)
		}
		out := nc.Policy.OutputRate(nc.Sensor.DataRate())
		if out > nc.Radio.Goodput {
			return nil, fmt.Errorf("bannet: node %q rate %v exceeds radio goodput %v",
				nc.Name, out, nc.Radio.Goodput)
		}
		st := &nodeState{cfg: nc, outRate: out}
		st.effPER = 1 - (1-nc.PER)*(1-nc.CollisionPER)
		st.stats.Name = nc.Name
		if nc.DrainBattery {
			st.battState = energy.NewState(nc.Battery)
		}
		states = append(states, st)
		// Slot sizing includes retransmission headroom: a link with packet
		// error rate p needs ≈ 1/(1−p) attempts per delivered packet, plus
		// 20% margin against burstiness. Deliberately sized from the link
		// PER alone, not CollisionPER: the TDMA scheduler can provision for
		// its own channel but not for other wearers' interference.
		demand := units.DataRate(float64(out) / (1 - nc.PER) * 1.2)
		demands = append(demands, mac.Demand{NodeID: nc.ID, Rate: demand, PacketBits: nc.PacketBits})
	}
	schedule, err := tdma.Build(demands)
	if err != nil {
		return nil, err
	}

	hubPlatform := cfg.HubCompute
	if hubPlatform == nil {
		hubPlatform = partition.HubSoC()
	}
	return &Sim{
		cfg:      cfg,
		tdma:     tdma,
		schedule: schedule,
		hub:      hubServer{platform: hubPlatform},
		states:   states,
	}, nil
}

// Schedule returns the TDMA schedule built for the configuration.
func (s *Sim) Schedule() *mac.Schedule { return s.schedule }

// SetSeed changes the seed subsequent Runs replay from.
func (s *Sim) SetSeed(seed int64) { s.cfg.Seed = seed }

// Run simulates the network for the given span from a clean state and
// returns the report. Runs are independent: the same Sim run twice with
// the same seed and span produces identical reports.
func (s *Sim) Run(span units.Duration) (*Report, error) {
	if span <= 0 {
		return nil, fmt.Errorf("bannet: non-positive span")
	}
	for _, st := range s.states {
		st.reset()
	}
	s.hub.reset()

	sim := desim.New(s.cfg.Seed)
	report := &Report{Schedule: s.schedule}
	hub := &s.hub
	schedule := s.schedule

	// Packet generation: one event per packet at the node's output rate.
	for _, st := range s.states {
		st := st
		if st.outRate <= 0 {
			continue
		}
		interval := desim.FromSeconds(float64(st.cfg.PacketBits) / float64(st.outRate))
		if interval < desim.Microsecond {
			interval = desim.Microsecond
		}
		sim.Every(interval, interval, func() {
			if st.dead {
				return
			}
			st.queue.push(packet{created: sim.Now()})
			st.stats.PacketsGenerated++
		})
	}

	// Superframe processing: at each node's slot, drain up to the slot
	// capacity with PER-driven retries.
	superframe := desim.FromSeconds(float64(s.tdma.Superframe))
	beaconTime := float64(schedule.BeaconTime)
	sim.Every(superframe, superframe, func() {
		for _, st := range s.states {
			if st.dead {
				continue
			}
			// Continuous drain (sensing + ISA + sleep floor) plus the
			// beacon cost debits the battery in DrainBattery mode.
			syncE := st.cfg.Radio.ActiveRX.Times(units.Duration(beaconTime)) +
				st.cfg.Radio.WakeEnergy
			cont := st.continuousPower().Times(units.Duration(superframe.Seconds()))
			if !st.drain(cont+syncE, sim.Now()) {
				continue
			}
			// Beacon listen: every node wakes and receives the beacon.
			st.stats.SyncEnergy += syncE
			slot := schedule.SlotFor(st.cfg.ID)
			if slot == nil {
				continue
			}
			budget := slot.CapacityBits
			for st.queue.len() > 0 && budget >= int64(st.cfg.PacketBits) {
				p := st.queue.pop()
				budget -= int64(st.cfg.PacketBits)
				air := st.cfg.Radio.TimeOnAir(st.cfg.PacketBits)
				txE := st.cfg.Radio.ActiveTX.Times(air)
				if !st.drain(txE, sim.Now()) {
					break
				}
				st.stats.TxEnergy += txE
				st.airTime += air
				st.stats.Transmissions++
				if sim.Rand().Float64() >= st.effPER {
					// Delivered.
					lat := units.Duration((sim.Now() - p.created).Seconds())
					st.latencies = append(st.latencies, lat)
					st.stats.PacketsDelivered++
					st.stats.BitsDelivered += int64(st.cfg.PacketBits)
					report.HubRxBits += int64(st.cfg.PacketBits)
					report.HubRxEnergy += st.cfg.Radio.ActiveRX.Times(air)
					// Assemble inference input windows and dispatch to
					// the hub NPU queue.
					if spec := st.cfg.Inference; spec != nil {
						if st.windowBits == 0 {
							st.windowStart = p.created
						}
						st.windowBits += int64(st.cfg.PacketBits)
						for st.windowBits >= spec.InputBits {
							st.windowBits -= spec.InputBits
							done := hub.enqueue(sim.Now(), st.windowStart, spec.MACs)
							e2e := units.Duration((done - st.windowStart).Seconds())
							st.infLat = append(st.infLat, e2e)
							st.stats.Inferences++
							st.windowStart = sim.Now()
						}
					}
					continue
				}
				// Failed: selective-repeat ARQ — requeue at the back (or
				// drop past the retry budget) and keep draining the slot.
				p.retries++
				if p.retries > st.cfg.MaxRetries {
					st.stats.PacketsDropped++
					continue
				}
				st.queue.push(p)
			}
		}
	})

	// Harvesting: sample each harvester once per simulated second.
	for _, st := range s.states {
		st := st
		if st.cfg.Harvester == nil {
			continue
		}
		sim.Every(desim.Second, desim.Second, func() {
			e := st.cfg.Harvester.Sample(sim.Rand()).Times(units.Second)
			st.stats.Harvested += e
			if st.battState != nil && !st.dead {
				st.battState.Recharge(e)
			}
		})
	}

	end := desim.FromSeconds(float64(span))
	sim.RunUntil(end)
	report.Duration = span
	report.Events = sim.Executed()

	// Close the books: continuous power components over each node's
	// lifespan (the full span, or until battery death).
	report.Nodes = make([]NodeStats, 0, len(s.states))
	for _, st := range s.states {
		stats := &st.stats
		life := span
		if st.dead {
			stats.Died = true
			stats.DiedAt = units.Duration(st.diedAt.Seconds())
			life = stats.DiedAt
		}
		stats.SenseEnergy = st.cfg.Sensor.AFEPower.Times(life)
		stats.ISAEnergy = st.cfg.Policy.ComputePower().Times(life)
		sleepSpan := life - st.airTime
		if sleepSpan < 0 {
			sleepSpan = 0
		}
		stats.SleepEnergy = st.cfg.Radio.Sleep.Times(sleepSpan)

		stats.AvgPower = stats.TotalEnergy().At(life)
		stats.ProjectedLife = st.cfg.Battery.Lifetime(stats.AvgPower)
		if st.dead && stats.DiedAt < stats.ProjectedLife {
			stats.ProjectedLife = stats.DiedAt
		}
		harvestPower := stats.Harvested.At(life)
		stats.Perpetual = stats.ProjectedLife >= energy.PerpetualLife || harvestPower >= stats.AvgPower

		// Latency percentiles.
		if len(st.latencies) > 0 {
			sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
			stats.LatencyP50 = st.latencies[len(st.latencies)/2]
			stats.LatencyP99 = st.latencies[(len(st.latencies)*99)/100]
		}
		if len(st.infLat) > 0 {
			sort.Slice(st.infLat, func(i, j int) bool { return st.infLat[i] < st.infLat[j] })
			stats.InferenceP50 = st.infLat[len(st.infLat)/2]
			stats.InferenceP99 = st.infLat[(len(st.infLat)*99)/100]
		}
		report.Nodes = append(report.Nodes, *stats)
	}
	report.HubComputeEnergy = hub.energy
	report.HubUtilization = units.Clamp(hub.busyTotal.Seconds()/float64(span), 0, 1)
	return report, nil
}
