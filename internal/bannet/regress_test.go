package bannet

// Regression and reuse tests for the Sim refactor: pinned event/traffic
// counts guard replayability (a change to event ordering or RNG
// consumption shows up here before it silently shifts every figure), and
// the reuse tests guard that a recycled Sim behaves exactly like a fresh
// one.

import (
	"reflect"
	"testing"

	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// regressConfig is the fixed scenario the pinned values below replay.
func regressConfig() Config {
	return Config{Seed: 42, Nodes: []NodeConfig{
		{ID: 1, Name: "ecg", Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.05, MaxRetries: 5},
		{ID: 2, Name: "imu", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.BLE42(), Battery: energy.CR2032(),
			PacketBits: 1024, PER: 0.1, MaxRetries: 3},
	}}
}

// TestRunPinnedRegression pins exact counters for a fixed seed. These
// values are part of the determinism contract: if this test fails, the
// change altered event ordering or RNG consumption and breaks replay of
// every recorded fleet fingerprint — that needs to be deliberate, not
// incidental.
func TestRunPinnedRegression(t *testing.T) {
	rep, err := Run(regressConfig(), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 80295 {
		t.Errorf("Events = %d, want 80295", rep.Events)
	}
	wantBits := map[string]int64{"ecg": 10799104, "imu": 34555904}
	wantTx := map[string]int64{"ecg": 11152, "imu": 37503}
	for _, n := range rep.Nodes {
		if n.BitsDelivered != wantBits[n.Name] {
			t.Errorf("%s BitsDelivered = %d, want %d", n.Name, n.BitsDelivered, wantBits[n.Name])
		}
		if n.Transmissions != wantTx[n.Name] {
			t.Errorf("%s Transmissions = %d, want %d", n.Name, n.Transmissions, wantTx[n.Name])
		}
	}
}

// TestSimReuse runs one Sim three times and demands byte-identical
// reports: reset must clear every piece of carried state (queues, stats,
// latency buffers, hub server, batteries).
func TestSimReuse(t *testing.T) {
	sim, err := NewSim(regressConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := sim.Run(units.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("rerun %d diverged from first run", i+2)
		}
	}
}

// TestSimReuseMatchesFreshRun checks the reusable path against the
// one-shot wrapper, including with battery drain enabled (battState must
// be refilled between runs).
func TestSimReuseMatchesFreshRun(t *testing.T) {
	cfg := regressConfig()
	for i := range cfg.Nodes {
		cfg.Nodes[i].DrainBattery = true
	}
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(30 * units.Minute); err != nil { // dirty the state
		t.Fatal(err)
	}
	reused, err := sim.Run(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(cfg, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// The wrapper builds its own schedule; compare everything else.
	reused.Schedule, fresh.Schedule = nil, nil
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("reused Sim diverged from fresh Run:\nfresh  %+v\nreused %+v", fresh, reused)
	}
}

// TestSimSetSeed verifies seeds actually steer the replayed randomness.
func TestSimSetSeed(t *testing.T) {
	sim, err := NewSim(regressConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Run(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetSeed(43)
	b, err := sim.Run(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[1].Transmissions == b.Nodes[1].Transmissions {
		t.Errorf("seed change did not perturb retransmissions (%d)", a.Nodes[1].Transmissions)
	}
	sim.SetSeed(42)
	c, err := sim.Run(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("restoring the seed did not restore the run")
	}
}

// TestPacketQueue exercises the ring buffer through growth and
// wraparound, where the head is mid-buffer when a grow copies it out.
func TestPacketQueue(t *testing.T) {
	var q packetQueue
	seq := 0
	popped := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.push(packet{retries: seq})
			seq++
		}
		for i := 0; i < 5; i++ {
			if got := q.pop().retries; got != popped {
				t.Fatalf("pop = %d, want %d", got, popped)
			}
			popped++
		}
	}
	if q.len() != seq-popped {
		t.Fatalf("len = %d, want %d", q.len(), seq-popped)
	}
	for q.len() > 0 {
		if got := q.pop().retries; got != popped {
			t.Fatalf("drain pop = %d, want %d", got, popped)
		}
		popped++
	}
	if popped != seq {
		t.Fatalf("popped %d of %d pushed", popped, seq)
	}
	q.reset()
	if q.len() != 0 {
		t.Fatal("reset left elements")
	}
}

// TestSimArenaSteadyStateZeroAlloc pins the zero-allocation kernel
// contract: once a Sim's arena has warmed to a configuration family's
// high-water shape, a Reset–RunInto cycle — the fleet engine's per-wearer
// hot path — performs no heap allocation. A regression here means some
// per-wearer churn crept back into the kernel (event arena, node states,
// schedule, report buffers) and the fleet throughput numbers in
// BENCH_fleet.json no longer hold.
func TestSimArenaSteadyStateZeroAlloc(t *testing.T) {
	big := regressConfig()
	small := regressConfig()
	small.Nodes = small.Nodes[:1]
	sim, err := NewSim(big)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	seed := int64(0)
	cycle := func() {
		// Alternate shapes so the arena's resize path is exercised, and
		// vary the seed the way the fleet engine does.
		cfg := big
		if seed%2 == 0 {
			cfg = small
		}
		cfg.Seed = seed
		seed++
		if err := sim.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunInto(10*units.Second, &rep); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the arena: queues, latency buffers and the event freelist grow
	// to their steady-state capacity within a few runs.
	for i := 0; i < 4; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("steady-state Reset+RunInto allocates %.1f times per cycle, want 0", avg)
	}
}
