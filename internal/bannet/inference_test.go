package bannet

import (
	"math"
	"testing"

	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// kwsNode builds an audio node whose stream drives hub-side keyword
// spotting: 3920-bit inputs (49×10 int8 features), 2.55 M MACs each.
func kwsNode(t *testing.T) NodeConfig {
	t.Helper()
	m, err := nn.KWSNet(1)
	if err != nil {
		t.Fatal(err)
	}
	return NodeConfig{
		ID: 1, Name: "kws-mic",
		Sensor: sensors.MicMono(),
		Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
		Radio:  radio.WiR(), Battery: energy.Fig3Battery(),
		PacketBits: 1960, PER: 0.01, MaxRetries: 5,
		Inference: &InferenceSpec{Name: "KWS", MACs: m.TotalMACs(),
			InputBits: 49 * 10 * 8},
	}
}

func TestHubInferencePipeline(t *testing.T) {
	rep, err := Run(Config{Seed: 9, Nodes: []NodeConfig{kwsNode(t)}}, 10*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	// 64 kbps stream / 3920 bits per input ≈ 16.3 inferences/s → ~9800 in
	// 10 minutes (minus pipeline fill).
	if n.Inferences < 9000 || n.Inferences > 10000 {
		t.Errorf("inferences = %d, want ≈ 9800", n.Inferences)
	}
	// End-to-end latency: one input window (~61 ms of audio at 64 kbps)
	// plus up to a superframe of slot wait plus ~0.26 ms of NPU time.
	// P50 in 50–400 ms, and always above the packet latency.
	if n.InferenceP50 < 50*units.Millisecond || n.InferenceP50 > 400*units.Millisecond {
		t.Errorf("inference p50 = %v, want 50–400 ms", n.InferenceP50)
	}
	if n.InferenceP99 < n.InferenceP50 {
		t.Error("p99 below p50")
	}
	if n.InferenceP50 <= n.LatencyP50 {
		t.Error("e2e inference latency must exceed packet latency")
	}
	// Hub energy: count × MACs × 8 pJ.
	m, _ := nn.KWSNet(1)
	wantE := float64(n.Inferences) * float64(m.TotalMACs()) * 8e-12
	if math.Abs(float64(rep.HubComputeEnergy)-wantE)/wantE > 1e-9 {
		t.Errorf("hub compute energy %v, want %.3g J", rep.HubComputeEnergy, wantE)
	}
	// Utilization: 16.3/s × 0.255 ms ≈ 0.42%.
	if rep.HubUtilization <= 0 || rep.HubUtilization > 0.02 {
		t.Errorf("hub utilization %.4f implausible", rep.HubUtilization)
	}
}

func TestHubSaturation(t *testing.T) {
	// A slow hub (embedded MCU standing in as the "brain") saturates on
	// the same stream: utilization pins near 1 and latencies blow up.
	n := kwsNode(t)
	slow := &partition.Platform{Name: "slow hub", EnergyPerMAC: 30 * units.Picojoule,
		MACRate: 30e6, IdlePower: 0}
	// 16.3 inf/s × 2.55 MMAC / 30 MMAC/s = 1.39 > 1: overload.
	rep, err := Run(Config{Seed: 10, Nodes: []NodeConfig{n}, HubCompute: slow}, 2*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HubUtilization < 0.95 {
		t.Errorf("overloaded hub utilization %.2f, want ≈ 1", rep.HubUtilization)
	}
	st := &rep.Nodes[0]
	// The backlog grows linearly in an overloaded deterministic queue, so
	// latencies are ~uniform over [0, max]: p99 ≈ 2×p50, both enormous.
	if st.InferenceP99 < units.Duration(1.5*float64(st.InferenceP50)) {
		t.Errorf("saturated queue: p99 %v should dwarf p50 %v", st.InferenceP99, st.InferenceP50)
	}
	if st.InferenceP50 < 500*units.Millisecond {
		t.Errorf("saturated p50 %v implausibly low", st.InferenceP50)
	}
}

func TestInferenceSpecValidation(t *testing.T) {
	n := kwsNode(t)
	n.Inference = &InferenceSpec{Name: "bad", MACs: 0, InputBits: 100}
	if _, err := Run(Config{Nodes: []NodeConfig{n}}, units.Minute); err == nil {
		t.Error("zero-MAC inference spec should fail")
	}
	n.Inference = &InferenceSpec{Name: "bad", MACs: 100, InputBits: 0}
	if _, err := Run(Config{Nodes: []NodeConfig{n}}, units.Minute); err == nil {
		t.Error("zero-input inference spec should fail")
	}
}

func TestNoInferenceNoHubCompute(t *testing.T) {
	n := kwsNode(t)
	n.Inference = nil
	rep, err := Run(Config{Seed: 11, Nodes: []NodeConfig{n}}, units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HubComputeEnergy != 0 || rep.HubUtilization != 0 {
		t.Error("no inference spec should mean no hub compute")
	}
	if rep.Nodes[0].Inferences != 0 {
		t.Error("no inferences expected")
	}
}

func TestInferenceDeterminism(t *testing.T) {
	mk := func() Config { return Config{Seed: 12, Nodes: []NodeConfig{kwsNode(t)}} }
	a, err := Run(mk(), 5*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(), 5*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[0].Inferences != b.Nodes[0].Inferences ||
		a.Nodes[0].InferenceP99 != b.Nodes[0].InferenceP99 ||
		a.HubComputeEnergy != b.HubComputeEnergy {
		t.Error("inference pipeline not deterministic")
	}
}
