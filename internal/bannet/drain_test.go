package bannet

import (
	"math"
	"testing"

	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// tinyBattery returns a cell holding only the given joules (usable).
func tinyBattery(joules float64) *energy.Battery {
	// mAh = J / (V × 3.6) / usable.
	return &energy.Battery{
		Name:           "tiny test cell",
		CapacityMAh:    joules / (3 * 3.6),
		Voltage:        3 * units.Volt,
		UsableFraction: 1.0,
		ShelfLife:      10 * units.Year,
	}
}

func TestBatteryDeathMidRun(t *testing.T) {
	// A camera node (~35.5 mW) on a 40 J cell dies after ≈ 1127 s.
	cfg := Config{Seed: 31, Nodes: []NodeConfig{{
		ID: 1, Name: "cam",
		Sensor: sensors.CameraQVGA(),
		Policy: isa.Compress{Label: "MJPEG", MeasuredRatio: 8, Power: 500 * units.Microwatt},
		Radio:  radio.WiR(), Battery: tinyBattery(40),
		PacketBits: 16384, PER: 0.01, MaxRetries: 3,
		DrainBattery: true,
	}}}
	rep, err := Run(cfg, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	if !n.Died {
		t.Fatalf("camera on a 40 J cell should die within the hour (avg %v)", n.AvgPower)
	}
	wantAt := 40 / 35.6e-3 // seconds, first-order
	if math.Abs(float64(n.DiedAt)-wantAt)/wantAt > 0.15 {
		t.Errorf("died at %v, want ≈ %.0f s", n.DiedAt, wantAt)
	}
	if n.ProjectedLife > n.DiedAt {
		t.Error("projected life should be capped at the observed death")
	}
	// Traffic stops at death: generated packets ≈ rate × lifetime.
	rate := float64(n.PacketsGenerated) / float64(n.DiedAt)
	fullRate := float64(1.15e6) / 16384 // ≈ 70 packets/s
	if math.Abs(rate-fullRate)/fullRate > 0.1 {
		t.Errorf("generation rate %.1f/s over lifetime, want ≈ %.1f/s", rate, fullRate)
	}
	if n.Perpetual {
		t.Error("a dead node cannot be perpetual")
	}
}

func TestDrainModeMatchesExtrapolation(t *testing.T) {
	// For a node that survives the run, DrainBattery must not change the
	// energy accounting (within the superframe-quantization of the drain).
	mk := func(drain bool) Config {
		return Config{Seed: 32, Nodes: []NodeConfig{{
			ID: 1, Name: "ecg", Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.01, MaxRetries: 5,
			DrainBattery: drain,
		}}}
	}
	a, err := Run(mk(false), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(true), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := &a.Nodes[0], &b.Nodes[0]
	if nb.Died {
		t.Fatal("ECG node on 1000 mAh died within an hour")
	}
	if na.PacketsDelivered != nb.PacketsDelivered {
		t.Error("drain mode changed traffic")
	}
	ra := float64(na.AvgPower)
	rb := float64(nb.AvgPower)
	if math.Abs(ra-rb)/ra > 1e-6 {
		t.Errorf("drain mode changed books: %v vs %v", na.AvgPower, nb.AvgPower)
	}
}

func TestHarvestingDefersDeath(t *testing.T) {
	// An IMU node (~32 µW) on a 0.05 J cell: dead in ~26 min unharvested;
	// indoor PV (typ 50 µW ≳ the load) keeps it alive all hour.
	mk := func(h *energy.Harvester) Config {
		return Config{Seed: 33, Nodes: []NodeConfig{{
			ID: 1, Name: "imu", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: tinyBattery(0.05), Harvester: h,
			PacketBits: 1024, PER: 0.01, MaxRetries: 3,
			DrainBattery: true,
		}}}
	}
	bare, err := Run(mk(nil), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	harvested, err := Run(mk(energy.IndoorPV()), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !bare.Nodes[0].Died {
		t.Fatal("unharvested 0.05 J IMU node should die within the hour")
	}
	if harvested.Nodes[0].Died {
		t.Errorf("indoor-PV IMU node died at %v despite energy-neutral harvest",
			harvested.Nodes[0].DiedAt)
	}
}

func TestDeadNodeStopsConsumingMedium(t *testing.T) {
	// After one node dies, the other keeps its delivery rate (slots are
	// static, so this checks the dead node simply vanishes from the air).
	cfg := Config{Seed: 34, Nodes: []NodeConfig{
		{
			ID: 1, Name: "dying", Sensor: sensors.MicMono(),
			Policy: isa.StreamAll{}, Radio: radio.WiR(), Battery: tinyBattery(0.5),
			PacketBits: 4096, PER: 0.01, MaxRetries: 3, DrainBattery: true,
		},
		{
			ID: 2, Name: "healthy", Sensor: sensors.ECGPatch(),
			Policy: isa.StreamAll{}, Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.01, MaxRetries: 3,
		},
	}}
	rep, err := Run(cfg, 30*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	dying := rep.NodeByName("dying")
	healthy := rep.NodeByName("healthy")
	if !dying.Died {
		t.Fatal("mic node on 0.5 J should die")
	}
	if healthy.DeliveryRate() < 0.99 {
		t.Errorf("healthy node delivery %.3f degraded by peer death", healthy.DeliveryRate())
	}
	// The dying node's traffic is consistent with its shortened life.
	if dying.PacketsGenerated == 0 || float64(dying.DiedAt) > 29*60 {
		t.Errorf("death bookkeeping implausible: died at %v", dying.DiedAt)
	}
}
