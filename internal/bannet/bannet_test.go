package bannet

import (
	"math"
	"testing"

	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// ecgNode builds an ECG patch node on the given transceiver.
func ecgNode(id int, name string, tr *radio.Transceiver) NodeConfig {
	return NodeConfig{
		ID: id, Name: name,
		Sensor:     sensors.ECGPatch(),
		Policy:     isa.StreamAll{},
		Radio:      tr,
		Battery:    energy.Fig3Battery(),
		PacketBits: 1024,
		PER:        0.01,
		MaxRetries: 5,
	}
}

func TestWiRECGNodeIsPerpetual(t *testing.T) {
	// The paper's headline: a biopotential node streaming over Wi-R lives
	// in the perpetual region (> 1 year on 1000 mAh).
	rep, err := Run(Config{Seed: 1, Nodes: []NodeConfig{ecgNode(1, "ecg-wir", radio.WiR())}},
		units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n := rep.NodeByName("ecg-wir")
	if n == nil {
		t.Fatal("node missing from report")
	}
	if n.AvgPower > 50*units.Microwatt {
		t.Errorf("Wi-R ECG node avg power = %v, want µW class", n.AvgPower)
	}
	if !n.Perpetual {
		t.Errorf("Wi-R ECG node not perpetual (life %v)", n.ProjectedLife)
	}
	if n.DeliveryRate() < 0.99 {
		t.Errorf("delivery rate %.3f, want ≈ 1", n.DeliveryRate())
	}
}

func TestWiRBeatsBLEOnSameWorkload(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: []NodeConfig{
		ecgNode(1, "ecg-wir", radio.WiR()),
		ecgNode(2, "ecg-ble", radio.BLE42()),
	}}
	rep, err := Run(cfg, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	wir := rep.NodeByName("ecg-wir")
	ble := rep.NodeByName("ecg-ble")
	ratio := float64(ble.AvgPower) / float64(wir.AvgPower)
	if ratio < 5 {
		t.Errorf("BLE/WiR node power ratio = %.1f (BLE %v, WiR %v), want ≥ 5",
			ratio, ble.AvgPower, wir.AvgPower)
	}
	if ble.ProjectedLife >= wir.ProjectedLife {
		t.Error("BLE node should have shorter projected life")
	}
}

func TestTrafficAccountingIdentity(t *testing.T) {
	cfg := Config{Seed: 3, Nodes: []NodeConfig{
		{
			ID: 1, Name: "lossy",
			Sensor:     sensors.MicMono(),
			Policy:     isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
			Radio:      radio.WiR(),
			Battery:    energy.CR2032(),
			PacketBits: 4096,
			PER:        0.3,
			MaxRetries: 2,
		},
	}}
	rep, err := Run(cfg, 10*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	if n.PacketsGenerated == 0 {
		t.Fatal("no traffic generated")
	}
	// Delivered + dropped + still-queued == generated; we can't see the
	// queue here, so delivered+dropped must not exceed generated and must
	// cover most of it after 10 minutes.
	done := n.PacketsDelivered + n.PacketsDropped
	if done > n.PacketsGenerated {
		t.Errorf("delivered %d + dropped %d exceeds generated %d",
			n.PacketsDelivered, n.PacketsDropped, n.PacketsGenerated)
	}
	if float64(done) < 0.95*float64(n.PacketsGenerated) {
		t.Errorf("only %d of %d packets resolved", done, n.PacketsGenerated)
	}
	// With PER 0.3 there must be retries: attempts strictly exceed
	// delivered+dropped.
	if n.Transmissions <= done {
		t.Errorf("transmissions %d should exceed resolved packets %d", n.Transmissions, done)
	}
	// Some loss must occur with only 2 retries at PER 0.3.
	if n.PacketsDropped == 0 {
		t.Error("expected drops at PER 0.3 with 2 retries")
	}
	if rep.HubRxBits != n.BitsDelivered {
		t.Errorf("hub bits %d ≠ delivered bits %d", rep.HubRxBits, n.BitsDelivered)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	rep, err := Run(Config{Seed: 4, Nodes: []NodeConfig{ecgNode(1, "ecg", radio.WiR())}},
		30*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	if n.LatencyP50 <= 0 || n.LatencyP99 < n.LatencyP50 {
		t.Errorf("latency percentiles inconsistent: p50 %v p99 %v", n.LatencyP50, n.LatencyP99)
	}
	// A packet waits at most ~one superframe plus queueing: p50 under
	// 500 ms for a lightly loaded 100 ms superframe.
	if n.LatencyP50 > 500*units.Millisecond {
		t.Errorf("p50 latency %v implausibly high", n.LatencyP50)
	}
}

func TestDeterministicReplay(t *testing.T) {
	mk := func() Config {
		return Config{Seed: 42, Nodes: []NodeConfig{
			ecgNode(1, "a", radio.WiR()),
			{
				ID: 2, Name: "b",
				Sensor:     sensors.IMU6Axis(),
				Policy:     isa.StreamAll{},
				Radio:      radio.WiR(),
				Battery:    energy.CR2032(),
				Harvester:  energy.IndoorPV(),
				PacketBits: 1024,
				PER:        0.05,
				MaxRetries: 3,
			},
		}}
	}
	a, err := Run(mk(), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(), units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.PacketsDelivered != y.PacketsDelivered || x.Transmissions != y.Transmissions ||
			x.TotalEnergy() != y.TotalEnergy() || x.Harvested != y.Harvested {
			t.Fatalf("same seed diverged on node %s", x.Name)
		}
	}
	c, _ := Run(Config{Seed: 43, Nodes: mk().Nodes}, units.Hour)
	if c.Nodes[1].Harvested == a.Nodes[1].Harvested {
		t.Error("different seeds produced identical harvest")
	}
}

func TestHarvestedNodeEnergyNeutral(t *testing.T) {
	// An IMU node under indoor PV: consumption ~30-40 µW vs typ 50 µW
	// harvest → energy-neutral (perpetual even without the 1-year rule).
	cfg := Config{Seed: 5, Nodes: []NodeConfig{{
		ID: 1, Name: "imu-harvested",
		Sensor:     sensors.IMU6Axis(),
		Policy:     isa.StreamAll{},
		Radio:      radio.WiR(),
		Battery:    energy.CR2032(),
		Harvester:  energy.IndoorPV(),
		PacketBits: 1024,
		PER:        0.01,
		MaxRetries: 3,
	}}}
	rep, err := Run(cfg, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	if !n.Perpetual {
		t.Errorf("harvested IMU node not perpetual: power %v, harvested %v over %v",
			n.AvgPower, n.Harvested, rep.Duration)
	}
	if n.Harvested <= 0 {
		t.Error("no energy harvested")
	}
}

func TestEnergyBreakdownSensible(t *testing.T) {
	rep, err := Run(Config{Seed: 6, Nodes: []NodeConfig{ecgNode(1, "ecg", radio.WiR())}},
		units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	// For a 3 kbps node on Wi-R, sensing dominates communication.
	comm := n.TxEnergy + n.SyncEnergy + n.SleepEnergy
	if comm >= n.SenseEnergy {
		t.Errorf("comm energy %v should be below sensing %v on Wi-R", comm, n.SenseEnergy)
	}
	// Nothing is free.
	if n.SenseEnergy <= 0 || n.TxEnergy <= 0 || n.SyncEnergy <= 0 {
		t.Error("energy components missing")
	}
	want := float64(n.SenseEnergy + n.ISAEnergy + n.TxEnergy + n.SyncEnergy + n.SleepEnergy)
	if math.Abs(float64(n.TotalEnergy())-want) > 1e-12 {
		t.Error("TotalEnergy does not sum components")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, units.Hour); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := Run(Config{Nodes: []NodeConfig{{Name: "x"}}}, units.Hour); err == nil {
		t.Error("incomplete node should fail")
	}
	n := ecgNode(1, "bad-per", radio.WiR())
	n.PER = 1.0
	if _, err := Run(Config{Nodes: []NodeConfig{n}}, units.Hour); err == nil {
		t.Error("PER=1 should fail")
	}
	over := NodeConfig{
		ID: 1, Name: "fast",
		Sensor:     sensors.Camera720p(), // 221 Mbps raw
		Policy:     isa.StreamAll{},
		Radio:      radio.WiR(),
		Battery:    energy.Fig3Battery(),
		PacketBits: 16384,
	}
	if _, err := Run(Config{Nodes: []NodeConfig{over}}, units.Hour); err == nil {
		t.Error("rate beyond goodput should fail")
	}
	if _, err := Run(Config{Nodes: []NodeConfig{ecgNode(1, "x", radio.WiR())}}, 0); err == nil {
		t.Error("zero span should fail")
	}
}

func TestMultiNodeScheduleSharing(t *testing.T) {
	// Four heterogeneous nodes share the 4 Mbps medium; all must deliver.
	cfg := Config{Seed: 7, Nodes: []NodeConfig{
		ecgNode(1, "ecg", radio.WiR()),
		{
			ID: 2, Name: "imu", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.CR2032(), PacketBits: 1024, PER: 0.02, MaxRetries: 3,
		},
		{
			ID: 3, Name: "mic", Sensor: sensors.MicMono(),
			Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
			Radio:  radio.WiR(), Battery: energy.Fig3Battery(), PacketBits: 4096, PER: 0.02, MaxRetries: 3,
		},
		{
			ID: 4, Name: "cam", Sensor: sensors.CameraQVGA(),
			Policy: isa.Compress{Label: "MJPEG q50", MeasuredRatio: 8, Power: 500 * units.Microwatt},
			Radio:  radio.WiR(), Battery: energy.LiPo(300), PacketBits: 16384, PER: 0.02, MaxRetries: 3,
		},
	}}
	rep, err := Run(cfg, 10*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedule.Utilization() >= 1 {
		t.Errorf("schedule utilization %.2f ≥ 1", rep.Schedule.Utilization())
	}
	for _, n := range rep.Nodes {
		if n.DeliveryRate() < 0.95 {
			t.Errorf("%s: delivery %.3f, want ≥ 0.95", n.Name, n.DeliveryRate())
		}
	}
	// The camera node's life is sensor-bound, far below the ECG node's.
	cam := rep.NodeByName("cam")
	ecg := rep.NodeByName("ecg")
	if cam.ProjectedLife >= ecg.ProjectedLife {
		t.Error("camera node should die long before ECG node")
	}
	if rep.NodeByName("nope") != nil {
		t.Error("unknown node lookup should be nil")
	}
}

// TestCollisionPERDegradesLinkButNotSchedule: co-channel collision loss
// (cross-wearer interference the TDMA scheduler cannot see) must cut
// delivery and raise retransmissions at every attempt, while leaving the
// schedule — which is provisioned from the link PER alone — untouched.
func TestCollisionPERDegradesLinkButNotSchedule(t *testing.T) {
	quiet := ecgNode(1, "ecg", radio.BLE42())
	crowded := quiet
	crowded.CollisionPER = 0.6

	simQ, err := NewSim(Config{Seed: 31, Nodes: []NodeConfig{quiet}})
	if err != nil {
		t.Fatal(err)
	}
	simC, err := NewSim(Config{Seed: 31, Nodes: []NodeConfig{crowded}})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := simQ.Schedule().SlotFor(1), simC.Schedule().SlotFor(1); a.CapacityBits != b.CapacityBits {
		t.Fatalf("collision PER leaked into TDMA provisioning: slot %d vs %d bits",
			a.CapacityBits, b.CapacityBits)
	}

	repQ, err := simQ.Run(10 * units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	repC, err := simC.Run(10 * units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	q, c := repQ.NodeByName("ecg"), repC.NodeByName("ecg")
	if c.DeliveryRate() >= q.DeliveryRate() {
		t.Errorf("delivery under 60%% collisions (%.3f) not below quiet channel (%.3f)",
			c.DeliveryRate(), q.DeliveryRate())
	}
	if c.Transmissions <= q.Transmissions {
		t.Errorf("collisions should force retransmissions: %d attempts vs %d quiet",
			c.Transmissions, q.Transmissions)
	}
	if c.TxEnergy <= q.TxEnergy {
		t.Errorf("retransmissions should cost energy: %v vs %v", c.TxEnergy, q.TxEnergy)
	}
}

// TestCollisionPERValidation: the combined loss domain is guarded like
// PER itself.
func TestCollisionPERValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		n := ecgNode(1, "x", radio.WiR())
		n.CollisionPER = bad
		if _, err := Run(Config{Nodes: []NodeConfig{n}}, units.Hour); err == nil {
			t.Errorf("CollisionPER=%v accepted", bad)
		}
	}
}
