// Package bannet is the discrete-event body-area-network simulator: the
// integration substrate where the channel, PHY, MAC, radio, sensor, ISA
// and energy models meet.
//
// A simulation owns one hub and a set of leaf nodes. Each node samples its
// sensor continuously, reduces the stream through its ISA policy,
// packetizes the result, and transmits during its TDMA slot; packets fail
// with the link's packet-error rate and are retransmitted in later
// superframes up to a retry budget. Every joule is attributed — sensing,
// ISA compute, radio transmit, beacon synchronization, sleep floor,
// harvesting — so a simulated hour extrapolates to the battery-life
// numbers the paper's figures plot.
package bannet

import (
	"fmt"

	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/mac"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// NodeConfig describes one leaf node.
type NodeConfig struct {
	// ID must be unique; it doubles as the TDMA demand identity.
	ID int
	// Name labels the node in reports.
	Name string
	// Sensor is the node's front-end.
	Sensor *sensors.Sensor
	// Policy reduces the raw stream before the link (StreamAll for a dumb
	// node).
	Policy isa.Policy
	// Radio is the node's transceiver model.
	Radio *radio.Transceiver
	// Battery powers the node.
	Battery *energy.Battery
	// Harvester, if non-nil, recharges the battery.
	Harvester *energy.Harvester
	// PacketBits is the node's framing quantum.
	PacketBits int
	// PER is the link packet error rate (from the PHY link budget).
	PER float64
	// CollisionPER is additional per-attempt loss from co-channel
	// interference outside this network's control — cross-wearer
	// collisions in a shared unlicensed band (see internal/spectrum).
	// It combines with PER as 1−(1−PER)·(1−CollisionPER) at every
	// transmission attempt but does not enter TDMA slot provisioning:
	// the intra-BAN scheduler cannot see other bodies' traffic, which is
	// exactly why dense RF deployments degrade.
	CollisionPER float64
	// MaxRetries bounds retransmissions before a packet is dropped.
	MaxRetries int
	// Inference, if non-nil, attaches an offloaded AI task to the node's
	// stream: every InputBits of delivered payload forms one inference
	// job on the hub.
	Inference *InferenceSpec
	// DrainBattery, when true, debits the node's battery during the run
	// and kills the node when it empties (failure injection for
	// short-battery scenarios). When false the battery only scales the
	// ProjectedLife extrapolation.
	DrainBattery bool
}

// InferenceSpec describes an offloaded DNN task.
type InferenceSpec struct {
	// Name labels the task.
	Name string
	// MACs is the hub-side cost per inference.
	MACs int64
	// InputBits is the delivered payload per inference input.
	InputBits int64
}

// Config describes a simulation.
type Config struct {
	// Seed drives all randomness (packet errors, harvester variation).
	Seed int64
	// TDMA describes the shared-medium schedule (DefaultTDMA if nil).
	TDMA *mac.TDMA
	// Nodes are the leaf nodes.
	Nodes []NodeConfig
	// HubCompute is the hub's inference platform (partition.HubSoC if
	// nil).
	HubCompute *partition.Platform
}

// NodeStats is the per-node outcome of a run.
type NodeStats struct {
	Name string
	// Traffic accounting.
	PacketsGenerated int64
	PacketsDelivered int64
	PacketsDropped   int64
	Transmissions    int64 // attempts, including retries
	BitsDelivered    int64
	// Energy breakdown over the simulated span.
	SenseEnergy units.Energy
	ISAEnergy   units.Energy
	TxEnergy    units.Energy
	SyncEnergy  units.Energy
	SleepEnergy units.Energy
	Harvested   units.Energy
	// AvgPower is net consumption averaged over the run.
	AvgPower units.Power
	// ProjectedLife extrapolates the node's battery at AvgPower.
	ProjectedLife units.Duration
	// Perpetual reports the paper's criterion: > 1 year projected life or
	// harvest covering consumption.
	Perpetual bool
	// Latency percentiles over delivered packets (creation → delivery).
	LatencyP50, LatencyP99 units.Duration
	// Inference accounting (when the node carries an InferenceSpec):
	// end-to-end latency runs from the first sample of an input window to
	// hub-side inference completion.
	Inferences                 int64
	InferenceP50, InferenceP99 units.Duration
	// Died reports battery exhaustion during the run (only with
	// DrainBattery); DiedAt is the death time from simulation start.
	Died   bool
	DiedAt units.Duration
}

// TotalEnergy sums the consumption components.
func (s *NodeStats) TotalEnergy() units.Energy {
	return s.SenseEnergy + s.ISAEnergy + s.TxEnergy + s.SyncEnergy + s.SleepEnergy
}

// DeliveryRate is delivered/generated (1 for an idle node).
func (s *NodeStats) DeliveryRate() float64 {
	if s.PacketsGenerated == 0 {
		return 1
	}
	return float64(s.PacketsDelivered) / float64(s.PacketsGenerated)
}

// Report is the outcome of a run.
type Report struct {
	Duration  units.Duration
	Nodes     []NodeStats
	HubRxBits int64
	// HubRxEnergy is the hub's receive-side energy (charged to the hub's
	// daily-charged battery).
	HubRxEnergy units.Energy
	// HubComputeEnergy is the hub-side inference energy.
	HubComputeEnergy units.Energy
	// HubUtilization is the fraction of the span the hub NPU was busy.
	HubUtilization float64
	Schedule       *mac.Schedule
	Events         uint64
}

// Run simulates the network for the given span and returns the report.
// It is shorthand for NewSim followed by a single Sim.Run; callers that
// replay a scenario repeatedly should hold the Sim and call Run on it to
// reuse the validated schedule and preallocated buffers.
func Run(cfg Config, span units.Duration) (*Report, error) {
	if span <= 0 {
		return nil, fmt.Errorf("bannet: non-positive span")
	}
	sim, err := NewSim(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(span)
}

// NodeByName returns the stats for a named node, or nil.
func (r *Report) NodeByName(name string) *NodeStats {
	for i := range r.Nodes {
		if r.Nodes[i].Name == name {
			return &r.Nodes[i]
		}
	}
	return nil
}
