// Package bannet is the discrete-event body-area-network simulator: the
// integration substrate where the channel, PHY, MAC, radio, sensor, ISA
// and energy models meet.
//
// A simulation owns one hub and a set of leaf nodes. Each node samples its
// sensor continuously, reduces the stream through its ISA policy,
// packetizes the result, and transmits during its TDMA slot; packets fail
// with the link's packet-error rate and are retransmitted in later
// superframes up to a retry budget. Every joule is attributed — sensing,
// ISA compute, radio transmit, beacon synchronization, sleep floor,
// harvesting — so a simulated hour extrapolates to the battery-life
// numbers the paper's figures plot.
package bannet

import (
	"fmt"
	"sort"

	"wiban/internal/desim"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/mac"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// NodeConfig describes one leaf node.
type NodeConfig struct {
	// ID must be unique; it doubles as the TDMA demand identity.
	ID int
	// Name labels the node in reports.
	Name string
	// Sensor is the node's front-end.
	Sensor *sensors.Sensor
	// Policy reduces the raw stream before the link (StreamAll for a dumb
	// node).
	Policy isa.Policy
	// Radio is the node's transceiver model.
	Radio *radio.Transceiver
	// Battery powers the node.
	Battery *energy.Battery
	// Harvester, if non-nil, recharges the battery.
	Harvester *energy.Harvester
	// PacketBits is the node's framing quantum.
	PacketBits int
	// PER is the link packet error rate (from the PHY link budget).
	PER float64
	// MaxRetries bounds retransmissions before a packet is dropped.
	MaxRetries int
	// Inference, if non-nil, attaches an offloaded AI task to the node's
	// stream: every InputBits of delivered payload forms one inference
	// job on the hub.
	Inference *InferenceSpec
	// DrainBattery, when true, debits the node's battery during the run
	// and kills the node when it empties (failure injection for
	// short-battery scenarios). When false the battery only scales the
	// ProjectedLife extrapolation.
	DrainBattery bool
}

// InferenceSpec describes an offloaded DNN task.
type InferenceSpec struct {
	// Name labels the task.
	Name string
	// MACs is the hub-side cost per inference.
	MACs int64
	// InputBits is the delivered payload per inference input.
	InputBits int64
}

// Config describes a simulation.
type Config struct {
	// Seed drives all randomness (packet errors, harvester variation).
	Seed int64
	// TDMA describes the shared-medium schedule (DefaultTDMA if nil).
	TDMA *mac.TDMA
	// Nodes are the leaf nodes.
	Nodes []NodeConfig
	// HubCompute is the hub's inference platform (partition.HubSoC if
	// nil).
	HubCompute *partition.Platform
}

// NodeStats is the per-node outcome of a run.
type NodeStats struct {
	Name string
	// Traffic accounting.
	PacketsGenerated int64
	PacketsDelivered int64
	PacketsDropped   int64
	Transmissions    int64 // attempts, including retries
	BitsDelivered    int64
	// Energy breakdown over the simulated span.
	SenseEnergy units.Energy
	ISAEnergy   units.Energy
	TxEnergy    units.Energy
	SyncEnergy  units.Energy
	SleepEnergy units.Energy
	Harvested   units.Energy
	// AvgPower is net consumption averaged over the run.
	AvgPower units.Power
	// ProjectedLife extrapolates the node's battery at AvgPower.
	ProjectedLife units.Duration
	// Perpetual reports the paper's criterion: > 1 year projected life or
	// harvest covering consumption.
	Perpetual bool
	// Latency percentiles over delivered packets (creation → delivery).
	LatencyP50, LatencyP99 units.Duration
	// Inference accounting (when the node carries an InferenceSpec):
	// end-to-end latency runs from the first sample of an input window to
	// hub-side inference completion.
	Inferences                 int64
	InferenceP50, InferenceP99 units.Duration
	// Died reports battery exhaustion during the run (only with
	// DrainBattery); DiedAt is the death time from simulation start.
	Died   bool
	DiedAt units.Duration
}

// TotalEnergy sums the consumption components.
func (s *NodeStats) TotalEnergy() units.Energy {
	return s.SenseEnergy + s.ISAEnergy + s.TxEnergy + s.SyncEnergy + s.SleepEnergy
}

// DeliveryRate is delivered/generated (1 for an idle node).
func (s *NodeStats) DeliveryRate() float64 {
	if s.PacketsGenerated == 0 {
		return 1
	}
	return float64(s.PacketsDelivered) / float64(s.PacketsGenerated)
}

// Report is the outcome of a run.
type Report struct {
	Duration  units.Duration
	Nodes     []NodeStats
	HubRxBits int64
	// HubRxEnergy is the hub's receive-side energy (charged to the hub's
	// daily-charged battery).
	HubRxEnergy units.Energy
	// HubComputeEnergy is the hub-side inference energy.
	HubComputeEnergy units.Energy
	// HubUtilization is the fraction of the span the hub NPU was busy.
	HubUtilization float64
	Schedule       *mac.Schedule
	Events         uint64
}

// packet is one queued transfer unit.
type packet struct {
	created desim.Time
	retries int
}

// nodeState is the runtime state of one node.
type nodeState struct {
	cfg       NodeConfig
	outRate   units.DataRate
	queue     []packet
	stats     NodeStats
	latencies []units.Duration
	airTime   units.Duration // cumulative transmit air time
	// Inference window assembly.
	windowBits  int64
	windowStart desim.Time
	infLat      []units.Duration
	// Battery drain (DrainBattery mode).
	battState *energy.State
	dead      bool
	diedAt    desim.Time
}

// continuousPower is the node's always-on draw: sensing, ISA compute and
// the radio sleep floor.
func (st *nodeState) continuousPower() units.Power {
	return st.cfg.Sensor.AFEPower + st.cfg.Policy.ComputePower() + st.cfg.Radio.Sleep
}

// drain debits the battery in DrainBattery mode and reports whether the
// node is still alive.
func (st *nodeState) drain(e units.Energy, now desim.Time) bool {
	if st.battState == nil || st.dead {
		return !st.dead
	}
	if !st.battState.Draw(e) || st.battState.Depleted() {
		st.dead = true
		st.diedAt = now
	}
	return !st.dead
}

// hubServer is a single-queue deterministic-service inference server.
type hubServer struct {
	platform  *partition.Platform
	busyUntil desim.Time
	busyTotal desim.Time
	energy    units.Energy
}

// enqueue admits a job created at start and returns its completion time.
func (h *hubServer) enqueue(now, start desim.Time, macs int64) desim.Time {
	service := desim.FromSeconds(float64(macs) / h.platform.MACRate)
	begin := now
	if h.busyUntil > begin {
		begin = h.busyUntil
	}
	done := begin + service
	h.busyUntil = done
	h.busyTotal += service
	h.energy += units.Energy(float64(h.platform.EnergyPerMAC) * float64(macs))
	return done
}

// Run simulates the network for the given span and returns the report.
func Run(cfg Config, span units.Duration) (*Report, error) {
	if span <= 0 {
		return nil, fmt.Errorf("bannet: non-positive span")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("bannet: no nodes")
	}
	tdma := cfg.TDMA
	if tdma == nil {
		tdma = mac.DefaultTDMA()
	}

	// Build node states and TDMA demands.
	states := make([]*nodeState, 0, len(cfg.Nodes))
	var demands []mac.Demand
	for _, nc := range cfg.Nodes {
		if nc.Sensor == nil || nc.Policy == nil || nc.Radio == nil || nc.Battery == nil {
			return nil, fmt.Errorf("bannet: node %q incompletely specified", nc.Name)
		}
		if nc.PacketBits <= 0 {
			return nil, fmt.Errorf("bannet: node %q has no packet size", nc.Name)
		}
		if nc.PER < 0 || nc.PER >= 1 {
			return nil, fmt.Errorf("bannet: node %q PER %v outside [0,1)", nc.Name, nc.PER)
		}
		if nc.Inference != nil && (nc.Inference.MACs <= 0 || nc.Inference.InputBits <= 0) {
			return nil, fmt.Errorf("bannet: node %q has a degenerate inference spec", nc.Name)
		}
		out := nc.Policy.OutputRate(nc.Sensor.DataRate())
		if out > nc.Radio.Goodput {
			return nil, fmt.Errorf("bannet: node %q rate %v exceeds radio goodput %v",
				nc.Name, out, nc.Radio.Goodput)
		}
		st := &nodeState{cfg: nc, outRate: out}
		st.stats.Name = nc.Name
		if nc.DrainBattery {
			st.battState = energy.NewState(nc.Battery)
		}
		states = append(states, st)
		// Slot sizing includes retransmission headroom: a link with packet
		// error rate p needs ≈ 1/(1−p) attempts per delivered packet, plus
		// 20% margin against burstiness.
		demand := units.DataRate(float64(out) / (1 - nc.PER) * 1.2)
		demands = append(demands, mac.Demand{NodeID: nc.ID, Rate: demand, PacketBits: nc.PacketBits})
	}
	schedule, err := tdma.Build(demands)
	if err != nil {
		return nil, err
	}

	sim := desim.New(cfg.Seed)
	report := &Report{Schedule: schedule}
	hubPlatform := cfg.HubCompute
	if hubPlatform == nil {
		hubPlatform = partition.HubSoC()
	}
	hub := &hubServer{platform: hubPlatform}

	// Packet generation: one event per packet at the node's output rate.
	for _, st := range states {
		st := st
		if st.outRate <= 0 {
			continue
		}
		interval := desim.FromSeconds(float64(st.cfg.PacketBits) / float64(st.outRate))
		if interval < desim.Microsecond {
			interval = desim.Microsecond
		}
		sim.Every(interval, interval, func() {
			if st.dead {
				return
			}
			st.queue = append(st.queue, packet{created: sim.Now()})
			st.stats.PacketsGenerated++
		})
	}

	// Superframe processing: at each node's slot, drain up to the slot
	// capacity with PER-driven retries.
	superframe := desim.FromSeconds(float64(tdma.Superframe))
	beaconTime := float64(schedule.BeaconTime)
	sim.Every(superframe, superframe, func() {
		for _, st := range states {
			if st.dead {
				continue
			}
			// Continuous drain (sensing + ISA + sleep floor) plus the
			// beacon cost debits the battery in DrainBattery mode.
			syncE := st.cfg.Radio.ActiveRX.Times(units.Duration(beaconTime)) +
				st.cfg.Radio.WakeEnergy
			cont := st.continuousPower().Times(units.Duration(superframe.Seconds()))
			if !st.drain(cont+syncE, sim.Now()) {
				continue
			}
			// Beacon listen: every node wakes and receives the beacon.
			st.stats.SyncEnergy += syncE
			slot := schedule.SlotFor(st.cfg.ID)
			if slot == nil {
				continue
			}
			budget := slot.CapacityBits
			for len(st.queue) > 0 && budget >= int64(st.cfg.PacketBits) {
				p := st.queue[0]
				st.queue = st.queue[1:]
				budget -= int64(st.cfg.PacketBits)
				air := st.cfg.Radio.TimeOnAir(st.cfg.PacketBits)
				txE := st.cfg.Radio.ActiveTX.Times(air)
				if !st.drain(txE, sim.Now()) {
					break
				}
				st.stats.TxEnergy += txE
				st.airTime += air
				st.stats.Transmissions++
				if sim.Rand().Float64() >= st.cfg.PER {
					// Delivered.
					lat := units.Duration((sim.Now() - p.created).Seconds())
					st.latencies = append(st.latencies, lat)
					st.stats.PacketsDelivered++
					st.stats.BitsDelivered += int64(st.cfg.PacketBits)
					report.HubRxBits += int64(st.cfg.PacketBits)
					report.HubRxEnergy += st.cfg.Radio.ActiveRX.Times(air)
					// Assemble inference input windows and dispatch to
					// the hub NPU queue.
					if spec := st.cfg.Inference; spec != nil {
						if st.windowBits == 0 {
							st.windowStart = p.created
						}
						st.windowBits += int64(st.cfg.PacketBits)
						for st.windowBits >= spec.InputBits {
							st.windowBits -= spec.InputBits
							done := hub.enqueue(sim.Now(), st.windowStart, spec.MACs)
							e2e := units.Duration((done - st.windowStart).Seconds())
							st.infLat = append(st.infLat, e2e)
							st.stats.Inferences++
							st.windowStart = sim.Now()
						}
					}
					continue
				}
				// Failed: selective-repeat ARQ — requeue at the back (or
				// drop past the retry budget) and keep draining the slot.
				p.retries++
				if p.retries > st.cfg.MaxRetries {
					st.stats.PacketsDropped++
					continue
				}
				st.queue = append(st.queue, p)
			}
		}
	})

	// Harvesting: sample each harvester once per simulated second.
	for _, st := range states {
		st := st
		if st.cfg.Harvester == nil {
			continue
		}
		sim.Every(desim.Second, desim.Second, func() {
			e := st.cfg.Harvester.Sample(sim.Rand()).Times(units.Second)
			st.stats.Harvested += e
			if st.battState != nil && !st.dead {
				st.battState.Recharge(e)
			}
		})
	}

	end := desim.FromSeconds(float64(span))
	sim.RunUntil(end)
	report.Duration = span
	report.Events = sim.Executed()

	// Close the books: continuous power components over each node's
	// lifespan (the full span, or until battery death).
	for _, st := range states {
		s := &st.stats
		life := span
		if st.dead {
			s.Died = true
			s.DiedAt = units.Duration(st.diedAt.Seconds())
			life = s.DiedAt
		}
		s.SenseEnergy = st.cfg.Sensor.AFEPower.Times(life)
		s.ISAEnergy = st.cfg.Policy.ComputePower().Times(life)
		sleepSpan := life - st.airTime
		if sleepSpan < 0 {
			sleepSpan = 0
		}
		s.SleepEnergy = st.cfg.Radio.Sleep.Times(sleepSpan)

		s.AvgPower = s.TotalEnergy().At(life)
		s.ProjectedLife = st.cfg.Battery.Lifetime(s.AvgPower)
		if st.dead && s.DiedAt < s.ProjectedLife {
			s.ProjectedLife = s.DiedAt
		}
		harvestPower := s.Harvested.At(life)
		s.Perpetual = s.ProjectedLife >= energy.PerpetualLife || harvestPower >= s.AvgPower

		// Latency percentiles.
		if len(st.latencies) > 0 {
			sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
			s.LatencyP50 = st.latencies[len(st.latencies)/2]
			s.LatencyP99 = st.latencies[(len(st.latencies)*99)/100]
		}
		if len(st.infLat) > 0 {
			sort.Slice(st.infLat, func(i, j int) bool { return st.infLat[i] < st.infLat[j] })
			s.InferenceP50 = st.infLat[len(st.infLat)/2]
			s.InferenceP99 = st.infLat[(len(st.infLat)*99)/100]
		}
		report.Nodes = append(report.Nodes, *s)
	}
	report.HubComputeEnergy = hub.energy
	report.HubUtilization = units.Clamp(hub.busyTotal.Seconds()/float64(span), 0, 1)
	return report, nil
}

// NodeByName returns the stats for a named node, or nil.
func (r *Report) NodeByName(name string) *NodeStats {
	for i := range r.Nodes {
		if r.Nodes[i].Name == name {
			return &r.Nodes[i]
		}
	}
	return nil
}
