package bannet

import (
	"math"

	"wiban/internal/desim"
	"wiban/internal/units"
)

// SeriesSample is one per-node observation emitted at the sampling
// cadence: the in-run dynamics (battery drain, queue growth under
// collision storms, per-window link quality) that the end-of-run NodeStats
// summary integrates away.
type SeriesSample struct {
	Node   int   // index into the configuration's node list
	TimeMS int64 // simulated sampling instant, integer milliseconds

	// Charge is the battery state of charge in [0,1]; 1.0 for nodes not
	// in DrainBattery mode (their battery is never debited).
	Charge float64
	// QueueDepth is the number of packets waiting at the sampling instant.
	QueueDepth int
	// LinkPER is the fraction of transmission attempts since the previous
	// sample that failed (link loss and collisions combined). NaN when the
	// window held no attempts — a gap, not a perfect link.
	LinkPER float64
	// CollisionRate is the fraction of attempts since the previous sample
	// attributed to cross-wearer collisions rather than link loss. NaN when
	// the window held no attempts.
	CollisionRate float64
}

// SeriesSink receives the per-node samples of one sampling instant. The
// slice is the Sim's reusable arena: it is only valid for the duration of
// the call, and the sink must copy anything it keeps. A sink is invoked
// only between kernel events, never concurrently.
type SeriesSink func(samples []SeriesSample)

// SetSeries configures in-run sampling: every run after this call emits
// one SeriesSample per node to sink at the given cadence, quantized up to
// the TDMA superframe (samples are taken at superframe boundaries, before
// the frame is processed), plus one final sample at the end of the span
// if the cadence did not land there. A non-positive cadence or nil sink
// disables sampling. The setting survives Reset, so a recycled Sim keeps
// its sink across scenarios; sampling never draws from the kernel RNG and
// schedules no kernel events, so a run's Report — including its event
// count — is byte-identical with sampling on or off.
func (s *Sim) SetSeries(every units.Duration, sink SeriesSink) {
	if every <= 0 || sink == nil {
		s.seriesEvery, s.seriesSink = 0, nil
		return
	}
	s.seriesEvery, s.seriesSink = every, sink
}

// emitSeries samples every node at now and hands the batch to the sink,
// then opens the next attempt-counting window.
func (s *Sim) emitSeries(now desim.Time) {
	ms := int64(now.Seconds()*1000 + 0.5)
	buf := s.seriesBuf[:0]
	for i := range s.states {
		st := &s.states[i]
		samp := SeriesSample{Node: i, TimeMS: ms, Charge: 1, QueueDepth: st.queue.len()}
		if st.battState != nil {
			samp.Charge = st.battState.FractionRemaining()
		}
		if st.winAttempts > 0 {
			samp.LinkPER = float64(st.winFails) / float64(st.winAttempts)
			samp.CollisionRate = float64(st.winCollisions) / float64(st.winAttempts)
		} else {
			samp.LinkPER = math.NaN()
			samp.CollisionRate = math.NaN()
		}
		st.winAttempts, st.winFails, st.winCollisions = 0, 0, 0
		buf = append(buf, samp)
	}
	s.seriesBuf = buf
	s.seriesSink(buf)
	s.seriesLast = now
}
