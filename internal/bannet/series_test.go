package bannet

import (
	"math"
	"reflect"
	"testing"

	"wiban/internal/units"
)

// collectSeries runs cfg with sampling at the given cadence and returns
// every emitted sample (copied out of the borrowed arena) plus the report.
func collectSeries(t *testing.T, cfg Config, cadence, span units.Duration) ([]SeriesSample, *Report) {
	t.Helper()
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []SeriesSample
	sim.SetSeries(cadence, func(samples []SeriesSample) {
		out = append(out, samples...)
	})
	rep, err := sim.Run(span)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

// TestSeriesSamplingInert: enabling sampling must not perturb the run —
// the report (node stats, energy books and the kernel event count the
// fleet fingerprints) is byte-identical with sampling on or off, and the
// sample stream itself replays deterministically.
func TestSeriesSamplingInert(t *testing.T) {
	cfg := regressConfig()
	plain, err := Run(cfg, 10*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sampled, rep := collectSeries(t, cfg, 30*units.Second, 10*units.Minute)
	plain.Schedule, rep.Schedule = nil, nil
	if !reflect.DeepEqual(plain, rep) {
		t.Fatalf("sampling perturbed the run:\noff %+v\non  %+v", plain, rep)
	}
	if len(sampled) == 0 {
		t.Fatal("no samples emitted")
	}
	again, _ := collectSeries(t, cfg, 30*units.Second, 10*units.Minute)
	if !reflect.DeepEqual(sampled, again) {
		t.Fatal("sample stream not deterministic across identical runs")
	}
}

// TestSeriesCadenceQuantization: samples land on superframe boundaries at
// (at least) the requested cadence, one per node per instant, timestamps
// nondecreasing, and the final instant is the end of the span (the tail
// sample). A cadence below the superframe degrades to one sample per
// superframe, and a cadence beyond the span still yields exactly one
// tail instant.
func TestSeriesCadenceQuantization(t *testing.T) {
	cfg := regressConfig()
	nodes := len(cfg.Nodes)
	span := 10 * units.Second
	superMS := int64(100) // default TDMA superframe is 100 ms

	samples, _ := collectSeries(t, cfg, 250*units.Millisecond, span)
	var instants []int64
	perInstant := map[int64]int{}
	for _, s := range samples {
		if s.TimeMS%superMS != 0 {
			t.Fatalf("sample at %d ms off the %d ms superframe grid", s.TimeMS, superMS)
		}
		if n := len(instants); n == 0 || instants[n-1] != s.TimeMS {
			if n > 0 && instants[n-1] > s.TimeMS {
				t.Fatalf("timestamps regressed: %d after %d", s.TimeMS, instants[n-1])
			}
			instants = append(instants, s.TimeMS)
		}
		perInstant[s.TimeMS]++
	}
	for ms, n := range perInstant {
		if n != nodes {
			t.Errorf("instant %d ms has %d samples, want %d", ms, n, nodes)
		}
	}
	if last := instants[len(instants)-1]; last != int64(span/units.Millisecond) {
		t.Errorf("last instant %d ms, want tail sample at %d ms", last, int64(span/units.Millisecond))
	}
	// 10 s at a 250 ms cadence quantized to a 100 ms grid: the cadence
	// mark at 250 ms lands on the 300 ms frame, so instants are spaced
	// 200–300 ms apart — between span/300ms and span/200ms of them.
	if n := len(instants); n < 30 || n > 51 {
		t.Errorf("%d instants for 10 s at 250 ms cadence, want ≈ 33-50", n)
	}

	// Sub-superframe cadence degrades to once per superframe.
	dense, _ := collectSeries(t, cfg, units.Millisecond, span)
	if want := int(int64(span/units.Millisecond)/superMS) * nodes; len(dense) != want {
		t.Errorf("1 ms cadence: %d samples, want %d (one per node per superframe)", len(dense), want)
	}

	// Cadence beyond the span: only the tail instant.
	tail, _ := collectSeries(t, cfg, units.Hour, span)
	if len(tail) != nodes {
		t.Fatalf("over-span cadence: %d samples, want %d (tail only)", len(tail), nodes)
	}
	if tail[0].TimeMS != int64(span/units.Millisecond) {
		t.Errorf("tail instant %d ms, want %d ms", tail[0].TimeMS, int64(span/units.Millisecond))
	}
}

// TestSeriesWindowAccounting: per-window failure fractions are true
// ratios — NaN on empty windows (a gap, never a fake zero), inside
// [0,1], collision-attributed failures never exceeding total failures
// and appearing iff CollisionPER > 0 on the node.
func TestSeriesWindowAccounting(t *testing.T) {
	cfg := regressConfig()
	cfg.Nodes[1].CollisionPER = 0.4

	// One-superframe windows: the 3 kbps ECG node emits a packet every
	// ~341 ms, so most 100 ms windows hold no attempt — the gap path must
	// yield NaN there, not a fake perfect link.
	samples, _ := collectSeries(t, cfg, 100*units.Millisecond, 10*units.Minute)
	sawGap := false
	sawCollision := false
	for _, s := range samples {
		gap := math.IsNaN(s.LinkPER)
		if gap != math.IsNaN(s.CollisionRate) {
			t.Fatalf("half-NaN sample: %+v", s)
		}
		if gap {
			sawGap = true
			continue
		}
		if s.LinkPER < 0 || s.LinkPER > 1 || s.CollisionRate < 0 || s.CollisionRate > 1 {
			t.Fatalf("rates outside [0,1]: %+v", s)
		}
		if s.CollisionRate > s.LinkPER {
			t.Fatalf("collision rate %v exceeds total failure rate %v", s.CollisionRate, s.LinkPER)
		}
		if s.Node == 0 && s.CollisionRate != 0 {
			t.Fatalf("collision attributed on a node with CollisionPER=0: %+v", s)
		}
		if s.Node == 1 && s.CollisionRate > 0 {
			sawCollision = true
		}
	}
	if !sawCollision {
		t.Error("no collision-attributed failures on a CollisionPER=0.4 node")
	}
	if !sawGap {
		t.Error("no NaN gap windows in a sparse-traffic run")
	}

	// Aggregate collision share: with CollisionPER=0.4 and PER=0.1 the
	// combined loss is 1−0.9·0.6 = 0.46, of which 0.4 is collisions —
	// the mean per-window CollisionRate/LinkPER ratio must sit near
	// 0.4/0.46 ≈ 0.87, pinning the single-draw attribution split.
	var colSum, perSum float64
	for _, s := range samples {
		if s.Node == 1 && !math.IsNaN(s.LinkPER) {
			colSum += s.CollisionRate
			perSum += s.LinkPER
		}
	}
	if perSum == 0 {
		t.Fatal("no failing windows on the collision node")
	}
	if share := colSum / perSum; share < 0.75 || share > 0.95 {
		t.Errorf("collision share of failures = %.3f, want ≈ 0.87", share)
	}
}

// TestSeriesBatteryCharge: DrainBattery nodes report a monotonically
// non-increasing state of charge (no harvester in this config); nodes
// without battery drain always report a full charge.
func TestSeriesBatteryCharge(t *testing.T) {
	cfg := regressConfig()
	cfg.Nodes[1].DrainBattery = true
	samples, _ := collectSeries(t, cfg, 10*units.Second, 10*units.Minute)
	prev := math.Inf(1)
	for _, s := range samples {
		switch s.Node {
		case 0: // not draining
			if s.Charge != 1 {
				t.Fatalf("non-draining node charge %v, want 1", s.Charge)
			}
		case 1:
			if s.Charge < 0 || s.Charge > 1 {
				t.Fatalf("charge %v outside [0,1]", s.Charge)
			}
			if s.Charge > prev {
				t.Fatalf("charge rose from %v to %v without a harvester", prev, s.Charge)
			}
			prev = s.Charge
		}
	}
	if prev >= 1 {
		t.Error("draining node never lost charge over 10 minutes")
	}
}

// TestSeriesSteadyStateZeroAlloc extends the arena contract to sampling:
// a warmed Reset–RunInto cycle with a non-allocating sink attached stays
// allocation-free — the sample buffer is part of the arena.
func TestSeriesSteadyStateZeroAlloc(t *testing.T) {
	big := regressConfig()
	small := regressConfig()
	small.Nodes = small.Nodes[:1]
	sim, err := NewSim(big)
	if err != nil {
		t.Fatal(err)
	}
	var sampleCount int64
	var chargeSum float64
	sim.SetSeries(units.Second, func(samples []SeriesSample) {
		for i := range samples {
			sampleCount++
			chargeSum += samples[i].Charge
		}
	})
	var rep Report
	seed := int64(0)
	cycle := func() {
		cfg := big
		if seed%2 == 0 {
			cfg = small
		}
		cfg.Seed = seed
		seed++
		if err := sim.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunInto(10*units.Second, &rep); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("steady-state sampling cycle allocates %.1f times, want 0", avg)
	}
	if sampleCount == 0 {
		t.Fatal("sink never invoked")
	}
	// SetSeries survives Reset (exercised above); disabling stops emission.
	sim.SetSeries(0, nil)
	before := sampleCount
	if _, err := sim.Run(10 * units.Second); err != nil {
		t.Fatal(err)
	}
	if sampleCount != before {
		t.Error("disabled series still emitted samples")
	}
	_ = chargeSum
}
