// Package mac provides medium-access control for the body-area network:
// the Wi-R bus is a single shared medium (the body), so the hub
// coordinates leaf nodes with a TDMA superframe — beacon, then one
// guard-separated slot per node sized to its demand. Polling and slotted
// CSMA analytic models are included as baselines for the arbitration
// ablation.
package mac

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"wiban/internal/units"
)

// Demand is one node's reservation request.
type Demand struct {
	// NodeID identifies the node (unique within a schedule).
	NodeID int
	// Rate is the average application rate the node must sustain.
	Rate units.DataRate
	// PacketBits is the node's framing quantum (a slot is sized to a
	// whole number of packets).
	PacketBits int
}

// TDMA describes the superframe parameters.
type TDMA struct {
	// Superframe is the schedule period.
	Superframe units.Duration
	// LinkRate is the shared medium's signaling rate.
	LinkRate units.DataRate
	// BeaconBits is the hub's per-superframe beacon (sync + schedule).
	BeaconBits int
	// Guard separates adjacent slots (clock tolerance).
	Guard units.Duration
}

// DefaultTDMA returns a 100 ms superframe on a Wi-R-class 4 Mbps medium
// with 256-bit beacons and 100 µs guards.
func DefaultTDMA() *TDMA {
	return &TDMA{
		Superframe: 100 * units.Millisecond,
		LinkRate:   4 * units.Mbps,
		BeaconBits: 256,
		Guard:      100 * units.Microsecond,
	}
}

// Slot is one node's transmission window within the superframe.
type Slot struct {
	NodeID int
	Start  units.Duration
	Length units.Duration
	// CapacityBits is how many bits fit in the slot at the link rate.
	CapacityBits int64
}

// Schedule is a built superframe.
type Schedule struct {
	Superframe units.Duration
	BeaconTime units.Duration
	Slots      []Slot
	LinkRate   units.DataRate
}

// Build sizes one slot per demand and lays them out after the beacon.
// Demands are laid out in NodeID order for determinism. It returns an
// error if the demands do not fit the superframe. The caller's demand
// slice is not modified; a reusable driver that owns its demand buffer
// can avoid both copies with BuildInto.
func (t *TDMA) Build(demands []Demand) (*Schedule, error) {
	sorted := append([]Demand(nil), demands...)
	s := &Schedule{}
	if err := t.BuildInto(sorted, s); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildInto is the allocation-free form of Build: it sorts demands in
// place (callers hand over ownership of the slice for the call) and
// rebuilds s, reusing its Slots capacity. On error s is left in an
// unspecified state and must not be used as a schedule.
func (t *TDMA) BuildInto(demands []Demand, s *Schedule) error {
	if t.Superframe <= 0 || t.LinkRate <= 0 {
		return fmt.Errorf("mac: invalid TDMA parameters")
	}
	slices.SortFunc(demands, func(a, b Demand) int { return cmp.Compare(a.NodeID, b.NodeID) })
	for i := 1; i < len(demands); i++ {
		if demands[i].NodeID == demands[i-1].NodeID {
			return fmt.Errorf("mac: duplicate node id %d", demands[i].NodeID)
		}
	}

	s.Superframe = t.Superframe
	s.BeaconTime = t.LinkRate.TimeFor(float64(t.BeaconBits))
	s.LinkRate = t.LinkRate
	s.Slots = s.Slots[:0]
	cursor := s.BeaconTime + t.Guard
	for _, d := range demands {
		if d.Rate < 0 || d.PacketBits <= 0 {
			return fmt.Errorf("mac: invalid demand for node %d", d.NodeID)
		}
		// Bits owed per superframe, rounded up to whole packets.
		bits := float64(d.Rate) * float64(t.Superframe)
		packets := int64(math.Ceil(bits / float64(d.PacketBits)))
		if packets < 1 {
			packets = 1
		}
		capBits := packets * int64(d.PacketBits)
		length := t.LinkRate.TimeFor(float64(capBits))
		s.Slots = append(s.Slots, Slot{
			NodeID: d.NodeID, Start: cursor, Length: length, CapacityBits: capBits,
		})
		cursor += length + t.Guard
	}
	if cursor > t.Superframe {
		return fmt.Errorf("mac: demands need %v, superframe is %v", cursor, t.Superframe)
	}
	return nil
}

// Validate checks slot disjointness and containment — the invariant the
// property tests hammer.
func (s *Schedule) Validate() error {
	for i, sl := range s.Slots {
		if sl.Start < s.BeaconTime {
			return fmt.Errorf("mac: slot %d overlaps beacon", i)
		}
		if sl.Start+sl.Length > s.Superframe {
			return fmt.Errorf("mac: slot %d exceeds superframe", i)
		}
		for j := i + 1; j < len(s.Slots); j++ {
			a, b := s.Slots[i], s.Slots[j]
			if a.Start < b.Start+b.Length && b.Start < a.Start+a.Length {
				return fmt.Errorf("mac: slots %d and %d overlap", i, j)
			}
		}
	}
	return nil
}

// SlotFor returns the slot assigned to a node, or nil.
func (s *Schedule) SlotFor(nodeID int) *Slot {
	for i := range s.Slots {
		if s.Slots[i].NodeID == nodeID {
			return &s.Slots[i]
		}
	}
	return nil
}

// Utilization is the fraction of the superframe spent moving payload.
func (s *Schedule) Utilization() float64 {
	var busy units.Duration
	for _, sl := range s.Slots {
		busy += sl.Length
	}
	return float64(busy) / float64(s.Superframe)
}

// SyncOverheadRate is the per-node cost of staying synchronized: every
// superframe each node wakes once to hear the beacon. The result is the
// wake rate (per second) a node's radio model should be charged.
func (s *Schedule) SyncOverheadRate() float64 {
	if s.Superframe <= 0 {
		return 0
	}
	return 1 / float64(s.Superframe)
}

// --- Baseline arbitration models -------------------------------------------

// Polling models hub-initiated polling: each transfer costs a poll request
// and a turnaround before the node's payload.
type Polling struct {
	PollBits   int
	Turnaround units.Duration
	LinkRate   units.DataRate
}

// Efficiency returns the payload fraction of the medium time for a given
// payload size per poll.
func (p *Polling) Efficiency(payloadBits int) float64 {
	if payloadBits <= 0 {
		return 0
	}
	payload := p.LinkRate.TimeFor(float64(payloadBits))
	total := p.LinkRate.TimeFor(float64(p.PollBits)) + 2*p.Turnaround + payload
	return float64(payload) / float64(total)
}

// SlottedCSMA models p-persistent slotted contention among n nodes.
type SlottedCSMA struct{}

// SuccessProbability is the per-slot success probability with n
// contenders each transmitting with probability p: n·p·(1−p)^(n−1).
func (SlottedCSMA) SuccessProbability(n int, p float64) float64 {
	if n <= 0 || p <= 0 || p > 1 {
		return 0
	}
	return float64(n) * p * math.Pow(1-p, float64(n-1))
}

// OptimalP returns the throughput-maximizing persistence, 1/n.
func (SlottedCSMA) OptimalP(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 1 / float64(n)
}

// EnergyPenalty is the expected transmissions per delivered packet at the
// given persistence (collisions burn energy without delivering).
func (c SlottedCSMA) EnergyPenalty(n int, p float64) float64 {
	if n <= 0 || p <= 0 {
		return math.Inf(1)
	}
	// A tagged node's attempt succeeds if no other node transmits.
	succ := math.Pow(1-p, float64(n-1))
	if succ == 0 {
		return math.Inf(1)
	}
	return 1 / succ
}
