package mac

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wiban/internal/units"
)

func demoDemands() []Demand {
	return []Demand{
		{NodeID: 1, Rate: 3 * units.Kbps, PacketBits: 1024},    // ECG patch
		{NodeID: 2, Rate: 9.6 * units.Kbps, PacketBits: 1024},  // IMU
		{NodeID: 3, Rate: 256 * units.Kbps, PacketBits: 8192},  // voice mic
		{NodeID: 4, Rate: 1.5 * units.Mbps, PacketBits: 16384}, // MJPEG video
	}
}

func TestBuildValidSchedule(t *testing.T) {
	s, err := DefaultTDMA().Build(demoDemands())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Slots) != 4 {
		t.Fatalf("slot count %d", len(s.Slots))
	}
	// Every node can be found and capacity covers demand per superframe.
	for _, d := range demoDemands() {
		sl := s.SlotFor(d.NodeID)
		if sl == nil {
			t.Fatalf("no slot for node %d", d.NodeID)
		}
		need := float64(d.Rate) * float64(s.Superframe)
		if float64(sl.CapacityBits) < need {
			t.Errorf("node %d: capacity %d bits < demand %.0f bits", d.NodeID, sl.CapacityBits, need)
		}
	}
	if s.SlotFor(99) != nil {
		t.Error("unknown node should have no slot")
	}
}

func TestScheduleRejectsOverload(t *testing.T) {
	// A 4 Mbps medium cannot carry 2×3 Mbps.
	over := []Demand{
		{NodeID: 1, Rate: 3 * units.Mbps, PacketBits: 16384},
		{NodeID: 2, Rate: 3 * units.Mbps, PacketBits: 16384},
	}
	if _, err := DefaultTDMA().Build(over); err == nil {
		t.Error("overloaded schedule should fail")
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	tdma := DefaultTDMA()
	if _, err := tdma.Build([]Demand{{NodeID: 1, Rate: units.Kbps, PacketBits: 0}}); err == nil {
		t.Error("zero packet size should fail")
	}
	if _, err := tdma.Build([]Demand{
		{NodeID: 1, Rate: units.Kbps, PacketBits: 128},
		{NodeID: 1, Rate: units.Kbps, PacketBits: 128},
	}); err == nil {
		t.Error("duplicate node id should fail")
	}
	bad := &TDMA{}
	if _, err := bad.Build(nil); err == nil {
		t.Error("zero-parameter TDMA should fail")
	}
}

func TestEmptyScheduleIsValid(t *testing.T) {
	s, err := DefaultTDMA().Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if s.Utilization() != 0 {
		t.Error("empty schedule should have zero utilization")
	}
}

func TestScheduleProperty(t *testing.T) {
	// Any demand set the builder accepts must validate, cover demand, and
	// keep utilization ≤ 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		var ds []Demand
		for i := 0; i < n; i++ {
			ds = append(ds, Demand{
				NodeID:     i,
				Rate:       units.DataRate(rng.Intn(400_000) + 100),
				PacketBits: (rng.Intn(64) + 1) * 128,
			})
		}
		s, err := DefaultTDMA().Build(ds)
		if err != nil {
			return true // rejection is allowed; acceptance must be sound
		}
		if s.Validate() != nil {
			return false
		}
		if s.Utilization() > 1 {
			return false
		}
		for _, d := range ds {
			sl := s.SlotFor(d.NodeID)
			if sl == nil || float64(sl.CapacityBits) < float64(d.Rate)*float64(s.Superframe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlotsOrderedByNodeID(t *testing.T) {
	// Determinism: shuffled input produces the same layout.
	ds := demoDemands()
	shuffled := []Demand{ds[3], ds[1], ds[0], ds[2]}
	a, err1 := DefaultTDMA().Build(ds)
	b, err2 := DefaultTDMA().Build(shuffled)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Fatal("schedule depends on input order")
		}
	}
}

func TestSyncOverheadRate(t *testing.T) {
	s, _ := DefaultTDMA().Build(demoDemands())
	if got := s.SyncOverheadRate(); math.Abs(got-10) > 1e-9 {
		t.Errorf("sync rate %v, want 10/s for 100 ms superframe", got)
	}
	empty := &Schedule{}
	if empty.SyncOverheadRate() != 0 {
		t.Error("zero superframe should report 0")
	}
}

func TestUtilizationScalesWithDemand(t *testing.T) {
	light, _ := DefaultTDMA().Build(demoDemands()[:2])
	heavy, _ := DefaultTDMA().Build(demoDemands())
	if light.Utilization() >= heavy.Utilization() {
		t.Error("more demand should raise utilization")
	}
}

func TestPollingEfficiency(t *testing.T) {
	p := &Polling{PollBits: 64, Turnaround: 50 * units.Microsecond, LinkRate: 4 * units.Mbps}
	small := p.Efficiency(256)
	large := p.Efficiency(16384)
	if small >= large {
		t.Error("bigger payloads should amortize polling better")
	}
	if large < 0.9 {
		t.Errorf("large-payload polling efficiency %.2f, want ≥ 0.9", large)
	}
	if p.Efficiency(0) != 0 {
		t.Error("zero payload should be zero efficiency")
	}
}

func TestCSMAOptimalP(t *testing.T) {
	c := SlottedCSMA{}
	for _, n := range []int{2, 5, 10} {
		popt := c.OptimalP(n)
		sOpt := c.SuccessProbability(n, popt)
		// Perturbing p in either direction must not improve throughput.
		if c.SuccessProbability(n, popt*1.3) > sOpt+1e-12 ||
			c.SuccessProbability(n, popt*0.7) > sOpt+1e-12 {
			t.Errorf("n=%d: p=1/n is not optimal", n)
		}
	}
	// Asymptotic 1/e efficiency for large n.
	if s := c.SuccessProbability(50, c.OptimalP(50)); math.Abs(s-1/math.E) > 0.02 {
		t.Errorf("large-n slotted throughput %.3f, want ≈ 1/e", s)
	}
}

func TestCSMAEnergyPenalty(t *testing.T) {
	c := SlottedCSMA{}
	// TDMA has penalty 1 by construction; contention always pays more.
	if p := c.EnergyPenalty(5, 0.2); p <= 1 {
		t.Errorf("contention penalty %.2f, want > 1", p)
	}
	// More contenders at fixed p cost more.
	if c.EnergyPenalty(10, 0.2) <= c.EnergyPenalty(3, 0.2) {
		t.Error("penalty should grow with contenders")
	}
	if !math.IsInf(c.EnergyPenalty(0, 0.5), 1) {
		t.Error("degenerate penalty should be +Inf")
	}
	if c.SuccessProbability(0, 0.5) != 0 || c.SuccessProbability(5, 0) != 0 {
		t.Error("degenerate success probabilities should be 0")
	}
}
