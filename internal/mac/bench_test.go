package mac

import (
	"testing"

	"wiban/internal/units"
)

func BenchmarkTDMABuild(b *testing.B) {
	var demands []Demand
	for i := 0; i < 16; i++ {
		demands = append(demands, Demand{NodeID: i, Rate: 64 * units.Kbps, PacketBits: 8192})
	}
	tdma := DefaultTDMA()
	for i := 0; i < b.N; i++ {
		s, err := tdma.Build(demands)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
