package security

import (
	"math"
	"testing"
	"testing/quick"

	"wiban/internal/channel"
	"wiban/internal/units"
)

func TestEQSInterceptRangeMatchesDasEtAl(t *testing.T) {
	// Das et al. (Sci. Rep. 2019): EQS-HBC becomes undetectable within
	// ≈ 0.15 m of the body. Our capable-sniffer model should land in the
	// 5–50 cm window.
	r := EQSInterceptRange(channel.DefaultEQSBody(), 100*units.Microwatt,
		21*units.Megahertz, CapableSniffer(8*units.Megahertz))
	if r < 5*units.Centimeter || r > 50*units.Centimeter {
		t.Errorf("EQS intercept range = %v, want 5–50 cm (paper: ≈ 15 cm)", r)
	}
}

func TestRFInterceptRangeIsRoomScalePlus(t *testing.T) {
	// The paper: RF radiates "5–10 meters away" even in benign terms; a
	// capable line-of-sight sniffer reaches much farther. Anything below
	// 10 m would understate the radiative exposure.
	r := RFInterceptRange(channel.DefaultBLEPath(), units.FromDBm(0),
		CapableSniffer(1*units.Megahertz))
	if r < 10*units.Meter {
		t.Errorf("RF intercept range = %v, want ≥ 10 m", r)
	}
}

func TestAssessmentAdvantage(t *testing.T) {
	a := Assess()
	if a.Advantage < 100 {
		t.Errorf("RF/EQS intercept ratio = %.0f, want ≥ 100", a.Advantage)
	}
	if a.BubbleAreaRatio() < a.Advantage {
		t.Error("area ratio must exceed linear ratio")
	}
	if a.EQSRange <= 0 || a.RFRange <= a.EQSRange {
		t.Errorf("assessment ranges inconsistent: %+v", a)
	}
}

func TestInterceptRangeMonotoneInTxPower(t *testing.T) {
	m := channel.DefaultEQSBody()
	s := CapableSniffer(8 * units.Megahertz)
	f := func(a, b uint16) bool {
		pa := units.Power(a+1) * units.Microwatt
		pb := units.Power(b+1) * units.Microwatt
		if pa > pb {
			pa, pb = pb, pa
		}
		ra := EQSInterceptRange(m, pa, 21*units.Megahertz, s)
		rb := EQSInterceptRange(m, pb, 21*units.Megahertz, s)
		return ra <= rb+units.Millimeter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBetterSnifferReachesFarther(t *testing.T) {
	m := channel.DefaultEQSBody()
	good := Sniffer{RequiredSNRdB: 6, NoiseBandwidth: 8 * units.Megahertz, NoiseFigureDB: 3}
	bad := Sniffer{RequiredSNRdB: 15, NoiseBandwidth: 8 * units.Megahertz, NoiseFigureDB: 12}
	rg := EQSInterceptRange(m, 100*units.Microwatt, 21*units.Megahertz, good)
	rb := EQSInterceptRange(m, 100*units.Microwatt, 21*units.Megahertz, bad)
	if rg <= rb {
		t.Errorf("better sniffer range %v should exceed worse %v", rg, rb)
	}
}

func TestWeakSignalUndetectableEvenAtContact(t *testing.T) {
	m := channel.DefaultEQSBody()
	deaf := Sniffer{RequiredSNRdB: 40, NoiseBandwidth: 8 * units.Megahertz, NoiseFigureDB: 20}
	if r := EQSInterceptRange(m, units.Nanowatt, 21*units.Megahertz, deaf); r != 0 {
		t.Errorf("nanowatt signal intercepted at %v by a deaf sniffer", r)
	}
	if r := RFInterceptRange(channel.DefaultBLEPath(), units.Power(1e-18), deaf); r != 0 {
		t.Errorf("attowatt RF signal intercepted at %v", r)
	}
}

func TestInterceptConsistentWithLeakageModel(t *testing.T) {
	// At the intercept range the attacker SNR should sit exactly at the
	// threshold (within bisection tolerance).
	m := channel.DefaultEQSBody()
	s := CapableSniffer(8 * units.Megahertz)
	r := EQSInterceptRange(m, 100*units.Microwatt, 21*units.Megahertz, s)
	rx := units.Power(100e-6 * units.FromDB(m.LeakageGainDB(21*units.Megahertz, r)))
	snr := s.snrAt(rx)
	if math.Abs(snr-s.RequiredSNRdB) > 0.1 {
		t.Errorf("SNR at intercept range = %.2f dB, want %.1f dB", snr, s.RequiredSNRdB)
	}
}
