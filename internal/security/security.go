// Package security quantifies the paper's physical-security claim: EQS
// fields stay in a "personal bubble" around the body, while RF radiates a
// room-scale (and beyond) bubble that any sniffer can sit in.
//
// The model is an eavesdropper with a stated receiver quality (noise
// bandwidth, noise figure, required demodulation SNR). For the EQS channel
// the attacker's pickup follows the quasistatic near-field collapse
// (channel.EQSBody.LeakageGainDB); for BLE it follows Friis. The intercept
// range — the largest distance at which the attacker still demodulates —
// is the figure of merit (Das et al. measured ≈ 0.15 m for EQS-HBC;
// BLE sniffing is demonstrated at hundreds of meters line-of-sight).
package security

import (
	"math"

	"wiban/internal/channel"
	"wiban/internal/phy"
	"wiban/internal/units"
)

// Sniffer is an eavesdropping receiver.
type Sniffer struct {
	// RequiredSNRdB is the SNR needed to demodulate the intercepted
	// signal.
	RequiredSNRdB float64
	// NoiseBandwidth is the attacker's receive bandwidth (matched to the
	// signal).
	NoiseBandwidth units.Frequency
	// NoiseFigureDB is the attacker's receiver noise figure — a serious
	// adversary brings a low-noise front-end.
	NoiseFigureDB float64
}

// CapableSniffer returns a well-equipped adversary: 5 dB noise figure,
// 10 dB demod threshold.
func CapableSniffer(bw units.Frequency) Sniffer {
	return Sniffer{RequiredSNRdB: 10, NoiseBandwidth: bw, NoiseFigureDB: 5}
}

// noise returns the attacker's noise floor.
func (s Sniffer) noise() units.Power {
	return phy.NoiseFloor(s.NoiseBandwidth, s.NoiseFigureDB)
}

// snrAt returns the attacker SNR (dB) given a received power.
func (s Sniffer) snrAt(rx units.Power) float64 {
	n := s.noise()
	if n <= 0 {
		return math.Inf(1)
	}
	return units.DB(float64(rx) / float64(n))
}

// EQSInterceptRange returns the maximum distance from the body surface at
// which the sniffer can demodulate a Wi-R transmission of txPower at
// carrier f. It returns 0 if even contact-range interception fails.
func EQSInterceptRange(m *channel.EQSBody, txPower units.Power, f units.Frequency, s Sniffer) units.Distance {
	snrAt := func(d units.Distance) float64 {
		rx := units.Power(float64(txPower) * units.FromDB(m.LeakageGainDB(f, d)))
		return s.snrAt(rx)
	}
	if snrAt(0) < s.RequiredSNRdB {
		return 0
	}
	// The leakage is monotone decreasing: bisect on distance.
	lo, hi := units.Distance(0), 100*units.Meter
	if snrAt(hi) >= s.RequiredSNRdB {
		return hi
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if snrAt(mid) >= s.RequiredSNRdB {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// RFInterceptRange returns the free-space (line-of-sight) distance at
// which the sniffer can demodulate an RF transmission of txPower — the
// worst case the defender must assume for a radiative link.
func RFInterceptRange(m *channel.RFPath, txPower units.Power, s Sniffer) units.Distance {
	// Max tolerable path loss: P_tx − (noise + required SNR).
	budget := units.DBm(txPower) - (units.DBm(s.noise()) + s.RequiredSNRdB)
	if budget <= 0 {
		return 0
	}
	return m.RangeForLossDB(budget)
}

// Assessment compares both technologies for a standard attacker.
type Assessment struct {
	EQSRange units.Distance
	RFRange  units.Distance
	// Advantage is RFRange / EQSRange — how much smaller the attack
	// surface radius becomes when the link moves from RF to EQS.
	Advantage float64
}

// Assess runs the default comparison: Wi-R (100 µW-class EQS at 21 MHz,
// 8 MHz attacker bandwidth) versus BLE (0 dBm at 2.44 GHz, 1 MHz attacker
// bandwidth), each against a capable sniffer.
func Assess() Assessment {
	eqs := EQSInterceptRange(channel.DefaultEQSBody(), 100*units.Microwatt,
		21*units.Megahertz, CapableSniffer(8*units.Megahertz))
	rf := RFInterceptRange(channel.DefaultBLEPath(), units.FromDBm(0),
		CapableSniffer(1*units.Megahertz))
	a := Assessment{EQSRange: eqs, RFRange: rf}
	if eqs > 0 {
		a.Advantage = float64(rf / eqs)
	} else {
		a.Advantage = math.Inf(1)
	}
	return a
}

// BubbleAreaRatio returns the ratio of attack-surface areas (∝ r²): the
// number the "10×" market expansion narrative actually leans on when
// arguing physical security.
func (a Assessment) BubbleAreaRatio() float64 {
	if a.EQSRange <= 0 {
		return math.Inf(1)
	}
	r := float64(a.RFRange / a.EQSRange)
	return r * r
}
