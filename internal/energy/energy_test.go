package energy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wiban/internal/units"
)

func TestFig3BatteryEnergy(t *testing.T) {
	b := Fig3Battery()
	// 1000 mAh at 3 V = 10.8 kJ rated.
	if got := float64(b.RatedEnergy()); math.Abs(got-10800) > 1 {
		t.Errorf("rated energy = %.0f J, want 10800 J", got)
	}
	if b.UsableEnergy() >= b.RatedEnergy() {
		t.Error("usable energy should be derated below rated")
	}
}

func TestLifetimeKnownPoints(t *testing.T) {
	b := Fig3Battery()
	tests := []struct {
		load     units.Power
		min, max units.Duration // acceptance band
	}{
		// ~290 µW → right at a year (with derating + self-discharge).
		{290 * units.Microwatt, 320 * units.Day, 400 * units.Day},
		// 10 mW-class conventional node → days.
		{10 * units.Milliwatt, 8 * units.Day, 14 * units.Day},
		// 100 mW video node → about a day.
		{100 * units.Milliwatt, 0.8 * units.Day, 1.5 * units.Day},
		// 1 µW node → shelf-life-capped at 10 years.
		{1 * units.Microwatt, 10 * units.Year, 10 * units.Year},
	}
	for _, tt := range tests {
		life := b.Lifetime(tt.load)
		if life < tt.min || life > tt.max {
			t.Errorf("lifetime(%v) = %v, want in [%v, %v]", tt.load, life, tt.min, tt.max)
		}
	}
}

func TestLifetimeMonotoneDecreasing(t *testing.T) {
	b := Fig3Battery()
	f := func(a, c uint32) bool {
		pa := units.Power(a%1000000) * units.Microwatt
		pc := units.Power(c%1000000) * units.Microwatt
		if pa > pc {
			pa, pc = pc, pa
		}
		return b.Lifetime(pa) >= b.Lifetime(pc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerpetualLoadConsistency(t *testing.T) {
	for _, b := range []*Battery{Fig3Battery(), CR2032(), LiPo(300)} {
		p := b.PerpetualLoad()
		if p <= 0 {
			t.Fatalf("%s: non-positive perpetual load %v", b.Name, p)
		}
		if !b.Perpetual(p * 0.999) {
			t.Errorf("%s: load just under PerpetualLoad should be perpetual", b.Name)
		}
		if b.Perpetual(p * 1.01) {
			t.Errorf("%s: load just over PerpetualLoad should not be perpetual", b.Name)
		}
	}
	// The paper's envelope: the Fig. 3 battery supports roughly 250–342 µW
	// perpetually (342 µW is the no-derating bound).
	p := Fig3Battery().PerpetualLoad()
	if p < 200*units.Microwatt || p > 342*units.Microwatt {
		t.Errorf("Fig3 perpetual load = %v, want ≈ 250–342 µW", p)
	}
}

func TestShelfLifeCap(t *testing.T) {
	b := Fig3Battery()
	if life := b.Lifetime(0); life != b.ShelfLife {
		t.Errorf("zero-load lifetime = %v, want shelf life %v", life, b.ShelfLife)
	}
	// Uncapped, the zero-load life is bounded by self-discharge alone:
	// 0.85 usable / 1%/yr ≈ 85 years.
	nb := *b
	nb.ShelfLife = 0
	if life := nb.Lifetime(0); math.Abs(life.Years()-85) > 1 {
		t.Errorf("uncapped zero-load lifetime = %v, want ≈ 85 yr (self-discharge bound)", life)
	}
	// With neither cap nor self-discharge, life is infinite.
	nb.SelfDischargePerYear = 0
	if life := nb.Lifetime(0); !math.IsInf(float64(life), 1) {
		t.Errorf("unbounded zero-load lifetime = %v, want +Inf", life)
	}
}

func TestSelfDischargeShortensLife(t *testing.T) {
	fresh := Fig3Battery()
	leaky := Fig3Battery()
	leaky.SelfDischargePerYear = 0.10
	load := 100 * units.Microwatt
	if leaky.Lifetime(load) >= fresh.Lifetime(load) {
		t.Error("higher self-discharge must shorten lifetime")
	}
}

func TestBatteryString(t *testing.T) {
	if s := Fig3Battery().String(); !strings.Contains(s, "1000 mAh") {
		t.Errorf("battery string %q", s)
	}
}

func TestStateDrawAndDeplete(t *testing.T) {
	b := CR2032()
	s := NewState(b)
	if s.Depleted() {
		t.Fatal("fresh battery depleted")
	}
	total := s.Remaining()
	half := units.Energy(float64(total) / 2)
	if !s.Draw(half) {
		t.Fatal("draw on fresh battery failed")
	}
	if got := s.FractionRemaining(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("fraction remaining = %v, want 0.5", got)
	}
	if !s.Draw(half) { // crossing draw is honored
		t.Fatal("crossing draw should be honored")
	}
	if !s.Depleted() {
		t.Error("battery should be depleted")
	}
	if s.Draw(units.Joule) {
		t.Error("draw after depletion should fail")
	}
	if s.Drained() < total {
		t.Errorf("drained %v < total %v", s.Drained(), total)
	}
	if s.Battery() != b {
		t.Error("Battery() accessor wrong")
	}
}

func TestStateRecharge(t *testing.T) {
	s := NewState(CR2032())
	full := s.Remaining()
	s.Draw(full / 2)
	s.Recharge(full) // overfill clamps
	if s.Remaining() != full {
		t.Errorf("recharge should clamp at full: %v vs %v", s.Remaining(), full)
	}
	s.Recharge(-units.Joule) // negative ignored
	if s.Remaining() != full {
		t.Error("negative recharge should be ignored")
	}
	s.Draw(-units.Joule) // negative draw is a no-op that succeeds
	if s.Remaining() != full {
		t.Error("negative draw should be a no-op")
	}
}

func TestHarvesterEnvelopeMatchesPaper(t *testing.T) {
	// §V: 10–200 µW indoors. The indoor PV model must span exactly that.
	pv := IndoorPV()
	if pv.Min != 10*units.Microwatt || pv.Max != 200*units.Microwatt {
		t.Errorf("indoor PV envelope %v–%v, want 10–200 µW", pv.Min, pv.Max)
	}
	// A 100 pJ/b × 10 kbps biopotential node (≈ 1 µW comm + tens of µW
	// sensing) is harvestable; a BLE node is not.
	if !pv.Sustains(30 * units.Microwatt) {
		t.Error("indoor PV should sustain a 30 µW node")
	}
	if pv.Sustains(16 * units.Milliwatt) {
		t.Error("indoor PV must not sustain a BLE-class node")
	}
}

func TestHarvesterSampleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, h := range Harvesters() {
		for i := 0; i < 1000; i++ {
			p := h.Sample(rng)
			if p < h.Min || p > h.Max {
				t.Fatalf("%s sample %v outside [%v, %v]", h.Name, p, h.Min, h.Max)
			}
		}
		if h.String() == "" {
			t.Error("empty harvester string")
		}
	}
}

func TestHarvesterSampleDeterministic(t *testing.T) {
	h := IndoorPV()
	a := h.Sample(rand.New(rand.NewSource(1)))
	b := h.Sample(rand.New(rand.NewSource(1)))
	if a != b {
		t.Error("same seed should give same sample")
	}
}

func TestWorstCaseSustains(t *testing.T) {
	h := IndoorPV()
	if !h.WorstCaseSustains(9 * units.Microwatt) {
		t.Error("9 µW should survive worst-case indoor PV")
	}
	if h.WorstCaseSustains(11 * units.Microwatt) {
		t.Error("11 µW should not survive worst-case indoor PV")
	}
}

func TestStorageEnergyAccounting(t *testing.T) {
	// 1 mF between 1.8 V and 3.6 V: capacity = ½C(Vmax²−Vmin²) = 4.86 mJ.
	s := NewStorage(units.Capacitance(1e-3), 1.8*units.Volt, 3.6*units.Volt, 3.6*units.Volt)
	if got := float64(s.Capacity()); math.Abs(got-4.86e-3) > 1e-6 {
		t.Errorf("capacity = %v J, want 4.86 mJ", got)
	}
	if !s.Full() {
		t.Error("initialized at VMax should be full")
	}
	if !s.Draw(s.Capacity()) {
		t.Error("drawing full capacity should succeed")
	}
	if s.Energy() > 1e-12 {
		t.Errorf("energy after full draw = %v, want 0", s.Energy())
	}
	if s.Draw(units.Microjoule) {
		t.Error("draw from empty buffer should fail")
	}
}

func TestStorageStoreClamping(t *testing.T) {
	s := NewStorage(units.Capacitance(100e-6), 1.8*units.Volt, 3.6*units.Volt, 1.8*units.Volt)
	absorbed := s.Store(units.Energy(1)) // way more than capacity
	if math.Abs(float64(absorbed)-float64(s.Capacity())) > 1e-12 {
		t.Errorf("absorbed %v, want capacity %v", absorbed, s.Capacity())
	}
	if !s.Full() {
		t.Error("buffer should be full after saturating store")
	}
	if s.Store(units.Microjoule) != 0 {
		t.Error("full buffer should absorb nothing")
	}
	if s.Store(-units.Microjoule) != 0 {
		t.Error("negative store should absorb nothing")
	}
}

func TestStorageRoundTripProperty(t *testing.T) {
	f := func(milliJ uint16) bool {
		s := NewStorage(units.Capacitance(10e-3), 1.8*units.Volt, 3.6*units.Volt, 1.8*units.Volt)
		e := units.Energy(float64(milliJ%4000) * 1e-6)
		stored := s.Store(e)
		if stored != e { // within capacity for this range
			return false
		}
		if !s.Draw(stored) {
			return false
		}
		return float64(s.Energy()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStorageInitClamped(t *testing.T) {
	s := NewStorage(units.Capacitance(1e-3), 1.8*units.Volt, 3.6*units.Volt, 9*units.Volt)
	if s.Voltage() != 3.6*units.Volt {
		t.Errorf("init voltage clamped to %v, want 3.6 V", s.Voltage())
	}
	if s.Draw(0) != true {
		t.Error("zero draw should always succeed")
	}
}
