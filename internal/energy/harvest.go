package energy

import (
	"fmt"
	"math"
	"math/rand"

	"wiban/internal/units"
)

// Harvester is an ambient energy source with a min/typ/max power envelope.
// The paper (§V): "With current energy harvesting modalities, 10−200 µW
// power harvesting is possible in indoor conditions."
type Harvester struct {
	Name string
	// Min, Typ, Max bracket the harvestable power under the stated
	// conditions.
	Min, Typ, Max units.Power
	// Variability is the relative standard deviation of short-term output
	// around Typ, used by the stochastic trace generator.
	Variability float64
}

// IndoorPV returns an indoor photovoltaic harvester spanning the paper's
// 10–200 µW indoor envelope (a few cm² of cell at 200–1000 lux).
func IndoorPV() *Harvester {
	return &Harvester{
		Name:        "indoor PV",
		Min:         10 * units.Microwatt,
		Typ:         50 * units.Microwatt,
		Max:         200 * units.Microwatt,
		Variability: 0.4,
	}
}

// BodyTEG returns a wearable thermoelectric harvester (skin-to-air
// gradient), the steadier but weaker option.
func BodyTEG() *Harvester {
	return &Harvester{
		Name:        "body TEG",
		Min:         5 * units.Microwatt,
		Typ:         15 * units.Microwatt,
		Max:         60 * units.Microwatt,
		Variability: 0.15,
	}
}

// KineticIMU returns a motion harvester: high peaks during activity, zero
// at rest.
func Kinetic() *Harvester {
	return &Harvester{
		Name:        "kinetic",
		Min:         0,
		Typ:         20 * units.Microwatt,
		Max:         150 * units.Microwatt,
		Variability: 0.8,
	}
}

// Harvesters returns the modeled catalog.
func Harvesters() []*Harvester { return []*Harvester{IndoorPV(), BodyTEG(), Kinetic()} }

// Sustains reports whether the harvester's typical output covers the load —
// the paper's energy-neutral ("charging-free") criterion.
func (h *Harvester) Sustains(load units.Power) bool { return h.Typ >= load }

// WorstCaseSustains applies the same test at the minimum envelope.
func (h *Harvester) WorstCaseSustains(load units.Power) bool { return h.Min >= load }

// Sample draws one short-term output power from a truncated Gaussian around
// Typ using the provided RNG (deterministic under a seeded source).
func (h *Harvester) Sample(rng *rand.Rand) units.Power {
	p := float64(h.Typ) * (1 + h.Variability*rng.NormFloat64())
	return units.Power(units.Clamp(p, float64(h.Min), float64(h.Max)))
}

// String summarizes the harvester.
func (h *Harvester) String() string {
	return fmt.Sprintf("%s (%v–%v, typ %v)", h.Name, h.Min, h.Max, h.Typ)
}

// --- Storage buffer ------------------------------------------------------

// Storage is a capacitor (or tiny rechargeable cell) buffering harvested
// energy between source and load, operated between VMin and VMax.
type Storage struct {
	Capacitance units.Capacitance
	VMax, VMin  units.Voltage
	v           units.Voltage
}

// NewStorage returns a storage buffer charged to vInit (clamped to
// [VMin, VMax]).
func NewStorage(c units.Capacitance, vMin, vMax, vInit units.Voltage) *Storage {
	s := &Storage{Capacitance: c, VMin: vMin, VMax: vMax}
	s.v = units.Voltage(units.Clamp(float64(vInit), float64(vMin), float64(vMax)))
	return s
}

// capEnergy returns ½CV² at voltage v.
func (s *Storage) capEnergy(v units.Voltage) units.Energy {
	return units.Energy(0.5 * float64(s.Capacitance) * float64(v) * float64(v))
}

// Energy returns the usable stored energy above the VMin cutoff.
func (s *Storage) Energy() units.Energy {
	e := s.capEnergy(s.v) - s.capEnergy(s.VMin)
	if e < 0 {
		return 0
	}
	return e
}

// Capacity returns the maximum usable energy (VMax down to VMin).
func (s *Storage) Capacity() units.Energy {
	return s.capEnergy(s.VMax) - s.capEnergy(s.VMin)
}

// Voltage returns the present buffer voltage.
func (s *Storage) Voltage() units.Voltage { return s.v }

// Store adds harvested energy, returning the amount actually absorbed
// (the rest is lost once the buffer saturates at VMax).
func (s *Storage) Store(e units.Energy) units.Energy {
	if e <= 0 {
		return 0
	}
	room := s.capEnergy(s.VMax) - s.capEnergy(s.v)
	if e > room {
		e = room
	}
	s.v = s.voltsAt(s.capEnergy(s.v) + e)
	return e
}

// Draw removes energy for the load; it reports false (drawing nothing) if
// the request would take the buffer below VMin. A relative tolerance
// absorbs the rounding of the ½CV² ↔ V conversions so that storing and
// drawing the same amount round-trips.
func (s *Storage) Draw(e units.Energy) bool {
	if e <= 0 {
		return true
	}
	tol := units.Energy(1e-12 * float64(s.capEnergy(s.VMax)))
	if s.Energy()+tol < e {
		return false
	}
	rem := s.capEnergy(s.v) - e
	if min := s.capEnergy(s.VMin); rem < min {
		rem = min
	}
	s.v = s.voltsAt(rem)
	return true
}

// voltsAt inverts ½CV² = e.
func (s *Storage) voltsAt(e units.Energy) units.Voltage {
	if e <= 0 {
		return 0
	}
	return units.Voltage(math.Sqrt(2 * float64(e) / float64(s.Capacitance)))
}

// Full reports whether the buffer is at VMax (within 1 mV).
func (s *Storage) Full() bool { return s.v >= s.VMax-units.Millivolt }
