// Package energy models the energy supply side of an IoB node: batteries,
// energy harvesters and storage buffers, plus the paper's "perpetual"
// classification (operating life beyond one year, or outright
// energy-neutral operation under harvesting).
//
// Fig. 3 of the paper projects battery life for a 1000 mAh battery (a high-
// capacity coin cell) against node power; §V adds that indoor harvesting
// delivers 10–200 µW, so nodes under that envelope never need charging at
// all. Both projections are reproduced by this package.
package energy

import (
	"fmt"
	"math"

	"wiban/internal/units"
)

// PerpetualLife is the paper's threshold: devices lasting longer than one
// year on a charge are considered perpetually operable.
const PerpetualLife = units.Year

// Battery is a primary or secondary cell with the derating that matters
// for multi-year projections: usable-capacity fraction, self-discharge and
// shelf life.
type Battery struct {
	// Name identifies the cell ("CR2032", "1000 mAh coin cell").
	Name string
	// CapacityMAh is the rated capacity in milliamp-hours.
	CapacityMAh float64
	// Voltage is the nominal cell voltage.
	Voltage units.Voltage
	// UsableFraction derates the rated capacity for cutoff voltage and
	// converter losses (typically 0.8–0.9).
	UsableFraction float64
	// SelfDischargePerYear is the fraction of rated capacity lost per year
	// with no load (≈ 1%/yr for lithium primary cells).
	SelfDischargePerYear float64
	// ShelfLife caps the projection: beyond it the chemistry, not the
	// load, ends the battery (typically 10 years).
	ShelfLife units.Duration
}

// RatedEnergy returns the full rated energy content.
func (b *Battery) RatedEnergy() units.Energy {
	return (units.Charge(b.CapacityMAh) * units.MilliampHour).Energy(b.Voltage)
}

// UsableEnergy returns the energy actually extractable by the node.
func (b *Battery) UsableEnergy() units.Energy {
	return units.Energy(float64(b.RatedEnergy()) * b.UsableFraction)
}

// Lifetime projects how long the battery sustains a constant load.
// Self-discharge is modeled as a parallel constant drain of
// (rated energy × rate)/year, and the result is capped at ShelfLife.
// A non-positive load returns the shelf life.
func (b *Battery) Lifetime(load units.Power) units.Duration {
	shelf := b.ShelfLife
	if shelf <= 0 {
		shelf = units.Duration(math.Inf(1))
	}
	selfDrain := units.Power(float64(b.RatedEnergy()) * b.SelfDischargePerYear / float64(units.Year))
	total := load + selfDrain
	if total <= 0 {
		return shelf
	}
	life := b.UsableEnergy().Over(total)
	if life > shelf {
		return shelf
	}
	return life
}

// PerpetualLoad returns the highest constant load that still yields a
// lifetime of at least PerpetualLife — the power budget a node must meet
// to sit inside Fig. 3's "perpetually operable region".
func (b *Battery) PerpetualLoad() units.Power {
	// Solve UsableEnergy / (P + selfDrain) = 1 year for P.
	selfDrain := float64(b.RatedEnergy()) * b.SelfDischargePerYear / float64(units.Year)
	p := float64(b.UsableEnergy())/float64(PerpetualLife) - selfDrain
	if p < 0 {
		return 0
	}
	return units.Power(p)
}

// Perpetual reports whether the load meets the paper's perpetual-operation
// criterion on this battery.
func (b *Battery) Perpetual(load units.Power) bool {
	return b.Lifetime(load) >= PerpetualLife
}

// String summarizes the cell.
func (b *Battery) String() string {
	return fmt.Sprintf("%s (%.0f mAh @ %v)", b.Name, b.CapacityMAh, b.Voltage)
}

// --- Battery catalog -----------------------------------------------------

// Fig3Battery returns the battery of the paper's Fig. 3: a 1000 mAh
// high-capacity coin cell at 3 V nominal.
func Fig3Battery() *Battery {
	return &Battery{
		Name:                 "1000 mAh coin cell",
		CapacityMAh:          1000,
		Voltage:              3 * units.Volt,
		UsableFraction:       0.85,
		SelfDischargePerYear: 0.01,
		ShelfLife:            10 * units.Year,
	}
}

// CR2032 returns the ubiquitous 225 mAh lithium coin cell.
func CR2032() *Battery {
	return &Battery{
		Name:                 "CR2032",
		CapacityMAh:          225,
		Voltage:              3 * units.Volt,
		UsableFraction:       0.85,
		SelfDischargePerYear: 0.01,
		ShelfLife:            10 * units.Year,
	}
}

// LiPo rechargeable pack of the given capacity (smartwatch/hub class),
// at 3.7 V with faster self-discharge and no meaningful shelf cap within
// the projection horizon.
func LiPo(mAh float64) *Battery {
	return &Battery{
		Name:                 fmt.Sprintf("LiPo %.0f mAh", mAh),
		CapacityMAh:          mAh,
		Voltage:              3.7 * units.Volt,
		UsableFraction:       0.9,
		SelfDischargePerYear: 0.2,
		ShelfLife:            10 * units.Year,
	}
}

// --- State tracking for simulation --------------------------------------

// State is a mutable battery charge tracker used by the discrete-event
// simulator.
type State struct {
	batt      *Battery
	remaining units.Energy
	drained   units.Energy
}

// NewState returns a full battery state.
func NewState(b *Battery) *State {
	return &State{batt: b, remaining: b.UsableEnergy()}
}

// Battery returns the underlying cell.
func (s *State) Battery() *Battery { return s.batt }

// Reset refills the battery to full and clears the drain accounting, so a
// simulator can reuse the state across runs without reallocating.
func (s *State) Reset() {
	s.remaining = s.batt.UsableEnergy()
	s.drained = 0
}

// Reinit repoints the state at a different cell and refills it — the
// reusable-arena form of NewState, for simulators that recycle node
// state across scenarios.
func (s *State) Reinit(b *Battery) {
	s.batt = b
	s.Reset()
}

// Remaining returns the energy left.
func (s *State) Remaining() units.Energy { return s.remaining }

// Drained returns the cumulative energy drawn.
func (s *State) Drained() units.Energy { return s.drained }

// Draw removes e from the battery; it reports false once depleted (the
// draw that crosses zero is honored, further draws are not).
func (s *State) Draw(e units.Energy) bool {
	if e < 0 {
		e = 0
	}
	if s.remaining <= 0 {
		return false
	}
	s.remaining -= e
	s.drained += e
	return true
}

// Recharge adds e back (harvesting), capped at full.
func (s *State) Recharge(e units.Energy) {
	if e < 0 {
		return
	}
	s.remaining += e
	if max := s.batt.UsableEnergy(); s.remaining > max {
		s.remaining = max
	}
}

// Depleted reports whether the battery is exhausted.
func (s *State) Depleted() bool { return s.remaining <= 0 }

// FractionRemaining returns the state of charge in [0,1].
func (s *State) FractionRemaining() float64 {
	max := float64(s.batt.UsableEnergy())
	if max <= 0 {
		return 0
	}
	return units.Clamp(float64(s.remaining)/max, 0, 1)
}
