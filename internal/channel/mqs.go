package channel

import (
	"math"

	"wiban/internal/units"
)

// Magneto-quasistatic human body communication — the paper's stated future
// direction (§IV-B): "exploring body-assisted communication for implantable
// devices in EQS regime and beyond using Magneto-Quasistatic Human Body
// Communication leveraging the human body's transparency to magnetic
// fields."
//
// The model is two coupled electrically-small coils. The body's
// permeability is ≈ µ0 (tissue is non-magnetic), so — unlike the 2.4 GHz
// RF path, which loses several dB per centimeter of tissue — the MQS link
// sees no tissue absorption at all; what it pays is the near-field
// coupling collapse, k ∝ 1/d³ once the separation exceeds the coil radius.

// MQSCoil is a coil-to-coil magneto-quasistatic link through tissue.
type MQSCoil struct {
	// TXRadius and RXRadius are the coil radii (implant coils are small;
	// a wearable reader coil is larger).
	TXRadius, RXRadius units.Distance
	// TXTurns and RXTurns are the winding counts.
	TXTurns, RXTurns int
	// Freq is the carrier (MQS regime: tens of kHz to a few MHz, below
	// self-resonance and induction-heating limits).
	Freq units.Frequency
	// QTx and QRx are the loaded coil quality factors (resonant
	// operation multiplies the transfer by √(QTx·QRx)).
	QTx, QRx float64
	// LinkMarginDB lumps implementation losses (misalignment, tuning
	// error) as a fixed penalty.
	LinkMarginDB float64
}

// DefaultMQSImplant returns a deep-implant link: a 5 mm implant coil to a
// 20 mm wearable coil at 1 MHz with loaded Q of 10/10 (implant coils are
// heavily loaded and detuned by tissue) and 20 dB of implementation loss
// for misalignment and tuning error.
func DefaultMQSImplant() *MQSCoil {
	return &MQSCoil{
		TXRadius: 5 * units.Millimeter, RXRadius: 20 * units.Millimeter,
		TXTurns: 10, RXTurns: 5,
		Freq: 1 * units.Megahertz,
		QTx:  10, QRx: 10,
		LinkMarginDB: 20,
	}
}

// CouplingCoefficient returns the magnetic coupling k between the coils at
// a center-to-center distance d along the coil axis (coaxial alignment):
//
//	k = (r1²·r2²) / (√(r1·r2) · (d² + r1²)^(3/2) · √(r2))   [standard
//	coaxial small-coil approximation, reduces to (r/d)³ for d ≫ r]
//
// The value is clamped to 1.
func (m *MQSCoil) CouplingCoefficient(d units.Distance) float64 {
	r1, r2 := float64(m.TXRadius), float64(m.RXRadius)
	if r1 <= 0 || r2 <= 0 {
		return 0
	}
	dd := float64(d)
	if dd < 0 {
		dd = 0
	}
	num := r1 * r1 * r2 * r2
	den := math.Sqrt(r1*r2) * math.Pow(dd*dd+r1*r1, 1.5) * math.Sqrt(r2)
	if den == 0 {
		return 1
	}
	k := num / den
	if k > 1 {
		k = 1
	}
	return k
}

// GainDB returns the resonant power transfer gain of the link at distance
// d: k²·QTx·QRx capped at 0 dB, minus the implementation margin. Tissue in
// the path contributes nothing — the body is transparent to the magnetic
// field, which is the whole point.
func (m *MQSCoil) GainDB(d units.Distance) float64 {
	k := m.CouplingCoefficient(d)
	if k == 0 {
		return math.Inf(-1)
	}
	eta := k * k * m.QTx * m.QRx
	if eta > 1 {
		eta = 1
	}
	return units.DB(eta) - m.LinkMarginDB
}

// InMQSRegime reports whether the carrier is quasistatic for body scales
// (wavelength ≫ body: f ≲ 30 MHz, same criterion as EQS).
func (m *MQSCoil) InMQSRegime() bool {
	return m.Freq > 0 && m.Freq <= 30*units.Megahertz
}

// Name identifies the channel for reports.
func (m *MQSCoil) Name() string { return "MQS-HBC coil link" }

// --- Tissue absorption for the RF comparison ------------------------------

// TissueLossDBPerCm is the microwave absorption of muscle-like tissue at
// 2.4 GHz (≈ 3 dB/cm one-way; the conductive saltwater body the paper
// describes).
const TissueLossDBPerCm = 3.0

// TissueInterfaceLossDB is the reflection/mismatch loss at the air-tissue
// boundary for a 2.4 GHz link (high-permittivity tissue reflects a large
// fraction of the incident wave).
const TissueInterfaceLossDB = 10.0

// GainThroughTissueDB returns the RF path gain when depth of the path is
// through tissue (an implant link): Friis over the total distance, plus
// tissue absorption over the implanted depth, plus the boundary
// reflection loss. This is what makes 2.4 GHz radios a poor fit for deep
// implants, motivating the MQS alternative.
func (m *RFPath) GainThroughTissueDB(total, depth units.Distance) float64 {
	if depth > total {
		depth = total
	}
	return -m.FreeSpacePathLossDB(total) - TissueLossDBPerCm*float64(depth)/0.01 -
		TissueInterfaceLossDB
}
