package channel

import (
	"math"
	"testing"
	"testing/quick"

	"wiban/internal/units"
)

func TestMQSCouplingFarFieldSlope(t *testing.T) {
	m := DefaultMQSImplant()
	// For d ≫ coil radius, k ∝ 1/d³ so k² (power) falls 60 dB/decade.
	g10 := m.GainDB(10 * units.Centimeter)
	g100 := m.GainDB(1 * units.Meter)
	slope := g10 - g100
	if math.Abs(slope-60) > 2 {
		t.Errorf("MQS far slope = %.1f dB/decade, want ≈ 60", slope)
	}
}

func TestMQSCouplingMonotone(t *testing.T) {
	m := DefaultMQSImplant()
	f := func(a, b uint16) bool {
		da := units.Distance(a) * units.Millimeter
		db := units.Distance(b) * units.Millimeter
		if da > db {
			da, db = db, da
		}
		return m.CouplingCoefficient(da) >= m.CouplingCoefficient(db)-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMQSCouplingBounds(t *testing.T) {
	m := DefaultMQSImplant()
	if k := m.CouplingCoefficient(0); k <= 0 || k > 1 {
		t.Errorf("contact coupling %v outside (0,1]", k)
	}
	if k := m.CouplingCoefficient(-5 * units.Centimeter); k != m.CouplingCoefficient(0) {
		t.Error("negative distance should clamp to contact")
	}
	bad := &MQSCoil{}
	if bad.CouplingCoefficient(units.Centimeter) != 0 {
		t.Error("zero-radius coil should not couple")
	}
	if !math.IsInf(bad.GainDB(units.Centimeter), -1) {
		t.Error("zero coupling should be -Inf dB")
	}
}

func TestMQSBeatsRFThroughTissue(t *testing.T) {
	// The future-work claim quantified: for a 5 cm-deep implant, the MQS
	// link's gain must exceed the 2.4 GHz RF gain (Friis + 3 dB/cm tissue
	// absorption) by a wide margin.
	mqs := DefaultMQSImplant()
	rf := DefaultBLEPath()
	depth := 5 * units.Centimeter
	gm := mqs.GainDB(depth)
	gr := rf.GainThroughTissueDB(depth, depth)
	if gm-gr < 10 {
		t.Errorf("MQS %.1f dB vs RF-through-tissue %.1f dB: want ≥ 10 dB advantage", gm, gr)
	}
	// And the MQS link must actually close a realistic budget: better
	// than -70 dB at 5 cm.
	if gm < -70 {
		t.Errorf("MQS gain at 5 cm = %.1f dB, want ≥ -70 dB", gm)
	}
}

func TestTissueAbsorptionScalesWithDepth(t *testing.T) {
	rf := DefaultBLEPath()
	shallow := rf.GainThroughTissueDB(10*units.Centimeter, 1*units.Centimeter)
	deep := rf.GainThroughTissueDB(10*units.Centimeter, 8*units.Centimeter)
	if d := shallow - deep; math.Abs(d-7*TissueLossDBPerCm) > 1e-9 {
		t.Errorf("7 cm extra tissue costs %.1f dB, want %.1f", d, 7*TissueLossDBPerCm)
	}
	// Depth clamps to the total path.
	a := rf.GainThroughTissueDB(5*units.Centimeter, 5*units.Centimeter)
	b := rf.GainThroughTissueDB(5*units.Centimeter, 50*units.Centimeter)
	if a != b {
		t.Error("depth beyond total should clamp")
	}
}

func TestMQSRegime(t *testing.T) {
	m := DefaultMQSImplant()
	if !m.InMQSRegime() {
		t.Error("1 MHz should be quasistatic")
	}
	m.Freq = 100 * units.Megahertz
	if m.InMQSRegime() {
		t.Error("100 MHz should not be quasistatic")
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestMQSGainCapsAtUnity(t *testing.T) {
	// At contact with high-Q coils, k²QQ would exceed 1; efficiency must
	// cap at 0 dB minus margin.
	m := DefaultMQSImplant()
	if g := m.GainDB(0); g > -m.LinkMarginDB+1e-9 {
		t.Errorf("contact gain %.1f dB exceeds the physical cap", g)
	}
}
