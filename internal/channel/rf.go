package channel

import (
	"math"

	"wiban/internal/units"
)

// SpeedOfLight in meters per second.
const SpeedOfLight = 299792458.0

// RFPath is a radiative free-space path with an additional fixed
// body-shadowing loss, modeling a 2.4 GHz BLE link between wearables.
//
// The paper's argument against RF for body-area networks is geometric: a
// radio "radiates the signal in a large room scale bubble", spending power
// to cover 5–10 m when the channel of interest is 1–2 m of body. Friis
// propagation plus the strong shadowing of the conductive body (the body
// absorbs microwaves — around-the-torso links routinely see 20–40 dB of
// extra loss) captures both halves of that argument.
type RFPath struct {
	// Freq is the carrier frequency (2.44 GHz for BLE).
	Freq units.Frequency
	// BodyShadowDB is extra loss when the body occludes the link
	// (creeping-wave / absorption loss for around-body links).
	BodyShadowDB float64
	// RefDistance guards the near-field singularity of the Friis formula;
	// distances below it are clamped.
	RefDistance units.Distance
}

// DefaultBLEPath returns a 2.44 GHz path with 25 dB of on-body shadowing,
// representative of a chest-to-wrist BLE link.
func DefaultBLEPath() *RFPath {
	return &RFPath{
		Freq:         2.44 * units.Gigahertz,
		BodyShadowDB: 25,
		RefDistance:  5 * units.Centimeter,
	}
}

// FreeSpacePathLossDB returns the Friis free-space path loss in dB at
// distance d: 20·log10(4πdf/c).
func (m *RFPath) FreeSpacePathLossDB(d units.Distance) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	return 20 * math.Log10(4*math.Pi*float64(d)*float64(m.Freq)/SpeedOfLight)
}

// GainDB returns the link gain (negative of total loss) for an on-body link
// of length d, including body shadowing.
func (m *RFPath) GainDB(d units.Distance) float64 {
	return -m.FreeSpacePathLossDB(d) - m.BodyShadowDB
}

// LeakageGainDB returns the gain toward an off-body eavesdropper at
// distance d. Radiated power follows the same Friis law the intended link
// does — there is no containment — but the eavesdropper is typically not
// shadowed by the body, so the leakage path is *stronger* per meter than
// the intended on-body path.
func (m *RFPath) LeakageGainDB(d units.Distance) float64 {
	return -m.FreeSpacePathLossDB(d)
}

// CongestionLossDB is the load-aware RF loss curve: the equivalent
// link-budget penalty when co-channel neighbors occupy a fraction util of
// the shared band. Aggregate interference raises the receiver's
// noise-plus-interference floor, and the SINR — hence the effective link
// budget — degrades by 10·log10(1/(1−util)): 0 dB on an idle band, 3 dB
// at 50% occupancy, unbounded as the band saturates (clamped at 99%
// occupancy to keep the curve finite). Body-coupled EQS/MQS channels have
// no such term — their medium is the wearer's own body, not a shared
// band — which is the fleet-density half of the paper's RF argument; the
// collision half lives in internal/spectrum.
func (m *RFPath) CongestionLossDB(util float64) float64 {
	if util <= 0 {
		return 0
	}
	if util > 0.99 {
		util = 0.99
	}
	return -10 * math.Log10(1-util)
}

// RangeForLossDB returns the distance at which free-space path loss reaches
// lossDB — the radius of the paper's "room scale bubble" for a given link
// budget.
func (m *RFPath) RangeForLossDB(lossDB float64) units.Distance {
	return units.Distance(SpeedOfLight / (4 * math.Pi * float64(m.Freq)) *
		math.Pow(10, lossDB/20))
}

// Wavelength returns the carrier wavelength.
func (m *RFPath) Wavelength() units.Distance {
	return units.Distance(SpeedOfLight / float64(m.Freq))
}

// Name identifies the channel for reports.
func (m *RFPath) Name() string { return "RF radiative path" }
