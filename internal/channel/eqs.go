// Package channel models the two physical communication channels the paper
// contrasts: the electro-quasistatic human-body channel that Wi-R rides on,
// and the radiative RF path that BLE uses.
//
// The EQS model is the lumped capacitive circuit of Maity et al., "Bio-
// Physical Modeling, Characterization, and Optimization of Electro-
// Quasistatic Human Body Communication" (IEEE TBME 2018), which the paper
// cites as the foundation of Wi-R: the transmitter couples a low-frequency
// (≤ 30 MHz) electric field onto the conductive body, the return path closes
// capacitively through earth ground, and a high-impedance voltage-mode
// receiver observes a frequency-flat, whole-body channel at around
// -60 dB. Terminating the same channel in 50 Ω (the RF habit) instead
// yields a first-order high-pass response that throws away the entire EQS
// band — which is precisely the ablation the paper's "is RF the right
// technology?" section argues.
package channel

import (
	"math"
	"math/cmplx"

	"wiban/internal/units"
)

// EQSBody is the lumped-element electro-quasistatic body channel.
//
// Circuit (voltage-mode EQS-HBC, TBME'18):
//
//	Vtx ──Celec──●── body (conductor) ──Celec──●──┬── Vrx
//	             │                               CL ║ RL
//	            CB (body↔earth)                     │
//	             │                               RX gnd
//	TX gnd ──CGtx──╥── earth ground ──╥──CGrx──────┘
//
// The forward coupling divider is CGtx/(CGtx+CB); the receive-side divider
// is the series return capacitance against the receiver input impedance.
type EQSBody struct {
	// CBody is the body-to-earth capacitance (≈ 150 pF for a standing
	// adult; TBME'18).
	CBody units.Capacitance
	// CGTx and CGRx are the transmitter/receiver ground-plate return-path
	// capacitances to earth. Small wearables have ≈ 1 pF plates; larger
	// hub devices (smartwatch, headset) couple more strongly.
	CGTx, CGRx units.Capacitance
	// CElec is the electrode-to-skin coupling capacitance (hundreds of pF
	// for a worn dry electrode).
	CElec units.Capacitance
	// CLoad is the receiver input capacitance.
	CLoad units.Capacitance
	// RLoad is the receiver termination. ≥ ~1 MΩ is the high-impedance
	// voltage mode the paper advocates; 50 Ω reproduces the power-matched
	// RF habit that destroys the EQS band (ablation ABL-1).
	RLoad units.Resistance
	// FEQSLimit is the frequency above which the quasistatic assumption
	// fails and the body begins to radiate (paper: ≤ 30 MHz).
	FEQSLimit units.Frequency
	// LeakR0 is the effective dipole radius governing off-body leakage:
	// the quasistatic field decays as (LeakR0/(LeakR0+d))³ with distance d
	// from the body surface (Das et al., Sci. Rep. 2019 measured
	// detectability collapsing within ≈ 0.15 m).
	LeakR0 units.Distance
	// BodyPathLossDB is the small additional on-body loss per meter of
	// body path (the channel is whole-body but not perfectly uniform).
	BodyPathLossDB float64
}

// DefaultEQSBody returns the TBME'18-style parameterization used across the
// benchmarks: 150 pF body, 1 pF wearable ground plates, 470 pF electrodes,
// 5 pF / 10 MΩ voltage-mode receiver, 30 MHz EQS limit.
func DefaultEQSBody() *EQSBody {
	return &EQSBody{
		CBody:          150 * units.Picofarad,
		CGTx:           1.0 * units.Picofarad,
		CGRx:           1.0 * units.Picofarad,
		CElec:          470 * units.Picofarad,
		CLoad:          5 * units.Picofarad,
		RLoad:          10 * units.Megaohm,
		FEQSLimit:      30 * units.Megahertz,
		LeakR0:         5 * units.Centimeter,
		BodyPathLossDB: 1.5,
	}
}

// seriesC returns the series combination of two capacitances.
func seriesC(a, b units.Capacitance) units.Capacitance {
	if a <= 0 || b <= 0 {
		return 0
	}
	return a * b / (a + b)
}

// returnC is the receive-side series return capacitance: electrode coupling
// in series with (CGRx in series with CBody).
func (m *EQSBody) returnC() units.Capacitance {
	return seriesC(m.CElec, seriesC(m.CGRx, m.CBody))
}

// TransferV returns the complex voltage transfer function Vrx/Vtx at
// frequency f.
func (m *EQSBody) TransferV(f units.Frequency) complex128 {
	if f <= 0 {
		return 0
	}
	w := 2 * math.Pi * float64(f)

	// Forward coupling: the TX ground plate must displace current through
	// the body-to-earth capacitance; the divider is CGtx/(CGtx+CB).
	fwd := complex(float64(m.CGTx)/float64(m.CGTx+m.CBody), 0)

	// Receive divider: series return capacitance Cser against the receiver
	// input impedance ZL = RL ∥ 1/(jωCL).
	cser := m.returnC()
	if cser <= 0 {
		return 0
	}
	zser := complex(0, -1/(w*float64(cser)))
	zcl := complex(0, -1/(w*float64(m.CLoad)))
	zrl := complex(float64(m.RLoad), 0)
	zl := zrl * zcl / (zrl + zcl)
	rx := zl / (zl + zser)

	return fwd * rx
}

// GainDB returns the on-body channel voltage gain in dB at frequency f
// (negative values are loss). The EQS channel is whole-body: the result is
// independent of where on the body the two devices sit, up to
// BodyPathLossDB per meter (see GainAtDB).
func (m *EQSBody) GainDB(f units.Frequency) float64 {
	h := cmplx.Abs(m.TransferV(f))
	if h == 0 {
		return math.Inf(-1)
	}
	return units.DBV(h)
}

// GainAtDB returns the channel gain including the mild on-body distance
// dependence for a body path of length d (1–2 m spans the whole body).
func (m *EQSBody) GainAtDB(f units.Frequency, d units.Distance) float64 {
	return m.GainDB(f) - m.BodyPathLossDB*float64(d)
}

// PassbandGainDB returns the flat mid-band gain, evaluated at the geometric
// middle of the usable EQS band.
func (m *EQSBody) PassbandGainDB() float64 {
	lo := float64(m.HighPassCorner())
	hi := float64(m.FEQSLimit)
	mid := units.Frequency(math.Sqrt(lo * hi * 100)) // a decade above corner
	if mid > m.FEQSLimit {
		mid = m.FEQSLimit / 2
	}
	return m.GainDB(mid)
}

// HighPassCorner returns the low-frequency -3 dB corner set by the
// termination resistance against the total capacitance at the receiver
// input. In voltage mode this sits at a few kHz; in 50 Ω mode it moves
// above the entire EQS band, which is the quantitative form of the paper's
// "RF is the wrong technology" argument.
func (m *EQSBody) HighPassCorner() units.Frequency {
	ctot := m.returnC() + m.CLoad
	if m.RLoad <= 0 || ctot <= 0 {
		return 0
	}
	return units.Frequency(1 / (2 * math.Pi * float64(m.RLoad) * float64(ctot)))
}

// InEQSRegime reports whether f is within the quasistatic validity region
// (above the receiver high-pass corner, below the 30 MHz EQS limit).
func (m *EQSBody) InEQSRegime(f units.Frequency) bool {
	return f > m.HighPassCorner() && f <= m.FEQSLimit
}

// UsableBandwidth returns the flat EQS passband width.
func (m *EQSBody) UsableBandwidth() units.Frequency {
	c := m.HighPassCorner()
	if c >= m.FEQSLimit {
		return 0
	}
	return m.FEQSLimit - c
}

// LeakageGainDB returns the attacker-observable coupling at distance d from
// the body surface, at frequency f. The quasistatic field of the body
// (an electrically small source) collapses as the cube of distance, which
// is what confines Wi-R to the paper's "personal bubble": at d = 0 the
// attacker sees the on-body gain; by d ≈ 0.15 m the pickup has fallen
// ~30 dB and keeps collapsing 60 dB/decade.
func (m *EQSBody) LeakageGainDB(f units.Frequency, d units.Distance) float64 {
	if d < 0 {
		d = 0
	}
	geom := float64(m.LeakR0) / float64(m.LeakR0+d)
	return m.GainDB(f) + units.DBV(geom*geom*geom)
}

// Name identifies the channel for reports.
func (m *EQSBody) Name() string { return "EQS-HBC body channel" }
