package channel

import (
	"testing"

	"wiban/internal/units"
)

func BenchmarkEQSGain(b *testing.B) {
	m := DefaultEQSBody()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.GainDB(21 * units.Megahertz)
	}
	_ = sink
}

func BenchmarkEQSLeakageSweep(b *testing.B) {
	m := DefaultEQSBody()
	var sink float64
	for i := 0; i < b.N; i++ {
		for d := units.Distance(0); d < units.Meter; d += 10 * units.Centimeter {
			sink += m.LeakageGainDB(21*units.Megahertz, d)
		}
	}
	_ = sink
}

func BenchmarkRFPathLoss(b *testing.B) {
	m := DefaultBLEPath()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.GainDB(1.5 * units.Meter)
	}
	_ = sink
}

func BenchmarkMQSCoupling(b *testing.B) {
	m := DefaultMQSImplant()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.GainDB(5 * units.Centimeter)
	}
	_ = sink
}
