package channel

import (
	"math"
	"testing"
	"testing/quick"

	"wiban/internal/units"
)

func TestEQSPassbandIsFlat(t *testing.T) {
	m := DefaultEQSBody()
	// Across the EQS band (100 kHz .. 30 MHz) the voltage-mode channel must
	// be flat to within 1 dB — that flatness is what makes broadband EQS-HBC
	// possible at all.
	ref := m.GainDB(1 * units.Megahertz)
	for _, f := range []units.Frequency{
		100 * units.Kilohertz, 500 * units.Kilohertz, 1 * units.Megahertz,
		5 * units.Megahertz, 10 * units.Megahertz, 21 * units.Megahertz,
		30 * units.Megahertz,
	} {
		g := m.GainDB(f)
		if math.Abs(g-ref) > 1.0 {
			t.Errorf("gain at %v = %.2f dB, deviates from %.2f dB by > 1 dB", f, g, ref)
		}
	}
}

func TestEQSPassbandLossMagnitude(t *testing.T) {
	// Measured EQS-HBC body channels sit around -50 to -70 dB in voltage
	// mode (TBME'18). The default parameterization must land in that window.
	g := DefaultEQSBody().PassbandGainDB()
	if g > -50 || g < -70 {
		t.Errorf("passband gain %.1f dB outside the plausible -50..-70 dB window", g)
	}
}

func TestEQSHighPassCornerVoltageMode(t *testing.T) {
	m := DefaultEQSBody()
	c := m.HighPassCorner()
	// 10 MΩ against ~6 pF puts the corner at a few kHz: the whole EQS band
	// (100 kHz+) is usable.
	if c < 500*units.Hertz || c > 10*units.Kilohertz {
		t.Errorf("voltage-mode high-pass corner %v, want a few kHz", c)
	}
	if !m.InEQSRegime(1 * units.Megahertz) {
		t.Error("1 MHz should be inside the EQS regime")
	}
	if m.InEQSRegime(100 * units.Megahertz) {
		t.Error("100 MHz should be outside the EQS regime")
	}
	if bw := m.UsableBandwidth(); bw < 29*units.Megahertz {
		t.Errorf("usable bandwidth %v, want ≈ 30 MHz", bw)
	}
}

func TestFiftyOhmTerminationKillsEQSBand(t *testing.T) {
	// The paper's central ablation: the identical body channel terminated
	// in 50 Ω (the RF-style power match) loses the EQS band. The corner
	// moves above 30 MHz and the 1 MHz gain drops by tens of dB.
	v := DefaultEQSBody()
	r50 := DefaultEQSBody()
	r50.RLoad = 50 * units.Ohm

	if c := r50.HighPassCorner(); c < 30*units.Megahertz {
		t.Errorf("50 Ω corner %v, want above the EQS limit", c)
	}
	lossAt1M := v.GainDB(1*units.Megahertz) - r50.GainDB(1*units.Megahertz)
	if lossAt1M < 30 {
		t.Errorf("50 Ω termination costs only %.1f dB at 1 MHz, want > 30 dB", lossAt1M)
	}
	// And the 50 Ω response rises with frequency (high-pass behaviour).
	if r50.GainDB(10*units.Megahertz) <= r50.GainDB(1*units.Megahertz) {
		t.Error("50 Ω-terminated channel should rise with frequency below its corner")
	}
}

func TestEQSGainMonotoneInGroundPlate(t *testing.T) {
	// Bigger TX ground plates (hub-class devices) couple better. Gain must
	// be monotone nondecreasing in CGTx.
	f := func(a, b uint8) bool {
		ca := units.Capacitance(float64(a)+1) * units.Picofarad / 4
		cb := units.Capacitance(float64(b)+1) * units.Picofarad / 4
		if ca > cb {
			ca, cb = cb, ca
		}
		ma := DefaultEQSBody()
		ma.CGTx = ca
		mb := DefaultEQSBody()
		mb.CGTx = cb
		return ma.GainDB(1*units.Megahertz) <= mb.GainDB(1*units.Megahertz)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEQSLeakageCollapsesOffBody(t *testing.T) {
	m := DefaultEQSBody()
	f := 21 * units.Megahertz
	on := m.LeakageGainDB(f, 0)
	at15 := m.LeakageGainDB(f, 15*units.Centimeter)
	at1m := m.LeakageGainDB(f, 1*units.Meter)
	if on != m.GainDB(f) {
		t.Errorf("leakage at d=0 = %.1f dB, want on-body gain %.1f dB", on, m.GainDB(f))
	}
	// Das et al.: detectability collapses within ~0.15 m. Expect a visible
	// tens-of-dB drop at 15 cm, and catastrophic (> 70 dB) loss by 1 m.
	if drop := on - at15; drop < 30 {
		t.Errorf("leakage drop at 15 cm = %.1f dB, want > 30 dB", drop)
	}
	if drop := on - at1m; drop < 70 {
		t.Errorf("leakage drop at 1 m = %.1f dB, want > 70 dB", drop)
	}
	// 60 dB/decade asymptote: from 1 m to 10 m should lose ≈ 60 dB.
	slope := m.LeakageGainDB(f, 1*units.Meter) - m.LeakageGainDB(f, 10*units.Meter)
	if slope < 55 || slope > 62 {
		t.Errorf("far leakage slope %.1f dB/decade, want ≈ 60", slope)
	}
}

func TestEQSLeakageMonotone(t *testing.T) {
	m := DefaultEQSBody()
	f := func(a, b uint16) bool {
		da := units.Distance(a) * units.Millimeter
		db := units.Distance(b) * units.Millimeter
		if da > db {
			da, db = db, da
		}
		return m.LeakageGainDB(10*units.Megahertz, da) >=
			m.LeakageGainDB(10*units.Megahertz, db)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEQSOnBodyDistanceMild(t *testing.T) {
	m := DefaultEQSBody()
	f := 10 * units.Megahertz
	// Whole-body property: 2 m of body path costs only a few dB.
	d := m.GainAtDB(f, 0) - m.GainAtDB(f, 2*units.Meter)
	if d < 0 || d > 6 {
		t.Errorf("2 m on-body path costs %.1f dB, want 0..6 dB", d)
	}
}

func TestEQSDegenerateInputs(t *testing.T) {
	m := DefaultEQSBody()
	if g := m.TransferV(0); g != 0 {
		t.Errorf("transfer at DC = %v, want 0", g)
	}
	if g := m.GainDB(0); !math.IsInf(g, -1) {
		t.Errorf("gain at DC = %v, want -Inf", g)
	}
	if c := seriesC(0, 1*units.Picofarad); c != 0 {
		t.Errorf("seriesC with zero = %v, want 0", c)
	}
}

func TestRFFriisKnownPoint(t *testing.T) {
	m := DefaultBLEPath()
	// Friis at 2.44 GHz, 1 m: 20·log10(4π·1·2.44e9/c) ≈ 40.2 dB.
	pl := m.FreeSpacePathLossDB(1 * units.Meter)
	if math.Abs(pl-40.2) > 0.3 {
		t.Errorf("FSPL(1 m, 2.44 GHz) = %.2f dB, want ≈ 40.2 dB", pl)
	}
	// 20 dB/decade.
	if d := m.FreeSpacePathLossDB(10*units.Meter) - pl; math.Abs(d-20) > 1e-9 {
		t.Errorf("Friis slope %.2f dB/decade, want 20", d)
	}
}

func TestRFRangeForLossInverse(t *testing.T) {
	m := DefaultBLEPath()
	f := func(loss uint8) bool {
		l := 40 + float64(loss%60)
		d := m.RangeForLossDB(l)
		return math.Abs(m.FreeSpacePathLossDB(d)-l) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRFRoomScaleBubble(t *testing.T) {
	// The paper: BLE radiates 5–10 m away. With a 0 dBm transmitter and a
	// -90 dBm sniffer, the free-space bubble radius must be far beyond 10 m
	// (containment is impossible); even a deaf -70 dBm receiver hears 5+ m.
	m := DefaultBLEPath()
	if r := m.RangeForLossDB(90); r < 10*units.Meter {
		t.Errorf("90 dB bubble = %v, want ≥ 10 m", r)
	}
	if r := m.RangeForLossDB(70); r < 5*units.Meter {
		t.Errorf("70 dB bubble = %v, want ≥ 5 m", r)
	}
}

func TestRFOnBodyWeakerThanLeakage(t *testing.T) {
	// Per-meter, the shadowed on-body link is weaker than the unshadowed
	// path to an eavesdropper — the radiative channel is simultaneously a
	// bad body channel and a good leak, the paper's security point.
	m := DefaultBLEPath()
	if m.GainDB(1*units.Meter) >= m.LeakageGainDB(1*units.Meter) {
		t.Error("on-body gain should be below eavesdropper gain at equal distance")
	}
}

func TestRFNearFieldClamp(t *testing.T) {
	m := DefaultBLEPath()
	if m.FreeSpacePathLossDB(0) != m.FreeSpacePathLossDB(m.RefDistance) {
		t.Error("distances below RefDistance should clamp")
	}
}

func TestWavelength(t *testing.T) {
	m := DefaultBLEPath()
	wl := m.Wavelength()
	if math.Abs(float64(wl)-0.1229) > 0.001 {
		t.Errorf("2.44 GHz wavelength = %v, want ≈ 12.3 cm", wl)
	}
}

func TestEQSvsRFSummary(t *testing.T) {
	// Integration check of the paper's §III-B argument in one place:
	// at 1 m on-body, EQS (voltage mode, 21 MHz) beats BLE's shadowed
	// radiative path, *and* EQS leaks less at 5 m than RF does.
	eqs := DefaultEQSBody()
	rf := DefaultBLEPath()
	fc := 21 * units.Megahertz

	eqsOn := eqs.GainAtDB(fc, 1*units.Meter)
	rfOn := rf.GainDB(1 * units.Meter)
	if eqsOn <= rfOn {
		t.Errorf("EQS on-body %.1f dB should beat shadowed RF %.1f dB", eqsOn, rfOn)
	}

	eqsLeak := eqs.LeakageGainDB(fc, 5*units.Meter)
	rfLeak := rf.LeakageGainDB(5 * units.Meter)
	if eqsLeak >= rfLeak-40 {
		t.Errorf("EQS leak at 5 m (%.1f dB) should be ≥40 dB below RF leak (%.1f dB)",
			eqsLeak, rfLeak)
	}
}

func TestRFCongestionLossCurve(t *testing.T) {
	m := DefaultBLEPath()
	if m.CongestionLossDB(0) != 0 || m.CongestionLossDB(-1) != 0 {
		t.Error("idle band must cost 0 dB")
	}
	// 50% occupancy doubles the noise floor: 3 dB.
	if got := m.CongestionLossDB(0.5); math.Abs(got-3.0103) > 0.001 {
		t.Errorf("CongestionLossDB(0.5) = %.4f dB, want ≈ 3.01", got)
	}
	// Monotone increasing, finite at saturation (clamped at 99%).
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		got := m.CongestionLossDB(u)
		if got < prev {
			t.Fatalf("curve not monotone at util %.2f", u)
		}
		prev = got
	}
	if sat := m.CongestionLossDB(1); math.IsInf(sat, 0) || sat != m.CongestionLossDB(0.99) {
		t.Errorf("saturation must clamp: %v", sat)
	}
}
