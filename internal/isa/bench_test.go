package isa

import (
	"math"
	"testing"

	"wiban/internal/units"
)

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)/7), 0)
	}
	b.SetBytes(1024 * 16)
	for i := 0; i < b.N; i++ {
		buf := make([]complex128, len(x))
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiquadBlock(b *testing.B) {
	f := NewBandPass(250*units.Hertz, 10*units.Hertz, 0.7)
	in := make([]float64, 2500)
	for i := range in {
		in[i] = math.Sin(float64(i) / 5)
	}
	b.SetBytes(int64(len(in) * 8))
	for i := 0; i < b.N; i++ {
		f.Reset()
		f.ProcessAll(in)
	}
}

func BenchmarkVADSecond(b *testing.B) {
	in := make([]float64, 16000)
	for i := range in {
		in[i] = math.Sin(float64(i)/3) * 0.3
	}
	b.SetBytes(int64(len(in) * 8))
	for i := 0; i < b.N; i++ {
		v := NewVAD(16 * units.Kilohertz)
		for _, s := range in {
			v.Process(s)
		}
	}
}

func BenchmarkBandEnergies(b *testing.B) {
	frame := make([]float64, 512)
	w := Hann(512)
	for i := range frame {
		frame[i] = w[i] * math.Sin(float64(i)/4)
	}
	spec, err := PowerSpectrum(frame)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		BandEnergies(spec, 16*units.Kilohertz, 100*units.Hertz, 8*units.Kilohertz, 12)
	}
}
