package isa

import (
	"fmt"

	"wiban/internal/units"
)

// Transmission policies: how a leaf node converts its sensor stream plus
// ISA decisions into an average link rate. The paper's architectural claim
// is that ISA ("as appropriate") plus ULP communication lets the same
// information reach the hub at a fraction of the raw stream's cost; these
// policies quantify the reduction factor.

// Policy maps a raw sensor rate to the average transmitted rate.
type Policy interface {
	// OutputRate returns the average link rate for a given raw rate.
	OutputRate(raw units.DataRate) units.DataRate
	// ComputePower returns the leaf-side processing power the policy
	// costs (the ISA block of Fig. 1).
	ComputePower() units.Power
	// Name identifies the policy in tables.
	Name() string
}

// StreamAll transmits the raw stream unchanged (the policy of a dumb
// sensor node).
type StreamAll struct{}

// OutputRate returns the raw rate unchanged.
func (StreamAll) OutputRate(raw units.DataRate) units.DataRate { return raw }

// ComputePower is zero: no local processing.
func (StreamAll) ComputePower() units.Power { return 0 }

// Name identifies the policy.
func (StreamAll) Name() string { return "stream-raw" }

// Compress transmits the stream after a codec with the given measured
// ratio, costing some ISA power.
type Compress struct {
	// Label names the codec ("MJPEG q50", "delta+Rice").
	Label string
	// MeasuredRatio is the compression ratio (original/compressed).
	MeasuredRatio float64
	// Power is the codec's processing power on the leaf node.
	Power units.Power
}

// OutputRate divides the raw rate by the measured ratio.
func (c Compress) OutputRate(raw units.DataRate) units.DataRate {
	if c.MeasuredRatio <= 1 {
		return raw
	}
	return units.DataRate(float64(raw) / c.MeasuredRatio)
}

// ComputePower returns the codec power.
func (c Compress) ComputePower() units.Power { return c.Power }

// Name identifies the policy.
func (c Compress) Name() string { return fmt.Sprintf("compress(%s)", c.Label) }

// EventGated transmits only windows of signal around detected events plus
// a low-rate heartbeat so the hub knows the node is alive.
type EventGated struct {
	// Label names the detector ("R-peak", "VAD").
	Label string
	// EventsPerSecond is the long-run detector firing rate.
	EventsPerSecond float64
	// Window is the signal span transmitted per event.
	Window units.Duration
	// Heartbeat is the constant keep-alive rate.
	Heartbeat units.DataRate
	// Power is the detector's processing power.
	Power units.Power
}

// OutputRate is the duty-cycled raw rate plus heartbeat, capped at the raw
// rate (gating can never exceed streaming).
func (g EventGated) OutputRate(raw units.DataRate) units.DataRate {
	duty := g.EventsPerSecond * float64(g.Window)
	if duty > 1 {
		duty = 1
	}
	out := units.DataRate(duty*float64(raw)) + g.Heartbeat
	if out > raw {
		return raw
	}
	return out
}

// ComputePower returns the detector power.
func (g EventGated) ComputePower() units.Power { return g.Power }

// Name identifies the policy.
func (g EventGated) Name() string { return fmt.Sprintf("event-gated(%s)", g.Label) }

// FeatureOnly transmits only a fixed-size feature vector per event (e.g.
// heart rate per beat, band energies per audio frame) — the extreme ISA
// point where the raw stream never leaves the node.
type FeatureOnly struct {
	// Label names the feature ("HR", "log-mel").
	Label string
	// EventsPerSecond is the feature emission rate.
	EventsPerSecond float64
	// BitsPerEvent is the feature payload size.
	BitsPerEvent int
	// Power is the extractor's processing power.
	Power units.Power
}

// OutputRate is events × feature size, independent of the raw rate.
func (f FeatureOnly) OutputRate(raw units.DataRate) units.DataRate {
	out := units.DataRate(f.EventsPerSecond * float64(f.BitsPerEvent))
	if out > raw {
		return raw
	}
	return out
}

// ComputePower returns the extractor power.
func (f FeatureOnly) ComputePower() units.Power { return f.Power }

// Name identifies the policy.
func (f FeatureOnly) Name() string { return fmt.Sprintf("feature-only(%s)", f.Label) }

// ReductionFactor reports raw/output for a policy at a given raw rate.
func ReductionFactor(p Policy, raw units.DataRate) float64 {
	out := p.OutputRate(raw)
	if out <= 0 {
		return 0
	}
	return float64(raw) / float64(out)
}
