package isa

import (
	"math"

	"wiban/internal/units"
)

// Event detectors: the microwatt-class decision logic that lets a leaf node
// transmit events instead of raw streams.

// RPeakDetector finds ECG R-peaks with a Pan-Tompkins-style pipeline:
// band-pass around the QRS band, differentiate, square, integrate over a
// moving window, then adaptive thresholding with a refractory period.
type RPeakDetector struct {
	fs         units.Frequency
	bp         *Biquad
	integ      *MovingAverage
	prev       float64 // previous band-passed sample (for derivative)
	thresh     float64
	refractory int // samples remaining before next detection allowed
	index      int
	lastPeak   int
	peaks      []int
}

// NewRPeakDetector returns a detector for ECG sampled at fs.
func NewRPeakDetector(fs units.Frequency) *RPeakDetector {
	winSamples := int(0.15 * float64(fs)) // 150 ms integration window
	if winSamples < 1 {
		winSamples = 1
	}
	return &RPeakDetector{
		fs:    fs,
		bp:    NewBandPass(fs, 10*units.Hertz, 0.7), // QRS energy 5–15 Hz
		integ: NewMovingAverage(winSamples),
		// Threshold adapts from the signal; start permissive.
		thresh:   1e-6,
		lastPeak: -1,
	}
}

// Process consumes one sample (millivolts) and reports whether an R-peak
// fired at this sample.
func (d *RPeakDetector) Process(x float64) bool {
	f := d.bp.Process(x)
	deriv := f - d.prev
	d.prev = f
	e := d.integ.Process(deriv * deriv)

	// Exponentially adapt the threshold toward half the running peak
	// energy.
	if e > d.thresh {
		d.thresh += 0.05 * (e - d.thresh)
	} else {
		d.thresh += 0.0005 * (e/2 - d.thresh)
	}

	fired := false
	if d.refractory > 0 {
		d.refractory--
	} else if e > d.thresh*0.8 && e > 1e-9 {
		fired = true
		d.peaks = append(d.peaks, d.index)
		d.lastPeak = d.index
		d.refractory = int(0.25 * float64(d.fs)) // 250 ms refractory
	}
	d.index++
	return fired
}

// Peaks returns the detected peak sample indices.
func (d *RPeakDetector) Peaks() []int { return d.peaks }

// HeartRateBPM estimates heart rate from the median RR interval of the
// last few detections; it returns 0 until two peaks have been seen.
func (d *RPeakDetector) HeartRateBPM() float64 {
	n := len(d.peaks)
	if n < 2 {
		return 0
	}
	// Median of up to the last 8 RR intervals.
	start := n - 9
	if start < 0 {
		start = 0
	}
	var rrs []float64
	for i := start + 1; i < n; i++ {
		rrs = append(rrs, float64(d.peaks[i]-d.peaks[i-1]))
	}
	// Insertion sort (tiny slice).
	for i := 1; i < len(rrs); i++ {
		for j := i; j > 0 && rrs[j] < rrs[j-1]; j-- {
			rrs[j], rrs[j-1] = rrs[j-1], rrs[j]
		}
	}
	med := rrs[len(rrs)/2]
	if med <= 0 {
		return 0
	}
	return 60 * float64(d.fs) / med
}

// EMGOnsetDetector detects muscle activations with a rectified envelope
// and hysteresis thresholding.
type EMGOnsetDetector struct {
	env     *MovingAverage
	hi, lo  float64
	active  bool
	onsets  int
	offsets int
}

// NewEMGOnsetDetector returns a detector at fs. hi/lo are envelope
// thresholds in the signal's units (mV).
func NewEMGOnsetDetector(fs units.Frequency, hi, lo float64) *EMGOnsetDetector {
	win := int(0.05 * float64(fs)) // 50 ms envelope
	if win < 1 {
		win = 1
	}
	return &EMGOnsetDetector{env: NewMovingAverage(win), hi: hi, lo: lo}
}

// Process consumes one sample and returns the current activation state.
func (d *EMGOnsetDetector) Process(x float64) bool {
	e := d.env.Process(math.Abs(x))
	if !d.active && e > d.hi {
		d.active = true
		d.onsets++
	} else if d.active && e < d.lo {
		d.active = false
		d.offsets++
	}
	return d.active
}

// Onsets returns the number of activations detected.
func (d *EMGOnsetDetector) Onsets() int { return d.onsets }

// VAD is a frame-energy voice-activity detector with a min-tracking noise
// floor.
type VAD struct {
	frameLen int
	ratio    float64 // speech threshold vs noise floor
	buf      []float64
	floor    float64
	active   bool
	frames   int
	speech   int
}

// NewVAD returns a detector at fs with 20 ms frames.
func NewVAD(fs units.Frequency) *VAD {
	fl := int(0.02 * float64(fs))
	if fl < 1 {
		fl = 1
	}
	return &VAD{frameLen: fl, ratio: 6, floor: math.MaxFloat64}
}

// Process consumes one sample and returns the current (frame-held) speech
// decision.
func (v *VAD) Process(x float64) bool {
	v.buf = append(v.buf, x)
	if len(v.buf) < v.frameLen {
		return v.active
	}
	var e float64
	for _, s := range v.buf {
		e += s * s
	}
	e /= float64(len(v.buf))
	v.buf = v.buf[:0]
	v.frames++

	// Noise floor: fast to fall, very slow to rise.
	if e < v.floor {
		v.floor = e
	} else {
		v.floor += 0.01 * (e - v.floor)
	}
	minFloor := 1e-8
	fl := v.floor
	if fl < minFloor {
		fl = minFloor
	}
	v.active = e > v.ratio*fl
	if v.active {
		v.speech++
	}
	return v.active
}

// SpeechFraction returns the fraction of frames classified as speech.
func (v *VAD) SpeechFraction() float64 {
	if v.frames == 0 {
		return 0
	}
	return float64(v.speech) / float64(v.frames)
}
