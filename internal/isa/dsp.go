// Package isa implements the in-sensor analytics (ISA) the paper assigns
// to human-inspired leaf nodes: the ~100 µW of local signal processing
// that turns a raw sensor stream into events, features, or a gated subset
// worth communicating.
//
// The package supplies the DSP primitives (biquad IIR filters, FFT,
// windowing, band energies), the event detectors built from them (ECG
// R-peak, EMG onset, audio voice-activity), and the transmission policies
// that convert detector output into an average link data rate — the
// quantity the battery-life projections consume.
package isa

import (
	"fmt"
	"math"
	"math/cmplx"

	"wiban/internal/units"
)

// Biquad is a direct-form-I second-order IIR section.
type Biquad struct {
	b0, b1, b2, a1, a2 float64
	x1, x2, y1, y2     float64
}

// Process filters one sample.
func (f *Biquad) Process(x float64) float64 {
	y := f.b0*x + f.b1*f.x1 + f.b2*f.x2 - f.a1*f.y1 - f.a2*f.y2
	f.x2, f.x1 = f.x1, x
	f.y2, f.y1 = f.y1, y
	return y
}

// ProcessAll filters a slice, returning a new slice.
func (f *Biquad) ProcessAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.Process(x)
	}
	return out
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.x1, f.x2, f.y1, f.y2 = 0, 0, 0, 0 }

// rbj computes the common intermediate terms of the RBJ cookbook designs.
func rbj(fs, f0 units.Frequency, q float64) (w0, alpha, cw float64) {
	w0 = 2 * math.Pi * float64(f0) / float64(fs)
	alpha = math.Sin(w0) / (2 * q)
	cw = math.Cos(w0)
	return
}

// NewLowPass designs an RBJ low-pass biquad at cutoff f0 with quality q.
func NewLowPass(fs, f0 units.Frequency, q float64) *Biquad {
	w0, alpha, cw := rbj(fs, f0, q)
	_ = w0
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cw) / 2 / a0, b1: (1 - cw) / a0, b2: (1 - cw) / 2 / a0,
		a1: -2 * cw / a0, a2: (1 - alpha) / a0,
	}
}

// NewHighPass designs an RBJ high-pass biquad.
func NewHighPass(fs, f0 units.Frequency, q float64) *Biquad {
	_, alpha, cw := rbj(fs, f0, q)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 + cw) / 2 / a0, b1: -(1 + cw) / a0, b2: (1 + cw) / 2 / a0,
		a1: -2 * cw / a0, a2: (1 - alpha) / a0,
	}
}

// NewBandPass designs an RBJ constant-peak band-pass biquad centered at f0.
func NewBandPass(fs, f0 units.Frequency, q float64) *Biquad {
	_, alpha, cw := rbj(fs, f0, q)
	a0 := 1 + alpha
	return &Biquad{
		b0: alpha / a0, b1: 0, b2: -alpha / a0,
		a1: -2 * cw / a0, a2: (1 - alpha) / a0,
	}
}

// MovingAverage is a boxcar smoother of fixed window length.
type MovingAverage struct {
	buf []float64
	i   int
	n   int
	sum float64
}

// NewMovingAverage returns a window-length-w smoother (w ≥ 1).
func NewMovingAverage(w int) *MovingAverage {
	if w < 1 {
		w = 1
	}
	return &MovingAverage{buf: make([]float64, w)}
}

// Process pushes a sample and returns the current mean.
func (m *MovingAverage) Process(x float64) float64 {
	if m.n < len(m.buf) {
		m.n++
	} else {
		m.sum -= m.buf[m.i]
	}
	m.buf[m.i] = x
	m.sum += x
	m.i = (m.i + 1) % len(m.buf)
	return m.sum / float64(m.n)
}

// --- FFT --------------------------------------------------------------------

// FFT computes the in-place radix-2 decimation-in-time FFT of x. The
// length must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("isa: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT (scaled by 1/n).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// Hann returns the n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// PowerSpectrum returns |FFT|² of a real windowed frame (length padded to
// the next power of two), bins 0..n/2.
func PowerSpectrum(frame []float64) ([]float64, error) {
	n := 1
	for n < len(frame) {
		n <<= 1
	}
	x := make([]complex128, n)
	for i, v := range frame {
		x[i] = complex(v, 0)
	}
	if err := FFT(x); err != nil {
		return nil, err
	}
	out := make([]float64, n/2+1)
	for i := range out {
		out[i] = real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	return out, nil
}

// BandEnergies integrates a power spectrum into nBands log-spaced bands
// between fLo and fHi — the "log-mel-lite" feature vector a keyword
// spotter consumes.
func BandEnergies(spec []float64, fs units.Frequency, fLo, fHi units.Frequency, nBands int) []float64 {
	out := make([]float64, nBands)
	if len(spec) < 2 || nBands < 1 || fLo <= 0 || fHi <= fLo {
		return out
	}
	nfft := (len(spec) - 1) * 2
	binHz := float64(fs) / float64(nfft)
	logLo, logHi := math.Log(float64(fLo)), math.Log(float64(fHi))
	for b := 0; b < nBands; b++ {
		lo := math.Exp(logLo + (logHi-logLo)*float64(b)/float64(nBands))
		hi := math.Exp(logLo + (logHi-logLo)*float64(b+1)/float64(nBands))
		iLo, iHi := int(lo/binHz), int(hi/binHz)
		if iLo < 0 {
			iLo = 0
		}
		if iHi > len(spec)-1 {
			iHi = len(spec) - 1
		}
		for i := iLo; i <= iHi; i++ {
			out[b] += spec[i]
		}
		out[b] = math.Log1p(out[b])
	}
	return out
}
