package isa

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"wiban/internal/sensors"
	"wiban/internal/units"
)

// --- Filters -----------------------------------------------------------------

// gainAt measures a filter's steady-state amplitude gain at frequency f.
func gainAt(mk func() *Biquad, fs, f units.Frequency) float64 {
	filt := mk()
	n := int(float64(fs) * 2)
	var maxOut float64
	for i := 0; i < n; i++ {
		x := math.Sin(2 * math.Pi * float64(f) * float64(i) / float64(fs))
		y := filt.Process(x)
		if i > n/2 && math.Abs(y) > maxOut { // skip transient
			maxOut = math.Abs(y)
		}
	}
	return maxOut
}

func TestLowPassResponse(t *testing.T) {
	fs := 1 * units.Kilohertz
	mk := func() *Biquad { return NewLowPass(fs, 50*units.Hertz, 0.707) }
	pass := gainAt(mk, fs, 10*units.Hertz)
	stop := gainAt(mk, fs, 400*units.Hertz)
	if pass < 0.9 || pass > 1.1 {
		t.Errorf("passband gain %.3f, want ≈ 1", pass)
	}
	if stop > 0.05 {
		t.Errorf("stopband gain %.3f, want < 0.05", stop)
	}
}

func TestHighPassResponse(t *testing.T) {
	fs := 1 * units.Kilohertz
	mk := func() *Biquad { return NewHighPass(fs, 100*units.Hertz, 0.707) }
	if g := gainAt(mk, fs, 400*units.Hertz); g < 0.9 || g > 1.1 {
		t.Errorf("HP passband gain %.3f, want ≈ 1", g)
	}
	if g := gainAt(mk, fs, 5*units.Hertz); g > 0.05 {
		t.Errorf("HP stopband gain %.3f, want < 0.05", g)
	}
}

func TestBandPassResponse(t *testing.T) {
	fs := 250 * units.Hertz
	mk := func() *Biquad { return NewBandPass(fs, 10*units.Hertz, 0.7) }
	center := gainAt(mk, fs, 10*units.Hertz)
	below := gainAt(mk, fs, 0.5*units.Hertz)
	above := gainAt(mk, fs, 100*units.Hertz)
	if center < 0.7 {
		t.Errorf("BP center gain %.3f, want ≈ 1", center)
	}
	if below > center/3 || above > center/3 {
		t.Errorf("BP skirts %.3f/%.3f not attenuated vs center %.3f", below, above, center)
	}
}

func TestBiquadResetAndProcessAll(t *testing.T) {
	f := NewLowPass(1*units.Kilohertz, 100*units.Hertz, 0.707)
	in := []float64{1, 0, 0, 0, 0}
	a := f.ProcessAll(in)
	f.Reset()
	b := f.ProcessAll(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reset did not restore initial state")
		}
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(4)
	seq := []float64{4, 8, 12, 16, 20}
	want := []float64{4, 6, 8, 10, 14}
	for i, x := range seq {
		if got := m.Process(x); math.Abs(got-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, got, want[i])
		}
	}
	if NewMovingAverage(0) == nil {
		t.Error("zero window should clamp, not fail")
	}
}

// --- FFT ---------------------------------------------------------------------

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSinusoidBin(t *testing.T) {
	n := 64
	k := 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*float64(k)*float64(i)/float64(n)), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	// Energy should concentrate at bins k and n-k.
	for i := range x {
		mag := cmplx.Abs(x[i])
		if i == k || i == n-k {
			if mag < float64(n)/2*0.99 {
				t.Errorf("bin %d magnitude %.2f, want %.1f", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("leakage at bin %d: %g", i, mag)
		}
	}
}

func TestFFTInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if FFT(x) != nil || IFFT(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE)/timeE > 1e-9 {
		t.Errorf("Parseval violated: time %.6f vs freq %.6f", timeE, freqE)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("length 12 should fail")
	}
	if err := FFT(nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestPowerSpectrumAndBands(t *testing.T) {
	fs := 16 * units.Kilohertz
	n := 512
	frame := make([]float64, n)
	w := Hann(n)
	for i := range frame {
		frame[i] = w[i] * math.Sin(2*math.Pi*1000*float64(i)/float64(fs))
	}
	spec, err := PowerSpectrum(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Peak bin should be near 1 kHz: bin = 1000/(16000/512) = 32.
	peak := 0
	for i := range spec {
		if spec[i] > spec[peak] {
			peak = i
		}
	}
	if peak < 30 || peak > 34 {
		t.Errorf("spectral peak at bin %d, want ≈ 32", peak)
	}

	bands := BandEnergies(spec, fs, 100*units.Hertz, 8*units.Kilohertz, 12)
	if len(bands) != 12 {
		t.Fatalf("band count %d", len(bands))
	}
	// The band containing 1 kHz should dominate.
	maxB := 0
	for i := range bands {
		if bands[i] > bands[maxB] {
			maxB = i
		}
	}
	// 1 kHz in log space from 100..8000: log(10)/log(80) ≈ 0.526 → band 6 of 12.
	if maxB < 5 || maxB > 7 {
		t.Errorf("dominant band %d, want ≈ 6", maxB)
	}
}

func TestBandEnergiesDegenerate(t *testing.T) {
	if got := BandEnergies(nil, units.Kilohertz, 1, 10, 4); len(got) != 4 {
		t.Error("degenerate bands length wrong")
	}
	if got := BandEnergies([]float64{1, 2, 3}, units.Kilohertz, 10, 5, 2); got[0] != 0 {
		t.Error("inverted band range should be zeros")
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(64)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[63]) > 1e-12 {
		t.Error("Hann endpoints should be 0")
	}
	if math.Abs(w[32]-1) > 0.01 {
		t.Errorf("Hann midpoint %.3f, want ≈ 1", w[32])
	}
	if one := Hann(1); one[0] != 1 {
		t.Error("Hann(1) should be [1]")
	}
}

// --- Detectors -----------------------------------------------------------------

func TestRPeakDetectorAccuracy(t *testing.T) {
	fs := 250 * units.Hertz
	for _, bpm := range []float64{55, 72, 95} {
		g := sensors.NewECGSynth(fs, bpm, 3)
		d := NewRPeakDetector(fs)
		seconds := 60.0
		for i := 0; i < int(seconds*float64(fs)); i++ {
			d.Process(g.Next())
		}
		want := bpm // beats in 60 s
		got := float64(len(d.Peaks()))
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("bpm=%v: detected %v beats in 60 s, want ≈ %v", bpm, got, want)
		}
		if hr := d.HeartRateBPM(); math.Abs(hr-bpm)/bpm > 0.15 {
			t.Errorf("bpm=%v: estimated HR %.1f", bpm, hr)
		}
	}
}

func TestRPeakRefractory(t *testing.T) {
	fs := 250 * units.Hertz
	g := sensors.NewECGSynth(fs, 70, 4)
	d := NewRPeakDetector(fs)
	for i := 0; i < 250*30; i++ {
		d.Process(g.Next())
	}
	peaks := d.Peaks()
	minGap := 250 / 4 // 250 ms refractory at 250 Hz
	for i := 1; i < len(peaks); i++ {
		if peaks[i]-peaks[i-1] < minGap {
			t.Fatalf("peaks %d and %d violate refractory", peaks[i-1], peaks[i])
		}
	}
	if d.HeartRateBPM() == 0 {
		t.Error("heart rate should be available after 30 s")
	}
}

func TestEMGOnsetDetector(t *testing.T) {
	fs := 1 * units.Kilohertz
	g := sensors.NewEMGSynth(fs, 5)
	d := NewEMGOnsetDetector(fs, 0.15, 0.05)
	n := 60000 // 60 s
	agree, total := 0, 0
	transitions := 0
	prev := false
	for i := 0; i < n; i++ {
		x := g.Next()
		got := d.Process(x)
		// Skip the first 2 s of envelope warm-up.
		if i > 2000 {
			if got == g.Active() {
				agree++
			}
			total++
		}
		if got != prev {
			transitions++
			prev = got
		}
	}
	if acc := float64(agree) / float64(total); acc < 0.85 {
		t.Errorf("EMG state accuracy %.2f, want ≥ 0.85", acc)
	}
	if d.Onsets() < 5 {
		t.Errorf("detected %d onsets in 60 s, want ≥ 5", d.Onsets())
	}
	if transitions > 200 {
		t.Errorf("%d transitions — detector is chattering", transitions)
	}
}

func TestVADAccuracy(t *testing.T) {
	fs := 16 * units.Kilohertz
	g := sensors.NewAudioSynth(fs, 6)
	v := NewVAD(fs)
	agree, total := 0, 0
	for i := 0; i < 16000*30; i++ {
		x := g.Next()
		got := v.Process(x)
		if i > 16000 { // skip floor convergence
			if got == g.Voiced() {
				agree++
			}
			total++
		}
	}
	if acc := float64(agree) / float64(total); acc < 0.8 {
		t.Errorf("VAD accuracy %.2f, want ≥ 0.8", acc)
	}
	sf := v.SpeechFraction()
	if sf < 0.2 || sf > 0.8 {
		t.Errorf("speech fraction %.2f implausible for alternating source", sf)
	}
}

// --- Policies ---------------------------------------------------------------------

func TestPolicies(t *testing.T) {
	raw := 256 * units.Kbps
	tests := []struct {
		p     Policy
		minRF float64
		maxRF float64
	}{
		{StreamAll{}, 1, 1},
		{Compress{"ADPCM", 4, 20 * units.Microwatt}, 4, 4},
		{EventGated{"VAD", 0.5, 400 * units.Millisecond, 100, 30 * units.Microwatt}, 4.9, 5.1},
		{FeatureOnly{"band-energies", 50, 12 * 16, 80 * units.Microwatt}, 26, 27},
	}
	for _, tt := range tests {
		rf := ReductionFactor(tt.p, raw)
		if rf < tt.minRF || rf > tt.maxRF {
			t.Errorf("%s: reduction factor %.2f, want in [%v, %v]",
				tt.p.Name(), rf, tt.minRF, tt.maxRF)
		}
		if tt.p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestPolicyCaps(t *testing.T) {
	raw := 1 * units.Kbps
	// Gating with huge windows cannot exceed streaming.
	g := EventGated{"busy", 100, units.Second, 10 * units.Kbps, 0}
	if g.OutputRate(raw) > raw {
		t.Error("event gating exceeded raw rate")
	}
	// Feature-only with giant features caps at raw.
	f := FeatureOnly{"huge", 1000, 1 << 20, 0}
	if f.OutputRate(raw) > raw {
		t.Error("feature-only exceeded raw rate")
	}
	// Compression with ratio ≤ 1 is a pass-through.
	c := Compress{"bad", 0.5, 0}
	if c.OutputRate(raw) != raw {
		t.Error("ratio<1 compression should pass through")
	}
}

func TestReductionFactorDegenerate(t *testing.T) {
	if ReductionFactor(FeatureOnly{"silent", 0, 0, 0}, 0) != 0 {
		t.Error("zero output should report 0")
	}
}
