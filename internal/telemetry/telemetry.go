// Package telemetry is the streaming fleet-telemetry store: an
// append-only, columnar, CRC-protected file format the fleet engine
// writes one compact record into per completed wearer, so a
// million-wearer sweep never holds more than one block of results in
// memory and an interrupted sweep resumes from its last committed block.
//
// # File format
//
// A store is a single file:
//
//	header := magic "WBTL1\x00" | uvarint len(metaJSON) | metaJSON | crc32(metaJSON)
//	block  := magic "WBLK" | uint32 len(payload) | payload | crc32(payload)
//	file   := header block*
//
// All fixed-width integers are little-endian; crc32 is IEEE. Records are
// strictly ordered by wearer index starting at 0, BlockSize records per
// block (the final block may be short). A block payload is columnar:
//
//	uvarint firstWearer | uvarint records | uvarint totalNodes
//	per-record columns: nodeCount, events, hubRxBits (zigzag-delta
//	    varint) and hubUtilization (XOR-prev varint of float bits);
//	    format v1 appends two more per-record integer columns, cell and
//	    foreignLoadPPM (zigzag-delta varint), for spectrum-coupled
//	    sweeps, and format v2 another two, eqForeignLoadPPM and
//	    feedbackIters, for feedback-coupled sweeps — the meta's version
//	    field selects the layout
//	flattened per-node columns: packetsGenerated, packetsDelivered,
//	    packetsDropped, transmissions, bitsDelivered (zigzag-delta
//	    varint); projectedLife, latencyP50, latencyP99 (XOR-prev varint);
//	    perpetual, died (bit-packed)
//
// Column codecs live in wiban/internal/compress (AppendDeltaInts,
// AppendXorFloats, PackBools).
//
// # Format v3: frame kinds, series frames, query index
//
// From format v3 every frame payload begins with a uvarint kind
// selector; pre-v3 payloads carry the record body directly, so v0–v2
// stores decode unchanged and a v3 store written without series frames
// differs from a v2 store only in the header's version field:
//
//	payload := uvarint kind | body
//	kind 0 (records) — the v2 columnar record body above
//	kind 1 (series)  — per-node in-run time series for the wearers of
//	    the immediately preceding record block, committed in the same
//	    file write (a torn pair discards both on resume):
//	    uvarint firstWearer | records | totalPoints, per-record point
//	    counts (delta varint), then flattened point columns — node and
//	    queueDepth (zigzag-delta varint), timeMS (delta-of-delta
//	    varint, Gorilla-style), charge, linkPER and collisionRate
//	    (XOR-prev varint of float bits; NaN marks a window with no
//	    transmission attempts — a gap, never a fake zero)
//	kind 2 (index)   — one trailing frame Close writes PAST the final
//	    checkpoint: per block-pair, the record and series frame offsets
//	    plus label ranges (min/max sample time, cell range, node count)
//	    QueryStore prunes on. It is never checkpointed, so Resume
//	    discards and deterministically rewrites it — kill/resume stores
//	    stay byte-identical — and a reader that ignores it sees exactly
//	    the checkpointed record stream.
//
// QueryStore aggregates one metric (charge, queue, per, collisions) over
// a time/cell/node range — sum, mean, min/max and exact sorted-sample
// percentiles — locating the index via the checkpoint sidecar and
// falling back to a sequential scan (bit-identical results) when either
// is missing. iobtrace query is the CLI face.
//
// # Checkpoint and resume semantics
//
// The writer keeps a sidecar checkpoint at <path>.ckpt, rewritten
// atomically (write-temp-then-rename) after every committed block — a
// write-ahead mark that the data file is valid up to Offset and that the
// next record to arrive is NextWearer. The checkpoint also stores
// SeedCheck = desim.DeriveSeed(meta.FleetSeed, 2·NextWearer) — the
// scenario-stream seed of the next wearer under the fleet layer's pinned
// stream-ID mapping — so a checkpoint pasted next to the wrong data file
// (or a tampered fleet seed) is rejected instead of silently resuming a
// different population — plus a self-CRC over all of its fields, so a
// corrupted sidecar (a flipped offset bit the seed check cannot see)
// falls back to the CRC block scan instead of truncating the store at a
// garbage offset.
//
// A killed process loses at most the tail records buffered for the
// not-yet-committed block: Resume truncates the data file back to the
// checkpointed offset and the fleet engine re-simulates from NextWearer.
// Because every per-wearer simulation is a pure function of
// (fleetSeed, wearer), the resumed sweep reproduces the interrupted one
// bit-for-bit, and the re-aggregated report carries the identical
// fingerprint — the resume golden test in internal/fleet pins that.
package telemetry

import (
	"errors"
	"fmt"
)

// DefaultBlockSize is the record count per committed block. At ~40–70
// encoded bytes per wearer a block is a few tens of kilobytes — small
// enough that a kill loses under a thousand re-simulatable wearers, large
// enough that delta columns amortize their first-value cost.
const DefaultBlockSize = 1024

// Block-format versions. The version is recorded in the header meta and
// selects the column layout of every block in the file; a store never
// mixes versions.
const (
	// FormatV0 is the original column set (PR 2).
	FormatV0 = 0
	// FormatV1 adds two per-record columns for spectrum-coupled sweeps:
	// the wearer's spatial cell and the foreign co-channel offered load
	// (PPM) it saw. Uncoupled sweeps store cell −1 / load 0, which the
	// delta codec compresses to ~2 bytes per record.
	FormatV1 = 1
	// FormatV2 adds two more per-record columns for feedback-coupled
	// sweeps: the equilibrium (collision-retry-inflated) foreign load in
	// PPM and the cell's fixed-point round count. First-order sweeps
	// store zeros, which again cost ~2 bytes per record.
	FormatV2 = 2
	// FormatV3 introduces frame kinds: every frame payload starts with a
	// uvarint kind selector, admitting per-node time-series frames paired
	// with their record blocks and a trailing query index alongside the
	// record blocks of v2. Pre-v3 payloads carry the record body directly,
	// so v0–v2 stores are byte-identical under both readings.
	FormatV3 = 3
	// CurrentFormat is what new stores are written as. Writers that need
	// byte-identical output against a v2 golden (series disabled) must ask
	// for FormatV2 explicitly.
	CurrentFormat = FormatV3
)

// Frame kinds of a FormatV3 payload (first uvarint). Pre-v3 frames have
// no kind selector and are all record blocks.
const (
	kindRecords = 0 // columnar wearer-record block (the v2 body)
	kindSeries  = 1 // per-node time-series columns paired with the preceding record block
	kindIndex   = 2 // trailing per-block query index (offsets, time/cell ranges)
)

// ErrCorrupt reports a store whose framing, CRC or column payload does
// not decode.
var ErrCorrupt = errors.New("telemetry: corrupt store")

// Meta identifies the sweep a store belongs to. It is written once in the
// file header; Resume and the iobtrace CLI use it to re-derive the run.
type Meta struct {
	// FleetSeed is the fleet seed every per-wearer seed derives from.
	FleetSeed int64 `json:"fleet_seed"`
	// Wearers is the target population of the sweep (the store holds
	// records for wearers [0, NextWearer) ⊆ [0, Wearers)).
	Wearers int `json:"wearers"`
	// SpanSeconds is the simulated span per wearer.
	SpanSeconds float64 `json:"span_seconds"`
	// Scenario is an opaque tag describing the scenario generator's
	// parameters. Resume refuses a store whose tag differs from the
	// caller's, since a changed scenario would splice two different
	// populations into one file.
	Scenario string `json:"scenario,omitempty"`
	// BlockSize is the records-per-block the writer commits at; 0 means
	// DefaultBlockSize.
	BlockSize int `json:"block_size"`
	// Version is the block-format version (FormatV0 when absent, so
	// pre-versioning stores keep decoding).
	Version int `json:"version,omitempty"`
	// Cells is the spatial cell count of a spectrum-coupled sweep; 0
	// means the sweep was uncoupled. Coupled sweeps need FormatV1: the
	// cell and interference columns are part of the replayed state, and
	// dropping them would break resume fingerprints.
	Cells int `json:"cells,omitempty"`
	// Feedback records that the sweep closed the collision→retry→
	// offered-load loop (fleet.Coupling.Feedback). Feedback sweeps need
	// FormatV2: the equilibrium columns are replayed state too.
	Feedback bool `json:"feedback,omitempty"`
	// SeriesCadenceSeconds is the in-run sampling cadence of a
	// series-enabled sweep (quantized up to the TDMA superframe by the
	// kernel); 0 means no series frames were recorded. Series need
	// FormatV3. The omitempty tag keeps series-off meta JSON — and hence
	// the whole header — byte-identical to a v2 store's.
	SeriesCadenceSeconds float64 `json:"series_cadence_seconds,omitempty"`
	// FirstWearer and EndWearer bound the wearer range of a SHARD store:
	// one contiguous slice [FirstWearer, EndWearer) of a Wearers-sized
	// sweep, run by one backend of a sharded dispatch. Both zero (the
	// omitempty default) means the store covers the full population —
	// EndWearer 0 reads as Wearers — so every pre-shard store, and every
	// store a merged sharded sweep produces, keeps a byte-identical
	// header. Records still carry absolute wearer indices, and the
	// checkpoint seed check still derives from them, so a shard store is
	// a first-class resumable store over its sub-range.
	FirstWearer int `json:"first_wearer,omitempty"`
	EndWearer   int `json:"end_wearer,omitempty"`
}

// Range reports the wearer interval [first, end) the store covers:
// [0, Wearers) unless the meta describes a shard store.
func (m *Meta) Range() (first, end int) {
	end = m.EndWearer
	if end == 0 {
		end = m.Wearers
	}
	return m.FirstWearer, end
}

// Series reports whether the store carries time-series frames.
func (m *Meta) Series() bool { return m.SeriesCadenceSeconds > 0 }

func (m *Meta) validate() error {
	if m.Wearers <= 0 {
		return fmt.Errorf("telemetry: non-positive wearer count %d", m.Wearers)
	}
	if m.SpanSeconds <= 0 {
		return fmt.Errorf("telemetry: non-positive span %g", m.SpanSeconds)
	}
	if m.BlockSize < 0 {
		return fmt.Errorf("telemetry: negative block size %d", m.BlockSize)
	}
	if err := checkVersion(*m); err != nil {
		return err
	}
	if m.Cells < 0 {
		return fmt.Errorf("telemetry: negative cell count %d", m.Cells)
	}
	if m.Cells > 0 && m.Version < FormatV1 {
		return fmt.Errorf("telemetry: coupled sweep (%d cells) needs format v%d, store is v%d",
			m.Cells, FormatV1, m.Version)
	}
	if m.Feedback && m.Cells == 0 {
		return fmt.Errorf("telemetry: feedback sweep without cells")
	}
	if m.Feedback && m.Version < FormatV2 {
		return fmt.Errorf("telemetry: feedback sweep needs format v%d, store is v%d", FormatV2, m.Version)
	}
	if m.SeriesCadenceSeconds < 0 {
		return fmt.Errorf("telemetry: negative series cadence %g", m.SeriesCadenceSeconds)
	}
	if m.Series() && m.Version < FormatV3 {
		return fmt.Errorf("telemetry: series-enabled sweep needs format v%d, store is v%d", FormatV3, m.Version)
	}
	if m.FirstWearer < 0 || m.EndWearer < 0 {
		return fmt.Errorf("telemetry: negative shard range [%d,%d)", m.FirstWearer, m.EndWearer)
	}
	first, end := m.Range()
	if first >= end || end > m.Wearers {
		return fmt.Errorf("telemetry: shard range [%d,%d) outside population %d", first, end, m.Wearers)
	}
	return nil
}

// RequiredVersion is the oldest format that can represent a sweep:
// uncoupled sweeps read and write any version, coupled sweeps need the v1
// cell columns, feedback sweeps the v2 equilibrium columns, and series
// sampling the v3 series frames.
func RequiredVersion(cells int, feedback, series bool) int {
	switch {
	case series:
		return FormatV3
	case feedback:
		return FormatV2
	case cells > 0:
		return FormatV1
	}
	return FormatV0
}

// AdoptVersion picks the format a resumed sweep continues in: the store's
// own (older) format when it can still represent the requested sweep, and
// the current format otherwise — so the caller's meta equality guard
// surfaces the mismatch instead of the writer silently dropping columns.
// Both fleet front ends (cmd/iobfleet -resume and the iobfleetd daemon's
// restart recovery) apply this same rule, which is why it lives here.
func AdoptVersion(storeVersion, cells int, feedback, series bool) int {
	if storeVersion >= RequiredVersion(cells, feedback, series) {
		return storeVersion
	}
	return CurrentFormat
}

// CreateVersion picks the format for a freshly created store: the v3
// series frames only when the sweep samples series, and otherwise exactly
// the format the previous release wrote — a series-off sweep must produce
// a byte-identical store, not a gratuitous v3 one (pinned by
// TestSeriesOffStoreByteGolden).
func CreateVersion(series bool) int {
	if series {
		return FormatV3
	}
	return FormatV2
}

// checkVersion rejects stores written by a newer (or nonsensical) format
// than this binary decodes.
func checkVersion(m Meta) error {
	if m.Version < FormatV0 || m.Version > CurrentFormat {
		return fmt.Errorf("telemetry: unsupported format version %d (max %d)", m.Version, CurrentFormat)
	}
	return nil
}

// NodeRecord is the per-node slice of a wearer's telemetry: exactly the
// fields fleet-level aggregation consumes, in simulation units (seconds
// for durations).
type NodeRecord struct {
	PacketsGenerated int64
	PacketsDelivered int64
	PacketsDropped   int64
	Transmissions    int64
	BitsDelivered    int64
	ProjectedLife    float64 // seconds
	LatencyP50       float64 // seconds
	LatencyP99       float64 // seconds
	Perpetual        bool
	Died             bool
}

// Record is one wearer's telemetry. Records enter the store in strictly
// increasing Wearer order with no gaps.
type Record struct {
	Wearer         int
	Events         uint64
	HubRxBits      int64
	HubUtilization float64
	// Cell is the wearer's spectrum cell in a coupled sweep, −1 when the
	// sweep was uncoupled (and in every record decoded from a FormatV0
	// store).
	Cell int
	// ForeignLoadPPM is the first-order co-channel offered load (airtime
	// parts-per-million, see internal/spectrum) this wearer saw from the
	// rest of its cell; 0 when uncoupled.
	ForeignLoadPPM int64
	// EqForeignLoadPPM is the equilibrium foreign load — the first-order
	// load inflated by collision-driven retransmissions at the cell's
	// fixed point; 0 unless the sweep closed the feedback loop (and in
	// every record decoded from a pre-FormatV2 store).
	EqForeignLoadPPM int64
	// FeedbackIters is the wearer's cell's fixed-point round count; 0
	// unless the sweep closed the feedback loop.
	FeedbackIters int
	Nodes         []NodeRecord
	// Series holds the wearer's in-run samples in (time, node) order; nil
	// unless the sweep recorded series (meta.Series()). Stored in a
	// separate series frame paired with the wearer's record block.
	Series []SeriesPoint
}

// SeriesPoint is one in-run per-node sample: the bannet kernel's
// SeriesSample re-expressed in store units. LinkPER and CollisionRate are
// NaN for a window with no transmission attempts — a gap the fleet
// aggregation layer skips (StreamDist NaN policy), never a fake zero.
type SeriesPoint struct {
	Node          int
	TimeMS        int64
	Charge        float64
	QueueDepth    int
	LinkPER       float64
	CollisionRate float64
}

// RawSize is the flat fixed-width encoding size of the record in bytes
// (8 bytes per integer/float column value, 1 bit per flag, rounded up per
// record); the compression ratio iobtrace reports is relative to this.
// Attached series points count at 8 bytes per column value.
func (r *Record) RawSize() int {
	return 3*8 + len(r.Nodes)*(8*8+1) + len(r.Series)*(6*8)
}
