package telemetry

import (
	"fmt"
	"os"

	"wiban/internal/compress"
)

// Series and index frames (FormatV3).
//
// A series frame carries the in-run samples of the record block it is
// paired with — the writer appends the pair in a single write, so a torn
// tail can never leave a committed record block without its series. Body
// layout after the kind selector:
//
//	uvarint firstWearer | uvarint records | uvarint totalPoints
//	per-record column: points per record (zigzag-delta varint)
//	point columns, flattened in (record, time, node) order:
//	    node, queueDepth (zigzag-delta varint)
//	    timeMS (delta-of-delta varint — fixed-cadence stamps cost ~1 byte)
//	    charge, linkPER, collisionRate (XOR-prev varint)
//
// The index frame is the last frame of a completely written store: one
// entry per record block with file offsets and the block's time/cell/node
// ranges, so a query can seek straight to the blocks overlapping its
// predicate. It is deliberately written *after* the final checkpoint and
// never covered by one — resume discards and deterministically rewrites
// it, keeping kill/resume stores byte-identical.

// encodeSeriesFrame renders the samples attached to recs (one committed
// block) as a framed series payload appended to dst.
func encodeSeriesFrame(dst []byte, recs []Record) []byte {
	total := 0
	for i := range recs {
		total += len(recs[i].Series)
	}
	payload := compress.AppendUvarint(nil, kindSeries)
	payload = compress.AppendUvarint(payload, uint64(recs[0].Wearer))
	payload = compress.AppendUvarint(payload, uint64(len(recs)))
	payload = compress.AppendUvarint(payload, uint64(total))

	ints := make([]int64, 0, total)
	floats := make([]float64, 0, total)

	ints = ints[:0]
	for i := range recs {
		ints = append(ints, int64(len(recs[i].Series)))
	}
	payload = compress.AppendDeltaInts(payload, ints)

	for _, get := range []func(p *SeriesPoint) int64{
		func(p *SeriesPoint) int64 { return int64(p.Node) },
		func(p *SeriesPoint) int64 { return int64(p.QueueDepth) },
	} {
		ints = ints[:0]
		for i := range recs {
			for j := range recs[i].Series {
				ints = append(ints, get(&recs[i].Series[j]))
			}
		}
		payload = compress.AppendDeltaInts(payload, ints)
	}
	ints = ints[:0]
	for i := range recs {
		for j := range recs[i].Series {
			ints = append(ints, recs[i].Series[j].TimeMS)
		}
	}
	payload = compress.AppendDelta2Ints(payload, ints)
	for _, get := range []func(p *SeriesPoint) float64{
		func(p *SeriesPoint) float64 { return p.Charge },
		func(p *SeriesPoint) float64 { return p.LinkPER },
		func(p *SeriesPoint) float64 { return p.CollisionRate },
	} {
		floats = floats[:0]
		for i := range recs {
			for j := range recs[i].Series {
				floats = append(floats, get(&recs[i].Series[j]))
			}
		}
		payload = compress.AppendXorFloats(payload, floats)
	}
	return appendFrame(dst, payload)
}

// decodeSeriesBody inverts encodeSeriesFrame on a verified body (kind
// already stripped) and attaches the points to recs, which must be the
// records of the paired block.
func decodeSeriesBody(body []byte, recs []Record) error {
	pos := 0
	header := make([]uint64, 3)
	for i := range header {
		v, n := compress.DecodeUvarint(body[pos:])
		if n == 0 {
			return fmt.Errorf("%w: series header", ErrCorrupt)
		}
		header[i] = v
		pos += n
	}
	first, count, total := int(header[0]), int(header[1]), int(header[2])
	if count != len(recs) || len(recs) == 0 || first != recs[0].Wearer {
		return fmt.Errorf("%w: series frame covers wearers [%d,+%d), paired block holds [%d,+%d)",
			ErrCorrupt, first, count, firstWearerOf(recs), len(recs))
	}
	if total < 0 || total > maxBlockPayload {
		return fmt.Errorf("%w: implausible series point count %d", ErrCorrupt, total)
	}
	// Every point costs at least one byte in each of the six columns and
	// every record one count byte; reject forged headers before allocating.
	if count+6*total > len(body) {
		return fmt.Errorf("%w: series header claims %d points in %d payload bytes",
			ErrCorrupt, total, len(body))
	}

	intCol := func(n int, dec func([]byte, []int64) (int, error)) ([]int64, error) {
		col := make([]int64, n)
		used, err := dec(body[pos:], col)
		pos += used
		return col, err
	}
	counts, err := intCol(count, compress.DecodeDeltaInts)
	if err != nil {
		return err
	}
	sum := 0
	for _, c := range counts {
		if c < 0 {
			return fmt.Errorf("%w: negative series count", ErrCorrupt)
		}
		sum += int(c)
	}
	if sum != total {
		return fmt.Errorf("%w: series counts sum %d, header says %d", ErrCorrupt, sum, total)
	}
	nodes, err := intCol(total, compress.DecodeDeltaInts)
	if err != nil {
		return err
	}
	queues, err := intCol(total, compress.DecodeDeltaInts)
	if err != nil {
		return err
	}
	stamps, err := intCol(total, compress.DecodeDelta2Ints)
	if err != nil {
		return err
	}
	var cols [3][]float64
	for i := range cols {
		cols[i] = make([]float64, total)
		used, err := compress.DecodeXorFloats(body[pos:], cols[i])
		if err != nil {
			return err
		}
		pos += used
	}
	if pos != len(body) {
		return fmt.Errorf("%w: %d trailing series bytes", ErrCorrupt, len(body)-pos)
	}

	points := make([]SeriesPoint, total)
	off := 0
	for i := range recs {
		pc := int(counts[i])
		recs[i].Series = points[off : off+pc : off+pc]
		for j := 0; j < pc; j++ {
			points[off+j] = SeriesPoint{
				Node:          int(nodes[off+j]),
				TimeMS:        stamps[off+j],
				Charge:        cols[0][off+j],
				QueueDepth:    int(queues[off+j]),
				LinkPER:       cols[1][off+j],
				CollisionRate: cols[2][off+j],
			}
		}
		off += pc
	}
	return nil
}

// firstWearerOf is a nil-safe accessor for error messages.
func firstWearerOf(recs []Record) int {
	if len(recs) == 0 {
		return -1
	}
	return recs[0].Wearer
}

// indexEntry summarizes one committed record block for query pruning.
type indexEntry struct {
	recOffset   int64 // file offset of the record frame
	serOffset   int64 // file offset of the paired series frame; 0 when the store has no series
	firstWearer int
	records     int
	points      int   // series points in the paired frame
	minTimeMS   int64 // sample-time range of the paired frame (0,0 when pointless)
	maxTimeMS   int64
	minCell     int // cell range of the block's records
	maxCell     int
	maxNodes    int // widest node count in the block — bounds the node-class label space
}

// entryFor summarizes a committed block from its decoded records.
func entryFor(recOffset, serOffset int64, recs []Record) indexEntry {
	e := indexEntry{
		recOffset:   recOffset,
		serOffset:   serOffset,
		firstWearer: recs[0].Wearer,
		records:     len(recs),
		minCell:     recs[0].Cell,
		maxCell:     recs[0].Cell,
	}
	for i := range recs {
		r := &recs[i]
		if r.Cell < e.minCell {
			e.minCell = r.Cell
		}
		if r.Cell > e.maxCell {
			e.maxCell = r.Cell
		}
		if len(r.Nodes) > e.maxNodes {
			e.maxNodes = len(r.Nodes)
		}
		for j := range r.Series {
			t := r.Series[j].TimeMS
			if e.points == 0 || t < e.minTimeMS {
				e.minTimeMS = t
			}
			if e.points == 0 || t > e.maxTimeMS {
				e.maxTimeMS = t
			}
			e.points++
		}
	}
	return e
}

// encodeIndexFrame renders the per-block index as a framed payload.
func encodeIndexFrame(entries []indexEntry) []byte {
	payload := compress.AppendUvarint(nil, kindIndex)
	payload = compress.AppendUvarint(payload, uint64(len(entries)))
	cols := []func(e *indexEntry) int64{
		func(e *indexEntry) int64 { return e.recOffset },
		func(e *indexEntry) int64 { return e.serOffset },
		func(e *indexEntry) int64 { return int64(e.firstWearer) },
		func(e *indexEntry) int64 { return int64(e.records) },
		func(e *indexEntry) int64 { return int64(e.points) },
		func(e *indexEntry) int64 { return e.minTimeMS },
		func(e *indexEntry) int64 { return e.maxTimeMS },
		func(e *indexEntry) int64 { return int64(e.minCell) },
		func(e *indexEntry) int64 { return int64(e.maxCell) },
		func(e *indexEntry) int64 { return int64(e.maxNodes) },
	}
	ints := make([]int64, len(entries))
	for _, get := range cols {
		for i := range entries {
			ints[i] = get(&entries[i])
		}
		payload = compress.AppendDeltaInts(payload, ints)
	}
	return appendFrame(nil, payload)
}

// decodeIndexBody inverts encodeIndexFrame on a verified body (kind
// already stripped).
func decodeIndexBody(body []byte) ([]indexEntry, error) {
	n, used := compress.DecodeUvarint(body)
	if used == 0 {
		return nil, fmt.Errorf("%w: index header", ErrCorrupt)
	}
	pos := used
	count := int(n)
	// Ten varint columns of count elements, ≥ 1 byte per element.
	if count < 0 || count > maxBlockPayload || 10*count > len(body) {
		return nil, fmt.Errorf("%w: implausible index entry count %d", ErrCorrupt, count)
	}
	var cols [10][]int64
	for i := range cols {
		cols[i] = make([]int64, count)
		used, err := compress.DecodeDeltaInts(body[pos:], cols[i])
		if err != nil {
			return nil, err
		}
		pos += used
	}
	if pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing index bytes", ErrCorrupt, len(body)-pos)
	}
	entries := make([]indexEntry, count)
	for i := range entries {
		entries[i] = indexEntry{
			recOffset:   cols[0][i],
			serOffset:   cols[1][i],
			firstWearer: int(cols[2][i]),
			records:     int(cols[3][i]),
			points:      int(cols[4][i]),
			minTimeMS:   cols[5][i],
			maxTimeMS:   cols[6][i],
			minCell:     int(cols[7][i]),
			maxCell:     int(cols[8][i]),
			maxNodes:    int(cols[9][i]),
		}
	}
	return entries, nil
}

// readSeriesFrameAt reads the series frame at pos and attaches its points
// to recs, returning the offset past the frame.
func readSeriesFrameAt(f *os.File, pos, limit int64, recs []Record) (int64, error) {
	payload, end, err := readFramePayload(f, pos, limit)
	if err != nil {
		return 0, err
	}
	kind, body, err := splitKind(payload, FormatV3)
	if err != nil {
		return 0, err
	}
	if kind != kindSeries {
		return 0, fmt.Errorf("%w: frame kind %d where a series frame was expected", ErrCorrupt, kind)
	}
	if err := decodeSeriesBody(body, recs); err != nil {
		return 0, err
	}
	return end, nil
}
