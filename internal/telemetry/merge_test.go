package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeShard writes the records of [first, end) into a shard store
// carrying that range in its meta (end == wearers spelled canonically
// as 0, the way a coordinator's sub-spec does).
func writeShard(t *testing.T, dir string, n, blockSize, first, end int) string {
	t.Helper()
	meta := testMeta(n, blockSize)
	meta.FirstWearer = first
	if end != n {
		meta.EndWearer = end
	}
	path := filepath.Join(dir, "shard.wtl")
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := first; i < end; i++ {
		if err := w.Consume(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeShardsByteIdentical is the merge's core contract: shards
// tiling [0, n) re-encode into a store byte-identical to the one a
// single writer would have produced — header, blocks, checkpoints and
// trailing index — with the sink seeing every record in wearer order.
func TestMergeShardsByteIdentical(t *testing.T) {
	const n, blockSize = 37, 8
	full := writeStore(t, n, blockSize)

	// Uneven tiling, with ranges that straddle block boundaries.
	ranges := [][2]int{{0, 13}, {13, 25}, {25, n}}
	paths := make([]string, len(ranges))
	for i, rng := range ranges {
		paths[i] = writeShard(t, t.TempDir(), n, blockSize, rng[0], rng[1])
	}

	dst := filepath.Join(t.TempDir(), "merged.wtl")
	next := 0
	blocks, size, err := MergeShards(dst, paths, func(rec Record) error {
		if rec.Wearer != next {
			t.Fatalf("sink saw wearer %d, want %d", rec.Wearer, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("sink saw %d records, want %d", next, n)
	}

	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged store differs from single-writer store: %d vs %d bytes", len(got), len(want))
	}
	if st, _ := os.Stat(dst); st.Size() != size {
		t.Errorf("MergeShards reported size %d, file is %d", size, st.Size())
	}
	r, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if recs := drain(t, r); len(recs) != n {
		t.Fatalf("merged store holds %d records, want %d", len(recs), n)
	}
	if r.Blocks() != blocks {
		t.Errorf("MergeShards reported %d blocks, reader sees %d", blocks, r.Blocks())
	}
}

// writeSeriesShard is writeShard lifted to a series-enabled v3 store:
// the shard's records carry the deterministic seriesRecord samples, so
// its block boundaries (cut at FirstWearer+k·BlockSize) straddle the
// merged store's 0-based grid.
func writeSeriesShard(t *testing.T, dir string, n, blockSize, first, end int) string {
	t.Helper()
	meta := seriesMeta(n, blockSize)
	meta.FirstWearer = first
	if end != n {
		meta.EndWearer = end
	}
	path := filepath.Join(dir, "shard.wtl")
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := first; i < end; i++ {
		if err := w.Consume(seriesRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeShardsSeriesByteIdentical extends the merge's core contract
// to series-enabled stores: shards whose record+series pairs were cut at
// shard-local block boundaries must re-pair and re-encode into a store
// byte-identical to the single-writer -series run — samples, NaN gap
// markers, checkpoints and the trailing query index all included — with
// the sink seeing every record's series attached.
func TestMergeShardsSeriesByteIdentical(t *testing.T) {
	const n, blockSize = 37, 8
	full := writeSeriesStore(t, n, blockSize)

	// Uneven tiling: shard boundaries at 13 and 25 fall mid-block on the
	// merged grid (blocks at 8/16/24/32), so every shard seam forces the
	// merged writer to buffer borrowed records across a shard switch.
	ranges := [][2]int{{0, 13}, {13, 25}, {25, n}}
	paths := make([]string, len(ranges))
	for i, rng := range ranges {
		paths[i] = writeSeriesShard(t, t.TempDir(), n, blockSize, rng[0], rng[1])
	}

	dst := filepath.Join(t.TempDir(), "merged.wtl")
	next := 0
	sinkPoints := int64(0)
	blocks, size, err := MergeShards(dst, paths, func(rec Record) error {
		if rec.Wearer != next {
			t.Fatalf("sink saw wearer %d, want %d", rec.Wearer, next)
		}
		if want := seriesRecord(next); !samePoints(rec.Series, want.Series) {
			t.Fatalf("sink record %d: series diverged from the shard's samples", next)
		}
		sinkPoints += int64(len(rec.Series))
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("sink saw %d records, want %d", next, n)
	}

	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged series store differs from single-writer store: %d vs %d bytes", len(got), len(want))
	}
	if st, _ := os.Stat(dst); st.Size() != size {
		t.Errorf("MergeShards reported size %d, file is %d", size, st.Size())
	}

	// The merged store must replay every sample, survive a strict audit
	// (its trailing index restates the re-cut blocks), and serve index-
	// pruned queries identically to the single-writer store.
	r, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := drain(t, r)
	if len(recs) != n || r.Blocks() != blocks {
		t.Fatalf("merged store holds %d records in %d blocks (MergeShards said %d)", len(recs), r.Blocks(), blocks)
	}
	if r.SeriesPoints() != sinkPoints {
		t.Errorf("merged store replays %d series points, sink saw %d", r.SeriesPoints(), sinkPoints)
	}
	rs, err := OpenStrict(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if audit := drain(t, rs); len(audit) != n {
		t.Fatalf("strict audit of merged store read %d records, want %d", len(audit), n)
	}
	for _, q := range []Query{
		{Metric: "charge", Cell: -1, Node: -1},
		{Metric: "per", FromMS: 1000, ToMS: 2500, Cell: 3, Node: -1},
	} {
		m, err := QueryStore(dst, q)
		if err != nil {
			t.Fatal(err)
		}
		s, err := QueryStore(full, q)
		if err != nil {
			t.Fatal(err)
		}
		if m.Points != s.Points || m.Gaps != s.Gaps || m.Sum != s.Sum || m.Min != s.Min || m.Max != s.Max {
			t.Errorf("query %+v over merged store diverged: got {pts=%d gaps=%d sum=%v}, want {pts=%d gaps=%d sum=%v}",
				q, m.Points, m.Gaps, m.Sum, s.Points, s.Gaps, s.Sum)
		}
	}
}

// TestMergeShardsRejects pins the merge's refusal set: gaps, overlaps,
// truncated shards and mismatched sweep identities must all fail rather
// than silently produce a plausible store.
func TestMergeShardsRejects(t *testing.T) {
	const n, blockSize = 24, 8
	s0 := writeShard(t, t.TempDir(), n, blockSize, 0, 12)
	s1 := writeShard(t, t.TempDir(), n, blockSize, 12, n)

	t.Run("gap", func(t *testing.T) {
		late := writeShard(t, t.TempDir(), n, blockSize, 13, n)
		mustFailMerge(t, []string{s0, late}, "expected to start at")
	})
	t.Run("overlap", func(t *testing.T) {
		early := writeShard(t, t.TempDir(), n, blockSize, 11, n)
		mustFailMerge(t, []string{s0, early}, "expected to start at")
	})
	t.Run("missing-head", func(t *testing.T) {
		mustFailMerge(t, []string{s1}, "not 0")
	})
	t.Run("missing-tail", func(t *testing.T) {
		mustFailMerge(t, []string{s0}, "population")
	})
	t.Run("incomplete-shard", func(t *testing.T) {
		// A shard whose meta claims [12, 24) but only holds [12, 18):
		// exactly what a torn replica looks like after scan-truncation.
		dir := t.TempDir()
		meta := testMeta(n, blockSize)
		meta.FirstWearer = 12
		path := filepath.Join(dir, "short.wtl")
		w, err := Create(path, meta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 12; i < 18; i++ {
			if err := w.Consume(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		mustFailMerge(t, []string{s0, path}, "incomplete")
	})
	t.Run("foreign-sweep", func(t *testing.T) {
		dir := t.TempDir()
		meta := testMeta(n, blockSize)
		meta.FleetSeed++
		meta.FirstWearer = 12
		path := filepath.Join(dir, "foreign.wtl")
		w, err := Create(path, meta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 12; i < n; i++ {
			if err := w.Consume(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		mustFailMerge(t, []string{s0, path}, "does not match")
	})
	t.Run("zero-shards", func(t *testing.T) {
		mustFailMerge(t, nil, "zero shards")
	})
	t.Run("corrupt-shard", func(t *testing.T) {
		// Damage inside a shard's checkpointed prefix surfaces as a copy
		// error mid-merge — after the merged writer already committed
		// blocks — and must still clean up dst.
		dir := t.TempDir()
		bad := filepath.Join(dir, "bad.wtl")
		raw, err := os.ReadFile(s1)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(bad, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := os.ReadFile(CheckpointPath(s1))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(CheckpointPath(bad), ck, 0o644); err != nil {
			t.Fatal(err)
		}
		mustFailMerge(t, []string{s0, bad}, "merge shard 1")
	})
}

// mustFailMerge asserts the merge fails with want in its error — and,
// the leak regression: that the failure left neither a partial merged
// store nor its checkpoint sidecar behind. A leftover dst is derived
// data masquerading as real state; recovery must never find one.
func mustFailMerge(t *testing.T, paths []string, want string) {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "merged.wtl")
	_, _, err := MergeShards(dst, paths, nil)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("merge error %v, want %q", err, want)
	}
	if _, serr := os.Stat(dst); !os.IsNotExist(serr) {
		t.Errorf("failed merge left a partial store behind (stat err = %v)", serr)
	}
	if _, serr := os.Stat(CheckpointPath(dst)); !os.IsNotExist(serr) {
		t.Errorf("failed merge left a checkpoint sidecar behind (stat err = %v)", serr)
	}
}

// TestCommitted pins the replication feed's summary: the reported
// offset bounds the committed prefix (never including the trailing
// index, which lies past the final checkpoint), next names the wearer
// after the last committed one, and a store without a trustworthy
// checkpoint is an error, not a guess.
func TestCommitted(t *testing.T) {
	const n, blockSize = 20, 8
	path := writeStore(t, n, blockSize)
	meta, off, next, err := Committed(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta != testMeta(n, blockSize) {
		t.Errorf("meta %+v", meta)
	}
	if next != n {
		t.Errorf("next wearer %d, want %d", next, n)
	}
	st, _ := os.Stat(path)
	if off <= 0 || off >= st.Size() {
		t.Errorf("committed offset %d outside (0, %d): the trailing index must lie past it", off, st.Size())
	}

	// The committed prefix alone must scan-open as a complete store: this
	// is the exact byte range a coordinator replicates.
	trunc := filepath.Join(t.TempDir(), "prefix.wtl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trunc, raw[:off], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(trunc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if recs := drain(t, r); len(recs) != n {
		t.Errorf("committed prefix replays %d records, want %d", len(recs), n)
	}

	if err := os.Remove(CheckpointPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Committed(path); err == nil {
		t.Error("Committed without a checkpoint sidecar succeeded, want error")
	}

	if _, _, _, err := Committed(filepath.Join(t.TempDir(), "absent.wtl")); err == nil {
		t.Error("Committed on a missing store succeeded, want error")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.wtl")
	if err := os.WriteFile(garbage, []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Committed(garbage); err == nil {
		t.Error("Committed on a non-store file succeeded, want error")
	}
	// A store shorter than its checkpoint claims is inconsistent, not
	// replicable: the sidecar no longer describes the file.
	torn := writeStore(t, n, blockSize)
	_, tornOff, _, err := Committed(torn)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(torn, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(tornOff - 1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, _, err := Committed(torn); err == nil {
		t.Error("Committed on a store shorter than its checkpoint succeeded, want error")
	}
}

// TestAdoptVersion pins the resume version rule both front ends share:
// keep the store's own format while it can represent the sweep, step up
// to the current one — surfacing a meta mismatch — when it cannot.
func TestAdoptVersion(t *testing.T) {
	cases := []struct {
		store, cells           int
		feedback, series, want bool // want: true = keep store version
	}{
		{FormatV0, 0, false, false, true},  // uncoupled store stays v0
		{FormatV1, 5, false, false, true},  // coupled store stays v1
		{FormatV2, 5, true, false, true},   // feedback store stays v2
		{FormatV0, 5, false, false, false}, // coupled sweep outgrew v0
		{FormatV1, 5, true, false, false},  // feedback sweep outgrew v1
		{FormatV2, 5, true, true, false},   // series sweep outgrew v2
	}
	for _, c := range cases {
		got := AdoptVersion(c.store, c.cells, c.feedback, c.series)
		want := CurrentFormat
		if c.want {
			want = c.store
		}
		if got != want {
			t.Errorf("AdoptVersion(v%d, cells=%d, feedback=%v, series=%v) = v%d, want v%d",
				c.store, c.cells, c.feedback, c.series, got, want)
		}
	}
}

// TestWriterOffset: the writer's committed offset tracks exactly the
// bytes a kill preserves — Committed reports the same number after Close.
func TestWriterOffset(t *testing.T) {
	const n, blockSize = 16, 4
	path := filepath.Join(t.TempDir(), "run.wtl")
	w, err := Create(path, testMeta(n, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	if w.Offset() <= 0 {
		t.Errorf("fresh writer offset %d, want > 0 (header is committed)", w.Offset())
	}
	header := w.Offset()
	for i := 0; i < n; i++ {
		if err := w.Consume(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Offset() <= header {
		t.Errorf("closed writer offset %d did not grow past the header %d", w.Offset(), header)
	}
	_, off, _, err := Committed(path)
	if err != nil {
		t.Fatal(err)
	}
	if off != w.Offset() {
		t.Errorf("Committed offset %d != writer offset %d", off, w.Offset())
	}
}
