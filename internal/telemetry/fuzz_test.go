package telemetry

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"wiban/internal/desim"
)

// storeBytes renders a small valid store (header + a few blocks) in
// memory for fuzz seeding.
func storeBytes(f *testing.F, version int) []byte {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wtl")
	meta := Meta{FleetSeed: 42, Wearers: 24, SpanSeconds: 30, BlockSize: 8, Version: version}
	if version >= FormatV1 {
		meta.Cells = 5
	}
	if version >= FormatV2 {
		meta.Feedback = true
	}
	w, err := Create(path, meta)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := testRecord(i)
		if version < FormatV1 {
			rec.Cell, rec.ForeignLoadPPM = -1, 0
		}
		if version < FormatV2 {
			rec.EqForeignLoadPPM, rec.FeedbackIters = 0, 0
		}
		if err := w.Consume(rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// seriesStoreBytes renders a small valid series-enabled (v3) store in
// memory for fuzz seeding.
func seriesStoreBytes(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "series-seed.wtl")
	meta := Meta{FleetSeed: 42, Wearers: 24, SpanSeconds: 30, BlockSize: 8,
		Version: FormatV3, Cells: 5, Feedback: true, SeriesCadenceSeconds: 0.5}
	w, err := Create(path, meta)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Consume(seriesRecord(i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// shardSeriesStoreBytes renders a v3 shard store — nonzero FirstWearer,
// record+series pairs whose block boundaries (20/28/36) straddle the
// merged store's 0-based grid — for fuzz seeding: both readers and the
// Resume scan must key wearer contiguity on the store's own range, never
// on wearer 0.
func shardSeriesStoreBytes(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "shard-seed.wtl")
	meta := Meta{FleetSeed: 42, Wearers: 44, SpanSeconds: 30, BlockSize: 8,
		Version: FormatV3, Cells: 5, Feedback: true, SeriesCadenceSeconds: 0.5,
		FirstWearer: 20}
	w, err := Create(path, meta)
	if err != nil {
		f.Fatal(err)
	}
	for i := 20; i < 44; i++ {
		if err := w.Consume(seriesRecord(i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzReader throws corrupted, truncated and adversarial byte streams at
// both reader modes (checkpoint-less Open and OpenStrict) and at the
// Resume scan fallback. The contract under fuzz: never panic, never
// allocate unboundedly from forged headers, and always terminate — a
// damaged stream must end in a clean error or a truncation, not an
// over-read.
func FuzzReader(f *testing.F) {
	valid := storeBytes(f, CurrentFormat)
	f.Add(valid)
	f.Add(storeBytes(f, FormatV0))
	f.Add(storeBytes(f, FormatV1))
	f.Add(storeBytes(f, FormatV2))
	// Series-enabled v3 stores: whole, sans index, and torn mid-pair (the
	// record frame committed, its series frame cut short).
	series := seriesStoreBytes(f)
	f.Add(series)
	f.Add(series[:len(series)-50])
	f.Add(series[:2*len(series)/3])
	// Shard stores (nonzero FirstWearer) with seam-straddling series
	// pairs: whole, torn mid-pair, and truncated mid-block.
	shard := shardSeriesStoreBytes(f)
	f.Add(shard)
	f.Add(shard[:len(shard)-60])
	f.Add(shard[:len(shard)/2])
	f.Add([]byte{})
	f.Add([]byte("WBTL1\x00"))
	f.Add([]byte("not a store at all"))
	// Flipped CRC byte in the final block footer.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Flipped byte inside a block payload (CRC now mismatches).
	mid := append([]byte(nil), valid...)
	mid[len(mid)/2] ^= 0x10
	f.Add(mid)
	// Torn tail: the file ends mid-frame.
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:len(valid)/3])
	// Bad varint: 10 continuation bytes where the meta length belongs.
	bad := append([]byte("WBTL1\x00"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	f.Add(bad)
	// Forged frame length pointing far past the payload.
	forged := append([]byte(nil), valid...)
	for i := 0; i+8 < len(forged); i++ {
		if string(forged[i:i+4]) == blockMagic {
			forged[i+4], forged[i+5], forged[i+6], forged[i+7] = 0xff, 0xff, 0xff, 0x00
			break
		}
	}
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wtl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// No sidecar exists, so Open exercises the truncation-scan path
		// and OpenStrict the hard-error path.
		for _, open := range []func(string) (*Reader, error){Open, OpenStrict} {
			r, err := open(path)
			if err != nil {
				continue
			}
			records := 0
			first := r.Meta().FirstWearer // shard stores start past wearer 0
			for {
				rec, err := r.Next()
				if err == io.EOF || (err != nil) {
					break
				}
				if rec.Wearer != first+records {
					t.Fatalf("reader emitted wearer %d at position %d (range starts at %d)", rec.Wearer, records, first)
				}
				records++
				if records > len(data) {
					t.Fatalf("decoded %d records from %d bytes — over-read", records, len(data))
				}
			}
			if r.Records() != records {
				t.Fatalf("Records() = %d after %d emitted", r.Records(), records)
			}
			r.Close()
		}
		// The Resume scan fallback truncates to the verifiable prefix; it
		// must do so without panicking and leave a store Resume accepts
		// again (idempotence of repair).
		w, err := Resume(path)
		if err != nil {
			return
		}
		next := w.NextWearer()
		w.Abort()
		w2, err := Resume(path)
		if err != nil {
			t.Fatalf("second resume after repair failed: %v", err)
		}
		if w2.NextWearer() != next {
			t.Fatalf("repair not idempotent: next %d then %d", next, w2.NextWearer())
		}
		w2.Abort()
	})
}

// FuzzSeriesBlock drives the series-column codec both ways: bytes are
// first interpreted as sample parameters for an encode→decode round trip
// (every surviving point must come back bit-identical, NaN markers
// included), then thrown raw at the decoder as an adversarial frame body
// — which must reject or terminate cleanly without panicking or
// allocating unboundedly from forged headers.
func FuzzSeriesBlock(f *testing.F) {
	mk := func(n int) []byte {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = seriesRecord(i)
		}
		frame := encodeSeriesFrame(nil, recs)
		payload := frame[8 : len(frame)-4]
		_, body, err := splitKind(payload, FormatV3)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	f.Add(mk(1))
	f.Add(mk(8))
	f.Add(mk(8)[:20])
	corrupt := mk(8)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data parameterizes a small block; the round trip
		// must be exact.
		recs := make([]Record, 1+len(data)%4)
		for i := range recs {
			recs[i].Wearer = 5 + i
			for j, b := range data {
				if j%len(recs) != i || j > 200 {
					continue
				}
				p := SeriesPoint{
					Node:       int(b % 7),
					TimeMS:     int64(j) * 250,
					Charge:     float64(b) / 255,
					QueueDepth: int(b>>3) - 10,
				}
				if b%5 == 0 {
					p.LinkPER, p.CollisionRate = math.NaN(), math.NaN()
				} else {
					p.LinkPER = float64(b%11) / 20
					p.CollisionRate = float64(b%13) / 40
				}
				recs[i].Series = append(recs[i].Series, p)
			}
		}
		frame := encodeSeriesFrame(nil, recs)
		payload := frame[8 : len(frame)-4]
		_, body, err := splitKind(payload, FormatV3)
		if err != nil {
			t.Fatal(err)
		}
		back := make([]Record, len(recs))
		for i := range back {
			back[i].Wearer = recs[i].Wearer
		}
		if err := decodeSeriesBody(body, back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		for i := range recs {
			if !samePoints(back[i].Series, recs[i].Series) {
				t.Fatalf("record %d: round trip mutated series", i)
			}
		}

		// Direction 2: data is a raw adversarial body. Any outcome but a
		// panic or an over-read is acceptable; on (unlikely) success the
		// attached points must be bounded by what the bytes could hold.
		tgt := make([]Record, 4)
		for i := range tgt {
			tgt[i].Wearer = i
		}
		if err := decodeSeriesBody(data, tgt); err == nil {
			total := 0
			for i := range tgt {
				total += len(tgt[i].Series)
			}
			if 6*total > len(data) {
				t.Fatalf("decoded %d points from %d bytes — over-read", total, len(data))
			}
		}
	})
}

// FuzzResumeCheckpoint throws corrupted, truncated and adversarial
// sidecar bytes at Resume while the data file stays intact. The
// contract: never panic, never wedge the store — an unusable sidecar
// falls back to the CRC scan (recovering every committed record), and
// whatever Resume lands on is self-consistent: replaying the repaired
// store yields exactly NextWearer records and a second Resume is a
// fixed point.
func FuzzResumeCheckpoint(f *testing.F) {
	data := storeBytes(f, CurrentFormat)
	// A matching valid sidecar for the corpus: recreate the store in a
	// known location and read what the writer checkpointed.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wtl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		f.Fatal(err)
	}
	w, err := Resume(path)
	if err != nil {
		f.Fatal(err)
	}
	w.Abort()
	valid, err := os.ReadFile(CheckpointPath(path))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not json"))
	f.Add([]byte("{}"))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"offset":0,"blocks":0,"next_wearer":0,"seed_check":0}`))
	f.Add([]byte(`{"offset":-1,"blocks":-1,"next_wearer":-1,"seed_check":-1}`))
	f.Add([]byte(`{"offset":9999999,"blocks":3,"next_wearer":24,"seed_check":1}`))
	// Seed-check-valid but offset-forged variants, handed to the fuzzer
	// on a plate (a random mutation cannot re-tie seed_check to the
	// fleet seed): without the sidecar self-CRC these would be trusted
	// and truncate the store mid-block.
	f.Add([]byte(fmt.Sprintf(`{"offset":30,"blocks":0,"next_wearer":0,"seed_check":%d}`,
		desim.DeriveSeed(42, 0))))
	f.Add([]byte(fmt.Sprintf(`{"offset":500,"blocks":1,"next_wearer":8,"seed_check":%d}`,
		desim.DeriveSeed(42, 16))))

	f.Fuzz(func(t *testing.T, sidecar []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wtl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(CheckpointPath(path), sidecar, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Resume(path)
		if err != nil {
			// The data file is intact, so Resume may only fail if a
			// trusted sidecar truncated into garbage — which the
			// consistency guards exist to prevent.
			t.Fatalf("resume of an intact store failed: %v", err)
		}
		next := w.NextWearer()
		w.Abort()
		if next < 0 || next > 20 {
			t.Fatalf("resume landed outside the written range: %d", next)
		}
		// Self-consistency: the repaired store replays exactly next
		// records (Resume rewrote a valid checkpoint, so the reader
		// trusts the same prefix).
		r, err := Open(path)
		if err != nil {
			t.Fatalf("open after repair: %v", err)
		}
		records := 0
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("read after repair: %v", err)
			}
			records++
		}
		r.Close()
		if records != next {
			t.Fatalf("repaired store replays %d records, checkpoint says %d", records, next)
		}
		// Idempotence: resuming again changes nothing.
		w2, err := Resume(path)
		if err != nil {
			t.Fatalf("second resume failed: %v", err)
		}
		if w2.NextWearer() != next {
			t.Fatalf("repair not idempotent: %d then %d", next, w2.NextWearer())
		}
		w2.Abort()
	})
}
