package telemetry

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// storeBytes renders a small valid store (header + a few blocks) in
// memory for fuzz seeding.
func storeBytes(f *testing.F, version int) []byte {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wtl")
	meta := Meta{FleetSeed: 42, Wearers: 24, SpanSeconds: 30, BlockSize: 8, Version: version}
	if version >= FormatV1 {
		meta.Cells = 5
	}
	w, err := Create(path, meta)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := testRecord(i)
		if version < FormatV1 {
			rec.Cell, rec.ForeignLoadPPM = -1, 0
		}
		if err := w.Consume(rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzReader throws corrupted, truncated and adversarial byte streams at
// both reader modes (checkpoint-less Open and OpenStrict) and at the
// Resume scan fallback. The contract under fuzz: never panic, never
// allocate unboundedly from forged headers, and always terminate — a
// damaged stream must end in a clean error or a truncation, not an
// over-read.
func FuzzReader(f *testing.F) {
	valid := storeBytes(f, CurrentFormat)
	f.Add(valid)
	f.Add(storeBytes(f, FormatV0))
	f.Add([]byte{})
	f.Add([]byte("WBTL1\x00"))
	f.Add([]byte("not a store at all"))
	// Flipped CRC byte in the final block footer.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Flipped byte inside a block payload (CRC now mismatches).
	mid := append([]byte(nil), valid...)
	mid[len(mid)/2] ^= 0x10
	f.Add(mid)
	// Torn tail: the file ends mid-frame.
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:len(valid)/3])
	// Bad varint: 10 continuation bytes where the meta length belongs.
	bad := append([]byte("WBTL1\x00"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	f.Add(bad)
	// Forged frame length pointing far past the payload.
	forged := append([]byte(nil), valid...)
	for i := 0; i+8 < len(forged); i++ {
		if string(forged[i:i+4]) == blockMagic {
			forged[i+4], forged[i+5], forged[i+6], forged[i+7] = 0xff, 0xff, 0xff, 0x00
			break
		}
	}
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wtl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// No sidecar exists, so Open exercises the truncation-scan path
		// and OpenStrict the hard-error path.
		for _, open := range []func(string) (*Reader, error){Open, OpenStrict} {
			r, err := open(path)
			if err != nil {
				continue
			}
			records := 0
			for {
				rec, err := r.Next()
				if err == io.EOF || (err != nil) {
					break
				}
				if rec.Wearer != records {
					t.Fatalf("reader emitted wearer %d at position %d", rec.Wearer, records)
				}
				records++
				if records > len(data) {
					t.Fatalf("decoded %d records from %d bytes — over-read", records, len(data))
				}
			}
			if r.Records() != records {
				t.Fatalf("Records() = %d after %d emitted", r.Records(), records)
			}
			r.Close()
		}
		// The Resume scan fallback truncates to the verifiable prefix; it
		// must do so without panicking and leave a store Resume accepts
		// again (idempotence of repair).
		w, err := Resume(path)
		if err != nil {
			return
		}
		next := w.NextWearer()
		w.Abort()
		w2, err := Resume(path)
		if err != nil {
			t.Fatalf("second resume after repair failed: %v", err)
		}
		if w2.NextWearer() != next {
			t.Fatalf("repair not idempotent: next %d then %d", next, w2.NextWearer())
		}
		w2.Abort()
	})
}
