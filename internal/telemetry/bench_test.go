package telemetry

// Codec benchmarks: how fast wearer records move through the columnar
// block encoder/decoder, in records/s and encoded MB/s. BENCH_fleet.json
// at the repo root records a baseline next to the fleet-engine numbers —
// the encoder must stay far faster than the simulator (~thousands of
// runs/s) so the telemetry sink never becomes the sweep bottleneck.

import (
	"path/filepath"
	"testing"
)

// benchRecords builds one block's worth of realistic records.
func benchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = testRecord(i)
		// testRecord cycles 0–3 nodes; pad to a realistic 3–6 node mix.
		for len(recs[i].Nodes) < 3 {
			recs[i].Nodes = append(recs[i].Nodes, NodeRecord{
				PacketsGenerated: int64(300 + i%17),
				PacketsDelivered: int64(290 + i%17),
				Transmissions:    int64(310 + i%19),
				BitsDelivered:    int64(290000 + 1024*(i%13)),
				ProjectedLife:    86400 * float64(2+i%9),
				LatencyP50:       0.012,
				LatencyP99:       0.055,
				Perpetual:        i%2 == 0,
			})
		}
	}
	return recs
}

func BenchmarkBlockEncode(b *testing.B) {
	recs := benchRecords(DefaultBlockSize)
	var encoded int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := encodeBlock(recs, CurrentFormat)
		encoded = int64(len(frame))
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(DefaultBlockSize)/(perOp/1e9), "records/s")
	b.ReportMetric(float64(encoded)/(perOp/1e9)/1e6, "MB/s")
}

func BenchmarkBlockDecode(b *testing.B) {
	recs := benchRecords(DefaultBlockSize)
	frame := encodeBlock(recs, CurrentFormat)
	payload := frame[8 : len(frame)-4] // strip magic+len and CRC framing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeBlock(payload, CurrentFormat); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(DefaultBlockSize)/(perOp/1e9), "records/s")
	b.ReportMetric(float64(len(payload))/(perOp/1e9)/1e6, "MB/s")
}

// BenchmarkWriterConsume measures the full sink path: buffering, block
// encode, file append and checkpoint rename, amortized per record.
func BenchmarkWriterConsume(b *testing.B) {
	recs := benchRecords(DefaultBlockSize)
	w, err := Create(filepath.Join(b.TempDir(), "bench.wtl"), Meta{
		FleetSeed: 1, Wearers: b.N + 1, SpanSeconds: 1,
		Version: CurrentFormat, Cells: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Abort()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%DefaultBlockSize]
		rec.Wearer = i
		if err := w.Consume(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perOp, "records/s")
}
