package telemetry

// Codec benchmarks: how fast wearer records move through the columnar
// block encoder/decoder, in records/s and encoded MB/s. BENCH_fleet.json
// at the repo root records a baseline next to the fleet-engine numbers —
// the encoder must stay far faster than the simulator (~thousands of
// runs/s) so the telemetry sink never becomes the sweep bottleneck.

import (
	"math"
	"path/filepath"
	"testing"
)

// benchRecords builds one block's worth of realistic records.
func benchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = testRecord(i)
		// testRecord cycles 0–3 nodes; pad to a realistic 3–6 node mix.
		for len(recs[i].Nodes) < 3 {
			recs[i].Nodes = append(recs[i].Nodes, NodeRecord{
				PacketsGenerated: int64(300 + i%17),
				PacketsDelivered: int64(290 + i%17),
				Transmissions:    int64(310 + i%19),
				BitsDelivered:    int64(290000 + 1024*(i%13)),
				ProjectedLife:    86400 * float64(2+i%9),
				LatencyP50:       0.012,
				LatencyP99:       0.055,
				Perpetual:        i%2 == 0,
			})
		}
	}
	return recs
}

func BenchmarkBlockEncode(b *testing.B) {
	recs := benchRecords(DefaultBlockSize)
	var encoded int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := encodeBlock(recs, CurrentFormat)
		encoded = int64(len(frame))
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(DefaultBlockSize)/(perOp/1e9), "records/s")
	b.ReportMetric(float64(encoded)/(perOp/1e9)/1e6, "MB/s")
}

func BenchmarkBlockDecode(b *testing.B) {
	recs := benchRecords(DefaultBlockSize)
	frame := encodeBlock(recs, CurrentFormat)
	payload := frame[8 : len(frame)-4] // strip magic+len and CRC framing
	_, body, err := splitKind(payload, CurrentFormat)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeBlock(body, CurrentFormat); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(DefaultBlockSize)/(perOp/1e9), "records/s")
	b.ReportMetric(float64(len(body))/(perOp/1e9)/1e6, "MB/s")
}

// benchSeriesBlock builds one block of records carrying a realistic
// per-node time series: 4 nodes sampled every second over a 60 s span,
// with the encoder's NaN gap markers sprinkled in.
func benchSeriesBlock(n int) []Record {
	recs := benchRecords(n)
	for i := range recs {
		for tick := int64(1); tick <= 60; tick++ {
			for node := 0; node < 4; node++ {
				p := SeriesPoint{
					Node:       node,
					TimeMS:     tick * 1000,
					Charge:     1 - float64(tick)/7200 - float64(i%9)*0.01,
					QueueDepth: int((tick + int64(node) + int64(i)) % 5),
				}
				if (int64(i)+tick+int64(node))%7 == 0 {
					p.LinkPER, p.CollisionRate = math.NaN(), math.NaN()
				} else {
					p.LinkPER = float64((i+node)%12) / 40
					p.CollisionRate = p.LinkPER / 3
				}
				recs[i].Series = append(recs[i].Series, p)
			}
		}
	}
	return recs
}

func BenchmarkSeriesEncode(b *testing.B) {
	recs := benchSeriesBlock(DefaultBlockSize)
	points := 0
	for i := range recs {
		points += len(recs[i].Series)
	}
	var encoded int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := encodeSeriesFrame(nil, recs)
		encoded = int64(len(frame))
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(points)/(perOp/1e9), "points/s")
	b.ReportMetric(float64(encoded)/(perOp/1e9)/1e6, "MB/s")
}

func BenchmarkSeriesDecode(b *testing.B) {
	recs := benchSeriesBlock(DefaultBlockSize)
	points := 0
	for i := range recs {
		points += len(recs[i].Series)
	}
	frame := encodeSeriesFrame(nil, recs)
	payload := frame[8 : len(frame)-4]
	_, body, err := splitKind(payload, FormatV3)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]Record, len(recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = Record{Wearer: recs[j].Wearer}
		}
		if err := decodeSeriesBody(body, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(points)/(perOp/1e9), "points/s")
	b.ReportMetric(float64(len(body))/(perOp/1e9)/1e6, "MB/s")
}

// BenchmarkSeriesQuery measures an index-pruned aggregation over a
// series store — the iobtrace query hot path, including the open,
// checkpoint read and per-block decode.
func BenchmarkSeriesQuery(b *testing.B) {
	path := filepath.Join(b.TempDir(), "query.wtl")
	meta := Meta{FleetSeed: 42, Wearers: 256, SpanSeconds: 60, BlockSize: 32,
		Version: FormatV3, Cells: 5, Feedback: true, SeriesCadenceSeconds: 1}
	w, err := Create(path, meta)
	if err != nil {
		b.Fatal(err)
	}
	block := benchSeriesBlock(32)
	for i := 0; i < 256; i++ {
		rec := block[i%32]
		rec.Wearer = i
		if err := w.Consume(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	q := Query{Metric: "per", FromMS: 10_000, ToMS: 30_000, Cell: -1, Node: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := QueryStore(path, q)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Points == 0 {
			b.Fatal("query matched nothing")
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perOp, "queries/s")
}

// BenchmarkWriterConsume measures the full sink path: buffering, block
// encode, file append and checkpoint rename, amortized per record.
func BenchmarkWriterConsume(b *testing.B) {
	recs := benchRecords(DefaultBlockSize)
	w, err := Create(filepath.Join(b.TempDir(), "bench.wtl"), Meta{
		FleetSeed: 1, Wearers: b.N + 1, SpanSeconds: 1,
		Version: CurrentFormat, Cells: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Abort()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%DefaultBlockSize]
		rec.Wearer = i
		if err := w.Consume(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perOp, "records/s")
}
