package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wiban/internal/desim"
)

// testRecord builds a deterministic, mildly adversarial record for wearer
// w: varying node counts (including zero), negative-delta traffic
// columns, repeated and NaN-free float columns.
func testRecord(w int) Record {
	rec := Record{
		Wearer:           w,
		Events:           uint64(1000 + 7*w),
		HubRxBits:        int64(1e6) - int64(w)*13,
		HubUtilization:   0.25 + float64(w%4)*0.125,
		Cell:             w % 5,
		ForeignLoadPPM:   int64(40_000 * (w % 3)),
		EqForeignLoadPPM: int64(40_000*(w%3)) + int64(9_000*(w%4)),
		FeedbackIters:    w % 6,
	}
	for j := 0; j < w%4; j++ {
		rec.Nodes = append(rec.Nodes, NodeRecord{
			PacketsGenerated: int64(100 - w%50),
			PacketsDelivered: int64(90 - w%50),
			PacketsDropped:   int64(w % 7),
			Transmissions:    int64(110 + j),
			BitsDelivered:    int64(8000 * (j + 1)),
			ProjectedLife:    3600 * float64(1+w%5),
			LatencyP50:       0.010 + float64(j)*0.001,
			LatencyP99:       0.040,
			Perpetual:        (w+j)%3 == 0,
			Died:             (w+j)%11 == 0,
		})
	}
	return rec
}

func testMeta(wearers, blockSize int) Meta {
	return Meta{FleetSeed: 42, Wearers: wearers, SpanSeconds: 30, Scenario: "test-gen v1",
		BlockSize: blockSize, Version: CurrentFormat, Cells: 5, Feedback: true}
}

// writeStore writes records [0, n) and returns the store path.
func writeStore(t *testing.T, n, blockSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wtl")
	w, err := Create(path, testMeta(n, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Consume(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// drain reads every record, asserting wearer order.
func drain(t *testing.T, r *Reader) []Record {
	t.Helper()
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Wearer != len(recs) {
			t.Fatalf("wearer %d at position %d", rec.Wearer, len(recs))
		}
		recs = append(recs, rec)
	}
}

// TestStoreRoundTrip writes across several block boundaries plus a short
// final block and reads everything back bit-identically.
func TestStoreRoundTrip(t *testing.T) {
	const n, blockSize = 37, 8 // 4 full blocks + 5-record tail
	path := writeStore(t, n, blockSize)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Meta(); got != testMeta(n, blockSize) {
		t.Fatalf("meta round trip: %+v", got)
	}
	recs := drain(t, r)
	if len(recs) != n {
		t.Fatalf("read %d records, wrote %d", len(recs), n)
	}
	for i := range recs {
		want := testRecord(i)
		if len(want.Nodes) == 0 {
			want.Nodes = nil
		}
		if len(recs[i].Nodes) == 0 {
			recs[i].Nodes = nil
		}
		if !reflect.DeepEqual(recs[i], want) {
			t.Fatalf("record %d: got %+v want %+v", i, recs[i], want)
		}
	}
	if r.Blocks() != 5 || r.Records() != n || !r.Checkpointed() || r.Truncated() {
		t.Errorf("blocks=%d records=%d ck=%v trunc=%v", r.Blocks(), r.Records(), r.Checkpointed(), r.Truncated())
	}
}

// TestResumeAfterKill aborts mid-run at a block boundary and mid-block,
// then checks Resume lands exactly on the committed prefix.
func TestResumeAfterKill(t *testing.T) {
	for _, kill := range []struct {
		name          string
		written, want int
	}{
		{"at block boundary", 16, 16},
		{"mid-block", 21, 16}, // 5 buffered records lost
		{"before first block", 3, 0},
	} {
		t.Run(kill.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wtl")
			w, err := Create(path, testMeta(100, 8))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < kill.written; i++ {
				if err := w.Consume(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			w2, err := Resume(path)
			if err != nil {
				t.Fatal(err)
			}
			if w2.NextWearer() != kill.want {
				t.Fatalf("NextWearer = %d, want %d", w2.NextWearer(), kill.want)
			}
			// Finish the run from the resume point and verify the store.
			for i := kill.want; i < 100; i++ {
				if err := w2.Consume(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if recs := drain(t, r); len(recs) != 100 {
				t.Fatalf("resumed store holds %d records, want 100", len(recs))
			}
		})
	}
}

// TestResumeWithoutCheckpoint deletes the sidecar and appends garbage;
// the scan fallback must trust exactly the CRC-verified prefix.
func TestResumeWithoutCheckpoint(t *testing.T) {
	path := writeStore(t, 32, 8)
	if err := os.Remove(CheckpointPath(path)); err != nil {
		t.Fatal(err)
	}
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0); err != nil {
		t.Fatal(err)
	} else {
		f.Write([]byte("WBLK\xff\xff garbage tail not a real frame"))
		f.Close()
	}
	w, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if w.NextWearer() != 32 || w.Blocks() != 4 {
		t.Fatalf("scan fallback: next=%d blocks=%d, want 32/4", w.NextWearer(), w.Blocks())
	}
	// The garbage tail must be gone: reopening for read sees a clean
	// checkpointed store.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if recs := drain(t, r); len(recs) != 32 || r.Truncated() {
		t.Fatalf("after scan-resume: %d records, truncated=%v", len(recs), r.Truncated())
	}
}

// TestCheckpointSeedCheck tampers the sidecar's NextWearer; the seed
// check must reject it and fall back to the (correct) scan.
func TestCheckpointSeedCheck(t *testing.T) {
	path := writeStore(t, 24, 8)
	ck, err := os.ReadFile(CheckpointPath(path))
	if err != nil {
		t.Fatal(err)
	}
	// Bump next_wearer without recomputing seed_check.
	if !strings.Contains(string(ck), `"next_wearer":24`) {
		t.Fatalf("unexpected checkpoint %s", ck)
	}
	tampered := []byte(strings.Replace(string(ck), `"next_wearer":24`, `"next_wearer":16`, 1))
	if err := os.WriteFile(CheckpointPath(path), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpoint(path, testMeta(24, 8)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered checkpoint accepted: %v", err)
	}
	w, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if w.NextWearer() != 24 {
		t.Fatalf("resume after tamper: next=%d, want 24 via scan", w.NextWearer())
	}
}

// TestCheckpointRejectionTable drives readCheckpoint through the
// corruption matrix: every implausible or mistied sidecar must be
// rejected with ErrCorrupt — the seed check catching any next_wearer
// that was not stamped by this run — and Resume must then fall back to
// the CRC scan and recover the full committed prefix.
func TestCheckpointRejectionTable(t *testing.T) {
	const n, blockSize = 24, 8
	path := writeStore(t, n, blockSize)
	meta := testMeta(n, blockSize)
	good, err := os.ReadFile(CheckpointPath(path))
	if err != nil {
		t.Fatal(err)
	}
	// ckJSON renders a sidecar with a *valid* self-CRC, so each row
	// exercises the specific plausibility guard it names rather than
	// tripping the CRC first.
	ckJSON := func(offset int64, blocks, next int, seedCheck int64) string {
		ck := checkpoint{Offset: offset, Blocks: blocks, NextWearer: next, SeedCheck: seedCheck}
		ck.CRC = ck.sum()
		blob, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	badCRC := checkpoint{Offset: 200, Blocks: 2, NextWearer: 16,
		SeedCheck: desim.DeriveSeed(meta.FleetSeed, 32)}
	badCRC.CRC = badCRC.sum() + 1
	badCRCBlob, err := json.Marshal(badCRC)
	if err != nil {
		t.Fatal(err)
	}
	seed := func(next int) int64 { return desim.DeriveSeed(meta.FleetSeed, 2*uint64(next)) }
	for name, sidecar := range map[string]string{
		"empty":                    "",
		"not JSON":                 "WBTL nonsense",
		"truncated JSON":           string(good[:len(good)/2]),
		"missing CRC":              fmt.Sprintf(`{"offset":200,"blocks":2,"next_wearer":16,"seed_check":%d}`, seed(16)),
		"flipped CRC":              string(badCRCBlob),
		"seed check mismatch":      ckJSON(200, 2, 16, seed(16)+1),
		"seed from another fleet":  ckJSON(200, 2, 16, desim.DeriveSeed(meta.FleetSeed+1, 32)),
		"next_wearer re-stamped":   ckJSON(200, 2, 8, seed(16)),
		"next_wearer negative":     ckJSON(200, 2, -1, seed(0)),
		"next_wearer past sweep":   ckJSON(200, 4, n+8, seed(n+8)),
		"negative offset":          ckJSON(-3, 2, 16, seed(16)),
		"negative blocks":          ckJSON(200, -1, 0, seed(0)),
		"more blocks than records": ckJSON(200, 9, 8, seed(8)),
		"more records than fit":    ckJSON(200, 1, 16, seed(16)),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(CheckpointPath(path), []byte(sidecar), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := readCheckpoint(path, meta); err == nil {
				t.Fatalf("sidecar %q accepted", sidecar)
			} else if len(sidecar) > 0 && sidecar[0] == '{' && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("parsed-but-invalid sidecar: error %v, want ErrCorrupt", err)
			}
			// The fallback scan recovers everything the file holds.
			w, err := Resume(path)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Abort()
			if w.NextWearer() != n {
				t.Fatalf("scan fallback landed at %d, want %d", w.NextWearer(), n)
			}
		})
	}
}

// TestCheckpointOffsetBlockMismatch covers the consistency guard that
// lives above readCheckpoint (it needs the header length): a sidecar
// claiming committed blocks at the header offset — or an empty prefix
// past it — is ignored by both the reader and the resume path.
func TestCheckpointOffsetBlockMismatch(t *testing.T) {
	const n, blockSize = 24, 8
	path := writeStore(t, n, blockSize)
	meta := testMeta(n, blockSize)
	hdr, err := encodeHeader(meta)
	if err != nil {
		t.Fatal(err)
	}
	for name, ck := range map[string]checkpoint{
		"blocks at header offset": {Offset: int64(len(hdr)), Blocks: 2, NextWearer: 16,
			SeedCheck: desim.DeriveSeed(meta.FleetSeed, 32)},
		"empty prefix past header": {Offset: int64(len(hdr)) + 3, Blocks: 0, NextWearer: 0,
			SeedCheck: desim.DeriveSeed(meta.FleetSeed, 0)},
	} {
		t.Run(name, func(t *testing.T) {
			ck.CRC = ck.sum() // a valid self-CRC, so only the offset guard can reject
			blob, err := json.Marshal(ck)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(CheckpointPath(path), blob, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			recs := drain(t, r)
			if r.Checkpointed() {
				t.Error("reader trusted an offset/blocks-inconsistent sidecar")
			}
			r.Close()
			if len(recs) != n {
				t.Fatalf("scan read %d records, want %d", len(recs), n)
			}
			w, err := Resume(path)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Abort()
			if w.NextWearer() != n {
				t.Fatalf("resume landed at %d, want %d via scan", w.NextWearer(), n)
			}
		})
	}
}

// TestWriterRejectsDisorder covers the ordering and population guards.
func TestWriterRejectsDisorder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wtl")
	w, err := Create(path, testMeta(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Consume(testRecord(1)); err == nil {
		t.Error("out-of-order first record accepted")
	}
	for i := 0; i < 4; i++ {
		if err := w.Consume(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Consume(testRecord(4)); err == nil {
		t.Error("record past population accepted")
	}
}

// TestReaderRejectsCorruptPrefix flips one payload byte inside the
// checkpointed prefix: Next must surface ErrCorrupt, not truncate.
func TestReaderRejectsCorruptPrefix(t *testing.T) {
	path := writeStore(t, 16, 8)
	// Flip a byte 20 bytes before the checkpointed offset — inside the
	// last committed record block, not the trailing index frame (which
	// sits past the checkpoint and outside the trusted prefix).
	pre, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	trusted := pre.limit
	pre.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[trusted-20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var lastErr error
	for {
		_, err := r.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrCorrupt) {
		t.Fatalf("corrupt checkpointed block: %v, want ErrCorrupt", lastErr)
	}
}

// TestCreateValidatesMeta covers header-level validation.
func TestCreateValidatesMeta(t *testing.T) {
	dir := t.TempDir()
	for name, meta := range map[string]Meta{
		"no wearers": {Wearers: 0, SpanSeconds: 1},
		"no span":    {Wearers: 1, SpanSeconds: 0},
		"neg block":  {Wearers: 1, SpanSeconds: 1, BlockSize: -1},
	} {
		if _, err := Create(filepath.Join(dir, name), meta); err == nil {
			t.Errorf("%s: Create accepted %+v", name, meta)
		}
	}
}

// legacyRecord strips the v1- and v2-only fields from a test record, the
// shape a FormatV0 store can carry.
func legacyRecord(w int) Record {
	rec := testRecord(w)
	rec.Cell = -1
	rec.ForeignLoadPPM = 0
	rec.EqForeignLoadPPM = 0
	rec.FeedbackIters = 0
	return rec
}

// TestLegacyV0RoundTrip pins backwards compatibility: a store written in
// the pre-versioning column layout (no version field in the meta) must
// read back with the uncoupled sentinel cell −1 on every record.
func TestLegacyV0RoundTrip(t *testing.T) {
	const n, blockSize = 19, 8
	meta := Meta{FleetSeed: 42, Wearers: n, SpanSeconds: 30, BlockSize: blockSize}
	path := filepath.Join(t.TempDir(), "v0.wtl")
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Consume(legacyRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Meta().Version; got != FormatV0 {
		t.Fatalf("legacy store decoded as version %d", got)
	}
	recs := drain(t, r)
	if len(recs) != n {
		t.Fatalf("read %d records, wrote %d", len(recs), n)
	}
	for i := range recs {
		if recs[i].Cell != -1 || recs[i].ForeignLoadPPM != 0 {
			t.Fatalf("record %d: v0 store produced cell %d load %d",
				i, recs[i].Cell, recs[i].ForeignLoadPPM)
		}
	}
}

// v1Record strips the v2-only fields from a test record, the shape a
// FormatV1 store can carry.
func v1Record(w int) Record {
	rec := testRecord(w)
	rec.EqForeignLoadPPM = 0
	rec.FeedbackIters = 0
	return rec
}

// TestLegacyV1RoundTrip pins pre-feedback compatibility: a coupled v1
// store (what PR 3 binaries wrote) must read back exactly, with zero
// equilibrium fields on every record.
func TestLegacyV1RoundTrip(t *testing.T) {
	const n, blockSize = 19, 8
	meta := Meta{FleetSeed: 42, Wearers: n, SpanSeconds: 30, BlockSize: blockSize,
		Version: FormatV1, Cells: 5}
	path := filepath.Join(t.TempDir(), "v1.wtl")
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Consume(v1Record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Meta(); got.Version != FormatV1 || got.Feedback {
		t.Fatalf("v1 store decoded as %+v", got)
	}
	recs := drain(t, r)
	if len(recs) != n {
		t.Fatalf("read %d records, wrote %d", len(recs), n)
	}
	for i := range recs {
		want := v1Record(i)
		if recs[i].Cell != want.Cell || recs[i].ForeignLoadPPM != want.ForeignLoadPPM {
			t.Fatalf("record %d: v1 columns did not round-trip: %+v", i, recs[i])
		}
		if recs[i].EqForeignLoadPPM != 0 || recs[i].FeedbackIters != 0 {
			t.Fatalf("record %d: v1 store produced equilibrium data %+v", i, recs[i])
		}
	}
}

// TestFormatVersionGuards covers the version/cells validation matrix:
// coupled sweeps need v1, feedback sweeps v2, unknown versions are
// refused at create and open, and older-format writers refuse records
// carrying columns they cannot store.
func TestFormatVersionGuards(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "a.wtl"),
		Meta{Wearers: 10, SpanSeconds: 1, Cells: 4}); err == nil {
		t.Error("Create accepted a coupled sweep in format v0")
	}
	if _, err := Create(filepath.Join(dir, "fb1.wtl"),
		Meta{Wearers: 10, SpanSeconds: 1, Cells: 4, Version: FormatV1, Feedback: true}); err == nil {
		t.Error("Create accepted a feedback sweep in format v1")
	}
	if _, err := Create(filepath.Join(dir, "fb2.wtl"),
		Meta{Wearers: 10, SpanSeconds: 1, Version: FormatV2, Feedback: true}); err == nil {
		t.Error("Create accepted a feedback sweep without cells")
	}

	// A v1 writer must refuse equilibrium-carrying records instead of
	// dropping the columns (which would silently break replay).
	pv1 := filepath.Join(dir, "v1w.wtl")
	wv1, err := Create(pv1, Meta{Wearers: 10, SpanSeconds: 1, Cells: 5, Version: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	defer wv1.Abort()
	eqRec := v1Record(0)
	eqRec.EqForeignLoadPPM = 55_000
	if err := wv1.Consume(eqRec); err == nil {
		t.Error("v1 writer accepted a record with equilibrium data")
	}
	if err := wv1.Consume(v1Record(0)); err != nil {
		t.Errorf("v1 writer refused a v1-shaped record: %v", err)
	}
	if _, err := Create(filepath.Join(dir, "b.wtl"),
		Meta{Wearers: 10, SpanSeconds: 1, Version: CurrentFormat + 1}); err == nil {
		t.Error("Create accepted an unknown future version")
	}
	if _, err := Create(filepath.Join(dir, "c.wtl"),
		Meta{Wearers: 10, SpanSeconds: 1, Cells: -1, Version: CurrentFormat}); err == nil {
		t.Error("Create accepted a negative cell count")
	}

	// A v0 writer must refuse cell-carrying records instead of dropping
	// the column (which would silently break resume fingerprints).
	p := filepath.Join(dir, "d.wtl")
	w, err := Create(p, Meta{Wearers: 10, SpanSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	rec := legacyRecord(0)
	rec.Cell = 2
	if err := w.Consume(rec); err == nil {
		t.Error("v0 writer accepted a record with a cell")
	}

	// A future-version header is refused by Open, OpenStrict and Resume
	// alike (the header CRC covers the meta JSON, so render a well-formed
	// header claiming a version this binary does not decode).
	fp := filepath.Join(dir, "future.wtl")
	hdr, err := encodeHeader(Meta{Wearers: 10, SpanSeconds: 1, Version: CurrentFormat + 8, BlockSize: DefaultBlockSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fp, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fp); err == nil {
		t.Error("Open accepted a future format version")
	}
	if _, err := OpenStrict(fp); err == nil {
		t.Error("OpenStrict accepted a future format version")
	}
	// Resume especially must refuse: its checkpoint-less scan fallback
	// would misdecode future blocks as damage and truncate them away.
	if _, err := Resume(fp); err == nil {
		t.Error("Resume accepted a future format version")
	}
}

// TestOpenStrictAuditsPastStaleCheckpoint pins the verify-mode contract:
// a valid-but-stale checkpoint must not shield CRC damage in later
// blocks from a strict read, and a strict read of an intact store sees
// every record.
func TestOpenStrictAuditsPastStaleCheckpoint(t *testing.T) {
	const n, blockSize = 32, 8
	path := writeStore(t, n, blockSize)

	// Strict read of the intact store: all records, no truncation.
	rs, err := OpenStrict(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(t, rs)); got != n {
		t.Fatalf("strict read saw %d/%d records", got, n)
	}
	if rs.Checkpointed() {
		t.Error("strict reader must not trust the checkpoint")
	}
	rs.Close()

	// Forge a stale-but-valid checkpoint that covers only the first
	// block, then corrupt a byte well past it.
	ck := staleCheckpoint(t, path, blockSize)
	if err := os.WriteFile(CheckpointPath(path), ck, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x20 // inside the final block, past the stale checkpoint
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The checkpoint-trusting reader is blind to the damage…
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(t, r)); got != blockSize {
		t.Fatalf("checkpoint-bounded read saw %d records, want %d", got, blockSize)
	}
	r.Close()

	// …the strict reader is not.
	rs, err = OpenStrict(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	sawErr := false
	for {
		_, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("strict read error %v, want ErrCorrupt", err)
			}
			break
		}
	}
	if !sawErr {
		t.Fatal("strict read missed CRC damage past a stale checkpoint")
	}
}

// staleCheckpoint builds a checkpoint sidecar payload that validly
// describes the store's state after its first block only.
func staleCheckpoint(t *testing.T, path string, blockSize int) []byte {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := r.Meta()
	hdr, err := encodeHeader(meta)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, end, err := readFrameAt(f, int64(len(hdr)), r.StoredBytes(), meta.Version)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	w := &Writer{path: path, meta: meta, offset: end, blocks: 1, next: blockSize}
	if err := w.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	ck, err := os.ReadFile(CheckpointPath(path))
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestOnCommitHook pins the block-commit tick a progress stream rides:
// the callback fires once per committed block, strictly after the
// checkpoint is durable, with monotone blocks/records/bytes that agree
// with the writer's own accounting — and a clean Close fires it for the
// short tail block too.
func TestOnCommitHook(t *testing.T) {
	const n, blockSize = 21, 8 // 2 full blocks + 5-record tail
	path := filepath.Join(t.TempDir(), "hook.wtl")
	w, err := Create(path, testMeta(n, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	type tick struct {
		blocks, records int
		bytes           int64
	}
	var ticks []tick
	w.OnCommit = func(blocks, records int, bytes int64) {
		// The checkpoint must already cover this commit when the hook runs:
		// a daemon that streams "records committed" on this tick promises
		// those records survive a kill.
		ck, err := readCheckpoint(path, testMeta(n, blockSize))
		if err != nil {
			t.Errorf("hook ran before a readable checkpoint: %v", err)
			return
		}
		if ck.NextWearer != records || ck.Offset != bytes {
			t.Errorf("hook saw records=%d bytes=%d but checkpoint says next=%d offset=%d",
				records, bytes, ck.NextWearer, ck.Offset)
		}
		ticks = append(ticks, tick{blocks, records, bytes})
	}
	for i := 0; i < n; i++ {
		if err := w.Consume(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ticks) != 2 {
		t.Fatalf("hook fired %d times before Close, want 2 full blocks", len(ticks))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("hook fired %d times after Close, want 3 (tail block included)", len(ticks))
	}
	want := []tick{{1, 8, ticks[0].bytes}, {2, 16, ticks[1].bytes}, {3, 21, ticks[2].bytes}}
	for i, tk := range ticks {
		if tk != want[i] {
			t.Errorf("tick %d: got %+v want %+v", i, tk, want[i])
		}
		if i > 0 && tk.bytes <= ticks[i-1].bytes {
			t.Errorf("tick %d: bytes %d not monotone over %d", i, tk.bytes, ticks[i-1].bytes)
		}
	}
}

// TestVersionHelpers pins the shared front-end version rules: the oldest
// format that can represent a sweep, and the create rule that keeps
// series-off stores byte-identical to v2-era ones.
func TestVersionHelpers(t *testing.T) {
	for _, c := range []struct {
		cells    int
		feedback bool
		series   bool
		want     int
	}{
		{0, false, false, FormatV0},
		{4, false, false, FormatV1},
		{4, true, false, FormatV2},
		{4, true, true, FormatV3},
		{0, false, true, FormatV3},
	} {
		if got := RequiredVersion(c.cells, c.feedback, c.series); got != c.want {
			t.Errorf("RequiredVersion(%d,%t,%t) = v%d, want v%d", c.cells, c.feedback, c.series, got, c.want)
		}
	}
	if got := CreateVersion(false); got != FormatV2 {
		t.Errorf("CreateVersion(false) = v%d, want v%d", got, FormatV2)
	}
	if got := CreateVersion(true); got != FormatV3 {
		t.Errorf("CreateVersion(true) = v%d, want v%d", got, FormatV3)
	}
}
