package telemetry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// seriesMeta is testMeta lifted to a series-enabled v3 store.
func seriesMeta(wearers, blockSize int) Meta {
	m := testMeta(wearers, blockSize)
	m.Version = FormatV3
	m.SeriesCadenceSeconds = 0.5
	return m
}

// seriesRecord extends testRecord(w) with a deterministic per-node time
// series on a 500 ms grid: decaying charge, cycling queue depths, and
// NaN rate pairs (the encoder's marker for windows with no transmission
// attempts) sprinkled on every fifth sample. Wearers with no nodes
// (w%4 == 0) carry no samples — the empty-series edge rides along free.
func seriesRecord(w int) Record {
	rec := testRecord(w)
	for ms := int64(500); ms <= 3000; ms += 500 {
		for n := range rec.Nodes {
			p := SeriesPoint{
				Node:       n,
				TimeMS:     ms,
				Charge:     1 - float64(ms)/100000 - float64(w%7)*0.01,
				QueueDepth: (w + int(ms/500) + n) % 9,
			}
			if (w+n+int(ms/500))%5 == 0 {
				p.LinkPER, p.CollisionRate = math.NaN(), math.NaN()
			} else {
				p.LinkPER = float64((w+n)%10) / 20
				p.CollisionRate = p.LinkPER / 2
			}
			rec.Series = append(rec.Series, p)
		}
	}
	return rec
}

// writeSeriesStore writes seriesRecord(0..n) and returns the store path.
func writeSeriesStore(t *testing.T, n, blockSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "series.wtl")
	w, err := Create(path, seriesMeta(n, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Consume(seriesRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// samePoints compares series NaN-aware (reflect.DeepEqual treats NaN as
// unequal to itself, which would reject the gap markers round-tripping).
func samePoints(a, b []SeriesPoint) bool {
	if len(a) != len(b) {
		return false
	}
	feq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].TimeMS != b[i].TimeMS ||
			a[i].QueueDepth != b[i].QueueDepth ||
			!feq(a[i].Charge, b[i].Charge) ||
			!feq(a[i].LinkPER, b[i].LinkPER) ||
			!feq(a[i].CollisionRate, b[i].CollisionRate) {
			return false
		}
	}
	return true
}

// TestSeriesStoreRoundTrip writes a series store across several block
// boundaries and reads every sample back bit-identically.
func TestSeriesStoreRoundTrip(t *testing.T) {
	const n, blockSize = 37, 8
	path := writeSeriesStore(t, n, blockSize)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := drain(t, r)
	if len(recs) != n {
		t.Fatalf("read %d records, wrote %d", len(recs), n)
	}
	wantPoints := int64(0)
	for i := range recs {
		want := seriesRecord(i)
		wantPoints += int64(len(want.Series))
		if !samePoints(recs[i].Series, want.Series) {
			t.Fatalf("record %d series: got %+v want %+v", i, recs[i].Series, want.Series)
		}
		recs[i].Series, want.Series = nil, nil
		if len(want.Nodes) == 0 {
			want.Nodes = nil
		}
		if len(recs[i].Nodes) == 0 {
			recs[i].Nodes = nil
		}
		if !reflect.DeepEqual(recs[i], want) {
			t.Fatalf("record %d: got %+v want %+v", i, recs[i], want)
		}
	}
	if r.SeriesPoints() != wantPoints {
		t.Errorf("SeriesPoints() = %d, want %d", r.SeriesPoints(), wantPoints)
	}
	if r.Truncated() || !r.Checkpointed() {
		t.Errorf("trunc=%v ck=%v", r.Truncated(), r.Checkpointed())
	}
	// The whole file — record frames, series frames and the trailing
	// index — must also pass a strict audit.
	rs, err := OpenStrict(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := drain(t, rs); len(got) != n {
		t.Fatalf("strict drain read %d records", len(got))
	}
}

// TestSeriesOffStoreByteGolden pins a series-off (v2) store to the exact
// bytes the previous release wrote — recorded before any v3 code
// existed. The v3 frame kinds and trailing index must cost series-off
// stores nothing: any byte of drift here breaks resume compatibility
// with every store in the wild.
func TestSeriesOffStoreByteGolden(t *testing.T) {
	const (
		goldenSHA = "841eda97926dfd09b6486a6db155c776de7fc11b8cc1e278b274546e3edddaa5"
		goldenLen = 1141
	)
	path := filepath.Join(t.TempDir(), "golden.wtl")
	meta := Meta{FleetSeed: 42, Wearers: 24, SpanSeconds: 30, BlockSize: 8,
		Version: FormatV2, Cells: 5, Feedback: true}
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Consume(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if len(data) != goldenLen || hex.EncodeToString(sum[:]) != goldenSHA {
		t.Fatalf("v2 store drifted: %d bytes, sha256 %s (want %d, %s)",
			len(data), hex.EncodeToString(sum[:]), goldenLen, goldenSHA)
	}
}

// TestWriterRefusesSeriesIntoSeriesOffStore: samples fed to a store with
// no series frames must be refused, not silently dropped.
func TestWriterRefusesSeriesIntoSeriesOffStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "off.wtl")
	w, err := Create(path, testMeta(24, 8)) // v3, but cadence 0 ⇒ series off
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	rec := seriesRecord(1) // 1 node ⇒ non-empty series
	rec.Wearer = 0
	if err := w.Consume(rec); err == nil || !strings.Contains(err.Error(), "series") {
		t.Fatalf("series into a series-off store: err = %v", err)
	}
}

// TestSeriesKillResumeByteIdentical kills a series sweep mid-flight,
// resumes it through both recovery paths (trusted sidecar and CRC scan),
// and demands the finished store match an uninterrupted one byte for
// byte — including the trailing index frame, which the resumed writer
// must regenerate rather than inherit.
func TestSeriesKillResumeByteIdentical(t *testing.T) {
	const n, blockSize = 37, 8
	want, err := os.ReadFile(writeSeriesStore(t, n, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	for _, scan := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "killed.wtl")
		w, err := Create(path, seriesMeta(n, blockSize))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 19; i++ { // 2 committed blocks + 3 buffered records lost
			if err := w.Consume(seriesRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Abort(); err != nil {
			t.Fatal(err)
		}
		if scan {
			if err := os.Remove(CheckpointPath(path)); err != nil {
				t.Fatal(err)
			}
		}
		rw, err := Resume(path)
		if err != nil {
			t.Fatal(err)
		}
		if rw.NextWearer() != 16 {
			t.Fatalf("scan=%t: resumed at wearer %d, want 16", scan, rw.NextWearer())
		}
		for i := rw.NextWearer(); i < n; i++ {
			if err := rw.Consume(seriesRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("scan=%t: resumed store differs from uninterrupted one (%d vs %d bytes)",
				scan, len(got), len(want))
		}
	}
}

// TestSeriesScanResumeDiscardsTornPair: a record block whose paired
// series frame is torn must be discarded whole by the scan fallback —
// trusting the record half would leave a committed block without its
// samples.
func TestSeriesScanResumeDiscardsTornPair(t *testing.T) {
	const n, blockSize = 16, 8 // exactly two committed blocks
	path := writeSeriesStore(t, n, blockSize)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, hdrLen, err := readHeaderFile(f)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, ok := loadIndex(f, path, meta, hdrLen)
	f.Close()
	if !ok || len(entries) != 2 {
		t.Fatalf("index load failed (ok=%t, %d entries)", ok, len(entries))
	}
	// Tear the second block's series frame a few bytes in; its record
	// frame stays fully intact on disk.
	if err := os.Truncate(path, entries[1].serOffset+5); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(CheckpointPath(path)); err != nil {
		t.Fatal(err)
	}
	w, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if w.NextWearer() != blockSize || w.Blocks() != 1 {
		t.Fatalf("torn pair: resumed at wearer %d with %d blocks, want %d/1",
			w.NextWearer(), w.Blocks(), blockSize)
	}
}

// TestStrictVerifyCrossChecksIndex forges a trailing index frame whose
// entries disagree with the blocks on disk. The checkpoint-trusting
// reader never reads past the final checkpoint, so it stays blind; the
// strict audit must flag the divergence.
func TestStrictVerifyCrossChecksIndex(t *testing.T) {
	path := writeSeriesStore(t, 16, 8)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, hdrLen, err := readHeaderFile(f)
	if err != nil {
		t.Fatal(err)
	}
	entries, limit, ok := loadIndex(f, path, meta, hdrLen)
	f.Close()
	if !ok {
		t.Fatal("index load failed")
	}
	entries[1].points++ // lie about the second block
	if err := os.Truncate(path, limit); err != nil {
		t.Fatal(err)
	}
	fw, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(encodeIndexFrame(entries)); err != nil {
		t.Fatal(err)
	}
	fw.Close()

	r, err := Open(path) // checkpoint-bounded read stops before the index
	if err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	r.Close()

	rs, err := OpenStrict(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var derr error
	for derr == nil {
		_, derr = rs.Next()
	}
	if !strings.Contains(derr.Error(), "does not match") {
		t.Fatalf("strict audit of a forged index: err = %v", derr)
	}
}

// TestHeaderOnlyStore pins the whole toolchain's view of a store with a
// header but zero committed blocks — what iobfleet -out leaves behind
// when killed before the first commit. Both readers must report a clean,
// complete-in-zero-records store: no truncation, no phantom index, and
// Resume must land on wearer 0.
func TestHeaderOnlyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.wtl")
	w, err := Create(path, seriesMeta(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // zero blocks ⇒ no index frame either
		t.Fatal(err)
	}
	for _, open := range []struct {
		name string
		fn   func(string) (*Reader, error)
	}{{"open", Open}, {"strict", OpenStrict}} {
		r, err := open.fn(path)
		if err != nil {
			t.Fatalf("%s: %v", open.name, err)
		}
		recs := drain(t, r)
		if len(recs) != 0 || r.Blocks() != 0 || r.Records() != 0 {
			t.Errorf("%s: drained %d records, %d blocks", open.name, len(recs), r.Blocks())
		}
		if r.Truncated() {
			t.Errorf("%s: header-only store reported truncated", open.name)
		}
		if r.RawBytes() != 0 || r.SeriesPoints() != 0 {
			t.Errorf("%s: raw=%d series=%d on an empty store", open.name, r.RawBytes(), r.SeriesPoints())
		}
		r.Close()
	}
	rw, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Abort()
	if rw.NextWearer() != 0 || rw.Blocks() != 0 {
		t.Fatalf("resume of header-only store: wearer %d, %d blocks", rw.NextWearer(), rw.Blocks())
	}
}

// TestCreateRemovesStaleSidecar is the regression pin for the
// stale-checkpoint bug: Create(path) over an existing store left the old
// sidecar in place until its own first checkpoint rename, so a failure
// in that window — or a kill — stranded a sidecar describing the
// overwritten file. A later Resume with the same fleet seed would trust
// it (the seed check still verifies) and truncate the fresh store at a
// stale offset. Create must now remove the sidecar before the store
// gains any content.
func TestCreateRemovesStaleSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wtl")
	w, err := Create(path, seriesMeta(37, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Consume(seriesRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(CheckpointPath(path)); err != nil {
		t.Fatalf("no sidecar after a committed sweep: %v", err)
	}

	// Overwrite the store, with the new writer's own checkpoint write
	// sabotaged: a directory squatting on the sidecar's temp path makes
	// the rename-into-place fail, exactly the window the bug lived in.
	if err := os.Mkdir(CheckpointPath(path)+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, seriesMeta(37, 8)); err == nil {
		t.Fatal("create with a sabotaged checkpoint path succeeded")
	}
	if _, err := os.Stat(CheckpointPath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale sidecar survived the failed overwrite (stat err = %v)", err)
	}

	// With the saboteur removed, the same overwrite completes and resumes
	// at the new store's own state, not the old run's wearer 16.
	if err := os.RemoveAll(CheckpointPath(path) + ".tmp"); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(path, seriesMeta(37, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w2.Consume(seriesRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Abort(); err != nil {
		t.Fatal(err)
	}
	rw, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Abort()
	if rw.NextWearer() != 8 {
		t.Fatalf("resume after overwrite landed at wearer %d, want 8", rw.NextWearer())
	}
}
