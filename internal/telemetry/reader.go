package telemetry

import (
	"fmt"
	"io"
	"os"
)

// Reader iterates a store's records in wearer order, one decoded block in
// memory at a time — reading a million-wearer store costs one block of
// RAM, not the file size. When a valid checkpoint sidecar exists the
// reader trusts it and stops at its offset (bytes past it are an
// uncommitted tail); otherwise it verifies frame by frame and stops at
// the first damaged one, reporting the cut via Truncated.
type Reader struct {
	f       *os.File
	meta    Meta
	pos     int64
	limit   int64 // exclusive end of trusted bytes; file size without a checkpoint
	ckValid bool
	// strict (OpenStrict) ignores the checkpoint and turns every damaged
	// or out-of-place frame into a hard error instead of a silent
	// truncation — the integrity-audit mode iobtrace verify runs in.
	strict bool
	// decoded block being drained
	block []Record
	bi    int
	// running totals
	blocks    int
	records   int
	seriesPts int64
	rawBytes  int64
	size      int64
	truncated bool
	// entries accumulates per-block index entries as blocks are read, so
	// strict mode can cross-check the trailing index frame field by field.
	entries   []indexEntry
	indexSeen bool
}

// openCommon is the shared open prologue: open the file and verify its
// header and format version. On error the file is closed. Statting is
// left to the caller — Open must read the checkpoint sidecar before
// observing the size.
func openCommon(path string) (f *os.File, meta Meta, hdrLen int64, err error) {
	f, err = os.Open(path)
	if err != nil {
		return nil, Meta{}, 0, fmt.Errorf("telemetry: open: %w", err)
	}
	meta, hdrLen, err = readHeaderFile(f)
	if err == nil {
		err = checkVersion(meta)
	}
	if err != nil {
		f.Close()
		return nil, Meta{}, 0, err
	}
	return f, meta, hdrLen, nil
}

// Open opens the store at path for reading. It may be called on a store a
// live Writer is still appending to: the checkpoint pins the readable
// prefix.
func Open(path string) (*Reader, error) {
	f, meta, hdrLen, err := openCommon(path)
	if err != nil {
		return nil, err
	}
	// Read the checkpoint before statting: a live writer commits the
	// block first and renames the checkpoint second, so in this order a
	// valid checkpoint's offset is always within the observed size — the
	// reverse order could see a fresh checkpoint past a stale size and
	// wrongly degrade to truncated-scan mode.
	ck, ckErr := readCheckpoint(path, meta)
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: open: %w", err)
	}
	r := &Reader{f: f, meta: meta, pos: hdrLen, limit: st.Size(), size: st.Size()}
	if ckErr == nil && ck.consistentWith(hdrLen, st.Size()) {
		r.limit = ck.Offset
		r.ckValid = true
	}
	return r, nil
}

// OpenStrict opens the store for an integrity audit: the checkpoint
// sidecar is ignored, every physical byte of the file must belong to a
// CRC-valid, contiguous frame, and any damage — including damage past a
// (possibly stale) checkpoint, and a torn tail frame a kill left behind —
// surfaces as a Next error instead of a silent truncation. iobtrace
// verify runs in this mode so its exit code reflects the whole file, not
// just the checkpoint-trusted prefix.
func OpenStrict(path string) (*Reader, error) {
	f, meta, hdrLen, err := openCommon(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: open: %w", err)
	}
	return &Reader{f: f, meta: meta, pos: hdrLen, limit: st.Size(), size: st.Size(), strict: true}, nil
}

// Meta returns the store's header metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Next returns the next record, or io.EOF after the last committed one.
// Without a checkpoint, a damaged frame ends iteration early (Truncated
// reports that) rather than erroring: it is indistinguishable from a
// killed run's uncommitted tail. Inside a checkpointed prefix damage is
// an error — the checkpoint promised those bytes.
func (r *Reader) Next() (Record, error) {
	for r.bi >= len(r.block) {
		if r.pos >= r.limit {
			return Record{}, io.EOF
		}
		if err := r.nextBlock(); err != nil {
			if err == io.EOF {
				continue // index frame consumed; the loop re-checks pos
			}
			if r.ckValid || r.strict {
				return Record{}, err
			}
			r.truncated = true
			r.pos = r.limit
			return Record{}, io.EOF
		}
	}
	rec := r.block[r.bi]
	r.bi++
	return rec, nil
}

// nextBlock loads the next record block (with its series frame attached
// in a series-enabled store) into r.block. It returns io.EOF after
// consuming a valid trailing index frame, and ErrCorrupt-wrapped errors
// for damage — the caller maps those to truncation or hard failure.
func (r *Reader) nextBlock() error {
	payload, end, err := readFramePayload(r.f, r.pos, r.limit)
	if err != nil {
		return err
	}
	kind, body, err := splitKind(payload, r.meta.Version)
	if err != nil {
		return err
	}
	switch kind {
	case kindRecords:
		recs, err := decodeBlock(body, r.meta.Version)
		if err != nil {
			return err
		}
		if len(recs) == 0 || recs[0].Wearer != r.meta.FirstWearer+r.records {
			return fmt.Errorf("%w: non-contiguous wearer indices", ErrCorrupt)
		}
		serOff := int64(0)
		if r.meta.Series() {
			// The pair committed in one write: a record block inside the
			// trusted region without a valid series frame is damage.
			serOff = end
			if end, err = readSeriesFrameAt(r.f, end, r.limit, recs); err != nil {
				return err
			}
		}
		r.entries = append(r.entries, entryFor(r.pos, serOff, recs))
		r.block, r.bi = recs, 0
		r.blocks++
		r.records += len(recs)
		for i := range recs {
			r.rawBytes += int64(recs[i].RawSize())
			r.seriesPts += int64(len(recs[i].Series))
		}
		r.pos = end
		return nil
	case kindSeries:
		// Series frames are consumed with their record block above; one
		// standing alone lost its pair.
		return fmt.Errorf("%w: orphan series frame", ErrCorrupt)
	default: // kindIndex
		entries, err := decodeIndexBody(body)
		if err != nil {
			return err
		}
		if end != r.limit {
			return fmt.Errorf("%w: index frame is not the final frame", ErrCorrupt)
		}
		if r.strict {
			// The index must restate exactly the blocks walked to get
			// here; any divergence means it describes a different file.
			if len(entries) != len(r.entries) {
				return fmt.Errorf("%w: index holds %d entries, store holds %d blocks",
					ErrCorrupt, len(entries), len(r.entries))
			}
			for i := range entries {
				if entries[i] != r.entries[i] {
					return fmt.Errorf("%w: index entry %d (%+v) does not match block (%+v)",
						ErrCorrupt, i, entries[i], r.entries[i])
				}
			}
		}
		r.indexSeen = true
		r.pos = end
		return io.EOF
	}
}

// Blocks and Records report how much of the store has been iterated so
// far; after draining to io.EOF they cover the whole committed prefix.
func (r *Reader) Blocks() int  { return r.blocks }
func (r *Reader) Records() int { return r.records }

// SeriesPoints reports the time-series samples attached to the records
// iterated so far (0 in a pre-v3 or series-off store).
func (r *Reader) SeriesPoints() int64 { return r.seriesPts }

// RawBytes is the flat fixed-width size of every record iterated so far —
// the numerator of the store's compression ratio.
func (r *Reader) RawBytes() int64 { return r.rawBytes }

// StoredBytes is the total file size including header and framing.
func (r *Reader) StoredBytes() int64 { return r.size }

// Truncated reports whether iteration ended at a damaged frame instead of
// clean end-of-data (only possible without a checkpoint sidecar).
func (r *Reader) Truncated() bool { return r.truncated }

// Checkpointed reports whether a valid checkpoint sidecar bounded the
// read.
func (r *Reader) Checkpointed() bool { return r.ckValid }

// Close releases the underlying file.
func (r *Reader) Close() error {
	r.block = nil
	return r.f.Close()
}
