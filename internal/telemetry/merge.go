package telemetry

import (
	"fmt"
	"io"
	"os"
)

// Shard-store merging. A sharded sweep runs each contiguous wearer range
// [first, end) on its own backend, producing a shard store whose meta
// carries FirstWearer/EndWearer and whose records keep their absolute
// wearer indices. MergeShards streams the shards' records, in wearer
// order, through a fresh full-range Writer — re-encoding rather than
// splicing frames. Because block boundaries are a pure function of the
// record sequence and BlockSize, and every codec is deterministic, the
// merged file is byte-identical to the store a single-process run of the
// whole population would have written, trailing query index included.
//
// Series frames ride the same path. A shard's block boundaries differ
// from the merged ones (a shard covering [100,200) at BlockSize 64
// blocks at 100/164, the single writer at 64/128/192), so series frames
// cannot be spliced either: the shard Reader re-pairs each record block
// with its series frame and attaches the decoded samples to rec.Series,
// Writer.Consume copies them into its block arena (records offered to
// the merge borrow decoder memory, exactly the engine's Sink contract),
// and the merged writer re-cuts record+series pairs at its own
// boundaries, committing each pair in one write. A sharded -series
// sweep therefore merges byte-identical too — samples, gap markers and
// index columns included.

// Committed reports a store's durable extent — its meta, the
// checkpoint-covered byte length, and the next wearer index — without
// reading any block. It is the coordinator-facing summary a backend
// serves alongside shard bytes: the returned offset bounds the prefix
// that is safe to replicate while the writer is still appending. A
// missing, corrupt or inconsistent checkpoint sidecar is an error;
// callers retry rather than guess.
func Committed(path string) (Meta, int64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, 0, 0, fmt.Errorf("telemetry: committed: %w", err)
	}
	defer f.Close()
	meta, hdrLen, err := readHeaderFile(f)
	if err != nil {
		return Meta{}, 0, 0, err
	}
	if err := checkVersion(meta); err != nil {
		return Meta{}, 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return Meta{}, 0, 0, fmt.Errorf("telemetry: committed: %w", err)
	}
	ck, err := readCheckpoint(path, meta)
	if err != nil {
		return Meta{}, 0, 0, fmt.Errorf("telemetry: committed: %w", err)
	}
	if !ck.consistentWith(hdrLen, st.Size()) {
		return Meta{}, 0, 0, fmt.Errorf("%w: checkpoint does not describe %s", ErrCorrupt, path)
	}
	return meta, ck.Offset, ck.NextWearer, nil
}

// rangeless strips the shard-range fields, leaving the sweep identity a
// merge compares across shards and writes into the merged header.
func rangeless(m Meta) Meta {
	m.FirstWearer, m.EndWearer = 0, 0
	return m
}

// MergeShards reassembles the full-population store at dst from complete
// shard stores (in ascending range order) at paths. The shards must share
// one sweep identity, tile [0, Wearers) exactly, and each hold every
// record of its range. Every merged record is also offered to sink (when
// non-nil) in wearer order, so the caller can fold the fingerprint in the
// same pass; records — their node AND series slices — borrow decoder
// memory and must not be retained past the call.
// Returns the merged store's committed block count and final file size.
// On any error the half-written dst and its checkpoint sidecar are
// removed (Writer.Discard): a failed merge leaves no partial store a
// later recovery could mistake for real state — the shard stores remain
// the durable inputs to retry from.
func MergeShards(dst string, paths []string, sink func(Record) error) (int, int64, error) {
	if len(paths) == 0 {
		return 0, 0, fmt.Errorf("telemetry: merge of zero shards")
	}
	var w *Writer
	var base Meta
	next := 0
	for i, path := range paths {
		r, err := Open(path)
		if err != nil {
			if w != nil {
				w.Discard()
			}
			return 0, 0, fmt.Errorf("telemetry: merge shard %d: %w", i, err)
		}
		meta := r.Meta()
		first, end := meta.Range()
		if i == 0 {
			if first != 0 {
				r.Close()
				return 0, 0, fmt.Errorf("telemetry: merge: first shard starts at wearer %d, not 0", first)
			}
			base = rangeless(meta)
			if w, err = Create(dst, base); err != nil {
				r.Close()
				return 0, 0, fmt.Errorf("telemetry: merge: create merged store: %w", err)
			}
		} else if rangeless(meta) != base {
			r.Close()
			w.Discard()
			return 0, 0, fmt.Errorf("telemetry: merge: shard %d meta %+v does not match shard 0 sweep %+v",
				i, rangeless(meta), base)
		}
		if first != next {
			r.Close()
			w.Discard()
			return 0, 0, fmt.Errorf("telemetry: merge: shard %d covers [%d,%d), expected to start at %d",
				i, first, end, next)
		}
		if err := copyShard(r, w, sink); err != nil {
			r.Close()
			w.Discard()
			return 0, 0, fmt.Errorf("telemetry: merge shard %d: %w", i, err)
		}
		got := first + r.Records()
		r.Close()
		if got != end {
			w.Discard()
			return 0, 0, fmt.Errorf("telemetry: merge: shard %d incomplete: holds wearers [%d,%d) of [%d,%d)",
				i, first, got, first, end)
		}
		next = end
	}
	if next != base.Wearers {
		w.Discard()
		return 0, 0, fmt.Errorf("telemetry: merge: shards end at wearer %d, population is %d", next, base.Wearers)
	}
	if err := w.Close(); err != nil {
		w.Discard()
		return 0, 0, fmt.Errorf("telemetry: merge: %w", err)
	}
	blocks := w.Blocks()
	st, err := os.Stat(dst)
	if err != nil {
		w.Discard()
		return 0, 0, fmt.Errorf("telemetry: merge: %w", err)
	}
	return blocks, st.Size(), nil
}

// copyShard streams one shard's records into the merged writer and sink.
// The Reader attaches each block's decoded series samples to rec.Series
// before handing the record over, and Consume copies nodes and series
// into the writer's arenas, so the borrowed decode buffers never outlive
// the shard block they came from even though the merged writer buffers
// records across shard boundaries.
func copyShard(r *Reader, w *Writer, sink func(Record) error) error {
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := w.Consume(rec); err != nil {
			return err
		}
		if sink != nil {
			if err := sink(rec); err != nil {
				return err
			}
		}
	}
}
