package telemetry

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"wiban/internal/desim"
)

// checkpoint is the sidecar write-ahead mark. Offset bytes of the data
// file hold Blocks verified blocks covering wearers [0, NextWearer);
// everything past Offset is an uncommitted tail to discard on resume.
type checkpoint struct {
	Offset     int64 `json:"offset"`
	Blocks     int   `json:"blocks"`
	NextWearer int   `json:"next_wearer"`
	// SeedCheck binds the checkpoint to the fleet seed-derivation
	// contract: it must equal desim.DeriveSeed(fleetSeed, 2·NextWearer),
	// the scenario-stream seed of the wearer the resumed sweep starts at.
	SeedCheck int64 `json:"seed_check"`
	// CRC covers the other four fields (see sum). SeedCheck only ties
	// NextWearer to the run, so a bit flip in Offset alone would still
	// pass it — and a trusted garbage offset truncates the store
	// mid-block. The CRC turns any such corruption into a clean fall
	// back to the block scan. Absent (pre-CRC sidecars), the checkpoint
	// is likewise rejected and the scan recovers the same prefix.
	CRC uint32 `json:"crc"`
}

// consistentWith reports whether the checkpoint's offset plausibly
// describes a data file with the given header length and size: inside
// the file, and sitting exactly at the header iff no block is
// committed. The reader's Open and the writer's resume must trust a
// sidecar under the identical predicate, or replay and resume would
// silently diverge — hence one shared method.
func (ck *checkpoint) consistentWith(hdrLen, size int64) bool {
	return ck.Offset >= hdrLen && ck.Offset <= size &&
		(ck.Blocks == 0) == (ck.Offset == hdrLen)
}

// sum is the self-check over the checkpoint's payload fields.
func (ck *checkpoint) sum() uint32 {
	return crc32.ChecksumIEEE(fmt.Appendf(nil, "%d|%d|%d|%d",
		ck.Offset, ck.Blocks, ck.NextWearer, ck.SeedCheck))
}

// CheckpointPath is the sidecar path for a store at path.
func CheckpointPath(path string) string { return path + ".ckpt" }

// writeCheckpoint atomically replaces the sidecar (write temp, rename) so
// a kill mid-write leaves either the old or the new checkpoint, never a
// torn one.
func (w *Writer) writeCheckpoint() error {
	ck := checkpoint{
		Offset:     w.offset,
		Blocks:     w.blocks,
		NextWearer: w.next - len(w.buf), // committed records only
		SeedCheck:  desim.DeriveSeed(w.meta.FleetSeed, 2*uint64(w.next-len(w.buf))),
	}
	ck.CRC = ck.sum()
	blob, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("telemetry: checkpoint: %w", err)
	}
	tmp := CheckpointPath(w.path) + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("telemetry: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, CheckpointPath(w.path)); err != nil {
		return fmt.Errorf("telemetry: checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads and validates the sidecar against meta. A
// mismatched SeedCheck means the checkpoint belongs to a different run
// (or the seed was tampered with); the caller then falls back to a block
// scan.
func readCheckpoint(path string, meta Meta) (checkpoint, error) {
	var ck checkpoint
	blob, err := os.ReadFile(CheckpointPath(path))
	if err != nil {
		return ck, err
	}
	if err := json.Unmarshal(blob, &ck); err != nil {
		return ck, fmt.Errorf("%w: checkpoint: %v", ErrCorrupt, err)
	}
	if ck.CRC != ck.sum() {
		return ck, fmt.Errorf("%w: checkpoint CRC mismatch", ErrCorrupt)
	}
	first, end := meta.Range()
	if ck.NextWearer < first || ck.NextWearer > end || ck.Blocks < 0 || ck.Offset < 0 {
		return ck, fmt.Errorf("%w: implausible checkpoint %+v", ErrCorrupt, ck)
	}
	// Committed blocks hold between 1 and BlockSize records each, so the
	// record count (relative to the store's first wearer) and the block
	// count bound each other; a sidecar outside that envelope is corrupt
	// regardless of its seed check.
	bs := meta.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	committed := ck.NextWearer - first
	if committed < ck.Blocks || int64(committed) > int64(ck.Blocks)*int64(bs) {
		return ck, fmt.Errorf("%w: checkpoint blocks/records mismatch %+v", ErrCorrupt, ck)
	}
	if want := desim.DeriveSeed(meta.FleetSeed, 2*uint64(ck.NextWearer)); ck.SeedCheck != want {
		return ck, fmt.Errorf("%w: checkpoint seed check %d != derived %d (checkpoint from a different run?)",
			ErrCorrupt, ck.SeedCheck, want)
	}
	return ck, nil
}
