package telemetry

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Query selects series samples from a v3 store for aggregation. The zero
// value with Cell and Node set to -1 selects every sample of the store.
type Query struct {
	// Metric names the sampled column to aggregate: "charge" (battery
	// fraction remaining), "queue" (TX queue depth), "per" (per-window
	// link packet-error rate) or "collisions" (per-window collision
	// rate).
	Metric string
	// FromMS / ToMS bound the sample time in simulated milliseconds,
	// inclusive on both ends. ToMS <= 0 leaves the range open above.
	FromMS int64
	ToMS   int64
	// Cell restricts samples to wearers placed in this spectrum cell;
	// negative matches every cell (including the uncoupled sentinel -1 is
	// not expressible — uncoupled stores match only via negative Cell).
	Cell int
	// Node restricts samples to this node index within each wearer;
	// negative matches every node class.
	Node int
}

// metric returns the column extractor for q.Metric.
func (q *Query) metric() (func(p *SeriesPoint) float64, error) {
	switch q.Metric {
	case "charge":
		return func(p *SeriesPoint) float64 { return p.Charge }, nil
	case "queue":
		return func(p *SeriesPoint) float64 { return float64(p.QueueDepth) }, nil
	case "per":
		return func(p *SeriesPoint) float64 { return p.LinkPER }, nil
	case "collisions":
		return func(p *SeriesPoint) float64 { return p.CollisionRate }, nil
	default:
		return nil, fmt.Errorf("telemetry: unknown series metric %q (want charge, queue, per or collisions)", q.Metric)
	}
}

// admits reports whether a block summarized by e can hold any sample the
// query selects — the index-pruning predicate. It must never reject a
// block holding a matching sample; rejecting too little only costs I/O.
func (q *Query) admits(e *indexEntry) bool {
	if e.points == 0 {
		return false
	}
	if q.FromMS > e.maxTimeMS || (q.ToMS > 0 && q.ToMS < e.minTimeMS) {
		return false
	}
	if q.Cell >= 0 && (q.Cell < e.minCell || q.Cell > e.maxCell) {
		return false
	}
	if q.Node >= 0 && q.Node >= e.maxNodes {
		return false
	}
	return true
}

// SeriesStats aggregates the selected samples: exact sum/min/max/mean
// plus exact sorted-sample percentiles (the same batch convention as the
// fleet's Dist: rank floor(n·pct/100)). NaN samples — the encoder's
// marker for windows with no transmission attempts — are counted as Gaps
// and excluded from every statistic, mirroring StreamDist's NaN policy.
type SeriesStats struct {
	Points int // finite samples folded in
	Gaps   int // NaN samples (empty windows) excluded
	Sum    float64
	Min    float64
	Max    float64

	values []float64
	sorted bool
}

// add folds one sample value.
func (s *SeriesStats) add(v float64) {
	if math.IsNaN(v) {
		s.Gaps++
		return
	}
	if s.Points == 0 || v < s.Min {
		s.Min = v
	}
	if s.Points == 0 || v > s.Max {
		s.Max = v
	}
	s.Points++
	s.Sum += v
	s.values = append(s.values, v)
	s.sorted = false
}

// Mean is Sum over Points, 0 when no sample matched.
func (s *SeriesStats) Mean() float64 {
	if s.Points == 0 {
		return 0
	}
	return s.Sum / float64(s.Points)
}

// Percentile returns the exact pct-th percentile of the matched samples
// (rank floor(n·pct/100), clamped), 0 when no sample matched.
func (s *SeriesStats) Percentile(pct float64) float64 {
	if s.Points == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	idx := int(float64(len(s.values)) * pct / 100)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.values) {
		idx = len(s.values) - 1
	}
	return s.values[idx]
}

// fold filters one record's samples through the query.
func (s *SeriesStats) fold(q *Query, get func(p *SeriesPoint) float64, rec *Record) {
	if q.Cell >= 0 && rec.Cell != q.Cell {
		return
	}
	for i := range rec.Series {
		p := &rec.Series[i]
		if q.Node >= 0 && p.Node != q.Node {
			continue
		}
		if p.TimeMS < q.FromMS || (q.ToMS > 0 && p.TimeMS > q.ToMS) {
			continue
		}
		s.add(get(p))
	}
}

// QueryStore aggregates the series samples of the store at path that
// match q. When the store carries its trailing query index (every
// completely written v3 store does) only the blocks whose index entry
// overlaps the predicate are read — a narrow time- or cell-bounded query
// touches a fraction of the file. Without the index (a killed run not
// yet resumed) it degrades to a sequential scan of the committed prefix.
func QueryStore(path string, q Query) (*SeriesStats, error) {
	get, err := q.metric()
	if err != nil {
		return nil, err
	}
	f, meta, hdrLen, err := openCommon(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !meta.Series() {
		return nil, fmt.Errorf("telemetry: store %s (format v%d) holds no series samples; re-run the sweep with a series cadence",
			path, meta.Version)
	}
	stats := &SeriesStats{}
	if entries, limit, ok := loadIndex(f, path, meta, hdrLen); ok {
		for i := range entries {
			e := &entries[i]
			if !q.admits(e) {
				continue
			}
			recs, _, err := readFrameAt(f, e.recOffset, limit, meta.Version)
			if err != nil {
				return nil, fmt.Errorf("telemetry: query: %w", err)
			}
			if _, err := readSeriesFrameAt(f, e.serOffset, limit, recs); err != nil {
				return nil, fmt.Errorf("telemetry: query: %w", err)
			}
			for j := range recs {
				stats.fold(&q, get, &recs[j])
			}
		}
		return stats, nil
	}
	// No usable index: walk every committed block.
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("telemetry: query: %w", err)
		}
		stats.fold(&q, get, &rec)
	}
	return stats, nil
}

// loadIndex locates and decodes the trailing query-index frame of a
// completely written store. The index is written immediately past the
// final checkpoint offset, so a valid sidecar points straight at it; any
// inconsistency (missing sidecar, no trailing frame, frame of the wrong
// kind, trailing bytes past it) reports ok=false and the caller falls
// back to a sequential scan. limit is the trusted byte bound record
// frames may be read under.
func loadIndex(f *os.File, path string, meta Meta, hdrLen int64) (entries []indexEntry, limit int64, ok bool) {
	if meta.Version < FormatV3 {
		return nil, 0, false
	}
	st, err := f.Stat()
	if err != nil {
		return nil, 0, false
	}
	ck, err := readCheckpoint(path, meta)
	if err != nil || !ck.consistentWith(hdrLen, st.Size()) || ck.Offset >= st.Size() {
		return nil, 0, false
	}
	payload, end, err := readFramePayload(f, ck.Offset, st.Size())
	if err != nil || end != st.Size() {
		return nil, 0, false
	}
	kind, body, err := splitKind(payload, meta.Version)
	if err != nil || kind != kindIndex {
		return nil, 0, false
	}
	entries, err = decodeIndexBody(body)
	if err != nil {
		return nil, 0, false
	}
	return entries, ck.Offset, true
}
