package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"wiban/internal/compress"
)

// Writer appends wearer records to a store, committing a framed block
// every Meta.BlockSize records and checkpointing after each commit. It
// implements the fleet engine's Sink interface via Consume. Writers are
// not safe for concurrent use; the fleet engine already serializes sink
// calls into wearer-index order.
type Writer struct {
	f      *os.File
	path   string
	meta   Meta
	hdrLen int64
	next   int   // next expected wearer index
	blocks int   // committed RECORD blocks (series/index frames never count)
	offset int64 // committed (checkpointed) data-file length
	buf    []Record
	nodes  []NodeRecord  // backing arena so buffered records share one allocation
	points []SeriesPoint // same arena trick for buffered series samples
	// entries is the per-block query index accumulated across commits and
	// written as the trailing index frame at Close. A checkpoint-resumed
	// writer has not seen its earlier blocks, so it sets reindex and
	// rebuilds the entries from the file before writing the frame.
	entries []indexEntry
	reindex bool
	closed  bool

	// OnCommit, when non-nil, is invoked after every committed block once
	// its checkpoint is durable, with the writer's running totals: committed
	// blocks, committed records and the committed data-file length in bytes.
	// It runs synchronously on the Consume path — the block-commit tick a
	// progress stream or metrics exporter rides — so it must be fast and
	// must not call back into the writer. Set it after Create or Resume,
	// before the first Consume.
	OnCommit func(blocks, records int, bytes int64)
}

// encodeHeader renders the file header for meta.
func encodeHeader(meta Meta) ([]byte, error) {
	blob, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("telemetry: meta: %w", err)
	}
	hdr := append([]byte(fileMagic), compress.AppendUvarint(nil, uint64(len(blob)))...)
	hdr = append(hdr, blob...)
	return binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(blob)), nil
}

// Create starts a new store at path, truncating any existing file, and
// immediately checkpoints the empty state so a kill before the first
// block still resumes cleanly.
func Create(path string, meta Meta) (*Writer, error) {
	if meta.BlockSize == 0 {
		meta.BlockSize = DefaultBlockSize
	}
	if err := meta.validate(); err != nil {
		return nil, err
	}
	hdr, err := encodeHeader(meta)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: create: %w", err)
	}
	// A failed create leaves nothing: the file was truncated the moment it
	// opened, so whatever used to live at path is already gone, and a
	// headerless or checkpoint-less husk would only confuse later recovery.
	fail := func(err error) (*Writer, error) {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	// Remove any leftover sidecar from a previous run at this path BEFORE
	// the store gains content. The old sidecar describes the overwritten
	// file: if it survived until our own first checkpoint rename — e.g.
	// because that rename fails, or the process dies first — a later
	// Resume could trust it (same seed ⇒ its SeedCheck still verifies) and
	// truncate the fresh store at a stale offset, mid-frame.
	if err := os.Remove(CheckpointPath(path)); err != nil && !os.IsNotExist(err) {
		return fail(fmt.Errorf("telemetry: remove stale checkpoint: %w", err))
	}
	if _, err := f.Write(hdr); err != nil {
		return fail(fmt.Errorf("telemetry: write header: %w", err))
	}
	w := &Writer{f: f, path: path, meta: meta, hdrLen: int64(len(hdr)),
		next: meta.FirstWearer, offset: int64(len(hdr))}
	if err := w.writeCheckpoint(); err != nil {
		return fail(err)
	}
	return w, nil
}

// Resume reopens an interrupted store for appending: it restores the last
// checkpoint, discards any uncheckpointed tail bytes, and positions the
// writer at NextWearer. When the checkpoint sidecar is missing or does
// not match the store, it falls back to scanning the data file block by
// block, trusting exactly the prefix whose CRCs verify.
func Resume(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("telemetry: resume: %w", err)
	}
	w, err := resume(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func resume(f *os.File, path string) (*Writer, error) {
	meta, hdrLen, err := readHeaderFile(f)
	if err != nil {
		return nil, err
	}
	// Refuse a newer format before the scan fallback can misdecode its
	// blocks as tail damage and truncate them away.
	if err := checkVersion(meta); err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("telemetry: resume: %w", err)
	}
	size := st.Size()
	w := &Writer{f: f, path: path, meta: meta, hdrLen: hdrLen, next: meta.FirstWearer}
	ck, ckErr := readCheckpoint(path, meta)
	switch {
	case ckErr == nil && ck.consistentWith(hdrLen, size):
		w.offset, w.blocks, w.next = ck.Offset, ck.Blocks, ck.NextWearer
		// The checkpoint path never reads the committed frames, so the
		// query-index entries are unknown; Close rebuilds them.
		w.reindex = meta.Version >= FormatV3 && w.blocks > 0
	default:
		// No (or implausible) checkpoint: rebuild one from the longest
		// verifiable block prefix, one block in memory at a time. A v3
		// record block and its series frame commit as one write, so the
		// pair is trusted atomically: a record frame whose series frame is
		// missing or damaged is a torn tail, and both are discarded. A
		// trailing index frame is likewise discarded (readFrameAt refuses
		// non-record kinds) and deterministically rewritten at Close.
		w.offset = hdrLen
		for w.offset < size {
			recs, end, ferr := readFrameAt(f, w.offset, size, meta.Version)
			if ferr != nil || len(recs) == 0 || recs[0].Wearer != w.next {
				break // damaged or non-contiguous: uncommitted tail
			}
			serOff := int64(0)
			if meta.Series() {
				serOff = end
				if end, ferr = readSeriesFrameAt(f, end, size, recs); ferr != nil {
					break // torn pair: discard the record frame too
				}
			}
			if meta.Version >= FormatV3 {
				w.entries = append(w.entries, entryFor(w.offset, serOff, recs))
			}
			w.next += len(recs)
			w.blocks++
			w.offset = end
		}
	}
	if err := w.f.Truncate(w.offset); err != nil {
		return nil, fmt.Errorf("telemetry: truncate to checkpoint: %w", err)
	}
	if _, err := w.f.Seek(w.offset, 0); err != nil {
		return nil, fmt.Errorf("telemetry: resume seek: %w", err)
	}
	return w, w.writeCheckpoint()
}

// Meta returns the store's header metadata.
func (w *Writer) Meta() Meta { return w.meta }

// NextWearer is the next record index the writer expects — equivalently,
// the number of committed-or-buffered records, and after Resume the index
// the interrupted sweep continues from.
func (w *Writer) NextWearer() int { return w.next }

// Blocks reports committed blocks.
func (w *Writer) Blocks() int { return w.blocks }

// Offset reports the committed (checkpointed) data-file length in bytes,
// header included — the store size a kill at this instant preserves.
func (w *Writer) Offset() int64 { return w.offset }

// Consume appends one wearer record; it implements the fleet engine's
// Sink interface. Records must arrive in strict wearer order. The writer
// copies both slice-typed fields — rec.Nodes and rec.Series — into its
// block arenas before returning, so callers may reuse theirs; this is
// what lets MergeShards feed it records that borrow a shard Reader's
// decode buffers.
func (w *Writer) Consume(rec Record) error {
	if w.closed {
		return fmt.Errorf("telemetry: write to closed store %s", w.path)
	}
	if rec.Wearer != w.next {
		return fmt.Errorf("telemetry: out-of-order record: wearer %d, expected %d", rec.Wearer, w.next)
	}
	if _, end := w.meta.Range(); rec.Wearer >= end {
		return fmt.Errorf("telemetry: wearer %d past store range end %d", rec.Wearer, end)
	}
	if rec.Cell >= 0 && w.meta.Version < FormatV1 {
		// Refuse rather than silently drop: the cell column is replayed
		// state, and losing it would break resume fingerprints.
		return fmt.Errorf("telemetry: record carries cell %d but store format v%d has no cell column",
			rec.Cell, w.meta.Version)
	}
	if (rec.EqForeignLoadPPM != 0 || rec.FeedbackIters != 0) && w.meta.Version < FormatV2 {
		// Same refusal for the equilibrium columns: silently dropping
		// them would make a feedback sweep's store replay differently.
		return fmt.Errorf("telemetry: record carries equilibrium data but store format v%d has no feedback columns",
			w.meta.Version)
	}
	if len(rec.Series) > 0 && !w.meta.Series() {
		// Refuse rather than drop, like the cell and equilibrium columns:
		// a caller sampling series into a store with no series frames
		// would silently lose them — and a series-off store must stay
		// byte-identical to a v2 store.
		return fmt.Errorf("telemetry: record carries %d series points but store (format v%d, cadence %g) has no series frames",
			len(rec.Series), w.meta.Version, w.meta.SeriesCadenceSeconds)
	}
	start := len(w.nodes)
	w.nodes = append(w.nodes, rec.Nodes...)
	rec.Nodes = w.nodes[start:len(w.nodes):len(w.nodes)]
	ps := len(w.points)
	w.points = append(w.points, rec.Series...)
	rec.Series = w.points[ps:len(w.points):len(w.points)]
	w.buf = append(w.buf, rec)
	w.next++
	if len(w.buf) >= w.meta.BlockSize {
		return w.commit()
	}
	return nil
}

// commit encodes the buffered records as one block — plus, in a
// series-enabled store, the paired series frame, appended in the same
// write so no committed record block can exist without its series — and
// advances the checkpoint past it.
func (w *Writer) commit() error {
	if len(w.buf) == 0 {
		return nil
	}
	frame := encodeBlock(w.buf, w.meta.Version)
	serOff := int64(0)
	if w.meta.Series() {
		serOff = w.offset + int64(len(frame))
		frame = encodeSeriesFrame(frame, w.buf)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("telemetry: write block: %w", err)
	}
	if w.meta.Version >= FormatV3 {
		w.entries = append(w.entries, entryFor(w.offset, serOff, w.buf))
	}
	w.offset += int64(len(frame))
	w.blocks++
	w.buf = w.buf[:0]
	w.nodes = w.nodes[:0]
	w.points = w.points[:0]
	if err := w.writeCheckpoint(); err != nil {
		return err
	}
	if w.OnCommit != nil {
		w.OnCommit(w.blocks, w.next, w.offset)
	}
	return nil
}

// Flush commits any buffered records as a short block. The fleet engine
// calls it (via Close) when a sweep completes, so only a kill — never a
// clean finish — loses tail records.
func (w *Writer) Flush() error { return w.commit() }

// Close flushes and closes the store. On a v3 store with committed
// blocks it then appends the trailing query-index frame — deliberately
// PAST the final checkpoint and never covered by one, so Resume discards
// and deterministically rewrites it: a kill/resume cycle yields a
// byte-identical file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.commit(); err != nil {
		w.f.Close()
		return err
	}
	if w.meta.Version >= FormatV3 && w.blocks > 0 {
		if w.reindex {
			if err := w.rebuildEntries(); err != nil {
				w.f.Close()
				return err
			}
		}
		if _, err := w.f.Write(encodeIndexFrame(w.entries)); err != nil {
			w.f.Close()
			return fmt.Errorf("telemetry: write index: %w", err)
		}
	}
	w.closed = true
	return w.f.Close()
}

// rebuildEntries reconstructs the query index of a checkpoint-resumed
// writer by walking the committed frames it never saw. The checkpoint
// promised these bytes, so any damage here is a hard error.
func (w *Writer) rebuildEntries() error {
	w.entries = w.entries[:0]
	pos := w.hdrLen
	next := w.meta.FirstWearer
	for pos < w.offset {
		recs, end, err := readFrameAt(w.f, pos, w.offset, w.meta.Version)
		if err != nil {
			return fmt.Errorf("telemetry: reindex: %w", err)
		}
		if len(recs) == 0 || recs[0].Wearer != next {
			return fmt.Errorf("%w: reindex: non-contiguous wearer indices", ErrCorrupt)
		}
		serOff := int64(0)
		if w.meta.Series() {
			serOff = end
			if end, err = readSeriesFrameAt(w.f, end, w.offset, recs); err != nil {
				return fmt.Errorf("telemetry: reindex: %w", err)
			}
		}
		w.entries = append(w.entries, entryFor(pos, serOff, recs))
		next += len(recs)
		pos = end
	}
	return nil
}

// Abort closes the file without flushing buffered records or advancing
// the checkpoint — the in-process equivalent of a kill, used by the
// resume tests and fatal paths that must not mask an earlier error. The
// store and its checkpointed prefix stay on disk so the sweep can
// resume; a writer whose output is worthless without a successful Close
// should call Discard instead.
func (w *Writer) Abort() error {
	w.closed = true
	return w.f.Close()
}

// Discard is Abort plus cleanup: it closes the file and unlinks both the
// store and its checkpoint sidecar. It exists for writers whose partial
// output must never be mistaken for resumable state — above all a merge
// destination, which is derived data: the shard stores it was built from
// remain the durable truth, so a failed merge removes its half-written
// dst rather than stranding a plausible-looking store (and a sidecar
// that describes it) in the data directory.
func (w *Writer) Discard() error {
	w.Abort() // double-close after a failed Close is harmless; removal is the contract
	err := os.Remove(w.path)
	if os.IsNotExist(err) {
		err = nil
	}
	if serr := os.Remove(CheckpointPath(w.path)); err == nil && serr != nil && !os.IsNotExist(serr) {
		err = serr
	}
	return err
}
