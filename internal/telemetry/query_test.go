package telemetry

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// refStats is the brute-force reference: fold every sample of
// seriesRecord(0..n) matching q through the same NaN policy, in the same
// (wearer, sample) order the store's block walk visits — so float sums
// must match QueryStore exactly, not just approximately.
func refStats(n int, q Query, get func(p *SeriesPoint) float64) *SeriesStats {
	stats := &SeriesStats{}
	for w := 0; w < n; w++ {
		rec := seriesRecord(w)
		stats.fold(&q, get, &rec)
	}
	return stats
}

// TestQueryStoreAggregates checks every metric, filter and aggregation
// against the brute-force reference on a multi-block store.
func TestQueryStoreAggregates(t *testing.T) {
	const n, blockSize = 37, 8
	path := writeSeriesStore(t, n, blockSize)
	for _, c := range []struct {
		name string
		q    Query
	}{
		{"all-charge", Query{Metric: "charge", Cell: -1, Node: -1}},
		{"all-queue", Query{Metric: "queue", Cell: -1, Node: -1}},
		{"per-with-gaps", Query{Metric: "per", Cell: -1, Node: -1}},
		{"collisions", Query{Metric: "collisions", Cell: -1, Node: -1}},
		{"time-slice", Query{Metric: "charge", FromMS: 1000, ToMS: 2000, Cell: -1, Node: -1}},
		{"from-only", Query{Metric: "queue", FromMS: 2500, Cell: -1, Node: -1}},
		{"one-cell", Query{Metric: "per", Cell: 3, Node: -1}},
		{"one-node", Query{Metric: "charge", Cell: -1, Node: 2}},
		{"cell-node-time", Query{Metric: "collisions", FromMS: 1500, ToMS: 2500, Cell: 1, Node: 0}},
		{"empty-cell", Query{Metric: "charge", Cell: 999, Node: -1}},
	} {
		q := c.q
		get, err := q.metric()
		if err != nil {
			t.Fatal(err)
		}
		want := refStats(n, q, get)
		got, err := QueryStore(path, q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Points != want.Points || got.Gaps != want.Gaps ||
			got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
			t.Errorf("%s: got {pts=%d gaps=%d sum=%v min=%v max=%v}, want {pts=%d gaps=%d sum=%v min=%v max=%v}",
				c.name, got.Points, got.Gaps, got.Sum, got.Min, got.Max,
				want.Points, want.Gaps, want.Sum, want.Min, want.Max)
		}
		if got.Mean() != want.Mean() {
			t.Errorf("%s: mean %v, want %v", c.name, got.Mean(), want.Mean())
		}
		for _, pct := range []float64{0, 10, 50, 90, 99, 100} {
			if g, w := got.Percentile(pct), want.Percentile(pct); g != w {
				t.Errorf("%s: p%g = %v, want %v", c.name, pct, g, w)
			}
		}
	}
}

// TestQueryStoreGapPolicy pins that NaN rate samples surface as Gaps and
// never poison an aggregate.
func TestQueryStoreGapPolicy(t *testing.T) {
	path := writeSeriesStore(t, 37, 8)
	stats, err := QueryStore(path, Query{Metric: "per", Cell: -1, Node: -1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gaps == 0 {
		t.Fatal("test data carries NaN windows but the query reported none")
	}
	for name, v := range map[string]float64{
		"sum": stats.Sum, "mean": stats.Mean(), "min": stats.Min,
		"max": stats.Max, "p50": stats.Percentile(50),
	} {
		if math.IsNaN(v) {
			t.Errorf("%s poisoned by NaN gap samples", name)
		}
	}
}

// TestQueryIndexMatchesScan runs identical queries through the index
// fast path and — after deleting the sidecar that locates the index —
// the sequential fallback, and demands bit-identical statistics.
func TestQueryIndexMatchesScan(t *testing.T) {
	const n = 37
	path := writeSeriesStore(t, n, 8)
	queries := []Query{
		{Metric: "charge", Cell: -1, Node: -1},
		{Metric: "per", FromMS: 1000, ToMS: 2000, Cell: -1, Node: -1},
		{Metric: "queue", Cell: 2, Node: 1},
	}
	indexed := make([]*SeriesStats, len(queries))
	for i, q := range queries {
		var err error
		if indexed[i], err = QueryStore(path, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(CheckpointPath(path)); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		scanned, err := QueryStore(path, q)
		if err != nil {
			t.Fatal(err)
		}
		ix := indexed[i]
		if scanned.Points != ix.Points || scanned.Gaps != ix.Gaps ||
			scanned.Sum != ix.Sum || scanned.Min != ix.Min || scanned.Max != ix.Max ||
			scanned.Percentile(90) != ix.Percentile(90) {
			t.Errorf("query %d: scan fallback diverged from index path", i)
		}
	}
}

// TestQueryIndexPruning pins the admits predicate on every pruning axis:
// queries whose selection cannot intersect a block must skip it, queries
// that could must not — the index path still matches the reference.
func TestQueryIndexPruning(t *testing.T) {
	const n = 37
	path := writeSeriesStore(t, n, 8)
	for _, c := range []struct {
		name string
		q    Query
	}{
		{"before-all-samples", Query{Metric: "charge", ToMS: 100, Cell: -1, Node: -1}},
		{"after-all-samples", Query{Metric: "charge", FromMS: 1 << 40, Cell: -1, Node: -1}},
		{"node-past-max", Query{Metric: "queue", Cell: -1, Node: 99}},
		{"cell-below-range", Query{Metric: "per", Cell: 0, Node: -1}},
		{"mid-window", Query{Metric: "collisions", FromMS: 1500, ToMS: 1500, Cell: -1, Node: -1}},
	} {
		get, err := c.q.metric()
		if err != nil {
			t.Fatal(err)
		}
		want := refStats(n, c.q, get)
		got, err := QueryStore(path, c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Points != want.Points || got.Gaps != want.Gaps || got.Sum != want.Sum {
			t.Errorf("%s: got {pts=%d gaps=%d sum=%v}, want {pts=%d gaps=%d sum=%v}",
				c.name, got.Points, got.Gaps, got.Sum, want.Points, want.Gaps, want.Sum)
		}
	}
}

// TestWriterMetaAndFlush: Meta echoes the header and an explicit Flush
// commits a short block that survives reopening.
func TestWriterMetaAndFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.wtl")
	meta := seriesMeta(10, 8)
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Meta(); got != meta {
		t.Fatalf("writer meta %+v, want %+v", got, meta)
	}
	for i := 0; i < 3; i++ {
		if err := w.Consume(seriesRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.NextWearer() != 3 || w.Blocks() != 1 {
		t.Fatalf("after flush: next=%d blocks=%d", w.NextWearer(), w.Blocks())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	drained := 0
	for {
		if _, err := r.Next(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		drained++
	}
	if drained != 3 {
		t.Fatalf("flushed store holds %d records, want 3", drained)
	}
}

// TestQueryStoreErrors: unknown metrics and series-off stores fail with
// directed messages instead of empty results.
func TestQueryStoreErrors(t *testing.T) {
	path := writeSeriesStore(t, 10, 8)
	if _, err := QueryStore(path, Query{Metric: "latency", Cell: -1, Node: -1}); err == nil ||
		!strings.Contains(err.Error(), "unknown series metric") {
		t.Errorf("unknown metric: err = %v", err)
	}
	off := writeStore(t, 10, 8) // v3 store, cadence 0
	if _, err := QueryStore(off, Query{Metric: "charge", Cell: -1, Node: -1}); err == nil ||
		!strings.Contains(err.Error(), "no series") {
		t.Errorf("series-off store: err = %v", err)
	}
}

// TestQueryHeaderOnlyStore: a series-enabled store with zero committed
// blocks queries cleanly to an empty result.
func TestQueryHeaderOnlyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.wtl")
	w, err := Create(path, seriesMeta(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := QueryStore(path, Query{Metric: "charge", Cell: -1, Node: -1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != 0 || stats.Gaps != 0 || stats.Sum != 0 ||
		stats.Mean() != 0 || stats.Percentile(50) != 0 {
		t.Fatalf("header-only store produced non-empty stats: %+v", stats)
	}
}

// TestSeriesStatsPercentileRank pins Percentile's documented rank
// convention — floor(n·pct/100), clamped to [0, n-1] — at the exact
// boundaries where the float rank computation is easiest to get wrong:
// pct=100 computes rank n and must clamp down to the max sample, even
// on the n=1 store where rank 1 of a single value exists only after the
// clamp.
func TestSeriesStatsPercentileRank(t *testing.T) {
	mk := func(vals ...float64) *SeriesStats {
		s := &SeriesStats{}
		for _, v := range vals {
			s.add(v)
		}
		return s
	}
	one := mk(7.5)
	for _, pct := range []float64{0, 50, 99.999, 100} {
		if got := one.Percentile(pct); got != 7.5 {
			t.Errorf("n=1 p%v = %v, want 7.5", pct, got)
		}
	}
	four := mk(40, 10, 30, 20) // unsorted on purpose: Percentile sorts once
	for _, c := range []struct{ pct, want float64 }{
		{0, 10},   // rank 0: the minimum
		{24, 10},  // floor(4·24/100) = 0 — still the minimum
		{25, 20},  // the rank lands exactly on 1
		{50, 30},  // upper median, rank 2 — floor convention, no interpolation
		{75, 40},  // rank 3: p75 of four samples is already the max
		{100, 40}, // rank 4, clamped to 3
	} {
		if got := four.Percentile(c.pct); got != c.want {
			t.Errorf("n=4 p%v = %v, want %v", c.pct, got, c.want)
		}
	}
	var empty SeriesStats
	if got := empty.Percentile(100); got != 0 {
		t.Errorf("empty stats p100 = %v, want 0", got)
	}
}
