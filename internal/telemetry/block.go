package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"wiban/internal/compress"
)

const (
	fileMagic  = "WBTL1\x00"
	blockMagic = "WBLK"
	// maxBlockPayload rejects absurd frame lengths before allocating;
	// a full 4096-record block of 16-node wearers encodes well under it.
	maxBlockPayload = 64 << 20
)

// appendFrame wraps payload in the block framing: magic, length, payload,
// CRC32 of the payload.
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, blockMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// encodeBlock encodes recs (consecutive wearers) into a framed block laid
// out per the given format version.
func encodeBlock(recs []Record, version int) []byte {
	n := len(recs)
	total := 0
	for i := range recs {
		total += len(recs[i].Nodes)
	}

	// Gather columns. The per-record integer columns ride in one scratch
	// slice reused per column; node columns are flattened across the
	// block in record order.
	ints := make([]int64, 0, total)
	floats := make([]float64, 0, total)
	bools := make([]bool, 0, total)

	var payload []byte
	if version >= FormatV3 {
		// v3 payloads lead with the frame kind; the record body that
		// follows is byte-identical to the v2 layout.
		payload = compress.AppendUvarint(payload, kindRecords)
	}
	payload = compress.AppendUvarint(payload, uint64(recs[0].Wearer))
	payload = compress.AppendUvarint(payload, uint64(n))
	payload = compress.AppendUvarint(payload, uint64(total))

	perRecord := []func(r *Record) int64{
		func(r *Record) int64 { return int64(len(r.Nodes)) },
		func(r *Record) int64 { return int64(r.Events) },
		func(r *Record) int64 { return r.HubRxBits },
	}
	for _, get := range perRecord {
		ints = ints[:0]
		for i := range recs {
			ints = append(ints, get(&recs[i]))
		}
		payload = compress.AppendDeltaInts(payload, ints)
	}
	floats = floats[:0]
	for i := range recs {
		floats = append(floats, recs[i].HubUtilization)
	}
	payload = compress.AppendXorFloats(payload, floats)
	if version >= FormatV1 {
		for _, get := range []func(r *Record) int64{
			func(r *Record) int64 { return int64(r.Cell) },
			func(r *Record) int64 { return r.ForeignLoadPPM },
		} {
			ints = ints[:0]
			for i := range recs {
				ints = append(ints, get(&recs[i]))
			}
			payload = compress.AppendDeltaInts(payload, ints)
		}
	}
	if version >= FormatV2 {
		for _, get := range []func(r *Record) int64{
			func(r *Record) int64 { return r.EqForeignLoadPPM },
			func(r *Record) int64 { return int64(r.FeedbackIters) },
		} {
			ints = ints[:0]
			for i := range recs {
				ints = append(ints, get(&recs[i]))
			}
			payload = compress.AppendDeltaInts(payload, ints)
		}
	}

	perNode := []func(nr *NodeRecord) int64{
		func(nr *NodeRecord) int64 { return nr.PacketsGenerated },
		func(nr *NodeRecord) int64 { return nr.PacketsDelivered },
		func(nr *NodeRecord) int64 { return nr.PacketsDropped },
		func(nr *NodeRecord) int64 { return nr.Transmissions },
		func(nr *NodeRecord) int64 { return nr.BitsDelivered },
	}
	for _, get := range perNode {
		ints = ints[:0]
		for i := range recs {
			for j := range recs[i].Nodes {
				ints = append(ints, get(&recs[i].Nodes[j]))
			}
		}
		payload = compress.AppendDeltaInts(payload, ints)
	}
	perNodeF := []func(nr *NodeRecord) float64{
		func(nr *NodeRecord) float64 { return nr.ProjectedLife },
		func(nr *NodeRecord) float64 { return nr.LatencyP50 },
		func(nr *NodeRecord) float64 { return nr.LatencyP99 },
	}
	for _, get := range perNodeF {
		floats = floats[:0]
		for i := range recs {
			for j := range recs[i].Nodes {
				floats = append(floats, get(&recs[i].Nodes[j]))
			}
		}
		payload = compress.AppendXorFloats(payload, floats)
	}
	perNodeB := []func(nr *NodeRecord) bool{
		func(nr *NodeRecord) bool { return nr.Perpetual },
		func(nr *NodeRecord) bool { return nr.Died },
	}
	for _, get := range perNodeB {
		bools = bools[:0]
		for i := range recs {
			for j := range recs[i].Nodes {
				bools = append(bools, get(&recs[i].Nodes[j]))
			}
		}
		payload = compress.PackBools(payload, bools)
	}

	return appendFrame(nil, payload)
}

// decodeBlock inverts encodeBlock on a verified payload, under the
// column layout of the given format version.
func decodeBlock(payload []byte, version int) ([]Record, error) {
	pos := 0
	header := make([]uint64, 3)
	for i := range header {
		v, n := compress.DecodeUvarint(payload[pos:])
		if n == 0 {
			return nil, fmt.Errorf("%w: block header", ErrCorrupt)
		}
		header[i] = v
		pos += n
	}
	first, count, total := int(header[0]), int(header[1]), int(header[2])
	if count <= 0 || count > maxBlockPayload || total < 0 || total > maxBlockPayload {
		return nil, fmt.Errorf("%w: implausible block header (%d records, %d nodes)", ErrCorrupt, count, total)
	}
	// Every element costs at least one encoded byte (4 per-record columns,
	// 8 per-node varint columns; the bit-packed flags are gravy), so a
	// header whose counts could not fit the payload is forged — reject it
	// before allocating count/total-sized columns.
	if 4*count+8*total > len(payload) {
		return nil, fmt.Errorf("%w: block header claims %d records, %d nodes in %d payload bytes",
			ErrCorrupt, count, total, len(payload))
	}

	intCol := func(n int) ([]int64, error) {
		col := make([]int64, n)
		used, err := compress.DecodeDeltaInts(payload[pos:], col)
		pos += used
		return col, err
	}
	floatCol := func(n int) ([]float64, error) {
		col := make([]float64, n)
		used, err := compress.DecodeXorFloats(payload[pos:], col)
		pos += used
		return col, err
	}
	boolCol := func(n int) ([]bool, error) {
		need := compress.PackedBoolLen(n)
		if pos+need > len(payload) {
			return nil, fmt.Errorf("%w: truncated flag column", ErrCorrupt)
		}
		col := make([]bool, n)
		err := compress.UnpackBools(payload[pos:pos+need], col)
		pos += need
		return col, err
	}

	nodeCounts, err := intCol(count)
	if err != nil {
		return nil, err
	}
	sum := 0
	for _, c := range nodeCounts {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative node count", ErrCorrupt)
		}
		sum += int(c)
	}
	if sum != total {
		return nil, fmt.Errorf("%w: node counts sum %d, header says %d", ErrCorrupt, sum, total)
	}
	events, err := intCol(count)
	if err != nil {
		return nil, err
	}
	hubRx, err := intCol(count)
	if err != nil {
		return nil, err
	}
	hubUtil, err := floatCol(count)
	if err != nil {
		return nil, err
	}
	var cells, foreign []int64
	if version >= FormatV1 {
		if cells, err = intCol(count); err != nil {
			return nil, err
		}
		if foreign, err = intCol(count); err != nil {
			return nil, err
		}
	}
	var eqForeign, feedbackIters []int64
	if version >= FormatV2 {
		if eqForeign, err = intCol(count); err != nil {
			return nil, err
		}
		if feedbackIters, err = intCol(count); err != nil {
			return nil, err
		}
	}
	var nodeInts [5][]int64
	for i := range nodeInts {
		if nodeInts[i], err = intCol(total); err != nil {
			return nil, err
		}
	}
	var nodeFloats [3][]float64
	for i := range nodeFloats {
		if nodeFloats[i], err = floatCol(total); err != nil {
			return nil, err
		}
	}
	var nodeBools [2][]bool
	for i := range nodeBools {
		if nodeBools[i], err = boolCol(total); err != nil {
			return nil, err
		}
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-pos)
	}

	recs := make([]Record, count)
	nodes := make([]NodeRecord, total)
	off := 0
	for i := range recs {
		nc := int(nodeCounts[i])
		recs[i] = Record{
			Wearer:         first + i,
			Events:         uint64(events[i]),
			HubRxBits:      hubRx[i],
			HubUtilization: hubUtil[i],
			Cell:           -1, // v0 stores predate spectrum coupling
			Nodes:          nodes[off : off+nc : off+nc],
		}
		if version >= FormatV1 {
			recs[i].Cell = int(cells[i])
			recs[i].ForeignLoadPPM = foreign[i]
		}
		if version >= FormatV2 {
			recs[i].EqForeignLoadPPM = eqForeign[i]
			recs[i].FeedbackIters = int(feedbackIters[i])
		}
		for j := 0; j < nc; j++ {
			nodes[off+j] = NodeRecord{
				PacketsGenerated: nodeInts[0][off+j],
				PacketsDelivered: nodeInts[1][off+j],
				PacketsDropped:   nodeInts[2][off+j],
				Transmissions:    nodeInts[3][off+j],
				BitsDelivered:    nodeInts[4][off+j],
				ProjectedLife:    nodeFloats[0][off+j],
				LatencyP50:       nodeFloats[1][off+j],
				LatencyP99:       nodeFloats[2][off+j],
				Perpetual:        nodeBools[0][off+j],
				Died:             nodeBools[1][off+j],
			}
		}
		off += nc
	}
	return recs, nil
}

// decodeHeader parses and verifies a file header held in data, returning
// the meta and header length.
func decodeHeader(data []byte) (Meta, int, error) {
	var meta Meta
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return meta, 0, fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	pos := len(fileMagic)
	mlen, n := compress.DecodeUvarint(data[pos:])
	if n == 0 || mlen > maxBlockPayload {
		return meta, 0, fmt.Errorf("%w: bad meta length", ErrCorrupt)
	}
	pos += n
	if int64(len(data)) < int64(pos)+int64(mlen)+4 {
		return meta, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	blob := data[pos : pos+int(mlen)]
	pos += int(mlen)
	if crc32.ChecksumIEEE(blob) != binary.LittleEndian.Uint32(data[pos:]) {
		return meta, 0, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	pos += 4
	if err := json.Unmarshal(blob, &meta); err != nil {
		return meta, 0, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	return meta, pos, nil
}

// readHeaderFile reads and verifies the header at the start of f without
// loading the rest of the store.
func readHeaderFile(f *os.File) (Meta, int64, error) {
	pre := make([]byte, len(fileMagic)+10)
	n, err := f.ReadAt(pre, 0)
	if err != nil && err != io.EOF {
		return Meta{}, 0, fmt.Errorf("telemetry: read header: %w", err)
	}
	pre = pre[:n]
	if len(pre) < len(fileMagic) || string(pre[:len(fileMagic)]) != fileMagic {
		return Meta{}, 0, fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	mlen, un := compress.DecodeUvarint(pre[len(fileMagic):])
	if un == 0 || mlen > maxBlockPayload {
		return Meta{}, 0, fmt.Errorf("%w: bad meta length", ErrCorrupt)
	}
	hdrLen := len(fileMagic) + un + int(mlen) + 4
	buf := make([]byte, hdrLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(hdrLen)), buf); err != nil {
		return Meta{}, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	meta, got, err := decodeHeader(buf)
	if err != nil {
		return Meta{}, 0, err
	}
	return meta, int64(got), nil
}

// readFramePayload reads and CRC-verifies one frame at pos, never past
// limit, returning the raw payload (kind prefix included in v3 stores)
// and the offset just past the frame. One frame is the unit of reader
// memory: nothing larger is ever resident.
func readFramePayload(f *os.File, pos, limit int64) ([]byte, int64, error) {
	var hdr [8]byte
	if pos+int64(len(hdr)) > limit {
		return nil, 0, fmt.Errorf("%w: truncated frame", ErrCorrupt)
	}
	if _, err := f.ReadAt(hdr[:], pos); err != nil {
		return nil, 0, fmt.Errorf("%w: frame header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(blockMagic)]) != blockMagic {
		return nil, 0, fmt.Errorf("%w: bad block magic", ErrCorrupt)
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[len(blockMagic):]))
	if plen > maxBlockPayload || pos+int64(len(hdr))+plen+4 > limit {
		return nil, 0, fmt.Errorf("%w: truncated block payload", ErrCorrupt)
	}
	buf := make([]byte, plen+4)
	if _, err := f.ReadAt(buf, pos+int64(len(hdr))); err != nil {
		return nil, 0, fmt.Errorf("%w: block payload: %v", ErrCorrupt, err)
	}
	payload := buf[:plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[plen:]) {
		return nil, 0, fmt.Errorf("%w: block CRC mismatch", ErrCorrupt)
	}
	return payload, pos + int64(len(hdr)) + plen + 4, nil
}

// splitKind strips the frame-kind selector from a verified payload. Pre-v3
// formats have no selector: every frame is a record block.
func splitKind(payload []byte, version int) (int, []byte, error) {
	if version < FormatV3 {
		return kindRecords, payload, nil
	}
	kind, n := compress.DecodeUvarint(payload)
	if n == 0 || kind > kindIndex {
		return 0, nil, fmt.Errorf("%w: bad frame kind", ErrCorrupt)
	}
	return int(kind), payload[n:], nil
}

// readFrameAt reads, verifies and decodes one record block at pos, never
// past limit, returning the decoded records and the offset just past the
// frame. In a v3 store the frame must actually be a record block.
func readFrameAt(f *os.File, pos, limit int64, version int) ([]Record, int64, error) {
	payload, end, err := readFramePayload(f, pos, limit)
	if err != nil {
		return nil, 0, err
	}
	kind, body, err := splitKind(payload, version)
	if err != nil {
		return nil, 0, err
	}
	if kind != kindRecords {
		return nil, 0, fmt.Errorf("%w: frame kind %d where a record block was expected", ErrCorrupt, kind)
	}
	recs, err := decodeBlock(body, version)
	if err != nil {
		return nil, 0, err
	}
	return recs, end, nil
}
