// Package sensors models the leaf-node sensor front-ends of the IoB
// architecture — what the paper calls the distributed "sensors and
// actuators" that should run at tens of microwatts — and generates
// synthetic versions of their signals for the compression and in-sensor-
// analytics pipelines.
//
// Each sensor class carries a sample-format-derived raw data rate and an
// analog-front-end (AFE + ADC) power drawn from the survey the paper's
// Fig. 3 cites (Datta et al., BioCAS 2023): biopotential AFEs in the
// single-digit µW to tens of µW, IMUs at tens of µW, PPG dominated by LED
// drive, microphones at hundreds of µW, and image sensors in the tens of
// milliwatts.
package sensors

import (
	"fmt"

	"wiban/internal/units"
)

// Class is a sensor family with a characteristic power/rate envelope.
type Class int

// Sensor classes, ordered roughly by data rate.
const (
	Temperature Class = iota
	Biopotential
	IMU
	PPG
	Audio
	Video
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Temperature:
		return "temperature"
	case Biopotential:
		return "biopotential"
	case IMU:
		return "IMU"
	case PPG:
		return "PPG"
	case Audio:
		return "audio"
	case Video:
		return "video"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Sensor is a concrete sensor configuration on a leaf node.
type Sensor struct {
	// Name identifies the configuration ("ECG patch", "QVGA camera").
	Name string
	// Class is the sensor family.
	Class Class
	// SampleRate is samples per second per channel (frames per second for
	// video).
	SampleRate units.Frequency
	// BitsPerSample is the ADC resolution (bits per pixel for video).
	BitsPerSample int
	// Channels is the channel count (electrodes, axes; pixels per frame
	// for video).
	Channels int
	// AFEPower is the sensing power: analog front-end, bias, ADC and any
	// LED/illumination — everything the node must spend before a single
	// bit is communicated.
	AFEPower units.Power
}

// DataRate returns the raw (uncompressed) output rate.
func (s *Sensor) DataRate() units.DataRate {
	return units.DataRate(float64(s.SampleRate) * float64(s.BitsPerSample) * float64(s.Channels))
}

// BitsPerSecondPerChannel returns the per-channel rate.
func (s *Sensor) BitsPerSecondPerChannel() units.DataRate {
	return units.DataRate(float64(s.SampleRate) * float64(s.BitsPerSample))
}

// EnergyPerSample returns the AFE energy per acquired sample across all
// channels.
func (s *Sensor) EnergyPerSample() units.Energy {
	if s.SampleRate <= 0 {
		return 0
	}
	return units.Energy(float64(s.AFEPower) / float64(s.SampleRate))
}

// String summarizes the sensor.
func (s *Sensor) String() string {
	return fmt.Sprintf("%s (%s, %v, %v)", s.Name, s.Class, s.DataRate(), s.AFEPower)
}

// --- Catalog --------------------------------------------------------------

// TempSensor returns a skin-temperature sensor: 1 Hz × 16 bit.
func TempSensor() *Sensor {
	return &Sensor{
		Name: "skin temperature", Class: Temperature,
		SampleRate: 1 * units.Hertz, BitsPerSample: 16, Channels: 1,
		AFEPower: 0.5 * units.Microwatt,
	}
}

// ECGPatch returns a single-lead chest ECG patch: 250 Hz × 12 bit,
// a ~10 µW-class research AFE.
func ECGPatch() *Sensor {
	return &Sensor{
		Name: "ECG patch", Class: Biopotential,
		SampleRate: 250 * units.Hertz, BitsPerSample: 12, Channels: 1,
		AFEPower: 10 * units.Microwatt,
	}
}

// EMGBand returns a limb EMG band: 1 kHz × 12 bit.
func EMGBand() *Sensor {
	return &Sensor{
		Name: "EMG band", Class: Biopotential,
		SampleRate: 1 * units.Kilohertz, BitsPerSample: 12, Channels: 1,
		AFEPower: 25 * units.Microwatt,
	}
}

// EEGHeadband returns an 8-channel EEG headband: 250 Hz × 16 bit × 8.
func EEGHeadband() *Sensor {
	return &Sensor{
		Name: "EEG headband", Class: Biopotential,
		SampleRate: 250 * units.Hertz, BitsPerSample: 16, Channels: 8,
		AFEPower: 80 * units.Microwatt,
	}
}

// IMU6Axis returns a 6-axis inertial unit at 100 Hz × 16 bit.
func IMU6Axis() *Sensor {
	return &Sensor{
		Name: "6-axis IMU", Class: IMU,
		SampleRate: 100 * units.Hertz, BitsPerSample: 16, Channels: 6,
		AFEPower: 30 * units.Microwatt,
	}
}

// PPGRing returns a ring photoplethysmograph: LED drive dominates.
func PPGRing() *Sensor {
	return &Sensor{
		Name: "PPG ring", Class: PPG,
		SampleRate: 100 * units.Hertz, BitsPerSample: 16, Channels: 2,
		AFEPower: 250 * units.Microwatt,
	}
}

// MicMono returns a 16 kHz × 16 bit voice microphone (the audio-input AI
// wearable class: pins, pendants, pocket assistants).
func MicMono() *Sensor {
	return &Sensor{
		Name: "voice microphone", Class: Audio,
		SampleRate: 16 * units.Kilohertz, BitsPerSample: 16, Channels: 1,
		AFEPower: 600 * units.Microwatt,
	}
}

// CameraQVGA returns a 320×240 × 8-bit grayscale camera at 15 fps —
// the first-person-view video node class. Channels carries the pixel
// count so DataRate() reports the raw pixel rate.
func CameraQVGA() *Sensor {
	return &Sensor{
		Name: "QVGA camera", Class: Video,
		SampleRate: 15 * units.Hertz, BitsPerSample: 8, Channels: 320 * 240,
		AFEPower: 35 * units.Milliwatt,
	}
}

// Camera720p returns a 1280×720 × 8-bit camera at 30 fps (AR-glasses
// class).
func Camera720p() *Sensor {
	return &Sensor{
		Name: "720p camera", Class: Video,
		SampleRate: 30 * units.Hertz, BitsPerSample: 8, Channels: 1280 * 720,
		AFEPower: 140 * units.Milliwatt,
	}
}

// Catalog returns every modeled sensor, ordered by raw data rate.
func Catalog() []*Sensor {
	return []*Sensor{
		TempSensor(), ECGPatch(), PPGRing(), IMU6Axis(), EMGBand(),
		EEGHeadband(), MicMono(), CameraQVGA(), Camera720p(),
	}
}
