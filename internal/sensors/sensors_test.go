package sensors

import (
	"math"
	"testing"

	"wiban/internal/units"
)

func TestDataRates(t *testing.T) {
	tests := []struct {
		s    *Sensor
		want units.DataRate
	}{
		{TempSensor(), 16 * units.BitPerSecond},
		{ECGPatch(), 3 * units.Kbps},
		{EMGBand(), 12 * units.Kbps},
		{EEGHeadband(), 32 * units.Kbps},
		{IMU6Axis(), 9.6 * units.Kbps},
		{MicMono(), 256 * units.Kbps},
		{CameraQVGA(), units.DataRate(320 * 240 * 8 * 15)},
		{Camera720p(), units.DataRate(1280 * 720 * 8 * 30)},
	}
	for _, tt := range tests {
		if got := tt.s.DataRate(); math.Abs(float64(got)-float64(tt.want)) > 1e-9 {
			t.Errorf("%s: rate = %v, want %v", tt.s.Name, got, tt.want)
		}
	}
}

func TestCatalogSortedByRate(t *testing.T) {
	cat := Catalog()
	for i := 1; i < len(cat); i++ {
		if cat[i].DataRate() < cat[i-1].DataRate() {
			t.Errorf("catalog not rate-ordered at %s", cat[i].Name)
		}
	}
}

func TestAFEPowerBands(t *testing.T) {
	// The paper's Fig. 1: human-inspired IoB sensors are 10–50 µW class
	// (biopotential, IMU); video is the exception that motivates hub
	// offload. Check class envelopes.
	for _, s := range Catalog() {
		switch s.Class {
		case Biopotential, IMU:
			if s.AFEPower > 100*units.Microwatt {
				t.Errorf("%s: %v exceeds the µW-class band", s.Name, s.AFEPower)
			}
		case Video:
			if s.AFEPower < 10*units.Milliwatt {
				t.Errorf("%s: video sensing should be mW class, got %v", s.Name, s.AFEPower)
			}
		}
	}
}

func TestEnergyPerSample(t *testing.T) {
	ecg := ECGPatch()
	want := float64(ecg.AFEPower) / 250
	if got := float64(ecg.EnergyPerSample()); math.Abs(got-want) > 1e-15 {
		t.Errorf("energy/sample = %g, want %g", got, want)
	}
	var zero Sensor
	if zero.EnergyPerSample() != 0 {
		t.Error("zero sample-rate sensor should report 0 energy/sample")
	}
}

func TestClassString(t *testing.T) {
	if Biopotential.String() != "biopotential" || Video.String() != "video" {
		t.Error("class names wrong")
	}
	if Class(42).String() != "Class(42)" {
		t.Error("unknown class string wrong")
	}
	if ECGPatch().String() == "" {
		t.Error("sensor String empty")
	}
}

func TestECGSynthMorphology(t *testing.T) {
	fs := 250 * units.Hertz
	g := NewECGSynth(fs, 60, 1)
	sig := g.Samples(int(250 * 10)) // 10 s at 60 bpm → ~10 beats

	// Count R-peaks with a simple threshold on the known 1.2 mV R bump.
	peaks := 0
	for i := 1; i < len(sig)-1; i++ {
		if sig[i] > 0.7 && sig[i] >= sig[i-1] && sig[i] > sig[i+1] {
			peaks++
		}
	}
	if peaks < 8 || peaks > 13 {
		t.Errorf("found %d R-peaks in 10 s at 60 bpm, want ≈ 10", peaks)
	}
	// Signal must be bounded sanely (mV scale).
	for _, v := range sig {
		if math.Abs(v) > 3 {
			t.Fatalf("ECG sample %v mV out of range", v)
		}
	}
}

func TestECGSynthDeterministic(t *testing.T) {
	a := NewECGSynth(250*units.Hertz, 72, 5).Samples(500)
	b := NewECGSynth(250*units.Hertz, 72, 5).Samples(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := NewECGSynth(250*units.Hertz, 72, 6).Samples(500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestEMGSynthBurstContrast(t *testing.T) {
	g := NewEMGSynth(1*units.Kilohertz, 2)
	var restE, burstE float64
	var restN, burstN int
	for i := 0; i < 20000; i++ {
		v := g.Next()
		if g.Active() {
			burstE += v * v
			burstN++
		} else {
			restE += v * v
			restN++
		}
	}
	if restN == 0 || burstN == 0 {
		t.Fatal("generator never switched state")
	}
	restRMS := math.Sqrt(restE / float64(restN))
	burstRMS := math.Sqrt(burstE / float64(burstN))
	if burstRMS < 5*restRMS {
		t.Errorf("burst RMS %.4f vs rest RMS %.4f: want ≥ 5× contrast", burstRMS, restRMS)
	}
}

func TestIMUWalkPeriodicity(t *testing.T) {
	fs := 100 * units.Hertz
	g := NewIMUWalkSynth(fs, 3)
	n := 1000
	zs := make([]float64, n)
	for i := range zs {
		_, _, zs[i] = g.Next()
	}
	// Autocorrelation at one step period should be strongly positive.
	lag := int(float64(fs) / g.StepHz)
	var num, den float64
	for i := 0; i+lag < n; i++ {
		num += zs[i] * zs[i+lag]
		den += zs[i] * zs[i]
	}
	if num/den < 0.5 {
		t.Errorf("gait autocorrelation at step lag = %.2f, want > 0.5", num/den)
	}
}

func TestAudioSynthVoicedContrast(t *testing.T) {
	g := NewAudioSynth(16*units.Kilohertz, 4)
	var vE, sE float64
	var vN, sN int
	for i := 0; i < 16000*4; i++ {
		x := g.Next()
		if x < -1 || x > 1 {
			t.Fatalf("audio sample %v out of [-1,1]", x)
		}
		if g.Voiced() {
			vE += x * x
			vN++
		} else {
			sE += x * x
			sN++
		}
	}
	if vN == 0 || sN == 0 {
		t.Fatal("audio generator never alternated")
	}
	if math.Sqrt(vE/float64(vN)) < 3*math.Sqrt(sE/float64(sN)) {
		t.Error("voiced/silence RMS contrast too low for VAD testing")
	}
}

func TestVideoSynthCoherence(t *testing.T) {
	g := NewVideoSynth(64, 48, 9)
	a := g.NextFrame()
	b := g.NextFrame()
	if len(a) != 64*48 || len(b) != len(a) {
		t.Fatalf("frame size %d, want %d", len(a), 64*48)
	}
	// Consecutive frames should be mostly identical (temporal coherence):
	// fewer than 30% of pixels change by more than the noise floor.
	changed := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < -12 || d > 12 {
			changed++
		}
	}
	if frac := float64(changed) / float64(len(a)); frac > 0.3 {
		t.Errorf("%.0f%% of pixels changed between frames, want < 30%%", frac*100)
	}
	if g.Frame() != 2 {
		t.Errorf("frame counter = %d, want 2", g.Frame())
	}
}

func TestVideoSynthObjectMoves(t *testing.T) {
	g := NewVideoSynth(64, 48, 9)
	first := g.NextFrame()
	var last []byte
	for i := 0; i < 20; i++ {
		last = g.NextFrame()
	}
	diff := 0
	for i := range first {
		d := int(first[i]) - int(last[i])
		if d < -30 || d > 30 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("object never moved across 20 frames")
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	in := []float64{0, 0.5, -0.5, 0.999, -0.999}
	codes := Quantize(in, 1.0)
	out := Dequantize(codes, 1.0)
	for i := range in {
		if math.Abs(in[i]-out[i]) > 1.0/32767*1.01 {
			t.Errorf("round trip error at %d: %v -> %v", i, in[i], out[i])
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	codes := Quantize([]float64{10, -10}, 1.0)
	if codes[0] != 32767 || codes[1] != -32768 {
		t.Errorf("saturation: got %v", codes)
	}
	if got := Quantize([]float64{1, 2}, 0); got[0] != 0 || got[1] != 0 {
		t.Error("zero full-scale should produce zeros")
	}
}
