package sensors

import (
	"math"
	"math/rand"

	"wiban/internal/units"
)

// Synthetic signal generators. The compression codecs and in-sensor
// analytics need realistically structured inputs (quasi-periodic ECG,
// bursty EMG, voiced/unvoiced audio, temporally coherent video) — white
// noise would make every compression-ratio and detector benchmark
// meaningless. Each generator is deterministic for a given seed.

// ECGSynth generates a single-lead ECG as a sum of Gaussian bumps per beat
// (a light-weight ECGSYN-style PQRST model) with baseline wander and
// additive noise. Amplitudes are in millivolts.
type ECGSynth struct {
	SampleRate units.Frequency
	HeartRate  float64 // beats per minute
	NoiseMV    float64 // additive Gaussian noise sigma (mV)
	WanderMV   float64 // baseline wander amplitude (mV)
	rng        *rand.Rand
	phase      float64 // beat phase [0,1)
	wanderPh   float64
	jitter     float64 // current beat-length multiplier
}

// NewECGSynth returns a generator at fs with the given heart rate.
func NewECGSynth(fs units.Frequency, bpm float64, seed int64) *ECGSynth {
	return &ECGSynth{
		SampleRate: fs,
		HeartRate:  bpm,
		NoiseMV:    0.01, // ≈10 µV RMS electrode/amplifier noise
		WanderMV:   0.1,
		rng:        rand.New(rand.NewSource(seed)),
		jitter:     1,
	}
}

// pqrst describes the five Gaussian components of one beat: center (beat
// phase), width (phase), amplitude (mV). Values follow the standard ECGSYN
// morphology.
var pqrst = [5]struct{ c, w, a float64 }{
	{0.15, 0.025, 0.12},   // P
	{0.245, 0.010, -0.1},  // Q
	{0.265, 0.012, 1.2},   // R
	{0.285, 0.010, -0.25}, // S
	{0.45, 0.045, 0.35},   // T
}

// Next returns the next sample in millivolts.
func (g *ECGSynth) Next() float64 {
	v := 0.0
	for _, k := range pqrst {
		d := g.phase - k.c
		v += k.a * math.Exp(-d*d/(2*k.w*k.w))
	}
	v += g.WanderMV * math.Sin(2*math.Pi*g.wanderPh)
	v += g.NoiseMV * g.rng.NormFloat64()

	beatLen := 60 / g.HeartRate * g.jitter // seconds per beat
	dt := 1 / float64(g.SampleRate)
	g.phase += dt / beatLen
	if g.phase >= 1 {
		g.phase -= 1
		// 4% RR-interval jitter per beat (heart-rate variability).
		g.jitter = 1 + 0.04*g.rng.NormFloat64()
		if g.jitter < 0.7 {
			g.jitter = 0.7
		}
	}
	g.wanderPh += dt * 0.25 // 0.25 Hz respiration wander
	if g.wanderPh >= 1 {
		g.wanderPh -= 1
	}
	return v
}

// Samples returns the next n samples.
func (g *ECGSynth) Samples(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// EMGSynth generates surface EMG: bandlimited noise gated by an activation
// envelope that switches between rest and contraction bursts.
type EMGSynth struct {
	SampleRate units.Frequency
	rng        *rand.Rand
	active     bool
	remain     int     // samples left in current state
	lp         float64 // one-pole high-frequency shaping state
	env        float64 // smoothed activation envelope
}

// NewEMGSynth returns a generator at fs.
func NewEMGSynth(fs units.Frequency, seed int64) *EMGSynth {
	return &EMGSynth{SampleRate: fs, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next sample in millivolts.
func (g *EMGSynth) Next() float64 {
	if g.remain <= 0 {
		g.active = !g.active
		mean := 0.6 // seconds of contraction
		if !g.active {
			mean = 1.5 // seconds of rest
		}
		d := mean * (0.5 + g.rng.Float64())
		g.remain = int(d * float64(g.SampleRate))
		if g.remain < 1 {
			g.remain = 1
		}
	}
	g.remain--
	target := 0.02 // resting tone, mV RMS
	if g.active {
		target = 0.8
	}
	// Smooth the envelope (~30 ms attack/release).
	alpha := 1 / (0.03 * float64(g.SampleRate))
	g.env += alpha * (target - g.env)
	// Shape white noise toward the 50–150 Hz EMG band with a simple
	// differenced one-pole filter.
	w := g.rng.NormFloat64()
	g.lp += 0.25 * (w - g.lp)
	return g.env * (w - g.lp)
}

// Samples returns the next n samples.
func (g *EMGSynth) Samples(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Active reports whether the generator is currently in a contraction burst
// (ground truth for detector tests).
func (g *EMGSynth) Active() bool { return g.active }

// IMUWalkSynth generates a 3-axis accelerometer trace of walking: a gait
// fundamental with harmonics on the vertical axis, sway on the lateral
// axes, plus noise. Units are m/s² around gravity-removed zero.
type IMUWalkSynth struct {
	SampleRate units.Frequency
	StepHz     float64
	rng        *rand.Rand
	t          float64
}

// NewIMUWalkSynth returns a generator at fs with ~1.8 Hz steps.
func NewIMUWalkSynth(fs units.Frequency, seed int64) *IMUWalkSynth {
	return &IMUWalkSynth{SampleRate: fs, StepHz: 1.8, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next (x, y, z) sample.
func (g *IMUWalkSynth) Next() (x, y, z float64) {
	w := 2 * math.Pi * g.StepHz * g.t
	z = 3.0*math.Sin(w) + 1.2*math.Sin(2*w+0.7) + 0.4*math.Sin(3*w+1.9)
	x = 0.8 * math.Sin(w/2+0.3) // lateral sway at half step rate
	y = 0.5 * math.Sin(w+1.1)
	x += 0.15 * g.rng.NormFloat64()
	y += 0.15 * g.rng.NormFloat64()
	z += 0.25 * g.rng.NormFloat64()
	g.t += 1 / float64(g.SampleRate)
	return
}

// AudioSynth generates speech-like audio: voiced segments (harmonic pulse
// train shaped by slowly moving formant-ish filters) alternating with
// pauses — enough structure for VAD and ADPCM benchmarks. Output in [-1,1].
type AudioSynth struct {
	SampleRate units.Frequency
	rng        *rand.Rand
	voiced     bool
	remain     int
	pitchHz    float64
	phase      float64
	lp1, lp2   float64
	env        float64
}

// NewAudioSynth returns a generator at fs.
func NewAudioSynth(fs units.Frequency, seed int64) *AudioSynth {
	return &AudioSynth{SampleRate: fs, rng: rand.New(rand.NewSource(seed)), pitchHz: 120}
}

// Next returns the next sample.
func (g *AudioSynth) Next() float64 {
	if g.remain <= 0 {
		g.voiced = !g.voiced
		mean := 0.4 // seconds of speech burst
		if !g.voiced {
			mean = 0.3 // pause
		}
		g.remain = int(mean * (0.5 + g.rng.Float64()) * float64(g.SampleRate))
		if g.remain < 1 {
			g.remain = 1
		}
		g.pitchHz = 90 + 80*g.rng.Float64()
	}
	g.remain--
	target := 0.0
	if g.voiced {
		target = 0.5
	}
	alpha := 1 / (0.02 * float64(g.SampleRate))
	g.env += alpha * (target - g.env)

	// Glottal-ish pulse train plus aspiration noise.
	g.phase += g.pitchHz / float64(g.SampleRate)
	if g.phase >= 1 {
		g.phase -= 1
	}
	pulse := math.Pow(1-g.phase, 6) // sharp decay each period
	s := 0.8*pulse + 0.2*g.rng.NormFloat64()
	// Two cascaded one-poles as a crude vocal tract.
	g.lp1 += 0.35 * (s - g.lp1)
	g.lp2 += 0.35 * (g.lp1 - g.lp2)
	v := g.env * g.lp2 * 2
	return units.Clamp(v, -1, 1)
}

// Samples returns the next n samples.
func (g *AudioSynth) Samples(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Voiced reports whether the generator is currently in a speech burst.
func (g *AudioSynth) Voiced() bool { return g.voiced }

// VideoSynth generates 8-bit grayscale frames with temporal coherence:
// a static gradient background, a moving bright square, and per-pixel
// noise. Consecutive frames differ only around the moving object, giving
// DCT/MJPEG codecs realistic spatial redundancy.
type VideoSynth struct {
	W, H  int
	rng   *rand.Rand
	objX  float64
	objY  float64
	velX  float64
	velY  float64
	frame int
}

// NewVideoSynth returns a generator of w×h frames.
func NewVideoSynth(w, h int, seed int64) *VideoSynth {
	return &VideoSynth{
		W: w, H: h,
		rng:  rand.New(rand.NewSource(seed)),
		objX: float64(w) / 4, objY: float64(h) / 4,
		velX: float64(w) / 40, velY: float64(h) / 60,
	}
}

// NextFrame returns the next frame as a row-major W×H byte slice.
func (g *VideoSynth) NextFrame() []byte {
	f := make([]byte, g.W*g.H)
	side := g.W / 8
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			// Smooth diagonal gradient background.
			v := 40 + 120*float64(x+y)/float64(g.W+g.H)
			// Moving bright object.
			if math.Abs(float64(x)-g.objX) < float64(side) &&
				math.Abs(float64(y)-g.objY) < float64(side) {
				v = 220
			}
			// Mild sensor noise.
			v += 3 * g.rng.NormFloat64()
			f[y*g.W+x] = byte(units.Clamp(v, 0, 255))
		}
	}
	// Bounce the object around the frame.
	g.objX += g.velX
	g.objY += g.velY
	if g.objX < 0 || g.objX > float64(g.W) {
		g.velX = -g.velX
		g.objX += 2 * g.velX
	}
	if g.objY < 0 || g.objY > float64(g.H) {
		g.velY = -g.velY
		g.objY += 2 * g.velY
	}
	g.frame++
	return f
}

// Frame returns the current frame index.
func (g *VideoSynth) Frame() int { return g.frame }

// Quantize converts float samples to signed 16-bit codes given a full-scale
// range, saturating out-of-range values — the ADC every leaf node applies
// before any digital processing.
func Quantize(samples []float64, fullScale float64) []int16 {
	return QuantizeBits(samples, fullScale, 16)
}

// QuantizeBits quantizes at an explicit ADC resolution (e.g. 12 bits for
// the ECG patch AFE): codes span ±(2^(bits-1)−1). The result is still
// carried in int16.
func QuantizeBits(samples []float64, fullScale float64, bits int) []int16 {
	out := make([]int16, len(samples))
	if fullScale <= 0 || bits < 2 || bits > 16 {
		return out
	}
	max := float64(int(1)<<(bits-1)) - 1
	for i, s := range samples {
		v := s / fullScale * max
		out[i] = int16(units.Clamp(v, -max-1, max))
	}
	return out
}

// Dequantize reverses Quantize.
func Dequantize(codes []int16, fullScale float64) []float64 {
	out := make([]float64, len(codes))
	for i, c := range codes {
		out[i] = float64(c) / 32767 * fullScale
	}
	return out
}
