// Package wiban reproduces "Invited: Human-Inspired Distributed Wearable
// AI" (Sen & Datta, DAC 2024): a body-area network architecture where
// ultra-low-power leaf nodes (sensors plus optional in-sensor analytics)
// offload heavy AI computation to an on-body hub over the electro-
// quasistatic "Body as a Wire" (Wi-R) channel.
//
// The root package is a façade over the implementation packages:
//
//   - internal/iob — the core architecture API (node designs, power
//     breakdowns, the Fig. 3 battery-life projector, network composition);
//   - internal/channel, internal/phy, internal/radio — the physical
//     substrate (EQS biophysical circuit model, link budgets, transceiver
//     energy models);
//   - internal/nn, internal/partition — wearable DNNs and the split-
//     computing optimizer;
//   - internal/bannet — the discrete-event network simulator. A
//     bannet.Sim is a reusable kernel arena: NewSim builds it, Reset
//     rebinds it to a different scenario and RunInto replays into a
//     caller-owned report, all recycling the packet rings, node states,
//     TDMA slot table and the desim event arena — a warmed
//     Reset–RunInto cycle is allocation-free (bannet.Run remains the
//     one-shot convenience). The fleet engine gives each worker one
//     long-lived Sim, which is where its wearers-per-second comes from;
//   - internal/fleet — the population-scale engine: N wearer simulations
//     across a worker pool (cmd/iobfleet drives it), with a scenario
//     generator that spreads channel loss, batteries, harvesters and
//     device mixes across the fleet, and deterministic streaming
//     aggregation — completed runs flow through a Sink in wearer-index
//     order (bounded reorder window, O(workers) memory) into online
//     histogram distributions, and the same fleet seed yields a
//     byte-identical report at any worker count, via splitmix64
//     per-wearer seeds (desim.DeriveSeed). With a Coupling the engine
//     runs two-phased: a deterministic per-cell offered-load reduction,
//     then per-wearer kernels whose RF links carry their cell's
//     collision loss (iobfleet -cells/-density sweeps); with Feedback
//     the reduction additionally solves each cell's damped fixed point
//     of the collision→retry→offered-load loop, so kernels see the
//     equilibrium congestion a dense venue settles at (iobfleet
//     -feedback, knobs -max-iters/-tol). The per-wearer hot path is
//     allocation-free in steady state: workers reuse a scratch RNG, a
//     kernel arena and pooled report buffers, sinks receive records on
//     a borrow-until-return contract, and phase 1 runs the Generator's
//     load pass instead of regenerating scenarios (profile a sweep
//     with iobfleet -cpuprofile/-memprofile). The engine also runs
//     range-bounded: Start/End restrict simulation to a wearer window
//     while phase 1 still reduces over the full population, and a
//     GatherLoads/Presolved pair splits the two phases across
//     processes — cmd/iobfleetd, the long-running fleet daemon,
//     builds on exactly that to shard one sweep across remote
//     backends ("shards" in the sweep spec; a static -backends list,
//     or backends that register and heartbeat themselves over
//     POST /api/backends with TTL expiry): shards gather loads, the
//     coordinator merges and solves the equilibrium once, shards
//     simulate their windows and replicate committed telemetry blocks
//     back, and because seeds derive from absolute wearer indices the
//     merged store — per-node time series included: record+series
//     frame pairs are re-paired and re-encoded at the merged block
//     boundaries — is byte-identical to a single-process run, even
//     after a backend is SIGKILLed and resumed mid-sweep, replaced,
//     or never comes back at all (straggler shards are speculatively
//     re-dispatched to live members past -steal-after;
//     first-committed copy wins, the loser is cancelled). Sweeps
//     cancel end-to-end (DELETE /api/sweeps/{id}, sub-sweeps and
//     partials included) and -retain bounds the terminal-store
//     backlog without ever touching resumable state;
//   - internal/spectrum — cross-wearer co-channel interference: wearers
//     hash into spatial cells, each cell sums its members' offered RF
//     airtime in exact integer PPM, and a CSMA/ALOHA collision curve
//     maps foreign load to per-attempt loss — RF degrades with fleet
//     density while body-coupled EQS/MQS links ride free, the paper's
//     shared-spectrum argument at fleet scale; spectrum.Equilibrium
//     closes the collision→retry→offered-load loop with a
//     deterministic damped fixed point per cell (retry-inflated
//     airtime, geometric in each node's retry budget);
//   - internal/telemetry — the streaming fleet-telemetry store
//     (cmd/iobtrace inspects it): delta/bit-packed columnar blocks with
//     CRC footers plus an atomically-renamed checkpoint sidecar, so a
//     killed million-wearer sweep resumes from its last committed block
//     (iobfleet -out/-resume) and re-derives a bit-identical
//     fingerprint; format v1 stores each wearer's cell and foreign load
//     so coupled sweeps replay exactly, format v2 adds the equilibrium
//     load and fixed-point iteration columns feedback sweeps replay
//     from, and format v3 adds kinded frames: per-node in-run time
//     series (battery charge, queue depth, link PER, collision rate,
//     sampled on the TDMA superframe tick by bannet.Sim.SetSeries
//     without perturbing the simulation — iobfleet -series) compressed
//     with delta-of-delta timestamps and XOR floats, plus a trailing
//     label index that iobtrace query prunes with when aggregating a
//     metric over a time/cell/node range;
//   - internal/figures — generators for every figure and table in the
//     paper (also exposed through cmd/iobfig and the root benchmarks).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results.
package wiban

import (
	"wiban/internal/iob"
	"wiban/internal/units"
)

// Re-exported core types, so a downstream user can express the common
// compositions without reaching into internal packages from examples.

// NodeDesign is a leaf-node composition (see internal/iob).
type NodeDesign = iob.NodeDesign

// Network is a composed body-area network.
type Network = iob.Network

// PowerBreakdown is a per-component node power summary (Fig. 1).
type PowerBreakdown = iob.PowerBreakdown

// Projection is one point of the Fig. 3 battery-life projection.
type Projection = iob.Projection

// Architecture selects conventional vs human-inspired node organization.
type Architecture = iob.Architecture

// Node architectures.
const (
	Conventional  = iob.Conventional
	HumanInspired = iob.HumanInspired
)

// PerpetualLife is the paper's perpetual-operation threshold (one year).
const PerpetualLife = units.Year

// NewFig3Projector returns the paper's battery-life projector
// (1000 mAh battery, Wi-R at 100 pJ/bit, survey sensing power).
func NewFig3Projector() *iob.Projector { return iob.NewFig3Projector() }

// DefaultHub returns a smartwatch-class on-body hub design.
func DefaultHub() iob.HubDesign { return iob.DefaultHub() }
