package wiban

// Cross-package integration tests: the full vertical stack, from the
// biophysical channel model to battery-life projections, with no
// hand-specified intermediate quantities.

import (
	"math"
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/iob"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/phy"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// TestFullStackChannelToBatteryLife derives the packet error rate from the
// physical link budget (channel → PHY), feeds it to the network simulator,
// and checks the resulting battery-life projections land in the paper's
// regions — no free parameters between the physics and the outcome.
func TestFullStackChannelToBatteryLife(t *testing.T) {
	bodyPath := 1.5 * units.Meter
	wirPER := phy.WiRLink(bodyPath).PER(1024 * 8)
	blePER := phy.BLELink(bodyPath).PER(1024 * 8)
	if wirPER >= 0.05 || blePER >= 0.05 {
		t.Fatalf("physical PERs implausible: wir %g ble %g", wirPER, blePER)
	}

	mk := func(id int, name string, tr *radio.Transceiver, per float64) bannet.NodeConfig {
		return bannet.NodeConfig{
			ID: id, Name: name, Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: tr, Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: per, MaxRetries: 5,
		}
	}
	rep, err := bannet.Run(bannet.Config{Seed: 21, Nodes: []bannet.NodeConfig{
		mk(1, "wir", radio.WiR(), wirPER),
		mk(2, "ble", radio.BLE42(), blePER),
	}}, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	wir := rep.NodeByName("wir")
	ble := rep.NodeByName("ble")
	if !wir.Perpetual {
		t.Errorf("Wi-R ECG node not perpetual from first principles (%v)", wir.ProjectedLife)
	}
	if float64(ble.AvgPower) < 5*float64(wir.AvgPower) {
		t.Errorf("physical-stack power ratio too small: %v vs %v", ble.AvgPower, wir.AvgPower)
	}
	if wir.DeliveryRate() < 0.999 || ble.DeliveryRate() < 0.999 {
		t.Error("physical PERs with ARQ should deliver ≈ 100%")
	}
}

// TestFullStackOffloadPipeline runs the trained-model path: train a tiny
// classifier, export it, partition it over the physical Wi-R link, and
// simulate the resulting node — asserting the leaf ends up CPU-less and
// real-time.
func TestFullStackOffloadPipeline(t *testing.T) {
	kws, err := nn.KWSNet(7)
	if err != nil {
		t.Fatal(err)
	}
	node := bannet.NodeConfig{
		ID: 1, Name: "mic", Sensor: sensors.MicMono(),
		Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
		Radio:  radio.WiR(), Battery: energy.Fig3Battery(),
		PacketBits: 1960, PER: phy.WiRLink(1 * units.Meter).PER(1960),
		MaxRetries: 5,
		Inference: &bannet.InferenceSpec{Name: "KWS", MACs: kws.TotalMACs(),
			InputBits: int64(kws.InElems()) * 8},
	}
	rep, err := bannet.Run(bannet.Config{Seed: 22, Nodes: []bannet.NodeConfig{node}},
		5*units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	if n.Inferences == 0 {
		t.Fatal("no inferences completed")
	}
	// Real-time: sub-quarter-second median end-to-end keyword latency.
	if n.InferenceP50 > 250*units.Millisecond {
		t.Errorf("e2e inference p50 %v too slow for interactive use", n.InferenceP50)
	}
	// Featherweight: the leaf's whole budget stays sub-mW.
	if n.AvgPower > units.Milliwatt {
		t.Errorf("leaf node power %v, want sub-mW", n.AvgPower)
	}
	// The hub barely notices.
	if rep.HubUtilization > 0.05 {
		t.Errorf("hub utilization %.3f implausibly high", rep.HubUtilization)
	}
}

// TestFacadeExports checks that the public façade is wired to the same
// implementations the internals use.
func TestFacadeExports(t *testing.T) {
	p := NewFig3Projector()
	pr, err := p.At(3 * units.Kbps)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Perpetual {
		t.Error("façade projector disagrees with internal results")
	}
	hub := DefaultHub()
	if hub.Radio == nil || hub.Compute == nil || hub.Battery == nil {
		t.Error("façade hub incomplete")
	}
	var d NodeDesign
	d.Name = "x"
	if Conventional == HumanInspired {
		t.Error("architecture constants collide")
	}
	if PerpetualLife != units.Year {
		t.Error("perpetual threshold drifted")
	}
	var _ Network
	var _ PowerBreakdown
	var _ Projection
	var _ Architecture
}

// TestEnergyConservation cross-checks the simulator's books against an
// independent integral: total node energy over the span must equal
// avg power × span to float precision.
func TestEnergyConservation(t *testing.T) {
	cfg := bannet.Config{Seed: 23, Nodes: []bannet.NodeConfig{{
		ID: 1, Name: "imu", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
		Radio: radio.WiR(), Battery: energy.CR2032(),
		PacketBits: 1024, PER: 0.02, MaxRetries: 3,
	}}}
	span := 30 * units.Minute
	rep, err := bannet.Run(cfg, span)
	if err != nil {
		t.Fatal(err)
	}
	n := &rep.Nodes[0]
	lhs := float64(n.TotalEnergy())
	rhs := float64(n.AvgPower) * float64(span)
	if math.Abs(lhs-rhs) > 1e-9*math.Max(lhs, rhs) {
		t.Errorf("energy books disagree: %g J vs %g J", lhs, rhs)
	}
}

// TestPaperHeadlineNumbers pins the four numbers the abstract leads with,
// as computed by this repository.
func TestPaperHeadlineNumbers(t *testing.T) {
	wir, ble := radio.WiR(), radio.BLE42()
	if r := float64(wir.Goodput) / float64(ble.Goodput); r < 10 {
		t.Errorf(">10× faster claim: measured %.1f×", r)
	}
	if r := float64(ble.EnergyPerGoodBit()) / float64(wir.EnergyPerGoodBit()); r < 100 {
		t.Errorf("<100× power claim: measured %.0f×", r)
	}
	proj := iob.NewFig3Projector()
	if b := proj.PerpetualBoundary(); b < 3*units.Kbps {
		t.Errorf("perpetual region too small: boundary %v", b)
	}
	marker := iob.Fig3Markers()[0] // biopotential patch
	pr, err := proj.Mark(marker)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Perpetual {
		t.Error("biopotential patch must sit in the perpetual region")
	}
}
