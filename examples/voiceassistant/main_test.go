package main

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/nn"
	"wiban/internal/units"
)

// TestBanConfigValidates asserts the voice node's network passes bannet
// validation at nominal ISA measurements and produces hub inferences.
func TestBanConfigValidates(t *testing.T) {
	kws, err := nn.KWSNet(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := banConfig(0.3, 4, kws) // nominal: 30% speech, 4x ADPCM
	cfg.Seed = 17
	sim, err := bannet.NewSim(cfg)
	if err != nil {
		t.Fatalf("example config rejected: %v", err)
	}
	rep, err := sim.Run(2 * units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Nodes {
		if n.Inferences == 0 {
			t.Errorf("node %s produced no hub inferences", n.Name)
		}
	}
}
