// Voice assistant: an audio-input wearable-AI node (the AI-pin / pendant
// class the paper's §II-B describes).
//
// The node runs a voice-activity detector in-sensor, ADPCM-compresses only
// the voiced segments, and the keyword-spotting DNN is partitioned between
// leaf and hub — which, over Wi-R, means it runs entirely on the hub.
//
// Run with: go run ./examples/voiceassistant
package main

import (
	"fmt"
	"log"

	"wiban/internal/bannet"
	"wiban/internal/compress"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// banConfig is the voice node as a simulatable network: the VAD-gated,
// ADPCM-compressed mic stream on both candidate radios, with the keyword
// spotter offloaded to the hub NPU. speechFrac and adpcmRatio come from
// the in-sensor measurement main performs on synthetic speech.
func banConfig(speechFrac, adpcmRatio float64, kws *nn.Sequential) bannet.Config {
	mic := sensors.MicMono()
	policy := isa.Compress{
		Label:         "VAD+ADPCM",
		MeasuredRatio: adpcmRatio / speechFrac, // gating and coding compound
		Power:         50 * units.Microwatt,    // VAD 30 µW + ADPCM 20 µW
	}
	inf := &bannet.InferenceSpec{
		Name: kws.Name, MACs: kws.TotalMACs(), InputBits: kws.InElems() * 8,
	}
	return bannet.Config{Nodes: []bannet.NodeConfig{
		{ID: 1, Name: "wir-mic", Sensor: mic, Policy: policy, Radio: radio.WiR(),
			Battery: energy.Fig3Battery(), PacketBits: 4096, PER: 0.01, MaxRetries: 4,
			Inference: inf},
		{ID: 2, Name: "ble-mic", Sensor: mic, Policy: policy, Radio: radio.BLE42(),
			Battery: energy.Fig3Battery(), PacketBits: 4096, PER: 0.02, MaxRetries: 4,
			Inference: inf},
	}}
}

func main() {
	fs := 16 * units.Kilohertz
	mic := sensors.MicMono()
	batt := energy.Fig3Battery()

	// --- Measure the ISA pipeline on 30 s of synthetic speech ------------
	gen := sensors.NewAudioSynth(fs, 9)
	vad := isa.NewVAD(fs)
	var voiced []float64
	for i := 0; i < 16000*30; i++ {
		s := gen.Next()
		if vad.Process(s) {
			voiced = append(voiced, s)
		}
	}
	speechFrac := vad.SpeechFraction()
	if speechFrac <= 0 {
		log.Fatal("VAD passed no audio; the synthetic speech or VAD tuning regressed")
	}
	raw := sensors.Quantize(voiced, 1.0)
	enc := compress.ADPCMEncode(raw)
	adpcmRatio := compress.Ratio(len(raw)*2, len(enc))
	fmt.Printf("ISA: VAD passes %.0f%% of audio; ADPCM compresses voiced segments %.1fx\n",
		speechFrac*100, adpcmRatio)

	// Combined policy: VAD gating then ADPCM on what remains.
	gated := isa.EventGated{Label: "VAD", EventsPerSecond: speechFrac / 0.4,
		Window: 400 * units.Millisecond, Heartbeat: 200, Power: 30 * units.Microwatt}
	gatedRate := gated.OutputRate(mic.DataRate())
	linkRate := units.DataRate(float64(gatedRate) / adpcmRatio)
	fmt.Printf("link rate: raw %v → VAD %v → +ADPCM %v\n\n", mic.DataRate(), gatedRate, linkRate)

	// --- Partition the keyword spotter across links ----------------------
	kws, err := nn.KWSNet(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioning %s (%d MACs) between leaf MCU and hub NPU:\n",
		kws.Name, kws.TotalMACs())
	for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42()} {
		cuts, err := partition.Evaluate(partition.Config{
			Model: kws, Leaf: partition.LeafMCU(), Hub: partition.HubSoC(),
			Link: partition.FromTransceiver(tr), BitsPerElement: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		best, _ := partition.Best(cuts)
		where := "leaf keeps the whole network (needs a CPU)"
		if best.Index == 0 {
			where = "everything offloads to the hub (leaf needs no CPU)"
		} else if best.Index < kws.NumLayers() {
			where = fmt.Sprintf("split after layer %d", best.Index)
		}
		fmt.Printf("  %-8s: best cut %d/%d — %s; leaf energy %v/inference, latency %v\n",
			tr.Name, best.Index, kws.NumLayers(), where, best.LeafEnergy, best.Latency)
	}

	// --- Node power and battery life -------------------------------------
	fmt.Println()
	isaPower := gated.ComputePower() + 20*units.Microwatt // VAD + ADPCM
	for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42()} {
		comm, err := tr.AveragePower(linkRate, 10)
		if err != nil {
			log.Fatal(err)
		}
		total := mic.AFEPower + isaPower + comm
		life := batt.Lifetime(total)
		fmt.Printf("%-8s: node power %v → battery life %v", tr.Name, total, life)
		if life >= units.Week {
			fmt.Print("  (the paper's all-week audio class)")
		}
		fmt.Println()
	}

	// --- Discrete-event cross-check --------------------------------------
	// The same node in the network simulator, keyword spotting offloaded
	// to the hub: end-to-end inference latency includes window assembly,
	// the TDMA schedule and the NPU queue.
	cfg := banConfig(speechFrac, adpcmRatio, kws)
	cfg.Seed = 17
	rep, err := bannet.Run(cfg, 10*units.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulating 10 min with hub-side keyword spotting:")
	for _, n := range rep.Nodes {
		fmt.Printf("  %-8s: %d inferences, e2e p50 %v / p99 %v, avg power %v\n",
			n.Name, n.Inferences, n.InferenceP50, n.InferenceP99, n.AvgPower)
	}
}
