// Voice assistant: an audio-input wearable-AI node (the AI-pin / pendant
// class the paper's §II-B describes).
//
// The node runs a voice-activity detector in-sensor, ADPCM-compresses only
// the voiced segments, and the keyword-spotting DNN is partitioned between
// leaf and hub — which, over Wi-R, means it runs entirely on the hub.
//
// Run with: go run ./examples/voiceassistant
package main

import (
	"fmt"
	"log"

	"wiban/internal/compress"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

func main() {
	fs := 16 * units.Kilohertz
	mic := sensors.MicMono()
	batt := energy.Fig3Battery()

	// --- Measure the ISA pipeline on 30 s of synthetic speech ------------
	gen := sensors.NewAudioSynth(fs, 9)
	vad := isa.NewVAD(fs)
	var voiced []float64
	for i := 0; i < 16000*30; i++ {
		s := gen.Next()
		if vad.Process(s) {
			voiced = append(voiced, s)
		}
	}
	speechFrac := vad.SpeechFraction()
	raw := sensors.Quantize(voiced, 1.0)
	enc := compress.ADPCMEncode(raw)
	adpcmRatio := compress.Ratio(len(raw)*2, len(enc))
	fmt.Printf("ISA: VAD passes %.0f%% of audio; ADPCM compresses voiced segments %.1fx\n",
		speechFrac*100, adpcmRatio)

	// Combined policy: VAD gating then ADPCM on what remains.
	gated := isa.EventGated{Label: "VAD", EventsPerSecond: speechFrac / 0.4,
		Window: 400 * units.Millisecond, Heartbeat: 200, Power: 30 * units.Microwatt}
	gatedRate := gated.OutputRate(mic.DataRate())
	linkRate := units.DataRate(float64(gatedRate) / adpcmRatio)
	fmt.Printf("link rate: raw %v → VAD %v → +ADPCM %v\n\n", mic.DataRate(), gatedRate, linkRate)

	// --- Partition the keyword spotter across links ----------------------
	kws, err := nn.KWSNet(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioning %s (%d MACs) between leaf MCU and hub NPU:\n",
		kws.Name, kws.TotalMACs())
	for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42()} {
		cuts, err := partition.Evaluate(partition.Config{
			Model: kws, Leaf: partition.LeafMCU(), Hub: partition.HubSoC(),
			Link: partition.FromTransceiver(tr), BitsPerElement: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		best, _ := partition.Best(cuts)
		where := "leaf keeps the whole network (needs a CPU)"
		if best.Index == 0 {
			where = "everything offloads to the hub (leaf needs no CPU)"
		} else if best.Index < kws.NumLayers() {
			where = fmt.Sprintf("split after layer %d", best.Index)
		}
		fmt.Printf("  %-8s: best cut %d/%d — %s; leaf energy %v/inference, latency %v\n",
			tr.Name, best.Index, kws.NumLayers(), where, best.LeafEnergy, best.Latency)
	}

	// --- Node power and battery life -------------------------------------
	fmt.Println()
	isaPower := gated.ComputePower() + 20*units.Microwatt // VAD + ADPCM
	for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42()} {
		comm, err := tr.AveragePower(linkRate, 10)
		if err != nil {
			log.Fatal(err)
		}
		total := mic.AFEPower + isaPower + comm
		life := batt.Lifetime(total)
		fmt.Printf("%-8s: node power %v → battery life %v", tr.Name, total, life)
		if life >= units.Week {
			fmt.Print("  (the paper's all-week audio class)")
		}
		fmt.Println()
	}
}
