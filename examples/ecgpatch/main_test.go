package main

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// TestSimConfigValidates asserts the example's cross-check network passes
// bannet validation and actually delivers traffic in a short run.
func TestSimConfigValidates(t *testing.T) {
	cfg := simConfig(sensors.ECGPatch(), energy.Fig3Battery())
	sim, err := bannet.NewSim(cfg)
	if err != nil {
		t.Fatalf("example config rejected: %v", err)
	}
	rep, err := sim.Run(10 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Nodes {
		if n.PacketsDelivered == 0 {
			t.Errorf("node %s delivered nothing", n.Name)
		}
	}
}
