// ECG patch: the paper's flagship perpetual node, end to end.
//
// A chest patch samples a synthetic ECG, detects R-peaks with the in-
// sensor analytics pipeline, and compares four transmission policies and
// two radios; then a discrete-event simulation cross-checks the analytic
// battery-life projection.
//
// Run with: go run ./examples/ecgpatch
package main

import (
	"fmt"
	"log"

	"wiban/internal/bannet"
	"wiban/internal/compress"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// simConfig is the discrete-event cross-check network: the same ECG front
// end on Wi-R and BLE side by side, so one run compares the radios under
// identical traffic.
func simConfig(patch *sensors.Sensor, batt *energy.Battery) bannet.Config {
	return bannet.Config{Seed: 11, Nodes: []bannet.NodeConfig{
		{ID: 1, Name: "wir", Sensor: patch, Policy: isa.StreamAll{}, Radio: radio.WiR(),
			Battery: batt, PacketBits: 1024, PER: 0.01, MaxRetries: 5},
		{ID: 2, Name: "ble", Sensor: patch, Policy: isa.StreamAll{}, Radio: radio.BLE42(),
			Battery: batt, PacketBits: 1024, PER: 0.01, MaxRetries: 5},
	}}
}

func main() {
	fs := 250 * units.Hertz
	patch := sensors.ECGPatch()
	batt := energy.Fig3Battery()

	// --- In-sensor analytics on one minute of synthetic ECG -------------
	gen := sensors.NewECGSynth(fs, 72, 7)
	sig := gen.Samples(250 * 60)
	det := isa.NewRPeakDetector(fs)
	for _, s := range sig {
		det.Process(s)
	}
	fmt.Printf("ISA: detected %d beats in 60 s → %.0f bpm estimate\n",
		len(det.Peaks()), det.HeartRateBPM())

	// Measured lossless compression on the same minute.
	raw := sensors.QuantizeBits(sig, 2.0, 12)
	rice := compress.RiceEncodeAuto(compress.DeltaInt32(raw))
	riceRatio := compress.Ratio(len(raw)*2, len(rice))
	fmt.Printf("ISA: delta+Rice compresses 12-bit ECG by %.1fx losslessly\n\n", riceRatio)

	// --- Policy × radio sweep -------------------------------------------
	policies := []isa.Policy{
		isa.StreamAll{},
		isa.Compress{Label: "delta+Rice", MeasuredRatio: riceRatio, Power: 8 * units.Microwatt},
		isa.EventGated{Label: "R-peak windows", EventsPerSecond: 1.2,
			Window: 300 * units.Millisecond, Heartbeat: 100, Power: 15 * units.Microwatt},
		isa.FeatureOnly{Label: "HR only", EventsPerSecond: 1.2, BitsPerEvent: 16,
			Power: 15 * units.Microwatt},
	}
	fmt.Printf("%-28s %-10s %12s %12s %14s %14s\n",
		"policy", "link rate", "Wi-R power", "Wi-R life", "BLE power", "BLE life")
	for _, p := range policies {
		rate := p.OutputRate(patch.DataRate())
		row := fmt.Sprintf("%-28s %-10v", p.Name(), rate)
		for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42()} {
			comm, err := tr.AveragePower(rate, 10)
			if err != nil {
				log.Fatal(err)
			}
			total := patch.AFEPower + p.ComputePower() + comm
			row += fmt.Sprintf(" %12v %12v", total, batt.Lifetime(total))
		}
		fmt.Println(row)
	}

	// --- Discrete-event cross-check --------------------------------------
	fmt.Println("\nsimulating 1 hour (Wi-R vs BLE, raw streaming)...")
	rep, err := bannet.Run(simConfig(patch, batt), units.Hour)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range rep.Nodes {
		fmt.Printf("  %-4s: avg %v → projected life %v (perpetual=%v, p50 latency %v)\n",
			n.Name, n.AvgPower, n.ProjectedLife, n.Perpetual, n.LatencyP50)
	}

	// The honest crossover: at a bare 3 kbps ECG stream, a duty-cycled BLE
	// node can scrape past a year on a 1000 mAh cell — but it has no
	// margin. Shrink the battery to a CR2032 or raise the rate to an
	// 8-channel EEG and BLE collapses while Wi-R keeps order-of-magnitude
	// headroom.
	coin := energy.CR2032()
	eeg := sensors.EEGHeadband()
	fmt.Println("\nmargins (battery life):")
	fmt.Printf("  %-26s %12s %12s\n", "scenario", "Wi-R", "BLE 4.2")
	for _, sc := range []struct {
		name string
		s    *sensors.Sensor
		b    *energy.Battery
	}{
		{"ECG 3 kbps on 1000 mAh", patch, batt},
		{"ECG 3 kbps on CR2032", patch, coin},
		{"EEG 32 kbps on 1000 mAh", eeg, batt},
	} {
		row := fmt.Sprintf("  %-26s", sc.name)
		for _, tr := range []*radio.Transceiver{radio.WiR(), radio.BLE42()} {
			comm, err := tr.AveragePower(sc.s.DataRate(), 10)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %12v", sc.b.Lifetime(sc.s.AFEPower+comm))
		}
		fmt.Println(row)
	}
}
