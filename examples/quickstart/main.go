// Quickstart: compose a human-inspired body-area network, check it against
// the shared Wi-R medium, and project every node's battery life.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wiban/internal/iob"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// buildNetwork composes the quickstart BAN. The hub is the "wearable
// brain": daily-charged, carries the NPU. Three leaf nodes hang off it:
// the ECG patch streams raw samples; the microphone compresses with ADPCM
// and offloads keyword spotting to the hub; the camera ships MJPEG frames
// for hub-side vision.
func buildNetwork() (*iob.Network, error) {
	kws, err := nn.KWSNet(1)
	if err != nil {
		return nil, err
	}
	return &iob.Network{
		Name: "quickstart BAN",
		Hub:  iob.DefaultHub(),
		Nodes: []*iob.NodeDesign{
			iob.HumanInspiredNode("ecg-patch", sensors.ECGPatch(), nil, nil),
			iob.HumanInspiredNode("voice-mic", sensors.MicMono(),
				isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
				&iob.Workload{Model: kws, PerSecond: 2}),
			iob.HumanInspiredNode("camera", sensors.CameraQVGA(),
				isa.Compress{Label: "MJPEG q50", MeasuredRatio: 8, Power: 500 * units.Microwatt},
				nil),
		},
	}, nil
}

func main() {
	net, err := buildNetwork()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Does the network fit the 4 Mbps body medium?
	if err := net.Schedulable(nil); err != nil {
		log.Fatalf("network does not fit the medium: %v", err)
	}
	summary, err := net.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(summary)

	// 2. Where does each node land on the paper's Fig. 3 projection?
	proj := iob.NewFig3Projector()
	fmt.Printf("%-12s %-12s %-12s %-12s %s\n", "node", "link rate", "node power", "battery life", "class")
	for _, d := range net.Nodes {
		b, err := d.AverageBreakdown()
		if err != nil {
			log.Fatal(err)
		}
		life := proj.Battery.Lifetime(b.Total())
		class := "recharge"
		if life >= units.Year {
			class = "PERPETUAL (>1 yr)"
		} else if life >= units.Week {
			class = "all-week+"
		} else if life >= units.Day {
			class = "all-day+"
		}
		fmt.Printf("%-12s %-12v %-12v %-12v %s\n", d.Name, d.LinkRate(), b.Total(), life, class)
	}

	fmt.Printf("\nperpetual region boundary on Wi-R: %v\n", proj.PerpetualBoundary())
}
