package main

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/iob"
	"wiban/internal/units"
)

// TestNetworkLowersToValidSimConfig asserts the quickstart network passes
// bannet validation after lowering through the iob bridge (which derives
// each PER from the physical link budget), and survives a short run.
func TestNetworkLowersToValidSimConfig(t *testing.T) {
	net, err := buildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Schedulable(nil); err != nil {
		t.Fatalf("network does not fit the medium: %v", err)
	}
	cfg, err := net.ToSimConfig(iob.SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := bannet.NewSim(cfg)
	if err != nil {
		t.Fatalf("lowered config rejected by bannet: %v", err)
	}
	rep, err := sim.Run(5 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HubRxBits == 0 {
		t.Error("no traffic reached the hub")
	}
}
