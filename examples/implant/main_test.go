package main

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/units"
)

// TestImplantConfigValidates asserts the implant network passes bannet
// validation at the depths the example studies, with the PER coming out
// of the physical MQS link budget.
func TestImplantConfigValidates(t *testing.T) {
	for _, depth := range []units.Distance{2 * units.Centimeter, 5 * units.Centimeter, 10 * units.Centimeter} {
		cfg := implantConfig(depth)
		cfg.Seed = 31
		if per := cfg.Nodes[0].PER; per < 0 || per >= 1 {
			t.Fatalf("depth %v: link budget PER %v outside [0,1)", depth, per)
		}
		sim, err := bannet.NewSim(cfg)
		if err != nil {
			t.Fatalf("depth %v: example config rejected: %v", depth, err)
		}
		rep, err := sim.Run(10 * units.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Nodes[0].PacketsDelivered == 0 {
			t.Errorf("depth %v: implant delivered nothing", depth)
		}
	}
}
