// Implant: the paper's future-work direction (§IV-B) — body-assisted
// communication for implantable devices using magneto-quasistatic HBC,
// "leveraging the human body's transparency to magnetic fields".
//
// A neural implant 2–10 cm deep must reach a wearable hub on the skin.
// This example compares the three physical options at each depth — the
// MQS coil link (tissue-transparent), and 2.4 GHz RF (absorbed ≈ 3 dB/cm
// by the conductive body) — then sizes the implant's battery life
// streaming an 8-channel neural recording over the MQS link.
//
// Run with: go run ./examples/implant
package main

import (
	"fmt"
	"log"

	"wiban/internal/bannet"
	"wiban/internal/channel"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/phy"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// implantCell is the 40 mAh cell the implant carries.
func implantCell() *energy.Battery {
	return &energy.Battery{
		Name: "implant cell", CapacityMAh: 40, Voltage: 3 * units.Volt,
		UsableFraction: 0.85, SelfDischargePerYear: 0.01, ShelfLife: 10 * units.Year,
	}
}

// implantConfig is the implant as a simulatable network: an 8-channel
// neural stream over the MQS coil link at the given depth, with the
// packet error rate taken from the physical link budget rather than
// hand-specified.
func implantConfig(depth units.Distance) bannet.Config {
	const packetBits = 1024
	per := phy.MQSLink(depth).PER(packetBits)
	return bannet.Config{Nodes: []bannet.NodeConfig{
		{ID: 1, Name: "implant", Sensor: sensors.EEGHeadband(), Policy: isa.StreamAll{},
			Radio: radio.MQSImplant(), Battery: implantCell(),
			PacketBits: packetBits, PER: per, MaxRetries: 5},
	}}
}

func main() {
	mqs := channel.DefaultMQSImplant()
	rf := channel.DefaultBLEPath()

	// --- Channel gain vs implant depth ------------------------------------
	fmt.Println("link gain to a skin-surface hub vs implant depth:")
	fmt.Printf("%-8s %14s %18s %12s\n", "depth", "MQS coil", "2.4 GHz RF+tissue", "advantage")
	for _, d := range []units.Distance{2 * units.Centimeter, 5 * units.Centimeter, 10 * units.Centimeter} {
		gm := mqs.GainDB(d)
		gr := rf.GainThroughTissueDB(d, d)
		fmt.Printf("%-8v %11.1f dB %15.1f dB %9.1f dB\n", d, gm, gr, gm-gr)
	}

	// --- Can each link close at 1 Mbps? ------------------------------------
	// Required transmit power for BER 1e-6 OOK in 2 MHz at each depth,
	// with 30 dB of real-world margin (interference, aging, fading),
	// against a 10 µW implant transmit budget.
	const implMarginDB = 30
	budget := 10 * units.Microwatt
	rfDeepFails := false
	fmt.Printf("\nrequired TX power for 1 Mbps @ BER 1e-6 (+%d dB margin, budget %v):\n",
		implMarginDB, budget)
	fmt.Printf("%-8s %22s %26s\n", "depth", "MQS coil", "2.4 GHz RF+tissue")
	for _, d := range []units.Distance{2 * units.Centimeter, 5 * units.Centimeter, 10 * units.Centimeter} {
		row := fmt.Sprintf("%-8v", d)
		for i, gain := range []float64{mqs.GainDB(d), rf.GainThroughTissueDB(d, d)} {
			l := &phy.Link{
				Mod: phy.OOK, TXPower: units.Watt, GainDB: gain,
				Rate: 1 * units.Mbps, Bandwidth: 2 * units.Megahertz, NoiseFigDB: 10,
			}
			req := units.Power(float64(units.Watt) /
				units.FromDB(l.MarginDB(1e-6)-implMarginDB))
			cell := req.String()
			if req > budget {
				cell += " (over budget)"
				if i == 1 && d >= 10*units.Centimeter {
					rfDeepFails = true
				}
			}
			row += fmt.Sprintf(" %26s", cell)
		}
		fmt.Println(row)
	}

	// --- Implant battery life over MQS ------------------------------------
	neural := sensors.EEGHeadband() // 8-ch × 250 Hz × 16 b = 32 kbps stand-in
	tr := radio.MQSImplant()
	comm, err := tr.AveragePower(neural.DataRate(), 10)
	if err != nil {
		log.Fatal(err)
	}
	total := neural.AFEPower + comm
	cell := implantCell()
	fmt.Printf("\nimplant node: %v neural stream over %s\n", neural.DataRate(), tr.Name)
	fmt.Printf("  sensing %v + comm %v = %v total\n", neural.AFEPower, comm, total)
	fmt.Printf("  40 mAh implant cell → %v battery life\n", cell.Lifetime(total))
	if rfDeepFails {
		fmt.Println("  (the 2.4 GHz alternative exceeds the implant TX budget at depth)")
	}

	// --- Discrete-event cross-check at 5 cm depth --------------------------
	cfg := implantConfig(5 * units.Centimeter)
	cfg.Seed = 31
	rep, err := bannet.Run(cfg, 10*units.Minute)
	if err != nil {
		log.Fatal(err)
	}
	n := rep.NodeByName("implant")
	fmt.Printf("  simulated 10 min at 5 cm: %.2f%% delivery (PER %.2g from the link budget), avg %v\n",
		n.DeliveryRate()*100, cfg.Nodes[0].PER, n.AvgPower)
}
