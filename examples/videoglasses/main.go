// Video glasses: a first-person camera node (smart-glasses class, §II-C).
//
// The camera cannot stream raw pixels — QVGA @ 15 fps is 9.2 Mbps against
// Wi-R's 3.9 Mbps goodput — so the node runs the MJPEG codec in-sensor.
// This example measures real compression on synthetic frames at several
// qualities, picks operating points that fit the medium, and projects the
// node's battery life; hub-side scene classification runs on the offloaded
// frames.
//
// Run with: go run ./examples/videoglasses
package main

import (
	"fmt"
	"log"

	"wiban/internal/bannet"
	"wiban/internal/compress"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/nn"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// glassesConfig is the glasses BAN as a simulatable network: the MJPEG
// camera at the measured compression ratio sharing the Wi-R medium with
// the three companion wearables the coexistence check assumes.
func glassesConfig(mjpegRatio float64) bannet.Config {
	return bannet.Config{Nodes: []bannet.NodeConfig{
		{ID: 1, Name: "ecg", Sensor: sensors.ECGPatch(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.01, MaxRetries: 5},
		{ID: 2, Name: "imu", Sensor: sensors.IMU6Axis(), Policy: isa.StreamAll{},
			Radio: radio.WiR(), Battery: energy.CR2032(),
			PacketBits: 1024, PER: 0.02, MaxRetries: 5},
		{ID: 3, Name: "audio", Sensor: sensors.MicMono(),
			Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
			Radio:  radio.WiR(), Battery: energy.Fig3Battery(),
			PacketBits: 4096, PER: 0.02, MaxRetries: 4},
		{ID: 4, Name: "glasses", Sensor: sensors.CameraQVGA(),
			Policy: isa.Compress{Label: "MJPEG", MeasuredRatio: mjpegRatio, Power: 500 * units.Microwatt},
			Radio:  radio.WiR(), Battery: energy.LiPo(300),
			PacketBits: 16384, PER: 0.02, MaxRetries: 4},
	}}
}

func main() {
	cam := sensors.CameraQVGA()
	wir := radio.WiR()
	batt := energy.Fig3Battery()

	fmt.Printf("raw camera stream: %v — %.1fx over the Wi-R goodput (%v)\n\n",
		cam.DataRate(), float64(cam.DataRate())/float64(wir.Goodput), wir.Goodput)

	// --- Measure MJPEG on synthetic frames --------------------------------
	fmt.Printf("%-8s %10s %10s %12s %14s %14s %8s\n",
		"quality", "ratio", "PSNR", "link rate", "node power", "battery life", "fits?")
	type point struct {
		q     int
		rate  units.DataRate
		power units.Power
	}
	var feasible []point
	for _, q := range []int{20, 35, 50, 70, 85} {
		g := sensors.NewVideoSynth(320, 240, 21)
		codec, err := compress.NewFrameCodec(320, 240, q)
		if err != nil {
			log.Fatal(err)
		}
		var rawBits, encBits int
		var psnr float64
		const frames = 4
		for i := 0; i < frames; i++ {
			f := g.NextFrame()
			enc, err := codec.Encode(f)
			if err != nil {
				log.Fatal(err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				log.Fatal(err)
			}
			rawBits += len(f) * 8
			encBits += len(enc) * 8
			psnr += compress.PSNR(f, dec)
		}
		psnr /= frames
		ratio := float64(rawBits) / float64(encBits)
		rate := units.DataRate(float64(cam.DataRate()) / ratio)
		fits := rate <= wir.Goodput
		var total units.Power
		life := "n/a"
		if fits {
			comm, err := wir.AveragePower(rate, 10)
			if err != nil {
				log.Fatal(err)
			}
			total = cam.AFEPower + 500*units.Microwatt + comm
			life = batt.Lifetime(total).String()
			feasible = append(feasible, point{q, rate, total})
		}
		fmt.Printf("q%-7d %9.1fx %7.1f dB %12v %14v %14s %8v\n",
			q, ratio, psnr, rate, total, life, fits)
	}
	if len(feasible) == 0 {
		log.Fatal("no feasible MJPEG operating point")
	}

	// --- Does the chosen stream coexist with other wearables? -------------
	// One spec feeds both checks: the simulator builds its TDMA schedule
	// from the same glassesConfig it then runs, so the utilization figure
	// and the delivery cross-check cannot drift apart.
	op := feasible[len(feasible)-1] // highest feasible quality
	cfg := glassesConfig(float64(cam.DataRate()) / float64(op.rate))
	cfg.Seed = 23
	sim, err := bannet.NewSim(cfg)
	if err != nil {
		log.Fatalf("TDMA: %v", err)
	}
	fmt.Printf("\nchosen q%d stream shares the medium with 3 other nodes: utilization %.0f%%\n",
		op.q, sim.Schedule().Utilization()*100)

	rep, err := sim.Run(units.Minute)
	if err != nil {
		log.Fatal(err)
	}
	g := rep.NodeByName("glasses")
	fmt.Printf("simulated 1 min: glasses deliver %.1f%% of frames, p99 frame latency %v\n",
		g.DeliveryRate()*100, g.LatencyP99)

	// --- Hub-side vision ----------------------------------------------------
	vision, err := nn.VisionNet(5)
	if err != nil {
		log.Fatal(err)
	}
	hubMACs := float64(vision.TotalMACs()) * 15 // classify every frame
	fmt.Printf("hub runs %s on every frame: %.0f MMAC/s on the wearable brain,\n",
		vision.Name, hubMACs/1e6)
	fmt.Printf("zero inference MACs on the glasses — the glasses carry only sensor+ISA+Wi-R (%v).\n",
		op.power)
}
