package main

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/units"
)

// TestGlassesConfigValidates asserts the example BAN passes bannet
// validation at plausible MJPEG ratios, and that the infeasible raw
// stream (ratio 1) is rejected — the whole point of the example.
func TestGlassesConfigValidates(t *testing.T) {
	for _, ratio := range []float64{8, 12, 20} {
		cfg := glassesConfig(ratio)
		cfg.Seed = 23
		sim, err := bannet.NewSim(cfg)
		if err != nil {
			t.Fatalf("ratio %v: example config rejected: %v", ratio, err)
		}
		rep, err := sim.Run(5 * units.Second)
		if err != nil {
			t.Fatal(err)
		}
		if g := rep.NodeByName("glasses"); g == nil || g.PacketsDelivered == 0 {
			t.Fatalf("ratio %v: glasses delivered no frames", ratio)
		}
	}
	if _, err := bannet.NewSim(glassesConfig(1)); err == nil {
		t.Fatal("raw 9.2 Mbps camera stream must not validate against Wi-R")
	}
}
