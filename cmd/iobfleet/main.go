// Command iobfleet runs a population of independent body-area-network
// simulations in parallel — a fleet of simulated wearers with spread-out
// channel conditions, batteries, harvesters and device mixes — and prints
// fleet-level statistics plus engine throughput.
//
// Usage:
//
//	iobfleet -wearers 1000 -dur 600                  # 1000 wearers, 10 min each
//	iobfleet -wearers 1000 -workers 1                # force serial (invariance check)
//	iobfleet -wearers 500 -ble-frac 0.5 -drain       # half the fleet on BLE, live batteries
//	iobfleet -wearers 1000000 -out sweep.wtl         # stream records to a telemetry store
//	iobfleet -wearers 1000000 -out sweep.wtl -resume # continue a killed sweep
//	iobfleet -wearers 1000 -series 1 -out sweep.wtl  # sample per-node time series at 1 s cadence
//	iobfleet -wearers 1000 -cells 50 -ble-frac 0.5   # spectrum-coupled: 20 wearers/cell
//	iobfleet -wearers 1000 -density 40 -ble-frac 1   # same, by target wearers-per-cell
//	iobfleet -wearers 1000 -density 40 -feedback     # equilibrium interference (retry feedback)
//	iobfleet -density 40 -feedback -max-iters 16 -tol 10  # coarser fixed point
//	iobfleet -cpuprofile cpu.pb.gz -memprofile mem.pb.gz  # pprof the sweep
//
// The aggregate report is a pure function of -seed: reruns with any
// -workers value print identical statistics (only the throughput line
// varies), and the fingerprint line makes that easy to diff. Aggregation
// streams: memory stays bounded by the worker count, not the population.
//
// With -cells (or -density, which derives the cell count from the
// population), wearers stop being independent: each hashes into a
// spatial cell, the cells' offered RF load is reduced in a deterministic
// first phase, and every RF node's loss is inflated by its cell's
// congestion (wiban/internal/spectrum) while EQS/MQS body-channel links
// ride free. A density sweep reproduces the paper's RF-congestion story
// at fleet scale — rerun with rising -density and watch the RF arm's
// delivery rate and battery life fall while the Wi-R arm holds:
//
//	for d in 1 4 16 64; do iobfleet -wearers 1024 -density $d -ble-frac 0.5; done
//
// Two-phase runs keep every determinism contract: the fingerprint is
// byte-identical for any -workers value and across kill/-resume.
//
// -feedback closes the collision→retry→offered-load loop: phase 1 solves
// a damped per-cell fixed point (collisions inflate retransmissions,
// retransmissions inflate airtime, airtime inflates collisions) and the
// per-wearer kernels see the *equilibrium* foreign load instead of the
// first-order offered traffic — the self-consistent congestion a dense
// venue actually settles at. -max-iters and -tol bound the iteration
// (both must be ≥ 1); per-cell convergence shows up in the report's
// feedback line and in iobtrace cells. Feedback stores are format v2;
// without -feedback, output is bit-identical to the first-order engine
// and existing v1 stores resume unchanged.
//
// -series samples every node's in-run state — battery charge, queue
// depth, per-window link PER and collision rate — at the given cadence
// (clamped up to the TDMA superframe) and persists the samples in the
// store's v3 series frames, queryable with iobtrace query. Sampling adds
// no kernel events and draws no randomness, so the report, fingerprint
// and every determinism contract are unchanged; without -series the
// store stays byte-identical to the previous (v2) format.
//
// With -out, every wearer's record is also appended to a telemetry store
// (block-compressed, CRC-protected, checkpointed — see
// wiban/internal/telemetry). If the sweep is killed, rerunning with
// -resume and the same flags restores the checkpoint, replays the
// committed records through the aggregator, and simulates only the
// remaining wearers; the final report and fingerprint are bit-identical
// to an uninterrupted run. Inspect, verify or re-aggregate a store with
// the iobtrace command.
//
// A streaming sweep also stops gracefully: SIGINT or SIGTERM aborts at
// the next record boundary, keeps the store's checkpoint, prints the
// -resume invocation and exits 0 — Ctrl-C on an hours-long sweep parks
// it instead of killing it. Without -out, signals kill the process as
// usual. For an always-on service with the same contract (plus metrics
// and progress streaming), see the iobfleetd daemon.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"wiban/internal/fleet"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// errInterrupted is the sentinel the signal handler injects into the
// sink: the engine aborts at the next record boundary and main exits 0
// with the store checkpointed, ready for -resume.
var errInterrupted = errors.New("iobfleet: interrupted by signal")

// cellsForDensity derives the cell count hitting a target wearers-per-
// cell: ceil(wearers/density), never below 1. Fractional densities are
// meaningful — -density 0.5 asks for twice as many cells as wearers.
func cellsForDensity(wearers int, density float64) int {
	cells := int(math.Ceil(float64(wearers) / density))
	if cells < 1 {
		return 1
	}
	return cells
}

func main() {
	var (
		wearers = flag.Int("wearers", 1000, "population size")
		seed    = flag.Int64("seed", 42, "fleet seed (drives every per-wearer seed)")
		durSec  = flag.Float64("dur", 600, "simulated span per wearer in seconds")
		workers = flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")

		perSpread  = flag.Float64("per-spread", 0.5, "packet-error-rate spread across wearers [0,1]")
		battSpread = flag.Float64("batt-spread", 0.3, "battery-capacity spread across wearers [0,1)")
		harvProb   = flag.Float64("harvest-prob", 0.3, "probability an unharvested node gains a harvester")
		dropProb   = flag.Float64("drop-prob", 0.25, "probability each non-primary node is absent")
		bleFrac    = flag.Float64("ble-frac", 0.25, "fraction of wearers on BLE 4.2 radios")
		drain      = flag.Bool("drain", false, "enable in-run battery drain and node death")

		cells   = flag.Int("cells", 0, "spatial cells sharing RF spectrum (0 = uncoupled wearers)")
		density = flag.Float64("density", 0, "target wearers per cell; derives -cells = ceil(wearers/density)")

		feedback = flag.Bool("feedback", false, "close the collision→retry→offered-load loop (fixed-point phase 1; needs -cells or -density)")
		maxIters = flag.Int("max-iters", spectrum.DefaultMaxIters, "feedback fixed-point iteration cap per cell (≥ 1)")
		tolPPM   = flag.Int64("tol", spectrum.DefaultTolPPM, "feedback fixed-point convergence tolerance in PPM (≥ 1)")

		seriesSec = flag.Float64("series", 0, "sample every node's in-run state at this cadence in simulated seconds (0 = off; stores become format v3)")

		outPath   = flag.String("out", "", "stream per-wearer records to a telemetry store at this path")
		resume    = flag.Bool("resume", false, "resume the interrupted sweep checkpointed in -out")
		force     = flag.Bool("force", false, "allow -out to overwrite an existing telemetry store")
		blockSize = flag.Int("block-size", 0, "telemetry records per committed block (0 = default)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-sweep, after GC) to this path")
	)
	flag.Parse()
	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "iobfleet: "+format+"\n", args...)
		os.Exit(code)
	}

	gen := &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     *perSpread,
		BatterySpread: *battSpread,
		HarvesterProb: *harvProb,
		DropNodeProb:  *dropProb,
		BLEFraction:   *bleFrac,
		DrainBattery:  *drain,
	}
	if err := gen.Validate(); err != nil {
		fail(2, "%v", err)
	}
	f := &fleet.Fleet{
		Wearers:  *wearers,
		Seed:     *seed,
		Scenario: gen.Scenario(),
		// The coupled engine's phase 1 uses the generator's allocation-free
		// load pass instead of regenerating every scenario (no-op uncoupled).
		Loads:   gen.LoadScenario(),
		Span:    units.Duration(*durSec),
		Workers: *workers,
	}
	scenarioTag := gen.Tag()
	if *density != 0 {
		if !(*density > 0) { // also catches NaN
			fail(2, "non-positive density %v", *density)
		}
		if *cells != 0 {
			fail(2, "-cells and -density are two spellings of the same knob; pass one")
		}
		*cells = cellsForDensity(*wearers, *density)
	}
	if *feedback {
		if *cells <= 0 {
			fail(2, "usage: -feedback needs a spectrum topology; pass -cells or -density")
		}
		if *maxIters <= 0 {
			fail(2, "usage: -max-iters must be a positive iteration cap, got %d", *maxIters)
		}
		if *tolPPM <= 0 {
			fail(2, "usage: -tol must be a positive PPM tolerance, got %d", *tolPPM)
		}
	}
	if *cells > 0 {
		f.Coupling = &fleet.Coupling{Cells: *cells, Model: spectrum.Default()}
		if *feedback {
			f.Coupling.Feedback = true
			f.Coupling.MaxIters = *maxIters
			f.Coupling.TolPPM = *tolPPM
		}
		scenarioTag += ";" + f.Coupling.Tag()
	} else if *cells < 0 {
		fail(2, "negative cell count %d", *cells)
	}
	if *seriesSec < 0 || math.IsNaN(*seriesSec) {
		fail(2, "negative series cadence %v", *seriesSec)
	}
	f.Series = units.Duration(*seriesSec)
	if *resume && *outPath == "" {
		fail(2, "-resume requires -out")
	}

	agg := fleet.NewStreamAggregator(f.Span)
	sink := fleet.Sink(agg)
	var store *telemetry.Writer
	if *outPath != "" {
		meta := telemetry.Meta{
			FleetSeed:   f.Seed,
			Wearers:     f.Wearers,
			SpanSeconds: float64(f.Span),
			Scenario:    scenarioTag,
			BlockSize:   *blockSize,
			Version:     telemetry.CreateVersion(*seriesSec > 0),
			Cells:       *cells,
			Feedback:    *feedback && *cells > 0,

			SeriesCadenceSeconds: *seriesSec,
		}
		var err error
		if *resume {
			if store, err = telemetry.Resume(*outPath); err != nil {
				fail(1, "%v", err)
			}
			got := store.Meta()
			meta.BlockSize = got.BlockSize // block size is the store's to keep
			meta.Version = telemetry.AdoptVersion(got.Version, *cells, meta.Feedback, *seriesSec > 0)
			if got != meta {
				store.Abort()
				fail(2, "resume flags describe a different sweep than %s:\n  store: %+v\n  flags: %+v", *outPath, got, meta)
			}
			// Rebuild the aggregate from the committed records, then
			// simulate only the remainder.
			r, err := telemetry.Open(*outPath)
			if err != nil {
				fail(1, "%v", err)
			}
			replayed, err := fleet.Replay(r, agg)
			r.Close()
			if err != nil {
				fail(1, "%v", err)
			}
			if replayed != store.NextWearer() {
				fail(1, "store %s replayed %d records but checkpoint says %d", *outPath, replayed, store.NextWearer())
			}
			f.Start = store.NextWearer()
			fmt.Printf("resuming %s at wearer %d/%d (%d committed blocks)\n",
				*outPath, f.Start, f.Wearers, store.Blocks())
		} else {
			// A forgotten -resume must not vaporize a checkpointed sweep:
			// Create truncates, so refuse to clobber an existing store.
			if st, serr := os.Stat(*outPath); serr == nil && st.Size() > 0 && !*force {
				fail(2, "%s already exists; continue it with -resume, or overwrite it with -force", *outPath)
			}
			if store, err = telemetry.Create(*outPath, meta); err != nil {
				fail(1, "%v", err)
			}
		}
		// Store first, then aggregate: the committed prefix on disk never
		// runs ahead of what the report has folded in.
		sink = fleet.Tee(store, agg)

		// With a store attached, SIGINT/SIGTERM become a graceful stop
		// instead of a kill: the sink returns errInterrupted at the next
		// record boundary, the engine aborts, and everything committed so
		// far stays a valid checkpointed prefix. Without -out there is
		// nothing to save, so the default die-on-signal behavior stands.
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			fmt.Fprintf(os.Stderr, "iobfleet: %v: checkpointing and stopping\n", s)
			close(stop)
		}()
		inner := sink
		sink = fleet.SinkFunc(func(rec telemetry.Record) error {
			select {
			case <-stop:
				return errInterrupted
			default:
			}
			return inner.Consume(rec)
		})
	}

	// Profiling brackets exactly the sweep (flag parsing, store setup and
	// report rendering stay outside the CPU window), so future perf PRs
	// can run `iobfleet -cpuprofile cpu.pb.gz` instead of hand-rolling a
	// harness around the engine.
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fail(1, "%v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fail(1, "cpu profile: %v", err)
		}
		defer pf.Close()
	}
	// The heap-profile file is opened before the sweep too: a typo'd path
	// must fail in milliseconds, not after an hours-long run whose final
	// uncommitted block it would then discard.
	var memFile *os.File
	if *memProfile != "" {
		var err error
		if memFile, err = os.Create(*memProfile); err != nil {
			fail(1, "%v", err)
		}
	}
	perf, err := f.Stream(sink)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		if store != nil {
			store.Abort() // keep the checkpoint where the sweep died
		}
		if errors.Is(err, errInterrupted) {
			// A graceful stop is a success: the sweep is parked, not dead.
			fmt.Printf("interrupted: %s checkpointed at wearer %d/%d (%d blocks)\n",
				*outPath, store.NextWearer(), f.Wearers, store.Blocks())
			fmt.Printf("continue with: iobfleet -resume -out %s <same flags>\n", *outPath)
			return
		}
		fail(1, "%v", err)
	}
	if memFile != nil {
		runtime.GC() // settle the heap so the profile shows retention, not garbage
		if perr := pprof.WriteHeapProfile(memFile); perr != nil {
			fail(1, "heap profile: %v", perr)
		}
		if perr := memFile.Close(); perr != nil {
			fail(1, "heap profile: %v", perr)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fail(1, "%v", err)
		}
	}
	rep := agg.Report()
	fmt.Println(rep)
	fmt.Printf("  engine:    %v\n", perf)
	if store != nil {
		fmt.Printf("  telemetry: %s (%d blocks)\n", *outPath, store.Blocks())
	}
	fmt.Printf("  fingerprint %s (seed %d)\n", rep.Fingerprint()[:16], *seed)
}
