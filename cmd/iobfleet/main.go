// Command iobfleet runs a population of independent body-area-network
// simulations in parallel — a fleet of simulated wearers with spread-out
// channel conditions, batteries, harvesters and device mixes — and prints
// fleet-level statistics plus engine throughput.
//
// Usage:
//
//	iobfleet -wearers 1000 -dur 600                  # 1000 wearers, 10 min each
//	iobfleet -wearers 1000 -workers 1                # force serial (invariance check)
//	iobfleet -wearers 500 -ble-frac 0.5 -drain       # half the fleet on BLE, live batteries
//
// The aggregate report is a pure function of -seed: reruns with any
// -workers value print identical statistics (only the throughput line
// varies), and the fingerprint line makes that easy to diff.
package main

import (
	"flag"
	"fmt"
	"os"

	"wiban/internal/fleet"
	"wiban/internal/units"
)

func main() {
	var (
		wearers = flag.Int("wearers", 1000, "population size")
		seed    = flag.Int64("seed", 42, "fleet seed (drives every per-wearer seed)")
		durSec  = flag.Float64("dur", 600, "simulated span per wearer in seconds")
		workers = flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")

		perSpread  = flag.Float64("per-spread", 0.5, "packet-error-rate spread across wearers [0,1]")
		battSpread = flag.Float64("batt-spread", 0.3, "battery-capacity spread across wearers [0,1)")
		harvProb   = flag.Float64("harvest-prob", 0.3, "probability an unharvested node gains a harvester")
		dropProb   = flag.Float64("drop-prob", 0.25, "probability each non-primary node is absent")
		bleFrac    = flag.Float64("ble-frac", 0.25, "fraction of wearers on BLE 4.2 radios")
		drain      = flag.Bool("drain", false, "enable in-run battery drain and node death")
	)
	flag.Parse()

	gen := &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     *perSpread,
		BatterySpread: *battSpread,
		HarvesterProb: *harvProb,
		DropNodeProb:  *dropProb,
		BLEFraction:   *bleFrac,
		DrainBattery:  *drain,
	}
	if err := gen.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "iobfleet: %v\n", err)
		os.Exit(2)
	}
	f := &fleet.Fleet{
		Wearers:  *wearers,
		Seed:     *seed,
		Scenario: gen.Scenario(),
		Span:     units.Duration(*durSec),
		Workers:  *workers,
	}
	rep, perf, err := f.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobfleet: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("  engine:    %v\n", perf)
	fmt.Printf("  fingerprint %s (seed %d)\n", rep.Fingerprint()[:16], *seed)
}
