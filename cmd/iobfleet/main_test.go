package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"wiban/internal/fleet"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// TestMain lets tests re-exec this binary as the real iobfleet command,
// pinning actual process exit codes and stderr rather than in-process
// error values.
func TestMain(m *testing.M) {
	if os.Getenv("IOBFLEET_RUN_MAIN") == "1" {
		main()
		os.Exit(0) // main returned without failing
	}
	os.Exit(m.Run())
}

// runMain re-executes the test binary as iobfleet with the given args,
// returning the exit code and combined output.
func runMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "IOBFLEET_RUN_MAIN=1")
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	runErr := cmd.Run()
	t.Logf("iobfleet %s: %v\n%s", strings.Join(args, " "), runErr, out.String())
	if runErr == nil {
		return 0, out.String()
	}
	var ee *exec.ExitError
	if !errors.As(runErr, &ee) {
		t.Fatal(runErr)
	}
	return ee.ExitCode(), out.String()
}

// TestFeedbackKnobExitCodes pins the real process behavior of the
// feedback flag validation: out-of-domain knobs exit non-zero with a
// usage message before any simulation starts, and a well-formed
// feedback sweep exits zero.
func TestFeedbackKnobExitCodes(t *testing.T) {
	base := []string{"-wearers", "8", "-dur", "1", "-cells", "2", "-feedback"}
	for name, extra := range map[string][]string{
		"zero tolerance":         {"-tol", "0"},
		"negative tolerance":     {"-tol", "-5"},
		"zero iteration cap":     {"-max-iters", "0"},
		"negative iteration cap": {"-max-iters", "-1"},
	} {
		t.Run(name, func(t *testing.T) {
			code, out := runMain(t, append(append([]string{}, base...), extra...)...)
			if code == 0 {
				t.Fatalf("invalid knob %v exited 0", extra)
			}
			if !strings.Contains(out, "usage") {
				t.Errorf("no usage message in output:\n%s", out)
			}
		})
	}
	t.Run("feedback without cells", func(t *testing.T) {
		code, out := runMain(t, "-wearers", "8", "-dur", "1", "-feedback")
		if code == 0 {
			t.Fatal("-feedback without a topology exited 0")
		}
		if !strings.Contains(out, "usage") {
			t.Errorf("no usage message in output:\n%s", out)
		}
	})
	t.Run("valid feedback sweep", func(t *testing.T) {
		code, out := runMain(t, append(append([]string{}, base...), "-workers", "2")...)
		if code != 0 {
			t.Fatalf("valid feedback sweep exited %d", code)
		}
		if !strings.Contains(out, "fingerprint") {
			t.Errorf("no fingerprint line in output:\n%s", out)
		}
	})
}

// TestDefaultFlagsProduceRunnableFleet mirrors main's construction with
// the default flag values and runs a miniature sweep: if a default ever
// stops validating, the CLI dies on startup — catch that in tests.
func TestDefaultFlagsProduceRunnableFleet(t *testing.T) {
	gen := &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     0.5,
		BatterySpread: 0.3,
		HarvesterProb: 0.3,
		DropNodeProb:  0.25,
		BLEFraction:   0.25,
	}
	if err := gen.Validate(); err != nil {
		t.Fatalf("default generator invalid: %v", err)
	}
	f := &fleet.Fleet{Wearers: 20, Seed: 42, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	rep, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wearers != 20 || rep.Nodes < 20 || rep.PacketsDelivered == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestOutResumeFlow mirrors main's -out / -resume composition: stream to
// a store, die mid-sweep, resume with matching flags (replay + Start),
// and check the fingerprint equals an uninterrupted run's. It also
// checks the meta guard that rejects resume flags describing a different
// population.
func TestOutResumeFlow(t *testing.T) {
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	mkFleet := func() *fleet.Fleet {
		return &fleet.Fleet{Wearers: 40, Seed: 9, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	}
	meta := telemetry.Meta{
		FleetSeed: 9, Wearers: 40, SpanSeconds: 5, Scenario: gen.Tag(), BlockSize: 8,
	}

	want, _, err := mkFleet().Run()
	if err != nil {
		t.Fatal(err)
	}

	// Leg 1: stream to the store, kill after 19 records (mid-block).
	path := filepath.Join(t.TempDir(), "sweep.wtl")
	store, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := fleet.SinkFunc(func(rec telemetry.Record) error {
		if seen == 19 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := mkFleet().Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}

	// Leg 2: the resume path main takes.
	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.Meta()
	if got != meta {
		t.Fatalf("store meta %+v, flags %+v — the guard in main would refuse its own store", got, meta)
	}
	if wrong := (telemetry.Meta{FleetSeed: 10, Wearers: 40, SpanSeconds: 5, Scenario: gen.Tag(), BlockSize: 8}); got == wrong {
		t.Fatal("meta guard cannot tell different seeds apart")
	}
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(5 * units.Second)
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != resumed.NextWearer() {
		t.Fatalf("replayed %d, checkpoint %d", replayed, resumed.NextWearer())
	}
	f := mkFleet()
	f.Start = resumed.NextWearer()
	if _, err := f.Stream(fleet.Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != want.Fingerprint() {
		t.Fatal("resumed CLI flow diverged from uninterrupted run")
	}
}

// TestCoupledOutResumeFlow mirrors main's -cells composition: a
// spectrum-coupled sweep streamed to a v1 store, killed mid-block,
// resumed with matching flags — the fingerprint must equal an
// uninterrupted coupled run's, which requires the store to replay the
// cell and foreign-load columns and the engine to recompute phase 1 over
// the full population.
func TestCoupledOutResumeFlow(t *testing.T) {
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BLEFraction: 0.5}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	mkFleet := func() *fleet.Fleet {
		return &fleet.Fleet{
			Wearers: 40, Seed: 11, Scenario: gen.Scenario(),
			Span: 5 * units.Second, Workers: 2,
			Coupling: &fleet.Coupling{Cells: 4, Model: spectrum.Default()},
		}
	}
	meta := telemetry.Meta{
		FleetSeed: 11, Wearers: 40, SpanSeconds: 5,
		Scenario:  gen.Tag() + ";" + mkFleet().Coupling.Tag(),
		BlockSize: 8, Version: telemetry.CurrentFormat, Cells: 4,
	}

	want, _, err := mkFleet().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Cells) != 4 {
		t.Fatalf("coupled reference run has %d cell stats", len(want.Cells))
	}

	path := filepath.Join(t.TempDir(), "coupled.wtl")
	store, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := fleet.SinkFunc(func(rec telemetry.Record) error {
		if seen == 21 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := mkFleet().Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}

	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Meta(); got != meta {
		t.Fatalf("store meta %+v, flags %+v — the guard in main would refuse its own store", got, meta)
	}
	// The meta guard must distinguish a different spectrum topology.
	other := meta
	other.Cells = 8
	if resumed.Meta() == other {
		t.Fatal("meta guard cannot tell different cell counts apart")
	}
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(5 * units.Second)
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != resumed.NextWearer() {
		t.Fatalf("replayed %d, checkpoint %d", replayed, resumed.NextWearer())
	}
	f := mkFleet()
	f.Start = resumed.NextWearer()
	if _, err := f.Stream(fleet.Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != want.Fingerprint() {
		t.Fatal("resumed coupled CLI flow diverged from uninterrupted run")
	}
}

// TestFeedbackOutResumeFlow mirrors main's -feedback composition: an
// equilibrium-coupled sweep streamed to a v2 store, killed mid-block,
// resumed with matching flags — the fingerprint must equal an
// uninterrupted feedback run's, which requires the store to replay the
// equilibrium columns and the engine to re-solve the fixed point over
// the full population.
func TestFeedbackOutResumeFlow(t *testing.T) {
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BLEFraction: 0.5}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	mkFleet := func() *fleet.Fleet {
		return &fleet.Fleet{
			Wearers: 40, Seed: 11, Scenario: gen.Scenario(),
			Span: 5 * units.Second, Workers: 2,
			Coupling: &fleet.Coupling{Cells: 4, Model: spectrum.Default(), Feedback: true},
		}
	}
	meta := telemetry.Meta{
		FleetSeed: 11, Wearers: 40, SpanSeconds: 5,
		Scenario:  gen.Tag() + ";" + mkFleet().Coupling.Tag(),
		BlockSize: 8, Version: telemetry.CurrentFormat, Cells: 4, Feedback: true,
	}

	want, _, err := mkFleet().Run()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "feedback.wtl")
	store, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := fleet.SinkFunc(func(rec telemetry.Record) error {
		if seen == 21 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := mkFleet().Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}

	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Meta(); got != meta {
		t.Fatalf("store meta %+v, flags %+v — the guard in main would refuse its own store", got, meta)
	}
	// The meta guard must tell a first-order sweep from a feedback one.
	other := meta
	other.Feedback = false
	if resumed.Meta() == other {
		t.Fatal("meta guard cannot tell feedback from first-order sweeps")
	}
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(5 * units.Second)
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != resumed.NextWearer() {
		t.Fatalf("replayed %d, checkpoint %d", replayed, resumed.NextWearer())
	}
	f := mkFleet()
	f.Start = resumed.NextWearer()
	if _, err := f.Stream(fleet.Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != want.Fingerprint() {
		t.Fatal("resumed feedback CLI flow diverged from uninterrupted run")
	}
}

// TestResumeAdoptsOlderStoreVersion pins the version-adoption rule main
// applies on -resume (telemetry.AdoptVersion, shared with the iobfleetd
// daemon's restart recovery): a store written in an older format is
// continued in that format when it can still represent the sweep (a v1
// store for a first-order coupled resume), and the current format is
// demanded when it cannot (a feedback resume needs the v2 columns).
func TestResumeAdoptsOlderStoreVersion(t *testing.T) {
	for _, c := range []struct {
		store, cells int
		feedback     bool
		series       bool
		want         int
	}{
		{telemetry.FormatV0, 0, false, false, telemetry.FormatV0},
		{telemetry.FormatV1, 0, false, false, telemetry.FormatV1},
		{telemetry.FormatV1, 4, false, false, telemetry.FormatV1},
		{telemetry.FormatV1, 4, true, false, telemetry.CurrentFormat}, // mismatch → guard will refuse
		{telemetry.FormatV2, 4, true, false, telemetry.FormatV2},
		{telemetry.FormatV0, 4, false, false, telemetry.CurrentFormat}, // v0 cannot hold cells
		{telemetry.FormatV2, 0, false, true, telemetry.CurrentFormat},  // v2 cannot hold series
		{telemetry.FormatV3, 0, false, true, telemetry.FormatV3},
		{telemetry.FormatV3, 4, true, true, telemetry.FormatV3},
	} {
		if got := telemetry.AdoptVersion(c.store, c.cells, c.feedback, c.series); got != c.want {
			t.Errorf("store v%d cells=%d feedback=%t series=%t: adopted v%d, want v%d",
				c.store, c.cells, c.feedback, c.series, got, c.want)
		}
	}

	// End to end: a first-order coupled sweep killed into a v1 store
	// (what a PR 3 binary wrote) resumes under the current binary and
	// reproduces the uninterrupted fingerprint.
	gen := &fleet.Generator{Base: fleet.DefaultBase(), BLEFraction: 1}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	mkFleet := func() *fleet.Fleet {
		return &fleet.Fleet{
			Wearers: 30, Seed: 3, Scenario: gen.Scenario(),
			Span: 5 * units.Second, Workers: 2,
			Coupling: &fleet.Coupling{Cells: 3, Model: spectrum.Default()},
		}
	}
	want, _, err := mkFleet().Run()
	if err != nil {
		t.Fatal(err)
	}
	metaV1 := telemetry.Meta{
		FleetSeed: 3, Wearers: 30, SpanSeconds: 5,
		Scenario:  gen.Tag() + ";" + mkFleet().Coupling.Tag(),
		BlockSize: 8, Version: telemetry.FormatV1, Cells: 3,
	}
	path := filepath.Join(t.TempDir(), "v1.wtl")
	store, err := telemetry.Create(path, metaV1)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := fleet.SinkFunc(func(rec telemetry.Record) error {
		if seen == 17 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := mkFleet().Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}
	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Meta(); got.Version != telemetry.FormatV1 {
		t.Fatalf("resumed v1 store reports version %d", got.Version)
	}
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(5 * units.Second)
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	f := mkFleet()
	f.Start = replayed
	if _, err := f.Stream(fleet.Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != want.Fingerprint() {
		t.Fatal("v1 store resumed under the current binary diverged")
	}
}

// TestSignalCheckpointAndResume pins the graceful-stop contract at the
// process level: a streaming sweep SIGTERMed mid-run exits 0 (not
// signal death) with a resume hint, and rerunning with -resume finishes
// the sweep to the bit-identical fingerprint of an uninterrupted run.
func TestSignalCheckpointAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second signal lifecycle in -short mode")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "sig.wtl")
	args := []string{"-wearers", "6000", "-dur", "30", "-workers", "2",
		"-seed", "21", "-block-size", "64", "-out", out}
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "IOBFLEET_RUN_MAIN=1")
	var buf strings.Builder
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Signal only once a block is durable, so the resume leg has a
	// checkpoint to stand on. Create writes an initial wearer-0
	// checkpoint, so existence is not progress: wait for the sidecar's
	// content to move past whatever it held when first observed (each
	// rewrite is temp+rename, so reads are never torn).
	deadline := time.Now().Add(60 * time.Second)
	var initial []byte
	for {
		if b, err := os.ReadFile(telemetry.CheckpointPath(out)); err == nil {
			initial = b
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint after 60s:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		if b, err := os.ReadFile(telemetry.CheckpointPath(out)); err == nil && !bytes.Equal(b, initial) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no committed block after 60s:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("signaled sweep exited non-zero: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "-resume") {
		t.Errorf("no resume hint in output:\n%s", buf.String())
	}

	// The store must be a genuine partial: checkpointed short of the
	// population (the poll guarantees at least one committed block).
	parked, err := telemetry.Resume(out)
	if err != nil {
		t.Fatal(err)
	}
	next := parked.NextWearer()
	parked.Abort()
	if next <= 0 || next >= 6000 {
		t.Fatalf("checkpoint at wearer %d, want a proper prefix of 6000", next)
	}

	code, resumeOut := runMain(t, append(append([]string{}, args...), "-resume")...)
	if code != 0 {
		t.Fatalf("resume leg exited %d", code)
	}
	want, wantOut := runMain(t, "-wearers", "6000", "-dur", "30", "-workers", "2", "-seed", "21")
	if want != 0 {
		t.Fatalf("reference run exited %d", want)
	}
	fp := func(s string) string {
		i := strings.Index(s, "fingerprint ")
		if i < 0 {
			t.Fatalf("no fingerprint line:\n%s", s)
		}
		return strings.Fields(s[i:])[1]
	}
	if got, ref := fp(resumeOut), fp(wantOut); got != ref {
		t.Errorf("resumed fingerprint %s != uninterrupted %s", got, ref)
	}
}

// TestDensityFlagDerivation pins the -density → -cells arithmetic main
// uses: ceil(wearers/density), with density 1 giving every wearer its
// own cell and fractional densities asking for more cells than wearers.
func TestDensityFlagDerivation(t *testing.T) {
	for _, c := range []struct {
		wearers int
		density float64
		want    int
	}{
		{1000, 40, 25},
		{1000, 1, 1000},
		{1000, 3, 334},
		{1000, 2.5, 400},
		{1000, 0.5, 2000},
		{7, 100, 1},
	} {
		if cells := cellsForDensity(c.wearers, c.density); cells != c.want {
			t.Errorf("wearers=%d density=%g: cells=%d, want %d", c.wearers, c.density, cells, c.want)
		}
	}
}

// TestProfileFlags pins the real process behavior of -cpuprofile and
// -memprofile: a sweep run with both exits zero and leaves non-empty
// pprof files behind, and an unwritable profile path fails loudly
// instead of silently profiling nowhere.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	code, out := runMain(t,
		"-wearers", "16", "-dur", "2", "-workers", "2",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("profiled sweep exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "fingerprint") {
		t.Errorf("no fingerprint line in output:\n%s", out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// Both profile paths must fail fast — before the sweep runs — so a
	// typo'd flag never costs a long simulation its uncommitted tail.
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		code, _ = runMain(t, "-wearers", "4", "-dur", "1",
			flag, filepath.Join(dir, "no", "such", "dir", "prof.out"))
		if code == 0 {
			t.Fatalf("unwritable %s path exited 0", flag)
		}
	}
}
