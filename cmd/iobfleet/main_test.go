package main

import (
	"fmt"
	"path/filepath"
	"testing"

	"wiban/internal/fleet"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// TestDefaultFlagsProduceRunnableFleet mirrors main's construction with
// the default flag values and runs a miniature sweep: if a default ever
// stops validating, the CLI dies on startup — catch that in tests.
func TestDefaultFlagsProduceRunnableFleet(t *testing.T) {
	gen := &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     0.5,
		BatterySpread: 0.3,
		HarvesterProb: 0.3,
		DropNodeProb:  0.25,
		BLEFraction:   0.25,
	}
	if err := gen.Validate(); err != nil {
		t.Fatalf("default generator invalid: %v", err)
	}
	f := &fleet.Fleet{Wearers: 20, Seed: 42, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	rep, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wearers != 20 || rep.Nodes < 20 || rep.PacketsDelivered == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestOutResumeFlow mirrors main's -out / -resume composition: stream to
// a store, die mid-sweep, resume with matching flags (replay + Start),
// and check the fingerprint equals an uninterrupted run's. It also
// checks the meta guard that rejects resume flags describing a different
// population.
func TestOutResumeFlow(t *testing.T) {
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	mkFleet := func() *fleet.Fleet {
		return &fleet.Fleet{Wearers: 40, Seed: 9, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	}
	meta := telemetry.Meta{
		FleetSeed: 9, Wearers: 40, SpanSeconds: 5, Scenario: gen.Tag(), BlockSize: 8,
	}

	want, _, err := mkFleet().Run()
	if err != nil {
		t.Fatal(err)
	}

	// Leg 1: stream to the store, kill after 19 records (mid-block).
	path := filepath.Join(t.TempDir(), "sweep.wtl")
	store, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := fleet.SinkFunc(func(rec telemetry.Record) error {
		if seen == 19 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := mkFleet().Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}

	// Leg 2: the resume path main takes.
	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.Meta()
	if got != meta {
		t.Fatalf("store meta %+v, flags %+v — the guard in main would refuse its own store", got, meta)
	}
	if wrong := (telemetry.Meta{FleetSeed: 10, Wearers: 40, SpanSeconds: 5, Scenario: gen.Tag(), BlockSize: 8}); got == wrong {
		t.Fatal("meta guard cannot tell different seeds apart")
	}
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(5 * units.Second)
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != resumed.NextWearer() {
		t.Fatalf("replayed %d, checkpoint %d", replayed, resumed.NextWearer())
	}
	f := mkFleet()
	f.Start = resumed.NextWearer()
	if _, err := f.Stream(fleet.Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != want.Fingerprint() {
		t.Fatal("resumed CLI flow diverged from uninterrupted run")
	}
}

// TestCoupledOutResumeFlow mirrors main's -cells composition: a
// spectrum-coupled sweep streamed to a v1 store, killed mid-block,
// resumed with matching flags — the fingerprint must equal an
// uninterrupted coupled run's, which requires the store to replay the
// cell and foreign-load columns and the engine to recompute phase 1 over
// the full population.
func TestCoupledOutResumeFlow(t *testing.T) {
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BLEFraction: 0.5}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	mkFleet := func() *fleet.Fleet {
		return &fleet.Fleet{
			Wearers: 40, Seed: 11, Scenario: gen.Scenario(),
			Span: 5 * units.Second, Workers: 2,
			Coupling: &fleet.Coupling{Cells: 4, Model: spectrum.Default()},
		}
	}
	meta := telemetry.Meta{
		FleetSeed: 11, Wearers: 40, SpanSeconds: 5,
		Scenario:  gen.Tag() + ";" + mkFleet().Coupling.Tag(),
		BlockSize: 8, Version: telemetry.CurrentFormat, Cells: 4,
	}

	want, _, err := mkFleet().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Cells) != 4 {
		t.Fatalf("coupled reference run has %d cell stats", len(want.Cells))
	}

	path := filepath.Join(t.TempDir(), "coupled.wtl")
	store, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	killer := fleet.SinkFunc(func(rec telemetry.Record) error {
		if seen == 21 {
			return fmt.Errorf("simulated kill")
		}
		seen++
		return store.Consume(rec)
	})
	if _, err := mkFleet().Stream(killer); err == nil {
		t.Fatal("kill-sink did not abort")
	}
	if err := store.Abort(); err != nil {
		t.Fatal(err)
	}

	resumed, err := telemetry.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Meta(); got != meta {
		t.Fatalf("store meta %+v, flags %+v — the guard in main would refuse its own store", got, meta)
	}
	// The meta guard must distinguish a different spectrum topology.
	other := meta
	other.Cells = 8
	if resumed.Meta() == other {
		t.Fatal("meta guard cannot tell different cell counts apart")
	}
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(5 * units.Second)
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != resumed.NextWearer() {
		t.Fatalf("replayed %d, checkpoint %d", replayed, resumed.NextWearer())
	}
	f := mkFleet()
	f.Start = resumed.NextWearer()
	if _, err := f.Stream(fleet.Tee(resumed, agg)); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	if agg.Report().Fingerprint() != want.Fingerprint() {
		t.Fatal("resumed coupled CLI flow diverged from uninterrupted run")
	}
}

// TestDensityFlagDerivation pins the -density → -cells arithmetic main
// uses: ceil(wearers/density), with density 1 giving every wearer its
// own cell and fractional densities asking for more cells than wearers.
func TestDensityFlagDerivation(t *testing.T) {
	for _, c := range []struct {
		wearers int
		density float64
		want    int
	}{
		{1000, 40, 25},
		{1000, 1, 1000},
		{1000, 3, 334},
		{1000, 2.5, 400},
		{1000, 0.5, 2000},
		{7, 100, 1},
	} {
		if cells := cellsForDensity(c.wearers, c.density); cells != c.want {
			t.Errorf("wearers=%d density=%g: cells=%d, want %d", c.wearers, c.density, cells, c.want)
		}
	}
}
