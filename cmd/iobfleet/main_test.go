package main

import (
	"testing"

	"wiban/internal/fleet"
	"wiban/internal/units"
)

// TestDefaultFlagsProduceRunnableFleet mirrors main's construction with
// the default flag values and runs a miniature sweep: if a default ever
// stops validating, the CLI dies on startup — catch that in tests.
func TestDefaultFlagsProduceRunnableFleet(t *testing.T) {
	gen := &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     0.5,
		BatterySpread: 0.3,
		HarvesterProb: 0.3,
		DropNodeProb:  0.25,
		BLEFraction:   0.25,
	}
	if err := gen.Validate(); err != nil {
		t.Fatalf("default generator invalid: %v", err)
	}
	f := &fleet.Fleet{Wearers: 20, Seed: 42, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	rep, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wearers != 20 || rep.Nodes < 20 || rep.PacketsDelivered == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}
