// Command iobfig regenerates the paper's figures and tables.
//
// Usage:
//
//	iobfig -all            # every figure/table
//	iobfig -fig 3          # one figure (1, 2 or 3)
//	iobfig -table offload  # one named table (see -list)
//	iobfig -all -csv       # CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"wiban/internal/figures"
)

func main() {
	var (
		all   = flag.Bool("all", false, "render every figure and table")
		fig   = flag.Int("fig", 0, "render figure N (1, 2 or 3)")
		table = flag.String("table", "", "render a named table (see -list)")
		asCSV = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list  = flag.Bool("list", false, "list available figures/tables")
	)
	flag.Parse()

	gens := figures.All()
	if *list {
		for _, g := range gens {
			fmt.Println(g.Name)
		}
		return
	}

	want := map[string]bool{}
	switch {
	case *all:
		for _, g := range gens {
			want[g.Name] = true
		}
	case *fig != 0:
		want[fmt.Sprintf("fig%d", *fig)] = true
	case *table != "":
		want[*table] = true
	default:
		flag.Usage()
		os.Exit(2)
	}

	matched := 0
	for _, g := range gens {
		if !want[g.Name] {
			continue
		}
		matched++
		t, err := g.Gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "iobfig: %s: %v\n", g.Name, err)
			os.Exit(1)
		}
		if *asCSV {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "iobfig: nothing matched; try -list\n")
		os.Exit(2)
	}
}
