package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMembershipTable drives the membership layer in-process with a
// hand-cranked clock: registration, heartbeat refresh, TTL expiry,
// revival, static permanence, deregistration, and persistence across a
// (simulated) coordinator restart.
func TestMembershipTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "backends.json")
	ms, err := newMembership(path, []string{"http://static:1"})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	ms.now = func() time.Time { return now }
	ms.ttl = 10 * time.Second

	if _, err := ms.register("not a url"); err == nil {
		t.Error("garbage URL registered")
	}
	if _, err := ms.register("ftp://nope:1"); err == nil {
		t.Error("non-http scheme registered")
	}
	st, err := ms.register("http://dyn:2/")
	if err != nil {
		t.Fatal(err)
	}
	if st.URL != "http://dyn:2" || !st.Live {
		t.Errorf("registration state %+v, want live with trailing slash stripped", st)
	}

	live, any := ms.live()
	if !any || len(live) != 2 {
		t.Fatalf("live = %v (any %v), want static + dynamic", live, any)
	}

	// Heartbeats refresh; silence past the TTL expires the dynamic entry
	// but never the static one, and the expired entry stays in the table
	// (any=true) so dispatch waits instead of falling back to loopback.
	now = now.Add(9 * time.Second)
	if _, err := ms.register("http://dyn:2"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(9 * time.Second)
	if live, _ = ms.live(); len(live) != 2 {
		t.Errorf("refreshed entry expired early: %v", live)
	}
	now = now.Add(2 * time.Second)
	live, any = ms.live()
	if len(live) != 1 || live[0] != "http://static:1" || !any {
		t.Errorf("after TTL: live=%v any=%v, want only the static entry and any=true", live, any)
	}
	for _, m := range ms.list() {
		if m.URL == "http://dyn:2" && m.Live {
			t.Error("expired entry listed as live")
		}
		if m.URL == "http://static:1" && (!m.Live || !m.Static) {
			t.Errorf("static entry degraded: %+v", m)
		}
	}

	// A fresh heartbeat revives the expired entry in place — one table
	// row per address, however many times it blinks.
	if _, err := ms.register("http://dyn:2"); err != nil {
		t.Fatal(err)
	}
	if live, _ = ms.live(); len(live) != 2 {
		t.Errorf("revived entry not live: %v", live)
	}
	if got := ms.list(); len(got) != 2 {
		t.Errorf("table holds %d entries after revival, want 2: %+v", len(got), got)
	}

	// Persistence: a new table on the same path reloads the dynamic
	// entry (static entries come from flags, not the file).
	ms2, err := newMembership(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms2.now = ms.now
	ms2.ttl = ms.ttl
	if live, any = ms2.live(); len(live) != 1 || live[0] != "http://dyn:2" || !any {
		t.Errorf("reloaded table live=%v any=%v, want the persisted dynamic entry", live, any)
	}

	if !ms.deregister("http://dyn:2") {
		t.Error("deregister of known entry reported false")
	}
	if ms.deregister("http://dyn:2") {
		t.Error("double deregister reported true")
	}
	if live, _ = ms.live(); len(live) != 1 {
		t.Errorf("deregistered entry still live: %v", live)
	}
}

// TestMembershipExpiryKeepsInFlightDispatch is the expiry-vs-dispatch
// race: a backend registers once (no heartbeat loop), a sharded sweep
// is dispatched to it, and its membership entry expires mid-sweep. The
// supervisor's host list is sticky — expiry gates new placement, not
// replication from a host that still answers — so the sweep must finish
// on the "expired" backend, byte-identical, while the live gauge reads
// zero dynamic members.
func TestMembershipExpiryKeepsInFlightDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon lifecycle in -short mode")
	}
	backend := startDaemon(t, t.TempDir())
	co := startDaemon(t, t.TempDir(), "-expire", "2s")

	// Manual one-shot registration: POST without a -register heartbeat
	// loop, so the entry is guaranteed to fall silent.
	var reg memberState
	resp, err := postBody(co.base+"/api/backends", fmt.Sprintf(`{"url":%q}`, backend.base), &reg)
	if err != nil || resp != 200 || !reg.Live {
		t.Fatalf("registration: code %d err %v state %+v", resp, err, reg)
	}

	raw := `{"wearers":25000,"seed":31,"dur_seconds":20,"workers":2,"cells":4,"block_size":64,"shards":2}`
	id := co.submit(raw).ID
	done := co.awaitStatus(id, statusDone, 120*time.Second)

	var spec sweepSpec
	mustUnmarshalSpec(t, raw, &spec)
	_, fp := groundTruthStore(t, spec)
	if done.Fingerprint != fp {
		t.Errorf("fingerprint %q after mid-sweep expiry, want %q", done.Fingerprint, fp)
	}
	// The sweep outlived the entry's TTL by construction (seconds of
	// wearers vs a 2s expiry): the backend must have expired. Expiry is
	// lazy-on-read, so the first scrape's liveness gauge performs the
	// flip and a second scrape observes the counted transition.
	text := co.metrics()
	if got := metricValue(t, text, "iobfleetd_backends_live"); got != 0 {
		t.Errorf("backends_live %v with the only member silent, want 0", got)
	}
	if got := metricValue(t, co.metrics(), "iobfleetd_backends_expired_total"); got < 1 {
		t.Errorf("backends_expired_total %v, want >= 1 (the sweep outlived the TTL)", got)
	}
	// Expiry must not have counted as a dispatch loss.
	if got := metricValue(t, text, "iobfleetd_shards_dispatched_total"); got != 2 {
		t.Errorf("shards_dispatched_total %v, want exactly 2 (expiry never drops a live host)", got)
	}

	// Re-registration under the same address revives the one entry —
	// no duplicate rows, and the revival is a registration event.
	if code, err := postBody(co.base+"/api/backends", fmt.Sprintf(`{"url":%q}`, backend.base), &reg); err != nil || code != 200 {
		t.Fatalf("re-registration: code %d err %v", code, err)
	}
	var table []memberState
	co.getJSON("/api/backends", &table)
	if len(table) != 1 || !table[0].Live {
		t.Errorf("table after re-registration: %+v, want one live entry", table)
	}
	if got := metricValue(t, co.metrics(), "iobfleetd_backend_registrations_total"); got != 2 {
		t.Errorf("registrations_total %v, want 2 (initial + revival)", got)
	}
}

// postBody POSTs a JSON body and decodes the response when out != nil.
func postBody(url, body string, out any) (int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}
